# Development targets; CI runs the same commands (.github/workflows/ci.yml).

GO ?= go

.PHONY: build vet fmt-check test test-stress race bench bench-json bench-smoke fuzz-smoke metrics-smoke trace-smoke diag-smoke serve serve-wal serve-metrics example clean

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Gofmt drift gate: fails listing any file that gofmt would rewrite. CI runs
# it; run `gofmt -w .` to fix.
fmt-check:
	@files="$$(gofmt -l .)"; if [ -n "$$files" ]; then \
		echo "gofmt needed on:"; echo "$$files"; exit 1; \
	fi

# -shuffle=on randomises test (and subtest) execution order, so an
# order-dependent test fails loudly here instead of flaking later.
test: vet
	$(GO) test -race -shuffle=on ./...

# Stress gate for the concurrent subsystems: the session manager shards, the
# WAL lanes and the HTTP layer, raced three times in shuffled order.
test-stress:
	$(GO) test -race -count=3 -shuffle=on ./internal/session ./internal/wal ./internal/server

bench:
	$(GO) test -run xxx -bench . -benchtime 1x ./...

# Hot-path microbenchmarks: core draw/commit, public batched proposals, the
# HTTP propose/labels round trip, the WAL durability tax, the parallel
# commit throughput of the sharded manager + WAL lanes, the inline vs
# content-addressed (pool store) session-create cost over a 1M-pair pool
# (including the warm zero-copy path), and the cold pool load (mmap vs
# streaming decode).
HOT_BENCH = BenchmarkDraw$$|BenchmarkDrawCommit$$|BenchmarkInstrumental$$|BenchmarkProposeBatch|BenchmarkProposeCommit$$|BenchmarkServerPropose$$|BenchmarkCommitDurable|BenchmarkManagerParallel|BenchmarkServerProposeParallel|BenchmarkSessionCreate|BenchmarkPoolAcquire
HOT_BENCH_PKGS = ./internal/core ./internal/server ./internal/wal ./internal/poolstore .

# Run the hot-path microbenchmarks and append the results to the
# BENCH_core.json perf trajectory (label with OASIS_BENCH_LABEL). The
# benchmark run and the conversion are separate steps so a failing
# benchmark aborts the target instead of recording a partial run.
bench-json:
	$(GO) test -run '^$$' -bench '$(HOT_BENCH)' -benchmem $(HOT_BENCH_PKGS) > bench-json.out \
		|| { cat bench-json.out; rm -f bench-json.out; exit 1; }
	$(GO) run ./cmd/benchjson -out BENCH_core.json -label "$${OASIS_BENCH_LABEL:-dev}" < bench-json.out
	rm -f bench-json.out

# One-iteration smoke run of the hot-path microbenchmarks (CI).
bench-smoke:
	$(GO) test -run '^$$' -bench '$(HOT_BENCH)' -benchtime 1x $(HOT_BENCH_PKGS)

# Observability smoke (CI runs the same): boot the real binary, run a
# labelling workload, scrape /metrics, and fail on malformed exposition or
# zeroed hot-path counters. The strict text-format validator lives in
# internal/server; this drives it end to end through the built binary.
metrics-smoke:
	$(GO) test ./cmd/oasis-server -run '^TestMetricsSmokeEndToEnd$$' -count=1
	$(GO) test ./internal/server -run '^TestMetrics' -count=1

# Tracing smoke (CI runs the same): boot the real binary, force a traced
# create/propose/commit round via sampled traceparent headers, and fail
# unless /debug/traces/{id} returns span timelines covering the server,
# session, sampler, WAL and pool-store stages; then the in-process
# middleware round-trip and trace-ring race tests.
trace-smoke:
	$(GO) test ./cmd/oasis-server -run '^TestTraceSmokeEndToEnd$$' -count=1
	$(GO) test -race ./internal/server -run '^TestTracing' -count=1
	$(GO) test -race ./internal/trace -count=1

# Convergence-diagnostics smoke (CI runs the same): boot the real binary
# with a small diagnostics ring, run two sessions past the ring capacity,
# and fail unless /v1/sessions/{id}/diagnostics shows a monotone labels axis
# over a non-empty downsampled series and /debug/dashboard renders complete
# HTML with both sparklines per session; then the raced in-process
# scrape-while-commit and diag-ring unit tests.
diag-smoke:
	$(GO) test ./cmd/oasis-server -run '^TestDiagSmokeEndToEnd$$' -count=1
	$(GO) test -race ./internal/server -run '^TestDiagnostics|^TestDashboard|^TestSeededDegeneracy' -count=1
	$(GO) test -race ./internal/diag -count=1

# Short fuzz of the WAL replay path and the binary wire-protocol decoders
# (CI runs the same; -fuzz is single-package, hence two invocations).
# Minimization is capped: replay coverage is mildly nondeterministic (temp
# paths, map iteration), and the default 60s minimize budget stalls short
# smoke runs.
fuzz-smoke:
	$(GO) test ./internal/wal -run '^$$' -fuzz '^FuzzWALReplay$$' -fuzztime 30s -fuzzminimizetime 10x
	$(GO) test ./internal/server -run '^$$' -fuzz '^FuzzBinaryProtocol$$' -fuzztime 20s -fuzzminimizetime 10x

# Run the evaluation service with restart-safe session snapshots.
serve:
	$(GO) run ./cmd/oasis-server -addr :8080 -snapshot oasis-state.json

# Run the evaluation service with the durable write-ahead label journal:
# kill -9 safe, acknowledged labels survive crashes.
serve-wal:
	$(GO) run ./cmd/oasis-server -addr :8080 -wal oasis-wal -fsync always -compact-every 10m

# Run the evaluation service with the WAL plus per-request access logging —
# scrape http://localhost:8080/metrics (always on; this target just adds
# the request log for eyeballing alongside the gauges).
serve-metrics:
	$(GO) run ./cmd/oasis-server -addr :8080 -wal oasis-wal -fsync always -access-log -slow-request 500ms

# End-to-end demo: in-process server + concurrent HTTP labelling workers.
example:
	$(GO) run ./examples/serverclient

clean:
	rm -rf oasis-state.json bench-json.out oasis-wal
