# Development targets; CI runs the same commands (.github/workflows/ci.yml).

GO ?= go

.PHONY: build vet test race bench bench-json bench-smoke serve example clean

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: vet
	$(GO) test -race ./...

bench:
	$(GO) test -run xxx -bench . -benchtime 1x ./...

# Hot-path microbenchmarks: core draw/commit, public batched proposals, and
# the HTTP propose/labels round trip.
HOT_BENCH = BenchmarkDraw$$|BenchmarkDrawCommit$$|BenchmarkInstrumental$$|BenchmarkProposeBatch|BenchmarkProposeCommit$$|BenchmarkServerPropose$$
HOT_BENCH_PKGS = ./internal/core ./internal/server .

# Run the hot-path microbenchmarks and append the results to the
# BENCH_core.json perf trajectory (label with OASIS_BENCH_LABEL). The
# benchmark run and the conversion are separate steps so a failing
# benchmark aborts the target instead of recording a partial run.
bench-json:
	$(GO) test -run '^$$' -bench '$(HOT_BENCH)' -benchmem $(HOT_BENCH_PKGS) > bench-json.out \
		|| { cat bench-json.out; rm -f bench-json.out; exit 1; }
	$(GO) run ./cmd/benchjson -out BENCH_core.json -label "$${OASIS_BENCH_LABEL:-dev}" < bench-json.out
	rm -f bench-json.out

# One-iteration smoke run of the hot-path microbenchmarks (CI).
bench-smoke:
	$(GO) test -run '^$$' -bench '$(HOT_BENCH)' -benchtime 1x $(HOT_BENCH_PKGS)

# Run the evaluation service with restart-safe session snapshots.
serve:
	$(GO) run ./cmd/oasis-server -addr :8080 -snapshot oasis-state.json

# End-to-end demo: in-process server + concurrent HTTP labelling workers.
example:
	$(GO) run ./examples/serverclient

clean:
	rm -f oasis-state.json bench-json.out
