# Development targets; CI runs the same commands (.github/workflows/ci.yml).

GO ?= go

.PHONY: build vet test race bench serve example clean

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: vet
	$(GO) test -race ./...

bench:
	$(GO) test -run xxx -bench . -benchtime 1x ./...

# Run the evaluation service with restart-safe session snapshots.
serve:
	$(GO) run ./cmd/oasis-server -addr :8080 -snapshot oasis-state.json

# End-to-end demo: in-process server + concurrent HTTP labelling workers.
example:
	$(GO) run ./examples/serverclient

clean:
	rm -f oasis-state.json
