package oasis_test

// Tests for the rejection-free ProposeBatch contract: exact-size batches
// while the proposable supply lasts, typed exhaustion, deterministic
// continuation through State/RestoreState (the proposal engine's caches are
// a pure function of the snapshotted state), and lease bookkeeping.

import (
	"errors"
	"math"
	"testing"

	"oasis"
)

func mustSampler(t *testing.T, n int, opts oasis.Options) (*oasis.Sampler, []bool) {
	t.Helper()
	scores, preds, truth, _ := syntheticScores(n, 31)
	p, err := oasis.NewPool(scores, preds, oasis.CalibratedScores)
	if err != nil {
		t.Fatal(err)
	}
	s, err := oasis.NewSampler(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s, truth
}

// TestRestoreContinuesProposalsExactly: a sampler restored from a snapshot
// proposes the exact same batches as the live sampler it was taken from —
// the cached instrumental distribution and the proposability accounting are
// rebuilt, not persisted, so they must be pure functions of the snapshot.
func TestRestoreContinuesProposalsExactly(t *testing.T) {
	opts := oasis.Options{Strata: 20, Seed: 17}
	live, truth := mustSampler(t, 4000, opts)

	commitBatch := func(s *oasis.Sampler, pairs []int) {
		t.Helper()
		for _, pair := range pairs {
			if err := s.CommitLabel(pair, truth[pair]); err != nil {
				t.Fatal(err)
			}
		}
	}
	for round := 0; round < 30; round++ {
		pairs, err := live.ProposeBatch(8)
		if err != nil {
			t.Fatal(err)
		}
		commitBatch(live, pairs)
	}

	restored, _ := mustSampler(t, 4000, opts)
	if err := restored.RestoreState(live.State()); err != nil {
		t.Fatal(err)
	}

	for round := 0; round < 20; round++ {
		b1, err1 := live.ProposeBatch(8)
		b2, err2 := restored.ProposeBatch(8)
		if err1 != nil || err2 != nil {
			t.Fatalf("round %d: errors %v / %v", round, err1, err2)
		}
		if len(b1) != len(b2) {
			t.Fatalf("round %d: batch sizes %d vs %d", round, len(b1), len(b2))
		}
		for i := range b1 {
			if b1[i] != b2[i] {
				t.Fatalf("round %d: batches diverge at %d: %d vs %d", round, i, b1[i], b2[i])
			}
		}
		commitBatch(live, b1)
		commitBatch(restored, b2)
		g1, g2 := live.Estimate(), restored.Estimate()
		if g1 != g2 && !(math.IsNaN(g1) && math.IsNaN(g2)) {
			t.Fatalf("round %d: estimates diverge: %v vs %v", round, g1, g2)
		}
	}
}

// TestRestoreRejectsOutOfRangeLabels: a corrupted snapshot whose label map
// points outside the pool must be a clean error, not an index panic while
// rebuilding the proposability accounting (oasis-server restores snapshots
// from disk at startup).
func TestRestoreRejectsOutOfRangeLabels(t *testing.T) {
	s, _ := mustSampler(t, 50, oasis.Options{Strata: 4, Seed: 1})
	st := s.State()
	st.Labels = map[int]bool{999999: true}
	if err := s.RestoreState(st); err == nil {
		t.Fatal("restore accepted a label for a pair outside the pool")
	}
	st.Labels = map[int]bool{-3: false}
	if err := s.RestoreState(st); err == nil {
		t.Fatal("restore accepted a negative pair id")
	}
	// The sampler must still be usable after the rejected restores.
	if pairs, err := s.ProposeBatch(5); err != nil || len(pairs) != 5 {
		t.Fatalf("sampler unusable after rejected restore: %d pairs, err %v", len(pairs), err)
	}
}

// TestProposeBatchExhaustion checks the typed-exhaustion contract on a tiny
// pool: the partial batch comes back with ErrExhausted, released pairs
// return to the supply, and a fully labelled pool is terminal.
func TestProposeBatchExhaustion(t *testing.T) {
	s, truth := mustSampler(t, 30, oasis.Options{Strata: 4, Seed: 3})

	pairs, err := s.ProposeBatch(50)
	if !errors.Is(err, oasis.ErrExhausted) {
		t.Fatalf("over-sized batch: err = %v, want ErrExhausted", err)
	}
	if len(pairs) != 30 {
		t.Fatalf("got %d proposals of 30-pair pool, want all 30", len(pairs))
	}
	seen := map[int]bool{}
	for _, pair := range pairs {
		if seen[pair] {
			t.Fatalf("pair %d proposed twice in one batch", pair)
		}
		seen[pair] = true
	}

	// Nothing proposable: empty batch + typed error.
	if extra, err := s.ProposeBatch(1); !errors.Is(err, oasis.ErrExhausted) || len(extra) != 0 {
		t.Fatalf("exhausted propose: %v pairs, err %v", extra, err)
	}

	// Releasing returns supply, exactly that much.
	for _, pair := range pairs[:5] {
		if !s.Release(pair) {
			t.Fatalf("release of outstanding pair %d failed", pair)
		}
	}
	again, err := s.ProposeBatch(10)
	if !errors.Is(err, oasis.ErrExhausted) {
		t.Fatalf("after partial release: err = %v, want ErrExhausted", err)
	}
	if len(again) != 5 {
		t.Fatalf("after releasing 5, re-proposed %d pairs, want 5", len(again))
	}

	// Commit everything; the pool is then terminally exhausted.
	for _, pair := range append(append([]int{}, pairs[5:]...), again...) {
		if err := s.CommitLabel(pair, truth[pair]); err != nil {
			t.Fatal(err)
		}
	}
	if s.LabelsCommitted() != 30 {
		t.Fatalf("labels committed = %d, want 30", s.LabelsCommitted())
	}
	if _, err := s.ProposeBatch(1); !errors.Is(err, oasis.ErrExhausted) {
		t.Fatalf("fully labelled pool: err = %v, want ErrExhausted", err)
	}
}

// TestProposeBatchExactSizeNearExhaustion drives the pool to 90%+ labelled —
// the regime where the seed implementation burned its draw cap and returned
// short batches — and checks the batch is still exactly the remaining
// supply, each pair distinct and fresh.
func TestProposeBatchExactSizeNearExhaustion(t *testing.T) {
	const n = 600
	s, truth := mustSampler(t, n, oasis.Options{Strata: 10, Seed: 21})
	labelled := 0
	for labelled < 550 {
		pairs, err := s.ProposeBatch(50)
		if err != nil && !errors.Is(err, oasis.ErrExhausted) {
			t.Fatal(err)
		}
		for _, pair := range pairs {
			if err := s.CommitLabel(pair, truth[pair]); err != nil {
				t.Fatal(err)
			}
			labelled++
		}
	}
	remaining := n - labelled
	pairs, err := s.ProposeBatch(remaining)
	if err != nil {
		t.Fatalf("ProposeBatch(%d) with exactly that much supply: %v", remaining, err)
	}
	if len(pairs) != remaining {
		t.Fatalf("batch = %d pairs, want the full remaining supply %d", len(pairs), remaining)
	}
	seen := map[int]bool{}
	for _, pair := range pairs {
		if seen[pair] {
			t.Fatalf("pair %d proposed twice", pair)
		}
		seen[pair] = true
		if err := s.CommitLabel(pair, truth[pair]); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.LabelsCommitted(); got != n {
		t.Fatalf("labels committed = %d, want %d", got, n)
	}
	if f := s.Estimate(); math.IsNaN(f) || f < 0 || f > 1 {
		t.Fatalf("estimate after full labelling = %v", f)
	}
}

// TestCommitLabelLifecycle covers the per-pair state machine: commit of an
// unproposed or released pair is rejected, duplicate commits are no-ops, and
// Pending tracks the outstanding set.
func TestCommitLabelLifecycle(t *testing.T) {
	s, _ := mustSampler(t, 500, oasis.Options{Strata: 8, Seed: 2})
	if err := s.CommitLabel(3, true); !errors.Is(err, oasis.ErrNotProposed) {
		t.Fatalf("commit of unproposed pair: %v, want ErrNotProposed", err)
	}
	pairs, err := s.ProposeBatch(6)
	if err != nil || len(pairs) != 6 {
		t.Fatalf("propose: %d pairs, err %v", len(pairs), err)
	}
	if got := len(s.Pending()); got != 6 {
		t.Fatalf("pending = %d, want 6", got)
	}
	if !s.Release(pairs[0]) {
		t.Fatal("release of outstanding pair failed")
	}
	if s.Release(pairs[0]) {
		t.Fatal("double release succeeded")
	}
	if err := s.CommitLabel(pairs[0], true); !errors.Is(err, oasis.ErrNotProposed) {
		t.Fatalf("commit after release: %v, want ErrNotProposed", err)
	}
	if err := s.CommitLabel(pairs[1], true); err != nil {
		t.Fatal(err)
	}
	if err := s.CommitLabel(pairs[1], false); err != nil {
		t.Fatalf("duplicate commit: %v, want nil no-op", err)
	}
	if got := s.LabelsCommitted(); got != 1 {
		t.Fatalf("labels committed = %d, want 1 (duplicate must not double-count)", got)
	}
	if got := len(s.Pending()); got != 4 {
		t.Fatalf("pending = %d, want 4", got)
	}
}
