// Command benchjson converts `go test -bench` output on stdin into a JSON
// benchmark record and appends it to a trajectory file, so every PR leaves a
// perf baseline for the next one to beat:
//
//	go test -run '^$' -bench . -benchmem ./... | benchjson -out BENCH_core.json -label my-change
//
// The output file holds a list of runs; each run records the label, the
// platform, the timestamp and every parsed benchmark line (iterations,
// ns/op, and — with -benchmem — B/op and allocs/op). An existing file is
// read first and the new run appended, so the file accumulates the perf
// trajectory across commits. Use `make bench-json` for the canonical
// hot-path benchmark set.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"time"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	BytesPerOp float64 `json:"bytes_per_op,omitempty"`
	AllocsOp   *int64  `json:"allocs_per_op,omitempty"`
}

// Run is one invocation of the benchmark suite.
type Run struct {
	Label      string      `json:"label"`
	Date       string      `json:"date"`
	GoOS       string      `json:"goos"`
	GoArch     string      `json:"goarch"`
	GoVersion  string      `json:"go_version"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// File is the trajectory: a list of runs, oldest first.
type File struct {
	Schema int   `json:"schema"`
	Runs   []Run `json:"runs"`
}

// benchLine matches e.g.
//
//	BenchmarkDraw-8   12345678   95.31 ns/op   0 B/op   0 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+([0-9.]+) ns/op(?:\s+([0-9.]+) B/op\s+(\d+) allocs/op)?`)

func main() {
	out := flag.String("out", "BENCH_core.json", "trajectory file to append the run to")
	label := flag.String("label", "dev", "label for this run (e.g. a PR or commit id)")
	flag.Parse()

	run := Run{
		Label:     *label,
		Date:      time.Now().UTC().Format(time.RFC3339),
		GoOS:      runtime.GOOS,
		GoArch:    runtime.GOARCH,
		GoVersion: runtime.Version(),
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // pass through so the human still sees the run
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		ns, _ := strconv.ParseFloat(m[3], 64)
		bench := Benchmark{Name: m[1], Iterations: iters, NsPerOp: ns}
		if m[4] != "" {
			bench.BytesPerOp, _ = strconv.ParseFloat(m[4], 64)
			allocs, _ := strconv.ParseInt(m[5], 10, 64)
			bench.AllocsOp = &allocs
		}
		run.Benchmarks = append(run.Benchmarks, bench)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: read stdin: %v\n", err)
		os.Exit(1)
	}
	if len(run.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found on stdin")
		os.Exit(1)
	}

	file := File{Schema: 1}
	if data, err := os.ReadFile(*out); err == nil {
		if err := json.Unmarshal(data, &file); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: existing %s is not a trajectory file: %v\n", *out, err)
			os.Exit(1)
		}
	} else if !os.IsNotExist(err) {
		fmt.Fprintf(os.Stderr, "benchjson: read %s: %v\n", *out, err)
		os.Exit(1)
	}
	file.Schema = 1
	file.Runs = append(file.Runs, run)

	data, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: write %s: %v\n", *out, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: appended run %q (%d benchmarks) to %s\n", *label, len(run.Benchmarks), *out)
}
