// Command oasis-server runs the OASIS evaluation service: a JSON-over-HTTP
// API for creating evaluation sessions over scored record-pair pools,
// leasing batches of pairs to label, committing crowd answers, and reading
// off F-measure estimates. See internal/server for the API surface and the
// repository README for a curl walkthrough.
//
// Usage:
//
//	oasis-server [-addr :8080] [-lease 1m] [-shards N] [-max-body bytes]
//	             [-max-propose N] [-rate-limit N] [-rate-burst N]
//	             [-session-rate-limit N] [-session-rate-burst N]
//	             [-max-inflight N] [-max-queue N] [-queue-timeout 250ms]
//	             [-pools-dir dir] [-pool-gc 10m] [-pool-mem-budget bytes]
//	             [-wal dir] [-fsync always|off|100ms] [-compact-every 10m]
//	             [-snapshot state.json] [-snapshot-interval 1m]
//	             [-pprof addr] [-access-log] [-slow-request 1s]
//	             [-trace-sample 0.01] [-diag-series N]
//	             [-diag-ess-degraded f] [-diag-ess-degenerate f]
//	             [-diag-min-labels N] [-version]
//
// -pools-dir enables the durable content-addressed pool store
// (internal/poolstore): pools uploaded once via POST /v1/pools are stored as
// immutable fsync'd files named by their content hash, any number of
// sessions reference one shared in-memory copy by poolId, and WAL create
// records/snapshots persist only the hash. Unset, the store is memory-only —
// except with -wal (defaults to <wal>/pools) or -snapshot (defaults to
// <snapshot>.pools), so recovery can always resolve the pool references its
// durable state carries. -pool-gc sweeps the
// in-memory columns of pools no session has referenced for one interval
// (the durable files stay; the next use reloads them). -pool-mem-budget
// additionally caps the store's resident pool memory (heap columns, mmap'd
// files and cached strata) in bytes: crossing the budget evicts
// least-recently-used unreferenced pools immediately, without waiting for
// the idle sweep. On linux/{amd64,arm64} cold pools are served zero-copy off
// a read-only mmap of the pool file (see the README's "Memory & zero-copy"
// section); elsewhere they are decoded streaming. -max-body bounds
// every HTTP request body (413 beyond it).
//
// -shards splits the session manager into N independent lock domains
// (rounded up to a power of two; default: an existing WAL directory's
// recorded lane count, else the next power of two at or above GOMAXPROCS),
// so requests for sessions in different shards never contend on one lock.
// With -wal, each shard journals to its own WAL lane, so commit fsyncs in
// different shards overlap too. A WAL directory's lane count is fixed when
// it is first created: an explicit -shards must match it on reopen (legacy
// pre-lane directories are upgraded in place to the chosen count).
//
// Durability comes in two exclusive modes:
//
//   - -wal enables the write-ahead label journal (internal/wal): every
//     session lifecycle event is appended — and, per -fsync, synced — before
//     it is acknowledged, and startup replays snapshot+tail so even a
//     kill -9 loses no acknowledged label. -compact-every folds cold
//     segments into a snapshot on an interval.
//
//   - -snapshot restores every session from the file at startup (if it
//     exists) and writes all sessions back on graceful shutdown
//     (SIGINT/SIGTERM). -snapshot-interval additionally saves atomically on
//     an interval, so a crash loses at most one interval of labels.
//
// The hot propose/labels/estimate round trip also speaks a compact binary
// protocol negotiated per request (Accept / Content-Type:
// application/x-oasis-bin; see the README's "Wire protocol & overload
// behavior" section); plain JSON clients are unaffected. -max-propose caps
// a single propose batch (400 beyond it). The -rate-limit /
// -session-rate-limit token buckets answer excess hot-path requests with
// 429 + Retry-After, and -max-inflight bounds concurrently served hot
// requests — excess requests queue (up to -max-queue, for at most
// -queue-timeout) and are then shed with 503, so goroutine count and
// queueing delay stay bounded at any offered load. Ops routes (healthz,
// metrics, stats, traces) are never shed. Rejections are counted in
// oasis_http_rejected_total{reason}.
//
// With -pprof, a net/http/pprof debug server listens on the given address
// (e.g. localhost:6060) for live CPU/heap profiling of the serving hot path:
//
//	go tool pprof http://localhost:6060/debug/pprof/profile?seconds=10
//
// Observability is always on: GET /metrics serves Prometheus text
// exposition covering HTTP routes, session shards, WAL lanes, the pool
// store, and per-session sampler health (see the README's Observability
// section). -access-log logs one line per request with a request ID;
// requests at or above -slow-request are tagged slow=true. -version
// prints the build version and exits.
//
// Convergence diagnostics are always on too: every commit batch appends one
// point (estimate, asymptotic variance, ESS ratio, labels, wall time) to a
// fixed-capacity per-session ring that downsamples itself in place, so a
// million-label session still costs a few kilobytes. GET
// /v1/sessions/{id}/diagnostics serves the series plus per-stratum health;
// GET /debug/dashboard renders every live session with inline SVG
// sparklines, no external assets. Degeneracy alarms walk each session
// through ok/degraded/degenerate as its ESS ratio crosses the -diag-ess-*
// thresholds (with hysteresis on recovery), exported per session as
// oasis_sampler_health_state, logged once per transition, and stamped on
// the committing request's trace. -diag-series resizes the ring;
// -diag-min-labels suppresses alarms for young sessions.
//
// Request tracing is also always on: a -trace-sample fraction of requests
// (plus every request carrying a sampled W3C traceparent header) records a
// span timeline across all five layers — server middleware, session
// manager (shard-lock wait/hold, create barriers), sampler
// (propose/commit, v(t) rebuilds), WAL (append vs fsync per lane) and
// pool store (acquire mmap/decode, strata cache) — with no allocations on
// unsampled requests. Completed traces land in two lock-free rings (the
// last N, plus every slow or 5xx trace) served at GET /debug/traces and
// GET /debug/traces/{id}. Request IDs, trace IDs and access-log lines all
// share one random-per-boot 64-bit prefix, so any one of them greps to
// the others; with -pprof, handlers additionally run under pprof labels
// (route, shard, WAL sync lane) so CPU profiles slice along the same axes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on the default mux
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"sync"
	"syscall"
	"time"

	"oasis/internal/diag"
	"oasis/internal/obs"
	"oasis/internal/poolstore"
	"oasis/internal/server"
	"oasis/internal/session"
	"oasis/internal/trace"
	"oasis/internal/wal"
)

// version is the release string baked in via
// `-ldflags "-X main.version=..."`; empty builds fall back to the
// module version recorded by the Go toolchain.
var version string

func buildVersion() string {
	if version != "" {
		return version
	}
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" && bi.Main.Version != "(devel)" {
		return bi.Main.Version
	}
	return "devel"
}

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		lease        = flag.Duration("lease", session.DefaultLeaseTTL, "default proposal lease TTL")
		shards       = flag.Int("shards", 0, "session-manager shard count, rounded up to a power of two (0 = derive from GOMAXPROCS); with -wal, must match the directory's lane count once created")
		snapshot     = flag.String("snapshot", "", "snapshot file: restored at startup, saved at shutdown (exclusive with -wal)")
		snapInterval = flag.Duration("snapshot-interval", 0, "with -snapshot: also save atomically every interval (0 = only at graceful shutdown)")
		walDir       = flag.String("wal", "", "write-ahead-log directory: replayed at startup, appended before every acknowledgement (exclusive with -snapshot)")
		fsync        = flag.String("fsync", "always", `WAL fsync policy: "always", "off", or a sync interval like 100ms`)
		compactEvery = flag.Duration("compact-every", 0, "with -wal: fold cold WAL segments into a snapshot every interval (0 = never)")
		poolsDir     = flag.String("pools-dir", "", "directory for the durable content-addressed pool store (empty = in-memory; defaults to <wal>/pools with -wal, <snapshot>.pools with -snapshot)")
		poolGC       = flag.Duration("pool-gc", 0, "evict the in-memory copy of pools unreferenced for this long, checked on the same interval (0 = never)")
		poolMemBud   = flag.Int64("pool-mem-budget", 0, "resident pool memory budget in bytes: evict least-recently-used unreferenced pools (columns, mappings, cached strata) when over it (0 = unlimited)")
		maxBody      = flag.Int64("max-body", server.DefaultMaxBodyBytes, "maximum HTTP request body size in bytes (413 beyond it)")
		maxPropose   = flag.Int("max-propose", server.DefaultMaxPropose, "maximum ?n= batch size a single propose may request (400 beyond it)")
		rateLimit    = flag.Float64("rate-limit", 0, "global hot-path request rate limit in requests/second; beyond it 429 with Retry-After (0 = unlimited)")
		rateBurst    = flag.Int("rate-burst", 0, "global rate-limit burst depth (0 = derive from -rate-limit)")
		sessRate     = flag.Float64("session-rate-limit", 0, "per-session hot-path rate limit in requests/second, so one degenerate session cannot starve the rest (0 = unlimited)")
		sessBurst    = flag.Int("session-rate-burst", 0, "per-session rate-limit burst depth (0 = derive from -session-rate-limit)")
		maxInFlight  = flag.Int("max-inflight", 0, "maximum hot-path requests served at once; excess requests queue up to -max-queue then 503 (0 = unbounded)")
		maxQueue     = flag.Int("max-queue", 0, "with -max-inflight: how many requests may wait for a slot before immediate 503 (0 = no queue)")
		queueTimeout = flag.Duration("queue-timeout", server.DefaultQueueTimeout, "with -max-inflight: longest a queued request waits for a slot before 503")
		pprofAddr    = flag.String("pprof", "", "listen address for the net/http/pprof debug server (empty = disabled)")
		accessLog    = flag.Bool("access-log", false, "log one line per HTTP request, with request ID, route, status, and latency")
		slowReq      = flag.Duration("slow-request", time.Second, "latency at or above which a request counts as slow: tagged slow=true in the access log, counted per route in metrics, and its trace always retained (0 = never)")
		traceSample  = flag.Float64("trace-sample", trace.DefaultSampleRate, "fraction of requests to record a span timeline for (0 = only requests with a sampled inbound traceparent; 1 = all); see GET /debug/traces")
		diagSeries   = flag.Int("diag-series", 0, "per-session convergence-diagnostics ring capacity in retained points; older points are downsampled in place, memory stays fixed (0 = default)")
		diagDegraded = flag.Float64("diag-ess-degraded", 0, "ESS ratio below which a session's sampler health is degraded (0 = default 0.3, negative disables)")
		diagDegen    = flag.Float64("diag-ess-degenerate", 0, "ESS ratio below which a session's sampler health is degenerate (0 = default 0.05, negative disables)")
		diagMinLab   = flag.Int("diag-min-labels", 0, "suppress sampler-health alarms until a session holds this many labels (0 = default 50)")
		showVersion  = flag.Bool("version", false, "print the build version and exit")
	)
	flag.Parse()
	if *showVersion {
		fmt.Printf("oasis-server %s %s %s/%s\n", buildVersion(), runtime.Version(), runtime.GOOS, runtime.GOARCH)
		return
	}
	if *walDir != "" && *snapshot != "" {
		log.Fatalf("-wal and -snapshot are exclusive durability modes; pick one")
	}
	if *snapInterval > 0 && *snapshot == "" {
		log.Fatalf("-snapshot-interval requires -snapshot")
	}
	if *compactEvery > 0 && *walDir == "" {
		log.Fatalf("-compact-every requires -wal")
	}

	if *pprofAddr != "" {
		go func() {
			log.Printf("pprof listening on http://%s/debug/pprof/", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("pprof server: %v", err)
			}
		}()
	}

	nShards := *shards
	if nShards <= 0 {
		// Unset: prefer an existing journal's recorded lane count (the lane
		// count is fixed per directory, and GOMAXPROCS may have changed since
		// it was created); otherwise derive from the hardware.
		nShards = session.DefaultShards()
		if *walDir != "" {
			lanes, err := wal.DirLanes(*walDir)
			if err != nil {
				log.Fatalf("read wal meta: %v", err)
			}
			if lanes > 0 {
				nShards = lanes
			}
		}
	}
	// The pool store opens before the manager and the WAL: replayed create
	// records resolve their pool references through it. With a durability
	// mode but no explicit -pools-dir, pools persist next to the journal or
	// snapshot — durable state that outlives its pools could never be
	// restored.
	if *poolsDir == "" && *walDir != "" {
		*poolsDir = filepath.Join(*walDir, "pools")
	}
	if *poolsDir == "" && *snapshot != "" {
		*poolsDir = *snapshot + ".pools"
	}
	pools, err := poolstore.Open(*poolsDir)
	if err != nil {
		log.Fatalf("open pool store: %v", err)
	}
	switch {
	case *poolsDir != "":
		log.Printf("pool store %s: %d pool(s) indexed", *poolsDir, pools.Len())
	default:
		log.Printf("pool store: in-memory (set -pools-dir to persist pools)")
	}
	if damaged := pools.Damaged(); len(damaged) > 0 {
		log.Printf("pool store: quarantined %d unreadable pool file(s) (left on disk, inspect and remove): %v", len(damaged), damaged)
	}
	if *poolMemBud > 0 {
		if !pools.Durable() {
			// A memory-only store holds the only copy of every pool, so
			// nothing can ever be evicted from it.
			log.Fatalf("-pool-mem-budget requires a durable pool store (set -pools-dir, -wal or -snapshot)")
		}
		pools.SetMemBudget(*poolMemBud)
		log.Printf("pool store: resident memory budget %d bytes (LRU eviction of unreferenced pools)", *poolMemBud)
	}

	// Metrics are always on: the instruments are atomic counters with no
	// hot-path allocations, so there is nothing worth a flag to save.
	reg := obs.NewRegistry()
	mgr := session.NewManager(session.ManagerOptions{
		DefaultLeaseTTL: *lease, Shards: nShards, Pools: pools,
		Metrics: session.NewMetrics(reg, nShards),
		Diag: session.DiagOptions{
			SeriesCapacity: *diagSeries,
			Thresholds: diag.Thresholds{
				ESSDegraded:   *diagDegraded,
				ESSDegenerate: *diagDegen,
				MinLabels:     *diagMinLab,
			},
		},
	})
	log.Printf("session manager sharded %d way(s)", mgr.Shards())
	var journal *wal.Journal
	switch {
	case *walDir != "":
		j, err := wal.Open(*walDir, mgr, wal.Options{Fsync: *fsync, Metrics: wal.NewMetrics(reg)})
		if err != nil {
			log.Fatalf("open wal: %v", err)
		}
		journal = j
		st := j.Stats()
		log.Printf("wal %s: recovered %d session(s) across %d lane(s) — snapshot=%v, %d event(s) replayed, %d skipped, %d torn byte(s) dropped (fsync %s)",
			*walDir, mgr.Len(), st.LaneCount, st.ReplaySnapshot, st.ReplayApplied, st.ReplaySkipped, st.ReplayTornBytes, *fsync)
	case *snapshot != "":
		data, err := os.ReadFile(*snapshot)
		switch {
		case errors.Is(err, os.ErrNotExist):
			log.Printf("snapshot %s not found, starting empty", *snapshot)
		case err != nil:
			log.Fatalf("read snapshot: %v", err)
		default:
			if err := mgr.Restore(data); err != nil {
				log.Fatalf("restore snapshot: %v", err)
			}
			log.Printf("restored %d session(s) from %s", mgr.Len(), *snapshot)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Background maintenance tickers. They are joined (tickers is waited on)
	// after Serve returns, so a periodic snapshot can never race the final
	// shutdown save and clobber it with stale state, and no compaction runs
	// against a closing journal.
	var tickers sync.WaitGroup
	if journal != nil && *compactEvery > 0 {
		tickers.Add(1)
		go func() {
			defer tickers.Done()
			t := time.NewTicker(*compactEvery)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					if err := journal.Compact(); err != nil {
						log.Printf("wal compact: %v", err)
					} else {
						log.Printf("wal compacted (%d segment(s) live)", journal.Stats().Segments)
					}
				}
			}
		}()
	}
	if *poolGC > 0 {
		tickers.Add(1)
		go func() {
			defer tickers.Done()
			t := time.NewTicker(*poolGC)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					if n := pools.Sweep(*poolGC); n > 0 {
						log.Printf("pool store: evicted %d idle pool(s) from memory", n)
					}
				}
			}
		}()
	}
	if *snapInterval > 0 {
		tickers.Add(1)
		go func() {
			defer tickers.Done()
			t := time.NewTicker(*snapInterval)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					if err := saveSnapshot(mgr, *snapshot); err != nil {
						log.Printf("periodic snapshot: %v", err)
					}
				}
			}
		}()
	}

	srv := server.New(mgr)
	if journal != nil {
		srv.SetJournal(journal)
	}
	srv.SetPools(pools)
	srv.SetMaxBodyBytes(*maxBody)
	srv.SetMaxPropose(*maxPropose)
	if *rateLimit > 0 || *sessRate > 0 || *maxInFlight > 0 {
		srv.SetAdmission(server.AdmissionConfig{
			RatePerSec:        *rateLimit,
			Burst:             *rateBurst,
			SessionRatePerSec: *sessRate,
			SessionBurst:      *sessBurst,
			MaxInFlight:       *maxInFlight,
			MaxQueue:          *maxQueue,
			QueueTimeout:      *queueTimeout,
		})
		log.Printf("admission control: rate-limit=%v/s session-rate-limit=%v/s max-inflight=%d max-queue=%d queue-timeout=%s",
			*rateLimit, *sessRate, *maxInFlight, *maxQueue, *queueTimeout)
	}
	srv.SetVersion(buildVersion())
	// Tracing is always on (unsampled requests cost nothing on the hot
	// path) and must be enabled before the metrics registry so the trace
	// counter families are declared. A flag value of 0 disables head
	// sampling but still honors inbound sampled traceparent headers.
	rate := *traceSample
	if rate == 0 {
		rate = -1
	}
	srv.EnableTracing(trace.NewCollector(trace.Options{SampleRate: rate, Slow: *slowReq}))
	srv.SetSlowRequest(*slowReq)
	if *pprofAddr != "" {
		srv.EnableProfileLabels()
	}
	srv.EnableMetrics(reg)
	if *accessLog {
		srv.SetAccessLog(log.Default(), *slowReq)
	}
	if *snapshot != "" {
		// Persist a fresh snapshot before any pool delete: once it is on
		// disk, no durable state references the pool about to go, so a crash
		// can never strand a snapshot that names a deleted pool (which would
		// make it unrestorable — snapshot mode has no journal tail to absolve
		// the reference the way WAL replay does).
		srv.SetPoolDeleteBarrier(func() error { return saveSnapshot(mgr, *snapshot) })
	}
	ready := make(chan string, 1)
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ctx, *addr, ready) }()
	select {
	case bound := <-ready:
		log.Printf("oasis-server listening on %s (lease TTL %s)", bound, *lease)
	case err := <-errCh:
		log.Fatalf("serve: %v", err)
	}
	if err := <-errCh; err != nil {
		log.Fatalf("serve: %v", err)
	}
	tickers.Wait()

	if journal != nil {
		if err := journal.Close(); err != nil {
			log.Fatalf("close wal: %v", err)
		}
		log.Printf("wal synced and closed")
	}
	if *snapshot != "" {
		if err := saveSnapshot(mgr, *snapshot); err != nil {
			log.Fatalf("save snapshot: %v", err)
		}
		log.Printf("saved %d session(s) to %s", mgr.Len(), *snapshot)
	}
	log.Printf("bye")
}

// saveSnapshot writes the manager state atomically and durably: temp file in
// the same directory, fsync, rename into place, fsync the directory; the
// temp file is removed on failure.
func saveSnapshot(mgr *session.Manager, path string) error {
	data, err := mgr.Snapshot()
	if err != nil {
		return err
	}
	return wal.WriteFileAtomic(path, data, 0o644)
}
