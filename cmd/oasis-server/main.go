// Command oasis-server runs the OASIS evaluation service: a JSON-over-HTTP
// API for creating evaluation sessions over scored record-pair pools,
// leasing batches of pairs to label, committing crowd answers, and reading
// off F-measure estimates. See internal/server for the API surface and the
// repository README for a curl walkthrough.
//
// Usage:
//
//	oasis-server [-addr :8080] [-lease 1m] [-snapshot state.json] [-pprof addr]
//
// With -snapshot, the server restores every session from the file at
// startup (if it exists) and writes all sessions back on graceful shutdown
// (SIGINT/SIGTERM), so purchased labels survive restarts.
//
// With -pprof, a net/http/pprof debug server listens on the given address
// (e.g. localhost:6060) for live CPU/heap profiling of the serving hot path:
//
//	go tool pprof http://localhost:6060/debug/pprof/profile?seconds=10
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on the default mux
	"os"
	"os/signal"
	"syscall"
	"time"

	"oasis/internal/server"
	"oasis/internal/session"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		lease     = flag.Duration("lease", session.DefaultLeaseTTL, "default proposal lease TTL")
		snapshot  = flag.String("snapshot", "", "snapshot file: restored at startup, saved at shutdown")
		pprofAddr = flag.String("pprof", "", "listen address for the net/http/pprof debug server (empty = disabled)")
	)
	flag.Parse()

	if *pprofAddr != "" {
		go func() {
			log.Printf("pprof listening on http://%s/debug/pprof/", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("pprof server: %v", err)
			}
		}()
	}

	mgr := session.NewManager(session.ManagerOptions{DefaultLeaseTTL: *lease})
	if *snapshot != "" {
		data, err := os.ReadFile(*snapshot)
		switch {
		case errors.Is(err, os.ErrNotExist):
			log.Printf("snapshot %s not found, starting empty", *snapshot)
		case err != nil:
			log.Fatalf("read snapshot: %v", err)
		default:
			if err := mgr.Restore(data); err != nil {
				log.Fatalf("restore snapshot: %v", err)
			}
			log.Printf("restored %d session(s) from %s", mgr.Len(), *snapshot)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	srv := server.New(mgr)
	ready := make(chan string, 1)
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ctx, *addr, ready) }()
	select {
	case bound := <-ready:
		log.Printf("oasis-server listening on %s (lease TTL %s)", bound, *lease)
	case err := <-errCh:
		log.Fatalf("serve: %v", err)
	}
	if err := <-errCh; err != nil {
		log.Fatalf("serve: %v", err)
	}

	if *snapshot != "" {
		if err := saveSnapshot(mgr, *snapshot); err != nil {
			log.Fatalf("save snapshot: %v", err)
		}
		log.Printf("saved %d session(s) to %s", mgr.Len(), *snapshot)
	}
	log.Printf("bye")
}

// saveSnapshot writes the manager state atomically (write temp, rename).
func saveSnapshot(mgr *session.Manager, path string) error {
	data, err := mgr.Snapshot()
	if err != nil {
		return err
	}
	tmp := fmt.Sprintf("%s.tmp-%d", path, time.Now().UnixNano())
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
