// Command oasis-server runs the OASIS evaluation service: a JSON-over-HTTP
// API for creating evaluation sessions over scored record-pair pools,
// leasing batches of pairs to label, committing crowd answers, and reading
// off F-measure estimates. See internal/server for the API surface and the
// repository README for a curl walkthrough.
//
// Usage:
//
//	oasis-server [-addr :8080] [-lease 1m] [-shards N]
//	             [-wal dir] [-fsync always|off|100ms] [-compact-every 10m]
//	             [-snapshot state.json] [-snapshot-interval 1m]
//	             [-pprof addr]
//
// -shards splits the session manager into N independent lock domains
// (rounded up to a power of two; default: an existing WAL directory's
// recorded lane count, else the next power of two at or above GOMAXPROCS),
// so requests for sessions in different shards never contend on one lock.
// With -wal, each shard journals to its own WAL lane, so commit fsyncs in
// different shards overlap too. A WAL directory's lane count is fixed when
// it is first created: an explicit -shards must match it on reopen (legacy
// pre-lane directories are upgraded in place to the chosen count).
//
// Durability comes in two exclusive modes:
//
//   - -wal enables the write-ahead label journal (internal/wal): every
//     session lifecycle event is appended — and, per -fsync, synced — before
//     it is acknowledged, and startup replays snapshot+tail so even a
//     kill -9 loses no acknowledged label. -compact-every folds cold
//     segments into a snapshot on an interval.
//
//   - -snapshot restores every session from the file at startup (if it
//     exists) and writes all sessions back on graceful shutdown
//     (SIGINT/SIGTERM). -snapshot-interval additionally saves atomically on
//     an interval, so a crash loses at most one interval of labels.
//
// With -pprof, a net/http/pprof debug server listens on the given address
// (e.g. localhost:6060) for live CPU/heap profiling of the serving hot path:
//
//	go tool pprof http://localhost:6060/debug/pprof/profile?seconds=10
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on the default mux
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"oasis/internal/server"
	"oasis/internal/session"
	"oasis/internal/wal"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		lease        = flag.Duration("lease", session.DefaultLeaseTTL, "default proposal lease TTL")
		shards       = flag.Int("shards", 0, "session-manager shard count, rounded up to a power of two (0 = derive from GOMAXPROCS); with -wal, must match the directory's lane count once created")
		snapshot     = flag.String("snapshot", "", "snapshot file: restored at startup, saved at shutdown (exclusive with -wal)")
		snapInterval = flag.Duration("snapshot-interval", 0, "with -snapshot: also save atomically every interval (0 = only at graceful shutdown)")
		walDir       = flag.String("wal", "", "write-ahead-log directory: replayed at startup, appended before every acknowledgement (exclusive with -snapshot)")
		fsync        = flag.String("fsync", "always", `WAL fsync policy: "always", "off", or a sync interval like 100ms`)
		compactEvery = flag.Duration("compact-every", 0, "with -wal: fold cold WAL segments into a snapshot every interval (0 = never)")
		pprofAddr    = flag.String("pprof", "", "listen address for the net/http/pprof debug server (empty = disabled)")
	)
	flag.Parse()
	if *walDir != "" && *snapshot != "" {
		log.Fatalf("-wal and -snapshot are exclusive durability modes; pick one")
	}
	if *snapInterval > 0 && *snapshot == "" {
		log.Fatalf("-snapshot-interval requires -snapshot")
	}
	if *compactEvery > 0 && *walDir == "" {
		log.Fatalf("-compact-every requires -wal")
	}

	if *pprofAddr != "" {
		go func() {
			log.Printf("pprof listening on http://%s/debug/pprof/", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("pprof server: %v", err)
			}
		}()
	}

	nShards := *shards
	if nShards <= 0 {
		// Unset: prefer an existing journal's recorded lane count (the lane
		// count is fixed per directory, and GOMAXPROCS may have changed since
		// it was created); otherwise derive from the hardware.
		nShards = session.DefaultShards()
		if *walDir != "" {
			lanes, err := wal.DirLanes(*walDir)
			if err != nil {
				log.Fatalf("read wal meta: %v", err)
			}
			if lanes > 0 {
				nShards = lanes
			}
		}
	}
	mgr := session.NewManager(session.ManagerOptions{DefaultLeaseTTL: *lease, Shards: nShards})
	log.Printf("session manager sharded %d way(s)", mgr.Shards())
	var journal *wal.Journal
	switch {
	case *walDir != "":
		j, err := wal.Open(*walDir, mgr, wal.Options{Fsync: *fsync})
		if err != nil {
			log.Fatalf("open wal: %v", err)
		}
		journal = j
		st := j.Stats()
		log.Printf("wal %s: recovered %d session(s) across %d lane(s) — snapshot=%v, %d event(s) replayed, %d skipped, %d torn byte(s) dropped (fsync %s)",
			*walDir, mgr.Len(), st.LaneCount, st.ReplaySnapshot, st.ReplayApplied, st.ReplaySkipped, st.ReplayTornBytes, *fsync)
	case *snapshot != "":
		data, err := os.ReadFile(*snapshot)
		switch {
		case errors.Is(err, os.ErrNotExist):
			log.Printf("snapshot %s not found, starting empty", *snapshot)
		case err != nil:
			log.Fatalf("read snapshot: %v", err)
		default:
			if err := mgr.Restore(data); err != nil {
				log.Fatalf("restore snapshot: %v", err)
			}
			log.Printf("restored %d session(s) from %s", mgr.Len(), *snapshot)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Background maintenance tickers. They are joined (tickers is waited on)
	// after Serve returns, so a periodic snapshot can never race the final
	// shutdown save and clobber it with stale state, and no compaction runs
	// against a closing journal.
	var tickers sync.WaitGroup
	if journal != nil && *compactEvery > 0 {
		tickers.Add(1)
		go func() {
			defer tickers.Done()
			t := time.NewTicker(*compactEvery)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					if err := journal.Compact(); err != nil {
						log.Printf("wal compact: %v", err)
					} else {
						log.Printf("wal compacted (%d segment(s) live)", journal.Stats().Segments)
					}
				}
			}
		}()
	}
	if *snapInterval > 0 {
		tickers.Add(1)
		go func() {
			defer tickers.Done()
			t := time.NewTicker(*snapInterval)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					if err := saveSnapshot(mgr, *snapshot); err != nil {
						log.Printf("periodic snapshot: %v", err)
					}
				}
			}
		}()
	}

	srv := server.New(mgr)
	if journal != nil {
		srv.SetJournal(journal)
	}
	ready := make(chan string, 1)
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ctx, *addr, ready) }()
	select {
	case bound := <-ready:
		log.Printf("oasis-server listening on %s (lease TTL %s)", bound, *lease)
	case err := <-errCh:
		log.Fatalf("serve: %v", err)
	}
	if err := <-errCh; err != nil {
		log.Fatalf("serve: %v", err)
	}
	tickers.Wait()

	if journal != nil {
		if err := journal.Close(); err != nil {
			log.Fatalf("close wal: %v", err)
		}
		log.Printf("wal synced and closed")
	}
	if *snapshot != "" {
		if err := saveSnapshot(mgr, *snapshot); err != nil {
			log.Fatalf("save snapshot: %v", err)
		}
		log.Printf("saved %d session(s) to %s", mgr.Len(), *snapshot)
	}
	log.Printf("bye")
}

// saveSnapshot writes the manager state atomically and durably: temp file in
// the same directory, fsync, rename into place, fsync the directory; the
// temp file is removed on failure.
func saveSnapshot(mgr *session.Manager, path string) error {
	data, err := mgr.Snapshot()
	if err != nil {
		return err
	}
	return wal.WriteFileAtomic(path, data, 0o644)
}
