package main

// Crash-recovery end-to-end test: build the real oasis-server binary, drive
// it over HTTP with -wal -fsync always, SIGKILL it mid-session, restart it
// from the WAL directory, and demand the recovered server continue the
// exact proposal sequence — compared bit-for-bit against an uninterrupted
// in-process reference session driven with the same request pattern. This
// is the acceptance gate for the durable label journal: kill -9 plus
// recovery must be indistinguishable from never having crashed.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	"oasis"
	"oasis/internal/rng"
	"oasis/internal/server"
	"oasis/internal/session"
	"oasis/internal/trace"
)

// e2ePool mirrors the synthetic pool generators used across the test suite.
func e2ePool(n int, seed uint64) (scores []float64, preds, truth []bool) {
	r := rng.New(seed)
	scores = make([]float64, n)
	preds = make([]bool, n)
	truth = make([]bool, n)
	for i := 0; i < n; i++ {
		u := r.Float64()
		scores[i] = u * u
		preds[i] = scores[i] >= 0.5
		truth[i] = r.Bernoulli(scores[i])
	}
	return scores, preds, truth
}

var listenRE = regexp.MustCompile(`oasis-server listening on ([^ ]+)`)

// startServer launches the built binary and waits for its listen line.
func startServer(t *testing.T, bin string, args ...string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			if m := listenRE.FindStringSubmatch(sc.Text()); m != nil {
				select {
				case addrCh <- m[1]:
				default:
				}
			}
		}
	}()
	select {
	case addr := <-addrCh:
		return cmd, addr
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatal("server did not report a listen address")
		return nil, ""
	}
}

func postJSON(t *testing.T, url string, body, out any) int {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

// driveServerRound proposes a batch over HTTP and commits every pair.
func driveServerRound(t *testing.T, base, id string, batch int, truth []bool) []int {
	t.Helper()
	var pr server.ProposeResponse
	if code := getJSON(t, fmt.Sprintf("%s/v1/sessions/%s/propose?n=%d", base, id, batch), &pr); code != http.StatusOK {
		t.Fatalf("propose %s: status %d", id, code)
	}
	if len(pr.Proposals) != batch {
		t.Fatalf("%s proposed %d pairs, want %d", id, len(pr.Proposals), batch)
	}
	req := server.LabelsRequest{}
	pairs := make([]int, len(pr.Proposals))
	for i, p := range pr.Proposals {
		pairs[i] = p.Pair
		req.Labels = append(req.Labels, server.Label{Pair: p.Pair, Label: truth[p.Pair]})
	}
	var lr server.LabelsResponse
	if code := postJSON(t, base+"/v1/sessions/"+id+"/labels", req, &lr); code != http.StatusOK {
		t.Fatalf("labels %s: status %d", id, code)
	}
	if lr.Committed != len(req.Labels) {
		t.Fatalf("%s committed %d of %d", id, lr.Committed, len(req.Labels))
	}
	return pairs
}

// driveRefRound is the in-process mirror of driveServerRound.
func driveRefRound(t *testing.T, s *session.Session, batch int, truth []bool) []int {
	t.Helper()
	props, err := s.Propose(batch)
	if err != nil {
		t.Fatal(err)
	}
	if len(props) != batch {
		t.Fatalf("reference proposed %d pairs, want %d", len(props), batch)
	}
	pairs := make([]int, len(props))
	labels := make([]bool, len(props))
	for i, p := range props {
		pairs[i] = p.Pair
		labels[i] = truth[p.Pair]
	}
	if _, err := s.CommitBatch(pairs, labels); err != nil {
		t.Fatal(err)
	}
	return pairs
}

func TestCrashRecoveryEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills a real server binary")
	}
	bin := filepath.Join(t.TempDir(), "oasis-server")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	walDir := t.TempDir()

	scores, preds, truth := e2ePool(3000, 42)
	cfg := session.Config{
		ID: "e2e", Scores: scores, Preds: preds, Calibrated: true,
		Options:  oasis.Options{Strata: 12, Seed: 77},
		LeaseTTL: time.Minute,
	}
	const (
		batch       = 16
		preRounds   = 12
		postRounds  = 12
		totalRounds = preRounds + postRounds
	)

	// Uninterrupted in-process references: one inline session and one that
	// will be served by poolId on the server side — the content-addressed
	// path must be indistinguishable from inline, before and after kill -9.
	refMgr := session.NewManager(session.ManagerOptions{})
	ref, err := refMgr.Create(cfg)
	if err != nil {
		t.Fatal(err)
	}
	refCfg := cfg
	refCfg.ID = "e2e-pool"
	refCfg.Options.Seed = 78
	refPool, err := refMgr.Create(refCfg)
	if err != nil {
		t.Fatal(err)
	}

	// Phase 1: live server, create + label, then SIGKILL between batches.
	// -shards 4 exercises the multi-lane WAL: the journal's lane count is
	// fixed at creation, so the restarted server must come back with the
	// same value. The default -pools-dir (<wal>/pools) persists the shared
	// pool next to the journal.
	cmd, addr := startServer(t, bin, "-addr", "127.0.0.1:0", "-wal", walDir, "-fsync", "always", "-shards", "4")
	base := "http://" + addr
	if code := postJSON(t, base+"/v1/sessions", cfg, nil); code != http.StatusCreated {
		cmd.Process.Kill()
		t.Fatalf("create: status %d", code)
	}
	// Upload the pool, then create the second session by reference. The
	// inline create above was interned into the store under the same content
	// address, so this upload may legitimately land as a dedup hit (200).
	var uploaded server.PoolResponse
	if code := postJSON(t, base+"/v1/pools", server.PoolUploadRequest{Scores: scores, Preds: preds}, &uploaded); code != http.StatusCreated && code != http.StatusOK {
		cmd.Process.Kill()
		t.Fatalf("pool upload: status %d", code)
	}
	poolCfg := session.Config{
		ID: "e2e-pool", PoolID: uploaded.PoolID, Calibrated: true,
		Options:  oasis.Options{Strata: 12, Seed: 78},
		LeaseTTL: time.Minute,
	}
	var poolSt session.Status
	if code := postJSON(t, base+"/v1/sessions", poolCfg, &poolSt); code != http.StatusCreated {
		cmd.Process.Kill()
		t.Fatalf("poolref create: status %d", code)
	}
	if poolSt.PoolID != uploaded.PoolID || poolSt.PoolSize != len(scores) {
		cmd.Process.Kill()
		t.Fatalf("poolref session status = %+v", poolSt)
	}
	for round := 0; round < preRounds; round++ {
		for _, sess := range []struct {
			id  string
			ref *session.Session
		}{{"e2e", ref}, {"e2e-pool", refPool}} {
			got := driveServerRound(t, base, sess.id, batch, truth)
			want := driveRefRound(t, sess.ref, batch, truth)
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("pre-crash round %d (%s) diverged at %d: server pair %d, reference %d", round, sess.id, i, got[i], want[i])
				}
			}
		}
	}
	var health server.HealthResponse
	if code := getJSON(t, base+"/healthz", &health); code != http.StatusOK || health.Status != "ok" {
		t.Fatalf("healthz: status %d, %+v", code, health)
	}
	var stats server.StatsResponse
	if code := getJSON(t, base+"/v1/stats", &stats); code != http.StatusOK {
		t.Fatalf("stats: status %d", code)
	}
	if stats.Sessions != 2 || stats.LabelsCommitted != 2*preRounds*batch || stats.WAL == nil || stats.WAL.RecordsAppended == 0 {
		t.Fatalf("unexpected stats before crash: %+v (wal %+v)", stats, stats.WAL)
	}
	// Both sessions — the interned inline one and the explicit poolref one —
	// share the single stored copy: one pool, one resident copy, two refs.
	if stats.Pools == nil || stats.Pools.Pools != 1 || stats.Pools.Refs != 2 || stats.Pools.Loaded != 1 {
		t.Fatalf("unexpected pool stats before crash: %+v", stats.Pools)
	}

	if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()

	// Phase 2: restart from the WAL; the recovered sampler must continue
	// the exact sequence the uninterrupted reference produces.
	cmd2, addr2 := startServer(t, bin, "-addr", "127.0.0.1:0", "-wal", walDir, "-fsync", "always", "-shards", "4")
	defer func() {
		cmd2.Process.Signal(os.Interrupt)
		done := make(chan struct{})
		go func() { cmd2.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			cmd2.Process.Kill()
			cmd2.Wait()
		}
	}()
	base2 := "http://" + addr2

	var st session.Status
	for _, id := range []string{"e2e", "e2e-pool"} {
		if code := getJSON(t, base2+"/v1/sessions/"+id, &st); code != http.StatusOK {
			t.Fatalf("recovered session %s missing: status %d", id, code)
		}
		if st.LabelsCommitted != preRounds*batch {
			t.Fatalf("%s recovered %d labels, want %d", id, st.LabelsCommitted, preRounds*batch)
		}
	}
	// The recovered server resolved the stored pool again: same single copy,
	// both replayed sessions referencing it.
	if code := getJSON(t, base2+"/v1/stats", &stats); code != http.StatusOK {
		t.Fatalf("stats after recovery: status %d", code)
	}
	if stats.Pools == nil || stats.Pools.Pools != 1 || stats.Pools.Refs != 2 || stats.Pools.Loaded != 1 {
		t.Fatalf("unexpected pool stats after recovery: %+v", stats.Pools)
	}
	// The replay counters must survive into both /v1/stats and /metrics:
	// a scrape right after recovery is how an operator confirms the journal
	// actually replayed instead of starting empty.
	if stats.WAL == nil || stats.WAL.ReplayApplied == 0 {
		t.Fatalf("recovery replayed no WAL events: %+v", stats.WAL)
	}
	exposition := getRaw(t, base2+"/metrics")
	if v := metricValue(t, exposition, "oasis_wal_replay_applied_total"); v == 0 {
		t.Fatal("scraped oasis_wal_replay_applied_total = 0 after recovery")
	} else if v != float64(stats.WAL.ReplayApplied) {
		t.Fatalf("scraped replay counter %v, stats says %d", v, stats.WAL.ReplayApplied)
	}
	if v := metricValue(t, exposition, "oasis_sessions"); v != 2 {
		t.Fatalf("scraped oasis_sessions = %v after recovery, want 2", v)
	}
	for round := 0; round < postRounds; round++ {
		for _, sess := range []struct {
			id  string
			ref *session.Session
		}{{"e2e", ref}, {"e2e-pool", refPool}} {
			got := driveServerRound(t, base2, sess.id, batch, truth)
			want := driveRefRound(t, sess.ref, batch, truth)
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("post-recovery round %d (%s) diverged at %d: server pair %d, reference %d", round, sess.id, i, got[i], want[i])
				}
			}
		}
	}

	// The estimates must agree exactly too: the JSON float64 round trip is
	// lossless, so any difference is real state divergence.
	for _, sess := range []struct {
		id  string
		ref *session.Session
	}{{"e2e", ref}, {"e2e-pool", refPool}} {
		if code := getJSON(t, base2+"/v1/sessions/"+sess.id+"/estimate", &st); code != http.StatusOK {
			t.Fatalf("estimate %s: status %d", sess.id, code)
		}
		if st.LabelsCommitted != totalRounds*batch {
			t.Fatalf("%s final labels %d, want %d", sess.id, st.LabelsCommitted, totalRounds*batch)
		}
		refEst := sess.ref.Estimate()
		if st.Estimate == nil || *st.Estimate != refEst {
			t.Fatalf("%s recovered estimate %v, reference %v", sess.id, st.Estimate, refEst)
		}
	}
	t.Logf("kill -9 + WAL recovery reproduced %d proposals (inline + poolref) and both estimates exactly", 2*totalRounds*batch)
}

// getRaw fetches a URL and returns the body as text.
func getRaw(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// metricValue sums every sample of one family in a raw exposition.
func metricValue(t *testing.T, exposition, family string) float64 {
	t.Helper()
	var sum float64
	found := false
	for _, line := range strings.Split(exposition, "\n") {
		if !strings.HasPrefix(line, family) {
			continue
		}
		rest := line[len(family):]
		if len(rest) > 0 && rest[0] != ' ' && rest[0] != '{' {
			continue // longer name sharing the prefix
		}
		sp := strings.LastIndexByte(line, ' ')
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("bad sample line %q: %v", line, err)
		}
		sum += v
		found = true
	}
	if !found {
		t.Fatalf("family %q absent from exposition", family)
	}
	return sum
}

// TestMetricsSmokeEndToEnd boots the real binary, runs a short workload,
// and demands a well-formed /metrics exposition with live hot-path
// counters — the same check `make metrics-smoke` runs in CI.
func TestMetricsSmokeEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs a real server binary")
	}
	bin := filepath.Join(t.TempDir(), "oasis-server")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	cmd, addr := startServer(t, bin, "-addr", "127.0.0.1:0", "-wal", t.TempDir(), "-fsync", "always", "-access-log")
	defer func() {
		cmd.Process.Signal(os.Interrupt)
		done := make(chan struct{})
		go func() { cmd.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			cmd.Process.Kill()
			cmd.Wait()
		}
	}()
	base := "http://" + addr

	scores, preds, truth := e2ePool(1000, 7)
	cfg := session.Config{
		ID: "smoke", Scores: scores, Preds: preds, Calibrated: true,
		Options: oasis.Options{Strata: 10, Seed: 5},
	}
	if code := postJSON(t, base+"/v1/sessions", cfg, nil); code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	const rounds, batch = 5, 16
	for i := 0; i < rounds; i++ {
		driveServerRound(t, base, "smoke", batch, truth)
	}

	exposition := getRaw(t, base+"/metrics")
	// Exposition sanity: every family has HELP and TYPE, and the hot-path
	// counters that the workload must have driven are non-zero.
	for _, fam := range []string{"oasis_session_labels_committed_total", "oasis_http_requests_total",
		"oasis_wal_records_appended_total", "oasis_wal_fsync_seconds_count",
		"oasis_session_commit_seconds_count", "oasis_sampler_ess_ratio"} {
		root := strings.TrimSuffix(strings.TrimSuffix(fam, "_count"), "_seconds") + "_seconds"
		if !strings.Contains(fam, "_seconds") {
			root = fam
		}
		if !strings.Contains(exposition, "# HELP "+root) || !strings.Contains(exposition, "# TYPE "+root) {
			t.Errorf("family %s lacks HELP/TYPE", root)
		}
	}
	if v := metricValue(t, exposition, "oasis_session_labels_committed_total"); v != rounds*batch {
		t.Errorf("labels committed = %v, want %d", v, rounds*batch)
	}
	if v := metricValue(t, exposition, "oasis_wal_records_appended_total"); v == 0 {
		t.Error("WAL append counter is zero after workload")
	}
	if v := metricValue(t, exposition, "oasis_wal_fsync_seconds_count"); v == 0 {
		t.Error("fsync histogram observed nothing with -fsync always")
	}
	// The scrape observes itself: the only in-flight request is /metrics.
	if v := metricValue(t, exposition, "oasis_http_in_flight_requests"); v != 1 {
		t.Errorf("in-flight gauge = %v during scrape, want 1", v)
	}
	ratio := metricValue(t, exposition, "oasis_sampler_ess_ratio")
	if !(ratio > 0 && ratio <= 1.0000001) {
		t.Errorf("ESS ratio = %v, want in (0,1]", ratio)
	}

	var stats server.StatsResponse
	if code := getJSON(t, base+"/v1/stats", &stats); code != http.StatusOK {
		t.Fatalf("stats: status %d", code)
	}
	if stats.UptimeSeconds <= 0 || stats.Runtime.Goroutines <= 0 || stats.Runtime.GoVersion == "" {
		t.Errorf("stats runtime block not populated: uptime=%v runtime=%+v", stats.UptimeSeconds, stats.Runtime)
	}
	if stats.Version == "" {
		t.Error("stats version is empty")
	}
	if out, err := exec.Command(bin, "-version").Output(); err != nil || !strings.Contains(string(out), stats.Version) {
		t.Errorf("-version output %q does not carry stats version %q (err %v)", out, stats.Version, err)
	}
}

// tracedJSON issues one request carrying a sampled W3C traceparent with the
// given trace ID, forcing the server to record it regardless of the head
// sampling rate, and decodes the JSON response.
func tracedJSON(t *testing.T, method, url, traceID string, body, out any) int {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(data)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("traceparent", "00-"+traceID+"-00f067aa0ba902b7-01")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("Traceparent"); !strings.Contains(got, traceID) {
		t.Fatalf("%s %s: response traceparent %q does not carry trace %s", method, url, got, traceID)
	}
	if out != nil && resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

// TestTraceSmokeEndToEnd boots the real binary with the WAL enabled and
// head sampling off, forces one traced create/propose/commit round via
// sampled traceparent headers, and demands /debug/traces/{id} return span
// timelines that cover every serving layer — the pool store on the create
// (acquire + strata against the uploaded pool), the sampler and WAL on
// propose and commit (append alone on propose, append+fsync on commit),
// and a server-layer handle span covering >= 90% of each root span's wall
// time. This is the check `make trace-smoke` runs in CI.
func TestTraceSmokeEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs a real server binary")
	}
	bin := filepath.Join(t.TempDir(), "oasis-server")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	cmd, addr := startServer(t, bin,
		"-addr", "127.0.0.1:0", "-wal", t.TempDir(), "-fsync", "always",
		"-access-log", "-trace-sample", "0")
	defer func() {
		cmd.Process.Signal(os.Interrupt)
		done := make(chan struct{})
		go func() { cmd.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			cmd.Process.Kill()
			cmd.Wait()
		}
	}()
	base := "http://" + addr

	scores, preds, truth := e2ePool(2000, 11)
	var uploaded server.PoolResponse
	if code := postJSON(t, base+"/v1/pools", server.PoolUploadRequest{Scores: scores, Preds: preds}, &uploaded); code != http.StatusCreated {
		t.Fatalf("upload pool: status %d", code)
	}

	const (
		tidCreate = "0000000000000008aaaaaaaaaaaaaaa1"
		tidProp   = "0000000000000008aaaaaaaaaaaaaaa2"
		tidCommit = "0000000000000008aaaaaaaaaaaaaaa3"
	)
	cfg := session.Config{
		ID: "tsmoke", PoolID: uploaded.PoolID, Calibrated: true,
		Options: oasis.Options{Strata: 10, Seed: 5},
	}
	if code := tracedJSON(t, "POST", base+"/v1/sessions", tidCreate, cfg, nil); code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	var pr server.ProposeResponse
	if code := tracedJSON(t, "GET", base+"/v1/sessions/tsmoke/propose?n=8", tidProp, nil, &pr); code != http.StatusOK {
		t.Fatalf("propose: status %d", code)
	}
	if len(pr.Proposals) != 8 {
		t.Fatalf("proposed %d pairs, want 8", len(pr.Proposals))
	}
	req := server.LabelsRequest{}
	for _, p := range pr.Proposals {
		req.Labels = append(req.Labels, server.Label{Pair: p.Pair, Label: truth[p.Pair]})
	}
	var lr server.LabelsResponse
	if code := tracedJSON(t, "POST", base+"/v1/sessions/tsmoke/labels", tidCommit, req, &lr); code != http.StatusOK {
		t.Fatalf("labels: status %d", code)
	}
	if lr.Committed != len(req.Labels) {
		t.Fatalf("committed %d of %d", lr.Committed, len(req.Labels))
	}

	// fetchTrace pulls one retained trace and indexes its layers and names.
	fetchTrace := func(tid string) (tj trace.TraceJSON, layers, names map[string]bool) {
		t.Helper()
		if code := getJSON(t, base+"/debug/traces/"+tid, &tj); code != http.StatusOK {
			t.Fatalf("GET /debug/traces/%s: status %d", tid, code)
		}
		layers, names = map[string]bool{}, map[string]bool{}
		for _, sp := range tj.Spans {
			layers[sp.Layer] = true
			names[sp.Name] = true
		}
		if tj.DroppedSpans != 0 {
			t.Errorf("trace %s dropped %d spans", tid, tj.DroppedSpans)
		}
		// Root coverage: the direct children of the root span must account
		// for >= 90% of the request's wall time, or the timeline has holes.
		var rootCovered float64
		for _, sp := range tj.Spans {
			if sp.Parent == -1 {
				rootCovered += sp.DurUs
			}
		}
		if tj.DurationUs > 0 && rootCovered < 0.9*tj.DurationUs {
			t.Errorf("trace %s: root-level spans cover %.1fµs of %.1fµs (< 90%%)", tid, rootCovered, tj.DurationUs)
		}
		return tj, layers, names
	}

	// Create: server + session + pool store (acquire and strata of the
	// uploaded pool) + WAL (create record is fsynced).
	_, layers, names := fetchTrace(tidCreate)
	for _, want := range []string{"server", "session", "pool", "wal"} {
		if !layers[want] {
			t.Errorf("create trace missing %q layer; got %v", want, layers)
		}
	}
	for _, want := range []string{"session.build", "pool.acquire", "pool.strata", "wal.append", "wal.fsync", "shard.lock_wait"} {
		if !names[want] {
			t.Errorf("create trace missing span %q; got %v", want, names)
		}
	}

	// Propose: sampler draws journaled to the WAL lane (append, no fsync —
	// the propose event is redone by replay, not awaited).
	tj, layers, names := fetchTrace(tidProp)
	for _, want := range []string{"server", "session", "sampler", "wal"} {
		if !layers[want] {
			t.Errorf("propose trace missing %q layer; got %v", want, layers)
		}
	}
	for _, want := range []string{"http.handle", "session.propose", "lock.wait", "sampler.propose", "wal.append"} {
		if !names[want] {
			t.Errorf("propose trace missing span %q; got %v", want, names)
		}
	}
	if tj.Route != "GET /v1/sessions/{id}/propose" {
		t.Errorf("propose trace route %q", tj.Route)
	}

	// Commit: the durability tax must be visible — append and fsync spans
	// on the session's WAL lane.
	_, layers, names = fetchTrace(tidCommit)
	for _, want := range []string{"server", "session", "sampler", "wal"} {
		if !layers[want] {
			t.Errorf("commit trace missing %q layer; got %v", want, layers)
		}
	}
	for _, want := range []string{"http.decode", "session.commit", "sampler.commit", "wal.append", "wal.fsync"} {
		if !names[want] {
			t.Errorf("commit trace missing span %q; got %v", want, names)
		}
	}

	// Head sampling is off: an untraced request must not be recorded, so
	// the listing holds exactly the three forced traces.
	var list server.TracesResponse
	if code := getJSON(t, base+"/debug/traces", &list); code != http.StatusOK {
		t.Fatalf("GET /debug/traces: status %d", code)
	}
	if len(list.Traces) != 3 {
		t.Errorf("listing has %d traces, want exactly the 3 forced ones", len(list.Traces))
	}
	if list.Stats.Recorded != 3 {
		t.Errorf("recorded = %d, want 3", list.Stats.Recorded)
	}
}

// TestDiagSmokeEndToEnd boots the real binary with a small diagnostics ring,
// runs two sessions to a label budget that forces downsampling, and demands
// /v1/sessions/{id}/diagnostics return a non-empty downsampled series with a
// monotone labels axis and /debug/dashboard render complete HTML with both
// sparklines (estimate and ESS) for every live session. This is the check
// `make diag-smoke` runs in CI.
func TestDiagSmokeEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs a real server binary")
	}
	bin := filepath.Join(t.TempDir(), "oasis-server")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	cmd, addr := startServer(t, bin, "-addr", "127.0.0.1:0", "-diag-series", "16")
	defer func() {
		cmd.Process.Signal(os.Interrupt)
		done := make(chan struct{})
		go func() { cmd.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			cmd.Process.Kill()
			cmd.Wait()
		}
	}()
	base := "http://" + addr

	scores, preds, truth := e2ePool(800, 21)
	ids := []string{"diag-a", "diag-b"}
	for _, id := range ids {
		cfg := session.Config{
			ID: id, Scores: scores, Preds: preds, Calibrated: true,
			Options: oasis.Options{Strata: 8, Seed: 9},
		}
		if code := postJSON(t, base+"/v1/sessions", cfg, nil); code != http.StatusCreated {
			t.Fatalf("create %s: status %d", id, code)
		}
		const rounds, batch = 24, 4 // 24 commit batches overflow a 16-ring
		for i := 0; i < rounds; i++ {
			driveServerRound(t, base, id, batch, truth)
		}
	}

	for _, id := range ids {
		var d session.Diagnostics
		if code := getJSON(t, base+"/v1/sessions/"+id+"/diagnostics", &d); code != http.StatusOK {
			t.Fatalf("diagnostics %s: status %d", id, code)
		}
		if len(d.Series) == 0 {
			t.Fatalf("%s: empty diagnostics series", id)
		}
		if d.SeriesSeen != 24 {
			t.Errorf("%s: seen %d batches, want 24", id, d.SeriesSeen)
		}
		if d.SeriesStride < 2 {
			t.Errorf("%s: 24 batches into a 16-ring should have downsampled; stride %d", id, d.SeriesStride)
		}
		for i := 1; i < len(d.Series); i++ {
			if d.Series[i].Labels < d.Series[i-1].Labels {
				t.Fatalf("%s: labels axis not monotone at %d", id, i)
			}
		}
		if d.State == "" || len(d.Strata) == 0 {
			t.Errorf("%s: state %q, %d strata", id, d.State, len(d.Strata))
		}
	}

	page := getRaw(t, base+"/debug/dashboard")
	if !strings.HasPrefix(page, "<!DOCTYPE html>") || !strings.Contains(page, "</html>") {
		t.Fatal("dashboard is not a complete HTML document")
	}
	for _, id := range ids {
		if !strings.Contains(page, "<code>"+id+"</code>") {
			t.Errorf("dashboard missing session %q", id)
		}
	}
	if got := strings.Count(page, `class="spark"`); got != 2*len(ids) {
		t.Errorf("dashboard has %d sparklines, want %d (two per session)", got, 2*len(ids))
	}
	if !strings.Contains(page, "<polyline") {
		t.Error("dashboard sparklines carry no polylines")
	}
}
