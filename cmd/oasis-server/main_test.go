package main

// Crash-recovery end-to-end test: build the real oasis-server binary, drive
// it over HTTP with -wal -fsync always, SIGKILL it mid-session, restart it
// from the WAL directory, and demand the recovered server continue the
// exact proposal sequence — compared bit-for-bit against an uninterrupted
// in-process reference session driven with the same request pattern. This
// is the acceptance gate for the durable label journal: kill -9 plus
// recovery must be indistinguishable from never having crashed.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"syscall"
	"testing"
	"time"

	"oasis"
	"oasis/internal/rng"
	"oasis/internal/server"
	"oasis/internal/session"
)

// e2ePool mirrors the synthetic pool generators used across the test suite.
func e2ePool(n int, seed uint64) (scores []float64, preds, truth []bool) {
	r := rng.New(seed)
	scores = make([]float64, n)
	preds = make([]bool, n)
	truth = make([]bool, n)
	for i := 0; i < n; i++ {
		u := r.Float64()
		scores[i] = u * u
		preds[i] = scores[i] >= 0.5
		truth[i] = r.Bernoulli(scores[i])
	}
	return scores, preds, truth
}

var listenRE = regexp.MustCompile(`oasis-server listening on ([^ ]+)`)

// startServer launches the built binary and waits for its listen line.
func startServer(t *testing.T, bin string, args ...string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			if m := listenRE.FindStringSubmatch(sc.Text()); m != nil {
				select {
				case addrCh <- m[1]:
				default:
				}
			}
		}
	}()
	select {
	case addr := <-addrCh:
		return cmd, addr
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatal("server did not report a listen address")
		return nil, ""
	}
}

func postJSON(t *testing.T, url string, body, out any) int {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

// driveServerRound proposes a batch over HTTP and commits every pair.
func driveServerRound(t *testing.T, base string, batch int, truth []bool) []int {
	t.Helper()
	var pr server.ProposeResponse
	if code := getJSON(t, fmt.Sprintf("%s/v1/sessions/e2e/propose?n=%d", base, batch), &pr); code != http.StatusOK {
		t.Fatalf("propose: status %d", code)
	}
	if len(pr.Proposals) != batch {
		t.Fatalf("proposed %d pairs, want %d", len(pr.Proposals), batch)
	}
	req := server.LabelsRequest{}
	pairs := make([]int, len(pr.Proposals))
	for i, p := range pr.Proposals {
		pairs[i] = p.Pair
		req.Labels = append(req.Labels, server.Label{Pair: p.Pair, Label: truth[p.Pair]})
	}
	var lr server.LabelsResponse
	if code := postJSON(t, base+"/v1/sessions/e2e/labels", req, &lr); code != http.StatusOK {
		t.Fatalf("labels: status %d", code)
	}
	if lr.Committed != len(req.Labels) {
		t.Fatalf("committed %d of %d", lr.Committed, len(req.Labels))
	}
	return pairs
}

// driveRefRound is the in-process mirror of driveServerRound.
func driveRefRound(t *testing.T, s *session.Session, batch int, truth []bool) []int {
	t.Helper()
	props, err := s.Propose(batch)
	if err != nil {
		t.Fatal(err)
	}
	if len(props) != batch {
		t.Fatalf("reference proposed %d pairs, want %d", len(props), batch)
	}
	pairs := make([]int, len(props))
	labels := make([]bool, len(props))
	for i, p := range props {
		pairs[i] = p.Pair
		labels[i] = truth[p.Pair]
	}
	if _, err := s.CommitBatch(pairs, labels); err != nil {
		t.Fatal(err)
	}
	return pairs
}

func TestCrashRecoveryEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills a real server binary")
	}
	bin := filepath.Join(t.TempDir(), "oasis-server")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	walDir := t.TempDir()

	scores, preds, truth := e2ePool(3000, 42)
	cfg := session.Config{
		ID: "e2e", Scores: scores, Preds: preds, Calibrated: true,
		Options:  oasis.Options{Strata: 12, Seed: 77},
		LeaseTTL: time.Minute,
	}
	const (
		batch       = 16
		preRounds   = 12
		postRounds  = 12
		totalRounds = preRounds + postRounds
	)

	// Uninterrupted in-process reference: same config, same request pattern.
	ref, err := session.NewManager(session.ManagerOptions{}).Create(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Phase 1: live server, create + label, then SIGKILL between batches.
	// -shards 4 exercises the multi-lane WAL: the journal's lane count is
	// fixed at creation, so the restarted server must come back with the
	// same value.
	cmd, addr := startServer(t, bin, "-addr", "127.0.0.1:0", "-wal", walDir, "-fsync", "always", "-shards", "4")
	base := "http://" + addr
	if code := postJSON(t, base+"/v1/sessions", cfg, nil); code != http.StatusCreated {
		cmd.Process.Kill()
		t.Fatalf("create: status %d", code)
	}
	for round := 0; round < preRounds; round++ {
		got := driveServerRound(t, base, batch, truth)
		want := driveRefRound(t, ref, batch, truth)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("pre-crash round %d diverged at %d: server pair %d, reference %d", round, i, got[i], want[i])
			}
		}
	}
	var health server.HealthResponse
	if code := getJSON(t, base+"/healthz", &health); code != http.StatusOK || health.Status != "ok" {
		t.Fatalf("healthz: status %d, %+v", code, health)
	}
	var stats server.StatsResponse
	if code := getJSON(t, base+"/v1/stats", &stats); code != http.StatusOK {
		t.Fatalf("stats: status %d", code)
	}
	if stats.Sessions != 1 || stats.LabelsCommitted != preRounds*batch || stats.WAL == nil || stats.WAL.RecordsAppended == 0 {
		t.Fatalf("unexpected stats before crash: %+v (wal %+v)", stats, stats.WAL)
	}

	if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()

	// Phase 2: restart from the WAL; the recovered sampler must continue
	// the exact sequence the uninterrupted reference produces.
	cmd2, addr2 := startServer(t, bin, "-addr", "127.0.0.1:0", "-wal", walDir, "-fsync", "always", "-shards", "4")
	defer func() {
		cmd2.Process.Signal(os.Interrupt)
		done := make(chan struct{})
		go func() { cmd2.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			cmd2.Process.Kill()
			cmd2.Wait()
		}
	}()
	base2 := "http://" + addr2

	var st session.Status
	if code := getJSON(t, base2+"/v1/sessions/e2e", &st); code != http.StatusOK {
		t.Fatalf("recovered session missing: status %d", code)
	}
	if st.LabelsCommitted != preRounds*batch {
		t.Fatalf("recovered %d labels, want %d", st.LabelsCommitted, preRounds*batch)
	}
	for round := 0; round < postRounds; round++ {
		got := driveServerRound(t, base2, batch, truth)
		want := driveRefRound(t, ref, batch, truth)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("post-recovery round %d diverged at %d: server pair %d, reference %d", round, i, got[i], want[i])
			}
		}
	}

	// The estimates must agree exactly too: the JSON float64 round trip is
	// lossless, so any difference is real state divergence.
	if code := getJSON(t, base2+"/v1/sessions/e2e/estimate", &st); code != http.StatusOK {
		t.Fatalf("estimate: status %d", code)
	}
	if st.LabelsCommitted != totalRounds*batch {
		t.Fatalf("final labels %d, want %d", st.LabelsCommitted, totalRounds*batch)
	}
	refEst := ref.Estimate()
	if st.Estimate == nil || *st.Estimate != refEst {
		t.Fatalf("recovered estimate %v, reference %v", st.Estimate, refEst)
	}
	t.Logf("kill -9 + WAL recovery reproduced %d proposals and F̂ = %.6f exactly", totalRounds*batch, refEst)
}
