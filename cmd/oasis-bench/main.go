// Command oasis-bench regenerates the paper's tables and figures against the
// synthetic testbed.
//
// Usage:
//
//	oasis-bench [-exp all|table1|table2|table3|fig1|fig2|fig3|fig4|fig5|headline|ablations]
//	            [-scale 0.25] [-runs 20] [-seed 1] [-full] [-dataset name]
//
// -full is shorthand for -scale 1.0. Output is written to stdout; redirect
// to capture. See EXPERIMENTS.md for the expected shapes.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"oasis/internal/paperexp"
)

func main() {
	exp := flag.String("exp", "all", "experiment to regenerate: all, table1, table2, table3, fig1, fig2, fig3, fig4, fig5, headline, ablations")
	scale := flag.Float64("scale", 0.25, "pool/budget scale relative to the paper (1.0 = paper scale)")
	runs := flag.Int("runs", 20, "repeats per error curve (paper: 1000)")
	seed := flag.Uint64("seed", 1, "base seed")
	full := flag.Bool("full", false, "shorthand for -scale 1.0")
	dataset := flag.String("dataset", "", "restrict fig2 to one dataset")
	flag.Parse()

	cfg := paperexp.Config{Scale: *scale, Runs: *runs, Seed: *seed}
	if *full {
		cfg.Scale = 1.0
	}
	w := io.Writer(os.Stdout)

	type job struct {
		name string
		run  func(io.Writer, paperexp.Config) error
	}
	fig2 := func(w io.Writer, cfg paperexp.Config) error {
		if *dataset != "" {
			return paperexp.Figure2(w, cfg, *dataset)
		}
		return paperexp.Figure2(w, cfg)
	}
	ablations := func(w io.Writer, cfg paperexp.Config) error {
		for _, f := range []func(io.Writer, paperexp.Config) error{
			paperexp.AblationEpsilon,
			paperexp.AblationPriorStrength,
			paperexp.AblationPriorDecay,
			paperexp.AblationStratifier,
			paperexp.AblationPosteriorEstimate,
			paperexp.AblationISAlias,
		} {
			if err := f(w, cfg); err != nil {
				return err
			}
			fmt.Fprintln(w)
		}
		return nil
	}
	jobs := map[string][]job{
		"table1":    {{"table1", paperexp.Table1}},
		"table2":    {{"table2", paperexp.Table2}},
		"table3":    {{"table3", paperexp.Table3}},
		"fig1":      {{"fig1", paperexp.Figure1}},
		"fig2":      {{"fig2", fig2}},
		"fig3":      {{"fig3", paperexp.Figure3}},
		"fig4":      {{"fig4", paperexp.Figure4}},
		"fig5":      {{"fig5", paperexp.Figure5}},
		"headline":  {{"headline", paperexp.HeadlineSavings}},
		"ablations": {{"ablations", ablations}},
		"all": {
			{"table1", paperexp.Table1},
			{"table2", paperexp.Table2},
			{"table3", paperexp.Table3},
			{"fig1", paperexp.Figure1},
			{"fig2", fig2},
			{"fig3", paperexp.Figure3},
			{"fig4", paperexp.Figure4},
			{"fig5", paperexp.Figure5},
			{"headline", paperexp.HeadlineSavings},
			{"ablations", ablations},
		},
	}
	selected, ok := jobs[*exp]
	if !ok {
		log.Fatalf("unknown experiment %q", *exp)
	}
	for _, j := range selected {
		if err := j.run(w, cfg); err != nil {
			log.Fatalf("%s: %v", j.name, err)
		}
		fmt.Fprintln(w)
	}
}
