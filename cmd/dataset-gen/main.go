// Command dataset-gen materialises one of the synthetic benchmark dataset
// profiles (or a scored evaluation pool built from it) as CSV, so external
// tools can consume the testbed.
//
// Usage:
//
//	dataset-gen -profile Abt-Buy -out records.csv            # raw records
//	dataset-gen -profile Abt-Buy -pool -scale 0.1 -out p.csv # scored pool
//
// Record CSVs have columns: source, entity_id, then one column per schema
// field. Pool CSVs have columns: score, pred, label — the format read by
// oasis-eval.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"

	"oasis/internal/dataset"
	"oasis/internal/pipeline"
)

func main() {
	profile := flag.String("profile", "Abt-Buy", "dataset profile (see -list)")
	list := flag.Bool("list", false, "list available profiles and exit")
	out := flag.String("out", "", "output CSV path (default stdout)")
	seed := flag.Uint64("seed", 1, "generation seed")
	pool := flag.Bool("pool", false, "emit a scored evaluation pool instead of raw records")
	scale := flag.Float64("scale", 0.25, "pool scale relative to the paper's Table 2 (with -pool)")
	calibrate := flag.Bool("calibrated", false, "Platt-calibrate pool scores (with -pool)")
	flag.Parse()

	if *list {
		for _, p := range dataset.Profiles(*seed) {
			fmt.Println(p.Name)
		}
		return
	}

	w := csv.NewWriter(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = csv.NewWriter(f)
	}
	defer w.Flush()

	prof, err := dataset.ProfileByName(*profile, *seed)
	if err != nil {
		log.Fatal(err)
	}

	if *pool {
		res, err := pipeline.BuildProfilePool(prof, *scale, pipeline.Config{Calibrate: *calibrate})
		if err != nil {
			log.Fatal(err)
		}
		p := res.Pool
		if err := w.Write([]string{"score", "pred", "label"}); err != nil {
			log.Fatal(err)
		}
		for i := 0; i < p.N(); i++ {
			rec := []string{
				strconv.FormatFloat(p.Scores[i], 'g', -1, 64),
				boolField(p.Preds[i]),
				boolField(p.TruthProb[i] >= 0.5),
			}
			if err := w.Write(rec); err != nil {
				log.Fatal(err)
			}
		}
		return
	}

	gen, err := prof.Generate()
	if err != nil {
		log.Fatal(err)
	}
	writeRecords := func(source string, schema dataset.Schema, recs []dataset.Record) {
		for _, rec := range recs {
			row := []string{source, strconv.Itoa(rec.EntityID)}
			for fi, v := range rec.Values {
				switch {
				case v.Missing:
					row = append(row, "")
				case schema[fi].Kind == dataset.Numeric:
					row = append(row, strconv.FormatFloat(v.Num, 'g', -1, 64))
				default:
					row = append(row, v.Text)
				}
			}
			if err := w.Write(row); err != nil {
				log.Fatal(err)
			}
		}
	}
	header := func(schema dataset.Schema) []string {
		h := []string{"source", "entity_id"}
		for _, spec := range schema {
			h = append(h, spec.Name)
		}
		return h
	}
	switch ds := gen.(type) {
	case *dataset.TwoSourceDataset:
		if err := w.Write(header(ds.Schema)); err != nil {
			log.Fatal(err)
		}
		writeRecords("D1", ds.Schema, ds.D1)
		writeRecords("D2", ds.Schema, ds.D2)
	case *dataset.DedupDataset:
		if err := w.Write(header(ds.Schema)); err != nil {
			log.Fatal(err)
		}
		writeRecords("D", ds.Schema, ds.Records)
	case *dataset.PointsDataset:
		if err := w.Write([]string{"x0", "x1", "label"}); err != nil {
			log.Fatal(err)
		}
		for i, x := range ds.X {
			row := []string{
				strconv.FormatFloat(x[0], 'g', -1, 64),
				strconv.FormatFloat(x[1], 'g', -1, 64),
				boolField(ds.Labels[i]),
			}
			if err := w.Write(row); err != nil {
				log.Fatal(err)
			}
		}
	default:
		log.Fatalf("unsupported dataset type %T", gen)
	}
}

func boolField(b bool) string {
	if b {
		return "1"
	}
	return "0"
}
