// Command oasis-eval estimates the F-measure of an ER system from a CSV of
// (score, prediction, label) rows using OASIS or one of the baselines.
//
// The CSV must have a header and columns: score (float), pred (0/1), and —
// because this tool simulates the labelling oracle from recorded ground
// truth — label (0/1). In a live deployment the label column would be
// replaced by real oracle queries through the library API.
//
// Usage:
//
//	oasis-eval -in pairs.csv [-method oasis|passive|stratified|is]
//	           [-budget 1000] [-alpha 0.5] [-strata 30] [-calibrated]
//	           [-seed 1] [-runs 1]
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"os"
	"strconv"

	"oasis"
)

func main() {
	in := flag.String("in", "", "input CSV with header score,pred,label")
	method := flag.String("method", "oasis", "estimation method: oasis, passive, stratified, is")
	budget := flag.Int("budget", 1000, "label budget")
	alpha := flag.Float64("alpha", 0.5, "F-measure weight (1=precision, 0=recall)")
	strataK := flag.Int("strata", 30, "number of strata for oasis/stratified")
	calibrated := flag.Bool("calibrated", false, "scores are probabilities in [0,1]")
	seed := flag.Uint64("seed", 1, "random seed")
	runs := flag.Int("runs", 1, "independent repeats to report")
	flag.Parse()
	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}

	scores, preds, labels, err := readPairs(*in)
	if err != nil {
		log.Fatal(err)
	}
	kind := oasis.UncalibratedScores
	if *calibrated {
		kind = oasis.CalibratedScores
	}
	pool, err := oasis.NewPool(scores, preds, kind)
	if err != nil {
		log.Fatal(err)
	}
	oracle := func(i int) bool { return labels[i] }

	// Ground-truth F for reference (the tool has all labels).
	var tp, fp, fn float64
	for i := range labels {
		switch {
		case labels[i] && preds[i]:
			tp++
		case !labels[i] && preds[i]:
			fp++
		case labels[i] && !preds[i]:
			fn++
		}
	}
	den := *alpha*(tp+fp) + (1-*alpha)*(tp+fn)
	trueF := math.NaN()
	if den > 0 {
		trueF = tp / den
	}

	fmt.Printf("pool: %d pairs, %d predicted matches; method=%s budget=%d alpha=%g\n",
		pool.N(), pool.NumPredPositives(), *method, *budget, *alpha)
	for run := 0; run < *runs; run++ {
		opts := oasis.Options{Alpha: *alpha, Strata: *strataK, Seed: *seed + uint64(run)}
		if *alpha == 0 {
			opts.Recall = true
		}
		var res *oasis.Result
		switch *method {
		case "oasis":
			s, err := oasis.NewSampler(pool, opts)
			if err != nil {
				log.Fatal(err)
			}
			res, err = s.Run(oracle, *budget)
			if err != nil {
				log.Fatal(err)
			}
		case "passive":
			m, err := oasis.NewPassiveSampler(pool, opts)
			if err != nil {
				log.Fatal(err)
			}
			res, err = m.Run(oracle, *budget)
			if err != nil {
				log.Fatal(err)
			}
		case "stratified":
			m, err := oasis.NewStratifiedSampler(pool, opts)
			if err != nil {
				log.Fatal(err)
			}
			res, err = m.Run(oracle, *budget)
			if err != nil {
				log.Fatal(err)
			}
		case "is":
			m, err := oasis.NewISSampler(pool, opts)
			if err != nil {
				log.Fatal(err)
			}
			res, err = m.Run(oracle, *budget)
			if err != nil {
				log.Fatal(err)
			}
		default:
			log.Fatalf("unknown method %q", *method)
		}
		line := fmt.Sprintf("run %d: F=%.4f labels=%d iterations=%d",
			run, res.FMeasure, res.LabelsConsumed, res.Iterations)
		if !math.IsNaN(trueF) {
			line += fmt.Sprintf("  (true F=%.4f, |err|=%.4f)", trueF, math.Abs(res.FMeasure-trueF))
		}
		fmt.Println(line)
	}
}

// readPairs parses the score,pred,label CSV.
func readPairs(path string) (scores []float64, preds, labels []bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, nil, err
	}
	defer f.Close()
	r := csv.NewReader(f)
	header, err := r.Read()
	if err != nil {
		return nil, nil, nil, fmt.Errorf("reading header: %w", err)
	}
	col := map[string]int{}
	for i, h := range header {
		col[h] = i
	}
	for _, need := range []string{"score", "pred", "label"} {
		if _, ok := col[need]; !ok {
			return nil, nil, nil, fmt.Errorf("missing column %q (header %v)", need, header)
		}
	}
	line := 1
	for {
		rec, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, nil, nil, fmt.Errorf("line %d: %w", line, err)
		}
		line++
		s, err := strconv.ParseFloat(rec[col["score"]], 64)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("line %d: bad score: %w", line, err)
		}
		p, err := parseBool(rec[col["pred"]])
		if err != nil {
			return nil, nil, nil, fmt.Errorf("line %d: bad pred: %w", line, err)
		}
		l, err := parseBool(rec[col["label"]])
		if err != nil {
			return nil, nil, nil, fmt.Errorf("line %d: bad label: %w", line, err)
		}
		scores = append(scores, s)
		preds = append(preds, p)
		labels = append(labels, l)
	}
	if len(scores) == 0 {
		return nil, nil, nil, fmt.Errorf("%s: no data rows", path)
	}
	return scores, preds, labels, nil
}

func parseBool(s string) (bool, error) {
	switch s {
	case "0", "false", "False":
		return false, nil
	case "1", "true", "True":
		return true, nil
	default:
		return false, fmt.Errorf("not a boolean: %q", s)
	}
}
