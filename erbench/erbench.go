// Package erbench exposes the paper's experimental testbed as a public API:
// synthetic counterparts of the six benchmark datasets (Table 1), the ER
// pipeline that builds classifier-scored evaluation pools (Table 2), and the
// multi-run error-curve harness behind Figures 2–5 and Table 3.
//
// The real datasets are replaced by generators with matched pool sizes,
// match counts and class-imbalance ratios (see DESIGN.md for the
// substitution argument); everything downstream — stratification, sampling,
// estimation — is byte-for-byte the published algorithm.
package erbench

import (
	"fmt"
	"time"

	"oasis"
	"oasis/internal/core"
	"oasis/internal/dataset"
	"oasis/internal/diag"
	"oasis/internal/experiment"
	"oasis/internal/oracle"
	"oasis/internal/pipeline"
	"oasis/internal/pool"
	"oasis/internal/rng"
	"oasis/internal/sampler"
	"oasis/internal/strata"
)

// DatasetNames lists the six profiles in the paper's Table 1 order
// (decreasing class imbalance).
func DatasetNames() []string {
	profiles := dataset.Profiles(0)
	names := make([]string, len(profiles))
	for i, p := range profiles {
		names[i] = p.Name
	}
	return names
}

// DatasetInfo summarises one dataset profile against the paper's Table 1.
type DatasetInfo struct {
	Name string
	// Generated dataset statistics.
	Pairs          int
	Matches        int
	ImbalanceRatio float64
	// Paper-reported values for the real dataset.
	PaperPairs     int
	PaperMatches   int
	PaperImbalance float64
}

// Inventory generates every dataset profile at the given seed and reports
// measured-vs-paper statistics (the Table 1 reproduction).
func Inventory(seed uint64) ([]DatasetInfo, error) {
	var out []DatasetInfo
	for _, prof := range dataset.Profiles(seed) {
		gen, err := prof.Generate()
		if err != nil {
			return nil, err
		}
		info := DatasetInfo{
			Name:           prof.Name,
			PaperPairs:     prof.Paper.Pairs,
			PaperMatches:   prof.Paper.Matches,
			PaperImbalance: prof.Paper.ImbalanceRatio,
		}
		switch ds := gen.(type) {
		case *dataset.TwoSourceDataset:
			info.Pairs = ds.NumPairs()
			info.Matches = ds.NumMatches()
			info.ImbalanceRatio = ds.ImbalanceRatio()
		case *dataset.DedupDataset:
			info.Pairs = ds.NumPairs()
			info.Matches = ds.NumMatches()
			info.ImbalanceRatio = ds.ImbalanceRatio()
		case *dataset.PointsDataset:
			info.Pairs = len(ds.X)
			info.Matches = ds.NumPositives()
			if info.Matches > 0 {
				info.ImbalanceRatio = float64(info.Pairs-info.Matches) / float64(info.Matches)
			}
		}
		out = append(out, info)
	}
	return out, nil
}

// Classifier names the classifier families of §6.3.4.
type Classifier = pipeline.ModelKind

// Classifier kinds.
const (
	LinearSVM = pipeline.LinearSVM
	LogReg    = pipeline.LogReg
	NeuralNet = pipeline.NeuralNet
	Boosted   = pipeline.Boosted
	KernelSVM = pipeline.KernelSVM
)

// PoolConfig controls testbed pool construction.
type PoolConfig struct {
	// Scale multiplies the paper's pool size and match count (Table 2);
	// 1.0 reproduces the paper's shapes, smaller values run faster.
	// Default 1.0.
	Scale float64
	// Classifier selects the scoring model (default LinearSVM).
	Classifier Classifier
	// Calibrate applies Platt scaling so scores are probabilities (§6.3.2).
	Calibrate bool
	// TrainPairs is the labelled training-set size (default 2000).
	TrainPairs int
	// Seed drives generation, training and pool sampling.
	Seed uint64
}

// BuiltPool couples the public pool with ground-truth measures for
// experimentation.
type BuiltPool struct {
	Pool *oasis.Pool
	// TruthProb is p(1|z) per pair — ground truth for simulated oracles.
	TruthProb []float64
	// Precision, Recall, F50 are the pool's true operating point (Table 2).
	Precision, Recall, F50 float64
	// Name echoes the dataset profile name.
	Name string

	inner *pool.Pool
}

// Oracle returns a ground-truth oracle function for the pool, for use with
// the samplers' Run methods. For deterministic truth (the experiments here)
// the seed is irrelevant.
func (b *BuiltPool) Oracle(seed uint64) oasis.OracleFunc {
	o := oracle.FromProbs(b.TruthProb, rng.New(seed))
	return o.Label
}

// TrueF returns the pool's population F_α.
func (b *BuiltPool) TrueF(alpha float64) float64 { return b.inner.TrueFMeasure(alpha) }

// BuildPool constructs the Table 2 evaluation pool for the named dataset
// profile.
func BuildPool(name string, cfg PoolConfig) (*BuiltPool, error) {
	if cfg.Scale <= 0 {
		cfg.Scale = 1
	}
	prof, err := dataset.ProfileByName(name, cfg.Seed)
	if err != nil {
		return nil, err
	}
	res, err := pipeline.BuildProfilePool(prof, cfg.Scale, pipeline.Config{
		Seed:       cfg.Seed + 1,
		TrainPairs: cfg.TrainPairs,
		Model:      cfg.Classifier,
		Calibrate:  cfg.Calibrate,
	})
	if err != nil {
		return nil, err
	}
	prec, rec, f50 := pipeline.OperatingPoint(res.Pool)
	return &BuiltPool{
		Pool:      oasis.WrapPool(res.Pool),
		TruthProb: res.Pool.TruthProb,
		Precision: prec,
		Recall:    rec,
		F50:       f50,
		Name:      name,
		inner:     res.Pool,
	}, nil
}

// MethodKind selects an evaluation method for the harness.
type MethodKind int

// Method kinds compared in the paper's §6.
const (
	Passive MethodKind = iota
	Stratified
	ImportanceSampling
	// ImportanceSamplingNaive is IS with O(N)-per-draw sampling, the
	// implementation whose runtime Table 3 reports.
	ImportanceSamplingNaive
	OASIS
)

// String returns the method's display name.
func (m MethodKind) String() string {
	switch m {
	case Passive:
		return "Passive"
	case Stratified:
		return "Stratified"
	case ImportanceSampling:
		return "IS"
	case ImportanceSamplingNaive:
		return "IS (naive)"
	case OASIS:
		return "OASIS"
	default:
		return "unknown"
	}
}

// HarnessConfig controls a multi-run error-curve experiment.
type HarnessConfig struct {
	// Alpha is the F-measure weight (default 0.5, the paper's setting).
	Alpha float64
	// Budget is the label budget per run.
	Budget int
	// Runs is the number of repeats (paper: 1000).
	Runs int
	// Strata is K for stratified methods (default 30).
	Strata int
	// Epsilon is the ε-greedy rate (default 1e-3).
	Epsilon float64
	// PriorStrength is η (default 2K).
	PriorStrength float64
	// NoPriorDecay disables the Remark 4 prior decay (ablation; decay is
	// on by default, matching the reference implementation).
	NoPriorDecay bool
	// PosteriorEstimate reports the stratified posterior plug-in estimate
	// instead of the Eqn. (3) importance-weighted ratio (ablation).
	PosteriorEstimate bool
	// EqualSizeStrata switches OASIS stratification from CSF to equal-size
	// (ablation).
	EqualSizeStrata bool
	// Checkpoints sets the label counts at which errors are recorded
	// (default: 50-point linear grid).
	Checkpoints []int
	// Seed is the base seed; run r uses Seed + r.
	Seed uint64
	// Workers bounds parallelism (default GOMAXPROCS).
	Workers int
}

func (c HarnessConfig) withDefaults() HarnessConfig {
	if c.Alpha == 0 {
		c.Alpha = 0.5
	}
	if c.Strata <= 0 {
		c.Strata = 30
	}
	return c
}

// Curves re-exports the harness aggregation type.
type Curves = experiment.Curves

// factory builds the experiment factory for a method over a pool.
func factory(kind MethodKind, p *pool.Pool, cfg HarnessConfig) (experiment.Factory, error) {
	name := kind.String()
	switch kind {
	case Passive:
		return experiment.Factory{Name: name, New: func(seed uint64) (sampler.Method, error) {
			return sampler.NewPassive(p, cfg.Alpha, rng.New(seed)), nil
		}}, nil
	case Stratified:
		s, err := strata.CSF(p, cfg.Strata, 0)
		if err != nil {
			return experiment.Factory{}, err
		}
		return experiment.Factory{Name: name, New: func(seed uint64) (sampler.Method, error) {
			return sampler.NewStratified(p, s.Weights, s.MeanPred, s.Items, cfg.Alpha, rng.New(seed))
		}}, nil
	case ImportanceSampling, ImportanceSamplingNaive:
		naive := kind == ImportanceSamplingNaive
		return experiment.Factory{Name: name, New: func(seed uint64) (sampler.Method, error) {
			return sampler.NewIS(p, sampler.ISConfig{Alpha: cfg.Alpha, Epsilon: cfg.Epsilon, Naive: naive}, rng.New(seed))
		}}, nil
	case OASIS:
		var (
			s   *strata.Strata
			err error
		)
		if cfg.EqualSizeStrata {
			s, err = strata.EqualSize(p, cfg.Strata)
		} else {
			s, err = strata.CSF(p, cfg.Strata, 0)
		}
		if err != nil {
			return experiment.Factory{}, err
		}
		name = fmt.Sprintf("OASIS %d", cfg.Strata)
		return experiment.Factory{Name: name, New: func(seed uint64) (sampler.Method, error) {
			return core.New(p, s, core.Config{
				Alpha:             cfg.Alpha,
				Epsilon:           cfg.Epsilon,
				PriorStrength:     cfg.PriorStrength,
				DisablePriorDecay: cfg.NoPriorDecay,
				PosteriorEstimate: cfg.PosteriorEstimate,
			}, rng.New(seed))
		}}, nil
	default:
		return experiment.Factory{}, fmt.Errorf("erbench: unknown method %d", kind)
	}
}

// RunCurves runs the multi-repeat experiment of Figure 2/3 for one method on
// one pool: expected absolute error and standard deviation of F̂ as a
// function of labels consumed.
func RunCurves(b *BuiltPool, kind MethodKind, cfg HarnessConfig) (*Curves, error) {
	cfg = cfg.withDefaults()
	f, err := factory(kind, b.inner, cfg)
	if err != nil {
		return nil, err
	}
	return experiment.Run(f, b.inner, cfg.Alpha, experiment.Config{
		Budget:      cfg.Budget,
		Runs:        cfg.Runs,
		Checkpoints: cfg.Checkpoints,
		BaseSeed:    cfg.Seed,
		Workers:     cfg.Workers,
	})
}

// FinalError runs the experiment and reports the mean absolute error at the
// final budget with a ~95% confidence half-width (Figure 5's statistic).
func FinalError(b *BuiltPool, kind MethodKind, cfg HarnessConfig) (mean, ci float64, err error) {
	cfg = cfg.withDefaults()
	f, err := factory(kind, b.inner, cfg)
	if err != nil {
		return 0, 0, err
	}
	return experiment.FinalErrors(f, b.inner, cfg.Alpha, experiment.Config{
		Budget:      cfg.Budget,
		Runs:        cfg.Runs,
		Checkpoints: []int{cfg.Budget},
		BaseSeed:    cfg.Seed,
		Workers:     cfg.Workers,
	})
}

// Timing reports per-run and per-iteration CPU cost of a method (Table 3).
type Timing struct {
	Method       string
	PerRun       time.Duration
	PerIteration time.Duration
	Iterations   float64
}

// RunTiming measures the average sampling cost of a method over the pool.
func RunTiming(b *BuiltPool, kind MethodKind, cfg HarnessConfig) (*Timing, error) {
	cfg = cfg.withDefaults()
	f, err := factory(kind, b.inner, cfg)
	if err != nil {
		return nil, err
	}
	curves, err := experiment.Run(f, b.inner, cfg.Alpha, experiment.Config{
		Budget:      cfg.Budget,
		Runs:        cfg.Runs,
		Checkpoints: []int{cfg.Budget},
		BaseSeed:    cfg.Seed,
		Workers:     1, // timing runs must not contend
	})
	if err != nil {
		return nil, err
	}
	t := &Timing{
		Method:     f.Name,
		PerRun:     curves.MeanDuration,
		Iterations: curves.MeanIterations,
	}
	if curves.MeanIterations > 0 {
		t.PerIteration = time.Duration(float64(curves.MeanDuration) / curves.MeanIterations)
	}
	return t, nil
}

// Convergence re-exports the Figure 4 diagnostics type.
type Convergence = experiment.Convergence

// RunConvergence runs the single-trajectory diagnostics of Figure 4 on a
// pool: F, π and v* errors plus KL(v*‖v̂) as labels accumulate.
func RunConvergence(b *BuiltPool, cfg HarnessConfig, every int) (*Convergence, error) {
	cfg = cfg.withDefaults()
	var (
		s   *strata.Strata
		err error
	)
	if cfg.EqualSizeStrata {
		s, err = strata.EqualSize(b.inner, cfg.Strata)
	} else {
		s, err = strata.CSF(b.inner, cfg.Strata, 0)
	}
	if err != nil {
		return nil, err
	}
	o, err := core.New(b.inner, s, core.Config{
		Alpha:             cfg.Alpha,
		Epsilon:           cfg.Epsilon,
		PriorStrength:     cfg.PriorStrength,
		DisablePriorDecay: cfg.NoPriorDecay,
		PosteriorEstimate: cfg.PosteriorEstimate,
	}, rng.New(cfg.Seed))
	if err != nil {
		return nil, err
	}
	orc := oracle.FromProbs(b.TruthProb, rng.New(cfg.Seed^0xabcdef))
	return experiment.RunConvergence(o, b.inner, s, cfg.Alpha, cfg.Budget, every, orc)
}

// StratumSummary describes one CSF stratum (Figure 1's bars).
type StratumSummary struct {
	Index     int
	Size      int
	MeanScore float64
	MeanPred  float64
}

// StrataSummary stratifies the pool with CSF and reports per-stratum sizes
// and mean scores (the Figure 1 reproduction).
func StrataSummary(b *BuiltPool, k int) ([]StratumSummary, error) {
	s, err := strata.CSF(b.inner, k, 0)
	if err != nil {
		return nil, err
	}
	out := make([]StratumSummary, s.K())
	for j := 0; j < s.K(); j++ {
		out[j] = StratumSummary{
			Index:     j,
			Size:      s.Size(j),
			MeanScore: s.MeanScore[j],
			MeanPred:  s.MeanPred[j],
		}
	}
	return out, nil
}

// LabelsToReachError and LabelSaving re-export the headline-savings helpers.
var (
	LabelsToReachError = experiment.LabelsToReachError
	LabelSaving        = experiment.LabelSaving
)

// DiagSnapshot is a convergence-diagnostics snapshot of one OASIS
// trajectory on a paper dataset: the downsampled estimator time-series
// (internal/diag's fixed-memory ring), the final alarm state under the
// default thresholds, and per-stratum weight diagnostics. It is the
// offline counterpart of the service's GET /v1/sessions/{id}/diagnostics.
type DiagSnapshot struct {
	// Dataset echoes the pool's profile name.
	Dataset string
	// Series is the retained (downsampled) estimator trajectory; Stride
	// and Seen describe how much it was thinned.
	Series []diag.Point
	Stride uint64
	Seen   uint64
	// State is the final sampler-health alarm state ("ok", "degraded",
	// "degenerate") under diag.DefaultThresholds.
	State string
	// Strata is the per-stratum health at the end of the run.
	Strata []diag.StratumHealth
	// Final is the estimator health at budget exhaustion.
	Final oasis.Health
}

// RunDiagnostics runs one OASIS trajectory to cfg.Budget on the pool,
// folding an estimator-health point into a capacity-point downsampling ring
// every `every` labels (0 records after every label batch of 1), and
// returns the snapshot. capacity <= 0 selects the ring default. Unlike
// RunConvergence it needs no ground truth beyond the oracle — it measures
// exactly what a live session's diagnostics endpoint would show, so paper
// datasets can be profiled for threshold tuning.
func RunDiagnostics(b *BuiltPool, cfg HarnessConfig, every, capacity int) (*DiagSnapshot, error) {
	cfg = cfg.withDefaults()
	if every <= 0 {
		every = 1
	}
	s, err := oasis.NewSampler(b.Pool, oasis.Options{
		Alpha:         cfg.Alpha,
		Strata:        cfg.Strata,
		Epsilon:       cfg.Epsilon,
		PriorStrength: cfg.PriorStrength,
		Seed:          cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	orc := b.Oracle(cfg.Seed ^ 0xabcdef)
	tracker := diag.NewTracker(capacity, diag.DefaultThresholds)
	for consumed := 0; consumed < cfg.Budget; {
		chunk := every
		if rest := cfg.Budget - consumed; chunk > rest {
			chunk = rest
		}
		if _, err := s.Run(orc, chunk); err != nil {
			return nil, err
		}
		consumed += chunk
		h := s.Health()
		tracker.Record(diag.Point{
			Labels:   consumed,
			Estimate: diag.Float(h.Estimate),
			Variance: diag.Float(h.AsymptoticVariance),
			ESSRatio: diag.Float(h.ESSRatio),
			Terms:    h.Terms,
		})
	}
	series := tracker.Series()
	return &DiagSnapshot{
		Dataset: b.Name,
		Series:  append([]diag.Point(nil), series.Points()...),
		Stride:  series.Stride(),
		Seen:    series.Seen(),
		State:   tracker.State().String(),
		Strata:  s.StratumDiagnostics(),
		Final:   s.Health(),
	}, nil
}
