package erbench

import (
	"math"
	"testing"
)

func TestDatasetNames(t *testing.T) {
	names := DatasetNames()
	if len(names) != 6 {
		t.Fatalf("names %v", names)
	}
	if names[0] != "Amazon-GoogleProducts" || names[5] != "tweets100k" {
		t.Errorf("order %v", names)
	}
}

func TestInventory(t *testing.T) {
	infos, err := Inventory(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 6 {
		t.Fatalf("inventory %d", len(infos))
	}
	for _, info := range infos {
		if info.Pairs <= 0 || info.Matches <= 0 {
			t.Errorf("%s: pairs %d matches %d", info.Name, info.Pairs, info.Matches)
		}
		if info.PaperPairs <= 0 {
			t.Errorf("%s: missing paper reference", info.Name)
		}
		// Pair counts should match the paper's within 2% (match counts are
		// exact by construction for two-source, approximate for dedup).
		ratio := float64(info.Pairs) / float64(info.PaperPairs)
		if info.Name != "restaurant" && (ratio < 0.9 || ratio > 1.1) {
			t.Errorf("%s: pair count %d vs paper %d", info.Name, info.Pairs, info.PaperPairs)
		}
	}
}

func buildSmall(t *testing.T, name string, cal bool) *BuiltPool {
	t.Helper()
	b, err := BuildPool(name, PoolConfig{Scale: 0.04, Calibrate: cal, Seed: 3, TrainPairs: 1200})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestBuildPoolOperatingPoint(t *testing.T) {
	b := buildSmall(t, "Abt-Buy", false)
	if b.Pool.N() <= 0 {
		t.Fatal("empty pool")
	}
	if math.IsNaN(b.F50) || b.F50 <= 0.05 || b.F50 > 1 {
		t.Errorf("F50 = %v", b.F50)
	}
	if b.Precision < 0 || b.Precision > 1 || b.Recall < 0 || b.Recall > 1 {
		t.Errorf("operating point %v/%v", b.Precision, b.Recall)
	}
	if got := b.TrueF(0.5); math.Abs(got-b.F50) > 1e-12 {
		t.Errorf("TrueF %v vs F50 %v", got, b.F50)
	}
}

func TestBuildPoolUnknownName(t *testing.T) {
	if _, err := BuildPool("nope", PoolConfig{}); err == nil {
		t.Error("expected error for unknown dataset")
	}
}

func TestRunCurvesOASISBeatsPassive(t *testing.T) {
	b := buildSmall(t, "Abt-Buy", false)
	cfg := HarnessConfig{Budget: 400, Runs: 12, Seed: 5}
	oasisCurves, err := RunCurves(b, OASIS, cfg)
	if err != nil {
		t.Fatal(err)
	}
	passiveCurves, err := RunCurves(b, Passive, cfg)
	if err != nil {
		t.Fatal(err)
	}
	lastO := oasisCurves.MeanAbsErr[len(oasisCurves.MeanAbsErr)-1]
	lastP := passiveCurves.MeanAbsErr[len(passiveCurves.MeanAbsErr)-1]
	if math.IsNaN(lastO) {
		t.Fatal("OASIS curve undefined at final budget")
	}
	// Passive may be undefined (no match sampled) — that itself demonstrates
	// the claim; otherwise OASIS must have smaller error.
	if !math.IsNaN(lastP) && lastO >= lastP {
		t.Errorf("OASIS %v not below passive %v", lastO, lastP)
	}
}

func TestRunTiming(t *testing.T) {
	b := buildSmall(t, "cora", false)
	tm, err := RunTiming(b, OASIS, HarnessConfig{Budget: 150, Runs: 2, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if tm.PerRun <= 0 || tm.PerIteration <= 0 {
		t.Errorf("timings %v %v", tm.PerRun, tm.PerIteration)
	}
	if tm.Method == "" {
		t.Error("missing method name")
	}
}

func TestRunConvergence(t *testing.T) {
	b := buildSmall(t, "Abt-Buy", true)
	conv, err := RunConvergence(b, HarnessConfig{Budget: 400, Seed: 7}, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(conv.Labels) == 0 {
		t.Fatal("no convergence samples")
	}
	for i := range conv.KL {
		if conv.KL[i] < 0 {
			t.Errorf("KL[%d] = %v", i, conv.KL[i])
		}
	}
}

func TestStrataSummaryHeavyTail(t *testing.T) {
	b := buildSmall(t, "Abt-Buy", true)
	rows, err := StrataSummary(b, 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 2 {
		t.Fatalf("strata %d", len(rows))
	}
	// Figure 1 shape: the largest stratum has a low mean score.
	largest := rows[0]
	for _, r := range rows {
		if r.Size > largest.Size {
			largest = r
		}
	}
	maxScore := rows[0].MeanScore
	for _, r := range rows {
		if r.MeanScore > maxScore {
			maxScore = r.MeanScore
		}
	}
	if largest.MeanScore > maxScore/2 {
		t.Errorf("largest stratum (size %d) has high mean score %v (max %v)",
			largest.Size, largest.MeanScore, maxScore)
	}
}

func TestFinalError(t *testing.T) {
	b := buildSmall(t, "restaurant", false)
	mean, ci, err := FinalError(b, OASIS, HarnessConfig{Budget: 200, Runs: 8, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(mean) || mean < 0 {
		t.Errorf("mean %v", mean)
	}
	if ci < 0 {
		t.Errorf("ci %v", ci)
	}
}

func TestMethodKindString(t *testing.T) {
	kinds := []MethodKind{Passive, Stratified, ImportanceSampling, ImportanceSamplingNaive, OASIS}
	for _, k := range kinds {
		if k.String() == "unknown" {
			t.Errorf("kind %d missing name", k)
		}
	}
	if MethodKind(99).String() != "unknown" {
		t.Error("unknown kind should say so")
	}
}

func TestCalibratedPoolScoresAreProbabilities(t *testing.T) {
	b := buildSmall(t, "DBLP-ACM", true)
	inner := b.Pool.Internal()
	if !inner.Probabilistic {
		t.Fatal("calibrated build should mark pool probabilistic")
	}
	for i := 0; i < inner.N(); i++ {
		if inner.Scores[i] < 0 || inner.Scores[i] > 1 {
			t.Fatalf("score %v out of [0,1]", inner.Scores[i])
		}
	}
}

func TestRunDiagnostics(t *testing.T) {
	b := buildSmall(t, "restaurant", false)
	snap, err := RunDiagnostics(b, HarnessConfig{Budget: 120, Strata: 8, Seed: 11}, 4, 16)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Dataset != "restaurant" {
		t.Errorf("dataset %q", snap.Dataset)
	}
	if len(snap.Series) == 0 || snap.Seen != 30 {
		t.Fatalf("series len=%d seen=%d, want non-empty with 30 recorded", len(snap.Series), snap.Seen)
	}
	// 30 points into a 16-ring must have downsampled at least once, and the
	// retained labels axis stays monotone.
	if snap.Stride < 2 {
		t.Errorf("stride %d, want >= 2", snap.Stride)
	}
	for i := 1; i < len(snap.Series); i++ {
		if snap.Series[i].Labels < snap.Series[i-1].Labels {
			t.Fatalf("labels axis not monotone at %d", i)
		}
	}
	// The newest point may be off the stride grid (discarded by design),
	// but the retained tail must be within one stride of the budget.
	if last := snap.Series[len(snap.Series)-1]; last.Labels <= 0 || last.Labels > 120 ||
		120-last.Labels > int(snap.Stride)*4 {
		t.Errorf("final retained point at %d labels (stride %d), want near 120", last.Labels, snap.Stride)
	}
	if len(snap.Strata) == 0 {
		t.Error("no per-stratum diagnostics")
	}
	if snap.State == "" || snap.Final.Terms <= 0 {
		t.Errorf("state %q terms %d", snap.State, snap.Final.Terms)
	}
}
