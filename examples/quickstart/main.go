// Command quickstart demonstrates the core OASIS workflow on synthetic
// scores: build a pool from an ER system's scores and predictions, then
// estimate its F-measure with a small label budget. Because every method is
// randomised, the comparison against passive sampling averages several
// repeats — single runs of any sampler can get lucky.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"oasis"
)

func main() {
	// ---- Simulate an ER system's output over 200k record pairs ----
	// A small high-score block holds nearly all matches (the classifier is
	// informative); the huge tail is nearly match-free. Scores are
	// calibrated: P(match | score s) = s.
	const n = 200000
	rnd := rand.New(rand.NewSource(7))
	scores := make([]float64, n)
	preds := make([]bool, n)
	truth := make([]bool, n)
	var tp, fp, fn float64
	for i := 0; i < n; i++ {
		var s float64
		if rnd.Float64() < 0.008 {
			s = 0.4 + 0.6*rnd.Float64()
		} else {
			// Non-match tail: tiny calibrated match probabilities.
			s = 0.01 * rnd.Float64()
		}
		scores[i] = s
		preds[i] = s > 0.6
		truth[i] = rnd.Float64() < s
		switch {
		case truth[i] && preds[i]:
			tp++
		case !truth[i] && preds[i]:
			fp++
		case truth[i] && !preds[i]:
			fn++
		}
	}
	trueF := tp / (0.5*(tp+fp) + 0.5*(tp+fn))
	oracle := func(i int) bool { return truth[i] } // the costly labeller

	pool, err := oasis.NewPool(scores, preds, oasis.CalibratedScores)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pool: %d pairs, %d predicted matches, ~%.0f true matches, true F1/2 = %.4f\n",
		pool.N(), pool.NumPredPositives(), tp+fn, trueF)

	// ---- OASIS vs Passive at a 1000-label budget, averaged over repeats ----
	const (
		budget  = 1000
		repeats = 10
	)
	var oasisErr, passiveErr float64
	passiveUndefined := 0
	var firstRun *oasis.Result
	for rep := 0; rep < repeats; rep++ {
		s, err := oasis.NewSampler(pool, oasis.Options{Strata: 30, Seed: uint64(1 + rep)})
		if err != nil {
			log.Fatal(err)
		}
		if rep == 0 {
			fmt.Printf("score-based initial guess F(0) = %.4f\n\n", s.InitialEstimate())
		}
		res, err := s.Run(oracle, budget)
		if err != nil {
			log.Fatal(err)
		}
		if rep == 0 {
			firstRun = res
		}
		oasisErr += math.Abs(res.FMeasure - trueF)

		p, err := oasis.NewPassiveSampler(pool, oasis.Options{Seed: uint64(100 + rep)})
		if err != nil {
			log.Fatal(err)
		}
		pres, err := p.Run(oracle, budget)
		if err != nil {
			log.Fatal(err)
		}
		if math.IsNaN(pres.FMeasure) {
			passiveUndefined++
			passiveErr += trueF // counts as estimating "nothing"
		} else {
			passiveErr += math.Abs(pres.FMeasure - trueF)
		}
	}
	fmt.Printf("first OASIS run: F = %.4f with %d labels (%d iterations)\n\n",
		firstRun.FMeasure, firstRun.LabelsConsumed, firstRun.Iterations)
	fmt.Printf("mean |F̂ − F| over %d repeats at %d labels:\n", repeats, budget)
	fmt.Printf("  OASIS:   %.4f\n", oasisErr/repeats)
	fmt.Printf("  Passive: %.4f", passiveErr/repeats)
	if passiveUndefined > 0 {
		fmt.Printf("  (undefined in %d/%d runs)", passiveUndefined, repeats)
	}
	fmt.Println()
}
