// Command ecommerce runs the paper's motivating scenario end-to-end on the
// synthetic Abt-Buy testbed: generate two product catalogues with noisy
// duplicate listings, train a linear-SVM matcher, build an evaluation pool
// (Table 2 shape at reduced scale), and compare the label cost of OASIS
// against the Passive, Stratified and IS baselines at a fixed error target.
package main

import (
	"fmt"
	"log"
	"math"

	"oasis/erbench"
)

func main() {
	// Build the Abt-Buy pool at 10% of the paper's scale: ~5.4k pairs with
	// the paper's 1:1075 imbalance preserved.
	fmt.Println("building synthetic Abt-Buy pool (10% scale, linear SVM)...")
	b, err := erbench.BuildPool("Abt-Buy", erbench.PoolConfig{
		Scale:      0.10,
		Classifier: erbench.LinearSVM,
		Seed:       1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pool %q: %d pairs, true precision %.3f recall %.3f F1/2 %.3f\n\n",
		b.Name, b.Pool.N(), b.Precision, b.Recall, b.F50)

	cfg := erbench.HarnessConfig{
		Budget: 1200,
		Runs:   40,
		Strata: 30,
		Seed:   7,
	}
	kinds := []erbench.MethodKind{
		erbench.Passive, erbench.Stratified, erbench.ImportanceSampling, erbench.OASIS,
	}
	fmt.Printf("%-12s %12s %12s %14s\n", "method", "abs err", "std dev", "labels→err≤.05")
	var curves []*erbench.Curves
	for _, kind := range kinds {
		c, err := erbench.RunCurves(b, kind, cfg)
		if err != nil {
			log.Fatal(err)
		}
		curves = append(curves, c)
		last := len(c.Checkpoints) - 1
		reach := erbench.LabelsToReachError(c, 0.05)
		reachStr := "never"
		if reach > 0 {
			reachStr = fmt.Sprintf("%d", reach)
		}
		errStr, sdStr := "undefined", "-"
		if !math.IsNaN(c.MeanAbsErr[last]) {
			errStr = fmt.Sprintf("%.4f", c.MeanAbsErr[last])
			sdStr = fmt.Sprintf("%.4f", c.StdDev[last])
		}
		fmt.Printf("%-12s %12s %12s %14s\n", c.Name, errStr, sdStr, reachStr)
	}

	// Headline comparison: label saving of OASIS vs IS at matched error.
	saving := erbench.LabelSaving(curves[3], curves[2], 0.05)
	if !math.IsNaN(saving) {
		fmt.Printf("\nOASIS saves %.0f%% of labels vs IS at abs err ≤ 0.05\n", 100*saving)
	}
}
