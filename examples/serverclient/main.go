// Command serverclient demonstrates the evaluation service end to end,
// in one process: it starts oasis-server's HTTP service on a loopback
// port, uploads a synthetic erbench pool once into the content-addressed
// pool store, creates a session referencing it by poolId, and drives the
// batched propose/commit protocol from several concurrent "crowd worker"
// goroutines — each pulling leased batches of record pairs over HTTP,
// labelling them against ground truth, and posting the answers back. The
// workers speak the compact binary hot-path protocol (OBP1, negotiated per
// request via Accept / Content-Type: application/x-oasis-bin) and fall
// back to JSON when the server answers it — the fallback a client needs
// against older servers. The final service-side estimate is compared with
// the single-threaded library Run at the same seed and budget, and with
// the pool's true F.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"sync"
	"time"

	"oasis"
	"oasis/erbench"
	"oasis/internal/poolstore"
	"oasis/internal/server"
	"oasis/internal/session"
)

const (
	budget  = 1500
	workers = 4
	batch   = 16
)

func main() {
	// ---- Build a synthetic erbench pool (the paper's cora profile) ----
	pool, err := erbench.BuildPool("cora", erbench.PoolConfig{Scale: 0.1, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	inner := pool.Pool.Internal()
	truth := func(i int) bool { return pool.TruthProb[i] >= 0.5 }
	opts := oasis.Options{Strata: 20, Seed: 99, PosteriorEstimate: true}

	// ---- Reference: the synchronous library loop at the same budget ----
	ref, err := oasis.NewSampler(pool.Pool, opts)
	if err != nil {
		log.Fatal(err)
	}
	res, err := ref.Run(truth, budget)
	if err != nil {
		log.Fatal(err)
	}

	// ---- Start the service in-process, pool store attached ----
	ctx, stop := context.WithCancel(context.Background())
	pools, err := poolstore.Open("") // in-memory; oasis-server persists via -pools-dir
	if err != nil {
		log.Fatal(err)
	}
	mgr := session.NewManager(session.ManagerOptions{Pools: pools})
	srv := server.New(mgr)
	srv.SetPools(pools)
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx, "127.0.0.1:0", ready) }()
	base := "http://" + <-ready
	fmt.Printf("service up at %s\n", base)

	// ---- Upload the pool once, then create a session by reference ----
	var uploaded server.PoolResponse
	post(base+"/v1/pools", server.PoolUploadRequest{Scores: inner.Scores, Preds: inner.Preds}, &uploaded)
	fmt.Printf("pool %s… stored once: %d pairs, %d bytes\n",
		uploaded.PoolID[:12], uploaded.Pairs, uploaded.Bytes)
	var status session.Status
	post(base+"/v1/sessions", session.Config{
		ID:         "demo",
		PoolID:     uploaded.PoolID,
		Calibrated: inner.Probabilistic,
		Threshold:  inner.Threshold,
		Options:    opts,
		Budget:     budget,
		LeaseTTL:   time.Minute,
	}, &status)
	fmt.Printf("session %q over %d pairs (shared pool, refs now %d), initial F̂ = %.4f\n",
		status.ID, status.PoolSize, pools.Refs(uploaded.PoolID), *status.InitialEstimate)

	// ---- Crowd workers: propose, label, commit — concurrently ----
	var wg sync.WaitGroup
	labelled := make([]int, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Per-worker reusable binary client state: frame buffer and
			// decoded structs are recycled across round trips, the point of
			// the binary protocol.
			var frame []byte
			for {
				var pr server.ProposeResponse
				binGet(fmt.Sprintf("%s/v1/sessions/demo/propose?n=%d", base, batch), &pr)
				if pr.Exhausted {
					return
				}
				if len(pr.Proposals) == 0 {
					continue // everything currently leased to the other workers
				}
				req := server.LabelsRequest{}
				for _, p := range pr.Proposals {
					req.Labels = append(req.Labels, server.Label{Pair: p.Pair, Label: truth(p.Pair)})
				}
				frame = server.AppendLabelsRequest(frame[:0], &req)
				var lr server.LabelsResponse
				binPost(base+"/v1/sessions/demo/labels", frame, req, &lr)
				labelled[w] += lr.Committed
			}
		}(w)
	}
	wg.Wait()
	for w, n := range labelled {
		fmt.Printf("worker %d committed %d labels\n", w, n)
	}

	// ---- Read off the estimate and compare ----
	get(base+"/v1/sessions/demo/estimate", &status)
	fmt.Printf("service  F̂ = %.4f  (%d labels via %d workers)\n",
		*status.Estimate, status.LabelsCommitted, workers)
	fmt.Printf("library  F̂ = %.4f  (single-threaded Run)\n", res.FMeasure)
	fmt.Printf("true     F  = %.4f\n", pool.TrueF(0.5))

	stop()
	if err := <-done; err != nil {
		log.Fatal(err)
	}
}

// binGet fetches a binary propose response, falling back to JSON when the
// server does not answer the negotiated media type (an older server ignores
// the Accept header and replies JSON — the response Content-Type says which
// was spoken).
func binGet(url string, pr *server.ProposeResponse) {
	req, err := http.NewRequest("GET", url, nil)
	if err != nil {
		log.Fatal(err)
	}
	req.Header.Set("Accept", server.ContentTypeBinary)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	if resp.Header.Get("Content-Type") != server.ContentTypeBinary {
		decode(resp, pr) // JSON fallback
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		log.Fatalf("GET %s: HTTP %d", url, resp.StatusCode)
	}
	frame, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	if err := server.DecodeProposeResponse(frame, pr); err != nil {
		log.Fatal(err)
	}
}

// binPost commits one binary labels frame, falling back to re-posting the
// JSON form when the server does not speak binary.
func binPost(url string, frame []byte, jsonReq server.LabelsRequest, lr *server.LabelsResponse) {
	req, err := http.NewRequest("POST", url, bytes.NewReader(frame))
	if err != nil {
		log.Fatal(err)
	}
	req.Header.Set("Content-Type", server.ContentTypeBinary)
	req.Header.Set("Accept", server.ContentTypeBinary)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode == http.StatusUnsupportedMediaType {
		// Older server: it refused the binary body, so speak JSON.
		resp.Body.Close()
		post(url, jsonReq, lr)
		return
	}
	if resp.Header.Get("Content-Type") != server.ContentTypeBinary {
		decode(resp, lr) // binary accepted but JSON answered
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		log.Fatalf("POST %s: HTTP %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	if err := server.DecodeLabelsResponse(body, lr); err != nil {
		log.Fatal(err)
	}
}

// post and get are minimal JSON helpers; out may be nil.
func post(url string, body, out any) {
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(body); err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", &buf)
	if err != nil {
		log.Fatal(err)
	}
	decode(resp, out)
}

func get(url string, out any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	decode(resp, out)
}

func decode(resp *http.Response, out any) {
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		log.Fatalf("%s %s: HTTP %d", resp.Request.Method, resp.Request.URL, resp.StatusCode)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			log.Fatal(err)
		}
	}
}
