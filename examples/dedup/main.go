// Command dedup evaluates a single-database deduplication system — the
// cora-style regime where each entity has many duplicate records and class
// imbalance is mild (≈1:48). It demonstrates (i) that OASIS remains
// competitive when imbalance is small (the paper's cora finding) and
// (ii) estimating precision and recall (α = 1 and α = 0) alongside the
// balanced F-measure.
package main

import (
	"fmt"
	"log"
	"math"

	"oasis"
	"oasis/erbench"
)

func main() {
	fmt.Println("building synthetic cora pool (10% scale, linear SVM)...")
	b, err := erbench.BuildPool("cora", erbench.PoolConfig{
		Scale:      0.10,
		Classifier: erbench.LinearSVM,
		Seed:       11,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pool %q: %d pairs, %.0f true matches (imbalance mild)\n",
		b.Name, b.Pool.N(), float64(b.Pool.N())/(1+b.Pool.Internal().ImbalanceRatio()))
	fmt.Printf("true operating point: precision %.3f, recall %.3f, F1/2 %.3f\n\n",
		b.Precision, b.Recall, b.F50)

	oracle := b.Oracle(3)
	const budget = 2500

	// Estimate all three targets with separate OASIS samplers.
	type target struct {
		name string
		opts oasis.Options
		want float64
	}
	targets := []target{
		{"F1/2", oasis.Options{Alpha: 0.5, Seed: 21}, b.F50},
		{"precision", oasis.Options{Alpha: 1, Seed: 22}, b.Precision},
		{"recall", oasis.Options{Recall: true, Seed: 23}, b.Recall},
	}
	fmt.Printf("%-10s %10s %10s %8s\n", "target", "estimate", "true", "|err|")
	for _, tg := range targets {
		s, err := oasis.NewSampler(b.Pool, tg.opts)
		if err != nil {
			log.Fatal(err)
		}
		res, err := s.Run(oracle, budget)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %10.4f %10.4f %8.4f\n",
			tg.name, res.FMeasure, tg.want, math.Abs(res.FMeasure-tg.want))
	}

	// In the mild-imbalance regime the methods should be close (the paper's
	// cora/tweets observation): compare OASIS and Passive error curves.
	fmt.Println("\nmild imbalance: OASIS vs Passive at the same budget")
	cfg := erbench.HarnessConfig{Budget: budget, Runs: 30, Seed: 31}
	for _, kind := range []erbench.MethodKind{erbench.OASIS, erbench.Passive} {
		c, err := erbench.RunCurves(b, kind, cfg)
		if err != nil {
			log.Fatal(err)
		}
		last := len(c.Checkpoints) - 1
		fmt.Printf("  %-10s abs err %.4f, std dev %.4f\n",
			c.Name, c.MeanAbsErr[last], c.StdDev[last])
	}
}
