// Command noisyoracle demonstrates OASIS under a randomised labelling oracle
// — the crowdsourcing regime the paper's theory covers (Definition 4 allows
// p(1|z) strictly inside (0,1)). Annotators answer correctly only with some
// probability; the population target is the F-measure defined by the oracle
// distribution itself, and OASIS converges to it while passive sampling at
// the same budget is far noisier.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"oasis"
)

func main() {
	// ---- Pool with ground truth plus annotator noise ----
	const (
		n          = 100000
		flip       = 0.08 // annotator error rate on every query
		budget     = 2000
		imbalance  = 150.0
		numRepeats = 5
	)
	rnd := rand.New(rand.NewSource(3))
	scores := make([]float64, n)
	preds := make([]bool, n)
	clean := make([]bool, n) // latent true matching
	oracleProb := make([]float64, n)
	for i := 0; i < n; i++ {
		var s float64
		if rnd.Float64() < 1/(1+imbalance)*3 {
			s = 0.35 + 0.65*rnd.Float64()
		} else {
			s = 0.3 * rnd.Float64()
		}
		scores[i] = s
		preds[i] = s > 0.62
		clean[i] = rnd.Float64() < s*s
		// Oracle answers "match" with probability (1−flip) if truly a match,
		// flip otherwise.
		if clean[i] {
			oracleProb[i] = 1 - flip
		} else {
			oracleProb[i] = flip
		}
	}
	// Population target under the noisy oracle: expected confusion counts.
	var tp, fp, fn float64
	for i := 0; i < n; i++ {
		if preds[i] {
			tp += oracleProb[i]
			fp += 1 - oracleProb[i]
		} else {
			fn += oracleProb[i]
		}
	}
	targetF := tp / (0.5*(tp+fp) + 0.5*(tp+fn))
	// The noise-free F, for contrast.
	tp, fp, fn = 0, 0, 0
	for i := 0; i < n; i++ {
		switch {
		case clean[i] && preds[i]:
			tp++
		case !clean[i] && preds[i]:
			fp++
		case clean[i] && !preds[i]:
			fn++
		}
	}
	cleanF := tp / (0.5*(tp+fp) + 0.5*(tp+fn))

	fmt.Printf("pool: %d pairs; noisy-oracle target F = %.4f (noise-free F = %.4f)\n\n",
		n, targetF, cleanF)

	pool, err := oasis.NewPool(scores, preds, oasis.CalibratedScores)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-8s %-10s %10s %8s\n", "run", "method", "estimate", "|err|")
	for rep := 0; rep < numRepeats; rep++ {
		// Each repeat is a fresh crowd: a new random stream for the oracle.
		crowd := rand.New(rand.NewSource(int64(100 + rep)))
		oracle := func(i int) bool { return crowd.Float64() < oracleProb[i] }

		s, err := oasis.NewSampler(pool, oasis.Options{Strata: 30, Seed: uint64(200 + rep)})
		if err != nil {
			log.Fatal(err)
		}
		res, err := s.Run(oracle, budget)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8d %-10s %10.4f %8.4f\n", rep, "OASIS", res.FMeasure,
			math.Abs(res.FMeasure-targetF))

		p, err := oasis.NewPassiveSampler(pool, oasis.Options{Seed: uint64(300 + rep)})
		if err != nil {
			log.Fatal(err)
		}
		pres, err := p.Run(oracle, budget)
		if err != nil {
			log.Fatal(err)
		}
		if math.IsNaN(pres.FMeasure) {
			fmt.Printf("%-8d %-10s %10s %8s\n", rep, "Passive", "undefined", "-")
		} else {
			fmt.Printf("%-8d %-10s %10.4f %8.4f\n", rep, "Passive", pres.FMeasure,
				math.Abs(pres.FMeasure-targetF))
		}
	}
}
