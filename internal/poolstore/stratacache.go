package poolstore

import (
	"context"

	"oasis/internal/trace"
)

// The strata cache: a stratification is a pure function of (pool columns,
// strata options), and the columns are immutable and content-addressed, so
// the store memoises stratifications per (pool, options) — N sessions over
// one pool stratify once instead of N times. The cached value is opaque to
// this package (the session layer stores a *strata.Strata); keeping it `any`
// keeps poolstore free of a dependency on the sampling layers above it.

// StrataKey identifies one stratification of a pool: every option that the
// computation reads must appear here, or two sessions with different
// options would share one (wrong) stratification. K and Bins are the
// post-clamp values (the session layer clamps them to the pool size);
// Calibrated and Threshold determine the probability transform CSF bins.
type StrataKey struct {
	Stratifier int
	K          int
	Bins       int
	Calibrated bool
	Threshold  float64
}

// Strata returns the cached stratification of pool id under key, computing
// and caching it on a miss. compute returns the value and its resident size
// in bytes (counted against the memory budget). The caller must hold a live
// Acquire reference to id for the whole call — the reference is what keeps
// the entry (and the columns compute reads) alive — and must treat the
// returned value as immutable, like the columns themselves.
//
// Racing calls for the same pool serialise on a per-entry lock, so the
// computation runs once; calls for different pools do not contend.
func (s *Store) Strata(id string, key StrataKey, compute func() (value any, bytes int64, err error)) (any, error) {
	v, _, err := s.strataLookup(id, key, compute)
	return v, err
}

// StrataCtx is Strata with request context: when ctx carries a trace
// (internal/trace), the lookup is recorded as a span annotated hit or miss,
// so the cost of a cold stratification is visible on the request that paid
// it.
func (s *Store) StrataCtx(ctx context.Context, id string, key StrataKey, compute func() (value any, bytes int64, err error)) (any, error) {
	tr := trace.FromContext(ctx)
	sp := tr.Start("pool", "pool.strata")
	v, hit, err := s.strataLookup(id, key, compute)
	if tr != nil {
		if hit {
			sp.Attr("cache", "hit")
		} else {
			sp.Attr("cache", "miss")
		}
	}
	sp.End()
	return v, err
}

// strataLookup implements Strata, reporting whether the value came from the
// cache.
func (s *Store) strataLookup(id string, key StrataKey, compute func() (value any, bytes int64, err error)) (_ any, hit bool, err error) {
	s.mu.Lock()
	e, ok := s.pools[id]
	if ok && e.pool != nil {
		if v, cached := e.strata[key]; cached {
			s.strataHits++
			e.lastUsed = s.now()
			s.mu.Unlock()
			return v, true, nil
		}
	}
	s.mu.Unlock()
	if !ok {
		return nil, false, ErrNotFound
	}

	e.strataMu.Lock()
	defer e.strataMu.Unlock()
	// Re-check under the entry lock: a predecessor may have computed it.
	s.mu.Lock()
	if cur, curOK := s.pools[id]; !curOK || cur != e {
		// Removed meanwhile — the caller's reference should have prevented
		// this, but fail cleanly rather than cache onto a dead entry.
		s.mu.Unlock()
		return nil, false, ErrNotFound
	}
	if v, cached := e.strata[key]; cached {
		s.strataHits++
		e.lastUsed = s.now()
		s.mu.Unlock()
		return v, true, nil
	}
	s.mu.Unlock()

	v, cost, err := compute() // slow: O(N log N) — no store-wide lock held
	if err != nil {
		return nil, false, err
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if cur, curOK := s.pools[id]; !curOK || cur != e {
		return v, false, nil // entry replaced under us: hand back the value uncached
	}
	if e.pool == nil {
		// Columns were evicted mid-compute (refs hit zero on another path):
		// the value is still correct — it was computed from the immutable
		// columns — but caching it would leak past the eviction, so don't.
		return v, false, nil
	}
	if e.strata == nil {
		e.strata = make(map[StrataKey]any)
	}
	e.strata[key] = v
	e.strataBytes += cost
	e.lastUsed = s.now()
	s.strataMisses++
	s.enforceBudgetLocked()
	return v, false, nil
}
