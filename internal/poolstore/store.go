// Package poolstore is a durable, content-addressed, reference-counted
// registry of evaluation pools (the score/prediction columns every session
// samples against).
//
// The serving reality behind it: one candidate-pair pool is evaluated by
// many annotators at once, so the same million-pair columns used to be
// re-uploaded per session, re-copied per session in memory, and serialised
// into every WAL create record and every snapshot. The store inverts that.
// A pool is uploaded once — JSON or the compact binary columnar form (see
// codec.go) — canonically encoded, addressed by the SHA-256 of those bytes,
// and persisted as an immutable fsync'd file named by its hash. Sessions
// then reference the pool by ID: every concurrent session shares one
// read-only in-memory copy under a reference count, WAL create records and
// manager snapshots persist only the hash (O(1) instead of O(N)), and
// replay resolves the hash back through the store. Put returns only after
// the pool file is durable, so a WAL create record can never reference a
// pool that a crash could un-write.
//
// Cold loads are zero-copy where the platform allows: on linux/{amd64,arm64}
// the immutable pool file is mmap'd read-only, the section CRCs are verified
// against the mapped bytes, and the scores column is aliased straight out of
// the mapping as []float64 — residency is then governed by the page cache,
// not the Go heap. The full SHA-256 content verification runs once per
// store open per pool; warm reacquires of an evicted pool re-check only the
// section CRCs. Other platforms (and legacy v1 files) take a streaming
// decode that reads the file section by section through a fixed-size buffer,
// so peak load memory is one buffer, never a second whole-pool copy.
//
// Stratifications are cached beside the pool: CSF/equal-size strata are a
// pure function of (pool columns, strata options), so the session layer
// memoises them per (pool, options) under the same refcount via Strata —
// N sessions over one pool stratify once.
//
// Unreferenced pools are garbage-collected three ways: DELETE (Remove)
// drops an unreferenced pool from disk and memory, an idle sweep (Sweep)
// evicts the in-memory columns of unreferenced pools, and a byte-budget
// sweep (SetMemBudget) evicts least-recently-used unreferenced residents —
// unmapping or dropping their columns and cached strata — until resident
// memory is back under budget. Eviction decisions are surfaced in Stats.
// The durable files stay; the next Acquire reloads and re-verifies.
//
// All methods are safe for concurrent use. The store never mutates a
// loaded pool's columns, and callers must not either: the whole point is
// that every session reads the same backing arrays (for mapped pools they
// are not even writable — the mapping is PROT_READ).
package poolstore

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"oasis/internal/trace"
)

// Errors returned by the store.
var (
	// ErrNotFound is returned for IDs the store does not hold.
	ErrNotFound = errors.New("poolstore: no such pool")
	// ErrInUse is returned by Remove while sessions still reference the pool.
	ErrInUse = errors.New("poolstore: pool is referenced by live sessions")
)

// Pool is one immutable, shared evaluation pool. Scores and Preds are the
// content-addressed columns; every session referencing the pool aliases the
// same backing arrays and must treat them as read-only. For a mapped pool,
// Scores aliases the read-only mmap directly (zero-copy); the refcount the
// session holds is what pins the mapping.
type Pool struct {
	// ID is the pool's content address (hex SHA-256 of its encoding).
	ID string
	// Scores and Preds are the shared columns, parallel slices.
	Scores []float64
	Preds  []bool

	// truth is a shared all-zero oracle-probability column: the serving path
	// never reads ground truth, but the pool plumbing requires the column to
	// exist, and allocating it once per pool instead of once per session is
	// part of the single-copy contract.
	truth []float64
}

// N returns the number of pairs.
func (p *Pool) N() int { return len(p.Scores) }

// Truth returns the shared all-zero oracle-probability column.
func (p *Pool) Truth() []float64 { return p.truth }

// entry is the store's record of one pool. pool is nil while the columns
// are not resident (on-disk only, loaded on demand).
type entry struct {
	pool      *Pool
	mapped    *mapping // non-nil while pool.Scores aliases an mmap
	pairs     int
	bytes     int64
	heapBytes int64 // resident heap cost of the columns (excludes the mapping)
	refs      int
	idleSince time.Time // refs last hit zero (or the entry appeared unreferenced)
	lastUsed  time.Time // most recent Acquire/Release/strata hit: the LRU clock
	// verified records that the full SHA-256 content verification ran for
	// this entry since the store opened; warm reloads after an eviction then
	// re-check only the per-section CRCs (the one-time-per-open policy).
	verified bool

	// strata caches stratifications computed over this pool's columns, keyed
	// by the options that determine them; strataBytes is their resident
	// cost. The cache lives and dies with the resident columns: eviction
	// drops both.
	strata      map[StrataKey]any
	strataBytes int64

	// loadMu serialises cold loads of this entry only: the disk read, hash
	// verification and decode of a large pool must not run under the
	// store-wide mutex, or every unrelated Acquire/Release/Stats would stall
	// behind it.
	loadMu sync.Mutex
	// strataMu serialises stratification computes for this entry, so N
	// racing sessions over one pool stratify once instead of N times.
	strataMu sync.Mutex
}

// residentCost is the entry's contribution to the memory budget: heap
// columns, the mapped file (address space + page cache), and cached strata.
// Callers hold s.mu.
func (e *entry) residentCost() int64 {
	if e.pool == nil {
		return 0
	}
	c := e.heapBytes + e.strataBytes
	if e.mapped != nil {
		c += int64(len(e.mapped.data))
	}
	return c
}

// info snapshots the entry's Info; callers hold s.mu.
func (e *entry) info(id string) Info {
	return Info{ID: id, Pairs: e.pairs, Bytes: e.bytes, Refs: e.refs, Loaded: e.pool != nil,
		Mapped: e.mapped != nil, StrataCached: len(e.strata)}
}

// EvictionRecord is one eviction decision, surfaced via Stats (and from
// there /v1/stats) so operators can see what the budget and idle sweeps are
// doing without scraping logs.
type EvictionRecord struct {
	ID    string `json:"id"`
	Bytes int64  `json:"bytes"` // resident cost released
	// Reason is "idle" (Sweep) or "budget" (memory-budget LRU).
	Reason string `json:"reason"`
	Unix   int64  `json:"unix"`
}

// evictionLogSize bounds the eviction ring kept for Stats.
const evictionLogSize = 16

// Stats is a snapshot of the store's counters, exposed by the server's
// /v1/stats endpoint.
type Stats struct {
	// Pools counts registered pools; Loaded those with resident columns;
	// Mapped the subset served zero-copy off an mmap.
	Pools  int `json:"pools"`
	Loaded int `json:"loaded"`
	Mapped int `json:"mapped"`
	// Refs is the total number of live session references across all pools.
	Refs int `json:"refs"`
	// Bytes is the total encoded size of all registered pools;
	// ResidentBytes the store's estimate of resident memory cost (heap
	// columns + mapped files + cached strata); MmapBytes the mapped share of
	// it (page-cache-governed, reclaimable by the kernel).
	Bytes         int64 `json:"bytes"`
	ResidentBytes int64 `json:"residentBytes"`
	MmapBytes     int64 `json:"mmapBytes"`
	// MemBudget is the configured resident-memory budget (0 = unlimited).
	MemBudget int64 `json:"memBudget,omitempty"`
	// Puts counts uploads that stored a new pool; DedupHits uploads that
	// landed on an already-stored one.
	Puts      uint64 `json:"puts"`
	DedupHits uint64 `json:"dedupHits"`
	// Loads counts on-demand loads from disk; Evictions drops of resident
	// pool columns (idle sweeps and budget sweeps; BudgetEvictions is the
	// budget share); Sweeps the idle-sweep passes; Removes deleted pools.
	Loads           uint64 `json:"loads"`
	Evictions       uint64 `json:"evictions"`
	BudgetEvictions uint64 `json:"budgetEvictions"`
	Sweeps          uint64 `json:"sweeps"`
	Removes         uint64 `json:"removes"`
	// StrataCacheHits counts sessions that reused a cached stratification;
	// StrataCacheMisses those that computed one; StrataCached the
	// stratifications currently resident.
	StrataCacheHits   uint64 `json:"strataCacheHits"`
	StrataCacheMisses uint64 `json:"strataCacheMisses"`
	StrataCached      int    `json:"strataCached"`
	// Damaged counts pool files Open quarantined (unreadable headers); see
	// Store.Damaged for the names.
	Damaged int `json:"damaged,omitempty"`
	// RecentEvictions is the ring of the most recent eviction decisions,
	// newest last.
	RecentEvictions []EvictionRecord `json:"recentEvictions,omitempty"`
}

// Info describes one pool for the list/introspection endpoints.
type Info struct {
	ID     string `json:"id"`
	Pairs  int    `json:"pairs"`
	Bytes  int64  `json:"bytes"`
	Refs   int    `json:"refs"`
	Loaded bool   `json:"loaded"`
	// Mapped reports the columns are served zero-copy off an mmap;
	// StrataCached counts cached stratifications for this pool.
	Mapped       bool `json:"mapped,omitempty"`
	StrataCached int  `json:"strataCached,omitempty"`
}

// Store is the pool registry. A Store with a directory persists every pool
// as an immutable file named <id>.pool and survives restarts; a Store
// without one (dir "") is memory-only — fine for tests and for servers
// that do not journal, but a WAL-backed server should always persist pools,
// or replay could not resolve the create records it finds.
type Store struct {
	dir string

	mu           sync.Mutex
	pools        map[string]*entry
	damaged      []string         // pool files Open could not index (quarantined)
	now          func() time.Time // injected by tests
	memBudget    int64
	decodeOnly   bool // force the streaming decode path (tests, benchmarks, ops escape hatch)
	puts         uint64
	hits         uint64
	loads        uint64
	evicts       uint64
	budgetEvicts uint64
	sweeps       uint64
	removes      uint64
	strataHits   uint64
	strataMisses uint64
	evictLog     []EvictionRecord
}

const poolFileSuffix = ".pool"

// Open returns a store over dir, indexing (without loading) every pool file
// already present. An empty dir means a memory-only store.
func Open(dir string) (*Store, error) {
	s := &Store{dir: dir, pools: make(map[string]*entry), now: time.Now}
	if dir == "" {
		return s, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("poolstore: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("poolstore: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || filepath.Ext(name) != poolFileSuffix {
			continue
		}
		id := name[:len(name)-len(poolFileSuffix)]
		if !ValidID(id) {
			continue // not a pool file (e.g. an aborted temp file)
		}
		pairs, size, err := readPoolHeader(filepath.Join(dir, name))
		if err != nil {
			// Quarantine, don't refuse: a corrupt file that nothing durable
			// references must not keep the service down. The file is left in
			// place (never silently deleted) and reported via Damaged; any
			// session that actually references the ID fails to Acquire it,
			// which is where the deterministic fail-stop belongs.
			s.damaged = append(s.damaged, name)
			continue
		}
		now := s.now()
		s.pools[id] = &entry{pairs: pairs, bytes: size, idleSince: now, lastUsed: now}
	}
	sort.Strings(s.damaged)
	return s, nil
}

// Damaged lists the pool files Open could not index (unreadable or corrupt
// headers). They are left on disk untouched; operators should inspect or
// remove them. A damaged pool that a session still references fails that
// session's Acquire with a not-found error.
func (s *Store) Damaged() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.damaged...)
}

// Dir returns the store's directory ("" for a memory-only store).
func (s *Store) Dir() string { return s.dir }

// Durable reports whether the store persists pools to disk. The session
// manager interns inline pools only into a durable store: interning into a
// memory-only one would write snapshots (and journals) whose pool
// references die with the process.
func (s *Store) Durable() bool { return s.dir != "" }

// SetMemBudget caps the store's resident pool memory (heap columns, mapped
// files and cached strata) at budget bytes; 0 disables the cap. When over
// budget, least-recently-used unreferenced residents are evicted — columns
// unmapped or dropped, cached strata with them — until back under (or
// nothing unreferenced remains; referenced pools are never evicted, so the
// budget is a target, not a hard guarantee). Enforcement runs inline on
// every transition that can cross the budget: loads, puts, releases, and
// this call.
func (s *Store) SetMemBudget(budget int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.memBudget = budget
	s.enforceBudgetLocked()
}

// SetDecodeOnly forces every cold load onto the streaming decode path even
// where mmap is supported — the knob the mmap-vs-decode equivalence tests
// and benchmarks use, and an operational escape hatch.
func (s *Store) SetDecodeOnly(v bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.decodeOnly = v
}

// readPoolHeader reads just enough of a pool file to index it: the verified
// header (pair count) and the file size.
func readPoolHeader(path string) (pairs int, size int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, err
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return 0, 0, err
	}
	// Read the larger (v2) header size; any structurally valid pool file of
	// either version is longer than that, so a short read means damage.
	hdr := make([]byte, codecHeaderSize)
	if _, err := io.ReadFull(f, hdr); err != nil {
		return 0, 0, fmt.Errorf("short pool file: %w", err)
	}
	pairs, err = decodeHeader(hdr, info.Size())
	if err != nil {
		return 0, 0, err
	}
	return pairs, info.Size(), nil
}

// path returns the pool file path for id.
func (s *Store) path(id string) string { return filepath.Join(s.dir, id+poolFileSuffix) }

// heapColumnsBytes is the resident heap cost of fully decoded columns:
// scores (8n) + preds (n) + truth (8n).
func heapColumnsBytes(n int) int64 { return int64(n) * 17 }

// mappedColumnsBytes is the resident heap cost of mmap-aliased columns:
// preds (n) + truth (8n); the scores live in the mapping.
func mappedColumnsBytes(n int) int64 { return int64(n) * 9 }

// Put canonically encodes the pool columns, stores them under their content
// address, and returns the pool's Info (Info.ID is the content address).
// Re-putting an existing pool is a dedup hit (created == false) and writes
// nothing. With a directory, Put returns only once the pool file and its
// directory entry are fsync'd — the durability a WAL create record
// referencing the ID relies on.
func (s *Store) Put(scores []float64, preds []bool) (info Info, created bool, err error) {
	encoded, err := Encode(scores, preds)
	if err != nil {
		return Info{}, false, err
	}
	// Copy before registering: the registered columns become the shared
	// read-only copy every session aliases, and the caller keeps ownership
	// of (and may reuse) its own slices — the same contract the inline
	// session path has always had via oasis.NewPool's copy.
	scores = append([]float64(nil), scores...)
	preds = append([]bool(nil), preds...)
	return s.putEncoded(encoded, scores, preds, false)
}

// PutEncoded stores a pool already in canonical binary form (the upload
// endpoint's zero-parse path for binary bodies). The encoding is fully
// verified before anything is written.
func (s *Store) PutEncoded(encoded []byte) (info Info, created bool, err error) {
	scores, preds, err := Decode(encoded)
	if err != nil {
		return Info{}, false, err
	}
	return s.putEncoded(encoded, scores, preds, false)
}

// putEncoded registers the verified (encoded, columns) pool, returning its
// Info snapshot as of registration. With acquire, the registration (or
// dedup hit) takes one reference atomically, so no concurrent Remove can
// slip between storing a pool and referencing it. The slow disk write runs
// outside the store lock: Acquire/Release/Stats on other pools never stall
// behind a large upload's fsyncs.
func (s *Store) putEncoded(encoded []byte, scores []float64, preds []bool, acquire bool) (Info, bool, error) {
	id := contentID(encoded)
	// registerHit re-lands on an already-registered pool; both critical
	// sections below share it.
	registerHit := func() (Info, bool) {
		e, ok := s.pools[id]
		if !ok {
			return Info{}, false
		}
		// Already stored — identical content, by construction of the address.
		// Re-populating the columns costs nothing and saves a disk reload.
		if e.pool == nil {
			e.pool = &Pool{ID: id, Scores: scores, Preds: preds, truth: make([]float64, len(scores))}
			e.heapBytes = heapColumnsBytes(len(scores))
			// The columns are byte-verified against the address by
			// construction: the encoding was just hashed.
			e.verified = true
		}
		if acquire {
			e.refs++
		}
		e.lastUsed = s.now()
		s.hits++
		info := e.info(id)
		s.enforceBudgetLocked()
		return info, true
	}
	s.mu.Lock()
	if info, ok := registerHit(); ok {
		s.mu.Unlock()
		return info, false, nil
	}
	s.mu.Unlock()
	if s.dir != "" {
		// Outside the lock: the write is atomic (temp + rename) and the
		// content is a pure function of the ID, so two racing Puts of the
		// same pool write identical files; the loser re-lands as a dedup hit
		// below.
		if err := writeFileAtomicSync(s.path(id), encoded, 0o644); err != nil {
			return Info{}, false, fmt.Errorf("poolstore: store pool: %w", err)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if info, ok := registerHit(); ok {
		return info, false, nil
	}
	now := s.now()
	ent := &entry{
		pool:      &Pool{ID: id, Scores: scores, Preds: preds, truth: make([]float64, len(scores))},
		pairs:     len(scores),
		bytes:     int64(len(encoded)),
		heapBytes: heapColumnsBytes(len(scores)),
		verified:  true,
		idleSince: now,
		lastUsed:  now,
	}
	if acquire {
		ent.refs = 1
	}
	s.pools[id] = ent
	s.puts++
	info := ent.info(id)
	s.enforceBudgetLocked()
	return info, true, nil
}

// Intern stores the pool columns (a dedup hit if already stored) and takes
// one reference atomically, returning the ID and a release for that
// reference. The session manager uses it when rewriting inline configs to
// the PoolID form: the temporary reference keeps a concurrent Remove from
// deleting the freshly interned pool before the session acquires it.
func (s *Store) Intern(scores []float64, preds []bool) (id string, release func(), err error) {
	encoded, err := Encode(scores, preds)
	if err != nil {
		return "", nil, err
	}
	// Same defensive copy as Put: the caller's slices never become the
	// shared columns.
	scores = append([]float64(nil), scores...)
	preds = append([]bool(nil), preds...)
	info, _, err := s.putEncoded(encoded, scores, preds, true)
	if err != nil {
		return "", nil, err
	}
	var once sync.Once
	return info.ID, func() { once.Do(func() { s.Release(info.ID) }) }, nil
}

// Acquire resolves id to its shared pool and takes one reference, loading
// and re-verifying the pool file if the columns are not resident. Every
// Acquire must be balanced by a Release. The returned pool is shared:
// callers must not mutate its columns.
//
// A cold load — mmap or streaming decode, verification — runs under the
// entry's own lock, not the store-wide one, so loading one large pool never
// stalls operations on other pools; racing Acquires of the same pool still
// load it exactly once. The reference is taken in the same critical section
// that registers the loaded columns, so a budget or idle sweep can never
// observe a freshly loaded pool as unreferenced and unmap it out from under
// the acquiring session.
func (s *Store) Acquire(id string) (*Pool, error) {
	return s.AcquireCtx(context.Background(), id)
}

// AcquireCtx is Acquire with request context: when ctx carries a trace
// (internal/trace), the acquire is recorded as a span annotated with the
// path taken — warm (columns resident, refcount bump) vs. cold, and for
// cold loads whether the columns came off a zero-copy mmap or a streaming
// decode.
func (s *Store) AcquireCtx(ctx context.Context, id string) (*Pool, error) {
	tr := trace.FromContext(ctx)
	sp := tr.Start("pool", "pool.acquire")
	p, warm, mapped, err := s.acquire(id)
	if tr != nil {
		state := "cold"
		if warm {
			state = "warm"
		}
		sp.Attr("state", state)
		if !warm && err == nil {
			mode := "decode"
			if mapped {
				mode = "mmap"
			}
			sp.Attr("mode", mode)
		}
		if len(id) >= 12 {
			sp.Attr("pool", id[:12])
		} else {
			sp.Attr("pool", id)
		}
	}
	sp.End()
	return p, err
}

// acquire implements Acquire, reporting which path served the reference:
// warm (resident columns) or cold, and whether a cold load mmapped.
func (s *Store) acquire(id string) (_ *Pool, warm, mapped bool, err error) {
	for {
		s.mu.Lock()
		e, ok := s.pools[id]
		if !ok {
			s.mu.Unlock()
			return nil, false, false, fmt.Errorf("%w: %q", ErrNotFound, id)
		}
		if e.pool != nil {
			e.refs++
			e.lastUsed = s.now()
			p := e.pool
			s.mu.Unlock()
			return p, true, e.mapped != nil, nil
		}
		s.mu.Unlock()

		e.loadMu.Lock()
		// Re-check under the entry lock: a predecessor loader may have
		// populated the columns, or the entry may have been removed (and
		// possibly re-put) while we waited.
		s.mu.Lock()
		if cur, ok := s.pools[id]; !ok || cur != e {
			// Removed (or replaced) meanwhile: start over against the map.
			s.mu.Unlock()
			e.loadMu.Unlock()
			continue
		}
		if e.pool != nil {
			e.refs++
			e.lastUsed = s.now()
			p := e.pool
			s.mu.Unlock()
			e.loadMu.Unlock()
			return p, true, e.mapped != nil, nil
		}
		verified := e.verified
		decodeOnly := s.decodeOnly
		s.mu.Unlock()

		p, m, err := s.load(id, verified, decodeOnly) // slow: no store-wide lock held
		s.mu.Lock()
		if cur, ok := s.pools[id]; !ok || cur != e {
			// A concurrent Remove won while we were reading (refs were 0, so
			// it was entitled to): the loaded copy is orphaned.
			s.mu.Unlock()
			e.loadMu.Unlock()
			if m != nil {
				_ = m.unmap()
			}
			if err == nil {
				continue // the ID may have been re-put; re-resolve
			}
			return nil, false, false, fmt.Errorf("%w: %q", ErrNotFound, id)
		}
		if err != nil {
			s.mu.Unlock()
			e.loadMu.Unlock()
			return nil, false, false, err
		}
		e.pool = p
		e.mapped = m
		if m != nil {
			e.heapBytes = mappedColumnsBytes(p.N())
		} else {
			e.heapBytes = heapColumnsBytes(p.N())
		}
		e.pairs = p.N()
		e.verified = true
		e.lastUsed = s.now()
		s.loads++
		e.refs++
		s.enforceBudgetLocked()
		s.mu.Unlock()
		e.loadMu.Unlock()
		return p, false, m != nil, nil
	}
}

// load materialises the pool file for id: the zero-copy mmap path where the
// platform and the file's format version allow it, the streaming decode
// otherwise. verified skips the whole-file SHA-256 (the one-time-per-open
// policy — section CRCs are always re-checked).
func (s *Store) load(id string, verified, decodeOnly bool) (*Pool, *mapping, error) {
	path := s.path(id)
	if mmapSupported && !decodeOnly {
		p, m, err, fellBack := s.loadMapped(path, id, verified)
		if !fellBack {
			return p, m, err
		}
	}
	p, err := s.loadDecode(path, id, verified)
	return p, nil, err
}

// loadMapped maps the pool file and serves the scores column straight out
// of the mapping. fellBack reports the file needs the decode path instead
// (v1 layout, whose scores are misaligned); verification failures are
// returned as errors, not fallbacks — a corrupt file must fail loudly, not
// be re-read more forgivingly.
func (s *Store) loadMapped(path, id string, verified bool) (_ *Pool, _ *mapping, err error, fellBack bool) {
	m, err := mapPoolFile(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, nil, fmt.Errorf("poolstore: read pool %q: %w", id, err), false
		}
		// mmap itself failed (exotic filesystem, resource limits): the
		// decode path still works, so degrade instead of failing the load.
		return nil, nil, nil, true
	}
	defer func() {
		if err != nil || fellBack {
			_ = m.unmap()
		}
	}()
	lay, err := parseHeader(m.data, len(m.data))
	if err != nil {
		return nil, nil, fmt.Errorf("poolstore: pool %q: %w", id, err), false
	}
	if !lay.aligned {
		return nil, nil, nil, true // v1 file: scores misaligned, decode it
	}
	if err := verifySections(m.data, lay); err != nil {
		return nil, nil, fmt.Errorf("poolstore: pool %q: %w", id, err), false
	}
	if !verified {
		// First load since open: the content address is the root of trust —
		// recompute it over the mapped bytes so a swapped file can never
		// resolve — and scan the scores for non-finite values once.
		if got := contentID(m.data); got != id {
			return nil, nil, fmt.Errorf("poolstore: pool %q fails content verification: file hashes to %q", id, got), false
		}
		for i, sc := range m.aliasScores(lay) {
			if math.IsNaN(sc) || math.IsInf(sc, 0) {
				return nil, nil, fmt.Errorf("poolstore: pool %q: non-finite score at %d", id, i), false
			}
		}
	}
	preds, err := decodePreds(m.data, lay)
	if err != nil {
		return nil, nil, fmt.Errorf("poolstore: pool %q: %w", id, err), false
	}
	p := &Pool{ID: id, Scores: m.aliasScores(lay), Preds: preds, truth: make([]float64, lay.n)}
	return p, m, nil, false
}

// loadBufSize is the reused read buffer of the streaming decode path: peak
// load memory is one buffer (plus the decoded columns), never a second
// whole-pool copy. Must be a multiple of 8 so score chunks split cleanly.
const loadBufSize = 1 << 20

// loadDecode reads, verifies and decodes the pool file section by section
// through a fixed-size buffer. verified skips the whole-file SHA-256.
func (s *Store) loadDecode(path, id string, verified bool) (*Pool, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("poolstore: read pool %q: %w", id, err)
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("poolstore: read pool %q: %w", id, err)
	}
	var hasher hash.Hash
	var r io.Reader = f
	if !verified {
		hasher = sha256.New()
		r = io.TeeReader(f, hasher)
	}
	// Header: read the v1 prefix, then the v2 pad if the magic says so.
	hdr := make([]byte, codecHeaderSizeV1, codecHeaderSize)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, fmt.Errorf("poolstore: pool %q: short pool file: %w", id, err)
	}
	if string(hdr[:8]) == codecMagic {
		hdr = hdr[:codecHeaderSize]
		if _, err := io.ReadFull(r, hdr[codecHeaderSizeV1:]); err != nil {
			return nil, fmt.Errorf("poolstore: pool %q: short pool file: %w", id, err)
		}
	}
	lay, err := parseHeader(hdr, int(info.Size()))
	if err != nil {
		return nil, fmt.Errorf("poolstore: pool %q: %w", id, err)
	}

	buf := make([]byte, loadBufSize)
	var trailer [4]byte
	readSection := func(size int, consume func(chunk []byte)) (uint32, error) {
		crc := uint32(0)
		for size > 0 {
			chunk := buf
			if size < len(chunk) {
				chunk = chunk[:size]
			}
			if _, err := io.ReadFull(r, chunk); err != nil {
				return 0, fmt.Errorf("short section: %w", err)
			}
			crc = crc32.Update(crc, castagnoli, chunk)
			consume(chunk)
			size -= len(chunk)
		}
		if _, err := io.ReadFull(r, trailer[:]); err != nil {
			return 0, fmt.Errorf("short section CRC: %w", err)
		}
		return crc, nil
	}

	scores := make([]float64, lay.n)
	si := 0
	crcS, err := readSection(8*lay.n, func(chunk []byte) {
		for off := 0; off < len(chunk); off += 8 {
			scores[si] = math.Float64frombits(binary.LittleEndian.Uint64(chunk[off:]))
			si++
		}
	})
	if err != nil {
		return nil, fmt.Errorf("poolstore: pool %q: %w", id, err)
	}
	if crcS != binary.LittleEndian.Uint32(trailer[:]) {
		return nil, fmt.Errorf("poolstore: pool %q: scores section CRC mismatch", id)
	}
	for i, sc := range scores {
		if math.IsNaN(sc) || math.IsInf(sc, 0) {
			return nil, fmt.Errorf("poolstore: pool %q: non-finite score at %d", id, i)
		}
	}

	preds := make([]bool, lay.n)
	pi := 0
	var lastPredsByte byte
	crcP, err := readSection((lay.n+7)/8, func(chunk []byte) {
		for _, b := range chunk {
			for bit := 0; bit < 8 && pi < lay.n; bit++ {
				preds[pi] = b&(1<<bit) != 0
				pi++
			}
			lastPredsByte = b
		}
	})
	if err != nil {
		return nil, fmt.Errorf("poolstore: pool %q: %w", id, err)
	}
	if crcP != binary.LittleEndian.Uint32(trailer[:]) {
		return nil, fmt.Errorf("poolstore: pool %q: preds section CRC mismatch", id)
	}
	if err := checkPadBits(lastPredsByte, lay.n); err != nil {
		return nil, fmt.Errorf("poolstore: pool %q: %w", id, err)
	}
	if hasher != nil {
		if got := hex.EncodeToString(hasher.Sum(nil)); got != id {
			return nil, fmt.Errorf("poolstore: pool %q fails content verification: file hashes to %q", id, got)
		}
	}
	return &Pool{ID: id, Scores: scores, Preds: preds, truth: make([]float64, lay.n)}, nil
}

// Release returns one reference taken by Acquire. Releasing an unknown or
// unreferenced pool is a no-op (the session layer may release on teardown
// paths that never completed their acquire).
func (s *Store) Release(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.pools[id]
	if !ok || e.refs == 0 {
		return
	}
	e.refs--
	e.lastUsed = s.now()
	if e.refs == 0 {
		e.idleSince = s.now()
		// The pool just became evictable: if the store is over budget, this
		// is the moment the LRU sweep can finally act on it.
		s.enforceBudgetLocked()
	}
}

// Refs returns the live reference count of id (0 for unknown pools).
func (s *Store) Refs(id string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.pools[id]; ok {
		return e.refs
	}
	return 0
}

// Remove deletes an unreferenced pool from the store and from disk. It
// returns ErrInUse while sessions reference the pool and ErrNotFound for
// unknown IDs.
func (s *Store) Remove(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.pools[id]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	if e.refs > 0 {
		return fmt.Errorf("%w: %q has %d reference(s)", ErrInUse, id, e.refs)
	}
	if s.dir != "" {
		if err := os.Remove(s.path(id)); err != nil && !errors.Is(err, os.ErrNotExist) {
			return fmt.Errorf("poolstore: remove pool %q: %w", id, err)
		}
	}
	if e.mapped != nil {
		_ = e.mapped.unmap()
		e.mapped = nil
	}
	e.pool = nil
	delete(s.pools, id)
	s.removes++
	return nil
}

// evictLocked drops the entry's resident columns (unmapping if mapped) and
// cached strata, recording the decision. Callers hold s.mu and must have
// checked refs == 0 and pool != nil.
func (s *Store) evictLocked(id string, e *entry, reason string) {
	cost := e.residentCost()
	if e.mapped != nil {
		_ = e.mapped.unmap()
		e.mapped = nil
	}
	e.pool = nil
	e.heapBytes = 0
	e.strata = nil
	e.strataBytes = 0
	s.evicts++
	if reason == "budget" {
		s.budgetEvicts++
	}
	s.evictLog = append(s.evictLog, EvictionRecord{ID: id, Bytes: cost, Reason: reason, Unix: s.now().Unix()})
	if len(s.evictLog) > evictionLogSize {
		s.evictLog = s.evictLog[len(s.evictLog)-evictionLogSize:]
	}
}

// enforceBudgetLocked evicts least-recently-used unreferenced residents
// until resident memory is back under the budget. Callers hold s.mu. A
// memory-only store never evicts (the columns are the only copy), and
// referenced pools are pinned — with every resident referenced the store
// stays over budget until something is released.
func (s *Store) enforceBudgetLocked() {
	if s.memBudget <= 0 || s.dir == "" {
		return
	}
	var resident int64
	type victim struct {
		id string
		e  *entry
	}
	var victims []victim
	for id, e := range s.pools {
		resident += e.residentCost()
		if e.pool != nil && e.refs == 0 {
			victims = append(victims, victim{id, e})
		}
	}
	if resident <= s.memBudget {
		return
	}
	sort.Slice(victims, func(i, k int) bool { return victims[i].e.lastUsed.Before(victims[k].e.lastUsed) })
	for _, v := range victims {
		if resident <= s.memBudget {
			return
		}
		resident -= v.e.residentCost()
		s.evictLocked(v.id, v.e, "budget")
	}
}

// Sweep evicts the resident columns of every unreferenced pool that has
// been idle for at least idleFor, returning how many pools it evicted. The
// durable files stay; the next Acquire reloads them. A memory-only store
// never evicts (the columns are the only copy).
func (s *Store) Sweep(idleFor time.Duration) int {
	if s.dir == "" {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sweeps++
	now := s.now()
	evicted := 0
	for id, e := range s.pools {
		if e.pool != nil && e.refs == 0 && now.Sub(e.idleSince) >= idleFor {
			s.evictLocked(id, e, "idle")
			evicted++
		}
	}
	return evicted
}

// Len returns the number of registered pools.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pools)
}

// Get returns the Info of one pool, or ErrNotFound.
func (s *Store) Get(id string) (Info, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.pools[id]
	if !ok {
		return Info{}, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	return e.info(id), nil
}

// List returns every pool's Info, sorted by ID.
func (s *Store) List() []Info {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Info, 0, len(s.pools))
	for id, e := range s.pools {
		out = append(out, e.info(id))
	}
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	return out
}

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Pools:             len(s.pools),
		MemBudget:         s.memBudget,
		Puts:              s.puts,
		DedupHits:         s.hits,
		Loads:             s.loads,
		Evictions:         s.evicts,
		BudgetEvictions:   s.budgetEvicts,
		Sweeps:            s.sweeps,
		Removes:           s.removes,
		StrataCacheHits:   s.strataHits,
		StrataCacheMisses: s.strataMisses,
		Damaged:           len(s.damaged),
		RecentEvictions:   append([]EvictionRecord(nil), s.evictLog...),
	}
	for _, e := range s.pools {
		if e.pool != nil {
			st.Loaded++
			st.ResidentBytes += e.residentCost()
		}
		if e.mapped != nil {
			st.Mapped++
			st.MmapBytes += int64(len(e.mapped.data))
		}
		st.StrataCached += len(e.strata)
		st.Refs += e.refs
		st.Bytes += e.bytes
	}
	return st
}

// writeFileAtomicSync writes data to path durably: temp file in the same
// directory, fsync, rename into place, fsync the directory. (The WAL has an
// identical helper; duplicating ~30 lines keeps this package dependency-free
// of the journal, which itself depends on the session layer above us.)
func writeFileAtomicSync(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	cleanup := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		return cleanup(err)
	}
	if err := tmp.Chmod(perm); err != nil {
		return cleanup(err)
	}
	if err := tmp.Sync(); err != nil {
		return cleanup(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
