// Package poolstore is a durable, content-addressed, reference-counted
// registry of evaluation pools (the score/prediction columns every session
// samples against).
//
// The serving reality behind it: one candidate-pair pool is evaluated by
// many annotators at once, so the same million-pair columns used to be
// re-uploaded per session, re-copied per session in memory, and serialised
// into every WAL create record and every snapshot. The store inverts that.
// A pool is uploaded once — JSON or the compact binary columnar form (see
// codec.go) — canonically encoded, addressed by the SHA-256 of those bytes,
// and persisted as an immutable fsync'd file named by its hash. Sessions
// then reference the pool by ID: every concurrent session shares one
// read-only in-memory copy under a reference count, WAL create records and
// manager snapshots persist only the hash (O(1) instead of O(N)), and
// replay resolves the hash back through the store. Put returns only after
// the pool file is durable, so a WAL create record can never reference a
// pool that a crash could un-write.
//
// Unreferenced pools are garbage-collected two ways: DELETE (Remove) drops
// an unreferenced pool from disk and memory, and an idle sweep (Sweep)
// evicts the in-memory columns of unreferenced pools while leaving the
// durable file — the next Acquire reloads and re-verifies it.
//
// All methods are safe for concurrent use. The store never mutates a
// loaded pool's columns, and callers must not either: the whole point is
// that every session reads the same backing arrays.
package poolstore

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// Errors returned by the store.
var (
	// ErrNotFound is returned for IDs the store does not hold.
	ErrNotFound = errors.New("poolstore: no such pool")
	// ErrInUse is returned by Remove while sessions still reference the pool.
	ErrInUse = errors.New("poolstore: pool is referenced by live sessions")
)

// Pool is one immutable, shared evaluation pool. Scores and Preds are the
// content-addressed columns; every session referencing the pool aliases the
// same backing arrays and must treat them as read-only.
type Pool struct {
	// ID is the pool's content address (hex SHA-256 of its encoding).
	ID string
	// Scores and Preds are the shared columns, parallel slices.
	Scores []float64
	Preds  []bool

	// truth is a shared all-zero oracle-probability column: the serving path
	// never reads ground truth, but the pool plumbing requires the column to
	// exist, and allocating it once per pool instead of once per session is
	// part of the single-copy contract.
	truth []float64
}

// N returns the number of pairs.
func (p *Pool) N() int { return len(p.Scores) }

// Truth returns the shared all-zero oracle-probability column.
func (p *Pool) Truth() []float64 { return p.truth }

// entry is the store's record of one pool. pool is nil while the columns
// are not resident (on-disk only, loaded on demand).
type entry struct {
	pool      *Pool
	pairs     int
	bytes     int64
	refs      int
	idleSince time.Time // refs last hit zero (or the entry appeared unreferenced)
	// loadMu serialises cold loads of this entry only: the disk read, hash
	// verification and decode of a large pool must not run under the
	// store-wide mutex, or every unrelated Acquire/Release/Stats would stall
	// behind it.
	loadMu sync.Mutex
}

// info snapshots the entry's Info; callers hold s.mu.
func (e *entry) info(id string) Info {
	return Info{ID: id, Pairs: e.pairs, Bytes: e.bytes, Refs: e.refs, Loaded: e.pool != nil}
}

// Stats is a snapshot of the store's counters, exposed by the server's
// /v1/stats endpoint.
type Stats struct {
	// Pools counts registered pools; Loaded those with resident columns.
	Pools  int `json:"pools"`
	Loaded int `json:"loaded"`
	// Refs is the total number of live session references across all pools.
	Refs int `json:"refs"`
	// Bytes is the total encoded size of all registered pools;
	// ResidentBytes the size of those currently loaded in memory.
	Bytes         int64 `json:"bytes"`
	ResidentBytes int64 `json:"residentBytes"`
	// Puts counts uploads that stored a new pool; DedupHits uploads that
	// landed on an already-stored one.
	Puts      uint64 `json:"puts"`
	DedupHits uint64 `json:"dedupHits"`
	// Loads counts on-demand loads from disk; Evictions idle-sweep drops of
	// resident columns; Sweeps the sweep passes that produced them;
	// Removes deleted pools.
	Loads     uint64 `json:"loads"`
	Evictions uint64 `json:"evictions"`
	Sweeps    uint64 `json:"sweeps"`
	Removes   uint64 `json:"removes"`
	// Damaged counts pool files Open quarantined (unreadable headers); see
	// Store.Damaged for the names.
	Damaged int `json:"damaged,omitempty"`
}

// Info describes one pool for the list/introspection endpoints.
type Info struct {
	ID     string `json:"id"`
	Pairs  int    `json:"pairs"`
	Bytes  int64  `json:"bytes"`
	Refs   int    `json:"refs"`
	Loaded bool   `json:"loaded"`
}

// Store is the pool registry. A Store with a directory persists every pool
// as an immutable file named <id>.pool and survives restarts; a Store
// without one (dir "") is memory-only — fine for tests and for servers
// that do not journal, but a WAL-backed server should always persist pools,
// or replay could not resolve the create records it finds.
type Store struct {
	dir string

	mu      sync.Mutex
	pools   map[string]*entry
	damaged []string         // pool files Open could not index (quarantined)
	now     func() time.Time // injected by tests
	puts    uint64
	hits    uint64
	loads   uint64
	evicts  uint64
	sweeps  uint64
	removes uint64
}

const poolFileSuffix = ".pool"

// Open returns a store over dir, indexing (without loading) every pool file
// already present. An empty dir means a memory-only store.
func Open(dir string) (*Store, error) {
	s := &Store{dir: dir, pools: make(map[string]*entry), now: time.Now}
	if dir == "" {
		return s, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("poolstore: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("poolstore: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || filepath.Ext(name) != poolFileSuffix {
			continue
		}
		id := name[:len(name)-len(poolFileSuffix)]
		if !ValidID(id) {
			continue // not a pool file (e.g. an aborted temp file)
		}
		pairs, size, err := readPoolHeader(filepath.Join(dir, name))
		if err != nil {
			// Quarantine, don't refuse: a corrupt file that nothing durable
			// references must not keep the service down. The file is left in
			// place (never silently deleted) and reported via Damaged; any
			// session that actually references the ID fails to Acquire it,
			// which is where the deterministic fail-stop belongs.
			s.damaged = append(s.damaged, name)
			continue
		}
		s.pools[id] = &entry{pairs: pairs, bytes: size, idleSince: s.now()}
	}
	sort.Strings(s.damaged)
	return s, nil
}

// Damaged lists the pool files Open could not index (unreadable or corrupt
// headers). They are left on disk untouched; operators should inspect or
// remove them. A damaged pool that a session still references fails that
// session's Acquire with a not-found error.
func (s *Store) Damaged() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.damaged...)
}

// Dir returns the store's directory ("" for a memory-only store).
func (s *Store) Dir() string { return s.dir }

// Durable reports whether the store persists pools to disk. The session
// manager interns inline pools only into a durable store: interning into a
// memory-only one would write snapshots (and journals) whose pool
// references die with the process.
func (s *Store) Durable() bool { return s.dir != "" }

// readPoolHeader reads just enough of a pool file to index it: the verified
// header (pair count) and the file size.
func readPoolHeader(path string) (pairs int, size int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, err
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return 0, 0, err
	}
	hdr := make([]byte, codecHeaderSize)
	if _, err := io.ReadFull(f, hdr); err != nil {
		return 0, 0, fmt.Errorf("short pool file: %w", err)
	}
	pairs, err = decodeHeader(hdr)
	if err != nil {
		return 0, 0, err
	}
	return pairs, info.Size(), nil
}

// path returns the pool file path for id.
func (s *Store) path(id string) string { return filepath.Join(s.dir, id+poolFileSuffix) }

// Put canonically encodes the pool columns, stores them under their content
// address, and returns the pool's Info (Info.ID is the content address).
// Re-putting an existing pool is a dedup hit (created == false) and writes
// nothing. With a directory, Put returns only once the pool file and its
// directory entry are fsync'd — the durability a WAL create record
// referencing the ID relies on.
func (s *Store) Put(scores []float64, preds []bool) (info Info, created bool, err error) {
	encoded, err := Encode(scores, preds)
	if err != nil {
		return Info{}, false, err
	}
	// Copy before registering: the registered columns become the shared
	// read-only copy every session aliases, and the caller keeps ownership
	// of (and may reuse) its own slices — the same contract the inline
	// session path has always had via oasis.NewPool's copy.
	scores = append([]float64(nil), scores...)
	preds = append([]bool(nil), preds...)
	return s.putEncoded(encoded, scores, preds, false)
}

// PutEncoded stores a pool already in canonical binary form (the upload
// endpoint's zero-parse path for binary bodies). The encoding is fully
// verified before anything is written.
func (s *Store) PutEncoded(encoded []byte) (info Info, created bool, err error) {
	scores, preds, err := Decode(encoded)
	if err != nil {
		return Info{}, false, err
	}
	return s.putEncoded(encoded, scores, preds, false)
}

// putEncoded registers the verified (encoded, columns) pool, returning its
// Info snapshot as of registration. With acquire, the registration (or
// dedup hit) takes one reference atomically, so no concurrent Remove can
// slip between storing a pool and referencing it. The slow disk write runs
// outside the store lock: Acquire/Release/Stats on other pools never stall
// behind a large upload's fsyncs.
func (s *Store) putEncoded(encoded []byte, scores []float64, preds []bool, acquire bool) (Info, bool, error) {
	id := contentID(encoded)
	// registerHit re-lands on an already-registered pool; both critical
	// sections below share it.
	registerHit := func() (Info, bool) {
		e, ok := s.pools[id]
		if !ok {
			return Info{}, false
		}
		// Already stored — identical content, by construction of the address.
		// Re-populating the columns costs nothing and saves a disk reload.
		if e.pool == nil {
			e.pool = &Pool{ID: id, Scores: scores, Preds: preds, truth: make([]float64, len(scores))}
		}
		if acquire {
			e.refs++
		}
		s.hits++
		return e.info(id), true
	}
	s.mu.Lock()
	if info, ok := registerHit(); ok {
		s.mu.Unlock()
		return info, false, nil
	}
	s.mu.Unlock()
	if s.dir != "" {
		// Outside the lock: the write is atomic (temp + rename) and the
		// content is a pure function of the ID, so two racing Puts of the
		// same pool write identical files; the loser re-lands as a dedup hit
		// below.
		if err := writeFileAtomicSync(s.path(id), encoded, 0o644); err != nil {
			return Info{}, false, fmt.Errorf("poolstore: store pool: %w", err)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if info, ok := registerHit(); ok {
		return info, false, nil
	}
	ent := &entry{
		pool:      &Pool{ID: id, Scores: scores, Preds: preds, truth: make([]float64, len(scores))},
		pairs:     len(scores),
		bytes:     int64(len(encoded)),
		idleSince: s.now(),
	}
	if acquire {
		ent.refs = 1
	}
	s.pools[id] = ent
	s.puts++
	return ent.info(id), true, nil
}

// Intern stores the pool columns (a dedup hit if already stored) and takes
// one reference atomically, returning the ID and a release for that
// reference. The session manager uses it when rewriting inline configs to
// the PoolID form: the temporary reference keeps a concurrent Remove from
// deleting the freshly interned pool before the session acquires it.
func (s *Store) Intern(scores []float64, preds []bool) (id string, release func(), err error) {
	encoded, err := Encode(scores, preds)
	if err != nil {
		return "", nil, err
	}
	// Same defensive copy as Put: the caller's slices never become the
	// shared columns.
	scores = append([]float64(nil), scores...)
	preds = append([]bool(nil), preds...)
	info, _, err := s.putEncoded(encoded, scores, preds, true)
	if err != nil {
		return "", nil, err
	}
	var once sync.Once
	return info.ID, func() { once.Do(func() { s.Release(info.ID) }) }, nil
}

// Acquire resolves id to its shared pool and takes one reference, loading
// and re-verifying the pool file if the columns are not resident. Every
// Acquire must be balanced by a Release. The returned pool is shared:
// callers must not mutate its columns.
//
// A cold load — disk read, hash verification, decode — runs under the
// entry's own lock, not the store-wide one, so loading one large pool never
// stalls operations on other pools; racing Acquires of the same pool still
// load it exactly once.
func (s *Store) Acquire(id string) (*Pool, error) {
	for {
		s.mu.Lock()
		e, ok := s.pools[id]
		if !ok {
			s.mu.Unlock()
			return nil, fmt.Errorf("%w: %q", ErrNotFound, id)
		}
		if e.pool != nil {
			e.refs++
			p := e.pool
			s.mu.Unlock()
			return p, nil
		}
		s.mu.Unlock()

		e.loadMu.Lock()
		// Re-check under the entry lock: a predecessor loader may have
		// populated the columns, or the entry may have been removed (and
		// possibly re-put) while we waited.
		s.mu.Lock()
		if cur, ok := s.pools[id]; !ok || cur != e {
			// Removed (or replaced) meanwhile: start over against the map.
			s.mu.Unlock()
			e.loadMu.Unlock()
			continue
		}
		if e.pool != nil {
			e.refs++
			p := e.pool
			s.mu.Unlock()
			e.loadMu.Unlock()
			return p, nil
		}
		s.mu.Unlock()

		p, err := s.load(id) // slow: no store-wide lock held
		s.mu.Lock()
		if cur, ok := s.pools[id]; !ok || cur != e {
			// A concurrent Remove won while we were reading (refs were 0, so
			// it was entitled to): the loaded copy is orphaned.
			s.mu.Unlock()
			e.loadMu.Unlock()
			if err == nil {
				continue // the ID may have been re-put; re-resolve
			}
			return nil, fmt.Errorf("%w: %q", ErrNotFound, id)
		}
		if err != nil {
			s.mu.Unlock()
			e.loadMu.Unlock()
			return nil, err
		}
		e.pool = p
		e.pairs = p.N()
		s.loads++
		e.refs++
		s.mu.Unlock()
		e.loadMu.Unlock()
		return p, nil
	}
}

// load reads, hash-verifies and decodes the pool file for id.
func (s *Store) load(id string) (*Pool, error) {
	path := s.path(id)
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("poolstore: read pool %q: %w", id, err)
	}
	// The content address is the root of trust: recompute it over the full
	// file before decoding, so a corrupt or swapped file can never resolve.
	if got := contentID(data); got != id {
		return nil, fmt.Errorf("poolstore: pool %q fails content verification: file hashes to %q", id, got)
	}
	scores, preds, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("poolstore: pool %q: %w", id, err)
	}
	return &Pool{ID: id, Scores: scores, Preds: preds, truth: make([]float64, len(scores))}, nil
}

// Release returns one reference taken by Acquire. Releasing an unknown or
// unreferenced pool is a no-op (the session layer may release on teardown
// paths that never completed their acquire).
func (s *Store) Release(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.pools[id]
	if !ok || e.refs == 0 {
		return
	}
	e.refs--
	if e.refs == 0 {
		e.idleSince = s.now()
	}
}

// Refs returns the live reference count of id (0 for unknown pools).
func (s *Store) Refs(id string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.pools[id]; ok {
		return e.refs
	}
	return 0
}

// Remove deletes an unreferenced pool from the store and from disk. It
// returns ErrInUse while sessions reference the pool and ErrNotFound for
// unknown IDs.
func (s *Store) Remove(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.pools[id]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	if e.refs > 0 {
		return fmt.Errorf("%w: %q has %d reference(s)", ErrInUse, id, e.refs)
	}
	if s.dir != "" {
		if err := os.Remove(s.path(id)); err != nil && !errors.Is(err, os.ErrNotExist) {
			return fmt.Errorf("poolstore: remove pool %q: %w", id, err)
		}
	}
	delete(s.pools, id)
	s.removes++
	return nil
}

// Sweep evicts the resident columns of every unreferenced pool that has
// been idle for at least idleFor, returning how many pools it evicted. The
// durable files stay; the next Acquire reloads them. A memory-only store
// never evicts (the columns are the only copy).
func (s *Store) Sweep(idleFor time.Duration) int {
	if s.dir == "" {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sweeps++
	now := s.now()
	evicted := 0
	for _, e := range s.pools {
		if e.pool != nil && e.refs == 0 && now.Sub(e.idleSince) >= idleFor {
			e.pool = nil
			evicted++
			s.evicts++
		}
	}
	return evicted
}

// Len returns the number of registered pools.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pools)
}

// Get returns the Info of one pool, or ErrNotFound.
func (s *Store) Get(id string) (Info, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.pools[id]
	if !ok {
		return Info{}, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	return e.info(id), nil
}

// List returns every pool's Info, sorted by ID.
func (s *Store) List() []Info {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Info, 0, len(s.pools))
	for id, e := range s.pools {
		out = append(out, e.info(id))
	}
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	return out
}

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Pools:     len(s.pools),
		Puts:      s.puts,
		DedupHits: s.hits,
		Loads:     s.loads,
		Evictions: s.evicts,
		Sweeps:    s.sweeps,
		Removes:   s.removes,
		Damaged:   len(s.damaged),
	}
	for _, e := range s.pools {
		if e.pool != nil {
			st.Loaded++
			st.ResidentBytes += e.bytes
		}
		st.Refs += e.refs
		st.Bytes += e.bytes
	}
	return st
}

// writeFileAtomicSync writes data to path durably: temp file in the same
// directory, fsync, rename into place, fsync the directory. (The WAL has an
// identical helper; duplicating ~30 lines keeps this package dependency-free
// of the journal, which itself depends on the session layer above us.)
func writeFileAtomicSync(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	cleanup := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		return cleanup(err)
	}
	if err := tmp.Chmod(perm); err != nil {
		return cleanup(err)
	}
	if err := tmp.Sync(); err != nil {
		return cleanup(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
