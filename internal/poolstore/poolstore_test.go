package poolstore

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// testColumns builds a deterministic pool of n pairs.
func testColumns(n int, seed uint64) (scores []float64, preds []bool) {
	scores = make([]float64, n)
	preds = make([]bool, n)
	x := seed*2862933555777941757 + 3037000493
	for i := range scores {
		x = x*2862933555777941757 + 3037000493
		scores[i] = float64(x>>11) / (1 << 53)
		preds[i] = scores[i] >= 0.5
	}
	return scores, preds
}

func TestCodecRoundTrip(t *testing.T) {
	for _, n := range []int{1, 7, 8, 9, 1000} {
		scores, preds := testColumns(n, uint64(n))
		encoded, err := Encode(scores, preds)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if len(encoded) != encodedSize(n) {
			t.Fatalf("n=%d: encoded %d bytes, want %d", n, len(encoded), encodedSize(n))
		}
		gotScores, gotPreds, err := Decode(encoded)
		if err != nil {
			t.Fatalf("n=%d: decode: %v", n, err)
		}
		for i := range scores {
			if gotScores[i] != scores[i] || gotPreds[i] != preds[i] {
				t.Fatalf("n=%d: column mismatch at %d", n, i)
			}
		}
		// Canonical: re-encoding the decoded columns is byte-identical, so
		// the content address is stable across upload forms.
		re, err := Encode(gotScores, gotPreds)
		if err != nil {
			t.Fatal(err)
		}
		if contentID(re) != contentID(encoded) {
			t.Fatalf("n=%d: re-encoding changed the content address", n)
		}
	}
}

func TestCodecRejectsDamage(t *testing.T) {
	scores, preds := testColumns(100, 3)
	encoded, err := Encode(scores, preds)
	if err != nil {
		t.Fatal(err)
	}
	mut := func(mutate func([]byte)) []byte {
		c := append([]byte(nil), encoded...)
		mutate(c)
		return c
	}
	cases := map[string][]byte{
		"empty":          {},
		"short header":   encoded[:10],
		"bad magic":      mut(func(c []byte) { c[0] ^= 0xff }),
		"header bitflip": mut(func(c []byte) { c[12] ^= 1 }), // count byte: header CRC
		"score bitflip":  mut(func(c []byte) { c[codecHeaderSize+3] ^= 1 }),
		"pred bitflip":   mut(func(c []byte) { c[len(c)-5] ^= 0x01 }),
		"truncated":      encoded[:len(encoded)-1],
		"trailing junk":  append(append([]byte(nil), encoded...), 0),
	}
	for name, data := range cases {
		if _, _, err := Decode(data); err == nil {
			t.Errorf("%s: decode accepted corrupt encoding", name)
		}
	}
	// Non-finite scores must be rejected at both ends.
	if _, err := Encode([]float64{math.NaN()}, []bool{true}); err == nil {
		t.Error("Encode accepted a NaN score")
	}
	nan := mut(func(c []byte) {
		binary.LittleEndian.PutUint64(c[codecHeaderSize:], math.Float64bits(math.NaN()))
		crc := crc32.Checksum(c[codecHeaderSize:codecHeaderSize+8*100], castagnoli)
		binary.LittleEndian.PutUint32(c[codecHeaderSize+8*100:], crc)
	})
	if _, _, err := Decode(nan); err == nil {
		t.Error("Decode accepted a CRC-valid NaN score")
	}
}

func TestCodecRejectsNonCanonicalPadding(t *testing.T) {
	scores, preds := testColumns(9, 5) // 9 pairs: 7 pad bits in the last preds byte
	encoded, err := Encode(scores, preds)
	if err != nil {
		t.Fatal(err)
	}
	c := append([]byte(nil), encoded...)
	predsOff := codecHeaderSize + 8*9 + 4
	c[predsOff+1] |= 0x80 // set a pad bit...
	crc := crc32.Checksum(c[predsOff:predsOff+2], castagnoli)
	binary.LittleEndian.PutUint32(c[predsOff+2:], crc) // ...and fix the CRC
	if _, _, err := Decode(c); err == nil || !strings.Contains(err.Error(), "padding") {
		t.Fatalf("decode of padded encoding: err = %v", err)
	}
}

func TestPutAcquireShareOneCopy(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	scores, preds := testColumns(500, 1)
	info, created, err := s.Put(scores, preds)
	if err != nil || !created {
		t.Fatalf("put: created=%v err=%v", created, err)
	}
	id := info.ID
	if info.Pairs != 500 || !info.Loaded {
		t.Fatalf("put info = %+v", info)
	}
	if !ValidID(id) {
		t.Fatalf("put returned malformed id %q", id)
	}
	// Same content re-put: dedup hit, same address.
	info2, created2, err := s.Put(scores, preds)
	if err != nil || created2 || info2.ID != id {
		t.Fatalf("re-put: id=%q created=%v err=%v", info2.ID, created2, err)
	}
	p1, err := s.Acquire(id)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := s.Acquire(id)
	if err != nil {
		t.Fatal(err)
	}
	// The single-copy contract: both references alias one backing array.
	if &p1.Scores[0] != &p2.Scores[0] || &p1.Preds[0] != &p2.Preds[0] {
		t.Fatal("two acquires returned distinct column copies")
	}
	if got := s.Refs(id); got != 2 {
		t.Fatalf("refs = %d, want 2", got)
	}
	st := s.Stats()
	if st.Pools != 1 || st.Loaded != 1 || st.Refs != 2 || st.DedupHits != 1 {
		t.Fatalf("stats = %+v", st)
	}
	s.Release(id)
	s.Release(id)
	if got := s.Refs(id); got != 0 {
		t.Fatalf("refs after release = %d, want 0", got)
	}
	// Over-release is a no-op, not a negative count.
	s.Release(id)
	if got := s.Refs(id); got != 0 {
		t.Fatalf("refs after over-release = %d", got)
	}
}

func TestReloadAcrossReopenAndEviction(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	scores, preds := testColumns(333, 9)
	putInfo, _, err := s.Put(scores, preds)
	if err != nil {
		t.Fatal(err)
	}
	id := putInfo.ID

	// A fresh store over the same directory indexes the pool without loading.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	info, err := s2.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if info.Pairs != 333 || info.Loaded {
		t.Fatalf("indexed info = %+v, want 333 pairs, not loaded", info)
	}
	p, err := s2.Acquire(id)
	if err != nil {
		t.Fatal(err)
	}
	for i := range scores {
		if p.Scores[i] != scores[i] || p.Preds[i] != preds[i] {
			t.Fatalf("reloaded column mismatch at %d", i)
		}
	}
	s2.Release(id)

	// Idle sweep evicts the columns; the next acquire reloads them.
	if n := s2.Sweep(0); n != 1 {
		t.Fatalf("sweep evicted %d, want 1", n)
	}
	if info, _ := s2.Get(id); info.Loaded {
		t.Fatal("pool still loaded after sweep")
	}
	if _, err := s2.Acquire(id); err != nil {
		t.Fatalf("acquire after eviction: %v", err)
	}
	// A referenced pool is never swept.
	if n := s2.Sweep(0); n != 0 {
		t.Fatalf("sweep evicted a referenced pool")
	}
	if st := s2.Stats(); st.Loads != 2 || st.Evictions != 1 {
		t.Fatalf("stats = %+v, want 2 loads, 1 eviction", st)
	}
}

func TestSweepHonoursIdleAge(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(1000, 0)
	s.now = func() time.Time { return now }
	scores, preds := testColumns(10, 2)
	putInfo, _, err := s.Put(scores, preds)
	if err != nil {
		t.Fatal(err)
	}
	id := putInfo.ID
	now = now.Add(time.Minute)
	if n := s.Sweep(time.Hour); n != 0 {
		t.Fatal("sweep evicted a pool idle for less than the threshold")
	}
	now = now.Add(2 * time.Hour)
	if n := s.Sweep(time.Hour); n != 1 {
		t.Fatal("sweep kept a pool idle past the threshold")
	}
	// Acquire+release resets the idle clock.
	if _, err := s.Acquire(id); err != nil {
		t.Fatal(err)
	}
	s.Release(id)
	if n := s.Sweep(time.Hour); n != 0 {
		t.Fatal("sweep ignored the refreshed idle clock")
	}
}

func TestRemoveSemantics(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	scores, preds := testColumns(50, 7)
	putInfo, _, err := s.Put(scores, preds)
	if err != nil {
		t.Fatal(err)
	}
	id := putInfo.ID
	if _, err := s.Acquire(id); err != nil {
		t.Fatal(err)
	}
	if err := s.Remove(id); !errors.Is(err, ErrInUse) {
		t.Fatalf("remove of referenced pool: err = %v, want ErrInUse", err)
	}
	s.Release(id)
	if err := s.Remove(id); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Acquire(id); !errors.Is(err, ErrNotFound) {
		t.Fatalf("acquire after remove: err = %v, want ErrNotFound", err)
	}
	if err := s.Remove(id); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double remove: err = %v, want ErrNotFound", err)
	}
	if entries, _ := filepath.Glob(filepath.Join(dir, "*.pool")); len(entries) != 0 {
		t.Fatalf("pool file survived remove: %v", entries)
	}
}

func TestMemoryOnlyStore(t *testing.T) {
	s, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	scores, preds := testColumns(20, 4)
	putInfo, _, err := s.Put(scores, preds)
	if err != nil {
		t.Fatal(err)
	}
	id := putInfo.ID
	// A memory-only store never evicts: the columns are the only copy.
	if n := s.Sweep(0); n != 0 {
		t.Fatal("memory-only store evicted its only copy")
	}
	if _, err := s.Acquire(id); err != nil {
		t.Fatal(err)
	}
}

func TestAcquireDetectsTamperedFile(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	scores, preds := testColumns(64, 11)
	putInfo, _, err := s.Put(scores, preds)
	if err != nil {
		t.Fatal(err)
	}
	id := putInfo.ID
	path := filepath.Join(dir, id+poolFileSuffix)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Truncation: caught on reload.
	if err := os.WriteFile(path, data[:len(data)-10], 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Acquire(id); err == nil {
		t.Fatal("acquire loaded a truncated pool file")
	}

	// Hash mismatch: a structurally valid pool stored under the wrong
	// address (every CRC passes; only the content hash catches it).
	otherScores, otherPreds := testColumns(64, 12)
	otherEncoded, err := Encode(otherScores, otherPreds)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, otherEncoded, 0o644); err != nil {
		t.Fatal(err)
	}
	s3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s3.Acquire(id); err == nil || !strings.Contains(err.Error(), "content verification") {
		t.Fatalf("acquire of hash-mismatched pool: err = %v", err)
	}

	// Deleted file: deterministic error, not a panic. (The original store s
	// still holds the columns in memory and would legitimately serve them;
	// s3 never managed a load, so it must hit the missing file.)
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	if _, err := s3.Acquire(id); err == nil {
		t.Fatal("acquire resolved a deleted pool file")
	}
}

// TestOpenQuarantinesDamagedFiles: a pool file with an unreadable header
// must not keep the store (and with it the whole server) from opening —
// it is skipped, reported via Damaged, and left on disk; healthy pools
// stay fully usable.
func TestOpenQuarantinesDamagedFiles(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	scores, preds := testColumns(40, 21)
	info, _, err := s.Put(scores, preds)
	if err != nil {
		t.Fatal(err)
	}
	// A second pool whose header we smash.
	otherScores, otherPreds := testColumns(40, 22)
	broken, _, err := s.Put(otherScores, otherPreds)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, broken.ID+poolFileSuffix)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[3] ^= 0xff // magic byte
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("open with a damaged pool file: %v", err)
	}
	if got := s2.Damaged(); len(got) != 1 || got[0] != broken.ID+poolFileSuffix {
		t.Fatalf("damaged = %v", got)
	}
	if st := s2.Stats(); st.Damaged != 1 || st.Pools != 1 {
		t.Fatalf("stats = %+v, want 1 damaged, 1 healthy", st)
	}
	// The healthy pool still resolves; the damaged one is simply not found.
	if _, err := s2.Acquire(info.ID); err != nil {
		t.Fatalf("healthy pool unusable: %v", err)
	}
	if _, err := s2.Acquire(broken.ID); !errors.Is(err, ErrNotFound) {
		t.Fatalf("damaged pool: err = %v, want ErrNotFound", err)
	}
	// The file was quarantined, not deleted.
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("quarantined file was removed: %v", err)
	}
}

// TestPutDoesNotAliasCallerSlices: the registered shared columns must be
// the store's own copy — a caller mutating its buffers after Put/Intern
// cannot corrupt what sessions sample against.
func TestPutDoesNotAliasCallerSlices(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	scores, preds := testColumns(30, 23)
	want0 := scores[0]
	info, _, err := s.Put(scores, preds)
	if err != nil {
		t.Fatal(err)
	}
	scores[0] = -999 // caller reuses its buffer
	preds[0] = !preds[0]
	p, err := s.Acquire(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if p.Scores[0] != want0 {
		t.Fatalf("Put aliased the caller's slice: shared score[0] = %v", p.Scores[0])
	}
	id2, release, err := s.Intern(scores, preds) // distinct content now
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	scores[1] = -777
	p2, err := s.Acquire(id2)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Scores[1] == -777 {
		t.Fatal("Intern aliased the caller's slice")
	}
}

func TestBinaryAndJSONUploadsShareOneAddress(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	scores, preds := testColumns(77, 13)
	encoded, err := Encode(scores, preds)
	if err != nil {
		t.Fatal(err)
	}
	idBin, created, err := s.PutEncoded(encoded)
	if err != nil || !created {
		t.Fatalf("binary put: created=%v err=%v", created, err)
	}
	infoCols, created, err := s.Put(scores, preds)
	if err != nil || created {
		t.Fatalf("column put after binary put: created=%v err=%v", created, err)
	}
	if idBin.ID != infoCols.ID {
		t.Fatalf("binary and column uploads disagree: %q vs %q", idBin.ID, infoCols.ID)
	}
}

func TestConcurrentAcquireReleaseSingleLoad(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	scores, preds := testColumns(2048, 17)
	putInfo, _, err := s.Put(scores, preds)
	if err != nil {
		t.Fatal(err)
	}
	id := putInfo.ID
	// Reopen so the first acquires race on a cold entry.
	s, err = Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				p, err := s.Acquire(id)
				if err != nil {
					t.Error(err)
					return
				}
				if p.N() != 2048 {
					t.Errorf("pool has %d pairs", p.N())
					return
				}
				s.Release(id)
			}
		}()
	}
	wg.Wait()
	st := s.Stats()
	if st.Loads != 1 {
		t.Fatalf("racing acquires loaded the pool %d times, want 1", st.Loads)
	}
	if st.Refs != 0 {
		t.Fatalf("refs = %d after balanced acquire/release", st.Refs)
	}
}
