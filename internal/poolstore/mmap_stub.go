//go:build !(linux && (amd64 || arm64))

// Portable fallback for platforms without the zero-copy mapping (different
// OS, big-endian, or no mmap): every cold load takes the streaming decode
// path in store.go. The CI cross-compile matrix keeps this file building.

package poolstore

import "errors"

// mmapSupported reports whether this build can serve pools straight off a
// read-only memory mapping.
const mmapSupported = false

// mapping is never constructed on this platform; the type (and its data
// field, always nil here) exists so store.go compiles unchanged.
type mapping struct {
	data []byte
}

func mapPoolFile(string) (*mapping, error) {
	return nil, errors.New("poolstore: mmap not supported on this platform")
}

func (m *mapping) unmap() error { return nil }

func (m *mapping) aliasScores(poolLayout) []float64 {
	panic("poolstore: aliasScores without mmap support")
}
