package poolstore

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash/crc32"
	"math"
	"regexp"
)

// Binary columnar pool encoding. The format is canonical — one pool has
// exactly one encoding — which is what makes the SHA-256 of the encoded
// bytes a content address: uploading the same pool twice, in either JSON or
// binary form, always lands on the same ID.
//
// Version 2 (current, written by Encode):
//
//	magic   [8]byte  "OASISPL2"
//	count   uint64   little-endian number of pairs (> 0)
//	crcHdr  uint32   CRC-32C (Castagnoli) of the 16 bytes above
//	pad     [4]byte  zero — brings the header to 24 bytes so the scores
//	        section starts 8-byte aligned; required for the zero-copy read
//	        path, which aliases the scores of a page-aligned mmap directly
//	        as []float64 (a misaligned float64 slice would be undefined
//	        behaviour, and trips checkptr under the race detector)
//	scores  count × 8 bytes, math.Float64bits little-endian
//	crcS    uint32   CRC-32C of the scores section
//	preds   ⌈count/8⌉ bytes, pair i at bit i%8 (LSB-first) of byte i/8;
//	        trailing pad bits of the last byte are zero
//	crcP    uint32   CRC-32C of the preds section
//
// Version 1 ("OASISPL1") is identical except the header stops after crcHdr
// (20 bytes, scores misaligned). Decode and the store still read v1 files —
// the content address is the hash of the bytes as stored, so a v1 file keeps
// its v1 ID forever — but v1 pools always take the decode path, never the
// mmap alias.
//
// Every section carries its own CRC so a flipped bit is pinned to a section
// (and detected without hashing the whole file), and the total length is a
// pure function of count, so a decoder sizes its allocations from bytes it
// has already verified — a hostile length can never force an allocation
// larger than the payload actually carried.
//
// Compared to the JSON upload form (~18 bytes/pair), the binary form is
// 8.125 bytes/pair plus 32 bytes of framing: a 1M-pair pool is ~8.1 MiB.

const (
	codecMagic   = "OASISPL2"
	codecMagicV1 = "OASISPL1"
	// codecCRCEnd is where the header CRC's coverage ends (magic + count),
	// identical in both versions.
	codecCRCEnd = 16
	// codecHeaderSize is the v2 header: magic + count + header CRC + 4 pad
	// bytes, sized so the scores section starts at an 8-byte boundary.
	codecHeaderSize   = codecCRCEnd + 4 + 4
	codecHeaderSizeV1 = codecCRCEnd + 4
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// idPattern is the shape of a pool ID: the lowercase hex SHA-256 of the
// pool's canonical encoding.
var idPattern = regexp.MustCompile(`^[0-9a-f]{64}$`)

// ValidID reports whether id has the shape of a pool content address.
func ValidID(id string) bool { return idPattern.MatchString(id) }

// encodedSize returns the canonical (v2) encoding's total length for n pairs.
func encodedSize(n int) int { return sectionsSize(n) + codecHeaderSize }

// sectionsSize is the post-header length: scores + crcS + preds + crcP.
func sectionsSize(n int) int { return 8*n + 4 + (n+7)/8 + 4 }

// poolLayout locates the sections of one verified encoding. scoresOff is
// also the header size (20 for v1, 24 for v2).
type poolLayout struct {
	n         int
	scoresOff int
	aligned   bool // scores start 8-byte aligned (v2): mmap-aliasable
}

func (l poolLayout) scoresEnd() int { return l.scoresOff + 8*l.n }
func (l poolLayout) predsOff() int  { return l.scoresEnd() + 4 }
func (l poolLayout) predsEnd() int  { return l.predsOff() + (l.n+7)/8 }
func (l poolLayout) total() int     { return l.predsEnd() + 4 }

// parseHeader verifies the header prefix of an encoding (magic, header CRC,
// count bounds, v2 pad bytes) against the total length and returns the
// layout. data may be just the header or the whole encoding; limit is the
// full encoding's length (for the count bound and exact-size check).
func parseHeader(data []byte, limit int) (poolLayout, error) {
	if len(data) < codecHeaderSizeV1 {
		return poolLayout{}, fmt.Errorf("poolstore: pool encoding is %d bytes, shorter than the %d-byte header", len(data), codecHeaderSizeV1)
	}
	var lay poolLayout
	switch string(data[:8]) {
	case codecMagic:
		lay.scoresOff = codecHeaderSize
		lay.aligned = true
	case codecMagicV1:
		lay.scoresOff = codecHeaderSizeV1
	default:
		return poolLayout{}, fmt.Errorf("poolstore: bad magic %q", data[:8])
	}
	if len(data) < lay.scoresOff {
		return poolLayout{}, fmt.Errorf("poolstore: pool encoding is %d bytes, shorter than the %d-byte header", len(data), lay.scoresOff)
	}
	if got, want := crc32.Checksum(data[:codecCRCEnd], castagnoli), binary.LittleEndian.Uint32(data[codecCRCEnd:codecCRCEnd+4]); got != want {
		return poolLayout{}, fmt.Errorf("poolstore: header CRC mismatch")
	}
	if lay.aligned && (data[20] != 0 || data[21] != 0 || data[22] != 0 || data[23] != 0) {
		return poolLayout{}, fmt.Errorf("poolstore: non-zero header padding")
	}
	count := binary.LittleEndian.Uint64(data[8:codecCRCEnd])
	// The count is CRC-verified, but the file could still be truncated or
	// padded: the total length must match exactly. Bound count first so the
	// size arithmetic cannot overflow int on any platform.
	if count == 0 || count > uint64(limit)/8 {
		return poolLayout{}, fmt.Errorf("poolstore: pool declares %d pairs, impossible for a %d-byte encoding", count, limit)
	}
	lay.n = int(count)
	if limit != lay.total() {
		return poolLayout{}, fmt.Errorf("poolstore: pool of %d pairs must encode to %d bytes, got %d", lay.n, lay.total(), limit)
	}
	return lay, nil
}

// verifySections checks the scores and preds CRCs of a full encoding whose
// header parseHeader already verified.
func verifySections(data []byte, lay poolLayout) error {
	if got, want := crc32.Checksum(data[lay.scoresOff:lay.scoresEnd()], castagnoli), binary.LittleEndian.Uint32(data[lay.scoresEnd():]); got != want {
		return fmt.Errorf("poolstore: scores section CRC mismatch")
	}
	if got, want := crc32.Checksum(data[lay.predsOff():lay.predsEnd()], castagnoli), binary.LittleEndian.Uint32(data[lay.predsEnd():]); got != want {
		return fmt.Errorf("poolstore: preds section CRC mismatch")
	}
	return nil
}

// checkPadBits rejects set pad bits in the last preds byte: they would make
// the encoding non-canonical, so the same pool could carry two different
// content addresses.
func checkPadBits(lastPredsByte byte, n int) error {
	if n%8 != 0 && lastPredsByte>>(n%8) != 0 {
		return fmt.Errorf("poolstore: non-zero padding bits in the preds section")
	}
	return nil
}

// validatePool checks the (scores, preds) columns describe a well-formed
// pool: equal non-zero lengths and finite scores. Mirrors pool.Validate so a
// stored pool can never fail basic validation at session-create time.
func validatePool(scores []float64, preds []bool) error {
	if len(scores) == 0 {
		return fmt.Errorf("poolstore: empty pool")
	}
	if len(scores) != len(preds) {
		return fmt.Errorf("poolstore: %d scores but %d predictions", len(scores), len(preds))
	}
	for i, s := range scores {
		if math.IsNaN(s) || math.IsInf(s, 0) {
			return fmt.Errorf("poolstore: non-finite score at %d", i)
		}
	}
	return nil
}

// Encode serialises the pool columns into the canonical binary form (v2).
func Encode(scores []float64, preds []bool) ([]byte, error) {
	if err := validatePool(scores, preds); err != nil {
		return nil, err
	}
	n := len(scores)
	buf := make([]byte, 0, encodedSize(n))
	buf = append(buf, codecMagic...)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(n))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, castagnoli))
	buf = append(buf, 0, 0, 0, 0) // alignment pad, see the format comment

	scoresOff := len(buf)
	for _, s := range scores {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(s))
	}
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf[scoresOff:], castagnoli))

	predsOff := len(buf)
	buf = append(buf, make([]byte, (n+7)/8)...)
	for i, p := range preds {
		if p {
			buf[predsOff+i/8] |= 1 << (i % 8)
		}
	}
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf[predsOff:], castagnoli))
	return buf, nil
}

// decodeScores extracts and validates the scores column of a CRC-verified
// encoding into a fresh slice.
func decodeScores(data []byte, lay poolLayout) ([]float64, error) {
	scores := make([]float64, lay.n)
	raw := data[lay.scoresOff:lay.scoresEnd()]
	for i := range scores {
		s := math.Float64frombits(binary.LittleEndian.Uint64(raw[8*i:]))
		if math.IsNaN(s) || math.IsInf(s, 0) {
			return nil, fmt.Errorf("poolstore: non-finite score at %d", i)
		}
		scores[i] = s
	}
	return scores, nil
}

// decodePreds extracts the preds bitset of a CRC-verified encoding into a
// fresh bool slice, rejecting non-canonical pad bits.
func decodePreds(data []byte, lay poolLayout) ([]bool, error) {
	raw := data[lay.predsOff():lay.predsEnd()]
	if err := checkPadBits(raw[len(raw)-1], lay.n); err != nil {
		return nil, err
	}
	preds := make([]bool, lay.n)
	for i := range preds {
		preds[i] = raw[i/8]&(1<<(i%8)) != 0
	}
	return preds, nil
}

// Decode parses and fully verifies a canonical binary pool (either format
// version): magic, exact length, all three CRCs, zero pad bits/bytes, finite
// scores. It allocates fresh column slices, so the caller may retain them
// past the input buffer.
func Decode(data []byte) (scores []float64, preds []bool, err error) {
	lay, err := parseHeader(data, len(data))
	if err != nil {
		return nil, nil, err
	}
	if err := verifySections(data, lay); err != nil {
		return nil, nil, err
	}
	if scores, err = decodeScores(data, lay); err != nil {
		return nil, nil, err
	}
	if preds, err = decodePreds(data, lay); err != nil {
		return nil, nil, err
	}
	return scores, preds, nil
}

// contentID returns the content address of an encoded pool: the lowercase
// hex SHA-256 of its canonical bytes.
func contentID(encoded []byte) string {
	sum := sha256.Sum256(encoded)
	return hex.EncodeToString(sum[:])
}

// decodeHeader reads just the verified header of an encoded pool (either
// version), returning its pair count. size is the full file size, used for
// the exact-length check. Used to index on-disk pools without loading their
// columns.
func decodeHeader(data []byte, size int64) (pairs int, err error) {
	if size > math.MaxInt32*8 {
		return 0, fmt.Errorf("poolstore: pool file of %d bytes is too large", size)
	}
	lay, err := parseHeader(data, int(size))
	if err != nil {
		return 0, err
	}
	return lay.n, nil
}
