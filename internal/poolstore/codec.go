package poolstore

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash/crc32"
	"math"
	"regexp"
)

// Binary columnar pool encoding, version 1. The format is canonical — one
// pool has exactly one encoding — which is what makes the SHA-256 of the
// encoded bytes a content address: uploading the same pool twice, in either
// JSON or binary form, always lands on the same ID.
//
//	magic   [8]byte  "OASISPL1"
//	count   uint64   little-endian number of pairs (> 0)
//	crcHdr  uint32   CRC-32C (Castagnoli) of the 16 header bytes
//	scores  count × 8 bytes, math.Float64bits little-endian
//	crcS    uint32   CRC-32C of the scores section
//	preds   ⌈count/8⌉ bytes, pair i at bit i%8 (LSB-first) of byte i/8;
//	        trailing pad bits of the last byte are zero
//	crcP    uint32   CRC-32C of the preds section
//
// Every section carries its own CRC so a flipped bit is pinned to a section
// (and detected without hashing the whole file), and the total length is a
// pure function of count, so a decoder sizes its allocations from bytes it
// has already verified — a hostile length can never force an allocation
// larger than the payload actually carried.
//
// Compared to the JSON upload form (~18 bytes/pair), the binary form is
// 8.125 bytes/pair plus 28 bytes of framing: a 1M-pair pool is ~8.1 MiB.

const (
	codecMagic      = "OASISPL1"
	codecHeaderSize = len(codecMagic) + 8 + 4 // magic + count + header CRC
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// idPattern is the shape of a pool ID: the lowercase hex SHA-256 of the
// pool's canonical encoding.
var idPattern = regexp.MustCompile(`^[0-9a-f]{64}$`)

// ValidID reports whether id has the shape of a pool content address.
func ValidID(id string) bool { return idPattern.MatchString(id) }

// encodedSize returns the canonical encoding's total length for n pairs.
func encodedSize(n int) int {
	return codecHeaderSize + 8*n + 4 + (n+7)/8 + 4
}

// validatePool checks the (scores, preds) columns describe a well-formed
// pool: equal non-zero lengths and finite scores. Mirrors pool.Validate so a
// stored pool can never fail basic validation at session-create time.
func validatePool(scores []float64, preds []bool) error {
	if len(scores) == 0 {
		return fmt.Errorf("poolstore: empty pool")
	}
	if len(scores) != len(preds) {
		return fmt.Errorf("poolstore: %d scores but %d predictions", len(scores), len(preds))
	}
	for i, s := range scores {
		if math.IsNaN(s) || math.IsInf(s, 0) {
			return fmt.Errorf("poolstore: non-finite score at %d", i)
		}
	}
	return nil
}

// Encode serialises the pool columns into the canonical binary form.
func Encode(scores []float64, preds []bool) ([]byte, error) {
	if err := validatePool(scores, preds); err != nil {
		return nil, err
	}
	n := len(scores)
	buf := make([]byte, 0, encodedSize(n))
	buf = append(buf, codecMagic...)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(n))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, castagnoli))

	scoresOff := len(buf)
	for _, s := range scores {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(s))
	}
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf[scoresOff:], castagnoli))

	predsOff := len(buf)
	buf = append(buf, make([]byte, (n+7)/8)...)
	for i, p := range preds {
		if p {
			buf[predsOff+i/8] |= 1 << (i % 8)
		}
	}
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf[predsOff:], castagnoli))
	return buf, nil
}

// Decode parses and fully verifies a canonical binary pool: magic, exact
// length, all three CRCs, zero pad bits, finite scores. It allocates fresh
// column slices, so the caller may retain them past the input buffer.
func Decode(data []byte) (scores []float64, preds []bool, err error) {
	if len(data) < codecHeaderSize {
		return nil, nil, fmt.Errorf("poolstore: pool encoding is %d bytes, shorter than the %d-byte header", len(data), codecHeaderSize)
	}
	if string(data[:len(codecMagic)]) != codecMagic {
		return nil, nil, fmt.Errorf("poolstore: bad magic %q", data[:len(codecMagic)])
	}
	hdrEnd := len(codecMagic) + 8
	if got, want := crc32.Checksum(data[:hdrEnd], castagnoli), binary.LittleEndian.Uint32(data[hdrEnd:hdrEnd+4]); got != want {
		return nil, nil, fmt.Errorf("poolstore: header CRC mismatch")
	}
	count := binary.LittleEndian.Uint64(data[len(codecMagic):hdrEnd])
	// The count is CRC-verified, but the file could still be truncated or
	// padded: the total length must match exactly. Bound count first so
	// encodedSize cannot overflow int on any platform.
	if count == 0 || count > uint64(len(data))/8 {
		return nil, nil, fmt.Errorf("poolstore: pool declares %d pairs, impossible for a %d-byte encoding", count, len(data))
	}
	n := int(count)
	if len(data) != encodedSize(n) {
		return nil, nil, fmt.Errorf("poolstore: pool of %d pairs must encode to %d bytes, got %d", n, encodedSize(n), len(data))
	}

	scoresOff := codecHeaderSize
	scoresEnd := scoresOff + 8*n
	if got, want := crc32.Checksum(data[scoresOff:scoresEnd], castagnoli), binary.LittleEndian.Uint32(data[scoresEnd:scoresEnd+4]); got != want {
		return nil, nil, fmt.Errorf("poolstore: scores section CRC mismatch")
	}
	predsOff := scoresEnd + 4
	predsEnd := predsOff + (n+7)/8
	if got, want := crc32.Checksum(data[predsOff:predsEnd], castagnoli), binary.LittleEndian.Uint32(data[predsEnd:predsEnd+4]); got != want {
		return nil, nil, fmt.Errorf("poolstore: preds section CRC mismatch")
	}

	scores = make([]float64, n)
	for i := range scores {
		s := math.Float64frombits(binary.LittleEndian.Uint64(data[scoresOff+8*i:]))
		if math.IsNaN(s) || math.IsInf(s, 0) {
			return nil, nil, fmt.Errorf("poolstore: non-finite score at %d", i)
		}
		scores[i] = s
	}
	preds = make([]bool, n)
	for i := range preds {
		preds[i] = data[predsOff+i/8]&(1<<(i%8)) != 0
	}
	// Reject set pad bits: they would make the encoding non-canonical, so
	// the same pool could carry two different content addresses.
	if n%8 != 0 && data[predsEnd-1]>>(n%8) != 0 {
		return nil, nil, fmt.Errorf("poolstore: non-zero padding bits in the preds section")
	}
	return scores, preds, nil
}

// contentID returns the content address of an encoded pool: the lowercase
// hex SHA-256 of its canonical bytes.
func contentID(encoded []byte) string {
	sum := sha256.Sum256(encoded)
	return hex.EncodeToString(sum[:])
}

// decodeHeader reads just the verified header of an encoded pool, returning
// its pair count. Used to index on-disk pools without loading their columns.
func decodeHeader(data []byte) (pairs int, err error) {
	if len(data) < codecHeaderSize {
		return 0, fmt.Errorf("poolstore: pool file is %d bytes, shorter than the %d-byte header", len(data), codecHeaderSize)
	}
	if string(data[:len(codecMagic)]) != codecMagic {
		return 0, fmt.Errorf("poolstore: bad magic %q", data[:len(codecMagic)])
	}
	hdrEnd := len(codecMagic) + 8
	if got, want := crc32.Checksum(data[:hdrEnd], castagnoli), binary.LittleEndian.Uint32(data[hdrEnd:hdrEnd+4]); got != want {
		return 0, fmt.Errorf("poolstore: header CRC mismatch")
	}
	count := binary.LittleEndian.Uint64(data[len(codecMagic):hdrEnd])
	if count == 0 || count > math.MaxInt32 {
		return 0, fmt.Errorf("poolstore: pool declares %d pairs", count)
	}
	return int(count), nil
}
