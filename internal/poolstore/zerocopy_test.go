package poolstore

import (
	"encoding/binary"
	"hash/crc32"
	"math"
	"math/rand"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// putAndEvict stores a pool and evicts its resident columns, so the next
// Acquire exercises a cold load from disk.
func putAndEvict(t *testing.T, s *Store, scores []float64, preds []bool) string {
	t.Helper()
	info, _, err := s.Put(scores, preds)
	if err != nil {
		t.Fatal(err)
	}
	if n := s.Sweep(0); n != 1 {
		t.Fatalf("evicted %d pools, want 1", n)
	}
	return info.ID
}

// TestMmapAndDecodePathsByteIdentical is the cross-check the zero-copy path
// rests on: the mmap-aliased columns and the streaming-decoded columns of
// one pool file must be byte-identical, element for element.
func TestMmapAndDecodePathsByteIdentical(t *testing.T) {
	scores, preds := testColumns(4097, 7) // odd size: exercises preds pad bits
	dir := t.TempDir()

	load := func(decodeOnly bool) *Pool {
		s, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		s.SetDecodeOnly(decodeOnly)
		info, _, err := s.Put(scores, preds)
		if err != nil {
			t.Fatal(err)
		}
		if n := s.Sweep(0); n != 1 {
			t.Fatalf("evicted %d pools, want 1", n)
		}
		p, err := s.Acquire(info.ID)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { s.Release(info.ID) })
		in, err := s.Get(info.ID)
		if err != nil {
			t.Fatal(err)
		}
		if in.Mapped == decodeOnly && mmapSupported {
			t.Fatalf("decodeOnly=%v but Mapped=%v", decodeOnly, in.Mapped)
		}
		return p
	}

	mapped, decoded := load(false), load(true)
	if mapped.N() != decoded.N() {
		t.Fatalf("size mismatch: %d vs %d", mapped.N(), decoded.N())
	}
	for i := range scores {
		if mapped.Scores[i] != decoded.Scores[i] || mapped.Scores[i] != scores[i] {
			t.Fatalf("score mismatch at %d: mapped %v, decoded %v, want %v", i, mapped.Scores[i], decoded.Scores[i], scores[i])
		}
		if mapped.Preds[i] != decoded.Preds[i] || mapped.Preds[i] != preds[i] {
			t.Fatalf("pred mismatch at %d", i)
		}
	}
}

// encodeV1 builds the legacy OASISPL1 encoding (20-byte header, misaligned
// scores) that pre-PR7 stores wrote: the read-compat and fallback tests feed
// it to the current store.
func encodeV1(t *testing.T, scores []float64, preds []bool) []byte {
	t.Helper()
	n := len(scores)
	buf := make([]byte, 0, codecHeaderSizeV1+sectionsSize(n))
	buf = append(buf, codecMagicV1...)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(n))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, castagnoli))
	scoresOff := len(buf)
	for _, s := range scores {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(s))
	}
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf[scoresOff:], castagnoli))
	predsOff := len(buf)
	buf = append(buf, make([]byte, (n+7)/8)...)
	for i, p := range preds {
		if p {
			buf[predsOff+i/8] |= 1 << (i % 8)
		}
	}
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf[predsOff:], castagnoli))
	return buf
}

// TestV1FilesStillLoad pins the read-compat contract: a pool file written in
// the v1 format keeps its v1 content address and still loads — through the
// decode path, never the mmap alias (its scores section is misaligned).
func TestV1FilesStillLoad(t *testing.T) {
	scores, preds := testColumns(513, 3)
	encoded := encodeV1(t, scores, preds)
	id := contentID(encoded)
	dir := t.TempDir()
	if err := os.WriteFile(dir+"/"+id+poolFileSuffix, encoded, 0o644); err != nil {
		t.Fatal(err)
	}

	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Len(); got != 1 {
		t.Fatalf("indexed %d pools, want 1 (v1 file not recognised?)", got)
	}
	p, err := s.Acquire(id)
	if err != nil {
		t.Fatalf("acquire v1 pool: %v", err)
	}
	defer s.Release(id)
	for i := range scores {
		if p.Scores[i] != scores[i] || p.Preds[i] != preds[i] {
			t.Fatalf("v1 column mismatch at %d", i)
		}
	}
	info, err := s.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if info.Mapped {
		t.Fatal("v1 pool must take the decode path, not the mmap alias")
	}
}

// TestVerifyOncePerOpen pins the verification policy: the SHA-256 content
// check runs on the first load after a store opens; a warm reacquire after
// eviction re-checks only the section CRCs. Observable because a tampered
// file with recomputed CRCs passes the warm path (CRCs consistent) but
// fails the cold one (hash differs).
func TestVerifyOncePerOpen(t *testing.T) {
	scores, preds := testColumns(64, 11)
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	id := putAndEvict(t, s, scores, preds)

	// First load: full verification.
	if _, err := s.Acquire(id); err != nil {
		t.Fatal(err)
	}
	s.Release(id)
	if n := s.Sweep(0); n != 1 {
		t.Fatalf("evicted %d, want 1", n)
	}

	// Tamper one score and recompute the scores CRC, keeping the file
	// internally consistent but no longer matching its content address.
	path := s.path(id)
	c, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lay, err := parseHeader(c, len(c))
	if err != nil {
		t.Fatal(err)
	}
	c[lay.scoresOff] ^= 0x01
	binary.LittleEndian.PutUint32(c[lay.scoresEnd():], crc32.Checksum(c[lay.scoresOff:lay.scoresEnd()], castagnoli))
	if err := os.WriteFile(path, c, 0o644); err != nil {
		t.Fatal(err)
	}

	// Warm reacquire in the same store lifetime: CRC-only, so it succeeds.
	if _, err := s.Acquire(id); err != nil {
		t.Fatalf("warm reacquire should skip the hash, got: %v", err)
	}
	s.Release(id)

	// A fresh open re-runs full verification and must catch the swap.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Acquire(id); err == nil || !strings.Contains(err.Error(), "content verification") {
		t.Fatalf("cold acquire of tampered file: got %v, want content verification failure", err)
	}
}

// TestMemBudgetEvictsLRU drives the byte-budget sweep: crossing the budget
// evicts the least-recently-used unreferenced pools first, referenced pools
// are pinned, and the decisions land in Stats.
func TestMemBudgetEvictsLRU(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Deterministic LRU clock.
	tick := time.Unix(1000, 0)
	s.now = func() time.Time { tick = tick.Add(time.Second); return tick }

	var ids []string
	for i := 0; i < 3; i++ {
		scores, preds := testColumns(1000, uint64(i+1))
		info, _, err := s.Put(scores, preds)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, info.ID)
	}
	// Touch pool 0 last, making pool 1 the LRU; hold a reference on pool 2.
	if _, err := s.Acquire(ids[0]); err != nil {
		t.Fatal(err)
	}
	s.Release(ids[0])
	if _, err := s.Acquire(ids[2]); err != nil {
		t.Fatal(err)
	}

	per := heapColumnsBytes(1000)
	s.SetMemBudget(2 * per) // room for two resident pools
	st := s.Stats()
	if st.BudgetEvictions != 1 || st.Loaded != 2 {
		t.Fatalf("budget evictions %d loaded %d, want 1 and 2", st.BudgetEvictions, st.Loaded)
	}
	if got, err := s.Get(ids[1]); err != nil || got.Loaded {
		t.Fatalf("pool 1 (LRU, unreferenced) should have been evicted: %+v, %v", got, err)
	}
	if got, _ := s.Get(ids[2]); !got.Loaded {
		t.Fatal("referenced pool must never be evicted")
	}
	if len(st.RecentEvictions) != 1 || st.RecentEvictions[0].ID != ids[1] || st.RecentEvictions[0].Reason != "budget" {
		t.Fatalf("eviction log: %+v", st.RecentEvictions)
	}

	// Squeeze further: pool 0 goes too; pool 2 is pinned by its reference,
	// so the store stays (legitimately) over budget.
	s.SetMemBudget(per / 2)
	st = s.Stats()
	if st.BudgetEvictions != 2 || st.Loaded != 1 {
		t.Fatalf("after squeeze: budget evictions %d loaded %d, want 2 and 1", st.BudgetEvictions, st.Loaded)
	}
	// Releasing the last reference makes pool 2 evictable; the release
	// itself triggers enforcement.
	s.Release(ids[2])
	if st = s.Stats(); st.Loaded != 0 {
		t.Fatalf("release should have let the budget sweep evict the last resident, loaded=%d", st.Loaded)
	}
}

// TestStrataCache exercises the per-pool stratification memo: one compute
// for racing callers, hits afterwards, dropped with the columns on eviction.
func TestStrataCache(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	scores, preds := testColumns(500, 5)
	info, _, err := s.Put(scores, preds)
	if err != nil {
		t.Fatal(err)
	}
	id := info.ID
	if _, err := s.Acquire(id); err != nil {
		t.Fatal(err)
	}
	key := StrataKey{K: 30, Calibrated: true}

	var computes atomic.Int32
	compute := func() (any, int64, error) {
		computes.Add(1)
		return "stratification", 64, nil
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := s.Strata(id, key, compute)
			if err != nil || v != "stratification" {
				t.Errorf("strata: %v, %v", v, err)
			}
		}()
	}
	wg.Wait()
	if got := computes.Load(); got != 1 {
		t.Fatalf("computed %d times for 8 racing callers, want 1", got)
	}
	st := s.Stats()
	if st.StrataCacheMisses != 1 || st.StrataCacheHits != 7 || st.StrataCached != 1 {
		t.Fatalf("strata counters: misses=%d hits=%d cached=%d", st.StrataCacheMisses, st.StrataCacheHits, st.StrataCached)
	}

	// A different key computes separately.
	if _, err := s.Strata(id, StrataKey{K: 10}, compute); err != nil {
		t.Fatal(err)
	}
	if got := computes.Load(); got != 2 {
		t.Fatalf("distinct key should recompute, computes=%d", got)
	}

	// Eviction drops the cached strata with the columns.
	s.Release(id)
	if n := s.Sweep(0); n != 1 {
		t.Fatalf("evicted %d, want 1", n)
	}
	if st = s.Stats(); st.StrataCached != 0 {
		t.Fatalf("eviction should drop cached strata, cached=%d", st.StrataCached)
	}
}

// TestConcurrentAcquireReleaseUnderBudget is the race-detector stress for
// evict-while-acquiring: many goroutines acquire, read and release pools
// while idle sweeps and a punishing memory budget evict behind them. The
// refcount must pin columns (and mappings) — a session must never observe
// unmapped or wrong data — and no load may be torn by a concurrent evict.
func TestConcurrentAcquireReleaseUnderBudget(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	const pools, pairs = 4, 2048
	ids := make([]string, pools)
	first := make([]float64, pools)
	for i := range ids {
		scores, preds := testColumns(pairs, uint64(100+i))
		info, _, err := s.Put(scores, preds)
		if err != nil {
			t.Fatal(err)
		}
		ids[i], first[i] = info.ID, scores[0]
	}
	// Budget fits roughly one pool: nearly every release makes someone
	// evictable, and most acquires are cold loads racing the sweeps.
	s.SetMemBudget(heapColumnsBytes(pairs) + heapColumnsBytes(pairs)/2)

	var workers sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 8; g++ {
		workers.Add(1)
		go func(seed int64) {
			defer workers.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < 300; i++ {
				k := r.Intn(pools)
				p, err := s.Acquire(ids[k])
				if err != nil {
					t.Errorf("acquire: %v", err)
					return
				}
				// Touch the columns across their whole range: if an evict
				// unmapped them while we hold the reference, this faults.
				if p.Scores[0] != first[k] || len(p.Scores) != pairs || len(p.Preds) != pairs {
					t.Errorf("pool %d: wrong columns", k)
				}
				_ = p.Scores[pairs-1]
				if i%7 == 0 {
					if _, err := s.Strata(ids[k], StrataKey{K: 5}, func() (any, int64, error) {
						return k, 8, nil
					}); err != nil {
						t.Errorf("strata: %v", err)
					}
				}
				s.Release(ids[k])
			}
		}(int64(g))
	}
	sweeperDone := make(chan struct{})
	go func() {
		defer close(sweeperDone)
		for {
			select {
			case <-stop:
				return
			default:
				s.Sweep(0)
				s.SetMemBudget(heapColumnsBytes(pairs))
			}
		}
	}()
	workers.Wait()
	close(stop)
	<-sweeperDone

	st := s.Stats()
	if st.Refs != 0 {
		t.Fatalf("leaked %d references", st.Refs)
	}
	if st.Evictions == 0 {
		t.Fatal("stress never evicted anything; budget not exercised")
	}
}
