package poolstore

import (
	"os"
	"testing"
)

// benchPairs matches the 1M-pair pool of BenchmarkSessionCreate, so the two
// benchmarks decompose the same workload: this one isolates the store's
// cold-load cost (read + verify + materialise columns), mmap vs streaming
// decode.
const benchPairs = 1 << 20

// BenchmarkPoolAcquire measures a cold pool load per iteration (the pool is
// evicted between acquires). The first iteration pays the one-time SHA-256;
// steady state is the warm-reacquire path the serving tier sees: section
// CRCs plus (mmap) aliasing or (decode) a streamed column rebuild.
func BenchmarkPoolAcquire(b *testing.B) {
	for _, mode := range []struct {
		name       string
		decodeOnly bool
	}{{"mmap", false}, {"decode", true}} {
		b.Run(mode.name, func(b *testing.B) {
			if !mode.decodeOnly && !mmapSupported {
				b.Skip("mmap unsupported on this platform")
			}
			s, err := Open(b.TempDir())
			if err != nil {
				b.Fatal(err)
			}
			s.SetDecodeOnly(mode.decodeOnly)
			scores, preds := testColumns(benchPairs, 42)
			info, _, err := s.Put(scores, preds)
			if err != nil {
				b.Fatal(err)
			}
			s.Sweep(0)
			b.SetBytes(int64(encodedSize(benchPairs)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p, err := s.Acquire(info.ID)
				if err != nil {
					b.Fatal(err)
				}
				if p.N() != benchPairs {
					b.Fatal("wrong pool")
				}
				s.Release(info.ID)
				b.StopTimer()
				s.Sweep(0) // evict outside the timer: measure the load, not the drop
				b.StartTimer()
			}
		})
	}
}

// TestHundredMillionPairPoolSmoke proves a 100M-pair pool is practical on
// one node through the zero-copy path: store it once, evict, reacquire off
// the mmap and spot-check the columns. It needs ~2.5 GiB of disk and RAM,
// so it is double-gated: skipped under -short and unless OASIS_HUGE_SMOKE
// is set.
//
//	OASIS_HUGE_SMOKE=1 go test -run HundredMillion -timeout 0 ./internal/poolstore
func TestHundredMillionPairPoolSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("skipped in -short mode")
	}
	if os.Getenv("OASIS_HUGE_SMOKE") == "" {
		t.Skip("set OASIS_HUGE_SMOKE=1 to run (needs ~2.5 GiB disk and RAM)")
	}
	const n = 100_000_000
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	scores, preds := testColumns(n, 1)
	info, _, err := s.Put(scores, preds)
	if err != nil {
		t.Fatal(err)
	}
	if s.Sweep(0) != 1 {
		t.Fatal("evict failed")
	}
	p, err := s.Acquire(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Release(info.ID)
	if p.N() != n {
		t.Fatalf("pool has %d pairs, want %d", p.N(), n)
	}
	for _, i := range []int{0, 1, n / 2, n - 2, n - 1} {
		if p.Scores[i] != scores[i] || p.Preds[i] != preds[i] {
			t.Fatalf("column mismatch at %d", i)
		}
	}
	if mmapSupported {
		st := s.Stats()
		if st.Mapped != 1 || st.MmapBytes == 0 {
			t.Fatalf("expected the 100M pool to be mapped: %+v", st)
		}
	}
}
