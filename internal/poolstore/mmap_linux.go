//go:build linux && (amd64 || arm64)

// Zero-copy pool mapping. linux/{amd64,arm64} are little-endian and allow
// unaligned loads, and the v2 encoding places the scores section at an
// 8-byte-aligned offset of the page-aligned mapping, so the scores column
// can be aliased directly as []float64 without copying or byte-swapping.
// Other platforms (and v1 files, whose scores are misaligned) take the
// streaming decode fallback in mmap_stub.go/store.go.

package poolstore

import (
	"fmt"
	"os"
	"syscall"
	"unsafe"
)

// mmapSupported reports whether this build can serve pools straight off a
// read-only memory mapping.
const mmapSupported = true

// mapping is one read-only mmap of an immutable pool file. data stays valid
// until unmap; the store's refcount pins the mapping while any session
// aliases its columns.
type mapping struct {
	data []byte
}

// mapPoolFile maps the pool file at path read-only, returning the mapping
// over its full contents.
func mapPoolFile(path string) (*mapping, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := info.Size()
	if size <= 0 || size > int64(int(^uint(0)>>1)) {
		return nil, fmt.Errorf("poolstore: cannot map %d-byte pool file", size)
	}
	// MAP_SHARED with PROT_READ: residency is governed by the page cache, so
	// an idle mapped pool costs address space, not wired RAM, and the kernel
	// reclaims cold pages under pressure without the store doing anything.
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("poolstore: mmap: %w", err)
	}
	return &mapping{data: data}, nil
}

// unmap releases the mapping. The caller must guarantee no live references
// to the mapped bytes remain (the store only unmaps entries with refs == 0,
// under the store lock).
func (m *mapping) unmap() error {
	data := m.data
	m.data = nil
	if data == nil {
		return nil
	}
	return syscall.Munmap(data)
}

// aliasScores reinterprets the scores section of the mapped encoding as a
// []float64 without copying. The layout must be aligned (v2: section offset
// a multiple of 8 within the page-aligned mapping) — parseHeader guarantees
// it before the store ever calls this.
func (m *mapping) aliasScores(lay poolLayout) []float64 {
	raw := m.data[lay.scoresOff:lay.scoresEnd()]
	return unsafe.Slice((*float64)(unsafe.Pointer(&raw[0])), lay.n)
}
