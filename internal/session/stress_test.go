package session

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"oasis"
)

// stressClock is a thread-safe fake clock the stress test advances to force
// lease expiries while workers are mid-flight.
type stressClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *stressClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *stressClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

// TestShardedManagerStress hammers an 8-shard manager from many goroutines —
// create/propose/commit/delete on per-worker sessions, all workers together
// on one shared budgeted session, list/len readers, and a clock goroutine
// forcing lease expiries — under -race, with the invariants checked
// throughout and at the end:
//
//   - no lost labels: every Committed result is counted, and the session's
//     LabelsCommitted must equal the count (per worker session before its
//     delete, and for the shared session at the end);
//   - budgets monotone and bounded: the shared session's LabelsCommitted
//     never decreases between polls and never exceeds its budget;
//   - Len consistent: Len() always equals the ListShard sum, and ends at
//     exactly the sessions never deleted.
func TestShardedManagerStress(t *testing.T) {
	scores, preds, truth := testPool(900, 41)
	clock := &stressClock{now: time.Unix(1000, 0)}
	m := NewManager(ManagerOptions{Shards: 8, Now: clock.Now, DefaultLeaseTTL: 50 * time.Millisecond})
	if m.Shards() != 8 {
		t.Fatalf("manager has %d shards, want 8", m.Shards())
	}

	const (
		workers    = 8
		ownPer     = 6  // sessions each worker creates, drives and deletes
		ownRounds  = 8  // propose/commit rounds per own session
		sharedSpin = 60 // shared-session rounds per worker
		budget     = 500
	)
	shared, err := m.Create(Config{
		ID: "shared", Scores: scores, Preds: preds, Calibrated: true,
		Options: oasis.Options{Strata: 12, Seed: 5},
		Budget:  budget, LeaseTTL: time.Hour, // shared leases never expire: every proposal is committed
	})
	if err != nil {
		t.Fatal(err)
	}

	var sharedCommitted atomic.Int64
	stop := make(chan struct{})
	var aux sync.WaitGroup

	// Budget monotonicity + Len consistency monitor.
	aux.Add(1)
	go func() {
		defer aux.Done()
		last := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			st := shared.Status()
			if st.LabelsCommitted < last {
				t.Errorf("shared LabelsCommitted went backwards: %d -> %d", last, st.LabelsCommitted)
				return
			}
			if st.LabelsCommitted > budget {
				t.Errorf("shared LabelsCommitted %d exceeds budget %d", st.LabelsCommitted, budget)
				return
			}
			last = st.LabelsCommitted
			total := 0
			for shard := 0; shard < m.Shards(); shard++ {
				total += len(m.ListShard(shard))
			}
			if n := m.Len(); n != total {
				// Len and the shard lists are read shard by shard, so a
				// create/delete can land between reads; re-check once settled
				// is impossible mid-stress — instead require they agree within
				// the churn bound (workers hold at most workers sessions of
				// slack between the two scans).
				if diff := n - total; diff < -workers || diff > workers {
					t.Errorf("Len()=%d vs ListShard sum %d, apart by more than the churn bound", n, total)
					return
				}
			}
		}
	}()

	// Expiry pressure: advance the clock past the default lease TTL so
	// per-worker sessions' dangling proposals expire mid-run.
	aux.Add(1)
	go func() {
		defer aux.Done()
		for {
			select {
			case <-stop:
				return
			case <-time.After(2 * time.Millisecond):
				clock.Advance(60 * time.Millisecond)
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Own sessions: full lifecycle with expiry pressure in between.
			for i := 0; i < ownPer; i++ {
				id := fmt.Sprintf("own-%d-%d", w, i)
				s, err := m.Create(Config{
					ID: id, Scores: scores, Preds: preds, Calibrated: true,
					Options: oasis.Options{Strata: 6, Seed: uint64(w*100 + i + 1)},
				})
				if err != nil {
					t.Error(err)
					return
				}
				committed := 0
				for round := 0; round < ownRounds; round++ {
					props, err := s.Propose(4)
					if err != nil {
						t.Error(err)
						return
					}
					for _, pr := range props {
						err := s.Commit(pr.Pair, truth[pr.Pair])
						switch {
						case err == nil:
							committed++
						case errors.Is(err, ErrNotProposed):
							// The clock goroutine expired the lease first:
							// the pair went back to the pool, not lost.
						default:
							t.Error(err)
							return
						}
					}
					if round == ownRounds/2 {
						// Leave a batch dangling for the expiry goroutine.
						if _, err := s.Propose(3); err != nil {
							t.Error(err)
							return
						}
					}
				}
				if got := s.Status().LabelsCommitted; got != committed {
					t.Errorf("session %s: status reports %d labels, worker committed %d", id, got, committed)
					return
				}
				if err := m.Delete(id); err != nil {
					t.Error(err)
					return
				}
				if _, err := m.Get(id); !errors.Is(err, ErrNotFound) {
					t.Errorf("deleted session %s still reachable (err=%v)", id, err)
					return
				}
			}
			// Shared session: all workers race propose/commit on one sampler.
			for spin := 0; spin < sharedSpin; spin++ {
				props, err := shared.Propose(5)
				if errors.Is(err, ErrBudgetExhausted) {
					return
				}
				if err != nil {
					t.Error(err)
					return
				}
				pairs := make([]int, len(props))
				labels := make([]bool, len(props))
				for i, pr := range props {
					pairs[i] = pr.Pair
					labels[i] = truth[pr.Pair]
				}
				results, err := shared.CommitBatch(pairs, labels)
				if err != nil {
					t.Error(err)
					return
				}
				for i, r := range results {
					switch r {
					case Committed:
						sharedCommitted.Add(1)
					case Duplicate, Expired:
						t.Errorf("fresh proposal %d came back %v on the shared session", pairs[i], r)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	aux.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// No lost labels on the shared session: every Committed acknowledgement
	// is visible in the final status, exactly once.
	if got, want := shared.Status().LabelsCommitted, int(sharedCommitted.Load()); got != want {
		t.Fatalf("shared session reports %d labels, workers were acknowledged %d", got, want)
	}
	// Every own session was deleted; only the shared one remains, and the
	// shard views agree with the global ones.
	if n := m.Len(); n != 1 {
		t.Fatalf("%d sessions left after the stress, want 1", n)
	}
	if l := m.List(); len(l) != 1 || l[0].ID != "shared" {
		t.Fatalf("List() = %+v, want just the shared session", l)
	}
	total := 0
	for shard := 0; shard < m.Shards(); shard++ {
		total += len(m.ListShard(shard))
	}
	if total != 1 {
		t.Fatalf("ListShard sum %d, want 1", total)
	}
}
