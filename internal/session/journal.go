package session

import (
	"errors"
	"fmt"
	"sync"

	"oasis"
	"oasis/internal/trace"
)

// This file defines the durable journal contract between the session layer
// and the write-ahead log (internal/wal). The session subsystem is a
// deterministic state machine — every sampler draw comes from an explicitly
// seeded stream, and the instrumental distribution is a pure function of the
// committed labels (Delyon & Portier's adaptive-IS structure) — so recording
// the operation sequence is enough to rebuild the exact state: recovery
// replays each event through the same code path the live server ran and
// lands, bit-for-bit, on the state at the last journaled event.

// EventType enumerates the journaled session lifecycle events.
type EventType string

const (
	// EventCreate registers a session; Config carries the full pool and
	// options (seed included) so replay rebuilds an identical sampler.
	EventCreate EventType = "create"
	// EventPropose records one ProposeBatch: the clamped batch size and the
	// drawn pairs. Replay re-executes the draws and verifies they match.
	EventPropose EventType = "propose"
	// EventCommit records the fresh labels of one commit batch together with
	// the frozen draw terms each folded into the estimator.
	EventCommit EventType = "commit"
	// EventRelease records proposals returned to the proposable set (lease
	// expiry). Replay never expires leases by wall clock; it applies exactly
	// the journaled releases.
	EventRelease EventType = "release"
	// EventDelete removes a session.
	EventDelete EventType = "delete"
	// EventRestart marks a server boot. Replaying it drops every outstanding
	// lease — the durable form of the crash contract: a proposal whose label
	// never arrived returns to the proposable set.
	EventRestart EventType = "restart"
)

// CommitRecord journals one fresh label: the pair, its label, and the
// weighted estimator terms applied (the frozen draw that proposed the pair
// plus any re-draws queued while the label was in flight). The terms let
// recovery re-apply the commit even when its propose event was already
// folded into a compaction snapshot.
type CommitRecord struct {
	Pair  int              `json:"pair"`
	Label bool             `json:"label"`
	Terms []oasis.DrawTerm `json:"terms"`
}

// Event is one journaled state change. LSN is the log sequence number the
// journal assigns at append time (per lane, in the sharded WAL); it is
// strictly increasing per session, and snapshots record each session's
// high-water LSN so replay can skip events the snapshot already folded.
type Event struct {
	LSN     uint64         `json:"lsn"`
	Type    EventType      `json:"type"`
	Session string         `json:"session,omitempty"`
	Config  *Config        `json:"config,omitempty"`  // EventCreate
	N       int            `json:"n,omitempty"`       // EventPropose: requested (clamped) batch size
	Pairs   []int          `json:"pairs,omitempty"`   // EventPropose results / EventRelease pairs
	Commits []CommitRecord `json:"commits,omitempty"` // EventCommit

	// TS is the wall clock of the event in Unix nanoseconds, currently
	// recorded for EventCommit only: replay stamps the re-recorded
	// diagnostics points with it, so a recovered convergence series is
	// byte-identical to the one the live server held. Omitempty keeps the
	// record format backward compatible — events journaled before the field
	// existed replay with TS zero ("wall time unknown").
	TS int64 `json:"ts,omitempty"`

	// Trace is the request trace the event belongs to, when the request is
	// sampled (nil otherwise, and always nil on replay). It never reaches
	// the log — the WAL reads it to record append/fsync spans and nothing
	// else — so the durable record format is unchanged.
	Trace *trace.Trace `json:"-"`
}

// Journal is the durable sink the Manager appends every state-changing event
// to before acknowledging it. Implementations must be safe for concurrent
// use, must assign LSNs that strictly increase in append order for any one
// session (the production WAL shards its log into per-shard lanes, so LSNs
// are per-lane sequences — a session's events all land in one lane, which
// is all the ordering the per-session watermarks compare), and must make
// failures sticky: once an append fails every later append (and Err) must
// report failure, so the service fail-stops instead of acknowledging labels
// the log does not hold. One carve-out: a create append the journal rejects
// before writing anything (an oversized payload, say) may return a per-call
// error without entering the failure state — the create is the only event
// appended before the session layer holds state for it, so nothing has
// drifted from the log and one bad request need not take the service down.
// internal/wal provides the production implementation.
type Journal interface {
	// Append durably records ev, assigning and returning its LSN.
	Append(ev *Event) (uint64, error)
	// Err reports the sticky failure state; nil while the journal is healthy.
	Err() error
}

// journalHolder shares the manager's journal with its sessions. It is
// populated after WAL replay — wal.Open attaches the journal only once
// recovery is done, so replayed operations are not re-journaled.
type journalHolder struct {
	mu sync.RWMutex
	j  Journal
}

func (h *journalHolder) get() Journal {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.j
}

func (h *journalHolder) set(j Journal) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.j = j
}

// journalLocked appends ev to the attached journal (if any), tagging it with
// the session's ID and recording the assigned LSN. Callers hold s.mu, which
// is what guarantees the journal order matches the session's operation
// order.
func (s *Session) journalLocked(ev *Event) error {
	if s.jrn == nil {
		return nil
	}
	j := s.jrn.get()
	if j == nil {
		return nil
	}
	ev.Session = s.id
	lsn, err := j.Append(ev)
	if err != nil {
		return fmt.Errorf("session: journal append: %w", err)
	}
	s.lastLSN = lsn
	return nil
}

// journaling reports whether a journal is attached (and thus commit terms
// must be materialised).
func (s *Session) journaling() bool {
	return s.jrn != nil && s.jrn.get() != nil
}

// journalSick fails write operations fast once the journal has entered its
// sticky failure state, so in-memory state stops drifting from the log.
func (s *Session) journalSick() error {
	if s.jrn == nil {
		return nil
	}
	j := s.jrn.get()
	if j == nil {
		return nil
	}
	if err := j.Err(); err != nil {
		return fmt.Errorf("session: journal failed, refusing writes: %w", err)
	}
	return nil
}

// replayEvent applies one journaled session event during recovery. Events at
// or below the session's restored LSN watermark were already folded into the
// snapshot and are skipped. Replay never journals and never expires leases
// by wall clock. It returns whether the event was applied.
func (s *Session) replayEvent(ev *Event) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if ev.LSN <= s.lastLSN {
		return false, nil
	}
	switch ev.Type {
	case EventPropose:
		pairs, err := s.prop.ProposeBatch(ev.N)
		if err != nil && !errors.Is(err, oasis.ErrExhausted) {
			return false, fmt.Errorf("session: replay propose: %w", err)
		}
		if len(pairs) != len(ev.Pairs) {
			return false, fmt.Errorf("session: replay propose diverged: drew %d pairs, journal has %d", len(pairs), len(ev.Pairs))
		}
		deadline := s.now().Add(s.leaseTTL)
		for i, pair := range pairs {
			if pair != ev.Pairs[i] {
				return false, fmt.Errorf("session: replay propose diverged at %d: drew pair %d, journal has %d", i, pair, ev.Pairs[i])
			}
			s.leases[pair] = deadline
		}
	case EventCommit:
		for _, cr := range ev.Commits {
			if err := s.prop.ReplayCommit(cr.Pair, cr.Label, cr.Terms); err != nil {
				return false, fmt.Errorf("session: replay commit: %w", err)
			}
			delete(s.leases, cr.Pair)
		}
		// One diagnostics point per commit event, mirroring the live path
		// (which records one per batch with at least one fresh label — the
		// only batches that journal an EventCommit).
		s.recordDiagLocked(nil, ev.TS, true)
	case EventRelease:
		for _, pair := range ev.Pairs {
			delete(s.leases, pair)
			s.prop.Release(pair)
		}
	default:
		return false, fmt.Errorf("session: replay: unexpected session event %q", ev.Type)
	}
	s.lastLSN = ev.LSN
	return true, nil
}

// dropAllLeases releases every outstanding proposal — the boot-time reading
// of the lease contract, applied both live at recovery and when replaying an
// EventRestart.
func (s *Session) dropAllLeases() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for pair := range s.leases {
		delete(s.leases, pair)
		s.prop.Release(pair)
	}
}

// LastLSN returns the LSN of the session's most recent journaled event (0
// when the session has never been journaled).
func (s *Session) LastLSN() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastLSN
}
