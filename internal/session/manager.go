package session

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"

	"oasis"
)

// DefaultLeaseTTL is the proposal lease used when neither the manager nor
// the session config sets one.
const DefaultLeaseTTL = time.Minute

// ManagerOptions configures a Manager.
type ManagerOptions struct {
	// DefaultLeaseTTL applies to sessions that do not set Config.LeaseTTL;
	// zero means DefaultLeaseTTL.
	DefaultLeaseTTL time.Duration
	// Now injects a clock, for tests; nil means time.Now.
	Now func() time.Time
	// Journal, when set, durably records every state-changing event before
	// it is acknowledged. When recovery must run first (the WAL replays into
	// a journal-less manager), leave it nil and attach with SetJournal.
	Journal Journal
}

// Manager owns named evaluation sessions. All methods are safe for
// concurrent use; each session additionally serialises its own state, so
// operations on distinct sessions never contend.
type Manager struct {
	mu       sync.RWMutex
	sessions map[string]*Session
	// reserved holds IDs whose create event is being journaled: the slow
	// fsync of the create record runs outside m.mu (so it never stalls other
	// sessions' traffic), and the reservation keeps the ID unique meanwhile.
	reserved map[string]bool
	// createMu orders in-flight creates against journal compaction: Create
	// holds the read side from before its journal append until the session is
	// registered, and CreateBarrier takes the write side. Without it a
	// compaction could fold the segment holding a create record, snapshot
	// before the session is registered, and delete the folded segment — losing
	// the acknowledged session and every later event replay would skip.
	createMu sync.RWMutex
	opts     ManagerOptions
	jrn      *journalHolder
}

// NewManager returns an empty manager.
func NewManager(opts ManagerOptions) *Manager {
	if opts.DefaultLeaseTTL <= 0 {
		opts.DefaultLeaseTTL = DefaultLeaseTTL
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	return &Manager{
		sessions: make(map[string]*Session),
		reserved: make(map[string]bool),
		opts:     opts,
		jrn:      &journalHolder{j: opts.Journal},
	}
}

// SetJournal attaches the durable event journal. wal.Open calls it once
// replay is done — so recovered operations are not re-journaled — and before
// the manager serves live traffic.
func (m *Manager) SetJournal(j Journal) { m.jrn.set(j) }

// ErrNotFound is returned for unknown session IDs.
var ErrNotFound = fmt.Errorf("session: no such session")

// newID returns a fresh random session ID.
func newID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(err) // crypto/rand never fails on supported platforms
	}
	return "s-" + hex.EncodeToString(b[:])
}

// Create builds and registers a session. An empty Config.ID gets a
// generated one; a duplicate ID is an error. With a journal attached the
// creation — configuration, pool and seed — is durably appended before the
// session becomes reachable, so the log orders it ahead of every event the
// session will produce.
func (m *Manager) Create(cfg Config) (*Session, error) {
	if cfg.ID == "" {
		cfg.ID = newID()
	}
	s, err := newSession(cfg, m.opts.DefaultLeaseTTL, m.opts.Now)
	if err != nil {
		return nil, err
	}
	s.id = cfg.ID
	s.jrn = m.jrn
	// Reserve the ID, journal the creation outside m.mu (the create record's
	// fsync must not stall every other session's traffic behind the manager
	// lock), then register. The session becomes reachable only after the
	// append, so the log still orders the create ahead of all its events.
	m.mu.Lock()
	if m.sessions[cfg.ID] != nil || m.reserved[cfg.ID] {
		m.mu.Unlock()
		return nil, fmt.Errorf("session: id %q already exists", cfg.ID)
	}
	m.reserved[cfg.ID] = true
	m.mu.Unlock()
	// Hold the create barrier across append+register so a concurrent
	// compaction cannot snapshot between the two: see createMu.
	m.createMu.RLock()
	defer m.createMu.RUnlock()
	var lsn uint64
	var jerr error
	if j := m.jrn.get(); j != nil {
		lsn, jerr = j.Append(&Event{Type: EventCreate, Session: cfg.ID, Config: &cfg})
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.reserved, cfg.ID)
	if jerr != nil {
		return nil, fmt.Errorf("session: journal create: %w", jerr)
	}
	s.lastLSN = lsn
	m.sessions[cfg.ID] = s
	return s, nil
}

// CreateBarrier returns once every in-flight Create — one that may already
// have journaled its create event — has registered (or abandoned) its
// session, so a Snapshot taken afterwards cannot miss a session whose create
// record sits in an already-rotated segment. wal.Journal.Compact calls it
// between rotating to a fresh segment and snapshotting: creates that start
// after the rotation append beyond the compaction boundary and need no
// barrier.
func (m *Manager) CreateBarrier() {
	// The empty critical section is the barrier: Lock waits for every
	// outstanding RLock held by an in-flight Create.
	m.createMu.Lock()
	m.createMu.Unlock()
}

// Get returns the named session or ErrNotFound.
func (m *Manager) Get(id string) (*Session, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	s, ok := m.sessions[id]
	if !ok {
		return nil, ErrNotFound
	}
	return s, nil
}

// Delete removes the named session, releasing its memory. With a journal
// attached the deletion is durably appended first.
func (m *Manager) Delete(id string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.sessions[id]; !ok {
		return ErrNotFound
	}
	// Unlike Create, the delete append stays under m.mu: releasing the lock
	// before the append would let a racing re-Create of the same ID journal
	// its create record ahead of this delete, which replay would reject as a
	// duplicate. Deletes are rare; the one fsync under the lock is fine.
	if j := m.jrn.get(); j != nil {
		if _, err := j.Append(&Event{Type: EventDelete, Session: id}); err != nil {
			return fmt.Errorf("session: journal delete: %w", err)
		}
	}
	delete(m.sessions, id)
	return nil
}

// List reports the status of every session, sorted by ID.
func (m *Manager) List() []Status {
	m.mu.RLock()
	all := make([]*Session, 0, len(m.sessions))
	for _, s := range m.sessions {
		all = append(all, s)
	}
	m.mu.RUnlock()
	out := make([]Status, len(all))
	for i, s := range all {
		out[i] = s.Status()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Len returns the number of live sessions.
func (m *Manager) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.sessions)
}

// sessionSnapshot pairs a session's config with its method state. Exactly
// one of Sampler/Passive is set. LastLSN is the session's journal high-water
// mark at snapshot time: WAL replay skips the session's events at or below
// it, which is what lets compaction fold cold segments into a snapshot.
// Leases lists the pairs with a live lease; together with the proposer
// states' pending draws this makes the snapshot exact — restored sessions
// hold the same outstanding proposals (re-leased for a fresh TTL), so WAL
// tail events replay against the snapshot bit-for-bit.
type sessionSnapshot struct {
	Config  Config              `json:"config"`
	LastLSN uint64              `json:"lastLSN,omitempty"`
	Leases  []int               `json:"leases,omitempty"`
	Sampler *oasis.SamplerState `json:"sampler,omitempty"`
	Passive *passiveState       `json:"passive,omitempty"`
}

// snapshotFile is the on-disk format of Manager.Snapshot.
type snapshotFile struct {
	Version  int               `json:"version"`
	Sessions []sessionSnapshot `json:"sessions"`
}

// snapshot captures one session, leases included (deadlines are not
// persisted: a restore re-leases each outstanding pair for one fresh TTL,
// and the WAL boot barrier releases them instead after a crash).
func (s *Session) snapshot() sessionSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := sessionSnapshot{Config: s.cfg, LastLSN: s.lastLSN}
	snap.Config.ID = s.id
	if len(s.leases) > 0 {
		snap.Leases = make([]int, 0, len(s.leases))
		for pair := range s.leases {
			snap.Leases = append(snap.Leases, pair)
		}
		sort.Ints(snap.Leases) // deterministic snapshot bytes
	}
	switch p := s.prop.(type) {
	case *oasis.Sampler:
		snap.Sampler = p.State()
	case *passiveProposer:
		snap.Passive = p.state()
	}
	return snap
}

// Snapshot serialises every session — pool, configuration, posterior state,
// random stream and purchased labels — to JSON.
func (m *Manager) Snapshot() ([]byte, error) {
	m.mu.RLock()
	ids := make([]string, 0, len(m.sessions))
	for id := range m.sessions {
		ids = append(ids, id)
	}
	m.mu.RUnlock()
	sort.Strings(ids)
	file := snapshotFile{Version: 1}
	for _, id := range ids {
		s, err := m.Get(id)
		if err != nil {
			continue // deleted concurrently
		}
		file.Sessions = append(file.Sessions, s.snapshot())
	}
	return json.Marshal(file)
}

// Restore registers every session in a Snapshot payload, resuming each
// sampler exactly where it left off: estimates, posteriors, random streams
// and outstanding proposals are bit-identical, with each leased pair
// re-leased for one fresh TTL. Existing sessions with clashing IDs are an
// error and abort the restore before any registration.
func (m *Manager) Restore(data []byte) error {
	var file snapshotFile
	if err := json.Unmarshal(data, &file); err != nil {
		return fmt.Errorf("session: bad snapshot: %w", err)
	}
	if file.Version != 1 {
		return fmt.Errorf("session: unsupported snapshot version %d", file.Version)
	}
	restored := make([]*Session, 0, len(file.Sessions))
	seen := make(map[string]bool, len(file.Sessions))
	m.mu.RLock()
	for _, snap := range file.Sessions {
		if seen[snap.Config.ID] {
			m.mu.RUnlock()
			return fmt.Errorf("session: duplicate id %q in snapshot", snap.Config.ID)
		}
		seen[snap.Config.ID] = true
		if m.sessions[snap.Config.ID] != nil || m.reserved[snap.Config.ID] {
			m.mu.RUnlock()
			return fmt.Errorf("session: id %q already exists", snap.Config.ID)
		}
	}
	m.mu.RUnlock()
	for _, snap := range file.Sessions {
		s, err := newSession(snap.Config, m.opts.DefaultLeaseTTL, m.opts.Now)
		if err != nil {
			return fmt.Errorf("session: restore %q: %w", snap.Config.ID, err)
		}
		s.id = snap.Config.ID
		s.jrn = m.jrn
		s.lastLSN = snap.LastLSN
		switch {
		case snap.Sampler != nil:
			sampler, ok := s.prop.(*oasis.Sampler)
			if !ok {
				return fmt.Errorf("session: restore %q: sampler state for %s session", s.id, s.cfg.Method)
			}
			if err := sampler.RestoreState(snap.Sampler); err != nil {
				return fmt.Errorf("session: restore %q: %w", s.id, err)
			}
		case snap.Passive != nil:
			passive, ok := s.prop.(*passiveProposer)
			if !ok {
				return fmt.Errorf("session: restore %q: passive state for %s session", s.id, s.cfg.Method)
			}
			if err := passive.restore(snap.Passive); err != nil {
				return fmt.Errorf("session: restore %q: %w", s.id, err)
			}
		}
		labelled := func(pair int) bool {
			switch {
			case snap.Sampler != nil:
				_, ok := snap.Sampler.Labels[pair]
				return ok
			case snap.Passive != nil:
				_, ok := snap.Passive.Labels[pair]
				return ok
			}
			return false
		}
		deadline := m.opts.Now().Add(s.leaseTTL)
		for _, pair := range snap.Leases {
			if pair < 0 || pair >= len(snap.Config.Scores) {
				return fmt.Errorf("session: restore %q: lease for pair %d outside pool of %d", s.id, pair, len(snap.Config.Scores))
			}
			if _, dup := s.leases[pair]; dup || labelled(pair) {
				return fmt.Errorf("session: restore %q: lease for pair %d clashes with its label state", s.id, pair)
			}
			s.leases[pair] = deadline
		}
		restored = append(restored, s)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, s := range restored {
		if m.sessions[s.id] != nil || m.reserved[s.id] {
			return fmt.Errorf("session: id %q already exists", s.id)
		}
	}
	for _, s := range restored {
		m.sessions[s.id] = s
	}
	return nil
}

// ReplayEvent applies one journaled event during write-ahead-log recovery
// (wal.Open drives it record by record, in log order). Events already folded
// into the snapshot the manager was restored from — per-session LSN at or
// below the restored watermark — and events for unknown (since-deleted)
// sessions are skipped. ReplayEvent never appends to the journal; it returns
// whether the event was applied.
func (m *Manager) ReplayEvent(ev *Event) (bool, error) {
	switch ev.Type {
	case EventRestart:
		m.mu.RLock()
		all := make([]*Session, 0, len(m.sessions))
		for _, s := range m.sessions {
			all = append(all, s)
		}
		m.mu.RUnlock()
		for _, s := range all {
			s.dropAllLeases()
		}
		return true, nil
	case EventCreate:
		if ev.Config == nil {
			return false, fmt.Errorf("session: replay create %q without config", ev.Session)
		}
		m.mu.Lock()
		defer m.mu.Unlock()
		if cur, ok := m.sessions[ev.Session]; ok {
			if ev.LSN <= cur.LastLSN() {
				return false, nil // folded into the snapshot
			}
			return false, fmt.Errorf("session: replay create %q: already exists", ev.Session)
		}
		cfg := *ev.Config
		cfg.ID = ev.Session
		s, err := newSession(cfg, m.opts.DefaultLeaseTTL, m.opts.Now)
		if err != nil {
			return false, fmt.Errorf("session: replay create %q: %w", ev.Session, err)
		}
		s.id = cfg.ID
		s.jrn = m.jrn
		s.lastLSN = ev.LSN
		m.sessions[cfg.ID] = s
		return true, nil
	case EventDelete:
		m.mu.Lock()
		defer m.mu.Unlock()
		s, ok := m.sessions[ev.Session]
		if !ok || ev.LSN <= s.LastLSN() {
			return false, nil
		}
		delete(m.sessions, ev.Session)
		return true, nil
	case EventPropose, EventCommit, EventRelease:
		m.mu.RLock()
		s, ok := m.sessions[ev.Session]
		m.mu.RUnlock()
		if !ok {
			return false, nil
		}
		return s.replayEvent(ev)
	default:
		return false, fmt.Errorf("session: replay: unknown event type %q", ev.Type)
	}
}

// MaxJournalLSN returns the highest journal LSN recorded by any live session
// — the watermark above which the WAL resumes sequence numbers after a
// snapshot-based recovery.
func (m *Manager) MaxJournalLSN() uint64 {
	m.mu.RLock()
	all := make([]*Session, 0, len(m.sessions))
	for _, s := range m.sessions {
		all = append(all, s)
	}
	m.mu.RUnlock()
	var max uint64
	for _, s := range all {
		if l := s.LastLSN(); l > max {
			max = l
		}
	}
	return max
}
