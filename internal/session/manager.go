package session

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"

	"oasis"
)

// DefaultLeaseTTL is the proposal lease used when neither the manager nor
// the session config sets one.
const DefaultLeaseTTL = time.Minute

// ManagerOptions configures a Manager.
type ManagerOptions struct {
	// DefaultLeaseTTL applies to sessions that do not set Config.LeaseTTL;
	// zero means DefaultLeaseTTL.
	DefaultLeaseTTL time.Duration
	// Now injects a clock, for tests; nil means time.Now.
	Now func() time.Time
}

// Manager owns named evaluation sessions. All methods are safe for
// concurrent use; each session additionally serialises its own state, so
// operations on distinct sessions never contend.
type Manager struct {
	mu       sync.RWMutex
	sessions map[string]*Session
	opts     ManagerOptions
}

// NewManager returns an empty manager.
func NewManager(opts ManagerOptions) *Manager {
	if opts.DefaultLeaseTTL <= 0 {
		opts.DefaultLeaseTTL = DefaultLeaseTTL
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	return &Manager{sessions: make(map[string]*Session), opts: opts}
}

// ErrNotFound is returned for unknown session IDs.
var ErrNotFound = fmt.Errorf("session: no such session")

// newID returns a fresh random session ID.
func newID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(err) // crypto/rand never fails on supported platforms
	}
	return "s-" + hex.EncodeToString(b[:])
}

// Create builds and registers a session. An empty Config.ID gets a
// generated one; a duplicate ID is an error.
func (m *Manager) Create(cfg Config) (*Session, error) {
	if cfg.ID == "" {
		cfg.ID = newID()
	}
	s, err := newSession(cfg, m.opts.DefaultLeaseTTL, m.opts.Now)
	if err != nil {
		return nil, err
	}
	s.id = cfg.ID
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.sessions[cfg.ID]; dup {
		return nil, fmt.Errorf("session: id %q already exists", cfg.ID)
	}
	m.sessions[cfg.ID] = s
	return s, nil
}

// Get returns the named session or ErrNotFound.
func (m *Manager) Get(id string) (*Session, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	s, ok := m.sessions[id]
	if !ok {
		return nil, ErrNotFound
	}
	return s, nil
}

// Delete removes the named session, releasing its memory.
func (m *Manager) Delete(id string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.sessions[id]; !ok {
		return ErrNotFound
	}
	delete(m.sessions, id)
	return nil
}

// List reports the status of every session, sorted by ID.
func (m *Manager) List() []Status {
	m.mu.RLock()
	all := make([]*Session, 0, len(m.sessions))
	for _, s := range m.sessions {
		all = append(all, s)
	}
	m.mu.RUnlock()
	out := make([]Status, len(all))
	for i, s := range all {
		out[i] = s.Status()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Len returns the number of live sessions.
func (m *Manager) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.sessions)
}

// sessionSnapshot pairs a session's config with its method state. Exactly
// one of Sampler/Passive is set.
type sessionSnapshot struct {
	Config  Config              `json:"config"`
	Sampler *oasis.SamplerState `json:"sampler,omitempty"`
	Passive *passiveState       `json:"passive,omitempty"`
}

// snapshotFile is the on-disk format of Manager.Snapshot.
type snapshotFile struct {
	Version  int               `json:"version"`
	Sessions []sessionSnapshot `json:"sessions"`
}

// snapshot captures one session. Live leases are not persisted — on restore
// every outstanding proposal has returned to the proposable set, which is
// the crash-safe reading of the lease contract.
func (s *Session) snapshot() sessionSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := sessionSnapshot{Config: s.cfg}
	snap.Config.ID = s.id
	switch p := s.prop.(type) {
	case *oasis.Sampler:
		snap.Sampler = p.State()
	case *passiveProposer:
		snap.Passive = p.state()
	}
	return snap
}

// Snapshot serialises every session — pool, configuration, posterior state,
// random stream and purchased labels — to JSON.
func (m *Manager) Snapshot() ([]byte, error) {
	m.mu.RLock()
	ids := make([]string, 0, len(m.sessions))
	for id := range m.sessions {
		ids = append(ids, id)
	}
	m.mu.RUnlock()
	sort.Strings(ids)
	file := snapshotFile{Version: 1}
	for _, id := range ids {
		s, err := m.Get(id)
		if err != nil {
			continue // deleted concurrently
		}
		file.Sessions = append(file.Sessions, s.snapshot())
	}
	return json.Marshal(file)
}

// Restore registers every session in a Snapshot payload, resuming each
// sampler exactly where it left off (estimates, posteriors and random
// streams are bit-identical; leases start empty). Existing sessions with
// clashing IDs are an error and abort the restore before any registration.
func (m *Manager) Restore(data []byte) error {
	var file snapshotFile
	if err := json.Unmarshal(data, &file); err != nil {
		return fmt.Errorf("session: bad snapshot: %w", err)
	}
	if file.Version != 1 {
		return fmt.Errorf("session: unsupported snapshot version %d", file.Version)
	}
	restored := make([]*Session, 0, len(file.Sessions))
	seen := make(map[string]bool, len(file.Sessions))
	m.mu.RLock()
	for _, snap := range file.Sessions {
		if seen[snap.Config.ID] {
			m.mu.RUnlock()
			return fmt.Errorf("session: duplicate id %q in snapshot", snap.Config.ID)
		}
		seen[snap.Config.ID] = true
		if _, dup := m.sessions[snap.Config.ID]; dup {
			m.mu.RUnlock()
			return fmt.Errorf("session: id %q already exists", snap.Config.ID)
		}
	}
	m.mu.RUnlock()
	for _, snap := range file.Sessions {
		s, err := newSession(snap.Config, m.opts.DefaultLeaseTTL, m.opts.Now)
		if err != nil {
			return fmt.Errorf("session: restore %q: %w", snap.Config.ID, err)
		}
		s.id = snap.Config.ID
		switch {
		case snap.Sampler != nil:
			sampler, ok := s.prop.(*oasis.Sampler)
			if !ok {
				return fmt.Errorf("session: restore %q: sampler state for %s session", s.id, s.cfg.Method)
			}
			if err := sampler.RestoreState(snap.Sampler); err != nil {
				return fmt.Errorf("session: restore %q: %w", s.id, err)
			}
		case snap.Passive != nil:
			passive, ok := s.prop.(*passiveProposer)
			if !ok {
				return fmt.Errorf("session: restore %q: passive state for %s session", s.id, s.cfg.Method)
			}
			if err := passive.restore(snap.Passive); err != nil {
				return fmt.Errorf("session: restore %q: %w", s.id, err)
			}
		}
		restored = append(restored, s)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, s := range restored {
		if _, dup := m.sessions[s.id]; dup {
			return fmt.Errorf("session: id %q already exists", s.id)
		}
	}
	for _, s := range restored {
		m.sessions[s.id] = s
	}
	return nil
}
