package session

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"oasis"
	"oasis/internal/diag"
	"oasis/internal/poolstore"
	"oasis/internal/trace"
)

// DefaultLeaseTTL is the proposal lease used when neither the manager nor
// the session config sets one.
const DefaultLeaseTTL = time.Minute

// MaxShards caps the shard count. 256 independent lock domains are far past
// the point of diminishing returns for any machine this serves on, and the
// WAL's record header reserves a 16-bit lane tag, so the cap is generous on
// both sides.
const MaxShards = 256

// NormalizeShards clamps n into [1, MaxShards] and rounds it up to the next
// power of two, which is what lets ShardOf mask instead of mod.
func NormalizeShards(n int) int {
	if n < 1 {
		n = 1
	}
	if n > MaxShards {
		n = MaxShards
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// DefaultShards is the GOMAXPROCS-derived shard count oasis-server uses when
// -shards is not set: the next power of two at or above the core count, so
// every core can make independent progress through the session layer.
func DefaultShards() int { return NormalizeShards(runtime.GOMAXPROCS(0)) }

// ShardOf maps a session ID to its shard among `shards` (a power of two),
// via FNV-1a. The mapping is a pure function of the ID, so the WAL computes
// the same lane for a session's records that the manager computes for its
// lock domain.
func ShardOf(id string, shards int) int {
	h := uint32(2166136261)
	for i := 0; i < len(id); i++ {
		h ^= uint32(id[i])
		h *= 16777619
	}
	return int(h & uint32(shards-1))
}

// ManagerOptions configures a Manager.
type ManagerOptions struct {
	// DefaultLeaseTTL applies to sessions that do not set Config.LeaseTTL;
	// zero means DefaultLeaseTTL.
	DefaultLeaseTTL time.Duration
	// Now injects a clock, for tests; nil means time.Now.
	Now func() time.Time
	// Journal, when set, durably records every state-changing event before
	// it is acknowledged. When recovery must run first (the WAL replays into
	// a journal-less manager), leave it nil and attach with SetJournal.
	Journal Journal
	// Shards splits the session map into that many independent lock domains
	// (rounded up to a power of two, capped at MaxShards; 0 means 1).
	// Operations on sessions in different shards never contend on a manager
	// lock. The shard count never changes any session's behaviour — sessions
	// are independent samplers — only which lock (and WAL lane) serialises
	// them.
	Shards int
	// Pools, when set, is the content-addressed pool store sessions resolve
	// Config.PoolID references through. Inline configs are interned into it
	// on Create, so durable create records and snapshots carry only the pool
	// hash. Nil keeps the inline-only behaviour.
	Pools *poolstore.Store
	// Metrics, when set, records per-shard counters and latency histograms
	// (see NewMetrics — it must be built for the same shard count). Nil
	// disables instrumentation with zero hot-path cost.
	Metrics *Metrics
	// Diag configures the per-session convergence diagnostics (series ring
	// capacity, degeneracy alarm thresholds, transition logging). The zero
	// value enables diagnostics with the defaults.
	Diag DiagOptions
}

// DiagOptions configures the convergence diagnostics every session records.
type DiagOptions struct {
	// SeriesCapacity is the per-session diagnostics ring capacity in
	// points; 0 selects diag.DefaultCapacity.
	SeriesCapacity int
	// Thresholds are the degeneracy alarm thresholds; zero fields take
	// diag.DefaultThresholds.
	Thresholds diag.Thresholds
	// Logf receives the one-line health transition messages ("session X:
	// sampler health ok -> degraded ..."); nil means log.Printf.
	Logf func(format string, args ...any)
}

// shard is one lock domain of the manager: a slice of the session map with
// its own mutex, reservation set and create barrier.
type shard struct {
	mu       sync.RWMutex
	sessions map[string]*Session
	// reserved holds IDs whose create event is being journaled: the slow
	// fsync of the create record runs outside sh.mu (so it never stalls the
	// shard's other sessions), and the reservation keeps the ID unique
	// meanwhile.
	reserved map[string]bool
	// createMu orders in-flight creates against journal compaction: Create
	// holds the read side from before its journal append until the session is
	// registered, and ShardCreateBarrier takes the write side. Without it a
	// compaction could fold the segment holding a create record, snapshot
	// before the session is registered, and delete the folded segment —
	// losing the acknowledged session and every later event replay would
	// skip. Per-shard, so a slow create in one shard never blocks another
	// shard's compaction.
	createMu sync.RWMutex
}

// Manager owns named evaluation sessions, split across power-of-two shards
// (session-ID hash → shard) so operations on different sessions never
// contend on one lock. All methods are safe for concurrent use; each session
// additionally serialises its own state.
type Manager struct {
	shards []*shard
	opts   ManagerOptions
	jrn    *journalHolder

	// deadMu guards dead: replayed creates whose referenced pool could not
	// be resolved, pending absolution by a later replayed delete. Only WAL
	// recovery touches it; see ReplayEvent and UnresolvedReplayCreates.
	deadMu sync.Mutex
	dead   map[string]error
}

// NewManager returns an empty manager.
func NewManager(opts ManagerOptions) *Manager {
	if opts.DefaultLeaseTTL <= 0 {
		opts.DefaultLeaseTTL = DefaultLeaseTTL
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	if opts.Diag.Logf == nil {
		opts.Diag.Logf = log.Printf
	}
	opts.Shards = NormalizeShards(opts.Shards)
	opts.Metrics.checkShards(opts.Shards)
	shards := make([]*shard, opts.Shards)
	for i := range shards {
		shards[i] = &shard{
			sessions: make(map[string]*Session),
			reserved: make(map[string]bool),
		}
	}
	return &Manager{
		shards: shards,
		opts:   opts,
		jrn:    &journalHolder{j: opts.Journal},
	}
}

// Shards returns the manager's shard count (a power of two).
func (m *Manager) Shards() int { return len(m.shards) }

// ShardFor returns the shard index session id maps to.
func (m *Manager) ShardFor(id string) int { return ShardOf(id, len(m.shards)) }

func (m *Manager) shardFor(id string) *shard { return m.shards[m.ShardFor(id)] }

// SetJournal attaches the durable event journal. wal.Open calls it once
// replay is done — so recovered operations are not re-journaled — and before
// the manager serves live traffic.
func (m *Manager) SetJournal(j Journal) { m.jrn.set(j) }

// ErrNotFound is returned for unknown session IDs.
var ErrNotFound = fmt.Errorf("session: no such session")

// newID returns a fresh random session ID.
func newID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(err) // crypto/rand never fails on supported platforms
	}
	return "s-" + hex.EncodeToString(b[:])
}

// Create builds and registers a session. An empty Config.ID gets a
// generated one; a duplicate ID is an error. With a pool store attached,
// inline pool columns are interned into it first — stored once under their
// content hash, durably, and the config rewritten to reference them — so
// what the journal and snapshots persist is the O(1) PoolID form. With a
// journal attached the creation — configuration, pool reference (or inline
// pool) and seed — is durably appended before the session becomes
// reachable, so the log orders it ahead of every event the session will
// produce; the pool itself is durable before that append, so a create
// record can never name a pool a crash could lose.
func (m *Manager) Create(cfg Config) (*Session, error) {
	return m.CreateCtx(context.Background(), cfg)
}

// CreateCtx is Create with request context: when ctx carries a trace
// (internal/trace), the create records the pool resolution, its shard-lock
// waits vs. holds, the create-barrier wait and the journal append as spans.
func (m *Manager) CreateCtx(ctx context.Context, cfg Config) (*Session, error) {
	tr := trace.FromContext(ctx)
	var start time.Time
	if m.opts.Metrics != nil {
		start = time.Now()
	}
	if cfg.ID == "" {
		cfg.ID = newID()
	}
	// Intern inline pools only into a durable store: a snapshot (or journal)
	// referencing a memory-only pool could never be restored after a
	// restart, whereas an inline config is self-contained. Intern holds a
	// temporary reference until the session has acquired its own, so a
	// concurrent pool delete cannot hit the freshly interned pool in
	// between.
	if m.opts.Pools != nil && m.opts.Pools.Durable() && cfg.PoolID == "" && len(cfg.Scores) > 0 {
		id, release, err := m.opts.Pools.Intern(cfg.Scores, cfg.Preds)
		if err != nil {
			return nil, fmt.Errorf("session: intern pool: %w", err)
		}
		defer release()
		cfg.PoolID = id
		cfg.Scores, cfg.Preds = nil, nil
	}
	bs := tr.Start("session", "session.build")
	s, err := newSession(ctx, cfg, m.opts.DefaultLeaseTTL, m.opts.Now, m.opts.Pools, m.opts.Diag)
	bs.End()
	if err != nil {
		return nil, err
	}
	s.id = cfg.ID
	s.jrn = m.jrn
	shardIdx := m.ShardFor(cfg.ID)
	s.met = m.opts.Metrics.Shard(shardIdx)
	sh := m.shards[shardIdx]
	// Reserve the ID, journal the creation outside sh.mu (the create record's
	// fsync must not stall the shard's other sessions behind the shard lock),
	// then register. The session becomes reachable only after the append, so
	// the log still orders the create ahead of all its events.
	lw := tr.Start("session", "shard.lock_wait").AttrInt("shard", int64(shardIdx))
	sh.mu.Lock()
	lw.End()
	lh := tr.Start("session", "shard.lock_hold")
	if sh.sessions[cfg.ID] != nil || sh.reserved[cfg.ID] {
		sh.mu.Unlock()
		lh.End()
		s.releasePool()
		return nil, fmt.Errorf("session: id %q already exists", cfg.ID)
	}
	sh.reserved[cfg.ID] = true
	sh.mu.Unlock()
	lh.End()
	// Hold the shard's create barrier across append+register so a concurrent
	// compaction of this shard's lane cannot snapshot between the two: see
	// shard.createMu.
	bw := tr.Start("session", "create.barrier_wait")
	sh.createMu.RLock()
	bw.End()
	defer sh.createMu.RUnlock()
	var lsn uint64
	var jerr error
	if j := m.jrn.get(); j != nil {
		lsn, jerr = j.Append(&Event{Type: EventCreate, Session: cfg.ID, Config: &cfg, Trace: tr})
	}
	lw2 := tr.Start("session", "shard.lock_wait").AttrInt("shard", int64(shardIdx))
	sh.mu.Lock()
	lw2.End()
	lh2 := tr.Start("session", "shard.lock_hold")
	defer lh2.End()
	defer sh.mu.Unlock()
	delete(sh.reserved, cfg.ID)
	if jerr != nil {
		s.releasePool()
		return nil, fmt.Errorf("session: journal create: %w", jerr)
	}
	s.lastLSN = lsn
	sh.sessions[cfg.ID] = s
	if s.met != nil {
		s.met.Creates.Inc()
		s.met.CreateSeconds.Observe(time.Since(start).Seconds())
	}
	return s, nil
}

// ShardCreateBarrier returns once every in-flight Create targeting the given
// shard — one that may already have journaled its create event — has
// registered (or abandoned) its session, so a shard snapshot taken
// afterwards cannot miss a session whose create record sits in an
// already-rotated lane segment. wal.Journal.CompactShard calls it between
// rotating the shard's lane to a fresh segment and snapshotting the shard:
// creates that start after the rotation append beyond the compaction
// boundary and need no barrier.
func (m *Manager) ShardCreateBarrier(shard int) {
	sh := m.shards[shard]
	// The empty critical section is the barrier: Lock waits for every
	// outstanding RLock held by an in-flight Create.
	sh.createMu.Lock()
	sh.createMu.Unlock() //nolint:staticcheck // empty critical section is the point
}

// CreateBarrier waits on every shard's create barrier (see
// ShardCreateBarrier). Whole-manager snapshots take it before reading.
func (m *Manager) CreateBarrier() {
	for i := range m.shards {
		m.ShardCreateBarrier(i)
	}
}

// Get returns the named session or ErrNotFound.
func (m *Manager) Get(id string) (*Session, error) {
	return m.GetCtx(context.Background(), id)
}

// GetCtx is Get with request context: when ctx carries a trace, the shard
// read-lock wait (contention against same-shard creates/deletes) and hold
// are recorded as spans.
func (m *Manager) GetCtx(ctx context.Context, id string) (*Session, error) {
	tr := trace.FromContext(ctx)
	shardIdx := m.ShardFor(id)
	sh := m.shards[shardIdx]
	lw := tr.Start("session", "shard.lock_wait").AttrInt("shard", int64(shardIdx))
	sh.mu.RLock()
	lw.End()
	lh := tr.Start("session", "shard.lock_hold")
	defer lh.End()
	defer sh.mu.RUnlock()
	s, ok := sh.sessions[id]
	if !ok {
		return nil, ErrNotFound
	}
	return s, nil
}

// Delete removes the named session, releasing its memory. With a journal
// attached the deletion is durably appended first.
func (m *Manager) Delete(id string) error {
	sh := m.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	s, ok := sh.sessions[id]
	if !ok {
		return ErrNotFound
	}
	// Unlike Create, the delete append stays under sh.mu: releasing the lock
	// before the append would let a racing re-Create of the same ID (same
	// shard, by construction) journal its create record ahead of this delete,
	// which replay would reject as a duplicate. Deletes are rare; the one
	// fsync under the shard lock is fine — and it stalls only this shard.
	if j := m.jrn.get(); j != nil {
		if _, err := j.Append(&Event{Type: EventDelete, Session: id}); err != nil {
			return fmt.Errorf("session: journal delete: %w", err)
		}
	}
	delete(sh.sessions, id)
	s.releasePool()
	if s.met != nil {
		s.met.Deletes.Inc()
	}
	return nil
}

// Sessions snapshots one shard's session pointers. The metrics collector
// iterates it at scrape time to export per-session sampler health.
func (m *Manager) Sessions(shard int) []*Session {
	return m.sessionsOfShard(shard)
}

// sessionsOfShard snapshots one shard's session pointers under its read
// lock.
func (m *Manager) sessionsOfShard(shard int) []*Session {
	sh := m.shards[shard]
	sh.mu.RLock()
	all := make([]*Session, 0, len(sh.sessions))
	for _, s := range sh.sessions {
		all = append(all, s)
	}
	sh.mu.RUnlock()
	return all
}

// ListShard reports the status of one shard's sessions, sorted by ID. The
// shard lock is held only while copying pointers; status marshalling runs
// against each session's own lock.
func (m *Manager) ListShard(shard int) []Status {
	all := m.sessionsOfShard(shard)
	out := make([]Status, len(all))
	for i, s := range all {
		out[i] = s.Status()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// List reports the status of every session, sorted by ID. It snapshots each
// shard in turn and merges — no lock is global, and no shard lock is held
// while statuses are marshalled.
func (m *Manager) List() []Status {
	var out []Status
	for i := range m.shards {
		out = append(out, m.ListShard(i)...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Len returns the number of live sessions.
func (m *Manager) Len() int {
	n := 0
	for _, sh := range m.shards {
		sh.mu.RLock()
		n += len(sh.sessions)
		sh.mu.RUnlock()
	}
	return n
}

// sessionSnapshot pairs a session's config with its method state. Exactly
// one of Sampler/Passive is set. LastLSN is the session's journal high-water
// mark at snapshot time: WAL replay skips the session's events at or below
// it, which is what lets compaction fold cold segments into a snapshot.
// Leases lists the pairs with a live lease; together with the proposer
// states' pending draws this makes the snapshot exact — restored sessions
// hold the same outstanding proposals (re-leased for a fresh TTL), so WAL
// tail events replay against the snapshot bit-for-bit.
type sessionSnapshot struct {
	Config  Config              `json:"config"`
	LastLSN uint64              `json:"lastLSN,omitempty"`
	Leases  []int               `json:"leases,omitempty"`
	Sampler *oasis.SamplerState `json:"sampler,omitempty"`
	Passive *passiveState       `json:"passive,omitempty"`
	// Diag is the convergence-diagnostics series and alarm state, present
	// once the session has recorded at least one commit batch (omitempty
	// keeps pre-diagnostics snapshots decodable — they restore with an
	// empty series).
	Diag *diag.TrackerState `json:"diag,omitempty"`
}

// snapshotFile is the on-disk format of Manager.Snapshot.
type snapshotFile struct {
	Version  int               `json:"version"`
	Sessions []sessionSnapshot `json:"sessions"`
}

// snapshot captures one session, leases included (deadlines are not
// persisted: a restore re-leases each outstanding pair for one fresh TTL,
// and the WAL boot barrier releases them instead after a crash).
func (s *Session) snapshot() sessionSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := sessionSnapshot{Config: s.cfg, LastLSN: s.lastLSN}
	snap.Config.ID = s.id
	if len(s.leases) > 0 {
		snap.Leases = make([]int, 0, len(s.leases))
		for pair := range s.leases {
			snap.Leases = append(snap.Leases, pair)
		}
		sort.Ints(snap.Leases) // deterministic snapshot bytes
	}
	switch p := s.prop.(type) {
	case *oasis.Sampler:
		snap.Sampler = p.State()
	case *passiveProposer:
		snap.Passive = p.state()
	}
	if s.diag != nil && s.diag.Series().Seen() > 0 {
		snap.Diag = s.diag.Snapshot()
	}
	return snap
}

// snapshotSessions serialises the given sessions, sorted by ID, in the
// snapshotFile format.
func snapshotSessions(all []*Session) ([]byte, error) {
	sort.Slice(all, func(i, j int) bool { return all[i].id < all[j].id })
	file := snapshotFile{Version: 1}
	for _, s := range all {
		file.Sessions = append(file.Sessions, s.snapshot())
	}
	return json.Marshal(file)
}

// Snapshot serialises every session — pool, configuration, posterior state,
// random stream and purchased labels — to JSON. The format is independent of
// the shard count: sessions are sorted by ID, so managers with different
// shard counts produce identical snapshots of identical state.
func (m *Manager) Snapshot() ([]byte, error) {
	var all []*Session
	for i := range m.shards {
		all = append(all, m.sessionsOfShard(i)...)
	}
	return snapshotSessions(all)
}

// SnapshotShard serialises one shard's sessions in the same format as
// Snapshot. WAL per-shard compaction folds a shard's journal lane into it.
func (m *Manager) SnapshotShard(shard int) ([]byte, error) {
	return snapshotSessions(m.sessionsOfShard(shard))
}

// lockAll write-locks every shard in index order (the one lock ordering,
// so concurrent Restores cannot deadlock).
func (m *Manager) lockAll() {
	for _, sh := range m.shards {
		sh.mu.Lock()
	}
}

func (m *Manager) unlockAll() {
	for _, sh := range m.shards {
		sh.mu.Unlock()
	}
}

// Restore registers every session in a Snapshot payload, resuming each
// sampler exactly where it left off: estimates, posteriors, random streams
// and outstanding proposals are bit-identical, with each leased pair
// re-leased for one fresh TTL. Existing sessions with clashing IDs are an
// error and abort the restore before any registration; any abort is
// all-or-nothing — no session is registered and every pool-store reference
// taken along the way is returned. Sessions land in the shard their ID
// hashes to, so a snapshot taken at one shard count restores into a manager
// with any other.
func (m *Manager) Restore(data []byte) error {
	return m.restore(data, false)
}

// RestoreReplay is Restore for WAL recovery: a session whose referenced
// pool cannot be resolved is parked (see ErrPoolUnavailable) instead of
// aborting the restore, because the un-replayed journal tail may hold the
// delete that explains the missing pool — a session folded into a
// compaction snapshot while live, then deleted, then its pool removed.
// wal.Open fails the boot afterwards if any parked session was never
// absolved (UnresolvedReplayCreates). Every other failure stays
// all-or-nothing exactly as in Restore.
func (m *Manager) RestoreReplay(data []byte) error {
	return m.restore(data, true)
}

func (m *Manager) restore(data []byte, parkUnavailable bool) (err error) {
	var file snapshotFile
	if err := json.Unmarshal(data, &file); err != nil {
		return fmt.Errorf("session: bad snapshot: %w", err)
	}
	if file.Version != 1 {
		return fmt.Errorf("session: unsupported snapshot version %d", file.Version)
	}
	restored := make([]*Session, 0, len(file.Sessions))
	defer func() {
		// Failed restores must not leak shared-pool references: none of the
		// part-built sessions will ever be registered or deleted.
		if err != nil {
			for _, s := range restored {
				s.releasePool()
			}
		}
	}()
	seen := make(map[string]bool, len(file.Sessions))
	for _, snap := range file.Sessions {
		if seen[snap.Config.ID] {
			return fmt.Errorf("session: duplicate id %q in snapshot", snap.Config.ID)
		}
		seen[snap.Config.ID] = true
		sh := m.shardFor(snap.Config.ID)
		sh.mu.RLock()
		clash := sh.sessions[snap.Config.ID] != nil || sh.reserved[snap.Config.ID]
		sh.mu.RUnlock()
		if clash {
			return fmt.Errorf("session: id %q already exists", snap.Config.ID)
		}
	}
	for _, snap := range file.Sessions {
		s, err := newSession(context.Background(), snap.Config, m.opts.DefaultLeaseTTL, m.opts.Now, m.opts.Pools, m.opts.Diag)
		if parkUnavailable && errors.Is(err, ErrPoolUnavailable) {
			// Park instead of aborting: tail replay may delete this session,
			// absolving the missing pool; wal.Open checks for leftovers.
			m.deadMu.Lock()
			if m.dead == nil {
				m.dead = make(map[string]error)
			}
			if _, seen := m.dead[snap.Config.ID]; !seen {
				m.dead[snap.Config.ID] = err
			}
			m.deadMu.Unlock()
			continue
		}
		if err != nil {
			return fmt.Errorf("session: restore %q: %w", snap.Config.ID, err)
		}
		restored = append(restored, s)
		s.id = snap.Config.ID
		s.jrn = m.jrn
		s.met = m.opts.Metrics.Shard(m.ShardFor(s.id))
		s.lastLSN = snap.LastLSN
		switch {
		case snap.Sampler != nil:
			sampler, ok := s.prop.(*oasis.Sampler)
			if !ok {
				return fmt.Errorf("session: restore %q: sampler state for %s session", s.id, s.cfg.Method)
			}
			if err := sampler.RestoreState(snap.Sampler); err != nil {
				return fmt.Errorf("session: restore %q: %w", s.id, err)
			}
		case snap.Passive != nil:
			passive, ok := s.prop.(*passiveProposer)
			if !ok {
				return fmt.Errorf("session: restore %q: passive state for %s session", s.id, s.cfg.Method)
			}
			if err := passive.restore(snap.Passive); err != nil {
				return fmt.Errorf("session: restore %q: %w", s.id, err)
			}
		}
		if snap.Diag != nil {
			// The ring capacity rides the snapshot (byte-stable series even
			// across a capacity reconfiguration); the thresholds are live
			// configuration and come from the manager.
			tracker, derr := diag.RestoreTracker(snap.Diag, m.opts.Diag.Thresholds)
			if derr != nil {
				return fmt.Errorf("session: restore %q: %w", s.id, derr)
			}
			s.diag = tracker
		}
		labelled := func(pair int) bool {
			switch {
			case snap.Sampler != nil:
				_, ok := snap.Sampler.Labels[pair]
				return ok
			case snap.Passive != nil:
				_, ok := snap.Passive.Labels[pair]
				return ok
			}
			return false
		}
		deadline := m.opts.Now().Add(s.leaseTTL)
		for _, pair := range snap.Leases {
			if pair < 0 || pair >= s.poolSize {
				return fmt.Errorf("session: restore %q: lease for pair %d outside pool of %d", s.id, pair, s.poolSize)
			}
			if _, dup := s.leases[pair]; dup || labelled(pair) {
				return fmt.Errorf("session: restore %q: lease for pair %d clashes with its label state", s.id, pair)
			}
			s.leases[pair] = deadline
		}
	}
	// Registration is all-or-nothing across shards: take every shard lock (in
	// index order), re-check for clashes, then register.
	m.lockAll()
	defer m.unlockAll()
	for _, s := range restored {
		sh := m.shardFor(s.id)
		if sh.sessions[s.id] != nil || sh.reserved[s.id] {
			return fmt.Errorf("session: id %q already exists", s.id)
		}
	}
	for _, s := range restored {
		m.shardFor(s.id).sessions[s.id] = s
	}
	return nil
}

// ReplayShardRestart applies a journaled restart to one shard: every
// outstanding lease of the shard's sessions is dropped. WAL lane replay
// calls it for the per-lane restart records, so concurrent lane recoveries
// only touch their own shard.
func (m *Manager) ReplayShardRestart(shard int) {
	for _, s := range m.sessionsOfShard(shard) {
		s.dropAllLeases()
	}
}

// ReplayEvent applies one journaled event during write-ahead-log recovery
// (wal.Open drives it record by record, in per-lane log order). Events
// already folded into the snapshot the manager was restored from —
// per-session LSN at or below the restored watermark — and events for
// unknown (since-deleted) sessions are skipped. ReplayEvent never appends to
// the journal; it returns whether the event was applied.
func (m *Manager) ReplayEvent(ev *Event) (bool, error) {
	switch ev.Type {
	case EventRestart:
		for i := range m.shards {
			m.ReplayShardRestart(i)
		}
		return true, nil
	case EventCreate:
		if ev.Config == nil {
			return false, fmt.Errorf("session: replay create %q without config", ev.Session)
		}
		sh := m.shardFor(ev.Session)
		sh.mu.Lock()
		defer sh.mu.Unlock()
		if cur, ok := sh.sessions[ev.Session]; ok {
			if ev.LSN <= cur.LastLSN() {
				return false, nil // folded into the snapshot
			}
			return false, fmt.Errorf("session: replay create %q: already exists", ev.Session)
		}
		cfg := *ev.Config
		cfg.ID = ev.Session
		s, err := newSession(context.Background(), cfg, m.opts.DefaultLeaseTTL, m.opts.Now, m.opts.Pools, m.opts.Diag)
		if errors.Is(err, ErrPoolUnavailable) {
			// The pool may have been legitimately removed after this session
			// was deleted — with the delete record still in the un-compacted
			// tail ahead. Park the failure instead of fail-stopping here; a
			// later replayed delete absolves it, and wal.Open turns any
			// unabsolved entry into the deterministic boot error via
			// UnresolvedReplayCreates.
			m.deadMu.Lock()
			if m.dead == nil {
				m.dead = make(map[string]error)
			}
			if _, seen := m.dead[ev.Session]; !seen {
				m.dead[ev.Session] = err
			}
			m.deadMu.Unlock()
			return false, nil
		}
		if err != nil {
			return false, fmt.Errorf("session: replay create %q: %w", ev.Session, err)
		}
		s.id = cfg.ID
		s.jrn = m.jrn
		// Replayed events never count as live traffic, but the recovered
		// session must instrument the traffic it serves from here on.
		s.met = m.opts.Metrics.Shard(m.ShardFor(cfg.ID))
		s.lastLSN = ev.LSN
		sh.sessions[cfg.ID] = s
		return true, nil
	case EventDelete:
		sh := m.shardFor(ev.Session)
		sh.mu.Lock()
		defer sh.mu.Unlock()
		s, ok := sh.sessions[ev.Session]
		if !ok {
			// The delete absolves a create parked on an unresolvable pool:
			// the session never needed to exist in the recovered state.
			m.deadMu.Lock()
			delete(m.dead, ev.Session)
			m.deadMu.Unlock()
			return false, nil
		}
		if ev.LSN <= s.LastLSN() {
			return false, nil
		}
		delete(sh.sessions, ev.Session)
		s.releasePool()
		return true, nil
	case EventPropose, EventCommit, EventRelease:
		sh := m.shardFor(ev.Session)
		sh.mu.RLock()
		s, ok := sh.sessions[ev.Session]
		sh.mu.RUnlock()
		if !ok {
			return false, nil
		}
		return s.replayEvent(ev)
	default:
		return false, fmt.Errorf("session: replay: unknown event type %q", ev.Type)
	}
}

// UnresolvedReplayCreates reports the replayed creates whose referenced
// pool could not be resolved and that no later delete absolved, as a
// deterministic (ID-sorted) error — nil when recovery is clean. wal.Open
// consults it after replay: an unabsolved entry means a live session's pool
// is genuinely missing or corrupt, which must fail the boot rather than
// silently drop the session.
func (m *Manager) UnresolvedReplayCreates() error {
	m.deadMu.Lock()
	defer m.deadMu.Unlock()
	if len(m.dead) == 0 {
		return nil
	}
	ids := make([]string, 0, len(m.dead))
	for id := range m.dead {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	msgs := make([]string, len(ids))
	for i, id := range ids {
		msgs[i] = fmt.Sprintf("%q: %v", id, m.dead[id])
	}
	return fmt.Errorf("session: replay: %d session(s) reference unresolvable pools and were never deleted: %s",
		len(ids), strings.Join(msgs, "; "))
}

// MaxJournalLSN returns the highest journal LSN recorded by any live session
// — the watermark above which the WAL resumes sequence numbers after a
// snapshot-based recovery.
func (m *Manager) MaxJournalLSN() uint64 {
	var max uint64
	for i := range m.shards {
		for _, s := range m.sessionsOfShard(i) {
			if l := s.LastLSN(); l > max {
				max = l
			}
		}
	}
	return max
}
