package session

import (
	"encoding/json"
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"oasis"
	"oasis/internal/rng"
)

// testPool builds a synthetic calibrated pool with ER-like imbalance:
// scores are Beta-shaped towards 0, truth is Bernoulli(score), predictions
// threshold at 0.5.
func testPool(n int, seed uint64) (scores []float64, preds []bool, truth []bool) {
	r := rng.New(seed)
	scores = make([]float64, n)
	preds = make([]bool, n)
	truth = make([]bool, n)
	for i := 0; i < n; i++ {
		u := r.Float64()
		scores[i] = u * u * u // mass near zero: imbalanced pool
		preds[i] = scores[i] >= 0.5
		truth[i] = r.Bernoulli(scores[i])
	}
	return scores, preds, truth
}

func trueF(alpha float64, preds, truth []bool) float64 {
	var tp, fp, fn float64
	for i := range preds {
		switch {
		case preds[i] && truth[i]:
			tp++
		case preds[i] && !truth[i]:
			fp++
		case !preds[i] && truth[i]:
			fn++
		}
	}
	return tp / (alpha*(tp+fp) + (1-alpha)*(tp+fn))
}

func newTestManager(now func() time.Time) *Manager {
	return NewManager(ManagerOptions{Now: now})
}

// TestProposeCommitMatchesRun checks the propose/commit protocol is the
// sequential algorithm, exactly: driving batches of one proposal with a
// deterministic oracle reproduces Sampler.Run bit-for-bit at the same seed.
func TestProposeCommitMatchesRun(t *testing.T) {
	scores, preds, truth := testPool(3000, 7)
	opts := oasis.Options{Strata: 20, Seed: 42}
	const budget = 150

	p1, err := oasis.NewPool(scores, preds, oasis.CalibratedScores)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := oasis.NewSampler(p1, opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ref.Run(func(i int) bool { return truth[i] }, budget)
	if err != nil {
		t.Fatal(err)
	}

	m := newTestManager(nil)
	s, err := m.Create(Config{
		Scores: scores, Preds: preds, Calibrated: true, Options: opts,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < budget; i++ {
		props, err := s.Propose(1)
		if err != nil {
			t.Fatal(err)
		}
		if len(props) != 1 {
			t.Fatalf("Propose(1) returned %d proposals", len(props))
		}
		if err := s.Commit(props[0].Pair, truth[props[0].Pair]); err != nil {
			t.Fatal(err)
		}
	}
	got := s.Estimate()
	if got != res.FMeasure {
		t.Fatalf("propose/commit F̂ = %v, Run F̂ = %v (want identical)", got, res.FMeasure)
	}
	if n := s.Status().LabelsCommitted; n != res.LabelsConsumed {
		t.Fatalf("labels committed = %d, Run consumed = %d", n, res.LabelsConsumed)
	}
}

// TestConcurrentProposeCommit hammers one session from many goroutines —
// the acceptance gate for go test -race — and checks accounting and the
// estimate stay coherent.
func TestConcurrentProposeCommit(t *testing.T) {
	scores, preds, truth := testPool(5000, 11)
	const (
		budget  = 400
		workers = 8
	)
	m := newTestManager(nil)
	s, err := m.Create(Config{
		Scores: scores, Preds: preds, Calibrated: true,
		Options: oasis.Options{Strata: 20, Seed: 5},
		Budget:  budget,
	})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for spins := 0; spins < 10*budget; spins++ {
				props, err := s.Propose(7)
				if errors.Is(err, ErrBudgetExhausted) {
					return
				}
				if err != nil {
					t.Error(err)
					return
				}
				for _, pr := range props {
					if err := s.Commit(pr.Pair, truth[pr.Pair]); err != nil {
						t.Error(err)
						return
					}
				}
			}
			t.Error("worker spun out without exhausting the budget")
		}()
	}
	wg.Wait()

	st := s.Status()
	if st.LabelsCommitted != budget {
		t.Fatalf("labels committed = %d, want %d", st.LabelsCommitted, budget)
	}
	if st.PendingProposals != 0 {
		t.Fatalf("pending proposals = %d after drain, want 0", st.PendingProposals)
	}
	if st.Estimate == nil {
		t.Fatal("estimate undefined after full budget")
	}
	f := trueF(0.5, preds, truth)
	if math.Abs(*st.Estimate-f) > 0.25 {
		t.Fatalf("estimate %v implausibly far from true F %v", *st.Estimate, f)
	}
}

// TestConcurrentSessions exercises the Manager itself under -race:
// create/list/propose/commit/delete across goroutines and sessions.
func TestConcurrentSessions(t *testing.T) {
	scores, preds, truth := testPool(1500, 3)
	m := newTestManager(nil)
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s, err := m.Create(Config{
				Scores: scores, Preds: preds, Calibrated: true,
				Options: oasis.Options{Strata: 10, Seed: uint64(w)},
			})
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < 20; i++ {
				props, err := s.Propose(3)
				if err != nil {
					t.Error(err)
					return
				}
				for _, pr := range props {
					if err := s.Commit(pr.Pair, truth[pr.Pair]); err != nil {
						t.Error(err)
					}
				}
				m.List()
			}
			if err := m.Delete(s.ID()); err != nil {
				t.Error(err)
			}
		}(w)
	}
	wg.Wait()
	if m.Len() != 0 {
		t.Fatalf("%d sessions left after deletes", m.Len())
	}
}

// TestLeaseExpiry checks the lease lifecycle: leased pairs are not
// re-proposed, expired leases return their pairs to the proposable set, and
// a label arriving after expiry is rejected.
func TestLeaseExpiry(t *testing.T) {
	scores, preds, _ := testPool(40, 9)
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	m := newTestManager(clock)
	s, err := m.Create(Config{
		Scores: scores, Preds: preds, Calibrated: true,
		Options:  oasis.Options{Strata: 5, Seed: 1},
		LeaseTTL: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}

	first, err := s.Propose(40)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != 40 {
		t.Fatalf("proposed %d of 40 pool pairs", len(first))
	}
	again, err := s.Propose(40)
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != 0 {
		t.Fatalf("re-proposed %d pairs while all leases live", len(again))
	}

	now = now.Add(11 * time.Second) // every lease expires
	reproposed, err := s.Propose(40)
	if err != nil {
		t.Fatal(err)
	}
	if len(reproposed) != 40 {
		t.Fatalf("only %d of 40 pairs returned to the pool after expiry", len(reproposed))
	}
	if st := s.Status(); st.PendingProposals != 40 {
		t.Fatalf("pending = %d, want 40", st.PendingProposals)
	}

	// Expire the fresh leases too, then answer late: rejected.
	now = now.Add(11 * time.Second)
	if err := s.Commit(reproposed[0].Pair, true); !errors.Is(err, ErrNotProposed) {
		t.Fatalf("late commit: got %v, want ErrNotProposed", err)
	}
	if st := s.Status(); st.LabelsCommitted != 0 {
		t.Fatalf("late commit changed label count: %d", st.LabelsCommitted)
	}
}

// TestSnapshotRestore checks the snapshot round trip: estimates are equal
// after restore, and the restored session continues the random stream
// exactly — identical future proposals and estimates.
func TestSnapshotRestore(t *testing.T) {
	for _, method := range []MethodKind{MethodOASIS, MethodPassive} {
		t.Run(string(method), func(t *testing.T) {
			scores, preds, truth := testPool(2500, 21)
			cfg := Config{
				ID: "snap", Method: method,
				Scores: scores, Preds: preds, Calibrated: true,
				Options: oasis.Options{Strata: 15, Seed: 77},
			}
			m := newTestManager(nil)
			s, err := m.Create(cfg)
			if err != nil {
				t.Fatal(err)
			}
			label := func(s *Session, n int) {
				t.Helper()
				for i := 0; i < n; i++ {
					props, err := s.Propose(4)
					if err != nil {
						t.Fatal(err)
					}
					for _, pr := range props {
						if err := s.Commit(pr.Pair, truth[pr.Pair]); err != nil {
							t.Fatal(err)
						}
					}
				}
			}
			label(s, 25)

			// Leave one proposal dangling: the snapshot is exact, so it must
			// survive the restore as a live (re-leased) proposal.
			dangling, err := s.Propose(1)
			if err != nil {
				t.Fatal(err)
			}

			data, err := m.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			m2 := newTestManager(nil)
			if err := m2.Restore(data); err != nil {
				t.Fatal(err)
			}
			r, err := m2.Get("snap")
			if err != nil {
				t.Fatal(err)
			}

			if got, want := r.Estimate(), s.Estimate(); got != want && !(math.IsNaN(got) && math.IsNaN(want)) {
				t.Fatalf("restored estimate %v, want %v", got, want)
			}
			if st := r.Status(); st.PendingProposals != len(dangling) {
				t.Fatalf("restored session has %d pending proposals, want %d", st.PendingProposals, len(dangling))
			}
			// The restored lease is live: its label commits on both sides.
			for _, pr := range dangling {
				if err := r.Commit(pr.Pair, truth[pr.Pair]); err != nil {
					t.Fatalf("commit of restored proposal: %v", err)
				}
				if err := s.Commit(pr.Pair, truth[pr.Pair]); err != nil {
					t.Fatal(err)
				}
			}
			label(s, 10)
			label(r, 10)
			if got, want := r.Estimate(), s.Estimate(); got != want {
				t.Fatalf("post-restore estimate diverged: %v vs %v", got, want)
			}
			if got, want := r.Status().LabelsCommitted, s.Status().LabelsCommitted; got != want {
				t.Fatalf("post-restore label count diverged: %d vs %d", got, want)
			}
		})
	}
}

// TestPoolExhaustion checks Propose turns terminal once the whole pool is
// labelled, even with an unlimited budget — pollers must not livelock.
func TestPoolExhaustion(t *testing.T) {
	scores, preds, truth := testPool(25, 17)
	m := newTestManager(nil)
	s, err := m.Create(Config{
		Scores: scores, Preds: preds, Calibrated: true,
		Options: oasis.Options{Strata: 4, Seed: 6},
	})
	if err != nil {
		t.Fatal(err)
	}
	labelled := 0
	for {
		props, err := s.Propose(10)
		if errors.Is(err, ErrBudgetExhausted) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		for _, pr := range props {
			if err := s.Commit(pr.Pair, truth[pr.Pair]); err != nil {
				t.Fatal(err)
			}
			labelled++
		}
	}
	if labelled != 25 {
		t.Fatalf("labelled %d of 25 pairs before exhaustion", labelled)
	}
}

// TestRestoreRejectsDuplicateIDs checks a snapshot containing the same
// session ID twice aborts instead of silently overwriting state.
func TestRestoreRejectsDuplicateIDs(t *testing.T) {
	scores, preds, _ := testPool(200, 19)
	m := newTestManager(nil)
	if _, err := m.Create(Config{
		ID: "dup", Scores: scores, Preds: preds, Calibrated: true,
		Options: oasis.Options{Strata: 4, Seed: 1},
	}); err != nil {
		t.Fatal(err)
	}
	data, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	var file struct {
		Version  int               `json:"version"`
		Sessions []json.RawMessage `json:"sessions"`
	}
	if err := json.Unmarshal(data, &file); err != nil {
		t.Fatal(err)
	}
	file.Sessions = append(file.Sessions, file.Sessions[0])
	doubled, err := json.Marshal(file)
	if err != nil {
		t.Fatal(err)
	}
	m2 := newTestManager(nil)
	if err := m2.Restore(doubled); err == nil {
		t.Fatal("restore of duplicate-ID snapshot succeeded")
	}
	if m2.Len() != 0 {
		t.Fatalf("aborted restore registered %d sessions", m2.Len())
	}
}

// TestBudgetEnforcement checks Propose never leases beyond the budget and
// terminates with ErrBudgetExhausted.
func TestBudgetEnforcement(t *testing.T) {
	scores, preds, truth := testPool(800, 13)
	m := newTestManager(nil)
	s, err := m.Create(Config{
		Scores: scores, Preds: preds, Calibrated: true,
		Options: oasis.Options{Strata: 10, Seed: 2},
		Budget:  25,
	})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for {
		props, err := s.Propose(10)
		if errors.Is(err, ErrBudgetExhausted) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		total += len(props)
		for _, pr := range props {
			if err := s.Commit(pr.Pair, truth[pr.Pair]); err != nil {
				t.Fatal(err)
			}
		}
	}
	if total != 25 {
		t.Fatalf("leased %d pairs, want exactly the budget 25", total)
	}
	if st := s.Status(); st.Remaining != 0 {
		t.Fatalf("remaining = %d, want 0", st.Remaining)
	}
}

// blockingJournal is a Journal stub whose create appends stall until
// released — a slow fsync frozen mid-flight, so tests can observe the gap
// between a create's journal append and its registration.
type blockingJournal struct {
	entered chan struct{} // receives when a create append begins
	release chan struct{} // closed to let the stalled append finish
	mu      sync.Mutex
	lsn     uint64
}

func (b *blockingJournal) Append(ev *Event) (uint64, error) {
	if ev.Type == EventCreate {
		b.entered <- struct{}{}
		<-b.release
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.lsn++
	ev.LSN = b.lsn
	return b.lsn, nil
}

func (b *blockingJournal) Err() error { return nil }

// TestCreateBarrierWaitsForInflightCreate pins the ordering contract WAL
// compaction relies on: CreateBarrier must not return while a Create sits
// between its journal append and its registration — a snapshot taken in
// that gap would miss a session whose create record compaction is about to
// fold away and delete, silently losing the acknowledged session.
func TestCreateBarrierWaitsForInflightCreate(t *testing.T) {
	scores, preds, _ := testPool(50, 1)
	jrn := &blockingJournal{entered: make(chan struct{}), release: make(chan struct{})}
	m := NewManager(ManagerOptions{Journal: jrn})

	created := make(chan error, 1)
	go func() {
		_, err := m.Create(Config{
			ID: "inflight", Scores: scores, Preds: preds, Calibrated: true,
			Options: oasis.Options{Strata: 4, Seed: 3},
		})
		created <- err
	}()
	<-jrn.entered // the create event is journaling; the session is not yet registered

	barrier := make(chan struct{})
	go func() {
		m.CreateBarrier()
		close(barrier)
	}()
	select {
	case <-barrier:
		t.Fatal("CreateBarrier returned while a journaled create was still unregistered")
	case <-time.After(50 * time.Millisecond):
	}

	close(jrn.release)
	if err := <-created; err != nil {
		t.Fatal(err)
	}
	<-barrier

	// The snapshot a compaction takes after the barrier holds the session.
	data, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	var file snapshotFile
	if err := json.Unmarshal(data, &file); err != nil {
		t.Fatal(err)
	}
	if len(file.Sessions) != 1 || file.Sessions[0].Config.ID != "inflight" {
		t.Fatalf("snapshot after the barrier misses the in-flight create: %+v", file.Sessions)
	}
}
