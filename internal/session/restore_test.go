package session

// Error-path coverage for Manager.Restore: corrupt JSON, truncated
// payloads, version skew and ID collisions must reject the snapshot and
// leave the manager exactly as it was — oasis-server restores snapshots
// from disk at startup, so a damaged file must never half-apply.

import (
	"fmt"
	"strings"
	"testing"

	"oasis"
)

// restoreFixture returns a manager holding one live session plus a snapshot
// of a second manager whose session ID clashes with nothing.
func restoreFixture(t *testing.T) (m *Manager, preEstimate float64) {
	t.Helper()
	scores, preds, truth := testPool(400, 31)
	m = newTestManager(nil)
	s, err := m.Create(Config{
		ID: "existing", Scores: scores, Preds: preds, Calibrated: true,
		Options: oasis.Options{Strata: 5, Seed: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		props, err := s.Propose(2)
		if err != nil {
			t.Fatal(err)
		}
		for _, pr := range props {
			if err := s.Commit(pr.Pair, truth[pr.Pair]); err != nil {
				t.Fatal(err)
			}
		}
	}
	return m, s.Estimate()
}

// requireUnmodified checks the fixture manager still holds exactly its
// original, fully functional session.
func requireUnmodified(t *testing.T, m *Manager, preEstimate float64) {
	t.Helper()
	if m.Len() != 1 {
		t.Fatalf("manager has %d sessions after failed restore, want 1", m.Len())
	}
	s, err := m.Get("existing")
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Estimate(); got != preEstimate {
		t.Fatalf("existing session's estimate changed: %v -> %v", preEstimate, got)
	}
	if props, err := s.Propose(1); err != nil || len(props) != 1 {
		t.Fatalf("existing session unusable after failed restore: %d proposals, err %v", len(props), err)
	}
}

func TestRestoreCorruptJSON(t *testing.T) {
	m, pre := restoreFixture(t)
	if err := m.Restore([]byte(`{"version": 1, "sessions": [{"config"`)); err == nil {
		t.Fatal("restore accepted corrupt JSON")
	}
	requireUnmodified(t, m, pre)
}

func TestRestoreTruncatedPayload(t *testing.T) {
	m, pre := restoreFixture(t)
	data, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{1, len(data) / 2, len(data) - 3} {
		if err := m.Restore(data[:cut]); err == nil {
			t.Fatalf("restore accepted a payload truncated to %d of %d bytes", cut, len(data))
		}
	}
	requireUnmodified(t, m, pre)
}

func TestRestoreBadVersion(t *testing.T) {
	m, pre := restoreFixture(t)
	if err := m.Restore([]byte(`{"version": 99, "sessions": []}`)); err == nil ||
		!strings.Contains(err.Error(), "version") {
		t.Fatalf("restore of unsupported version: err = %v", err)
	}
	requireUnmodified(t, m, pre)
}

func TestRestoreClashingIDLeavesManagerUnmodified(t *testing.T) {
	m, pre := restoreFixture(t)
	// Snapshot a different manager whose session reuses the live ID.
	scores, preds, _ := testPool(200, 33)
	other := newTestManager(nil)
	if _, err := other.Create(Config{
		ID: "existing", Scores: scores, Preds: preds, Calibrated: true,
		Options: oasis.Options{Strata: 4, Seed: 9},
	}); err != nil {
		t.Fatal(err)
	}
	// Add a second, non-clashing session: the abort must be all-or-nothing,
	// so not even this one may be registered.
	if _, err := other.Create(Config{
		ID: "innocent", Scores: scores, Preds: preds, Calibrated: true,
		Options: oasis.Options{Strata: 4, Seed: 10},
	}); err != nil {
		t.Fatal(err)
	}
	data, err := other.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Restore(data); err == nil {
		t.Fatal("restore accepted a snapshot with a clashing session ID")
	}
	if _, err := m.Get("innocent"); err == nil {
		t.Fatal("aborted restore still registered the non-clashing session")
	}
	requireUnmodified(t, m, pre)
}

// TestRestoreRejectsBogusLeases checks lease validation: out-of-range,
// duplicate, and already-labelled lease pairs must reject the snapshot.
func TestRestoreRejectsBogusLeases(t *testing.T) {
	m, pre := restoreFixture(t)
	scores, preds, truth := testPool(200, 37)
	other := newTestManager(nil)
	s, err := other.Create(Config{
		ID: "leasy", Scores: scores, Preds: preds, Calibrated: true,
		Options: oasis.Options{Strata: 4, Seed: 13},
	})
	if err != nil {
		t.Fatal(err)
	}
	props, err := s.Propose(2)
	if err != nil || len(props) != 2 {
		t.Fatalf("propose: %d proposals, err %v", len(props), err)
	}
	if err := s.Commit(props[0].Pair, truth[props[0].Pair]); err != nil {
		t.Fatal(err)
	}
	data, err := other.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	leased, labelled := props[1].Pair, props[0].Pair
	orig := fmt.Sprintf(`"leases":[%d]`, leased)
	if !strings.Contains(string(data), orig) {
		t.Fatalf("fixture snapshot missing expected lease list %s", orig)
	}
	for _, bad := range []string{
		`"leases":[999999]`,
		fmt.Sprintf(`"leases":[%d,%d]`, leased, leased),
		fmt.Sprintf(`"leases":[%d]`, labelled),
	} {
		if err := m.Restore([]byte(strings.Replace(string(data), orig, bad, 1))); err == nil {
			t.Fatalf("restore accepted snapshot with %s", bad)
		}
	}
	requireUnmodified(t, m, pre)

	// The unmodified snapshot restores, lease intact and committable.
	if err := m.Restore(data); err != nil {
		t.Fatal(err)
	}
	r, err := m.Get("leasy")
	if err != nil {
		t.Fatal(err)
	}
	if st := r.Status(); st.PendingProposals != 1 {
		t.Fatalf("restored session has %d pending proposals, want 1", st.PendingProposals)
	}
	if err := r.Commit(leased, truth[leased]); err != nil {
		t.Fatalf("commit of restored lease: %v", err)
	}
}

// TestRestoreCorruptSessionStateMidList corrupts the second session's
// sampler state: the abort must happen before any registration.
func TestRestoreCorruptSessionStateMidList(t *testing.T) {
	m, pre := restoreFixture(t)
	scores, preds, truth := testPool(200, 35)
	other := newTestManager(nil)
	for _, id := range []string{"a", "b"} {
		s, err := other.Create(Config{
			ID: id, Scores: scores, Preds: preds, Calibrated: true,
			Options: oasis.Options{Strata: 4, Seed: 11},
		})
		if err != nil {
			t.Fatal(err)
		}
		if id == "b" {
			// Give only "b" a committed label, so the snapshot's single
			// labels map belongs to the second session in the file.
			props, err := s.Propose(1)
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Commit(props[0].Pair, truth[props[0].Pair]); err != nil {
				t.Fatal(err)
			}
		}
	}
	data, err := other.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	// A label outside the pool is structurally valid JSON but must be
	// rejected by the sampler's own validation.
	corrupt := strings.Replace(string(data), `"labels":{"`, `"labels":{"999999":true,"`, 1)
	if corrupt == string(data) {
		t.Fatal("fixture snapshot has no labels map to corrupt")
	}
	if err := m.Restore([]byte(corrupt)); err == nil {
		t.Fatal("restore accepted a snapshot with corrupt session state")
	}
	if _, err := m.Get("a"); err == nil {
		t.Fatal("aborted restore registered a session before the corrupt one")
	}
	requireUnmodified(t, m, pre)
}
