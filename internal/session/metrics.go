package session

import (
	"fmt"
	"strconv"

	"oasis/internal/obs"
)

// ShardMetrics holds the hot-path instruments of one manager shard. All
// instruments are updated lock-free; sessions carry a pointer to their
// shard's metrics (nil when metrics are disabled) and skip the timing
// calls entirely in that case.
type ShardMetrics struct {
	Creates         *obs.Counter
	Deletes         *obs.Counter
	ProposedPairs   *obs.Counter
	LabelsCommitted *obs.Counter
	LeaseExpiries   *obs.Counter

	CreateSeconds  *obs.Histogram
	ProposeSeconds *obs.Histogram
	CommitSeconds  *obs.Histogram
}

// Metrics is the per-shard instrumentation of a Manager, registered once
// against an obs.Registry at wiring time. It must be built with the same
// shard count the Manager is configured with.
type Metrics struct {
	shards []ShardMetrics
}

// NewMetrics registers the session metric families for the given shard
// count (normalised exactly as ManagerOptions.Shards is).
func NewMetrics(reg *obs.Registry, shards int) *Metrics {
	shards = NormalizeShards(shards)
	m := &Metrics{shards: make([]ShardMetrics, shards)}
	for i := range m.shards {
		l := obs.Label{Name: "shard", Value: strconv.Itoa(i)}
		m.shards[i] = ShardMetrics{
			Creates:         reg.Counter("oasis_session_creates_total", "Sessions created, per manager shard.", l),
			Deletes:         reg.Counter("oasis_session_deletes_total", "Sessions deleted, per manager shard.", l),
			ProposedPairs:   reg.Counter("oasis_session_proposed_pairs_total", "Pairs leased out by Propose, per manager shard.", l),
			LabelsCommitted: reg.Counter("oasis_session_labels_committed_total", "Fresh labels committed, per manager shard.", l),
			LeaseExpiries:   reg.Counter("oasis_session_lease_expiries_total", "Proposal leases expired back to the pool, per manager shard.", l),
			CreateSeconds:   reg.Histogram("oasis_session_create_seconds", "Session create latency (pool resolve, stratify, journal).", nil, l),
			ProposeSeconds:  reg.Histogram("oasis_session_propose_seconds", "Propose batch latency.", nil, l),
			CommitSeconds:   reg.Histogram("oasis_session_commit_seconds", "Commit batch latency.", nil, l),
		}
	}
	return m
}

// Shards returns the shard count the metrics were built for.
func (m *Metrics) Shards() int {
	if m == nil {
		return 0
	}
	return len(m.shards)
}

// Shard returns the instruments of shard i, or nil when m is nil.
func (m *Metrics) Shard(i int) *ShardMetrics {
	if m == nil {
		return nil
	}
	return &m.shards[i]
}

// checkShards panics when the metrics were built for a different shard
// count than the manager: the per-shard series would silently misattribute.
func (m *Metrics) checkShards(shards int) {
	if m != nil && len(m.shards) != shards {
		panic(fmt.Sprintf("session: Metrics built for %d shards, manager has %d", len(m.shards), shards))
	}
}
