package session

// Tests of the convergence-diagnostics plumbing: the per-session series
// must survive a manager snapshot byte-for-byte, stay coherent under
// concurrent scrapes while commits are in flight (the -race gate for the
// diagnostics rings), and the degeneracy alarm must log and export its
// transitions.

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"oasis"
	"oasis/internal/diag"
)

// driveCommits proposes batches of n and commits every proposal with the
// truth labels, for the given number of rounds.
func driveCommits(t *testing.T, s *Session, rounds, n int, truth []bool) {
	t.Helper()
	for i := 0; i < rounds; i++ {
		props, err := s.Propose(n)
		if err != nil {
			t.Fatal(err)
		}
		pairs := make([]int, len(props))
		labels := make([]bool, len(props))
		for j, p := range props {
			pairs[j] = p.Pair
			labels[j] = truth[p.Pair]
		}
		if _, err := s.CommitBatch(pairs, labels); err != nil {
			t.Fatal(err)
		}
	}
}

// TestDiagnosticsSnapshotRoundTrip drives enough commit batches to force
// at least one downsampling compaction, snapshots the manager, and checks
// the restored session serves a byte-identical diagnostics payload — then
// drives both sessions onward and checks they stay identical, proving the
// restored tracker resumes mid-stride rather than restarting.
func TestDiagnosticsSnapshotRoundTrip(t *testing.T) {
	scores, preds, truth := testPool(3000, 17)
	// A frozen clock keeps the wall column identical across both managers;
	// wall-time reproducibility across replay is the WAL tests' business
	// (replay re-stamps points from the journaled event timestamps).
	clock := func() time.Time { return time.Unix(5000, 0) }
	m := NewManager(ManagerOptions{
		Now:  clock,
		Diag: DiagOptions{SeriesCapacity: 16}, // small ring: compactions guaranteed
	})
	s, err := m.Create(Config{
		ID: "d", Scores: scores, Preds: preds, Calibrated: true,
		Options: oasis.Options{Strata: 8, Seed: 23},
	})
	if err != nil {
		t.Fatal(err)
	}
	driveCommits(t, s, 40, 2, truth)
	if s.Diagnostics().SeriesStride < 2 {
		t.Fatalf("fixture did not force a compaction: stride %d", s.Diagnostics().SeriesStride)
	}

	data, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	m2 := NewManager(ManagerOptions{
		Now:  clock,
		Diag: DiagOptions{SeriesCapacity: 16},
	})
	if err := m2.Restore(data); err != nil {
		t.Fatal(err)
	}
	r, err := m2.Get("d")
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(s.Diagnostics())
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.Marshal(r.Diagnostics())
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("restored diagnostics diverge:\n got %s\nwant %s", got, want)
	}

	// Continue both sides: identical seeds draw identical pairs, so the
	// series must continue in lockstep, including further compactions.
	driveCommits(t, s, 30, 2, truth)
	driveCommits(t, r, 30, 2, truth)
	want, _ = json.Marshal(s.Diagnostics())
	got, _ = json.Marshal(r.Diagnostics())
	if string(got) != string(want) {
		t.Fatalf("diagnostics diverge after continued commits:\n got %s\nwant %s", got, want)
	}
}

// TestDiagnosticsScrapeWhileCommit hammers Diagnostics, SamplerHealth and
// DiagMemBytes from scraper goroutines while workers propose and commit —
// the acceptance gate for go test -race over the diagnostics rings.
func TestDiagnosticsScrapeWhileCommit(t *testing.T) {
	scores, preds, truth := testPool(5000, 19)
	m := newTestManager(nil)
	s, err := m.Create(Config{
		ID: "stress", Scores: scores, Preds: preds, Calibrated: true,
		Options: oasis.Options{Strata: 10, Seed: 29},
		Budget:  600,
	})
	if err != nil {
		t.Fatal(err)
	}

	var done atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !done.Load() {
				d := s.Diagnostics()
				// The labels axis of the retained series must be monotone
				// non-decreasing no matter when the scrape lands.
				for i := 1; i < len(d.Series); i++ {
					if d.Series[i].Labels < d.Series[i-1].Labels {
						t.Errorf("series labels axis not monotone: %d after %d",
							d.Series[i].Labels, d.Series[i-1].Labels)
						return
					}
				}
				if _, err := json.Marshal(d); err != nil {
					t.Errorf("diagnostics marshal: %v", err)
					return
				}
				_ = s.SamplerHealth()
				_ = s.DiagMemBytes()
			}
		}()
	}
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !done.Load() {
				props, err := s.Propose(3)
				if err != nil || len(props) == 0 {
					return
				}
				for _, p := range props {
					if err := s.Commit(p.Pair, truth[p.Pair]); err != nil {
						return
					}
				}
			}
		}()
	}
	time.Sleep(150 * time.Millisecond)
	done.Store(true)
	wg.Wait()

	d := s.Diagnostics()
	if d.SeriesSeen == 0 || len(d.Series) == 0 {
		t.Fatalf("no diagnostics recorded under stress: seen=%d len=%d", d.SeriesSeen, len(d.Series))
	}
}

// TestDiagnosticsAlarmLogsTransition forces a degraded transition with an
// unreachable ESS threshold and checks it is logged exactly once and
// reflected in SamplerHealth and Diagnostics.
func TestDiagnosticsAlarmLogsTransition(t *testing.T) {
	scores, preds, truth := testPool(1500, 23)
	var mu sync.Mutex
	var lines []string
	m := NewManager(ManagerOptions{
		Diag: DiagOptions{
			Thresholds: diag.Thresholds{ESSDegraded: 0.9999, ESSDegenerate: -1, MinLabels: 5},
			Logf: func(format string, args ...any) {
				mu.Lock()
				lines = append(lines, fmt.Sprintf(format, args...))
				mu.Unlock()
			},
		},
	})
	s, err := m.Create(Config{
		ID: "alarm", Scores: scores, Preds: preds, Calibrated: true,
		Options: oasis.Options{Strata: 6, Seed: 31},
	})
	if err != nil {
		t.Fatal(err)
	}
	driveCommits(t, s, 20, 2, truth)

	if st := s.SamplerHealth().State; st != diag.StateDegraded {
		t.Fatalf("alarm state = %v, want degraded", st)
	}
	if d := s.Diagnostics(); d.State != "degraded" {
		t.Fatalf("diagnostics state = %q, want degraded", d.State)
	}
	mu.Lock()
	defer mu.Unlock()
	var transitions int
	for _, l := range lines {
		if strings.Contains(l, "ok -> degraded") {
			transitions++
		}
	}
	if transitions != 1 {
		t.Fatalf("degraded transition logged %d times, want exactly 1 (lines: %q)", transitions, lines)
	}
}

// TestDiagnosticsStrataBlock checks the per-stratum block: OASIS sessions
// expose one entry per stratum with coherent shares; passive sessions omit
// the block entirely.
func TestDiagnosticsStrataBlock(t *testing.T) {
	scores, preds, truth := testPool(2000, 29)
	m := newTestManager(nil)
	so, err := m.Create(Config{
		ID: "o", Scores: scores, Preds: preds, Calibrated: true,
		Options: oasis.Options{Strata: 7, Seed: 37},
	})
	if err != nil {
		t.Fatal(err)
	}
	sp, err := m.Create(Config{
		ID: "p", Method: MethodPassive, Scores: scores, Preds: preds, Calibrated: true,
		Options: oasis.Options{Strata: 7, Seed: 37},
	})
	if err != nil {
		t.Fatal(err)
	}
	driveCommits(t, so, 30, 2, truth)
	driveCommits(t, sp, 30, 2, truth)

	d := so.Diagnostics()
	if len(d.Strata) != 7 {
		t.Fatalf("oasis diagnostics carry %d strata, want 7", len(d.Strata))
	}
	var draws int64
	var weightShare float64
	for _, sh := range d.Strata {
		draws += sh.Draws
		if sh.Draws > 0 && !(sh.ESS > 0) {
			t.Fatalf("stratum %d has %d draws but ESS %v", sh.Stratum, sh.Draws, sh.ESS)
		}
		if !isNaN(float64(sh.WeightShare)) {
			weightShare += float64(sh.WeightShare)
		}
	}
	if draws == 0 {
		t.Fatal("no per-stratum draws recorded")
	}
	if weightShare < 0.999 || weightShare > 1.001 {
		t.Fatalf("weight shares sum to %v, want 1", weightShare)
	}
	if dp := sp.Diagnostics(); len(dp.Strata) != 0 {
		t.Fatalf("passive diagnostics carry %d strata, want none", len(dp.Strata))
	}
}

func isNaN(f float64) bool { return f != f }
