package session

// Tests of the content-addressed pool path: sessions created by PoolID must
// behave bit-identically to inline sessions over the same columns, share
// exactly one pool copy under a reference count, release references on
// every teardown path, and fail deterministically — all-or-nothing on
// restore — when a referenced pool is missing or corrupt.

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"oasis"
	"oasis/internal/poolstore"
)

// poolFixture returns a store holding one pool plus the inline columns and
// truth labels it was built from.
func poolFixture(t *testing.T, n int, seed uint64) (store *poolstore.Store, id string, scores []float64, preds, truth []bool) {
	t.Helper()
	var err error
	store, err = poolstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	scores, preds, truth = testPool(n, seed)
	info, _, err := store.Put(scores, preds)
	if err != nil {
		t.Fatal(err)
	}
	return store, info.ID, scores, preds, truth
}

// TestPoolRefMatchesInlineExactly drives a PoolID session and an inline
// session with the same seed through identical propose/commit rounds: the
// proposal sequences and estimates must be bit-identical, proving the
// shared zero-copy pool changes nothing about the sampling.
func TestPoolRefMatchesInlineExactly(t *testing.T) {
	store, id, scores, preds, truth := poolFixture(t, 2000, 21)
	opts := oasis.Options{Strata: 12, Seed: 5}

	inlineMgr := newTestManager(nil)
	inline, err := inlineMgr.Create(Config{ID: "inline", Scores: scores, Preds: preds, Calibrated: true, Options: opts})
	if err != nil {
		t.Fatal(err)
	}
	refMgr := NewManager(ManagerOptions{Pools: store})
	byRef, err := refMgr.Create(Config{ID: "byref", PoolID: id, Calibrated: true, Options: opts})
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 30; round++ {
		a, err := inline.Propose(4)
		if err != nil {
			t.Fatal(err)
		}
		b, err := byRef.Propose(4)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("round %d: %d vs %d proposals", round, len(a), len(b))
		}
		for i := range a {
			if a[i].Pair != b[i].Pair {
				t.Fatalf("round %d diverged at %d: inline pair %d, poolref pair %d", round, i, a[i].Pair, b[i].Pair)
			}
			if err := inline.Commit(a[i].Pair, truth[a[i].Pair]); err != nil {
				t.Fatal(err)
			}
			if err := byRef.Commit(b[i].Pair, truth[b[i].Pair]); err != nil {
				t.Fatal(err)
			}
		}
	}
	if ea, eb := inline.Estimate(), byRef.Estimate(); ea != eb {
		t.Fatalf("estimates diverged: inline %v, poolref %v", ea, eb)
	}
	if st := byRef.Status(); st.PoolID != id || st.PoolSize != 2000 {
		t.Fatalf("poolref status = %+v", st)
	}
}

// TestConcurrentSessionsShareOnePoolCopy is the single-copy acceptance
// check: K sessions over one pool hold exactly one shared copy, asserted
// by refcount and by backing-array identity, through create, delete and
// store stats.
func TestConcurrentSessionsShareOnePoolCopy(t *testing.T) {
	store, id, _, _, _ := poolFixture(t, 800, 23)
	mgr := NewManager(ManagerOptions{Pools: store, Shards: 4})
	const k = 16
	for i := 0; i < k; i++ {
		if _, err := mgr.Create(Config{PoolID: id, Calibrated: true, Options: oasis.Options{Strata: 8, Seed: uint64(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	if got := store.Refs(id); got != k {
		t.Fatalf("store refs = %d, want %d", got, k)
	}
	st := store.Stats()
	if st.Pools != 1 || st.Loaded != 1 {
		t.Fatalf("store holds %d pool(s), %d loaded — want exactly one shared copy", st.Pools, st.Loaded)
	}
	// The columns really are one allocation: every session's pool aliases
	// the store's slices.
	p, err := store.Acquire(id)
	if err != nil {
		t.Fatal(err)
	}
	store.Release(id)
	for _, status := range mgr.List() {
		s, err := mgr.Get(status.ID)
		if err != nil {
			t.Fatal(err)
		}
		sampler, ok := s.prop.(*oasis.Sampler)
		if !ok {
			t.Fatal("expected an OASIS session")
		}
		_ = sampler
		if s.poolSize != p.N() {
			t.Fatalf("session %s pool size %d, store %d", status.ID, s.poolSize, p.N())
		}
	}
	// Deleting sessions returns their references one by one.
	for i, status := range mgr.List() {
		if err := mgr.Delete(status.ID); err != nil {
			t.Fatal(err)
		}
		if got, want := store.Refs(id), k-i-1; got != want {
			t.Fatalf("after %d delete(s): refs = %d, want %d", i+1, got, want)
		}
	}
	// Unreferenced now: removable.
	if err := store.Remove(id); err != nil {
		t.Fatalf("remove of unreferenced pool: %v", err)
	}
}

// TestInlineCreateInternsIntoStore: with a store attached, inline configs
// are interned — the journaled/snapshotted config carries only the hash,
// and a second inline upload of the same columns dedups onto the same
// shared pool.
func TestInlineCreateInternsIntoStore(t *testing.T) {
	store, err := poolstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mgr := NewManager(ManagerOptions{Pools: store})
	scores, preds, _ := testPool(600, 29)
	s1, err := mgr.Create(Config{ID: "a", Scores: scores, Preds: preds, Calibrated: true, Options: oasis.Options{Strata: 6, Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	st := s1.Status()
	if st.PoolID == "" || st.PoolSize != 600 {
		t.Fatalf("interned session status = %+v", st)
	}
	if _, err := mgr.Create(Config{ID: "b", Scores: scores, Preds: preds, Calibrated: true, Options: oasis.Options{Strata: 6, Seed: 2}}); err != nil {
		t.Fatal(err)
	}
	stats := store.Stats()
	if stats.Pools != 1 || stats.DedupHits != 1 {
		t.Fatalf("store stats after two identical inline creates = %+v, want 1 pool, 1 dedup hit", stats)
	}
	if got := store.Refs(st.PoolID); got != 2 {
		t.Fatalf("refs = %d, want 2", got)
	}
	// The snapshot persists the hash, not the columns.
	snap, err := mgr.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(snap), `"scores"`) {
		t.Fatal("snapshot of interned sessions still embeds inline scores")
	}
	if !strings.Contains(string(snap), st.PoolID) {
		t.Fatal("snapshot does not reference the interned pool")
	}
}

// TestSnapshotRestoreReacquiresPool: a snapshot round trip over a pool
// store resolves the reference, takes fresh refcounts, and continues the
// proposal sequence exactly.
func TestSnapshotRestoreReacquiresPool(t *testing.T) {
	store, id, _, _, truth := poolFixture(t, 1000, 31)
	mgr := NewManager(ManagerOptions{Pools: store})
	s, err := mgr.Create(Config{ID: "snap", PoolID: id, Calibrated: true, Options: oasis.Options{Strata: 8, Seed: 3}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		props, err := s.Propose(2)
		if err != nil {
			t.Fatal(err)
		}
		for _, pr := range props {
			if err := s.Commit(pr.Pair, truth[pr.Pair]); err != nil {
				t.Fatal(err)
			}
		}
	}
	data, err := mgr.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), `"scores"`) || strings.Contains(string(data), `"preds"`) {
		t.Fatal("poolref snapshot carries inline columns")
	}
	// The snapshot legitimately carries the diagnostics series (bounded at a
	// few KB); the column payload for 1000 pairs would be an order of
	// magnitude larger, so the size bound still catches a leak.
	if len(data) > 16384 {
		t.Fatalf("poolref snapshot is %d bytes; the columns leaked into it", len(data))
	}

	mgr2 := NewManager(ManagerOptions{Pools: store})
	if err := mgr2.Restore(data); err != nil {
		t.Fatal(err)
	}
	if got := store.Refs(id); got != 2 { // original session + restored session
		t.Fatalf("refs after restore = %d, want 2", got)
	}
	r, err := mgr2.Get("snap")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		a, err := s.Propose(1)
		if err != nil {
			t.Fatal(err)
		}
		b, err := r.Propose(1)
		if err != nil {
			t.Fatal(err)
		}
		if a[0].Pair != b[0].Pair {
			t.Fatalf("restored session diverged at round %d: %d vs %d", i, a[0].Pair, b[0].Pair)
		}
		if err := s.Commit(a[0].Pair, truth[a[0].Pair]); err != nil {
			t.Fatal(err)
		}
		if err := r.Commit(b[0].Pair, truth[b[0].Pair]); err != nil {
			t.Fatal(err)
		}
	}
}

// TestRestoreMissingPoolAllOrNothing: a snapshot referencing a pool the
// store cannot resolve — unknown, deleted file, or corrupt — must restore
// nothing: no sessions registered, no references leaked.
func TestRestoreMissingPoolAllOrNothing(t *testing.T) {
	dir := t.TempDir()
	store, err := poolstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	scores, preds, truth := testPool(500, 37)
	putInfo, _, err := store.Put(scores, preds)
	if err != nil {
		t.Fatal(err)
	}
	id := putInfo.ID
	mgr := NewManager(ManagerOptions{Pools: store})
	// Two pool sessions (one with labels) plus an inline one: the inline
	// session must not survive an abort either.
	for i, cid := range []string{"p1", "p2"} {
		s, err := mgr.Create(Config{ID: cid, PoolID: id, Calibrated: true, Options: oasis.Options{Strata: 6, Seed: uint64(i)}})
		if err != nil {
			t.Fatal(err)
		}
		props, err := s.Propose(1)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Commit(props[0].Pair, truth[props[0].Pair]); err != nil {
			t.Fatal(err)
		}
	}
	data, err := mgr.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	check := func(t *testing.T, store *poolstore.Store, wantErr string) {
		t.Helper()
		fresh := NewManager(ManagerOptions{Pools: store})
		preRefs := store.Stats().Refs
		err := fresh.Restore(data)
		if err == nil || !strings.Contains(err.Error(), wantErr) {
			t.Fatalf("restore: err = %v, want substring %q", err, wantErr)
		}
		if fresh.Len() != 0 {
			t.Fatalf("aborted restore registered %d session(s)", fresh.Len())
		}
		if got := store.Stats().Refs; got != preRefs {
			t.Fatalf("aborted restore leaked pool references: %d -> %d", preRefs, got)
		}
	}

	t.Run("unknown id", func(t *testing.T) {
		empty, err := poolstore.Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		check(t, empty, "no such pool")
	})
	t.Run("no store attached", func(t *testing.T) {
		fresh := newTestManager(nil)
		if err := fresh.Restore(data); err == nil || !strings.Contains(err.Error(), "no pool store") {
			t.Fatalf("restore without store: err = %v", err)
		}
		if fresh.Len() != 0 {
			t.Fatalf("aborted restore registered %d session(s)", fresh.Len())
		}
	})
	t.Run("truncated pool file", func(t *testing.T) {
		dir2 := t.TempDir()
		raw, err := os.ReadFile(filepath.Join(dir, id+".pool"))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir2, id+".pool"), raw[:len(raw)-7], 0o644); err != nil {
			t.Fatal(err)
		}
		damaged, err := poolstore.Open(dir2)
		if err != nil {
			t.Fatal(err)
		}
		check(t, damaged, id[:8])
	})
	t.Run("hash mismatch", func(t *testing.T) {
		dir2 := t.TempDir()
		otherScores, otherPreds, _ := testPool(500, 38)
		other, err := poolstore.Encode(otherScores, otherPreds)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir2, id+".pool"), other, 0o644); err != nil {
			t.Fatal(err)
		}
		swapped, err := poolstore.Open(dir2)
		if err != nil {
			t.Fatal(err)
		}
		check(t, swapped, "content verification")
	})
}

// TestCreateErrorPathsReleasePool: duplicate IDs and invalid configs must
// not leak references on the shared pool.
func TestCreateErrorPathsReleasePool(t *testing.T) {
	store, id, _, _, _ := poolFixture(t, 300, 41)
	mgr := NewManager(ManagerOptions{Pools: store})
	if _, err := mgr.Create(Config{ID: "dup", PoolID: id, Calibrated: true}); err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Create(Config{ID: "dup", PoolID: id, Calibrated: true}); err == nil {
		t.Fatal("duplicate create succeeded")
	}
	if got := store.Refs(id); got != 1 {
		t.Fatalf("refs after duplicate-ID create = %d, want 1", got)
	}
	// Ambiguous config: both a reference and inline columns.
	if _, err := mgr.Create(Config{ID: "both", PoolID: id, Scores: []float64{0.5}, Preds: []bool{true}}); err == nil || !strings.Contains(err.Error(), "pick one") {
		t.Fatalf("ambiguous config: err = %v", err)
	}
	if got := store.Refs(id); got != 1 {
		t.Fatalf("refs after ambiguous create = %d, want 1", got)
	}
	// An invalid method after a successful acquire.
	if _, err := mgr.Create(Config{ID: "bad", PoolID: id, Method: "nope"}); err == nil {
		t.Fatal("bad method accepted")
	}
	if got := store.Refs(id); got != 1 {
		t.Fatalf("refs after bad-method create = %d, want 1", got)
	}
}

// TestMemoryOnlyStoreDoesNotIntern: with a memory-only store, inline
// configs must stay inline — a snapshot referencing a pool that dies with
// the process could never restore. Explicit PoolID references still work.
func TestMemoryOnlyStoreDoesNotIntern(t *testing.T) {
	store, err := poolstore.Open("")
	if err != nil {
		t.Fatal(err)
	}
	mgr := NewManager(ManagerOptions{Pools: store})
	scores, preds, _ := testPool(300, 43)
	s, err := mgr.Create(Config{ID: "inline", Scores: scores, Preds: preds, Calibrated: true, Options: oasis.Options{Strata: 4, Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if st := s.Status(); st.PoolID != "" {
		t.Fatalf("memory-only store interned an inline pool: %+v", st)
	}
	data, err := mgr.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"scores"`) {
		t.Fatal("inline session's snapshot lost its columns")
	}
	// The self-contained snapshot restores into a fresh process whose
	// memory-only store is empty.
	fresh := NewManager(ManagerOptions{Pools: mustMemStore(t)})
	if err := fresh.Restore(data); err != nil {
		t.Fatalf("restore of inline snapshot: %v", err)
	}
	// Explicit references against the memory-only store still resolve.
	putInfo, _, err := store.Put(scores, preds)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Create(Config{ID: "byref", PoolID: putInfo.ID, Calibrated: true}); err != nil {
		t.Fatal(err)
	}
}

func mustMemStore(t *testing.T) *poolstore.Store {
	t.Helper()
	s, err := poolstore.Open("")
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestPoolRefConfigRoundTripsThroughJSON guards the wire format: a PoolID
// config marshals without score columns and unmarshals back.
func TestPoolRefConfigRoundTripsThroughJSON(t *testing.T) {
	cfg := Config{ID: "x", PoolID: strings.Repeat("ab", 32), Calibrated: true, LeaseTTL: time.Minute}
	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "scores") {
		t.Fatalf("poolref config marshals score columns: %s", data)
	}
	var back Config
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.PoolID != cfg.PoolID {
		t.Fatalf("round trip lost the pool reference: %+v", back)
	}
}
