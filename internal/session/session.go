// Package session keeps many concurrent OASIS evaluations alive behind a
// propose/commit protocol, turning the library's synchronous sampling loop
// into a long-lived labelling service.
//
// The paper's oracle is a costly external resource — a crowd — which in
// deployment answers asynchronously and in batches. A Session therefore
// splits Algorithm 3's iteration in two: Propose(n) draws a batch of n
// distinct unlabelled pairs from the current instrumental distribution and
// leases them to the caller, and Commit(pair, label) folds answers back into
// the Beta posteriors and the AIS estimate as they arrive, in any order.
// Leases expire: a proposal whose label never arrives returns to the
// proposable set after the session's lease TTL, so crashed or slow labellers
// cannot strand pairs. Sessions snapshot to JSON and restore losslessly, so
// a server restart does not lose purchased labels.
//
// A thread-safe Manager owns named sessions; the HTTP layer in
// internal/server exposes it as a JSON API.
package session

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"oasis"
	"oasis/internal/diag"
	"oasis/internal/pool"
	"oasis/internal/poolstore"
	"oasis/internal/trace"
)

// MethodKind selects the evaluation method backing a session.
type MethodKind string

const (
	// MethodOASIS is the adaptive importance sampler (the default).
	MethodOASIS MethodKind = "oasis"
	// MethodPassive is the uniform-sampling baseline, served through the
	// same propose/commit protocol.
	MethodPassive MethodKind = "passive"
)

// Errors returned by sessions.
var (
	// ErrNotProposed is returned by Commit for a pair with no live lease:
	// never proposed, or proposed but expired and returned to the pool.
	ErrNotProposed = errors.New("session: pair has no live proposal (never proposed, or lease expired)")
	// ErrBudgetExhausted is returned by Propose when no fresh proposal can
	// ever be made again: the label budget is fully consumed by committed
	// labels, or every pair in the pool is already labelled. Pollers treat
	// it as the terminal signal.
	ErrBudgetExhausted = errors.New("session: label budget exhausted")
	// ErrPoolUnavailable marks a config whose referenced pool could not be
	// resolved from the store (missing, truncated, or failing content
	// verification). WAL replay treats it specially: a replayed create whose
	// pool is gone is only fatal if the session is never deleted later in
	// the log — a pool legitimately removed after its last session was
	// deleted must not brick the boot.
	ErrPoolUnavailable = errors.New("session: referenced pool unavailable")
)

// proposer is the batched propose/commit surface a Session drives. The
// public oasis.Sampler implements it for OASIS; passiveProposer implements
// it for the uniform baseline. CommitLabelTerms returns the weighted
// estimator terms of a fresh commit (nil, nil for a duplicate) so the
// durable journal can record them; ReplayCommit applies a journaled commit
// during recovery.
type proposer interface {
	ProposeBatch(n int) ([]int, error)
	CommitLabelTerms(pair int, label bool) ([]oasis.DrawTerm, error)
	ReplayCommit(pair int, label bool, terms []oasis.DrawTerm) error
	Release(pair int) bool
	Estimate() float64
	LabelsCommitted() int
	Health() oasis.Health
}

// Config describes a new session: the evaluation pool (a content-addressed
// reference into the pool store, or inline parallel score and prediction
// slices as in oasis.NewPool), the method and its options, an optional label
// budget, and the proposal lease TTL.
type Config struct {
	// ID names the session; empty means the Manager generates one.
	ID string `json:"id,omitempty"`
	// Method selects the evaluation method (default MethodOASIS).
	Method MethodKind `json:"method,omitempty"`
	// PoolID references a pool in the manager's content-addressed store
	// (internal/poolstore): all sessions with the same PoolID share one
	// read-only copy of the columns, and durable create records carry only
	// this hash. Exclusive with inline Scores/Preds.
	PoolID string `json:"poolId,omitempty"`
	// Scores and Preds define the pool inline, exactly as in oasis.NewPool.
	// When the manager has a pool store attached, inline pools are interned
	// into it on Create and the config is rewritten to the PoolID form.
	Scores []float64 `json:"scores,omitempty"`
	Preds  []bool    `json:"preds,omitempty"`
	// Calibrated marks Scores as probabilities (oasis.CalibratedScores).
	Calibrated bool `json:"calibrated,omitempty"`
	// Threshold is the uncalibrated-score decision threshold τ.
	Threshold float64 `json:"threshold,omitempty"`
	// Options configures the sampler (alpha, strata, seed, ...).
	Options oasis.Options `json:"options"`
	// Budget caps distinct labels committed; 0 means unlimited.
	Budget int `json:"budget,omitempty"`
	// LeaseTTL is how long a proposal stays leased before returning to the
	// proposable set; 0 means the Manager's default.
	LeaseTTL time.Duration `json:"leaseTTL,omitempty"`
}

// Proposal is one leased pair: label it and POST the answer back before the
// lease expires.
type Proposal struct {
	Pair    int       `json:"pair"`
	Expires time.Time `json:"expires"`
}

// Status summarises a session for the estimate/introspection endpoints.
type Status struct {
	ID     string     `json:"id"`
	Method MethodKind `json:"method"`
	// PoolSize is the number of pairs in the pool; PoolID is the content
	// address of the shared stored pool (empty for inline pools).
	PoolSize int    `json:"poolSize"`
	PoolID   string `json:"poolId,omitempty"`
	// Estimate is the current F̂, nil while undefined (NaN is not
	// representable in JSON).
	Estimate *float64 `json:"estimate,omitempty"`
	// InitialEstimate is the score-based F̂(0) (OASIS only).
	InitialEstimate *float64 `json:"initialEstimate,omitempty"`
	// LabelsCommitted counts distinct pairs labelled so far.
	LabelsCommitted int `json:"labelsCommitted"`
	// PendingProposals counts live leases.
	PendingProposals int `json:"pendingProposals"`
	// Budget is the label budget (0 = unlimited) and Remaining what is left
	// of it (-1 = unlimited).
	Budget    int `json:"budget"`
	Remaining int `json:"remaining"`
}

// Session is one live evaluation: a sampler over a pool plus lease
// bookkeeping. All methods are safe for concurrent use.
type Session struct {
	mu sync.Mutex

	id       string
	cfg      Config
	prop     proposer
	leases   map[int]time.Time
	leaseTTL time.Duration
	now      func() time.Time

	// poolSize is the pool's pair count (cfg.Scores may be empty when the
	// session references a stored pool); poolRelease returns the session's
	// reference on the shared pool, nil for inline pools.
	poolSize    int
	poolRelease func()

	// jrn shares the manager's durable journal; lastLSN is the LSN of the
	// session's most recent journaled event (the snapshot watermark replay
	// skips up to).
	jrn     *journalHolder
	lastLSN uint64

	// met points at the per-shard metrics of the owning manager's shard,
	// nil when metrics are disabled.
	met *ShardMetrics

	// diag tracks the session's convergence trajectory and degeneracy alarm
	// state, recorded on every commit batch (fresh and replayed alike, so
	// the series survives WAL recovery bit-for-bit). diagLog receives the
	// one-line health transition messages; nil means no logging.
	diag    *diag.Tracker
	diagLog func(format string, args ...any)
}

// newSession builds a session from a validated config, resolving the pool
// either from the content-addressed store (Config.PoolID — the session takes
// one reference on the shared pool, returned by releasePool) or from the
// inline columns.
func newSession(ctx context.Context, cfg Config, defaultTTL time.Duration, now func() time.Time, pools *poolstore.Store, dg DiagOptions) (_ *Session, err error) {
	if cfg.Method == "" {
		cfg.Method = MethodOASIS
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = defaultTTL
	}
	p, poolSize, release, err := resolvePool(ctx, cfg, pools)
	if err != nil {
		return nil, err
	}
	defer func() {
		// Every error below abandons the session: return the pool reference.
		if err != nil && release != nil {
			release()
		}
	}()
	// The stratifier allocates per requested stratum/bin; clamp both to the
	// pool size so an absurd client (or fuzzed journal) config cannot force a
	// huge allocation. More strata than pairs is meaningless anyway — empty
	// strata are dropped.
	if cfg.Options.Strata > poolSize {
		cfg.Options.Strata = poolSize
	}
	if cfg.Options.StrataBins > poolSize {
		cfg.Options.StrataBins = poolSize
	}
	var prop proposer
	switch cfg.Method {
	case MethodOASIS:
		s, err := newOASISSampler(ctx, p, cfg, pools)
		if err != nil {
			return nil, err
		}
		prop = s
	case MethodPassive:
		prop = newPassive(p, cfg.Options)
	default:
		return nil, fmt.Errorf("session: unknown method %q", cfg.Method)
	}
	return &Session{
		id:          cfg.ID,
		cfg:         cfg,
		prop:        prop,
		leases:      make(map[int]time.Time),
		leaseTTL:    cfg.LeaseTTL,
		now:         now,
		poolSize:    poolSize,
		poolRelease: release,
		diag:        diag.NewTracker(dg.SeriesCapacity, dg.Thresholds),
		diagLog:     dg.Logf,
	}, nil
}

// newOASISSampler builds the session's OASIS sampler. For a store-resolved
// pool the O(N log N) stratification is memoised in the pool store under the
// session's pool reference, so N sessions over one pool stratify once; the
// cached stratification is bit-identical to a fresh one (it is a pure
// function of the immutable columns and the key below), so sampling
// sequences do not change. Inline pools stratify privately as before.
//
// The cache key must carry every input the stratification reads: the
// stratifier rule and its K/bins (post-clamp — the caller already clamped
// them to the pool size), and the probability mapping (calibration kind and
// threshold) that shapes the per-stratum mean probability-scores.
func newOASISSampler(ctx context.Context, p *oasis.Pool, cfg Config, pools *poolstore.Store) (*oasis.Sampler, error) {
	if cfg.PoolID == "" || pools == nil {
		return oasis.NewSampler(p, cfg.Options)
	}
	opts := cfg.Options.WithDefaults()
	key := poolstore.StrataKey{
		Stratifier: int(opts.Stratifier),
		K:          opts.Strata,
		Bins:       opts.StrataBins,
		Calibrated: cfg.Calibrated,
		Threshold:  cfg.Threshold,
	}
	v, err := pools.StrataCtx(ctx, cfg.PoolID, key, func() (any, int64, error) {
		st, err := oasis.Stratify(p, opts)
		if err != nil {
			return nil, 0, err
		}
		return st, st.MemBytes(), nil
	})
	if err != nil {
		return nil, err
	}
	return oasis.NewSamplerStratified(p, opts, v.(*oasis.Stratification))
}

// resolvePool materialises a config's evaluation pool. A PoolID resolves
// through the store to the shared, zero-copy columns (plus a release to
// return the reference); inline columns build a private copying pool exactly
// as before.
func resolvePool(ctx context.Context, cfg Config, pools *poolstore.Store) (p *oasis.Pool, poolSize int, release func(), err error) {
	kind := oasis.UncalibratedScores
	if cfg.Calibrated {
		kind = oasis.CalibratedScores
	}
	if cfg.PoolID != "" {
		if len(cfg.Scores) > 0 || len(cfg.Preds) > 0 {
			return nil, 0, nil, fmt.Errorf("session: config names pool %q and carries inline scores; pick one", cfg.PoolID)
		}
		if pools == nil {
			return nil, 0, nil, fmt.Errorf("session: config references pool %q but no pool store is attached", cfg.PoolID)
		}
		shared, err := pools.AcquireCtx(ctx, cfg.PoolID)
		if err != nil {
			return nil, 0, nil, fmt.Errorf("%w: %v", ErrPoolUnavailable, err)
		}
		// Alias the store's columns instead of copying them: the per-session
		// pool struct is a handful of slice headers over the one shared copy.
		// Calibration kind and threshold stay per-session.
		inner := &pool.Pool{
			Scores:        shared.Scores,
			Preds:         shared.Preds,
			TruthProb:     shared.Truth(),
			Probabilistic: kind == oasis.CalibratedScores,
			Threshold:     cfg.Threshold,
		}
		id := shared.ID
		return oasis.WrapPool(inner), shared.N(), func() { pools.Release(id) }, nil
	}
	op, err := oasis.NewPoolThreshold(cfg.Scores, cfg.Preds, kind, cfg.Threshold)
	if err != nil {
		return nil, 0, nil, err
	}
	return op, len(cfg.Scores), nil, nil
}

// releasePool returns the session's reference on the shared pool (a no-op
// for inline pools, idempotent otherwise). The manager calls it whenever a
// session leaves the session map — delete, replayed delete, or an abandoned
// create/restore.
func (s *Session) releasePool() {
	s.mu.Lock()
	release := s.poolRelease
	s.poolRelease = nil
	s.mu.Unlock()
	if release != nil {
		release()
	}
}

// PoolSize returns the number of pairs in the session's pool.
func (s *Session) PoolSize() int { return s.poolSize }

// ID returns the session's name.
func (s *Session) ID() string { return s.id }

// expireLocked releases every lease past its deadline, returning those pairs
// to the proposable set, and journals the releases so recovery replays
// exactly the expiries that happened (replay never expires by wall clock).
// Callers hold s.mu. An append failure here is swallowed: it is sticky, so
// the write paths refuse service before anything further is acknowledged.
func (s *Session) expireLocked(now time.Time) {
	var expired []int
	for pair, deadline := range s.leases {
		if now.After(deadline) {
			delete(s.leases, pair)
			s.prop.Release(pair)
			expired = append(expired, pair)
		}
	}
	if len(expired) > 0 {
		_ = s.journalLocked(&Event{Type: EventRelease, Pairs: expired})
		if s.met != nil {
			s.met.LeaseExpiries.Add(uint64(len(expired)))
		}
	}
}

// remainingLocked returns how many fresh proposals the budget still allows
// (live leases count against it), or -1 when unlimited. Callers hold s.mu.
func (s *Session) remainingLocked() int {
	if s.cfg.Budget <= 0 {
		return -1
	}
	r := s.cfg.Budget - s.prop.LabelsCommitted() - len(s.leases)
	if r < 0 {
		r = 0
	}
	return r
}

// Propose leases up to n distinct unlabelled pairs drawn from the method's
// current instrumental distribution. The batch may be shorter than n when
// the budget or the pool is nearly exhausted, and empty when every
// remaining pair is already leased to other callers (retry later). It
// returns ErrBudgetExhausted once no fresh proposal can ever be made —
// budget fully committed, or the whole pool labelled — so pollers can
// terminate.
func (s *Session) Propose(n int) ([]Proposal, error) {
	return s.ProposeCtx(context.Background(), n)
}

// rebuildStatser is implemented by proposers whose dirty-flag caches report
// rebuild work (oasis.Sampler). The session layer reads deltas around each
// sampler call and records them as sampler.rebuild spans when tracing.
type rebuildStatser interface {
	RebuildStats() (count uint64, nanos int64)
}

// samplerSpan wraps one sampler call in a span (when ctx carries a trace)
// and attaches the dirty-flag cache rebuilds the call triggered as a
// retroactive child span. The returned func must be called when the sampler
// work is done; it is a no-op for unsampled requests.
func (s *Session) samplerSpan(tr *trace.Trace, name string) func() {
	if tr == nil {
		return func() {}
	}
	sp := tr.Start("sampler", name)
	rs, ok := s.prop.(rebuildStatser)
	var count0 uint64
	var nanos0 int64
	if ok {
		count0, nanos0 = rs.RebuildStats()
	}
	return func() {
		if ok {
			if count, nanos := rs.RebuildStats(); count > count0 {
				tr.AddSpan("sampler", "sampler.rebuild", time.Duration(nanos-nanos0)).
					AttrInt("rebuilds", int64(count-count0))
			}
		}
		sp.End()
	}
}

// ProposeCtx is Propose with request context: when ctx carries a trace
// (internal/trace), the session records its lock wait, the sampler's draw
// and any dirty-flag cache rebuild as spans.
func (s *Session) ProposeCtx(ctx context.Context, n int) ([]Proposal, error) {
	if n <= 0 {
		return nil, errors.New("session: batch size must be positive")
	}
	tr := trace.FromContext(ctx)
	// Latency is measured on the real clock, not the injected test clock:
	// the injected one is for lease arithmetic, not durations.
	var start time.Time
	if s.met != nil {
		start = time.Now()
	}
	sp := tr.Start("session", "session.propose").AttrInt("n", int64(n))
	defer sp.End()
	lw := tr.Start("session", "lock.wait")
	s.mu.Lock()
	lw.End()
	defer s.mu.Unlock()
	// A caller that is already gone (client disconnect mid-request, observed
	// as context cancellation) gets its draws back before any are made:
	// proposing to nobody would lease pairs that can only expire. Checked
	// after the lock wait, which is where a disconnected request typically
	// spends its time under contention.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := s.journalSick(); err != nil {
		return nil, err
	}
	now := s.now()
	s.expireLocked(now)
	if s.prop.LabelsCommitted() >= s.poolSize {
		return nil, ErrBudgetExhausted
	}
	if r := s.remainingLocked(); r >= 0 {
		if s.cfg.Budget-s.prop.LabelsCommitted() <= 0 {
			return nil, ErrBudgetExhausted
		}
		if n > r {
			n = r
		}
		if n == 0 {
			// Budget left, but all of it is leased out right now.
			return []Proposal{}, nil
		}
	}
	endSampler := s.samplerSpan(tr, "sampler.propose")
	pairs, err := s.prop.ProposeBatch(n)
	endSampler()
	switch {
	case errors.Is(err, oasis.ErrExhausted):
		// The proposable supply ran out mid-batch: lease whatever was drawn.
		// An empty result tells the caller every remaining pair is leased to
		// other workers right now (retry later); the fully-labelled terminal
		// case is caught by the pool check above on the next call.
	case err != nil:
		// Release any partially drawn batch so the pairs are not stranded
		// as pending-without-a-lease (unleased pairs never expire).
		for _, pair := range pairs {
			s.prop.Release(pair)
		}
		return nil, err
	}
	if len(pairs) > 0 {
		// Journal the draws before leasing them out: the batch size and the
		// resulting pairs let recovery re-execute this exact ProposeBatch.
		if jerr := s.journalLocked(&Event{Type: EventPropose, N: n, Pairs: pairs, Trace: tr}); jerr != nil {
			// Unacknowledged draws return to the proposable set; the sticky
			// journal failure fail-stops the session from here on.
			for _, pair := range pairs {
				s.prop.Release(pair)
			}
			return nil, jerr
		}
	}
	deadline := now.Add(s.leaseTTL)
	out := make([]Proposal, len(pairs))
	for i, pair := range pairs {
		s.leases[pair] = deadline
		out[i] = Proposal{Pair: pair, Expires: deadline}
	}
	if s.met != nil {
		s.met.ProposedPairs.Add(uint64(len(out)))
		s.met.ProposeSeconds.Observe(time.Since(start).Seconds())
	}
	return out, nil
}

// Commit applies a label to a leased pair. Late answers — after the lease
// expired and the pair returned to the pool — get ErrNotProposed;
// re-answers for an already-committed pair are idempotent no-ops. With a
// journal attached the label is durably appended before Commit returns.
func (s *Session) Commit(pair int, label bool) error {
	results, err := s.CommitBatch([]int{pair}, []bool{label})
	if err != nil {
		return err
	}
	if results[0] == Expired {
		return ErrNotProposed
	}
	return nil
}

// CommitResult is one answer's fate in a CommitBatch.
type CommitResult int

const (
	// Committed: a fresh label, folded into the posterior and estimate.
	Committed CommitResult = iota
	// Duplicate: the pair was already labelled; the re-answer is ignored
	// (the first label wins, mirroring the Budgeted oracle's cache).
	Duplicate
	// Expired: no live lease — never proposed, or the lease lapsed and the
	// pair returned to the proposable set.
	Expired
)

// CommitBatch applies many labels in one critical section; the i-th result
// corresponds to the i-th input pair. With a journal attached the fresh
// labels — and the frozen draw terms they folded into the estimator — are
// appended as one durable event before CommitBatch returns; an append
// failure withholds the acknowledgement (non-nil error, nil results).
func (s *Session) CommitBatch(pairs []int, labels []bool) ([]CommitResult, error) {
	return s.CommitBatchCtx(context.Background(), pairs, labels)
}

// CommitBatchCtx is CommitBatch with request context: when ctx carries a
// trace, the session records its lock wait, the sampler's posterior folds
// (plus any cache rebuild they trigger) and the durable journal append as
// spans.
func (s *Session) CommitBatchCtx(ctx context.Context, pairs []int, labels []bool) ([]CommitResult, error) {
	tr := trace.FromContext(ctx)
	var start time.Time
	if s.met != nil {
		start = time.Now()
	}
	sp := tr.Start("session", "session.commit").AttrInt("labels", int64(len(pairs)))
	defer sp.End()
	lw := tr.Start("session", "lock.wait")
	s.mu.Lock()
	lw.End()
	defer s.mu.Unlock()
	// Bail out for an already-disconnected caller before folding anything:
	// past this point the batch commits atomically (labels are never half
	// acknowledged), so cancellation is only honored at the boundary.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := s.journalSick(); err != nil {
		return nil, err
	}
	s.expireLocked(s.now())
	var fresh []CommitRecord
	journaling := s.journaling()
	results := make([]CommitResult, len(pairs))
	endSampler := s.samplerSpan(tr, "sampler.commit")
	for i, pair := range pairs {
		terms, err := s.prop.CommitLabelTerms(pair, labels[i])
		switch {
		case errors.Is(err, oasis.ErrNotProposed):
			results[i] = Expired
		case err != nil:
			endSampler()
			return nil, err
		case terms == nil:
			results[i] = Duplicate
		default:
			delete(s.leases, pair)
			results[i] = Committed
			if journaling {
				fresh = append(fresh, CommitRecord{Pair: pair, Label: labels[i], Terms: terms})
			}
		}
	}
	endSampler()
	var committed uint64
	for _, r := range results {
		if r == Committed {
			committed++
		}
	}
	// The diagnostics point's wall clock is journaled with the commit event,
	// so a WAL tail replay re-records the series byte-for-byte.
	wall := s.now().UnixNano()
	if len(fresh) > 0 {
		if err := s.journalLocked(&Event{Type: EventCommit, Commits: fresh, TS: wall, Trace: tr}); err != nil {
			return nil, err
		}
	}
	if committed > 0 {
		s.recordDiagLocked(tr, wall, false)
	}
	if s.met != nil {
		s.met.LabelsCommitted.Add(committed)
		s.met.CommitSeconds.Observe(time.Since(start).Seconds())
	}
	return results, nil
}

// recordDiagLocked folds one commit batch into the convergence diagnostics:
// a series point sampled from the estimator's health, and a re-evaluation
// of the degeneracy alarm. A state transition is logged once and, on a
// sampled request, stamped as a span attribute — except under replay, where
// the transition already happened (and was reported) in the original run.
// Callers hold s.mu.
func (s *Session) recordDiagLocked(tr *trace.Trace, wallNanos int64, replay bool) {
	if s.diag == nil {
		return
	}
	h := s.prop.Health()
	labels := s.prop.LabelsCommitted()
	prev := s.diag.State()
	state, changed := s.diag.Record(diag.Point{
		Labels:    labels,
		WallNanos: wallNanos,
		Estimate:  diag.Float(h.Estimate),
		Variance:  diag.Float(h.AsymptoticVariance),
		ESSRatio:  diag.Float(h.ESSRatio),
		Terms:     h.Terms,
	})
	if !changed || replay {
		return
	}
	if s.diagLog != nil {
		s.diagLog("session %s: sampler health %s -> %s (ess_ratio=%.4f, variance=%.4g, labels=%d)",
			s.id, prev, state, h.ESSRatio, h.AsymptoticVariance, labels)
	}
	if tr != nil {
		tr.AddSpan("session", "health.transition", 0).
			Attr("state", state.String()).
			Attr("from", prev.String())
	}
}

// Estimate returns the current F̂ (NaN while undefined).
func (s *Session) Estimate() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.prop.Estimate()
}

// Status reports the session's current state.
func (s *Session) Status() Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.expireLocked(s.now())
	st := Status{
		ID:               s.id,
		Method:           s.cfg.Method,
		PoolSize:         s.poolSize,
		PoolID:           s.cfg.PoolID,
		LabelsCommitted:  s.prop.LabelsCommitted(),
		PendingProposals: len(s.leases),
		Budget:           s.cfg.Budget,
		Remaining:        s.remainingLocked(),
	}
	if f := s.prop.Estimate(); !math.IsNaN(f) {
		st.Estimate = &f
	}
	if init, ok := s.prop.(interface{ InitialEstimate() float64 }); ok {
		f0 := init.InitialEstimate()
		st.InitialEstimate = &f0
	}
	return st
}

// SamplerHealth is a read-only snapshot of a session's estimator health
// plus budget consumption, exported per session on /metrics.
type SamplerHealth struct {
	ID                 string
	Method             MethodKind
	Estimate           float64
	AsymptoticVariance float64
	ESS                float64
	ESSRatio           float64
	Terms              int
	LabelsCommitted    int
	PendingProposals   int
	Budget             int
	PoolSize           int
	// State is the degeneracy alarm state (ok/degraded/degenerate).
	State diag.HealthState
}

// SamplerHealth reports the session's estimator health. Unlike Status it
// never mutates state (no lease expiry, no journaling): it is safe for a
// scraper to call at any rate.
func (s *Session) SamplerHealth() SamplerHealth {
	s.mu.Lock()
	defer s.mu.Unlock()
	h := s.prop.Health()
	sh := SamplerHealth{
		ID:                 s.id,
		Method:             s.cfg.Method,
		Estimate:           h.Estimate,
		AsymptoticVariance: h.AsymptoticVariance,
		ESS:                h.ESS,
		ESSRatio:           h.ESSRatio,
		Terms:              h.Terms,
		LabelsCommitted:    s.prop.LabelsCommitted(),
		PendingProposals:   len(s.leases),
		Budget:             s.cfg.Budget,
		PoolSize:           s.poolSize,
	}
	if s.diag != nil {
		sh.State = s.diag.State()
	}
	return sh
}

// stratumDiagnoser is implemented by proposers that expose per-stratum
// weight diagnostics (oasis.Sampler). Passive sessions have no strata and
// simply omit the block.
type stratumDiagnoser interface {
	StratumDiagnostics() []diag.StratumHealth
}

// Diagnostics is the full convergence-diagnostics payload of one session,
// served at GET /v1/sessions/{id}/diagnostics.
type Diagnostics struct {
	ID     string     `json:"id"`
	Method MethodKind `json:"method"`
	// State is the degeneracy alarm state: ok, degraded or degenerate.
	State string `json:"state"`
	// Thresholds are the effective alarm thresholds.
	Thresholds diag.Thresholds `json:"thresholds"`
	// LabelsCommitted and Terms mirror the newest estimator state.
	LabelsCommitted int        `json:"labelsCommitted"`
	Terms           int        `json:"terms"`
	Estimate        diag.Float `json:"estimate"`
	Variance        diag.Float `json:"variance"`
	ESSRatio        diag.Float `json:"essRatio"`
	// Series is the downsampled trajectory; SeriesSeen counts commit
	// batches offered to it and SeriesStride the current downsampling
	// stride (a power of two). MemBytes is the ring's fixed footprint.
	Series       []diag.Point `json:"series"`
	SeriesSeen   uint64       `json:"seriesSeen"`
	SeriesStride uint64       `json:"seriesStride"`
	MemBytes     int          `json:"memBytes"`
	// Strata carries the per-stratum weight diagnostics (OASIS sessions
	// only; omitted for methods without strata).
	Strata []diag.StratumHealth `json:"strata,omitempty"`
}

// Diagnostics reports the session's convergence diagnostics. Like
// SamplerHealth it never expires leases or journals, so scrapers and the
// dashboard may call it at any rate while commits are in flight.
func (s *Session) Diagnostics() Diagnostics {
	s.mu.Lock()
	defer s.mu.Unlock()
	h := s.prop.Health()
	d := Diagnostics{
		ID:              s.id,
		Method:          s.cfg.Method,
		State:           diag.StateOK.String(),
		LabelsCommitted: s.prop.LabelsCommitted(),
		Terms:           h.Terms,
		Estimate:        diag.Float(h.Estimate),
		Variance:        diag.Float(h.AsymptoticVariance),
		ESSRatio:        diag.Float(h.ESSRatio),
	}
	if s.diag != nil {
		d.State = s.diag.State().String()
		d.Thresholds = s.diag.Thresholds()
		d.Series = s.diag.Series().Points()
		d.SeriesSeen = s.diag.Series().Seen()
		d.SeriesStride = s.diag.Series().Stride()
		d.MemBytes = s.diag.MemBytes()
	}
	if sd, ok := s.prop.(stratumDiagnoser); ok {
		d.Strata = sd.StratumDiagnostics()
	}
	return d
}

// DiagMemBytes returns the fixed memory footprint of the session's
// diagnostics ring (0 when diagnostics are disabled).
func (s *Session) DiagMemBytes() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.diag == nil {
		return 0
	}
	return s.diag.MemBytes()
}
