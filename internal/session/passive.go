package session

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"oasis"
	"oasis/internal/estimator"
	"oasis/internal/rng"
)

// passiveProposer serves the paper's Passive baseline through the
// propose/commit protocol: uniform with-replacement draws, unit importance
// weights, the plain Eqn. (1) estimator. It mirrors oasis.Sampler's
// bookkeeping — re-draws of committed pairs are folded in immediately,
// re-draws of outstanding pairs queue additional unit-weight terms.
type passiveProposer struct {
	pool    *oasis.Pool
	est     *estimator.Weighted
	rng     *rng.RNG
	pending map[int]passivePending // pair -> draws awaiting the label
	labels  map[int]bool
}

// passivePending tracks the queued draws of one outstanding pair: the
// weight of the draw that proposed it (1 for a uniform with-replacement
// draw, avail/N for a storm-escape draw from the proposable subset) plus
// the count of unit-weight re-draws made while the label was in flight.
type passivePending struct {
	first float64
	extra int
}

func newPassive(p *oasis.Pool, opts oasis.Options) *passiveProposer {
	opts = opts.WithDefaults()
	return &passiveProposer{
		pool:    p,
		est:     estimator.NewWeighted(opts.Alpha),
		rng:     rng.New(opts.Seed),
		pending: make(map[int]passivePending),
		labels:  make(map[int]bool),
	}
}

func (s *passiveProposer) pred(i int) bool { return s.pool.Internal().Preds[i] }

func (s *passiveProposer) ProposeBatch(n int) ([]int, error) {
	if n <= 0 {
		return nil, errors.New("session: batch size must be positive")
	}
	// A batch can never exceed the proposable supply, so cap the allocation
	// against absurd client-supplied n.
	capHint := n
	if supply := s.pool.N() - len(s.labels) - len(s.pending); capHint > supply {
		capHint = supply
	}
	batch := make([]int, 0, capHint)
	misses := 0
	for len(batch) < n {
		avail := s.pool.N() - len(s.labels) - len(s.pending)
		if avail == 0 {
			// Same typed contract as oasis.Sampler.ProposeBatch: partial
			// batch plus the exhaustion signal, never a spin on a draw cap.
			return batch, oasis.ErrExhausted
		}
		if misses >= passiveStormLimit {
			// Deterministic escape at high labelled density: take the pair
			// with the uniform rank j among the proposable ones. The draw's
			// sampling probability is 1/avail instead of the uniform 1/N,
			// so it carries the inverse-probability weight avail/N to keep
			// the estimator unbiased (mirroring OASIS's direct mode). The
			// rank scan is O(N) per escaped proposal — acceptable for the
			// baseline method, which exists for comparison runs; the OASIS
			// proposer carries the O(1) slot accounting instead.
			j := s.rng.Intn(avail)
			for i := 0; i < s.pool.N(); i++ {
				_, labelled := s.labels[i]
				_, outstanding := s.pending[i]
				if labelled || outstanding {
					continue
				}
				if j == 0 {
					s.pending[i] = passivePending{first: float64(avail) / float64(s.pool.N())}
					batch = append(batch, i)
					break
				}
				j--
			}
			misses = 0
			continue
		}
		i := s.rng.Intn(s.pool.N())
		if label, ok := s.labels[i]; ok {
			s.est.Add(1, label, s.pred(i))
			misses++
			continue
		}
		if entry, outstanding := s.pending[i]; outstanding {
			entry.extra++
			s.pending[i] = entry
			misses++
			continue
		}
		s.pending[i] = passivePending{first: 1}
		batch = append(batch, i)
		misses = 0
	}
	return batch, nil
}

// passiveStormLimit mirrors the OASIS proposer's storm escape: after this
// many consecutive draws of labelled/outstanding pairs the next proposal is
// picked directly from the proposable set (uniform, O(N) worst case) so
// batches stay exact-size while supply lasts.
const passiveStormLimit = 32

// CommitLabelTerms applies a label and returns the unit/escape-weighted
// estimator terms it folded in (nil for a duplicate), mirroring
// oasis.Sampler.CommitLabelTerms for the durable journal.
func (s *passiveProposer) CommitLabelTerms(pair int, label bool) ([]oasis.DrawTerm, error) {
	if _, done := s.labels[pair]; done {
		return nil, nil
	}
	entry, ok := s.pending[pair]
	if !ok {
		return nil, oasis.ErrNotProposed
	}
	delete(s.pending, pair)
	s.labels[pair] = label
	terms := make([]oasis.DrawTerm, 0, 1+entry.extra)
	s.est.Add(entry.first, label, s.pred(pair))
	terms = append(terms, oasis.DrawTerm{Weight: entry.first})
	for j := 0; j < entry.extra; j++ {
		s.est.Add(1, label, s.pred(pair))
		terms = append(terms, oasis.DrawTerm{Weight: 1})
	}
	return terms, nil
}

// ReplayCommit applies a journaled commit during recovery: through the
// pending entry when the propose was replayed, directly from the recorded
// terms when it was folded into a compaction snapshot.
func (s *passiveProposer) ReplayCommit(pair int, label bool, terms []oasis.DrawTerm) error {
	if pair < 0 || pair >= s.pool.N() {
		return fmt.Errorf("session: replay commit for pair %d outside pool of %d", pair, s.pool.N())
	}
	if _, done := s.labels[pair]; done {
		return nil
	}
	if len(terms) == 0 {
		return fmt.Errorf("session: replay commit for pair %d carries no terms", pair)
	}
	for _, dt := range terms {
		if dt.Stratum != 0 || !(dt.Weight > 0) || math.IsInf(dt.Weight, 0) {
			return fmt.Errorf("session: replay commit for pair %d has invalid term %+v", pair, dt)
		}
	}
	if _, pending := s.pending[pair]; pending {
		got, err := s.CommitLabelTerms(pair, label)
		if err != nil {
			return err
		}
		if len(got) != len(terms) {
			return fmt.Errorf("session: replay commit for pair %d applied %d terms, journal has %d", pair, len(got), len(terms))
		}
		for i := range got {
			if got[i] != terms[i] {
				return fmt.Errorf("session: replayed term for pair %d diverged: %+v vs journalled %+v", pair, got[i], terms[i])
			}
		}
		return nil
	}
	for _, dt := range terms {
		s.est.Add(dt.Weight, label, s.pred(pair))
	}
	s.labels[pair] = label
	return nil
}

func (s *passiveProposer) Release(pair int) bool {
	if _, ok := s.pending[pair]; !ok {
		return false
	}
	delete(s.pending, pair)
	return true
}

func (s *passiveProposer) Estimate() float64 { return s.est.Estimate() }

func (s *passiveProposer) LabelsCommitted() int { return len(s.labels) }

func (s *passiveProposer) Health() oasis.Health {
	return oasis.Health{
		Estimate:           s.est.Estimate(),
		AsymptoticVariance: s.est.AsymptoticVariance(),
		ESS:                s.est.ESS(),
		ESSRatio:           s.est.ESSRatio(),
		Terms:              s.est.N(),
	}
}

// passivePendingState is one outstanding proposal in a passiveState.
type passivePendingState struct {
	Pair  int     `json:"pair"`
	First float64 `json:"w"`
	Extra int     `json:"extra,omitempty"`
}

// passiveState is the JSON snapshot of a passiveProposer, outstanding
// proposals included (same exact-snapshot contract as oasis.SamplerState).
type passiveState struct {
	Num     float64               `json:"num"`
	Pred    float64               `json:"pred"`
	True    float64               `json:"true"`
	N       int                   `json:"n"`
	RNG     rng.State             `json:"rng"`
	Labels  map[int]bool          `json:"labels,omitempty"`
	Pending []passivePendingState `json:"pending,omitempty"`

	// Weight moments for the health gauges; omitempty keeps pre-moment
	// snapshots decodable (they restore as "health unknown").
	SumW  float64 `json:"sumW,omitempty"`
	SumW2 float64 `json:"sumW2,omitempty"`
	YY    float64 `json:"yy,omitempty"`
	YZ    float64 `json:"yz,omitempty"`
	ZZ    float64 `json:"zz,omitempty"`
}

func (s *passiveProposer) state() *passiveState {
	num, pred, true_ := s.est.Sums()
	labels := make(map[int]bool, len(s.labels))
	for i, l := range s.labels {
		labels[i] = l
	}
	sumW, sumW2, yy, yz, zz := s.est.Moments()
	st := &passiveState{
		Num: num, Pred: pred, True: true_, N: s.est.N(),
		RNG:    s.rng.State(),
		Labels: labels,
		SumW:   sumW, SumW2: sumW2, YY: yy, YZ: yz, ZZ: zz,
	}
	pairs := make([]int, 0, len(s.pending))
	for pair := range s.pending {
		pairs = append(pairs, pair)
	}
	sort.Ints(pairs) // deterministic snapshot bytes
	for _, pair := range pairs {
		entry := s.pending[pair]
		st.Pending = append(st.Pending, passivePendingState{Pair: pair, First: entry.first, Extra: entry.extra})
	}
	return st
}

func (s *passiveProposer) restore(st *passiveState) error {
	if st == nil {
		return errors.New("session: nil passive state")
	}
	for pair := range st.Labels {
		if pair < 0 || pair >= s.pool.N() {
			return fmt.Errorf("session: snapshot label for pair %d outside pool of %d", pair, s.pool.N())
		}
	}
	for _, p := range st.Pending {
		if p.Pair < 0 || p.Pair >= s.pool.N() {
			return fmt.Errorf("session: snapshot proposal for pair %d outside pool of %d", p.Pair, s.pool.N())
		}
		if _, labelled := st.Labels[p.Pair]; labelled || !(p.First > 0) || math.IsInf(p.First, 0) || p.Extra < 0 {
			return fmt.Errorf("session: snapshot proposal for pair %d is invalid", p.Pair)
		}
	}
	if err := s.rng.Restore(st.RNG); err != nil {
		return err
	}
	s.est.SetSums(st.Num, st.Pred, st.True, st.N)
	s.est.SetMoments(st.SumW, st.SumW2, st.YY, st.YZ, st.ZZ)
	s.pending = make(map[int]passivePending, len(st.Pending))
	for _, p := range st.Pending {
		s.pending[p.Pair] = passivePending{first: p.First, extra: p.Extra}
	}
	s.labels = make(map[int]bool, len(st.Labels))
	for i, l := range st.Labels {
		s.labels[i] = l
	}
	return nil
}
