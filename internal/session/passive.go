package session

import (
	"errors"

	"oasis"
	"oasis/internal/estimator"
	"oasis/internal/rng"
)

// passiveProposer serves the paper's Passive baseline through the
// propose/commit protocol: uniform with-replacement draws, unit importance
// weights, the plain Eqn. (1) estimator. It mirrors oasis.Sampler's
// bookkeeping — re-draws of committed pairs are folded in immediately,
// re-draws of outstanding pairs queue additional unit-weight terms.
type passiveProposer struct {
	pool    *oasis.Pool
	est     *estimator.Weighted
	rng     *rng.RNG
	pending map[int]int // pair -> queued draw count awaiting the label
	labels  map[int]bool
}

func newPassive(p *oasis.Pool, opts oasis.Options) *passiveProposer {
	opts = opts.WithDefaults()
	return &passiveProposer{
		pool:    p,
		est:     estimator.NewWeighted(opts.Alpha),
		rng:     rng.New(opts.Seed),
		pending: make(map[int]int),
		labels:  make(map[int]bool),
	}
}

func (s *passiveProposer) pred(i int) bool { return s.pool.Internal().Preds[i] }

func (s *passiveProposer) ProposeBatch(n int) ([]int, error) {
	if n <= 0 {
		return nil, errors.New("session: batch size must be positive")
	}
	batch := make([]int, 0, n)
	for draws := 0; len(batch) < n && draws < oasis.MaxDraws(n); draws++ {
		i := s.rng.Intn(s.pool.N())
		if label, ok := s.labels[i]; ok {
			s.est.Add(1, label, s.pred(i))
			continue
		}
		if _, outstanding := s.pending[i]; outstanding {
			s.pending[i]++
			continue
		}
		s.pending[i] = 1
		batch = append(batch, i)
	}
	return batch, nil
}

func (s *passiveProposer) CommitLabel(pair int, label bool) error {
	if _, done := s.labels[pair]; done {
		return nil
	}
	count, ok := s.pending[pair]
	if !ok {
		return oasis.ErrNotProposed
	}
	delete(s.pending, pair)
	s.labels[pair] = label
	for j := 0; j < count; j++ {
		s.est.Add(1, label, s.pred(pair))
	}
	return nil
}

func (s *passiveProposer) Release(pair int) bool {
	if _, ok := s.pending[pair]; !ok {
		return false
	}
	delete(s.pending, pair)
	return true
}

func (s *passiveProposer) Estimate() float64 { return s.est.Estimate() }

func (s *passiveProposer) LabelsCommitted() int { return len(s.labels) }

// passiveState is the JSON snapshot of a passiveProposer. Outstanding
// proposals are not persisted (same crash-safe contract as
// oasis.SamplerState).
type passiveState struct {
	Num    float64      `json:"num"`
	Pred   float64      `json:"pred"`
	True   float64      `json:"true"`
	N      int          `json:"n"`
	RNG    rng.State    `json:"rng"`
	Labels map[int]bool `json:"labels,omitempty"`
}

func (s *passiveProposer) state() *passiveState {
	num, pred, true_ := s.est.Sums()
	labels := make(map[int]bool, len(s.labels))
	for i, l := range s.labels {
		labels[i] = l
	}
	return &passiveState{
		Num: num, Pred: pred, True: true_, N: s.est.N(),
		RNG:    s.rng.State(),
		Labels: labels,
	}
}

func (s *passiveProposer) restore(st *passiveState) error {
	if st == nil {
		return errors.New("session: nil passive state")
	}
	s.est.SetSums(st.Num, st.Pred, st.True, st.N)
	s.rng.Restore(st.RNG)
	s.pending = make(map[int]int)
	s.labels = make(map[int]bool, len(st.Labels))
	for i, l := range st.Labels {
		s.labels[i] = l
	}
	return nil
}
