// Package metric implements the attribute-level similarity measures that the
// ER pipeline combines into record-pair feature vectors (paper §2.1.1 and
// §6.1.2): trigram Jaccard for short text, tf-idf cosine for long text,
// normalised absolute difference for numerics, plus Levenshtein and
// Jaro-Winkler as additional string measures.
package metric

import (
	"math"

	"oasis/internal/textutil"
)

// Jaccard returns |a ∩ b| / |a ∪ b| for two sorted, de-duplicated string
// sets (as produced by textutil.NGrams). Two empty sets are defined to have
// similarity 1; one empty set against a non-empty set gives 0.
func Jaccard(a, b []string) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	inter := 0
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			inter++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	union := len(a) + len(b) - inter
	return float64(inter) / float64(union)
}

// TrigramJaccard is the paper's short-text similarity: Jaccard over character
// trigram sets of the (already normalised) strings.
func TrigramJaccard(a, b string) float64 {
	return Jaccard(textutil.Trigrams(a), textutil.Trigrams(b))
}

// Dice returns the Sørensen-Dice coefficient 2|a∩b| / (|a|+|b|) over sorted
// sets, with the same empty-set conventions as Jaccard.
func Dice(a, b []string) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	inter := 0
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			inter++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return 2 * float64(inter) / float64(len(a)+len(b))
}

// CosineSparse returns the cosine similarity of two sparse vectors. For
// L2-normalised inputs (textutil.Corpus.Vector) this is simply their dot
// product, but the function normalises defensively so it is correct for any
// non-negative sparse vectors. Two empty vectors give 1; one empty gives 0.
func CosineSparse(a, b map[string]float64) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	small, large := a, b
	if len(b) < len(a) {
		small, large = b, a
	}
	dot := 0.0
	for k, va := range small {
		if vb, ok := large[k]; ok {
			dot += va * vb
		}
	}
	na, nb := 0.0, 0.0
	for _, v := range a {
		na += v * v
	}
	for _, v := range b {
		nb += v * v
	}
	if na == 0 || nb == 0 {
		return 0
	}
	c := dot / math.Sqrt(na*nb)
	if c > 1 {
		c = 1
	}
	if c < 0 {
		c = 0
	}
	return c
}

// Levenshtein returns the edit distance between a and b (unit costs).
func Levenshtein(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	prev := make([]int, len(rb)+1)
	curr := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		curr[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			curr[j] = min3(prev[j]+1, curr[j-1]+1, prev[j-1]+cost)
		}
		prev, curr = curr, prev
	}
	return prev[len(rb)]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

// LevenshteinSimilarity maps edit distance to a similarity in [0, 1]:
// 1 − d / max(len(a), len(b)). Two empty strings give 1.
func LevenshteinSimilarity(a, b string) float64 {
	la, lb := len([]rune(a)), len([]rune(b))
	if la == 0 && lb == 0 {
		return 1
	}
	maxLen := la
	if lb > maxLen {
		maxLen = lb
	}
	return 1 - float64(Levenshtein(a, b))/float64(maxLen)
}

// JaroWinkler returns the Jaro-Winkler similarity of a and b with the
// standard prefix scale 0.1 and maximum prefix length 4.
func JaroWinkler(a, b string) float64 {
	j := jaro(a, b)
	if j == 0 {
		return 0
	}
	ra, rb := []rune(a), []rune(b)
	prefix := 0
	for prefix < len(ra) && prefix < len(rb) && prefix < 4 && ra[prefix] == rb[prefix] {
		prefix++
	}
	return j + float64(prefix)*0.1*(1-j)
}

func jaro(a, b string) float64 {
	ra, rb := []rune(a), []rune(b)
	la, lb := len(ra), len(rb)
	if la == 0 && lb == 0 {
		return 1
	}
	if la == 0 || lb == 0 {
		return 0
	}
	window := la
	if lb > window {
		window = lb
	}
	window = window/2 - 1
	if window < 0 {
		window = 0
	}
	matchedA := make([]bool, la)
	matchedB := make([]bool, lb)
	matches := 0
	for i := 0; i < la; i++ {
		lo := i - window
		if lo < 0 {
			lo = 0
		}
		hi := i + window + 1
		if hi > lb {
			hi = lb
		}
		for j := lo; j < hi; j++ {
			if matchedB[j] || ra[i] != rb[j] {
				continue
			}
			matchedA[i] = true
			matchedB[j] = true
			matches++
			break
		}
	}
	if matches == 0 {
		return 0
	}
	transpositions := 0
	j := 0
	for i := 0; i < la; i++ {
		if !matchedA[i] {
			continue
		}
		for !matchedB[j] {
			j++
		}
		if ra[i] != rb[j] {
			transpositions++
		}
		j++
	}
	m := float64(matches)
	t := float64(transpositions) / 2
	return (m/float64(la) + m/float64(lb) + (m-t)/m) / 3
}

// ScaledNumericSimilarity maps the absolute difference of two numbers to
// (0, 1] relative to a characteristic scale (e.g. the field's standard
// deviation over the corpus): exp(−|a−b|/scale). Equal values give 1; values
// a scale apart give 1/e. A non-positive or non-finite scale falls back to
// NumericSimilarity, and non-finite inputs give 0. Scale-aware comparison is
// what makes fields like publication years informative: the plain relative
// difference of two years is always ≈1.
func ScaledNumericSimilarity(a, b, scale float64) float64 {
	if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
		return 0
	}
	if scale <= 0 || math.IsNaN(scale) || math.IsInf(scale, 0) {
		return NumericSimilarity(a, b)
	}
	return math.Exp(-math.Abs(a-b) / scale)
}

// NumericSimilarity is the paper's normalised absolute difference for
// numeric fields, mapped to [0, 1]: 1 − |a−b| / (|a| + |b|) when the
// denominator is positive; equal values (including 0, 0) give 1. Non-finite
// inputs give 0.
func NumericSimilarity(a, b float64) float64 {
	if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
		return 0
	}
	if a == b {
		return 1
	}
	den := math.Abs(a) + math.Abs(b)
	if den == 0 {
		return 1
	}
	s := 1 - math.Abs(a-b)/den
	if s < 0 {
		return 0
	}
	return s
}
