package metric

import (
	"math"
	"testing"
	"testing/quick"

	"oasis/internal/textutil"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestJaccard(t *testing.T) {
	cases := []struct {
		a, b []string
		want float64
	}{
		{nil, nil, 1},
		{[]string{"a"}, nil, 0},
		{[]string{"a", "b"}, []string{"a", "b"}, 1},
		{[]string{"a", "b"}, []string{"b", "c"}, 1.0 / 3},
		{[]string{"a"}, []string{"b"}, 0},
	}
	for _, c := range cases {
		if got := Jaccard(c.a, c.b); !approx(got, c.want, 1e-12) {
			t.Errorf("Jaccard(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestJaccardProperties(t *testing.T) {
	f := func(a, b string) bool {
		ga := textutil.Trigrams(textutil.Normalize(a))
		gb := textutil.Trigrams(textutil.Normalize(b))
		j1 := Jaccard(ga, gb)
		j2 := Jaccard(gb, ga)
		// Symmetry, range, self-similarity.
		return j1 == j2 && j1 >= 0 && j1 <= 1 && Jaccard(ga, ga) == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDice(t *testing.T) {
	if got := Dice([]string{"a", "b"}, []string{"b", "c"}); !approx(got, 0.5, 1e-12) {
		t.Errorf("Dice = %v", got)
	}
	if Dice(nil, nil) != 1 || Dice([]string{"x"}, nil) != 0 {
		t.Error("Dice empty-set conventions broken")
	}
}

func TestDiceGeqJaccardProperty(t *testing.T) {
	f := func(a, b string) bool {
		ga := textutil.Trigrams(textutil.Normalize(a))
		gb := textutil.Trigrams(textutil.Normalize(b))
		return Dice(ga, gb) >= Jaccard(ga, gb)-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTrigramJaccard(t *testing.T) {
	if got := TrigramJaccard("kitten", "kitten"); got != 1 {
		t.Errorf("identical strings = %v", got)
	}
	sim := TrigramJaccard("apple iphone 6", "apple iphone 6s")
	dis := TrigramJaccard("apple iphone 6", "samsung galaxy s5")
	if !(sim > dis) {
		t.Errorf("trigram similarity ordering: %v vs %v", sim, dis)
	}
}

func TestCosineSparse(t *testing.T) {
	a := map[string]float64{"x": 1}
	b := map[string]float64{"y": 1}
	if got := CosineSparse(a, b); got != 0 {
		t.Errorf("orthogonal = %v", got)
	}
	if got := CosineSparse(a, a); !approx(got, 1, 1e-12) {
		t.Errorf("self = %v", got)
	}
	c := map[string]float64{"x": 1, "y": 1}
	if got := CosineSparse(a, c); !approx(got, 1/math.Sqrt2, 1e-12) {
		t.Errorf("45° = %v", got)
	}
	if CosineSparse(nil, nil) != 1 || CosineSparse(a, nil) != 0 {
		t.Error("empty conventions broken")
	}
}

func TestCosineWithCorpusVectors(t *testing.T) {
	corpus := textutil.NewCorpus([]string{
		"digital camera with optical zoom",
		"laptop with retina display",
		"compact digital camera",
	})
	va := corpus.Vector("digital camera with optical zoom")
	vb := corpus.Vector("compact digital camera")
	vc := corpus.Vector("laptop with retina display")
	simAB := CosineSparse(va, vb)
	simAC := CosineSparse(va, vc)
	if !(simAB > simAC) {
		t.Errorf("corpus cosine ordering: %v vs %v", simAB, simAC)
	}
	if s := CosineSparse(va, va); !approx(s, 1, 1e-9) {
		t.Errorf("self cosine = %v", s)
	}
}

func TestLevenshtein(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "", 3},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"abc", "abc", 0},
		{"résumé", "resume", 2},
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Errorf("Levenshtein(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestLevenshteinProperties(t *testing.T) {
	f := func(a, b string) bool {
		if len(a) > 40 {
			a = a[:40]
		}
		if len(b) > 40 {
			b = b[:40]
		}
		d := Levenshtein(a, b)
		la, lb := len([]rune(a)), len([]rune(b))
		diff := la - lb
		if diff < 0 {
			diff = -diff
		}
		maxLen := la
		if lb > maxLen {
			maxLen = lb
		}
		// Symmetry, identity, bounds.
		return d == Levenshtein(b, a) &&
			(a != b || d == 0) &&
			d >= diff && d <= maxLen
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLevenshteinSimilarity(t *testing.T) {
	if s := LevenshteinSimilarity("", ""); s != 1 {
		t.Errorf("empty = %v", s)
	}
	if s := LevenshteinSimilarity("abc", "abc"); s != 1 {
		t.Errorf("identical = %v", s)
	}
	if s := LevenshteinSimilarity("abc", "xyz"); s != 0 {
		t.Errorf("disjoint = %v", s)
	}
}

func TestJaroWinkler(t *testing.T) {
	if s := JaroWinkler("", ""); s != 1 {
		t.Errorf("empty = %v", s)
	}
	if s := JaroWinkler("abc", ""); s != 0 {
		t.Errorf("one empty = %v", s)
	}
	if s := JaroWinkler("martha", "martha"); !approx(s, 1, 1e-12) {
		t.Errorf("identical = %v", s)
	}
	// Classic reference value: JW(MARTHA, MARHTA) = 0.961.
	if s := JaroWinkler("martha", "marhta"); !approx(s, 0.961, 1e-3) {
		t.Errorf("martha/marhta = %v", s)
	}
	// Shared prefix should boost similarity versus a suffix variant.
	if !(JaroWinkler("prefixxa", "prefixxb") > JaroWinkler("aprefixx", "bprefixx")) {
		t.Error("prefix boost missing")
	}
}

func TestJaroWinklerRangeProperty(t *testing.T) {
	f := func(a, b string) bool {
		if len(a) > 30 {
			a = a[:30]
		}
		if len(b) > 30 {
			b = b[:30]
		}
		s := JaroWinkler(a, b)
		return s >= 0 && s <= 1+1e-12 && approx(s, JaroWinkler(b, a), 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestNumericSimilarity(t *testing.T) {
	cases := []struct {
		a, b, want float64
	}{
		{0, 0, 1},
		{5, 5, 1},
		{-3, -3, 1},
		{1, 3, 0.5},
		{0, 10, 0},
		{-1, 1, 0},
	}
	for _, c := range cases {
		if got := NumericSimilarity(c.a, c.b); !approx(got, c.want, 1e-12) {
			t.Errorf("NumericSimilarity(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
	if NumericSimilarity(math.NaN(), 1) != 0 || NumericSimilarity(1, math.Inf(1)) != 0 {
		t.Error("non-finite handling broken")
	}
}

func TestNumericSimilarityProperties(t *testing.T) {
	f := func(ai, bi int16) bool {
		a, b := float64(ai), float64(bi)
		s := NumericSimilarity(a, b)
		return s >= 0 && s <= 1 && s == NumericSimilarity(b, a) && NumericSimilarity(a, a) == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkTrigramJaccard(b *testing.B) {
	x := "canon powershot sx30 is digital camera"
	y := "canon powershot sx30is digital camera black"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TrigramJaccard(x, y)
	}
}

func BenchmarkLevenshtein(b *testing.B) {
	x := "the quick brown fox jumps over the lazy dog"
	y := "the quikc brown fx jumps ovr the lazy dgo"
	for i := 0; i < b.N; i++ {
		Levenshtein(x, y)
	}
}
