package wal

// WAL coverage for content-addressed pool references: create records for
// stored pools are O(1) instead of O(pool), recovery resolves the hash back
// through the store bit-for-bit (including through compaction snapshots),
// and a missing, truncated or hash-mismatched pool at replay time is a
// deterministic boot error — never a panic, never a partial recovery.

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"oasis"
	"oasis/internal/poolstore"
	"oasis/internal/session"
)

// poolStoreFixture builds a store holding one pool of n pairs.
func poolStoreFixture(t *testing.T, n int, seed uint64) (store *poolstore.Store, id string, truth []bool) {
	t.Helper()
	store, err := poolstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	scores, preds, truth := walPool(n, seed)
	info, _, err := store.Put(scores, preds)
	if err != nil {
		t.Fatal(err)
	}
	return store, info.ID, truth
}

// TestPoolRefCreateRecordIsTiny is the O(N)→O(1) acceptance check: the
// create record of a session referencing a stored 1M-pair pool must fit in
// 1 KiB (the inline form is ~18 MB of JSON), and the session must still
// recover from it.
func TestPoolRefCreateRecordIsTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a 1M-pair pool")
	}
	store, id, truth := poolStoreFixture(t, 1<<20, 3)
	dir := t.TempDir()
	mgr := session.NewManager(session.ManagerOptions{Pools: store})
	j := mustOpen(t, dir, mgr, Options{Fsync: "off"})
	pre := j.Stats().BytesAppended
	s, err := mgr.Create(session.Config{
		ID: "big", PoolID: id, Calibrated: true,
		Options: oasis.Options{Strata: 30, Seed: 9},
	})
	if err != nil {
		t.Fatal(err)
	}
	createBytes := j.Stats().BytesAppended - pre
	if createBytes > 1024 {
		t.Fatalf("create record for a 1M-pair poolref session is %d bytes, want <= 1024", createBytes)
	}
	t.Logf("1M-pair poolref create record: %d bytes", createBytes)

	driveRound(t, s, 8, truth)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	mgr2 := session.NewManager(session.ManagerOptions{Pools: store})
	j2 := mustOpen(t, dir, mgr2, Options{Fsync: "off"})
	defer j2.Close()
	r, err := mgr2.Get("big")
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Status(); got.PoolSize != 1<<20 || got.LabelsCommitted != 8 {
		t.Fatalf("recovered 1M session status = %+v", got)
	}
	if got := store.Refs(id); got != 2 { // live manager's session + recovered one
		t.Fatalf("store refs = %d, want 2", got)
	}
}

// TestRecoveryResolvesPoolRefs: sessions created by PoolID — and inline
// sessions interned into the store — recover from the journal through the
// pool store and continue the exact proposal sequence, including across a
// compaction that folds their create records into a snapshot.
func TestRecoveryResolvesPoolRefs(t *testing.T) {
	store, id, truth := poolStoreFixture(t, 3000, 11)
	scores, preds, _ := walPool(3000, 11)
	dir := t.TempDir()
	mgr := session.NewManager(session.ManagerOptions{Pools: store, Shards: 2})
	j := mustOpen(t, dir, mgr, Options{Fsync: "off"})

	// One explicit poolref session, one inline session (interned on create:
	// its journal record carries the same hash).
	byRef, err := mgr.Create(session.Config{ID: "byref", PoolID: id, Calibrated: true, Options: oasis.Options{Strata: 10, Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	inline, err := mgr.Create(session.Config{ID: "inline", Scores: scores, Preds: preds, Calibrated: true, Options: oasis.Options{Strata: 10, Seed: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if got := store.Refs(id); got != 2 {
		t.Fatalf("refs after poolref + interned inline create = %d, want 2", got)
	}
	for i := 0; i < 6; i++ {
		driveRound(t, byRef, 3, truth)
		driveRound(t, inline, 2, truth)
	}
	// Fold the create records into per-lane snapshots, then keep going: the
	// snapshot path must carry the pool reference too.
	if err := j.Compact(); err != nil {
		t.Fatal(err)
	}
	driveRound(t, byRef, 3, truth)
	driveRound(t, inline, 2, truth)

	// Reference managers driven identically, for the continuation check.
	refMgr := session.NewManager(session.ManagerOptions{Pools: store})
	refByRef, err := refMgr.Create(session.Config{ID: "byref", PoolID: id, Calibrated: true, Options: oasis.Options{Strata: 10, Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	refInline, err := refMgr.Create(session.Config{ID: "inline", Scores: scores, Preds: preds, Calibrated: true, Options: oasis.Options{Strata: 10, Seed: 2}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		driveRound(t, refByRef, 3, truth)
		driveRound(t, refInline, 2, truth)
	}
	driveRound(t, refByRef, 3, truth)
	driveRound(t, refInline, 2, truth)

	// Crash (abandon the journal), recover into a fresh manager over the
	// same store.
	mgr2 := session.NewManager(session.ManagerOptions{Pools: store, Shards: 2})
	j2 := mustOpen(t, dir, mgr2, Options{Fsync: "off"})
	defer j2.Close()
	recByRef, err := mgr2.Get("byref")
	if err != nil {
		t.Fatal(err)
	}
	recInline, err := mgr2.Get("inline")
	if err != nil {
		t.Fatal(err)
	}
	requireSameContinuation(t, recByRef, refByRef, 5, 3, truth)
	requireSameContinuation(t, recInline, refInline, 5, 2, truth)
	if got := store.Refs(id); got != 6 { // 2 live + 2 reference + 2 recovered
		t.Fatalf("refs after recovery = %d, want 6", got)
	}
}

// TestReplayWithBrokenPoolFailsStop: recovery of a journal whose create
// records reference a pool the store cannot resolve must fail Open with a
// deterministic error — missing store entry, truncated file, or a file
// whose content hashes differently — and never register a partial manager.
func TestReplayWithBrokenPoolFailsStop(t *testing.T) {
	poolDir := t.TempDir()
	store, err := poolstore.Open(poolDir)
	if err != nil {
		t.Fatal(err)
	}
	scores, preds, truth := walPool(2000, 13)
	putInfo, _, err := store.Put(scores, preds)
	if err != nil {
		t.Fatal(err)
	}
	id := putInfo.ID
	walDir := t.TempDir()
	mgr := session.NewManager(session.ManagerOptions{Pools: store})
	j := mustOpen(t, walDir, mgr, Options{Fsync: "off"})
	s, err := mgr.Create(session.Config{ID: "victim", PoolID: id, Calibrated: true, Options: oasis.Options{Strata: 8, Seed: 5}})
	if err != nil {
		t.Fatal(err)
	}
	driveRound(t, s, 4, truth)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	poolPath := filepath.Join(poolDir, id+".pool")
	raw, err := os.ReadFile(poolPath)
	if err != nil {
		t.Fatal(err)
	}

	// Each scenario damages the pool differently; Open must refuse the boot
	// with a pool-specific error and leave the manager empty.
	scenarios := []struct {
		name    string
		prepare func(t *testing.T, dir string)
		wantErr string
	}{
		{"missing pool file", func(t *testing.T, dir string) {}, "no such pool"},
		{"truncated pool file", func(t *testing.T, dir string) {
			if err := os.WriteFile(filepath.Join(dir, id+".pool"), raw[:len(raw)-9], 0o644); err != nil {
				t.Fatal(err)
			}
		}, id[:8]},
		{"hash mismatch", func(t *testing.T, dir string) {
			other, _, _ := walPool(2000, 14)
			otherPreds := make([]bool, len(other))
			for i := range other {
				otherPreds[i] = other[i] >= 0.5
			}
			enc, err := poolstore.Encode(other, otherPreds)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(dir, id+".pool"), enc, 0o644); err != nil {
				t.Fatal(err)
			}
		}, "content verification"},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			dir := t.TempDir()
			sc.prepare(t, dir)
			broken, err := poolstore.Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			fresh := session.NewManager(session.ManagerOptions{Pools: broken})
			_, err = Open(walDir, fresh, Options{Fsync: "off"})
			if err == nil || !strings.Contains(err.Error(), sc.wantErr) {
				t.Fatalf("Open: err = %v, want substring %q", err, sc.wantErr)
			}
			if fresh.Len() != 0 {
				t.Fatalf("failed recovery registered %d session(s)", fresh.Len())
			}
		})
	}

	// And with no store at all: same deterministic refusal.
	t.Run("no store attached", func(t *testing.T) {
		fresh := session.NewManager(session.ManagerOptions{})
		_, err := Open(walDir, fresh, Options{Fsync: "off"})
		if err == nil || !strings.Contains(err.Error(), "no pool store") {
			t.Fatalf("Open without store: err = %v", err)
		}
	})

	// The undamaged store still recovers, proving the journal itself was
	// never the problem.
	healthy := session.NewManager(session.ManagerOptions{Pools: store})
	j2, err := Open(walDir, healthy, Options{Fsync: "off"})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if healthy.Len() != 1 {
		t.Fatalf("healthy recovery found %d session(s), want 1", healthy.Len())
	}
}

// TestReplayAbsolvesDeletedSessionsPool: removing a pool after its last
// referencing session was deleted is legitimate, even while the session's
// create record still sits in the un-compacted log — the replayed delete
// absolves the unresolvable create, and the boot succeeds. A live session
// over the same missing pool must still fail the boot.
func TestReplayAbsolvesDeletedSessionsPool(t *testing.T) {
	poolDir := t.TempDir()
	store, err := poolstore.Open(poolDir)
	if err != nil {
		t.Fatal(err)
	}
	scores, preds, truth := walPool(1500, 19)
	putInfo, _, err := store.Put(scores, preds)
	if err != nil {
		t.Fatal(err)
	}
	id := putInfo.ID
	keepScores, keepPreds, _ := walPool(1500, 20)
	keepInfo, _, err := store.Put(keepScores, keepPreds)
	if err != nil {
		t.Fatal(err)
	}
	keepID := keepInfo.ID
	walDir := t.TempDir()
	mgr := session.NewManager(session.ManagerOptions{Pools: store})
	j := mustOpen(t, walDir, mgr, Options{Fsync: "off"})
	// A session on the doomed pool: created, labelled, deleted. Its create
	// and delete records stay in the tail (no compaction).
	s, err := mgr.Create(session.Config{ID: "gone", PoolID: id, Calibrated: true, Options: oasis.Options{Strata: 6, Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	driveRound(t, s, 3, truth)
	if err := mgr.Delete("gone"); err != nil {
		t.Fatal(err)
	}
	// A survivor session on a different pool.
	if _, err := mgr.Create(session.Config{ID: "keep", PoolID: keepID, Calibrated: true, Options: oasis.Options{Strata: 6, Seed: 2}}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// The operator removes the now-unreferenced pool...
	if err := store.Remove(id); err != nil {
		t.Fatal(err)
	}
	// ...and the next boot replays create("gone")+delete("gone") over the
	// missing pool without failing.
	store2, err := poolstore.Open(poolDir)
	if err != nil {
		t.Fatal(err)
	}
	mgr2 := session.NewManager(session.ManagerOptions{Pools: store2})
	j2, err := Open(walDir, mgr2, Options{Fsync: "off"})
	if err != nil {
		t.Fatalf("recovery after legitimate pool removal: %v", err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	if mgr2.Len() != 1 {
		t.Fatalf("recovered %d session(s), want just the survivor", mgr2.Len())
	}
	if _, err := mgr2.Get("keep"); err != nil {
		t.Fatal("survivor session missing after recovery")
	}

	// Control: the same journal with the SURVIVOR's pool gone must refuse
	// to boot — no delete ever absolves "keep".
	store3, err := poolstore.Open(t.TempDir()) // empty: keep's pool missing
	if err != nil {
		t.Fatal(err)
	}
	mgr3 := session.NewManager(session.ManagerOptions{Pools: store3})
	if _, err := Open(walDir, mgr3, Options{Fsync: "off"}); err == nil || !strings.Contains(err.Error(), "never deleted") {
		t.Fatalf("boot with a live session's pool missing: err = %v", err)
	}
}

// TestReplayAbsolvesCompactedSessionsPool is the compaction variant of the
// absolution: a session folded LIVE into a compaction snapshot, deleted
// afterwards (the delete record in the tail), its pool then removed. The
// snapshot restore parks the unresolvable session instead of aborting, and
// the tail's delete absolves it — the boot must succeed with just the
// survivor.
func TestReplayAbsolvesCompactedSessionsPool(t *testing.T) {
	poolDir := t.TempDir()
	store, err := poolstore.Open(poolDir)
	if err != nil {
		t.Fatal(err)
	}
	scores, preds, truth := walPool(1500, 21)
	putInfo, _, err := store.Put(scores, preds)
	if err != nil {
		t.Fatal(err)
	}
	id := putInfo.ID
	keepScores, keepPreds, keepTruth := walPool(1500, 22)
	keepInfo, _, err := store.Put(keepScores, keepPreds)
	if err != nil {
		t.Fatal(err)
	}
	walDir := t.TempDir()
	mgr := session.NewManager(session.ManagerOptions{Pools: store})
	j := mustOpen(t, walDir, mgr, Options{Fsync: "off"})
	s, err := mgr.Create(session.Config{ID: "gone", PoolID: id, Calibrated: true, Options: oasis.Options{Strata: 6, Seed: 3}})
	if err != nil {
		t.Fatal(err)
	}
	keep, err := mgr.Create(session.Config{ID: "keep", PoolID: keepInfo.ID, Calibrated: true, Options: oasis.Options{Strata: 6, Seed: 4}})
	if err != nil {
		t.Fatal(err)
	}
	driveRound(t, s, 3, truth)
	driveRound(t, keep, 3, keepTruth)
	// Fold both sessions — live — into the compaction snapshot, THEN delete
	// one: its create now lives only in the snapshot, its delete only in the
	// tail.
	if err := j.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := mgr.Delete("gone"); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := store.Remove(id); err != nil {
		t.Fatal(err)
	}

	store2, err := poolstore.Open(poolDir)
	if err != nil {
		t.Fatal(err)
	}
	mgr2 := session.NewManager(session.ManagerOptions{Pools: store2})
	j2, err := Open(walDir, mgr2, Options{Fsync: "off"})
	if err != nil {
		t.Fatalf("recovery after pool removal behind a compaction snapshot: %v", err)
	}
	defer j2.Close()
	if mgr2.Len() != 1 {
		t.Fatalf("recovered %d session(s), want just the survivor", mgr2.Len())
	}
	recovered, err := mgr2.Get("keep")
	if err != nil {
		t.Fatal("survivor session missing after recovery")
	}
	if st := recovered.Status(); st.LabelsCommitted != 3 {
		t.Fatalf("survivor recovered %d labels, want 3", st.LabelsCommitted)
	}
}
