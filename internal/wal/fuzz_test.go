package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"oasis"
	"oasis/internal/session"
)

// fuzzMeta writes a wal-meta.json declaring a 2-lane journal into dir.
func fuzzMeta(tb testing.TB, dir string) {
	tb.Helper()
	if err := os.WriteFile(filepath.Join(dir, metaName), []byte(`{"version":2,"lanes":2}`), 0o644); err != nil {
		tb.Fatal(err)
	}
}

// FuzzWALReplay throws arbitrary bytes at the replay path as segment files —
// both as a legacy v1 single-stream segment and as lane 0 of a two-lane v2
// journal: Open must never panic or over-allocate, whatever the framing,
// shard tags, JSON or event semantics of the input — at worst it returns an
// error. The seed corpus is a real little two-shard log (create / propose /
// commit / release / restart records across two lanes) plus hand-built
// hostile frames — mixed-lane torn tails, an out-of-range shard tag, a
// record tagged for the other lane — so mutations explore the deep replay
// paths, not just the CRC gate.
func FuzzWALReplay(f *testing.F) {
	seedDir := f.TempDir()
	mgr := session.NewManager(session.ManagerOptions{Shards: 2})
	j, err := Open(seedDir, mgr, Options{Fsync: "off"})
	if err != nil {
		f.Fatal(err)
	}
	scores, preds, truth := walPool(60, 2)
	// Two sessions in different shards, so the seed log has records in both
	// lanes. ShardOf is deterministic, so scan a few IDs for one per shard.
	var ids []string
	for i := 0; len(ids) < 2; i++ {
		id := fmt.Sprintf("seed-%d", i)
		if session.ShardOf(id, 2) == len(ids) {
			ids = append(ids, id)
		}
	}
	for k, id := range ids {
		s, err := mgr.Create(session.Config{
			ID: id, Scores: scores, Preds: preds, Calibrated: true,
			Options: oasis.Options{Strata: 4, Seed: uint64(3 + k)},
		})
		if err != nil {
			f.Fatal(err)
		}
		props, err := s.Propose(8)
		if err != nil {
			f.Fatal(err)
		}
		pairs := make([]int, 0, len(props))
		labels := make([]bool, 0, len(props))
		for _, p := range props[:4] {
			pairs = append(pairs, p.Pair)
			labels = append(labels, truth[p.Pair])
		}
		if _, err := s.CommitBatch(pairs, labels); err != nil {
			f.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		f.Fatal(err)
	}
	inv, err := readDirState(seedDir)
	if err != nil {
		f.Fatal(err)
	}
	for lane, segs := range inv.laneSegs {
		for _, idx := range segs {
			data, err := os.ReadFile(filepath.Join(seedDir, segmentName(lane, idx)))
			if err != nil {
				f.Fatal(err)
			}
			f.Add(data)
			if len(data) > 10 {
				f.Add(data[:len(data)-7]) // torn tail
			}
		}
	}
	// Hostile hand-built frames: an out-of-range shard tag (7 in a 2-lane
	// journal), a CRC-valid record tagged for the other lane, and a
	// mixed-lane torn pile-up (valid lane-0 record + torn lane-1 record).
	payload := []byte(`{"lsn":1,"type":"restart"}`)
	f.Add(appendRecord(nil, 7, payload))
	f.Add(appendRecord(nil, 1, payload))
	torn := appendRecord(nil, 1, payload)
	f.Add(append(appendRecord(nil, 0, payload), torn[:len(torn)-3]...))
	f.Add([]byte{})
	f.Add([]byte("not a wal segment at all"))

	f.Fuzz(func(t *testing.T, data []byte) {
		// Tripwire: a replay that does not finish promptly is a hang bug;
		// panic with the input so the fuzzer saves it instead of stalling CI.
		timer := time.AfterFunc(30*time.Second, func() {
			panic(fmt.Sprintf("wal replay hung on input %x", data))
		})
		defer timer.Stop()

		// Variant 1: the bytes as a legacy v1 single-stream segment.
		legacyDir := t.TempDir()
		if err := os.WriteFile(filepath.Join(legacyDir, legacySegmentName(1)), data, 0o644); err != nil {
			t.Fatal(err)
		}
		exercise(t, legacyDir, 1)

		// Variant 2: the bytes as lane 0 of a two-lane v2 journal (lane 1
		// present but empty, as after a crash at first boot).
		laneDir := t.TempDir()
		fuzzMeta(t, laneDir)
		if err := os.WriteFile(filepath.Join(laneDir, segmentName(0, 1)), data, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(laneDir, segmentName(1, 1)), nil, 0o644); err != nil {
			t.Fatal(err)
		}
		exercise(t, laneDir, 2)
	})
}

// exercise opens the journal and, if it recovers, checks the recovered
// state is coherent and the journal still closes cleanly.
func exercise(t *testing.T, dir string, shards int) {
	t.Helper()
	mgr := session.NewManager(session.ManagerOptions{Shards: shards})
	j, err := Open(dir, mgr, Options{Fsync: "off"})
	if err != nil {
		return // rejected: fine, as long as it did not panic
	}
	if mgr.Len() > 0 {
		for _, st := range mgr.List() {
			if st.PendingProposals != 0 {
				t.Fatalf("recovered session %q has pending proposals", st.ID)
			}
		}
	}
	j.Close()
}
