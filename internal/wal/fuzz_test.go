package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"oasis"
	"oasis/internal/session"
)

// FuzzWALReplay throws arbitrary bytes at the replay path as a segment file:
// Open must never panic or over-allocate, whatever the framing, JSON or
// event semantics of the input — at worst it returns an error. The seed
// corpus is a real little log (create / propose / commit / release /
// restart records) so mutations explore the deep replay paths, not just the
// CRC gate.
func FuzzWALReplay(f *testing.F) {
	seedDir := f.TempDir()
	mgr := session.NewManager(session.ManagerOptions{})
	j, err := Open(seedDir, mgr, Options{Fsync: "off"})
	if err != nil {
		f.Fatal(err)
	}
	scores, preds, truth := walPool(60, 2)
	s, err := mgr.Create(session.Config{
		ID: "seed", Scores: scores, Preds: preds, Calibrated: true,
		Options: oasis.Options{Strata: 4, Seed: 3},
	})
	if err != nil {
		f.Fatal(err)
	}
	props, err := s.Propose(8)
	if err != nil {
		f.Fatal(err)
	}
	pairs := make([]int, 0, len(props))
	labels := make([]bool, 0, len(props))
	for _, p := range props[:4] {
		pairs = append(pairs, p.Pair)
		labels = append(labels, truth[p.Pair])
	}
	if _, err := s.CommitBatch(pairs, labels); err != nil {
		f.Fatal(err)
	}
	if err := j.Close(); err != nil {
		f.Fatal(err)
	}
	segs, _, err := listDir(seedDir)
	if err != nil {
		f.Fatal(err)
	}
	for _, idx := range segs {
		data, err := os.ReadFile(filepath.Join(seedDir, segmentName(idx)))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
		if len(data) > 10 {
			f.Add(data[:len(data)-7]) // torn tail
		}
	}
	f.Add([]byte{})
	f.Add([]byte("not a wal segment at all"))

	f.Fuzz(func(t *testing.T, data []byte) {
		// Tripwire: a replay that does not finish promptly is a hang bug;
		// panic with the input so the fuzzer saves it instead of stalling CI.
		timer := time.AfterFunc(30*time.Second, func() {
			panic(fmt.Sprintf("wal replay hung on input %x", data))
		})
		defer timer.Stop()
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segmentName(1)), data, 0o644); err != nil {
			t.Fatal(err)
		}
		mgr := session.NewManager(session.ManagerOptions{})
		j, err := Open(dir, mgr, Options{Fsync: "off"})
		if err != nil {
			return // rejected: fine, as long as it did not panic
		}
		// A journal that opened must still be usable and closable.
		if mgr.Len() > 0 {
			for _, st := range mgr.List() {
				if st.PendingProposals != 0 {
					t.Fatalf("recovered session %q has pending proposals", st.ID)
				}
			}
		}
		j.Close()
	})
}
