package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// Segment framing. Each record is
//
//	uint32 little-endian payload length
//	uint32 little-endian CRC-32C (Castagnoli) of the payload
//	payload (JSON-encoded session.Event)
//
// written with a single write(2), so a crash can only leave a truncated
// suffix — never interleave records. The reader treats a short or
// CRC-mismatching record at the end of the newest segment as a torn write
// and drops it; the same damage anywhere else is real corruption and fatal.

const (
	recordHeaderSize = 8
	// maxRecordSize bounds one record's payload; a create event embeds the
	// session's whole pool, so the cap is generous. Journal.Append enforces
	// it (and with it the uint32 length field): a larger payload is rejected
	// before it is written, never acknowledged and then unreadable at replay.
	maxRecordSize = 1 << 30
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// appendRecord frames payload onto buf and returns the extended buffer.
func appendRecord(buf, payload []byte) []byte {
	var hdr [recordHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	return append(append(buf, hdr[:]...), payload...)
}

// scanRecords walks the framed records in data, calling fn on each payload.
// It returns the number of cleanly-framed bytes consumed and whether the
// remainder is torn (short header, impossible length, short payload, or CRC
// mismatch). A non-nil fn error aborts the scan and is returned as err with
// torn == false.
func scanRecords(data []byte, fn func(payload []byte) error) (consumed int, torn bool, err error) {
	off := 0
	for {
		rest := len(data) - off
		if rest == 0 {
			return off, false, nil
		}
		if rest < recordHeaderSize {
			return off, true, nil
		}
		n := binary.LittleEndian.Uint32(data[off : off+4])
		crc := binary.LittleEndian.Uint32(data[off+4 : off+8])
		// The writer never frames an empty payload (events are JSON), but a
		// crash can leave a zero-filled tail whose 8 zero bytes would pass
		// the CRC of an empty record; classify it as torn, not as a record.
		if n == 0 || n > maxRecordSize || int(n) > rest-recordHeaderSize {
			return off, true, nil
		}
		payload := data[off+recordHeaderSize : off+recordHeaderSize+int(n)]
		if crc32.Checksum(payload, castagnoli) != crc {
			return off, true, nil
		}
		if err := fn(payload); err != nil {
			return off, false, err
		}
		off += recordHeaderSize + int(n)
	}
}

// hasValidRecordAfter reports whether a complete, CRC-valid record begins at
// any byte offset past the start of data (offset 0 is the frame that already
// failed). A crash-torn tail always extends to end of file — a single
// write(2) per record means damage from a torn write is a suffix — so a
// valid frame after the damage proves mid-log corruption, which recovery
// must refuse rather than silently truncate acknowledged records away.
func hasValidRecordAfter(data []byte) bool {
	for off := 1; off+recordHeaderSize <= len(data); off++ {
		n := binary.LittleEndian.Uint32(data[off : off+4])
		if n == 0 || n > maxRecordSize || off+recordHeaderSize+int(n) > len(data) {
			continue
		}
		crc := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if crc32.Checksum(data[off+recordHeaderSize:off+recordHeaderSize+int(n)], castagnoli) == crc {
			return true
		}
	}
	return false
}

// File naming: segments are wal-<16-digit index>.log, compaction snapshots
// snap-<16-digit boundary>.json where the boundary is the first segment NOT
// folded into the snapshot.
const (
	segmentPrefix  = "wal-"
	segmentSuffix  = ".log"
	snapshotPrefix = "snap-"
	snapshotSuffix = ".json"
)

func segmentName(idx uint64) string { return fmt.Sprintf("wal-%016d.log", idx) }

func snapshotName(idx uint64) string { return fmt.Sprintf("snap-%016d.json", idx) }

// parseIndexed extracts the numeric index from a prefixed/suffixed file
// name, reporting whether the name matched.
func parseIndexed(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	mid := name[len(prefix) : len(name)-len(suffix)]
	idx, err := strconv.ParseUint(mid, 10, 64)
	if err != nil {
		return 0, false
	}
	return idx, true
}

// truncateDurable truncates path to size and makes the truncation durable:
// fsync through the file handle (the new length is inode metadata) and fsync
// the parent directory for good measure. Used when recovery drops a torn
// tail — the shorter file must be on stable storage before this boot
// creates new segments, or a power cut could resurrect the torn suffix
// mid-log.
func truncateDurable(path string, size int64, dir string) error {
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		return err
	}
	err = f.Truncate(size)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so freshly created/renamed entries are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// WriteFileAtomic writes data to path through a temp file in the same
// directory: write, fsync, rename into place, fsync the directory. The temp
// file is removed on every failure path, so aborted writes leave no litter.
// Used for WAL compaction snapshots and by cmd/oasis-server's -snapshot
// persistence.
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	cleanup := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		return cleanup(err)
	}
	if err := tmp.Chmod(perm); err != nil {
		return cleanup(err)
	}
	if err := tmp.Sync(); err != nil {
		return cleanup(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	return syncDir(dir)
}
