package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// Segment framing, version 2 (the sharded-lane format). Each record is
//
//	uint32 little-endian payload length
//	uint32 little-endian CRC-32C (Castagnoli) of the 4 extension bytes + payload
//	uint16 little-endian shard tag (the lane the record belongs to)
//	uint8  record format version (recordVersion)
//	uint8  reserved (zero)
//	payload (JSON-encoded session.Event)
//
// written with a single write(2), so a crash can only leave a truncated
// suffix — never interleave records. The CRC covers the shard tag and
// version byte as well as the payload, so a flipped tag can never silently
// route a record into the wrong lane. The reader treats a short or
// CRC-mismatching record at the end of a lane's newest segment as a torn
// write and drops it; the same damage anywhere else is real corruption and
// fatal, and a CRC-valid record whose version or shard tag is out of range
// is rejected outright (never silently merged).
//
// Version 1 (the pre-shard format) had an 8-byte header — length + CRC of
// the payload alone — and a single un-tagged segment stream. Old journals
// remain read-compatible: Open detects them by file name and upgrades in
// place (see the legacy path in recover).

const (
	recordHeaderSizeV1 = 8
	recordHeaderSize   = 12
	// recordVersion is the current record format version, bumped from the
	// implicit v1 when lanes and shard tags were added to the header.
	recordVersion = 2
	// maxRecordSize bounds one record's payload; an inline create event (no
	// pool store attached) embeds the session's whole pool, so the cap is
	// generous. With a pool store, create records carry only the pool's
	// content hash and stay O(1) regardless of pool size. Journal.Append
	// enforces the cap (and with it the uint32 length field): a larger
	// payload is rejected before it is written, never acknowledged and then
	// unreadable at replay.
	maxRecordSize = 1 << 30
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// appendRecord frames payload onto buf in the v2 format, tagged with the
// given shard, and returns the extended buffer.
func appendRecord(buf []byte, shard int, payload []byte) []byte {
	var hdr [recordHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint16(hdr[8:10], uint16(shard))
	hdr[10] = recordVersion
	hdr[11] = 0
	crc := crc32.Checksum(hdr[8:12], castagnoli)
	crc = crc32.Update(crc, castagnoli, payload)
	binary.LittleEndian.PutUint32(hdr[4:8], crc)
	return append(append(buf, hdr[:]...), payload...)
}

// errRecord rejects a CRC-valid record whose header extension is
// semantically invalid (unknown version, out-of-range shard tag). The CRC
// proves a writer framed it deliberately, so this is never classified as a
// torn tail: replay refuses the log rather than silently merging or
// truncating it.
func errRecord(off int, format string, args ...any) error {
	return fmt.Errorf("record at offset %d: %s", off, fmt.Sprintf(format, args...))
}

// scanRecords walks the v2 framed records in data, calling fn on each
// (shard, payload). lanes bounds the acceptable shard tags. It returns the
// number of cleanly-framed bytes consumed and whether the remainder is torn
// (short header, impossible length, short payload, or CRC mismatch). A
// CRC-valid record with an unknown version or an out-of-range shard tag, or
// a non-nil fn error, aborts the scan and is returned as err with
// torn == false.
func scanRecords(data []byte, lanes int, fn func(shard int, payload []byte) error) (consumed int, torn bool, err error) {
	off := 0
	for {
		rest := len(data) - off
		if rest == 0 {
			return off, false, nil
		}
		if rest < recordHeaderSize {
			return off, true, nil
		}
		n := binary.LittleEndian.Uint32(data[off : off+4])
		crc := binary.LittleEndian.Uint32(data[off+4 : off+8])
		// The writer never frames an empty payload (events are JSON), but a
		// crash can leave a zero-filled tail whose zero bytes would pass the
		// CRC of an empty record; classify it as torn, not as a record.
		if n == 0 || n > maxRecordSize || int(n) > rest-recordHeaderSize {
			return off, true, nil
		}
		ext := data[off+8 : off+12]
		payload := data[off+recordHeaderSize : off+recordHeaderSize+int(n)]
		sum := crc32.Checksum(ext, castagnoli)
		sum = crc32.Update(sum, castagnoli, payload)
		if sum != crc {
			return off, true, nil
		}
		if v := ext[2]; v != recordVersion {
			return off, false, errRecord(off, "unknown record version %d", v)
		}
		shard := int(binary.LittleEndian.Uint16(ext[0:2]))
		if shard >= lanes {
			return off, false, errRecord(off, "shard tag %d out of range for a %d-lane journal", shard, lanes)
		}
		if err := fn(shard, payload); err != nil {
			return off, false, err
		}
		off += recordHeaderSize + int(n)
	}
}

// appendRecordV1 frames payload in the legacy v1 format (8-byte header, CRC
// of the payload alone). The live writer no longer produces it; tests use it
// to build old-format journals for the read-compatibility path.
func appendRecordV1(buf, payload []byte) []byte {
	var hdr [recordHeaderSizeV1]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	return append(append(buf, hdr[:]...), payload...)
}

// scanRecordsV1 walks legacy v1 framed records (see scanRecords for the
// contract). Legacy records carry no shard tag; replay routes them by the
// session ID in the payload.
func scanRecordsV1(data []byte, fn func(payload []byte) error) (consumed int, torn bool, err error) {
	off := 0
	for {
		rest := len(data) - off
		if rest == 0 {
			return off, false, nil
		}
		if rest < recordHeaderSizeV1 {
			return off, true, nil
		}
		n := binary.LittleEndian.Uint32(data[off : off+4])
		crc := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if n == 0 || n > maxRecordSize || int(n) > rest-recordHeaderSizeV1 {
			return off, true, nil
		}
		payload := data[off+recordHeaderSizeV1 : off+recordHeaderSizeV1+int(n)]
		if crc32.Checksum(payload, castagnoli) != crc {
			return off, true, nil
		}
		if err := fn(payload); err != nil {
			return off, false, err
		}
		off += recordHeaderSizeV1 + int(n)
	}
}

// hasValidRecordAfter reports whether a complete, CRC-valid v2 record begins
// at any byte offset past the start of data (offset 0 is the frame that
// already failed). A crash-torn tail always extends to end of file — a
// single write(2) per record means damage from a torn write is a suffix — so
// a valid frame after the damage proves mid-log corruption, which recovery
// must refuse rather than silently truncate acknowledged records away. Tag
// and version validity are irrelevant here: any CRC-valid frame proves a
// writer wrote past the damage.
func hasValidRecordAfter(data []byte) bool {
	for off := 1; off+recordHeaderSize <= len(data); off++ {
		n := binary.LittleEndian.Uint32(data[off : off+4])
		if n == 0 || n > maxRecordSize || off+recordHeaderSize+int(n) > len(data) {
			continue
		}
		crc := binary.LittleEndian.Uint32(data[off+4 : off+8])
		sum := crc32.Checksum(data[off+8:off+12], castagnoli)
		sum = crc32.Update(sum, castagnoli, data[off+recordHeaderSize:off+recordHeaderSize+int(n)])
		if sum == crc {
			return true
		}
	}
	return false
}

// hasValidRecordAfterV1 is hasValidRecordAfter for legacy v1 segments.
func hasValidRecordAfterV1(data []byte) bool {
	for off := 1; off+recordHeaderSizeV1 <= len(data); off++ {
		n := binary.LittleEndian.Uint32(data[off : off+4])
		if n == 0 || n > maxRecordSize || off+recordHeaderSizeV1+int(n) > len(data) {
			continue
		}
		crc := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if crc32.Checksum(data[off+recordHeaderSizeV1:off+recordHeaderSizeV1+int(n)], castagnoli) == crc {
			return true
		}
	}
	return false
}

// File naming. Version 2 journals multiplex N lanes under one directory:
// lane segments are wal-<3-digit lane>-<16-digit index>.log and per-lane
// compaction snapshots snap-<3-digit lane>-<16-digit boundary>.json, where
// the boundary is the first segment of that lane NOT folded into the
// snapshot. wal-meta.json records the journal's format version and lane
// count; it is the upgrade commit marker (see recover). Legacy v1 journals
// named their single segment stream wal-<16-digit index>.log and snapshots
// snap-<16-digit boundary>.json.
const (
	segmentPrefix  = "wal-"
	segmentSuffix  = ".log"
	snapshotPrefix = "snap-"
	snapshotSuffix = ".json"
	metaName       = "wal-meta.json"
)

func segmentName(lane int, idx uint64) string {
	return fmt.Sprintf("wal-%03d-%016d.log", lane, idx)
}

func snapshotName(lane int, idx uint64) string {
	return fmt.Sprintf("snap-%03d-%016d.json", lane, idx)
}

func legacySegmentName(idx uint64) string { return fmt.Sprintf("wal-%016d.log", idx) }

func legacySnapshotName(idx uint64) string { return fmt.Sprintf("snap-%016d.json", idx) }

// parseIndexed extracts the numeric index from a prefixed/suffixed legacy
// file name, reporting whether the name matched.
func parseIndexed(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	mid := name[len(prefix) : len(name)-len(suffix)]
	if strings.Contains(mid, "-") {
		return 0, false // a lane-qualified v2 name, not a legacy one
	}
	idx, err := strconv.ParseUint(mid, 10, 64)
	if err != nil {
		return 0, false
	}
	return idx, true
}

// parseLaneIndexed extracts (lane, index) from a v2 lane-qualified file
// name such as wal-007-0000000000000003.log.
func parseLaneIndexed(name, prefix, suffix string) (lane int, idx uint64, ok bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, 0, false
	}
	mid := name[len(prefix) : len(name)-len(suffix)]
	dash := strings.IndexByte(mid, '-')
	if dash <= 0 {
		return 0, 0, false
	}
	l, err := strconv.ParseUint(mid[:dash], 10, 16)
	if err != nil {
		return 0, 0, false
	}
	idx, err = strconv.ParseUint(mid[dash+1:], 10, 64)
	if err != nil {
		return 0, 0, false
	}
	return int(l), idx, true
}

// metaFile is the on-disk form of wal-meta.json: the journal's format
// version and its fixed lane count. The lane count is chosen when the
// journal is created (or upgraded from v1) and never changes — a session's
// records must all live in one lane for per-lane replay to preserve its
// event order, so re-sharding an existing journal is refused at Open.
type metaFile struct {
	Version int `json:"version"`
	Lanes   int `json:"lanes"`
}

// truncateDurable truncates path to size and makes the truncation durable:
// fsync through the file handle (the new length is inode metadata) and fsync
// the parent directory for good measure. Used when recovery drops a torn
// tail — the shorter file must be on stable storage before this boot
// creates new segments, or a power cut could resurrect the torn suffix
// mid-log.
func truncateDurable(path string, size int64, dir string) error {
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		return err
	}
	err = f.Truncate(size)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so freshly created/renamed entries are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// WriteFileAtomic writes data to path through a temp file in the same
// directory: write, fsync, rename into place, fsync the directory. The temp
// file is removed on every failure path, so aborted writes leave no litter.
// Used for WAL compaction snapshots and by cmd/oasis-server's -snapshot
// persistence.
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	cleanup := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		return cleanup(err)
	}
	if err := tmp.Chmod(perm); err != nil {
		return cleanup(err)
	}
	if err := tmp.Sync(); err != nil {
		return cleanup(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	return syncDir(dir)
}
