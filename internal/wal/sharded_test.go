package wal

// Tests for the sharded journal lanes: shard count must never change any
// session's proposal sequence or estimate (including across crash
// recovery), cross-shard create/compact races must keep every acknowledged
// session, hostile lane inputs — out-of-range shard tags, records in the
// wrong lane, missing lanes, multi-lane torn tails — must be rejected or
// truncated deterministically, legacy v1 journals must upgrade in place,
// and a single-shard journal must stay payload-identical to the v1 format
// (the version-bumped record header is the only difference).

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"oasis"
	"oasis/internal/session"
)

// eqCfg builds the session config used by the equivalence tests.
func eqCfg(id string, method session.MethodKind, seed uint64, scores []float64, preds []bool) session.Config {
	return session.Config{
		ID: id, Method: method,
		Scores: scores, Preds: preds, Calibrated: true,
		Options:  oasis.Options{Strata: 12, Seed: seed},
		LeaseTTL: time.Minute,
	}
}

// equivalenceWorkload drives a fixed deterministic request pattern against
// the manager's sessions and returns every proposal sequence it produced,
// keyed by session then round. It ends with dangling proposals — the crash
// point the recovery side must drop.
func equivalenceWorkload(t *testing.T, m *session.Manager, ids []string, truth []bool) map[string][][]int {
	t.Helper()
	seqs := make(map[string][][]int, len(ids))
	get := func(id string) *session.Session {
		s, err := m.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	for round := 0; round < 10; round++ {
		for _, id := range ids {
			pairs := driveRound(t, get(id), 6, truth)
			seqs[id] = append(seqs[id], pairs)
		}
	}
	for i, id := range ids {
		if i%2 == 0 { // dangling proposals on half the sessions at the crash
			if _, err := get(id).Propose(3); err != nil {
				t.Fatal(err)
			}
		}
	}
	return seqs
}

// TestShardedReplayEquivalence is the determinism gate for the sharding
// refactor: the same workload on 1, 4 and 8 shards — each journaled,
// crashed (the journal abandoned mid-flight) and recovered — must produce
// bit-for-bit identical per-session proposal sequences and estimates, and
// each recovered manager must continue exactly like an uninterrupted
// journal-less reference. Shard count decides which lock and which WAL lane
// serialise a session, never what the session does.
func TestShardedReplayEquivalence(t *testing.T) {
	scores, preds, truth := walPool(3000, 57)
	ids := make([]string, 6)
	methods := make([]session.MethodKind, len(ids))
	for i := range ids {
		ids[i] = fmt.Sprintf("eq-%d", i)
		methods[i] = session.MethodOASIS
		if i%3 == 2 {
			methods[i] = session.MethodPassive
		}
	}

	var refSeqs map[string][][]int
	for _, shards := range []int{1, 4, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			// Uninterrupted journal-less reference, rebuilt per shard count so
			// requireSameContinuation never advances a shared instance.
			ref := session.NewManager(session.ManagerOptions{})
			for i, id := range ids {
				if _, err := ref.Create(eqCfg(id, methods[i], uint64(100+i), scores, preds)); err != nil {
					t.Fatal(err)
				}
			}
			refWorkload := equivalenceWorkload(t, ref, ids, truth)
			// Mirror the boot barrier the crashed side will go through: the
			// dangling proposals are dropped.
			if _, err := ref.ReplayEvent(&session.Event{Type: session.EventRestart}); err != nil {
				t.Fatal(err)
			}

			dir := t.TempDir()
			live := session.NewManager(session.ManagerOptions{Shards: shards})
			mustOpen(t, dir, live, Options{Fsync: "off", SegmentBytes: 8 << 10})
			if got := live.Shards(); got != session.NormalizeShards(shards) {
				t.Fatalf("manager has %d shards, want %d", got, shards)
			}
			for i, id := range ids {
				if _, err := live.Create(eqCfg(id, methods[i], uint64(100+i), scores, preds)); err != nil {
					t.Fatal(err)
				}
			}
			seqs := equivalenceWorkload(t, live, ids, truth)

			// The live proposal sequences must be independent of the shard
			// count — compare against the shards=1 run bit for bit.
			if refSeqs == nil {
				refSeqs = seqs
			}
			for _, id := range ids {
				if len(seqs[id]) != len(refSeqs[id]) {
					t.Fatalf("%s: %d rounds, want %d", id, len(seqs[id]), len(refSeqs[id]))
				}
				for r := range seqs[id] {
					for k := range seqs[id][r] {
						if seqs[id][r][k] != refSeqs[id][r][k] {
							t.Fatalf("%s round %d proposal %d: pair %d at %d shards, %d at 1 shard",
								id, r, k, seqs[id][r][k], shards, refSeqs[id][r][k])
						}
					}
				}
				// And against the journal-less reference, which also pins the
				// WAL plumbing out of the equation.
				for r := range seqs[id] {
					for k := range seqs[id][r] {
						if seqs[id][r][k] != refWorkload[id][r][k] {
							t.Fatalf("%s round %d proposal %d: journaled pair %d, reference %d",
								id, r, k, seqs[id][r][k], refWorkload[id][r][k])
						}
					}
				}
			}

			// Crash: no Close, no snapshot — recover a fresh manager from the
			// lanes alone, at the same shard count.
			rec := session.NewManager(session.ManagerOptions{Shards: shards})
			j2 := mustOpen(t, dir, rec, Options{Fsync: "off"})
			defer j2.Close()
			if got := rec.Len(); got != len(ids) {
				t.Fatalf("recovered %d sessions, want %d", got, len(ids))
			}
			for _, id := range ids {
				a, err := ref.Get(id)
				if err != nil {
					t.Fatal(err)
				}
				b, err := rec.Get(id)
				if err != nil {
					t.Fatalf("session %q not recovered: %v", id, err)
				}
				if ea, eb := a.Estimate(), b.Estimate(); ea != eb {
					t.Fatalf("%s: recovered estimate %v, reference %v", id, eb, ea)
				}
				if pb := b.Status().PendingProposals; pb != 0 {
					t.Fatalf("%s: recovered session has %d pending proposals, want 0", id, pb)
				}
				requireSameContinuation(t, a, b, 5, 6, truth)
			}
		})
	}
}

// TestShardedCompactionKeepsConcurrentCreates is the cross-shard variant of
// the PR 3 create/compact barrier tests: creates hammer all 8 shards while
// per-shard compactions run concurrently across shards (plus full sweeps),
// and every acknowledged session must survive recovery. A shard's create
// barrier must only be able to miss sessions of its own shard, so per-shard
// compaction of shard A while shard B is mid-create must never lose B's
// session.
func TestShardedCompactionKeepsConcurrentCreates(t *testing.T) {
	scores, preds, _ := walPool(80, 31)
	dir := t.TempDir()
	live := session.NewManager(session.ManagerOptions{Shards: 8})
	j := mustOpen(t, dir, live, Options{Fsync: "off", SegmentBytes: 1 << 10})

	const workers, perWorker = 4, 12
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if _, err := live.Create(session.Config{
					ID:     fmt.Sprintf("xrace-%d-%d", w, i),
					Scores: scores, Preds: preds, Calibrated: true,
					Options: oasis.Options{Strata: 4, Seed: uint64(w*100 + i + 1)},
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	compactDone := make(chan error, 2)
	go func() { // rolling per-shard compactions
		for i := 0; i < 40; i++ {
			if err := j.CompactShard(i % 8); err != nil {
				compactDone <- err
				return
			}
		}
		compactDone <- nil
	}()
	go func() { // full sweeps racing the per-shard ones
		for i := 0; i < 4; i++ {
			if err := j.Compact(); err != nil {
				compactDone <- err
				return
			}
		}
		compactDone <- nil
	}()
	wg.Wait()
	for i := 0; i < 2; i++ {
		if err := <-compactDone; err != nil {
			t.Fatal(err)
		}
	}

	recovered := session.NewManager(session.ManagerOptions{Shards: 8})
	j2 := mustOpen(t, dir, recovered, Options{Fsync: "off"})
	defer j2.Close()
	if got, want := recovered.Len(), workers*perWorker; got != want {
		t.Fatalf("recovered %d sessions, want %d: a create raced a shard compaction away", got, want)
	}
}

// twoLaneFixture builds a 2-shard journal with one driven session per lane
// and returns the directory and per-lane committed label counts, with the
// journal abandoned (crash).
func twoLaneFixture(t *testing.T) (dir string, committed map[int]int) {
	t.Helper()
	scores, preds, truth := walPool(400, 61)
	dir = t.TempDir()
	mgr := session.NewManager(session.ManagerOptions{Shards: 2})
	mustOpen(t, dir, mgr, Options{Fsync: "off"})
	committed = make(map[int]int)
	for lane := 0; lane < 2; lane++ {
		var id string
		for i := 0; ; i++ {
			id = fmt.Sprintf("lane%d-%d", lane, i)
			if session.ShardOf(id, 2) == lane {
				break
			}
		}
		s, err := mgr.Create(session.Config{
			ID: id, Scores: scores, Preds: preds, Calibrated: true,
			Options: oasis.Options{Strata: 5, Seed: uint64(7 + lane)},
		})
		if err != nil {
			t.Fatal(err)
		}
		committed[lane] = len(driveRound(t, s, 8, truth))
	}
	return dir, committed
}

// TestOutOfRangeShardTagRejected appends a CRC-valid record whose shard tag
// is outside the journal's lane range: the CRC proves a writer framed it on
// purpose, so it is real corruption — recovery must refuse, never silently
// merge or truncate it away.
func TestOutOfRangeShardTagRejected(t *testing.T) {
	dir, _ := twoLaneFixture(t)
	frame := appendRecord(nil, 7, []byte(`{"lsn":999,"type":"restart"}`))
	newest := newestLaneSegment(t, dir, 0)
	f, err := os.OpenFile(newest, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(frame); err != nil {
		t.Fatal(err)
	}
	f.Close()
	_, err = Open(dir, session.NewManager(session.ManagerOptions{Shards: 2}), Options{Fsync: "off"})
	if err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("out-of-range shard tag not rejected: %v", err)
	}
}

// TestWrongLaneRecordRejected plants a CRC-valid record tagged for lane 1
// inside lane 0's segment: a record can only be trusted in the lane its tag
// names, so replay must refuse the mismatch.
func TestWrongLaneRecordRejected(t *testing.T) {
	dir, _ := twoLaneFixture(t)
	frame := appendRecord(nil, 1, []byte(`{"lsn":999,"type":"restart"}`))
	newest := newestLaneSegment(t, dir, 0)
	f, err := os.OpenFile(newest, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(frame); err != nil {
		t.Fatal(err)
	}
	f.Close()
	_, err = Open(dir, session.NewManager(session.ManagerOptions{Shards: 2}), Options{Fsync: "off"})
	if err == nil || !strings.Contains(err.Error(), "tagged lane 1") {
		t.Fatalf("wrong-lane record not rejected: %v", err)
	}
}

// TestMissingLaneRejected deletes every file of one lane: once any lane
// holds records, a lane without segments means acknowledged events
// vanished, and recovery must refuse rather than silently merge the
// surviving lanes.
func TestMissingLaneRejected(t *testing.T) {
	dir, _ := twoLaneFixture(t)
	for _, idx := range dirInv(t, dir).laneSegs[1] {
		if err := os.Remove(filepath.Join(dir, segmentName(1, idx))); err != nil {
			t.Fatal(err)
		}
	}
	_, err := Open(dir, session.NewManager(session.ManagerOptions{Shards: 2}), Options{Fsync: "off"})
	if err == nil || !strings.Contains(err.Error(), "missing a lane") {
		t.Fatalf("missing lane not rejected: %v", err)
	}
}

// TestMissingLaneRejectedWithEmptySegments covers the sneaky variant of the
// missing-lane case: after a compaction the surviving lanes' active
// segments can be 0 bytes (everything folded into the lane snapshots, and a
// power cut may drop unsynced restart records), so the "does any lane hold
// records" signal is dark — the lane snapshots must then carry the
// rejection, or a vanished lane's acknowledged labels would silently
// disappear.
func TestMissingLaneRejectedWithEmptySegments(t *testing.T) {
	scores, preds, truth := walPool(400, 67)
	dir := t.TempDir()
	mgr := session.NewManager(session.ManagerOptions{Shards: 2})
	j := mustOpen(t, dir, mgr, Options{Fsync: "off"})
	for lane := 0; lane < 2; lane++ {
		var id string
		for i := 0; ; i++ {
			id = fmt.Sprintf("el%d-%d", lane, i)
			if session.ShardOf(id, 2) == lane {
				break
			}
		}
		s, err := mgr.Create(session.Config{
			ID: id, Scores: scores, Preds: preds, Calibrated: true,
			Options: oasis.Options{Strata: 5, Seed: uint64(9 + lane)},
		})
		if err != nil {
			t.Fatal(err)
		}
		driveRound(t, s, 6, truth)
	}
	if err := j.Compact(); err != nil {
		t.Fatal(err)
	}
	// Simulate the power cut: post-compaction active segments lose their
	// unsynced bytes, so every surviving segment is empty.
	inv := dirInv(t, dir)
	for lane := 0; lane < 2; lane++ {
		for _, idx := range inv.laneSegs[lane] {
			if err := os.Truncate(filepath.Join(dir, segmentName(lane, idx)), 0); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Lane 1's files vanish entirely (bad restore, partial copy).
	for _, idx := range inv.laneSegs[1] {
		if err := os.Remove(filepath.Join(dir, segmentName(1, idx))); err != nil {
			t.Fatal(err)
		}
	}
	for _, idx := range inv.laneSnaps[1] {
		if err := os.Remove(filepath.Join(dir, snapshotName(1, idx))); err != nil {
			t.Fatal(err)
		}
	}
	_, err := Open(dir, session.NewManager(session.ManagerOptions{Shards: 2}), Options{Fsync: "off"})
	if err == nil || !strings.Contains(err.Error(), "missing a lane") {
		t.Fatalf("vanished lane with all-empty surviving segments not rejected: %v", err)
	}
}

// TestNonPowerOfTwoMetaRejected pins the corruption diagnosis for a meta
// file no writer could have produced: the manager normalizes every shard
// count to a power of two, so a 3-lane meta is unsatisfiable by any -shards
// value and must be reported as corruption, not as a "reopen with
// -shards 3" dead-end.
func TestNonPowerOfTwoMetaRejected(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, metaName), []byte(`{"version":2,"lanes":3}`), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := Open(dir, session.NewManager(session.ManagerOptions{Shards: 4}), Options{Fsync: "off"})
	if err == nil || !strings.Contains(err.Error(), "power of two") {
		t.Fatalf("non-power-of-two lane count not rejected as corruption: %v", err)
	}
}

// TestMixedLaneTornTails tears both lanes' newest segments at once — the
// multi-lane reading of a crash mid-write — and recovery must truncate each
// lane's tail independently and keep every acknowledged label.
func TestMixedLaneTornTails(t *testing.T) {
	dir, committed := twoLaneFixture(t)
	garbage := [][]byte{{0xde, 0xad, 0xbe}, {0xca, 0xfe, 0xba, 0xbe, 0x00}}
	for lane := 0; lane < 2; lane++ {
		f, err := os.OpenFile(newestLaneSegment(t, dir, lane), os.O_APPEND|os.O_WRONLY, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write(garbage[lane]); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	rec := session.NewManager(session.ManagerOptions{Shards: 2})
	j := mustOpen(t, dir, rec, Options{Fsync: "off"})
	defer j.Close()
	if st := j.Stats(); st.ReplayTornBytes != len(garbage[0])+len(garbage[1]) {
		t.Fatalf("torn bytes dropped = %d, want %d", st.ReplayTornBytes, len(garbage[0])+len(garbage[1]))
	}
	total := 0
	for _, st := range rec.List() {
		total += st.LabelsCommitted
	}
	if want := committed[0] + committed[1]; total != want {
		t.Fatalf("recovered %d labels, want %d", total, want)
	}
}

// TestShardCountMismatchRejected pins the re-sharding refusal: a journal
// created at 4 lanes must refuse a 8-shard manager (a session's records all
// live in one lane, so re-sharding would scramble replay order) and accept
// a 4-shard one.
func TestShardCountMismatchRejected(t *testing.T) {
	scores, preds, truth := walPool(300, 3)
	dir := t.TempDir()
	mgr := session.NewManager(session.ManagerOptions{Shards: 4})
	mustOpen(t, dir, mgr, Options{Fsync: "off"})
	s, err := mgr.Create(session.Config{
		ID: "m", Scores: scores, Preds: preds, Calibrated: true,
		Options: oasis.Options{Strata: 5, Seed: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	committed := len(driveRound(t, s, 6, truth))

	if _, err := Open(dir, session.NewManager(session.ManagerOptions{Shards: 8}), Options{Fsync: "off"}); err == nil ||
		!strings.Contains(err.Error(), "lanes") {
		t.Fatalf("re-sharding a 4-lane journal to 8 shards was not refused: %v", err)
	}
	rec := session.NewManager(session.ManagerOptions{Shards: 4})
	j := mustOpen(t, dir, rec, Options{Fsync: "off"})
	defer j.Close()
	r, err := rec.Get("m")
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Status().LabelsCommitted; got != committed {
		t.Fatalf("recovered %d labels, want %d", got, committed)
	}
}

// TestDirLanes pins the lane-count discovery oasis-server's default -shards
// uses: an existing v2 directory reports its recorded lane count, while a
// fresh or legacy directory reports 0 (caller's choice).
func TestDirLanes(t *testing.T) {
	fresh := t.TempDir()
	if n, err := DirLanes(fresh); err != nil || n != 0 {
		t.Fatalf("fresh dir: DirLanes = %d, %v; want 0, nil", n, err)
	}
	mgr := session.NewManager(session.ManagerOptions{Shards: 4})
	j := mustOpen(t, fresh, mgr, Options{Fsync: "off"})
	j.Close()
	if n, err := DirLanes(fresh); err != nil || n != 4 {
		t.Fatalf("4-lane dir: DirLanes = %d, %v; want 4, nil", n, err)
	}
	legacy := t.TempDir()
	w := newLegacyWriter(t, legacy)
	w.f.Close()
	if n, err := DirLanes(legacy); err != nil || n != 0 {
		t.Fatalf("legacy dir: DirLanes = %d, %v; want 0, nil", n, err)
	}
}

// legacyWriter journals events in the v1 on-disk format — one un-tagged
// segment stream with 8-byte record headers and a global LSN sequence —
// exactly as the pre-lane binary wrote them. Tests use it to produce real
// old-format directories for the read-compatibility path.
type legacyWriter struct {
	mu  sync.Mutex
	f   *os.File
	lsn uint64
	buf []byte
}

func newLegacyWriter(t *testing.T, dir string) *legacyWriter {
	t.Helper()
	f, err := os.OpenFile(filepath.Join(dir, legacySegmentName(1)), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	return &legacyWriter{f: f}
}

func (w *legacyWriter) Append(ev *session.Event) (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.lsn++
	ev.LSN = w.lsn
	payload, err := json.Marshal(ev)
	if err != nil {
		return 0, err
	}
	w.buf = appendRecordV1(w.buf[:0], payload)
	if _, err := w.f.Write(w.buf); err != nil {
		return 0, err
	}
	return w.lsn, nil
}

func (w *legacyWriter) Err() error { return nil }

// TestLegacyJournalUpgrade builds a genuine v1 directory, opens it with a
// 4-shard manager, and checks the upgrade contract: the recovered state
// continues exactly like the live pre-upgrade manager, the directory is
// converted in place (meta + per-lane snapshots, legacy files gone), and a
// second crash-recovery through the pure v2 path still agrees.
func TestLegacyJournalUpgrade(t *testing.T) {
	scores, preds, truth := walPool(2000, 71)
	dir := t.TempDir()

	// The "old binary": a manager journaling through the v1 writer.
	old := session.NewManager(session.ManagerOptions{})
	w := newLegacyWriter(t, dir)
	old.SetJournal(w)
	ids := []string{"lg-a", "lg-b", "lg-c"}
	for i, id := range ids {
		method := session.MethodOASIS
		if i == 2 {
			method = session.MethodPassive
		}
		s, err := old.Create(eqCfg(id, method, uint64(40+i), scores, preds))
		if err != nil {
			t.Fatal(err)
		}
		for round := 0; round < 6; round++ {
			driveRound(t, s, 5, truth)
		}
	}
	// Dangling proposals at the upgrade point are dropped like any boot.
	sa, err := old.Get("lg-a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sa.Propose(4); err != nil {
		t.Fatal(err)
	}
	if err := w.f.Close(); err != nil {
		t.Fatal(err)
	}
	// Mirror the recovery-side boot barrier on the live manager and detach
	// its journal so continuation driving stays un-journaled.
	if _, err := old.ReplayEvent(&session.Event{Type: session.EventRestart}); err != nil {
		t.Fatal(err)
	}
	old.SetJournal(nil)

	// The upgrade boot: open the legacy directory sharded 4 ways.
	up := session.NewManager(session.ManagerOptions{Shards: 4})
	j := mustOpen(t, dir, up, Options{Fsync: "off"})
	if got := up.Len(); got != len(ids) {
		t.Fatalf("upgraded recovery found %d sessions, want %d", got, len(ids))
	}
	inv := dirInv(t, dir)
	if inv.meta == nil || inv.meta.Lanes != 4 {
		t.Fatalf("upgrade did not commit wal-meta.json with 4 lanes: %+v", inv.meta)
	}
	if len(inv.legacySegs)+len(inv.legacySnaps) != 0 {
		t.Fatalf("legacy files survived the upgrade: %d segs, %d snaps", len(inv.legacySegs), len(inv.legacySnaps))
	}
	for lane := 0; lane < 4; lane++ {
		if len(inv.laneSnaps[lane]) != 1 {
			t.Fatalf("lane %d has %d upgrade snapshots, want 1", lane, len(inv.laneSnaps[lane]))
		}
	}
	for _, id := range ids {
		a, err := old.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		b, err := up.Get(id)
		if err != nil {
			t.Fatalf("session %q lost in upgrade: %v", id, err)
		}
		requireSameContinuation(t, a, b, 4, 5, truth)
	}
	// Crash the upgraded journal and recover through the pure v2 path.
	_ = j // abandoned, no Close: the crash
	rec := session.NewManager(session.ManagerOptions{Shards: 4})
	j2 := mustOpen(t, dir, rec, Options{Fsync: "off"})
	defer j2.Close()
	for _, id := range ids {
		a, err := old.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		b, err := rec.Get(id)
		if err != nil {
			t.Fatalf("session %q lost after the post-upgrade crash: %v", id, err)
		}
		requireSameContinuation(t, a, b, 3, 5, truth)
	}
}

// TestUpgradeRerunSweepsStaleLanes pins the shard-count-drift rerun: an
// upgrade attempt that crashed before committing wal-meta.json may have
// left lane snapshots and segments behind — possibly for MORE lanes than
// the rerun uses, since an unset -shards is re-derived from the hardware.
// The rerun must sweep every pre-existing lane file before committing, or
// the stale high-lane leftovers would make every later Open refuse the
// journal as carrying files for a lane it does not have.
func TestUpgradeRerunSweepsStaleLanes(t *testing.T) {
	scores, preds, truth := walPool(500, 97)
	dir := t.TempDir()
	old := session.NewManager(session.ManagerOptions{})
	w := newLegacyWriter(t, dir)
	old.SetJournal(w)
	s, err := old.Create(eqCfg("sw-a", session.MethodOASIS, 61, scores, preds))
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 4; round++ {
		driveRound(t, s, 5, truth)
	}
	if err := w.f.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := old.ReplayEvent(&session.Event{Type: session.EventRestart}); err != nil {
		t.Fatal(err)
	}
	old.SetJournal(nil)

	// The crashed first attempt: 8 lanes' snapshots and first segments on
	// disk, no meta marker. The snapshot bodies are garbage — the rerun must
	// delete them unread.
	for lane := 0; lane < 8; lane++ {
		if err := os.WriteFile(filepath.Join(dir, snapshotName(lane, 1)), []byte("stale attempt"), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, segmentName(lane, 2)), nil, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	// The rerun boots with 4 shards (the re-derived default shrank).
	rec := session.NewManager(session.ManagerOptions{Shards: 4})
	j := mustOpen(t, dir, rec, Options{Fsync: "off"})
	if got := rec.Len(); got != 1 {
		t.Fatalf("rerun recovered %d sessions, want 1", got)
	}
	inv := dirInv(t, dir)
	for lane := 4; lane < 8; lane++ {
		if len(inv.laneSegs[lane])+len(inv.laneSnaps[lane]) != 0 {
			t.Fatalf("stale lane %d files survived the rerun: %v segs, %v snaps", lane, inv.laneSegs[lane], inv.laneSnaps[lane])
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// The journal the rerun committed must stay bootable.
	rec2 := session.NewManager(session.ManagerOptions{Shards: 4})
	j2 := mustOpen(t, dir, rec2, Options{Fsync: "off"})
	defer j2.Close()
	b, err := rec2.Get("sw-a")
	if err != nil {
		t.Fatal(err)
	}
	a, err := old.Get("sw-a")
	if err != nil {
		t.Fatal(err)
	}
	requireSameContinuation(t, a, b, 3, 5, truth)
}

// TestUpgradeCrashWindowBootable pins the crash atomicity of the v1→v2
// upgrade: the upgrade creates every lane's first segment before committing
// wal-meta.json, so the narrowest crash it can leave behind — meta and lane
// snapshots durable, every lane segment present but empty (the boot restart
// records were plain writes a power cut may drop) — must boot and recover
// every session from the snapshots. A lane whose segment file is genuinely
// missing must still be refused: that state can no longer be produced by a
// crashed upgrade, only by lost files.
func TestUpgradeCrashWindowBootable(t *testing.T) {
	scores, preds, truth := walPool(600, 91)
	dir := t.TempDir()

	old := session.NewManager(session.ManagerOptions{})
	w := newLegacyWriter(t, dir)
	old.SetJournal(w)
	ids := []string{"cw-a", "cw-b", "cw-c"}
	for i, id := range ids {
		s, err := old.Create(eqCfg(id, session.MethodOASIS, uint64(50+i), scores, preds))
		if err != nil {
			t.Fatal(err)
		}
		for round := 0; round < 4; round++ {
			driveRound(t, s, 5, truth)
		}
	}
	if err := w.f.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := old.ReplayEvent(&session.Event{Type: session.EventRestart}); err != nil {
		t.Fatal(err)
	}
	old.SetJournal(nil)

	// The upgrade boot, crashed (abandoned, never Closed) immediately after.
	up := session.NewManager(session.ManagerOptions{Shards: 4})
	mustOpen(t, dir, up, Options{Fsync: "off"})

	// Rewind the directory to the upgrade's commit point: zero durable bytes
	// in any lane segment.
	inv := dirInv(t, dir)
	if inv.meta == nil {
		t.Fatal("upgrade did not commit wal-meta.json")
	}
	for lane := 0; lane < 4; lane++ {
		if len(inv.laneSegs[lane]) == 0 {
			t.Fatalf("lane %d has no segment file at the upgrade commit point", lane)
		}
		for _, idx := range inv.laneSegs[lane] {
			if err := os.Truncate(filepath.Join(dir, segmentName(lane, idx)), 0); err != nil {
				t.Fatal(err)
			}
		}
	}

	// A lane with no segment files at all is lost state, not a crash relic…
	gone := inv.laneSegs[3]
	for _, idx := range gone {
		if err := os.Remove(filepath.Join(dir, segmentName(3, idx))); err != nil {
			t.Fatal(err)
		}
	}
	_, err := Open(dir, session.NewManager(session.ManagerOptions{Shards: 4}), Options{Fsync: "off"})
	if err == nil || !strings.Contains(err.Error(), "missing a lane") {
		t.Fatalf("segment-less lane next to lane snapshots not rejected: %v", err)
	}
	// …while the legitimate post-upgrade crash state boots and continues
	// exactly like the pre-upgrade manager.
	for _, idx := range gone {
		if err := os.WriteFile(filepath.Join(dir, segmentName(3, idx)), nil, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	rec := session.NewManager(session.ManagerOptions{Shards: 4})
	j := mustOpen(t, dir, rec, Options{Fsync: "off"})
	defer j.Close()
	if got := rec.Len(); got != len(ids) {
		t.Fatalf("recovered %d sessions after the upgrade crash, want %d", got, len(ids))
	}
	for _, id := range ids {
		a, err := old.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		b, err := rec.Get(id)
		if err != nil {
			t.Fatalf("session %q lost in the upgrade crash window: %v", id, err)
		}
		requireSameContinuation(t, a, b, 3, 5, truth)
	}
}

// TestSingleShardJournalFormat pins the format claim of the version bump: a
// single-shard journal writes the same record payloads as the v1 format —
// only the header changed (4 extension bytes and a CRC that covers them).
// Stripping the extension and re-checksumming every record of a 1-lane
// segment must yield a byte-valid v1 segment that replays to identical
// state through the legacy path.
func TestSingleShardJournalFormat(t *testing.T) {
	scores, preds, truth := walPool(800, 83)
	dir := t.TempDir()
	live := session.NewManager(session.ManagerOptions{Shards: 1})
	mustOpen(t, dir, live, Options{Fsync: "off"})
	s, err := live.Create(session.Config{
		ID: "fmt", Scores: scores, Preds: preds, Calibrated: true,
		Options: oasis.Options{Strata: 8, Seed: 6},
	})
	if err != nil {
		t.Fatal(err)
	}
	committed := 0
	for round := 0; round < 5; round++ {
		committed += len(driveRound(t, s, 7, truth))
	}

	// Transcode the lane-0 stream to v1 framing, payloads untouched.
	legacyDir := t.TempDir()
	var v1 []byte
	for _, idx := range dirInv(t, dir).laneSegs[0] {
		data, err := os.ReadFile(filepath.Join(dir, segmentName(0, idx)))
		if err != nil {
			t.Fatal(err)
		}
		consumed, torn, err := scanRecords(data, 1, func(shard int, payload []byte) error {
			if shard != 0 {
				return fmt.Errorf("single-shard journal tagged a record for lane %d", shard)
			}
			v1 = appendRecordV1(v1, payload)
			return nil
		})
		if err != nil || torn || consumed != len(data) {
			t.Fatalf("segment %d did not transcode cleanly: consumed %d of %d, torn %v, err %v", idx, consumed, len(data), torn, err)
		}
	}
	if err := os.WriteFile(filepath.Join(legacyDir, legacySegmentName(1)), v1, 0o644); err != nil {
		t.Fatal(err)
	}

	rec := session.NewManager(session.ManagerOptions{})
	j2 := mustOpen(t, legacyDir, rec, Options{Fsync: "off"})
	defer j2.Close()
	r, err := rec.Get("fmt")
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Status().LabelsCommitted; got != committed {
		t.Fatalf("v1-transcoded replay recovered %d labels, want %d", got, committed)
	}
	if _, err := live.ReplayEvent(&session.Event{Type: session.EventRestart}); err != nil {
		t.Fatal(err)
	}
	live.SetJournal(nil)
	requireSameContinuation(t, s, r, 4, 7, truth)
}
