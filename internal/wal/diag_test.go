package wal

// Recovery coverage for the convergence diagnostics: commit events journal
// their wall clock, and replay re-records each diagnostics point from the
// journaled timestamp, so a recovered session must serve a byte-identical
// diagnostics payload — series, stride, alarm state and all.

import (
	"encoding/json"
	"testing"
	"time"

	"oasis"
	"oasis/internal/session"
)

// TestReplayRebuildsDiagnosticsByteIdentical crashes a journaled manager
// (no snapshot, no shutdown) and checks the recovered sessions' diagnostics
// payloads match the live ones byte for byte, for both an OASIS and a
// passive session, with enough batches to force series compactions.
func TestReplayRebuildsDiagnosticsByteIdentical(t *testing.T) {
	scores, preds, truth := walPool(3000, 41)
	now := time.Unix(9000, 0)
	clock := func() time.Time { now = now.Add(137 * time.Millisecond); return now }

	dir := t.TempDir()
	diagOpts := session.DiagOptions{SeriesCapacity: 16}
	live := session.NewManager(session.ManagerOptions{Now: clock, Diag: diagOpts})
	mustOpen(t, dir, live, Options{Fsync: "off"})

	mkCfg := func(id string, method session.MethodKind, seed uint64) session.Config {
		return session.Config{
			ID: id, Method: method,
			Scores: scores, Preds: preds, Calibrated: true,
			Options: oasis.Options{Strata: 9, Seed: seed},
		}
	}
	so, err := live.Create(mkCfg("oasis", session.MethodOASIS, 43))
	if err != nil {
		t.Fatal(err)
	}
	sp, err := live.Create(mkCfg("passive", session.MethodPassive, 47))
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 40; round++ {
		driveRound(t, so, 3, truth)
		driveRound(t, sp, 3, truth)
	}
	if d := so.Diagnostics(); d.SeriesStride < 2 {
		t.Fatalf("fixture did not force a compaction: stride %d", d.SeriesStride)
	}

	// Crash: recover a fresh manager from the log alone. The recovery clock
	// starts somewhere else entirely — replay must take wall times from the
	// journal, not from the clock.
	recovered := session.NewManager(session.ManagerOptions{
		Now:  func() time.Time { return time.Unix(99999, 0) },
		Diag: diagOpts,
	})
	j2 := mustOpen(t, dir, recovered, Options{Fsync: "off"})
	defer j2.Close()

	for _, id := range []string{"oasis", "passive"} {
		a, err := live.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		b, err := recovered.Get(id)
		if err != nil {
			t.Fatalf("session %q not recovered: %v", id, err)
		}
		want, err := json.Marshal(a.Diagnostics())
		if err != nil {
			t.Fatal(err)
		}
		got, err := json.Marshal(b.Diagnostics())
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Fatalf("%s: recovered diagnostics diverge:\n got %s\nwant %s", id, got, want)
		}
	}
}
