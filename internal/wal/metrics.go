package wal

import "oasis/internal/obs"

// Metrics holds the journal's hot-path instruments. Counters that are
// already maintained per lane for Stats() — records, bytes, syncs,
// segment depth — are not duplicated here; the server exports those via a
// scrape-time collector over Stats(). Only the latency distributions and
// the rotation count, which cannot be reconstructed after the fact, live
// on the hot path.
type Metrics struct {
	AppendSeconds *obs.Histogram
	SyncSeconds   *obs.Histogram
	Rotations     *obs.Counter
}

// NewMetrics registers the WAL metric families.
func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		AppendSeconds: reg.Histogram("oasis_wal_append_seconds", "Full journal append latency, inline fsync included.", nil),
		SyncSeconds:   reg.Histogram("oasis_wal_fsync_seconds", "fsync(2) latency of journal segments.", nil),
		Rotations:     reg.Counter("oasis_wal_rotations_total", "Journal lane segment rotations."),
	}
}
