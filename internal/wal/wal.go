// Package wal gives the evaluation service a durable label journal: a
// segmented, append-only, CRC-checked write-ahead log of session lifecycle
// events (create, propose, label-commit, release, delete) with a
// configurable fsync policy, deterministic replay on startup, and
// compaction that folds cold segments into a session.Manager snapshot plus
// a trimmed tail.
//
// Ground-truth labels are bought from a crowd or expert oracle, so losing
// them to a crash means paying the oracle twice. The session subsystem is a
// deterministic state machine (seeded draws; the instrumental distribution
// is a pure function of past labels), so the journal records the operation
// sequence and recovery re-executes it through the same code paths the live
// server ran: the recovered sampler state — posteriors, estimator sums,
// random stream, availability — is bit-for-bit the state at the last
// journaled event, and it continues the exact proposal sequence (see
// TestRecoveryContinuesExactly and the kill-9 end-to-end test in
// cmd/oasis-server).
//
// Layout of the WAL directory:
//
//	wal-<n>.log   append-only record segments, rotated by size and on boot
//	snap-<n>.json compaction snapshot folding every segment with index < n
//
// Torn or truncated final records — a crash mid-write — are detected by CRC,
// dropped, and the tail truncated; damage anywhere else is fatal. A commit
// is acknowledged only after its record is appended (and, under
// -fsync always, synced), so an acknowledged label is never lost by kill -9;
// see the fsync policy trade-offs on Options.
package wal

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"oasis/internal/session"
)

// Options configures a Journal.
type Options struct {
	// Fsync selects the durability policy:
	//
	//	"always"  fsync before acknowledging every label-affecting event —
	//	          commit, create, delete — (default); propose/release
	//	          records ride on the next such barrier, which losing is
	//	          exactly the lease-drop contract. An acknowledged label
	//	          survives kill -9 and power loss. Slowest: one fsync per
	//	          propose/commit round trip.
	//	interval  a Go duration such as "100ms": appends are write(2)s and a
	//	          background flusher fsyncs on that interval. Kill -9 loses
	//	          nothing (the page cache survives the process); power loss
	//	          can lose up to one interval of acknowledged labels.
	//	"off"     never fsync explicitly. Same kill-9 safety as interval
	//	          (every append is still a write(2)); power loss can lose
	//	          whatever the OS had not written back.
	Fsync string
	// SegmentBytes rotates the active segment once it exceeds this size; 0
	// means 8 MiB.
	SegmentBytes int64
}

// DefaultSegmentBytes is the rotation threshold when Options.SegmentBytes
// is zero.
const DefaultSegmentBytes = 8 << 20

// Stats is a snapshot of the journal's counters, exposed by the server's
// /v1/stats endpoint.
type Stats struct {
	// Segments counts live segment files; ActiveSegment is the index the
	// journal is appending to.
	Segments      int    `json:"segments"`
	ActiveSegment uint64 `json:"activeSegment"`
	// RecordsAppended / BytesAppended / Syncs count appends since Open.
	RecordsAppended uint64 `json:"recordsAppended"`
	BytesAppended   uint64 `json:"bytesAppended"`
	Syncs           uint64 `json:"syncs"`
	// Compactions counts successful Compact calls since Open.
	Compactions uint64 `json:"compactions"`
	// LastLSN is the most recently assigned log sequence number.
	LastLSN uint64 `json:"lastLSN"`
	// Replay* describe the recovery that Open performed: events applied,
	// events skipped (already folded into the snapshot, or for sessions
	// deleted later in the log), and torn tail bytes dropped.
	ReplayApplied   uint64 `json:"replayApplied"`
	ReplaySkipped   uint64 `json:"replaySkipped"`
	ReplayTornBytes int    `json:"replayTornBytes"`
	ReplaySnapshot  bool   `json:"replaySnapshot"`
	ReplaySegments  int    `json:"replaySegments"`
}

// Journal is the durable event log. It implements session.Journal: the
// session layer appends every state-changing event before acknowledging it.
// All methods are safe for concurrent use. Failures are sticky — after one
// failed append or sync every later Append fails and Err reports the cause —
// so the service fail-stops instead of acknowledging labels the log does
// not hold.
type Journal struct {
	dir  string
	mgr  *session.Manager
	opts Options

	always   bool          // fsync per append
	interval time.Duration // background fsync interval (0: none)
	maxRec   int           // payload cap; maxRecordSize, lowered only in tests

	mu       sync.Mutex
	f        *os.File
	seg      uint64 // active segment index
	segSize  int64
	segCount int
	lsn      uint64
	err      error
	buf      []byte // scratch frame buffer, reused across appends

	records     uint64
	bytes       uint64
	syncs       uint64
	compactions uint64
	replay      replayInfo

	stop chan struct{}
	done chan struct{}
}

// replayInfo captures what Open's recovery did.
type replayInfo struct {
	applied   uint64
	skipped   uint64
	tornBytes int
	snapshot  bool
	segments  int
}

// parseFsync resolves Options.Fsync.
func parseFsync(s string) (always bool, interval time.Duration, err error) {
	switch s {
	case "", "always":
		return true, 0, nil
	case "off":
		return false, 0, nil
	default:
		d, err := time.ParseDuration(s)
		if err != nil || d <= 0 {
			return false, 0, fmt.Errorf("wal: fsync policy must be \"always\", \"off\" or a positive duration, got %q", s)
		}
		return false, d, nil
	}
}

// Open recovers the WAL in dir into mgr and returns a journal appending to a
// fresh segment. Recovery loads the newest compaction snapshot (if any),
// replays the remaining segments event by event — skipping events the
// snapshot already folded — truncates a torn tail, drops every outstanding
// lease (the crash reading of the lease contract, made durable by a restart
// record), and finally attaches itself to mgr with SetJournal so live
// operations are journaled from here on. mgr must not be serving traffic
// yet.
func Open(dir string, mgr *session.Manager, opts Options) (*Journal, error) {
	if mgr == nil {
		return nil, fmt.Errorf("wal: nil session manager")
	}
	always, interval, err := parseFsync(opts.Fsync)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	j := &Journal{
		dir:      dir,
		mgr:      mgr,
		opts:     opts,
		always:   always,
		interval: interval,
		maxRec:   maxRecordSize,
	}

	segs, snaps, err := listDir(dir)
	if err != nil {
		return nil, err
	}
	maxLSN, err := j.recover(mgr, segs, snaps)
	if err != nil {
		return nil, err
	}
	j.lsn = maxLSN
	if n := len(segs); n > 0 {
		j.seg = segs[n-1]
		j.segCount = n
	}
	// The fresh boot segment must sort after the snapshot boundary, or a
	// later recovery would skip it as folded.
	if n := len(snaps); n > 0 && snaps[n-1] > j.seg {
		j.seg = snaps[n-1]
	}
	if err := j.rotateLocked(); err != nil {
		return nil, j.err
	}

	// The boot barrier: drop every outstanding lease in memory and append
	// the restart record that makes the drop replayable, so later recoveries
	// see the same availability this process does.
	restart := &session.Event{Type: session.EventRestart}
	if _, err := mgr.ReplayEvent(restart); err != nil {
		return nil, err
	}
	if _, err := j.Append(restart); err != nil {
		return nil, err
	}
	mgr.SetJournal(j)

	if j.interval > 0 {
		j.stop = make(chan struct{})
		j.done = make(chan struct{})
		go j.syncLoop()
	}
	return j, nil
}

// listDir enumerates segment and snapshot indices, sorted ascending.
func listDir(dir string) (segs, snaps []uint64, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	for _, e := range entries {
		if idx, ok := parseIndexed(e.Name(), segmentPrefix, segmentSuffix); ok {
			segs = append(segs, idx)
		} else if idx, ok := parseIndexed(e.Name(), snapshotPrefix, snapshotSuffix); ok {
			snaps = append(snaps, idx)
		}
	}
	sort.Slice(segs, func(i, k int) bool { return segs[i] < segs[k] })
	sort.Slice(snaps, func(i, k int) bool { return snaps[i] < snaps[k] })
	return segs, snaps, nil
}

// snapshotEnvelope is the on-disk form of a compaction snapshot.
type snapshotEnvelope struct {
	Version  int             `json:"version"`
	Sessions json.RawMessage `json:"sessions"` // session.Manager.Snapshot payload
}

// recover loads the newest snapshot and replays the tail segments into mgr,
// returning the highest LSN seen. Only the newest snapshot is usable: the
// segments an older one would need are deleted when its successor is
// written.
func (j *Journal) recover(mgr *session.Manager, segs, snaps []uint64) (maxLSN uint64, err error) {
	var fold uint64 // replay only segments with index >= fold
	if n := len(snaps); n > 0 {
		fold = snaps[n-1]
		path := filepath.Join(j.dir, snapshotName(fold))
		data, err := os.ReadFile(path)
		if err != nil {
			return 0, fmt.Errorf("wal: read snapshot: %w", err)
		}
		var env snapshotEnvelope
		if err := json.Unmarshal(data, &env); err != nil {
			return 0, fmt.Errorf("wal: snapshot %s: %w", path, err)
		}
		if env.Version != 1 {
			return 0, fmt.Errorf("wal: snapshot %s: unsupported version %d", path, env.Version)
		}
		if err := mgr.Restore(env.Sessions); err != nil {
			return 0, fmt.Errorf("wal: snapshot %s: %w", path, err)
		}
		j.replay.snapshot = true
	}
	maxLSN = mgr.MaxJournalLSN()

	for i, idx := range segs {
		if idx < fold {
			continue // folded into the snapshot; left over from a crash mid-compaction
		}
		path := filepath.Join(j.dir, segmentName(idx))
		data, err := os.ReadFile(path)
		if err != nil {
			return 0, fmt.Errorf("wal: read segment: %w", err)
		}
		j.replay.segments++
		consumed, torn, err := scanRecords(data, func(payload []byte) error {
			var ev session.Event
			if err := json.Unmarshal(payload, &ev); err != nil {
				return fmt.Errorf("bad event: %w", err)
			}
			if ev.LSN > maxLSN {
				maxLSN = ev.LSN
			}
			applied, err := mgr.ReplayEvent(&ev)
			if err != nil {
				return err
			}
			if applied {
				j.replay.applied++
			} else {
				j.replay.skipped++
			}
			return nil
		})
		if err != nil {
			return 0, fmt.Errorf("wal: replay %s: %w", path, err)
		}
		if torn {
			// A crash-torn write is always a suffix: damage in any older
			// segment, or damage followed by further valid records, is real
			// mid-log corruption — refusing to boot beats silently truncating
			// acknowledged commits away.
			if i != len(segs)-1 || hasValidRecordAfter(data[consumed:]) {
				return 0, fmt.Errorf("wal: segment %s is corrupt mid-log (%d clean bytes of %d); only a trailing torn record is recoverable", path, consumed, len(data))
			}
			// A crash mid-write: drop the torn suffix and truncate so the
			// invariant "only the newest segment can be torn" keeps holding
			// after this boot rotates to a new segment. The truncation must be
			// durable (fsync file and directory) before any new segment is
			// created: were power lost with the truncate still in the page
			// cache, the torn suffix would reappear in what is by then a
			// non-final segment and the next recovery would refuse to boot.
			j.replay.tornBytes = len(data) - consumed
			if err := truncateDurable(path, int64(consumed), j.dir); err != nil {
				return 0, fmt.Errorf("wal: truncate torn tail of %s: %w", path, err)
			}
		}
	}
	return maxLSN, nil
}

// fail records the journal's first error; every later Append reports it.
func (j *Journal) fail(err error) {
	if j.err == nil {
		j.err = fmt.Errorf("wal: %w", err)
	}
}

// rotateLocked closes the active segment (if any) and opens the next one.
// Callers hold j.mu (or, during Open, have exclusive access).
func (j *Journal) rotateLocked() error {
	if j.err != nil {
		return j.err
	}
	if j.f != nil {
		if err := j.f.Sync(); err != nil {
			j.fail(err)
			return j.err
		}
		if err := j.f.Close(); err != nil {
			j.fail(err)
			return j.err
		}
		j.f = nil
	}
	j.seg++
	f, err := os.OpenFile(filepath.Join(j.dir, segmentName(j.seg)), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		j.fail(err)
		return j.err
	}
	if err := syncDir(j.dir); err != nil {
		f.Close()
		j.fail(err)
		return j.err
	}
	j.f = f
	j.segSize = 0
	j.segCount++
	return nil
}

// segmentBytes returns the rotation threshold.
func (j *Journal) segmentBytes() int64 {
	if j.opts.SegmentBytes > 0 {
		return j.opts.SegmentBytes
	}
	return DefaultSegmentBytes
}

// Append durably records ev (per the fsync policy), assigning and returning
// its log sequence number. It implements session.Journal.
func (j *Journal) Append(ev *session.Event) (uint64, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return 0, j.err
	}
	if j.segSize >= j.segmentBytes() {
		if err := j.rotateLocked(); err != nil {
			return 0, err
		}
	}
	ev.LSN = j.lsn + 1
	payload, err := json.Marshal(ev)
	if err != nil {
		// Same carve-out as the size check below: an unmarshalable create (a
		// NaN in the config, say) wrote nothing and the session layer holds no
		// state for it, so it is a per-request error, not a service fail-stop.
		if ev.Type == session.EventCreate {
			return 0, fmt.Errorf("wal: marshal create: %w", err)
		}
		j.fail(err)
		return 0, j.err
	}
	// Enforce the framing cap before writing: an oversized frame would be
	// acknowledged now but classified as torn or corrupt by replay — an
	// acknowledged record silently truncated away, or a log that refuses to
	// boot. Nothing is written either way, but the failure mode differs by
	// event type. A create is appended before the session layer holds any
	// state for it, so rejecting it is a per-request error (one hostile
	// oversized pool must not fail-stop the whole service). Every other type
	// is appended after the session applied the event in memory; there the
	// in-memory state is already ahead of the log, and the sticky fail-stop
	// of the session.Journal contract is the only safe answer.
	if len(payload) > j.maxRec {
		if ev.Type == session.EventCreate {
			return 0, fmt.Errorf("wal: create payload is %d bytes, over the %d-byte record cap", len(payload), j.maxRec)
		}
		j.fail(fmt.Errorf("event payload is %d bytes, over the %d-byte record cap", len(payload), j.maxRec))
		return 0, j.err
	}
	j.buf = appendRecord(j.buf[:0], payload)
	if _, err := j.f.Write(j.buf); err != nil {
		j.fail(err)
		return 0, j.err
	}
	if j.always && syncedEvent(ev.Type) {
		if err := j.f.Sync(); err != nil {
			j.fail(err)
			return 0, j.err
		}
		j.syncs++
	}
	j.lsn++
	j.segSize += int64(len(j.buf))
	j.records++
	j.bytes += uint64(len(j.buf))
	return j.lsn, nil
}

// syncedEvent reports whether the "always" policy must fsync after this
// event. Only acknowledgements that promise durability need the barrier:
// label commits, creations and deletions. Losing an unsynced
// propose/release/restart suffix to a power cut is exactly the lease-drop
// contract (the pairs become proposable again), and an fsync at the next
// commit persists every earlier record of the segment anyway — record order
// within the file means a commit can never be durable without its propose.
// Skipping the barrier on proposals halves the per-round fsync tax.
func syncedEvent(t session.EventType) bool {
	switch t {
	case session.EventCommit, session.EventCreate, session.EventDelete:
		return true
	}
	return false
}

// Err reports the sticky failure state; nil while the journal is healthy.
// It implements session.Journal.
func (j *Journal) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Sync flushes the active segment to stable storage.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.syncLocked()
}

func (j *Journal) syncLocked() error {
	if j.err != nil {
		return j.err
	}
	if j.f == nil {
		return nil
	}
	if err := j.f.Sync(); err != nil {
		j.fail(err)
		return j.err
	}
	j.syncs++
	return nil
}

// syncLoop is the background flusher of the interval fsync policy.
func (j *Journal) syncLoop() {
	t := time.NewTicker(j.interval)
	defer t.Stop()
	for {
		select {
		case <-j.stop:
			close(j.done)
			return
		case <-t.C:
			j.Sync()
		}
	}
}

// Compact folds everything before the active segment into an atomic
// snapshot and deletes the folded segments and superseded snapshots. It
// first rotates to a fresh segment, then snapshots the manager: every event
// in the old segments is therefore covered by the snapshot, and the few
// events appended between rotation and snapshot are both in the snapshot
// and in the tail — replay skips them by their per-session LSN watermark.
// Between the two it waits on the manager's create barrier: a Create whose
// record went into a now-folded segment may not have registered its session
// yet, and snapshotting before it does would lose the session when the
// folded segment is deleted. Safe to run concurrently with serving traffic.
func (j *Journal) Compact() error {
	j.mu.Lock()
	if j.err != nil {
		j.mu.Unlock()
		return j.err
	}
	if err := j.rotateLocked(); err != nil {
		j.mu.Unlock()
		return err
	}
	boundary := j.seg
	j.mu.Unlock()

	j.mgr.CreateBarrier()
	data, err := j.mgr.Snapshot()
	if err != nil {
		return fmt.Errorf("wal: compact: %w", err)
	}
	env, err := json.Marshal(snapshotEnvelope{Version: 1, Sessions: data})
	if err != nil {
		return fmt.Errorf("wal: compact: %w", err)
	}
	if err := WriteFileAtomic(filepath.Join(j.dir, snapshotName(boundary)), env, 0o644); err != nil {
		return fmt.Errorf("wal: compact: %w", err)
	}

	// The snapshot is durable; the folded segments and any older snapshot
	// can go. Removal failures are not fatal — replay skips folded segments.
	segs, snaps, err := listDir(j.dir)
	if err != nil {
		return err
	}
	removed := 0
	for _, idx := range segs {
		if idx < boundary {
			if os.Remove(filepath.Join(j.dir, segmentName(idx))) == nil {
				removed++
			}
		}
	}
	for _, idx := range snaps {
		if idx < boundary {
			os.Remove(filepath.Join(j.dir, snapshotName(idx)))
		}
	}
	j.mu.Lock()
	j.compactions++
	j.segCount -= removed
	j.mu.Unlock()
	return nil
}

// Close flushes and closes the journal. The manager should have stopped
// serving first.
func (j *Journal) Close() error {
	if j.stop != nil {
		select {
		case <-j.done:
		default:
			close(j.stop)
			<-j.done
		}
		j.stop = nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return j.err
	}
	err := j.syncLocked()
	if cerr := j.f.Close(); cerr != nil && err == nil {
		err = cerr
	}
	j.f = nil
	return err
}

// Stats returns a snapshot of the journal's counters.
func (j *Journal) Stats() Stats {
	j.mu.Lock()
	defer j.mu.Unlock()
	return Stats{
		Segments:        j.segCount,
		ActiveSegment:   j.seg,
		RecordsAppended: j.records,
		BytesAppended:   j.bytes,
		Syncs:           j.syncs,
		Compactions:     j.compactions,
		LastLSN:         j.lsn,
		ReplayApplied:   j.replay.applied,
		ReplaySkipped:   j.replay.skipped,
		ReplayTornBytes: j.replay.tornBytes,
		ReplaySnapshot:  j.replay.snapshot,
		ReplaySegments:  j.replay.segments,
	}
}
