// Package wal gives the evaluation service a durable label journal: a
// segmented, append-only, CRC-checked write-ahead log of session lifecycle
// events (create, propose, label-commit, release, delete) with a
// configurable fsync policy, deterministic replay on startup, and
// compaction that folds cold segments into session.Manager snapshots plus
// trimmed tails.
//
// Ground-truth labels are bought from a crowd or expert oracle, so losing
// them to a crash means paying the oracle twice. The session subsystem is a
// deterministic state machine (seeded draws; the instrumental distribution
// is a pure function of past labels), so the journal records the operation
// sequence and recovery re-executes it through the same code paths the live
// server ran: the recovered sampler state — posteriors, estimator sums,
// random stream, availability — is bit-for-bit the state at the last
// journaled event, and it continues the exact proposal sequence (see
// TestRecoveryContinuesExactly and the kill-9 end-to-end test in
// cmd/oasis-server).
//
// The journal is sharded into per-shard lanes, mirroring the session
// manager's shards: a session's records all land in the lane its ID hashes
// to, each lane appends under its own lock to its own segment stream, and
// per-append fsyncs only barrier their lane — so commits on sessions in
// different shards never queue behind one writer or one fsync. Because
// sessions are independent samplers, per-lane order is all the order there
// is: recovery replays lanes concurrently and the result is identical for
// any shard count (TestShardedReplayEquivalence pins that down).
//
// Layout of the WAL directory (format version 2):
//
//	wal-meta.json              format version and fixed lane count
//	wal-<lane>-<n>.log         append-only record segments of one lane,
//	                           rotated by size and on boot
//	snap-<lane>-<n>.json       per-lane compaction snapshot folding every
//	                           segment of that lane with index < n
//
// Version 1 directories (a single un-tagged segment stream, 8-byte record
// headers) are read-compatible: Open recovers them and upgrades the
// directory in place, folding the legacy log into per-lane snapshots with
// wal-meta.json as the commit marker.
//
// Torn or truncated final records — a crash mid-write — are detected by CRC,
// dropped, and the tail truncated; damage anywhere else is fatal. A commit
// is acknowledged only after its record is appended (and, under
// -fsync always, synced), so an acknowledged label is never lost by kill -9;
// see the fsync policy trade-offs on Options.
package wal

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"oasis/internal/session"
)

// Options configures a Journal.
type Options struct {
	// Fsync selects the durability policy:
	//
	//	"always"  fsync before acknowledging every label-affecting event —
	//	          commit, create, delete — (default); propose/release
	//	          records ride on the next such barrier, which losing is
	//	          exactly the lease-drop contract. An acknowledged label
	//	          survives kill -9 and power loss. Slowest: one fsync per
	//	          propose/commit round trip — but the fsync only barriers
	//	          the session's own lane, so commits in other shards
	//	          proceed concurrently.
	//	interval  a Go duration such as "100ms": appends are write(2)s and a
	//	          background flusher fsyncs every lane on that interval.
	//	          Kill -9 loses nothing (the page cache survives the
	//	          process); power loss can lose up to one interval of
	//	          acknowledged labels.
	//	"off"     never fsync explicitly. Same kill-9 safety as interval
	//	          (every append is still a write(2)); power loss can lose
	//	          whatever the OS had not written back.
	Fsync string
	// SegmentBytes rotates a lane's active segment once it exceeds this
	// size; 0 means 8 MiB.
	SegmentBytes int64
	// Metrics, when set, records append/fsync latency histograms and the
	// rotation count (see NewMetrics). Nil disables the timing entirely.
	Metrics *Metrics
}

// DefaultSegmentBytes is the rotation threshold when Options.SegmentBytes
// is zero.
const DefaultSegmentBytes = 8 << 20

// ErrClosed is returned by Append after Close. The manager is expected to
// stop serving before the journal closes, but an in-flight request that
// races the shutdown deserves an error, not a crash.
var ErrClosed = errors.New("wal: journal is closed")

// LaneStats is one journal lane's slice of the counters.
type LaneStats struct {
	// Lane is the lane index — equal to the session-manager shard whose
	// sessions it journals.
	Lane int `json:"lane"`
	// Segments counts the lane's live segment files; ActiveSegment is the
	// index the lane is appending to.
	Segments      int    `json:"segments"`
	ActiveSegment uint64 `json:"activeSegment"`
	// RecordsAppended / BytesAppended / Syncs count appends since Open.
	RecordsAppended uint64 `json:"recordsAppended"`
	BytesAppended   uint64 `json:"bytesAppended"`
	Syncs           uint64 `json:"syncs"`
	// LastLSN is the lane's most recently assigned log sequence number.
	LastLSN uint64 `json:"lastLSN"`
}

// Stats is a snapshot of the journal's counters, exposed by the server's
// /v1/stats endpoint. The top-level counters aggregate every lane; Lanes
// breaks them down per shard.
type Stats struct {
	// Lanes is the journal's fixed lane count (the shard count it was
	// created with).
	LaneCount int `json:"laneCount"`
	// Segments counts live segment files across all lanes; ActiveSegment is
	// the index lane 0 is appending to (kept for single-lane dashboards —
	// see Lanes for the rest).
	Segments      int    `json:"segments"`
	ActiveSegment uint64 `json:"activeSegment"`
	// RecordsAppended / BytesAppended / Syncs count appends since Open.
	RecordsAppended uint64 `json:"recordsAppended"`
	BytesAppended   uint64 `json:"bytesAppended"`
	Syncs           uint64 `json:"syncs"`
	// Compactions counts successful per-shard compactions since Open.
	Compactions uint64 `json:"compactions"`
	// LastLSN is the highest log sequence number assigned by any lane.
	LastLSN uint64 `json:"lastLSN"`
	// Replay* describe the recovery that Open performed: events applied,
	// events skipped (already folded into a snapshot, or for sessions
	// deleted later in the log), and torn tail bytes dropped.
	ReplayApplied   uint64 `json:"replayApplied"`
	ReplaySkipped   uint64 `json:"replaySkipped"`
	ReplayTornBytes int    `json:"replayTornBytes"`
	ReplaySnapshot  bool   `json:"replaySnapshot"`
	ReplaySegments  int    `json:"replaySegments"`
	// Lanes is the per-lane breakdown.
	Lanes []LaneStats `json:"lanes,omitempty"`
}

// lane is one shard's journal stream: its own lock, file, segment counter
// and LSN sequence. Appends to different lanes never contend.
type lane struct {
	idx int

	// compactMu serialises compactions of this lane; held across the whole
	// rotate/barrier/snapshot/trim sequence so two overlapping CompactShard
	// calls (a periodic sweep racing an explicit one, say) cannot interleave
	// their boundaries.
	compactMu sync.Mutex

	mu       sync.Mutex
	f        *os.File
	seg      uint64 // active segment index
	oldest   uint64 // first live segment index (segments below it are folded)
	snapAt   uint64 // boundary of the lane's newest snapshot (0: none)
	segSize  int64
	segCount int
	lsn      uint64
	buf      []byte // scratch frame buffer, reused across appends

	records uint64
	bytes   uint64
	syncs   uint64
}

// Journal is the durable event log. It implements session.Journal: the
// session layer appends every state-changing event before acknowledging it,
// and the journal routes it to the lane of the session's shard. All methods
// are safe for concurrent use. Failures are sticky and journal-wide — after
// one failed append or sync on any lane every later Append fails and Err
// reports the cause — so the service fail-stops instead of acknowledging
// labels the log does not hold.
type Journal struct {
	dir  string
	mgr  *session.Manager
	opts Options

	always   bool          // fsync per label-affecting append
	interval time.Duration // background fsync interval (0: none)
	met      *Metrics      // nil: no latency instrumentation

	lanes []*lane

	// The sticky failure and the record cap are atomics, not mutex state:
	// every append on every lane reads both, and a shared lock there would
	// re-serialise the hot path the lanes exist to unshare. err is
	// write-once (the first failure wins); maxRec is fixed after Open and
	// lowered only by tests.
	err    atomic.Pointer[error]
	maxRec atomic.Int64

	// mu guards the journal-wide cold state: the compaction counter and the
	// replay report. Lock ordering: a lane's mu may be held while taking
	// j.mu, so j.mu must never be held while taking a lane's mu.
	mu          sync.Mutex
	compactions uint64
	replay      replayInfo

	stop chan struct{}
	done chan struct{}
}

// replayInfo captures what Open's recovery did, aggregated across lanes.
type replayInfo struct {
	applied   uint64
	skipped   uint64
	tornBytes int
	snapshot  bool
	segments  int
}

// parseFsync resolves Options.Fsync.
func parseFsync(s string) (always bool, interval time.Duration, err error) {
	switch s {
	case "", "always":
		return true, 0, nil
	case "off":
		return false, 0, nil
	default:
		d, err := time.ParseDuration(s)
		if err != nil || d <= 0 {
			return false, 0, fmt.Errorf("wal: fsync policy must be \"always\", \"off\" or a positive duration, got %q", s)
		}
		return false, d, nil
	}
}

// Open recovers the WAL in dir into mgr and returns a journal with one lane
// per manager shard, each appending to a fresh segment. Recovery loads each
// lane's newest compaction snapshot (if any), replays the lanes' remaining
// segments concurrently — skipping events the snapshots already folded —
// truncates torn tails, drops every outstanding lease (the crash reading of
// the lease contract, made durable by per-lane restart records), and
// finally attaches itself to mgr with SetJournal so live operations are
// journaled from here on. A legacy single-stream (v1) directory is
// recovered and upgraded in place. The lane count is fixed when the journal
// is created: reopening with a different manager shard count is an error.
// mgr must not be serving traffic yet.
func Open(dir string, mgr *session.Manager, opts Options) (*Journal, error) {
	if mgr == nil {
		return nil, fmt.Errorf("wal: nil session manager")
	}
	always, interval, err := parseFsync(opts.Fsync)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	j := &Journal{
		dir:      dir,
		mgr:      mgr,
		opts:     opts,
		always:   always,
		interval: interval,
		met:      opts.Metrics,
		lanes:    make([]*lane, mgr.Shards()),
	}
	j.maxRec.Store(maxRecordSize)
	for i := range j.lanes {
		j.lanes[i] = &lane{idx: i}
	}

	inv, err := readDirState(dir)
	if err != nil {
		return nil, err
	}
	switch {
	case inv.meta == nil && (len(inv.legacySegs) > 0 || len(inv.legacySnaps) > 0):
		// A legacy v1 journal: recover the single stream, then upgrade the
		// directory to per-lane format in place.
		if err := j.recoverLegacy(mgr, inv); err != nil {
			return nil, err
		}
		if err := j.upgradeLegacy(inv); err != nil {
			return nil, err
		}
	case inv.meta == nil:
		// Lane segments without the meta marker mean someone deleted
		// wal-meta.json from a live journal; refusing beats guessing the
		// lane count.
		if len(inv.laneSegs) > 0 || len(inv.laneSnaps) > 0 {
			return nil, fmt.Errorf("wal: %s is missing but lane files exist; the journal's lane count is unrecoverable", metaName)
		}
		// A fresh directory: stamp the format before writing anything else.
		if err := j.writeMeta(); err != nil {
			return nil, err
		}
	default:
		if inv.meta.Version != recordVersion {
			return nil, fmt.Errorf("wal: unsupported journal format version %d", inv.meta.Version)
		}
		if inv.meta.Lanes != len(j.lanes) {
			return nil, fmt.Errorf("wal: journal has %d lanes but the manager has %d shards; a session's records all live in one lane, so an existing journal cannot be re-sharded — reopen with -shards %d",
				inv.meta.Lanes, len(j.lanes), inv.meta.Lanes)
		}
		for ln := range inv.laneSegs {
			if ln >= len(j.lanes) {
				return nil, fmt.Errorf("wal: segment for lane %d in a %d-lane journal", ln, len(j.lanes))
			}
		}
		for ln := range inv.laneSnaps {
			if ln >= len(j.lanes) {
				return nil, fmt.Errorf("wal: snapshot for lane %d in a %d-lane journal", ln, len(j.lanes))
			}
		}
		// Legacy leftovers after an interrupted upgrade: the upgrade wrote
		// every lane snapshot before committing the meta marker, so the
		// legacy files are fully folded and safe to drop.
		for _, idx := range inv.legacySegs {
			os.Remove(filepath.Join(dir, legacySegmentName(idx)))
		}
		for _, idx := range inv.legacySnaps {
			os.Remove(filepath.Join(dir, legacySnapshotName(idx)))
		}
		if err := j.recoverLanes(mgr, inv); err != nil {
			return nil, err
		}
	}

	// A replayed create whose pool reference failed to resolve is parked,
	// not fatal, because a later delete in the log absolves it (the pool was
	// legitimately removed after its last session died). Anything still
	// parked now is a live session whose pool is genuinely missing or
	// corrupt: refuse the boot deterministically.
	if err := mgr.UnresolvedReplayCreates(); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}

	// Resume every lane's LSN sequence above everything seen anywhere:
	// cross-lane LSNs are never compared, but per-session watermarks must
	// stay below every future LSN even right after an upgrade moved a
	// session's stream between lanes.
	maxLSN := mgr.MaxJournalLSN()
	for _, ln := range j.lanes {
		if ln.lsn > maxLSN {
			maxLSN = ln.lsn
		}
	}
	for _, ln := range j.lanes {
		ln.lsn = maxLSN
		// The fresh boot segment must sort after the lane's snapshot
		// boundary, or a later recovery would skip it as folded.
		if ln.snapAt > ln.seg {
			ln.seg = ln.snapAt
		}
		// The upgrade path hands each lane an already-open first segment
		// (created before the meta marker committed, to close the crash
		// window); every other path boots onto a freshly rotated one.
		if ln.f == nil {
			if err := j.rotateLane(ln); err != nil {
				return nil, err
			}
		}
	}

	// The boot barrier: drop every outstanding lease in memory and append a
	// restart record to every lane so the drop replays per shard — later
	// recoveries see the same availability this process does, lane by lane.
	if _, err := mgr.ReplayEvent(&session.Event{Type: session.EventRestart}); err != nil {
		return nil, err
	}
	for _, ln := range j.lanes {
		ln.mu.Lock()
		_, err := j.appendLane(ln, &session.Event{Type: session.EventRestart})
		ln.mu.Unlock()
		if err != nil {
			return nil, err
		}
	}
	mgr.SetJournal(j)

	if j.interval > 0 {
		j.stop = make(chan struct{})
		j.done = make(chan struct{})
		go j.syncLoop()
	}
	return j, nil
}

// DirLanes reports the lane count recorded in an existing WAL directory's
// meta file — what a manager must be sharded to before Open will accept the
// directory. It returns 0 for a fresh or legacy (pre-lane) directory, where
// the caller is free to pick: oasis-server uses it so an unset -shards
// adopts an existing journal's lane count instead of re-deriving one from
// the hardware (which may have changed since the journal was created).
func DirLanes(dir string) (int, error) {
	data, err := os.ReadFile(filepath.Join(dir, metaName))
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("wal: read %s: %w", metaName, err)
	}
	var m metaFile
	if err := json.Unmarshal(data, &m); err != nil {
		return 0, fmt.Errorf("wal: %s: %w", metaName, err)
	}
	return m.Lanes, nil
}

// dirState is the inventory of a WAL directory.
type dirState struct {
	meta        *metaFile
	legacySegs  []uint64
	legacySnaps []uint64
	laneSegs    map[int][]uint64
	laneSnaps   map[int][]uint64
	// laneDataSegs counts lane segment files with at least one byte — the
	// signal for the missing-lane check (a lane that lost its files while
	// sibling lanes still hold records must be rejected, never silently
	// replayed around).
	laneDataSegs int
}

// readDirState enumerates the directory: meta file, legacy segment and
// snapshot indices, and per-lane v2 segment and snapshot indices, each
// sorted ascending.
func readDirState(dir string) (dirState, error) {
	st := dirState{laneSegs: make(map[int][]uint64), laneSnaps: make(map[int][]uint64)}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return st, fmt.Errorf("wal: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if name == metaName {
			data, err := os.ReadFile(filepath.Join(dir, name))
			if err != nil {
				return st, fmt.Errorf("wal: read %s: %w", metaName, err)
			}
			var m metaFile
			if err := json.Unmarshal(data, &m); err != nil {
				return st, fmt.Errorf("wal: %s: %w", metaName, err)
			}
			if m.Lanes < 1 || m.Lanes > session.MaxShards {
				return st, fmt.Errorf("wal: %s declares %d lanes, outside [1, %d]", metaName, m.Lanes, session.MaxShards)
			}
			// writeMeta only ever records a normalized (power-of-two) shard
			// count, and the manager normalizes every -shards value the same
			// way — so a non-power-of-two lane count is unsatisfiable by any
			// flag and must be called out as corruption, not echoed back as
			// a "reopen with -shards 3" dead-end.
			if m.Lanes != session.NormalizeShards(m.Lanes) {
				return st, fmt.Errorf("wal: %s declares %d lanes, which is not a power of two; the meta file is corrupt", metaName, m.Lanes)
			}
			st.meta = &m
			continue
		}
		if lane, idx, ok := parseLaneIndexed(name, segmentPrefix, segmentSuffix); ok {
			st.laneSegs[lane] = append(st.laneSegs[lane], idx)
			if info, err := e.Info(); err == nil && info.Size() > 0 {
				st.laneDataSegs++
			}
			continue
		}
		if lane, idx, ok := parseLaneIndexed(name, snapshotPrefix, snapshotSuffix); ok {
			st.laneSnaps[lane] = append(st.laneSnaps[lane], idx)
			continue
		}
		if idx, ok := parseIndexed(name, segmentPrefix, segmentSuffix); ok {
			st.legacySegs = append(st.legacySegs, idx)
			continue
		}
		if idx, ok := parseIndexed(name, snapshotPrefix, snapshotSuffix); ok {
			st.legacySnaps = append(st.legacySnaps, idx)
		}
	}
	sort.Slice(st.legacySegs, func(i, k int) bool { return st.legacySegs[i] < st.legacySegs[k] })
	sort.Slice(st.legacySnaps, func(i, k int) bool { return st.legacySnaps[i] < st.legacySnaps[k] })
	for _, s := range st.laneSegs {
		sort.Slice(s, func(i, k int) bool { return s[i] < s[k] })
	}
	for _, s := range st.laneSnaps {
		sort.Slice(s, func(i, k int) bool { return s[i] < s[k] })
	}
	return st, nil
}

// snapshotEnvelope is the on-disk form of a compaction snapshot. Version 1
// envelopes (legacy whole-manager snapshots) have no lane; version 2
// envelopes carry the lane they fold.
type snapshotEnvelope struct {
	Version  int             `json:"version"`
	Lane     *int            `json:"lane,omitempty"`
	Sessions json.RawMessage `json:"sessions"` // session.Manager snapshot payload
}

// writeMeta stamps the directory with the journal's format version and lane
// count, atomically.
func (j *Journal) writeMeta() error {
	data, err := json.Marshal(metaFile{Version: recordVersion, Lanes: len(j.lanes)})
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if err := WriteFileAtomic(filepath.Join(j.dir, metaName), data, 0o644); err != nil {
		return fmt.Errorf("wal: write %s: %w", metaName, err)
	}
	return nil
}

// recoverLegacy replays a v1 single-stream journal — newest legacy snapshot
// plus remaining legacy segments — into mgr, exactly as the v1 reader did.
func (j *Journal) recoverLegacy(mgr *session.Manager, inv dirState) error {
	var fold uint64 // replay only segments with index >= fold
	if n := len(inv.legacySnaps); n > 0 {
		fold = inv.legacySnaps[n-1]
		path := filepath.Join(j.dir, legacySnapshotName(fold))
		data, err := os.ReadFile(path)
		if err != nil {
			return fmt.Errorf("wal: read snapshot: %w", err)
		}
		var env snapshotEnvelope
		if err := json.Unmarshal(data, &env); err != nil {
			return fmt.Errorf("wal: snapshot %s: %w", path, err)
		}
		if env.Version != 1 {
			return fmt.Errorf("wal: snapshot %s: unsupported version %d", path, env.Version)
		}
		if err := mgr.RestoreReplay(env.Sessions); err != nil {
			return fmt.Errorf("wal: snapshot %s: %w", path, err)
		}
		j.replay.snapshot = true
	}
	maxLSN := mgr.MaxJournalLSN()

	for i, idx := range inv.legacySegs {
		if idx < fold {
			continue // folded into the snapshot; left over from a crash mid-compaction
		}
		path := filepath.Join(j.dir, legacySegmentName(idx))
		data, err := os.ReadFile(path)
		if err != nil {
			return fmt.Errorf("wal: read segment: %w", err)
		}
		j.replay.segments++
		consumed, torn, err := scanRecordsV1(data, func(payload []byte) error {
			var ev session.Event
			if err := json.Unmarshal(payload, &ev); err != nil {
				return fmt.Errorf("bad event: %w", err)
			}
			if ev.LSN > maxLSN {
				maxLSN = ev.LSN
			}
			applied, err := mgr.ReplayEvent(&ev)
			if err != nil {
				return err
			}
			if applied {
				j.replay.applied++
			} else {
				j.replay.skipped++
			}
			return nil
		})
		if err != nil {
			return fmt.Errorf("wal: replay %s: %w", path, err)
		}
		if torn {
			// A crash-torn write is always a suffix: damage in any older
			// segment, or damage followed by further valid records, is real
			// mid-log corruption — refusing to boot beats silently truncating
			// acknowledged commits away.
			if i != len(inv.legacySegs)-1 || hasValidRecordAfterV1(data[consumed:]) {
				return fmt.Errorf("wal: segment %s is corrupt mid-log (%d clean bytes of %d); only a trailing torn record is recoverable", path, consumed, len(data))
			}
			// A crash mid-write: drop the torn suffix and truncate durably so
			// a power cut cannot resurrect it (the upgrade deletes the file
			// anyway, but the truncation must hit disk before the fold does).
			j.replay.tornBytes = len(data) - consumed
			if err := truncateDurable(path, int64(consumed), j.dir); err != nil {
				return fmt.Errorf("wal: truncate torn tail of %s: %w", path, err)
			}
		}
	}
	for _, ln := range j.lanes {
		ln.lsn = maxLSN
	}
	return nil
}

// upgradeLegacy converts a recovered v1 directory to per-lane format: fold
// the entire recovered state into one snapshot per lane, create every lane's
// first (empty, still-open) segment, commit the upgrade by writing
// wal-meta.json, then drop the legacy files. The meta file is the commit
// marker — a crash before it leaves the legacy journal intact and the
// upgrade simply reruns; a crash after it recovers from the lane snapshots
// and the legacy leftovers are deleted as already-folded. The segments must
// exist before the marker: recoverLanes rejects a snapshot-bearing journal
// with a segment-less lane as missing files, so the directory must never
// become visible — even across a crash — with the meta committed but a
// lane's segment not yet created.
func (j *Journal) upgradeLegacy(inv dirState) (err error) {
	// Any failure below abandons the upgrade: release every lane segment
	// handle opened so far so the caller doesn't leak them.
	defer func() {
		if err == nil {
			return
		}
		for _, ln := range j.lanes {
			if ln.f != nil {
				ln.f.Close()
				ln.f = nil
			}
		}
	}()
	// Lane files found before the meta marker exists are leftovers of a
	// crashed earlier upgrade attempt — possibly at a different shard count
	// (an unset -shards re-derives from the hardware). Sweep them all before
	// writing anything: a stale snapshot or segment for a lane outside the
	// new count would otherwise survive the commit and make every later Open
	// refuse the directory as carrying files for a lane it does not have.
	// (The syncDir below makes the sweep durable before the marker commits.)
	for lane, idxs := range inv.laneSegs {
		for _, idx := range idxs {
			if err := os.Remove(filepath.Join(j.dir, segmentName(lane, idx))); err != nil {
				return fmt.Errorf("wal: upgrade: sweep stale lane files: %w", err)
			}
		}
	}
	for lane, idxs := range inv.laneSnaps {
		for _, idx := range idxs {
			if err := os.Remove(filepath.Join(j.dir, snapshotName(lane, idx))); err != nil {
				return fmt.Errorf("wal: upgrade: sweep stale lane files: %w", err)
			}
		}
	}
	for _, ln := range j.lanes {
		data, err := j.mgr.SnapshotShard(ln.idx)
		if err != nil {
			return fmt.Errorf("wal: upgrade: %w", err)
		}
		laneIdx := ln.idx
		env, err := json.Marshal(snapshotEnvelope{Version: 2, Lane: &laneIdx, Sessions: data})
		if err != nil {
			return fmt.Errorf("wal: upgrade: %w", err)
		}
		// Boundary 1: every lane segment ever written (they start at 2 here)
		// will replay above this snapshot, guarded by the per-session
		// watermarks.
		if err := WriteFileAtomic(filepath.Join(j.dir, snapshotName(ln.idx, 1)), env, 0o644); err != nil {
			return fmt.Errorf("wal: upgrade: %w", err)
		}
		ln.snapAt = 1
		// O_TRUNC, not O_EXCL: a crash before the meta marker rewinds Open to
		// the legacy branch, which reruns the upgrade over these leftovers.
		f, err := os.OpenFile(filepath.Join(j.dir, segmentName(ln.idx, ln.snapAt+1)), os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
		if err != nil {
			return fmt.Errorf("wal: upgrade: %w", err)
		}
		ln.f = f
		ln.seg = ln.snapAt + 1
		ln.segSize = 0
		ln.segCount = 1
		ln.oldest = ln.seg
	}
	if err := syncDir(j.dir); err != nil {
		return fmt.Errorf("wal: upgrade: %w", err)
	}
	if err := j.writeMeta(); err != nil {
		return err
	}
	for _, idx := range inv.legacySegs {
		os.Remove(filepath.Join(j.dir, legacySegmentName(idx)))
	}
	for _, idx := range inv.legacySnaps {
		os.Remove(filepath.Join(j.dir, legacySnapshotName(idx)))
	}
	return nil
}

// recoverLanes replays every lane concurrently into mgr. Lanes hold
// disjoint shards' sessions, so the replays commute; the merge is by
// (lane, LSN) — per-lane order is preserved by the sequential scan, and no
// cross-lane order exists to preserve.
func (j *Journal) recoverLanes(mgr *session.Manager, inv dirState) error {
	// The missing-lane check: once the journal has ever carried state — a
	// segment with bytes anywhere, or any lane snapshot (compaction only
	// runs on a booted journal) — every lane's files exist, because boot
	// creates them all. A lane with no segments past that point means the
	// lane's files were deleted — reject, never silently merge a partial
	// journal. (Only a crash during the very first boot, before any record
	// or snapshot exists, legitimately leaves lanes without files.)
	if inv.laneDataSegs > 0 || len(inv.laneSnaps) > 0 {
		for _, ln := range j.lanes {
			if len(inv.laneSegs[ln.idx]) == 0 {
				return fmt.Errorf("wal: lane %d has no segments while other lanes hold records or snapshots; the journal is missing a lane", ln.idx)
			}
		}
	}
	// Bounded fan-out: each in-flight lane holds one full segment in memory,
	// so cap the workers at the core count instead of reading (up to) 256
	// segment files at once on a freshly-crashed, possibly memory-pressured
	// machine.
	workers := min(len(j.lanes), runtime.GOMAXPROCS(0))
	errs := make([]error, len(j.lanes))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				idx := int(next.Add(1)) - 1
				if idx >= len(j.lanes) {
					return
				}
				ln := j.lanes[idx]
				errs[idx] = j.recoverLane(mgr, ln, inv.laneSegs[idx], inv.laneSnaps[idx])
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// recoverLane replays one lane: newest lane snapshot, then the remaining
// lane segments in order, with the same torn-tail contract as the legacy
// reader, applied per lane.
func (j *Journal) recoverLane(mgr *session.Manager, ln *lane, segs, snaps []uint64) error {
	var fold uint64
	var applied, skipped uint64
	var tornBytes, replayedSegs int
	sawSnapshot := false
	if n := len(snaps); n > 0 {
		fold = snaps[n-1]
		path := filepath.Join(j.dir, snapshotName(ln.idx, fold))
		data, err := os.ReadFile(path)
		if err != nil {
			return fmt.Errorf("wal: read snapshot: %w", err)
		}
		var env snapshotEnvelope
		if err := json.Unmarshal(data, &env); err != nil {
			return fmt.Errorf("wal: snapshot %s: %w", path, err)
		}
		if env.Version != 2 || env.Lane == nil || *env.Lane != ln.idx {
			return fmt.Errorf("wal: snapshot %s: version %d, lane %v — want version 2 for lane %d", path, env.Version, env.Lane, ln.idx)
		}
		if err := mgr.RestoreReplay(env.Sessions); err != nil {
			return fmt.Errorf("wal: snapshot %s: %w", path, err)
		}
		sawSnapshot = true
	}

	var maxLSN uint64
	for i, idx := range segs {
		if idx < fold {
			continue // folded into the lane snapshot
		}
		path := filepath.Join(j.dir, segmentName(ln.idx, idx))
		data, err := os.ReadFile(path)
		if err != nil {
			return fmt.Errorf("wal: read segment: %w", err)
		}
		replayedSegs++
		consumed, torn, err := scanRecords(data, len(j.lanes), func(shard int, payload []byte) error {
			if shard != ln.idx {
				return fmt.Errorf("record tagged lane %d in lane %d's segment", shard, ln.idx)
			}
			var ev session.Event
			if err := json.Unmarshal(payload, &ev); err != nil {
				return fmt.Errorf("bad event: %w", err)
			}
			if ev.LSN > maxLSN {
				maxLSN = ev.LSN
			}
			if ev.Type == session.EventRestart {
				// A per-lane boot barrier: drop this shard's leases only, so
				// concurrent lane replays stay within their shard.
				mgr.ReplayShardRestart(ln.idx)
				applied++
				return nil
			}
			if ev.Session != "" && mgr.ShardFor(ev.Session) != ln.idx {
				return fmt.Errorf("event for session %q (shard %d) in lane %d", ev.Session, mgr.ShardFor(ev.Session), ln.idx)
			}
			ok, err := mgr.ReplayEvent(&ev)
			if err != nil {
				return err
			}
			if ok {
				applied++
			} else {
				skipped++
			}
			return nil
		})
		if err != nil {
			return fmt.Errorf("wal: replay %s: %w", path, err)
		}
		if torn {
			// Only the lane's newest segment may carry a torn suffix; see the
			// legacy reader for the rationale.
			if i != len(segs)-1 || hasValidRecordAfter(data[consumed:]) {
				return fmt.Errorf("wal: segment %s is corrupt mid-log (%d clean bytes of %d); only a trailing torn record is recoverable", path, consumed, len(data))
			}
			tornBytes = len(data) - consumed
			if err := truncateDurable(path, int64(consumed), j.dir); err != nil {
				return fmt.Errorf("wal: truncate torn tail of %s: %w", path, err)
			}
		}
	}
	ln.lsn = maxLSN
	ln.snapAt = fold
	if n := len(segs); n > 0 {
		ln.seg = segs[n-1]
		ln.oldest = segs[0]
		ln.segCount = n
	}
	// Snapshots older than the newest are superseded leftovers of a crashed
	// compaction; recovery is the natural place to sweep them.
	for _, idx := range snaps[:max(0, len(snaps)-1)] {
		os.Remove(filepath.Join(j.dir, snapshotName(ln.idx, idx)))
	}
	j.mu.Lock()
	j.replay.applied += applied
	j.replay.skipped += skipped
	j.replay.tornBytes += tornBytes
	j.replay.segments += replayedSegs
	j.replay.snapshot = j.replay.snapshot || sawSnapshot
	j.mu.Unlock()
	return nil
}

// fail records the journal's first error; every later Append reports it.
func (j *Journal) fail(err error) {
	wrapped := fmt.Errorf("wal: %w", err)
	j.err.CompareAndSwap(nil, &wrapped)
}

// errNow returns the sticky failure state.
func (j *Journal) errNow() error {
	if p := j.err.Load(); p != nil {
		return *p
	}
	return nil
}

// rotateLane closes the lane's active segment (if any) and opens the next
// one. Callers hold ln.mu (or, during Open, have exclusive access).
func (j *Journal) rotateLane(ln *lane) error {
	if err := j.errNow(); err != nil {
		return err
	}
	rotated := ln.f != nil // opening the first segment is not a rotation
	if ln.f != nil {
		if err := ln.f.Sync(); err != nil {
			j.fail(err)
			return j.errNow()
		}
		if err := ln.f.Close(); err != nil {
			j.fail(err)
			return j.errNow()
		}
		ln.f = nil
	}
	ln.seg++
	f, err := os.OpenFile(filepath.Join(j.dir, segmentName(ln.idx, ln.seg)), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		j.fail(err)
		return j.errNow()
	}
	if err := syncDir(j.dir); err != nil {
		f.Close()
		j.fail(err)
		return j.errNow()
	}
	ln.f = f
	ln.segSize = 0
	ln.segCount++
	if ln.oldest == 0 {
		ln.oldest = ln.seg
	}
	if rotated && j.met != nil {
		j.met.Rotations.Inc()
	}
	return nil
}

// segmentBytes returns the rotation threshold.
func (j *Journal) segmentBytes() int64 {
	if j.opts.SegmentBytes > 0 {
		return j.opts.SegmentBytes
	}
	return DefaultSegmentBytes
}

// Append durably records ev (per the fsync policy) in the lane of the
// session's shard, assigning and returning its per-lane log sequence
// number. It implements session.Journal. Appends for sessions in different
// shards run concurrently; only same-shard appends serialise.
func (j *Journal) Append(ev *session.Event) (uint64, error) {
	ln := j.lanes[0]
	if ev.Session != "" {
		ln = j.lanes[j.mgr.ShardFor(ev.Session)]
	}
	ln.mu.Lock()
	defer ln.mu.Unlock()
	return j.appendLane(ln, ev)
}

// appendLane appends ev to ln. Callers hold ln.mu. The only journal-wide
// state it touches — the sticky error and the record cap — is atomic, so
// appends on different lanes share no lock.
func (j *Journal) appendLane(ln *lane, ev *session.Event) (uint64, error) {
	var start time.Time
	if j.met != nil {
		start = time.Now()
	}
	// Traced requests carry their trace on the event (never journaled): the
	// append span covers marshal+write+fsync, with the fsync — the
	// durability tax — as a nested child so timelines show which of the two
	// dominated. Unsampled requests carry nil and both Starts are free.
	asp := ev.Trace.Start("wal", "wal.append").AttrInt("lane", int64(ln.idx))
	defer asp.End()
	if err := j.errNow(); err != nil {
		return 0, err
	}
	// A clean Close leaves no sticky error but does nil the lane files; an
	// append racing shutdown gets an error, not a nil dereference.
	if ln.f == nil {
		return 0, ErrClosed
	}
	maxRec := int(j.maxRec.Load())
	if ln.segSize >= j.segmentBytes() {
		if err := j.rotateLane(ln); err != nil {
			return 0, err
		}
	}
	ev.LSN = ln.lsn + 1
	payload, err := json.Marshal(ev)
	if err != nil {
		// Same carve-out as the size check below: an unmarshalable create (a
		// NaN in the config, say) wrote nothing and the session layer holds no
		// state for it, so it is a per-request error, not a service fail-stop.
		if ev.Type == session.EventCreate {
			return 0, fmt.Errorf("wal: marshal create: %w", err)
		}
		j.fail(err)
		return 0, j.errNow()
	}
	// Enforce the framing cap before writing: an oversized frame would be
	// acknowledged now but classified as torn or corrupt by replay — an
	// acknowledged record silently truncated away, or a log that refuses to
	// boot. Nothing is written either way, but the failure mode differs by
	// event type. A create is appended before the session layer holds any
	// state for it, so rejecting it is a per-request error (one hostile
	// oversized pool must not fail-stop the whole service). Every other type
	// is appended after the session applied the event in memory; there the
	// in-memory state is already ahead of the log, and the sticky fail-stop
	// of the session.Journal contract is the only safe answer.
	if len(payload) > maxRec {
		if ev.Type == session.EventCreate {
			return 0, fmt.Errorf("wal: create payload is %d bytes, over the %d-byte record cap", len(payload), maxRec)
		}
		j.fail(fmt.Errorf("event payload is %d bytes, over the %d-byte record cap", len(payload), maxRec))
		return 0, j.errNow()
	}
	ln.buf = appendRecord(ln.buf[:0], ln.idx, payload)
	if _, err := ln.f.Write(ln.buf); err != nil {
		j.fail(err)
		return 0, j.errNow()
	}
	if j.always && syncedEvent(ev.Type) {
		var syncStart time.Time
		if j.met != nil {
			syncStart = time.Now()
		}
		fsp := ev.Trace.Start("wal", "wal.fsync").AttrInt("lane", int64(ln.idx))
		err := ln.f.Sync()
		fsp.End()
		if err != nil {
			j.fail(err)
			return 0, j.errNow()
		}
		if j.met != nil {
			j.met.SyncSeconds.Observe(time.Since(syncStart).Seconds())
		}
		ln.syncs++
	}
	ln.lsn++
	ln.segSize += int64(len(ln.buf))
	ln.records++
	ln.bytes += uint64(len(ln.buf))
	if j.met != nil {
		j.met.AppendSeconds.Observe(time.Since(start).Seconds())
	}
	return ln.lsn, nil
}

// syncedEvent reports whether the "always" policy must fsync after this
// event. Only acknowledgements that promise durability need the barrier:
// label commits, creations and deletions. Losing an unsynced
// propose/release/restart suffix to a power cut is exactly the lease-drop
// contract (the pairs become proposable again), and an fsync at the next
// commit persists every earlier record of the lane's segment anyway —
// record order within the file means a commit can never be durable without
// its propose. Skipping the barrier on proposals halves the per-round fsync
// tax.
func syncedEvent(t session.EventType) bool {
	switch t {
	case session.EventCommit, session.EventCreate, session.EventDelete:
		return true
	}
	return false
}

// Err reports the sticky failure state; nil while the journal is healthy.
// It implements session.Journal.
func (j *Journal) Err() error { return j.errNow() }

// Sync flushes every lane's active segment to stable storage.
func (j *Journal) Sync() error {
	for _, ln := range j.lanes {
		ln.mu.Lock()
		err := j.syncLane(ln)
		ln.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// syncLane fsyncs one lane. Callers hold ln.mu.
func (j *Journal) syncLane(ln *lane) error {
	if err := j.errNow(); err != nil {
		return err
	}
	if ln.f == nil {
		return nil
	}
	var start time.Time
	if j.met != nil {
		start = time.Now()
	}
	if err := ln.f.Sync(); err != nil {
		j.fail(err)
		return j.errNow()
	}
	if j.met != nil {
		j.met.SyncSeconds.Observe(time.Since(start).Seconds())
	}
	ln.syncs++
	return nil
}

// syncLoop is the background flusher of the interval fsync policy. It runs
// under a pprof goroutine label so CPU profiles attribute the flush fsyncs
// to the WAL rather than to an anonymous goroutine (per-lane attribution
// for request-path fsyncs comes from the shard labels the HTTP layer sets;
// this loop syncs every lane in turn).
func (j *Journal) syncLoop() {
	pprof.Do(context.Background(), pprof.Labels("goroutine", "wal-sync"), func(context.Context) {
		t := time.NewTicker(j.interval)
		defer t.Stop()
		for {
			select {
			case <-j.stop:
				close(j.done)
				return
			case <-t.C:
				j.Sync()
			}
		}
	})
}

// CompactShard folds everything before one lane's active segment into an
// atomic per-lane snapshot and deletes the folded lane segments and
// superseded lane snapshots. It first rotates the lane to a fresh segment,
// then snapshots the shard: every event in the old segments is therefore
// covered by the snapshot, and the few events appended between rotation and
// snapshot are both in the snapshot and in the tail — replay skips them by
// their per-session LSN watermark. Between the two it waits on the shard's
// create barrier: a Create whose record went into a now-folded segment may
// not have registered its session yet, and snapshotting before it does
// would lose the session when the folded segment is deleted. Safe to run
// concurrently with serving traffic — and with compactions of other shards.
func (j *Journal) CompactShard(shard int) error {
	if shard < 0 || shard >= len(j.lanes) {
		return fmt.Errorf("wal: compact: no shard %d in a %d-lane journal", shard, len(j.lanes))
	}
	ln := j.lanes[shard]
	ln.compactMu.Lock()
	defer ln.compactMu.Unlock()
	ln.mu.Lock()
	if err := j.errNow(); err != nil {
		ln.mu.Unlock()
		return err
	}
	// A closed journal must not be quietly resurrected: rotateLane would
	// read ln.f == nil as "no active segment yet" and open a fresh one.
	if ln.f == nil {
		ln.mu.Unlock()
		return ErrClosed
	}
	// An idle lane has nothing to fold: the active segment is empty, no
	// older segments await removal, and the lane's newest snapshot already
	// sits at the active boundary (every shard mutation appends here, so an
	// untouched segment means an unchanged shard). Skipping keeps a periodic
	// compaction sweep from rotating segments and re-serialising identical
	// snapshots for every quiet shard on every tick.
	if ln.segSize == 0 && ln.oldest == ln.seg && ln.snapAt == ln.seg {
		ln.mu.Unlock()
		return nil
	}
	if err := j.rotateLane(ln); err != nil {
		ln.mu.Unlock()
		return err
	}
	boundary := ln.seg
	oldest := ln.oldest
	prevSnap := ln.snapAt
	ln.mu.Unlock()

	j.mgr.ShardCreateBarrier(shard)
	data, err := j.mgr.SnapshotShard(shard)
	if err != nil {
		return fmt.Errorf("wal: compact: %w", err)
	}
	env, err := json.Marshal(snapshotEnvelope{Version: 2, Lane: &shard, Sessions: data})
	if err != nil {
		return fmt.Errorf("wal: compact: %w", err)
	}
	if err := WriteFileAtomic(filepath.Join(j.dir, snapshotName(shard, boundary)), env, 0o644); err != nil {
		return fmt.Errorf("wal: compact: %w", err)
	}

	// The snapshot is durable; the folded lane segments and the superseded
	// lane snapshot can go. The lane tracks its own live range, so no
	// directory listing is needed. Removal failures are not fatal — replay
	// skips folded segments, and recovery sweeps stale snapshots — but
	// oldest only advances past segments that are actually gone, so the next
	// compaction's sweep retries stragglers instead of orphaning them until
	// a restart re-derives the range from the directory.
	removed := 0
	newOldest := boundary
	for idx := oldest; idx < boundary; idx++ {
		err := os.Remove(filepath.Join(j.dir, segmentName(shard, idx)))
		switch {
		case err == nil:
			removed++
		case errors.Is(err, os.ErrNotExist):
			// Already gone: swept by an earlier retry whose own failure held
			// oldest back. Nothing live, nothing to recount.
		default:
			if newOldest == boundary {
				newOldest = idx
			}
		}
	}
	if prevSnap > 0 && prevSnap < boundary {
		os.Remove(filepath.Join(j.dir, snapshotName(shard, prevSnap)))
	}
	ln.mu.Lock()
	ln.segCount -= removed
	ln.oldest = newOldest
	ln.snapAt = boundary
	ln.mu.Unlock()
	j.mu.Lock()
	j.compactions++
	j.mu.Unlock()
	return nil
}

// Compact runs CompactShard over every shard in turn.
func (j *Journal) Compact() error {
	for shard := range j.lanes {
		if err := j.CompactShard(shard); err != nil {
			return err
		}
	}
	return nil
}

// Close flushes and closes every lane. The manager should have stopped
// serving first.
func (j *Journal) Close() error {
	if j.stop != nil {
		select {
		case <-j.done:
		default:
			close(j.stop)
			<-j.done
		}
		j.stop = nil
	}
	var firstErr error
	for _, ln := range j.lanes {
		ln.mu.Lock()
		if ln.f != nil {
			err := j.syncLane(ln)
			if cerr := ln.f.Close(); cerr != nil && err == nil {
				err = cerr
			}
			ln.f = nil
			if err != nil && firstErr == nil {
				firstErr = err
			}
		}
		ln.mu.Unlock()
	}
	if firstErr != nil {
		return firstErr
	}
	return j.errNow()
}

// Stats returns a snapshot of the journal's counters, aggregated and per
// lane.
func (j *Journal) Stats() Stats {
	j.mu.Lock()
	st := Stats{
		LaneCount:       len(j.lanes),
		Compactions:     j.compactions,
		ReplayApplied:   j.replay.applied,
		ReplaySkipped:   j.replay.skipped,
		ReplayTornBytes: j.replay.tornBytes,
		ReplaySnapshot:  j.replay.snapshot,
		ReplaySegments:  j.replay.segments,
	}
	j.mu.Unlock()
	st.Lanes = make([]LaneStats, len(j.lanes))
	for i, ln := range j.lanes {
		ln.mu.Lock()
		st.Lanes[i] = LaneStats{
			Lane:            ln.idx,
			Segments:        ln.segCount,
			ActiveSegment:   ln.seg,
			RecordsAppended: ln.records,
			BytesAppended:   ln.bytes,
			Syncs:           ln.syncs,
			LastLSN:         ln.lsn,
		}
		ln.mu.Unlock()
		st.Segments += st.Lanes[i].Segments
		st.RecordsAppended += st.Lanes[i].RecordsAppended
		st.BytesAppended += st.Lanes[i].BytesAppended
		st.Syncs += st.Lanes[i].Syncs
		if st.Lanes[i].LastLSN > st.LastLSN {
			st.LastLSN = st.Lanes[i].LastLSN
		}
	}
	st.ActiveSegment = st.Lanes[0].ActiveSegment
	return st
}
