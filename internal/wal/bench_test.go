package wal

// BenchmarkCommitDurable measures the durability tax on the serving hot
// path: one benchmark op is one Propose(1) + one Commit through a session
// whose manager journals to a real on-disk WAL. The fsync=always variant is
// the full per-record durability cost (two appends + two fsyncs per op);
// fsync=off isolates the journaling overhead itself (record framing, JSON,
// one write(2) per event). Tracked in BENCH_core.json via `make bench-json`
// alongside the journal-less BenchmarkProposeCommit baseline.

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"

	"oasis"
	"oasis/internal/poolstore"
	"oasis/internal/session"
)

// BenchmarkSessionCreate measures what the content-addressed pool store
// buys on the create path over a 1M-pair pool: the inline variant journals
// the full columns into the WAL create record (the pre-poolstore behaviour
// — O(N) JSON per create), the poolref variant stores the pool once and
// journals only its hash (O(1)). One benchmark op is one durable session
// create; the custom walB/op metric is the WAL bytes the create record
// cost. Tracked in BENCH_core.json via `make bench-json` (PR5-poolstore).
func BenchmarkSessionCreate(b *testing.B) {
	const pairs = 1 << 20
	scores, preds, _ := walPool(pairs, 5)
	run := func(b *testing.B, mgr *session.Manager, j *Journal, cfg session.Config) {
		b.Helper()
		var walBytes uint64
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cfg.ID = fmt.Sprintf("create-%d", i)
			pre := j.Stats().BytesAppended
			if _, err := mgr.Create(cfg); err != nil {
				b.Fatal(err)
			}
			walBytes += j.Stats().BytesAppended - pre
			// Drop the session outside the timed region: a 1M-pair sampler is
			// tens of MB, and the bench measures create, not accumulation.
			b.StopTimer()
			if err := mgr.Delete(cfg.ID); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
		b.ReportMetric(float64(walBytes)/float64(b.N), "walB/op")
	}
	opts := oasis.Options{Strata: 30, Seed: 9}
	b.Run("inline", func(b *testing.B) {
		mgr := session.NewManager(session.ManagerOptions{Diag: quietDiag})
		j, err := Open(b.TempDir(), mgr, Options{Fsync: "off"})
		if err != nil {
			b.Fatal(err)
		}
		defer j.Close()
		run(b, mgr, j, session.Config{Scores: scores, Preds: preds, Calibrated: true, Options: opts})
	})
	b.Run("poolref", func(b *testing.B) {
		store, err := poolstore.Open(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		putInfo, _, err := store.Put(scores, preds)
		if err != nil {
			b.Fatal(err)
		}
		id := putInfo.ID
		mgr := session.NewManager(session.ManagerOptions{Pools: store, Diag: quietDiag})
		j, err := Open(b.TempDir(), mgr, Options{Fsync: "off"})
		if err != nil {
			b.Fatal(err)
		}
		defer j.Close()
		run(b, mgr, j, session.Config{PoolID: id, Calibrated: true, Options: opts})
	})
	// poolref-warm is the steady-state serving case the zero-copy PR targets:
	// the pool is already resident (or mapped) and its stratification cached
	// from an earlier session over the same pool, so a create costs only the
	// sampler initialisation and the O(1) WAL record — no column load, no
	// O(N log N) stratify, no O(N) validation re-scan.
	b.Run("poolref-warm", func(b *testing.B) {
		store, err := poolstore.Open(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		putInfo, _, err := store.Put(scores, preds)
		if err != nil {
			b.Fatal(err)
		}
		id := putInfo.ID
		mgr := session.NewManager(session.ManagerOptions{Pools: store, Diag: quietDiag})
		j, err := Open(b.TempDir(), mgr, Options{Fsync: "off"})
		if err != nil {
			b.Fatal(err)
		}
		defer j.Close()
		cfg := session.Config{PoolID: id, Calibrated: true, Options: opts}
		// Warm the caches: one throwaway create loads the columns and fills
		// the strata cache; deleting it releases the reference but leaves
		// both resident.
		cfg.ID = "warmup"
		if _, err := mgr.Create(cfg); err != nil {
			b.Fatal(err)
		}
		if err := mgr.Delete(cfg.ID); err != nil {
			b.Fatal(err)
		}
		run(b, mgr, j, cfg)
	})
}

// BenchmarkManagerParallel measures multi-session commit throughput through
// the sharded manager and its per-shard WAL lanes: one benchmark op is one
// durable Propose(1) + Commit (fsync=always) on one of 16 sessions spread
// evenly across the shards, driven by 8 concurrent workers. At shards=1
// every commit queues behind one lane lock and one fsync; at higher shard
// counts the lanes append and sync concurrently, so throughput scales with
// the shard count until the device or the cores saturate. Tracked in
// BENCH_core.json via `make bench-json`; the acceptance bar for the
// sharding refactor is ≥2× ops/s at shards=8 vs shards=1 on a multi-core
// runner (a single-core box only gets the I/O-overlap share of that — its
// ext4/virtio stack caps concurrent fsync near 2× — and measures ~1.6×).
func BenchmarkManagerParallel(b *testing.B) {
	// 50k pairs per session: commits are fsync-bound, so the pool size only
	// affects setup time, and 16 sessions × 50k labels outlasts any b.N.
	scores, preds, truth := walPool(50_000, 5)
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			mgr := session.NewManager(session.ManagerOptions{Shards: shards, Diag: quietDiag})
			j, err := Open(b.TempDir(), mgr, Options{Fsync: "always"})
			if err != nil {
				b.Fatal(err)
			}
			defer j.Close()
			const nSessions = 16
			sessions := make([]*session.Session, nSessions)
			for i := range sessions {
				// Pick IDs that land on shard i%shards, so every lane carries
				// an equal share whatever the shard count.
				var id string
				for n := 0; ; n++ {
					id = fmt.Sprintf("bench-%d-%d", i, n)
					if session.ShardOf(id, mgr.Shards()) == i%mgr.Shards() {
						break
					}
				}
				sessions[i], err = mgr.Create(session.Config{
					ID: id, Scores: scores, Preds: preds, Calibrated: true,
					Options: oasis.Options{Strata: 30, Seed: uint64(9 + i)},
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			// At least 8 workers regardless of GOMAXPROCS (RunParallel spawns
			// parallelism × GOMAXPROCS goroutines): commit latency is fsync
			// latency, so lanes overlap in the I/O queue even on few cores.
			b.SetParallelism(max(1, (8+runtime.GOMAXPROCS(0)-1)/runtime.GOMAXPROCS(0)))
			var next atomic.Int64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				s := sessions[int(next.Add(1)-1)%nSessions]
				for pb.Next() {
					props, err := s.Propose(1)
					if err != nil {
						b.Error(err)
						return
					}
					if err := s.Commit(props[0].Pair, truth[props[0].Pair]); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}

func BenchmarkCommitDurable(b *testing.B) {
	scores, preds, truth := walPool(200_000, 5)
	for _, policy := range []string{"always", "100ms", "off"} {
		b.Run("fsync="+policy, func(b *testing.B) {
			var (
				j *Journal
				s *session.Session
			)
			reset := func() {
				if j != nil {
					j.Close()
				}
				mgr := session.NewManager(session.ManagerOptions{Diag: quietDiag})
				var err error
				j, err = Open(b.TempDir(), mgr, Options{Fsync: policy})
				if err != nil {
					b.Fatal(err)
				}
				s, err = mgr.Create(session.Config{
					ID: "bench", Scores: scores, Preds: preds, Calibrated: true,
					Options: oasis.Options{Strata: 30, Seed: 9},
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			reset()
			defer func() { j.Close() }()
			committed := 0
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if committed > 150_000 {
					b.StopTimer()
					reset()
					committed = 0
					b.StartTimer()
				}
				props, err := s.Propose(1)
				if err != nil {
					b.Fatal(err)
				}
				if err := s.Commit(props[0].Pair, truth[props[0].Pair]); err != nil {
					b.Fatal(err)
				}
				committed++
			}
		})
	}
}

// quietDiag silences health-transition logging in benchmarks: the default
// logger writes into the benchmark output stream and corrupts the
// machine-parsed result lines.
var quietDiag = session.DiagOptions{Logf: func(string, ...any) {}}
