package wal

// BenchmarkCommitDurable measures the durability tax on the serving hot
// path: one benchmark op is one Propose(1) + one Commit through a session
// whose manager journals to a real on-disk WAL. The fsync=always variant is
// the full per-record durability cost (two appends + two fsyncs per op);
// fsync=off isolates the journaling overhead itself (record framing, JSON,
// one write(2) per event). Tracked in BENCH_core.json via `make bench-json`
// alongside the journal-less BenchmarkProposeCommit baseline.

import (
	"testing"

	"oasis"
	"oasis/internal/session"
)

func BenchmarkCommitDurable(b *testing.B) {
	scores, preds, truth := walPool(200_000, 5)
	for _, policy := range []string{"always", "100ms", "off"} {
		b.Run("fsync="+policy, func(b *testing.B) {
			var (
				j *Journal
				s *session.Session
			)
			reset := func() {
				if j != nil {
					j.Close()
				}
				mgr := session.NewManager(session.ManagerOptions{})
				var err error
				j, err = Open(b.TempDir(), mgr, Options{Fsync: policy})
				if err != nil {
					b.Fatal(err)
				}
				s, err = mgr.Create(session.Config{
					ID: "bench", Scores: scores, Preds: preds, Calibrated: true,
					Options: oasis.Options{Strata: 30, Seed: 9},
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			reset()
			defer func() { j.Close() }()
			committed := 0
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if committed > 150_000 {
					b.StopTimer()
					reset()
					committed = 0
					b.StartTimer()
				}
				props, err := s.Propose(1)
				if err != nil {
					b.Fatal(err)
				}
				if err := s.Commit(props[0].Pair, truth[props[0].Pair]); err != nil {
					b.Fatal(err)
				}
				committed++
			}
		})
	}
}
