package wal

import (
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"oasis"
	"oasis/internal/rng"
	"oasis/internal/session"
)

// walPool builds a synthetic calibrated pool with ER-like imbalance.
func walPool(n int, seed uint64) (scores []float64, preds, truth []bool) {
	r := rng.New(seed)
	scores = make([]float64, n)
	preds = make([]bool, n)
	truth = make([]bool, n)
	for i := 0; i < n; i++ {
		u := r.Float64()
		scores[i] = u * u
		preds[i] = scores[i] >= 0.5
		truth[i] = r.Bernoulli(scores[i])
	}
	return scores, preds, truth
}

func mustOpen(t *testing.T, dir string, mgr *session.Manager, opts Options) *Journal {
	t.Helper()
	j, err := Open(dir, mgr, opts)
	if err != nil {
		t.Fatal(err)
	}
	return j
}

// dirInv reads the directory inventory or fails the test.
func dirInv(t *testing.T, dir string) dirState {
	t.Helper()
	inv, err := readDirState(dir)
	if err != nil {
		t.Fatal(err)
	}
	return inv
}

// newestLaneSegment returns the path of a lane's newest segment file.
func newestLaneSegment(t *testing.T, dir string, lane int) string {
	t.Helper()
	segs := dirInv(t, dir).laneSegs[lane]
	if len(segs) == 0 {
		t.Fatalf("lane %d has no segments in %s", lane, dir)
	}
	return filepath.Join(dir, segmentName(lane, segs[len(segs)-1]))
}

// driveRound proposes a batch and commits every proposal with the truth
// labels, returning the proposed pairs.
func driveRound(t *testing.T, s *session.Session, n int, truth []bool) []int {
	t.Helper()
	props, err := s.Propose(n)
	if err != nil && !errors.Is(err, session.ErrBudgetExhausted) {
		t.Fatal(err)
	}
	pairs := make([]int, len(props))
	labels := make([]bool, len(props))
	for i, p := range props {
		pairs[i] = p.Pair
		labels[i] = truth[p.Pair]
	}
	results, err := s.CommitBatch(pairs, labels)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r != session.Committed {
			t.Fatalf("commit of freshly proposed pair %d: result %v", pairs[i], r)
		}
	}
	return pairs
}

// requireSameContinuation drives both sessions for `rounds` propose/commit
// rounds and demands identical proposal sequences and estimates — the
// recovered state is bit-for-bit the live one.
func requireSameContinuation(t *testing.T, a, b *session.Session, rounds, batch int, truth []bool) {
	t.Helper()
	for round := 0; round < rounds; round++ {
		pa := driveRound(t, a, batch, truth)
		pb := driveRound(t, b, batch, truth)
		if len(pa) != len(pb) {
			t.Fatalf("round %d: batch sizes diverge: %d vs %d", round, len(pa), len(pb))
		}
		for i := range pa {
			if pa[i] != pb[i] {
				t.Fatalf("round %d: proposal %d diverges: pair %d vs %d", round, i, pa[i], pb[i])
			}
		}
		ea, eb := a.Estimate(), b.Estimate()
		if ea != eb {
			t.Fatalf("round %d: estimates diverge: %v vs %v", round, ea, eb)
		}
	}
}

// TestRecoveryContinuesExactly is the golden recovery test: a manager
// journaled to a WAL, killed without any shutdown (the journal is simply
// abandoned), recovers from the log alone and continues the exact proposal
// sequence of the live manager — across an OASIS session, a passive
// session, lease expiries, uncommitted proposals at the crash point, and a
// delete/recreate of a session ID.
func TestRecoveryContinuesExactly(t *testing.T) {
	scores, preds, truth := walPool(4000, 7)
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }

	dir := t.TempDir()
	live := session.NewManager(session.ManagerOptions{Now: clock})
	mustOpen(t, dir, live, Options{Fsync: "off"})

	mkCfg := func(id string, method session.MethodKind, seed uint64) session.Config {
		return session.Config{
			ID: id, Method: method,
			Scores: scores, Preds: preds, Calibrated: true,
			Options:  oasis.Options{Strata: 15, Seed: seed},
			LeaseTTL: 30 * time.Second,
		}
	}
	so, err := live.Create(mkCfg("oasis", session.MethodOASIS, 11))
	if err != nil {
		t.Fatal(err)
	}
	sp, err := live.Create(mkCfg("passive", session.MethodPassive, 13))
	if err != nil {
		t.Fatal(err)
	}

	// A session that is created, driven, deleted, and recreated under the
	// same ID: the LSN watermarks must keep the incarnations apart.
	tmp, err := live.Create(mkCfg("ephemeral", session.MethodOASIS, 17))
	if err != nil {
		t.Fatal(err)
	}
	driveRound(t, tmp, 5, truth)
	if err := live.Delete("ephemeral"); err != nil {
		t.Fatal(err)
	}
	se, err := live.Create(mkCfg("ephemeral", session.MethodOASIS, 19))
	if err != nil {
		t.Fatal(err)
	}

	for round := 0; round < 12; round++ {
		driveRound(t, so, 8, truth)
		driveRound(t, sp, 8, truth)
		driveRound(t, se, 4, truth)
		if round == 5 {
			// Let a batch of leases expire: the releases must be journaled
			// and replayed, not re-derived from the clock.
			if _, err := so.Propose(6); err != nil {
				t.Fatal(err)
			}
			now = now.Add(31 * time.Second)
		}
	}
	// Leave proposals outstanding at the "crash": they must be dropped on
	// recovery, exactly as the restart barrier prescribes.
	if _, err := so.Propose(5); err != nil {
		t.Fatal(err)
	}
	if _, err := sp.Propose(3); err != nil {
		t.Fatal(err)
	}

	// Crash: no Close, no snapshot — recover a fresh manager from the log.
	recovered := session.NewManager(session.ManagerOptions{Now: clock})
	j2 := mustOpen(t, dir, recovered, Options{Fsync: "off"})
	defer j2.Close()
	if got := recovered.Len(); got != 3 {
		t.Fatalf("recovered %d sessions, want 3", got)
	}
	if st := j2.Stats(); st.ReplayApplied == 0 || st.ReplaySnapshot {
		t.Fatalf("unexpected replay stats: %+v", st)
	}

	// Mirror the boot barrier on the live side and detach its journal (two
	// journals must not interleave in one directory).
	if _, err := live.ReplayEvent(&session.Event{Type: session.EventRestart}); err != nil {
		t.Fatal(err)
	}
	live.SetJournal(nil)

	for _, id := range []string{"oasis", "passive", "ephemeral"} {
		a, err := live.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		b, err := recovered.Get(id)
		if err != nil {
			t.Fatalf("session %q not recovered: %v", id, err)
		}
		if la, lb := a.Status().LabelsCommitted, b.Status().LabelsCommitted; la != lb {
			t.Fatalf("%s: labels committed diverge: %d vs %d", id, la, lb)
		}
		if pb := b.Status().PendingProposals; pb != 0 {
			t.Fatalf("%s: recovered session has %d pending proposals, want 0", id, pb)
		}
		requireSameContinuation(t, a, b, 8, 8, truth)
	}
}

// TestCompactionFoldsSegments drives a journal across many tiny segments,
// compacts mid-flight — with proposals outstanding, so later commits
// reference draws folded into the snapshot — and checks recovery from
// snapshot+tail still continues exactly, with the cold segments gone.
func TestCompactionFoldsSegments(t *testing.T) {
	scores, preds, truth := walPool(3000, 23)
	dir := t.TempDir()
	live := session.NewManager(session.ManagerOptions{})
	j := mustOpen(t, dir, live, Options{Fsync: "off", SegmentBytes: 4 << 10})

	s, err := live.Create(session.Config{
		ID: "c", Scores: scores, Preds: preds, Calibrated: true,
		Options: oasis.Options{Strata: 12, Seed: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 10; round++ {
		driveRound(t, s, 16, truth)
	}

	// Propose BEFORE compacting and keep the proposals outstanding across
	// the boundary while other workers keep proposing: the snapshot must
	// carry the pending draws (with their frozen weights), or the tail's
	// propose events — whose live draws re-drew those in-flight pairs into
	// extra weighted terms — would replay against different availability and
	// diverge. Only then do the held labels arrive.
	props, err := s.Propose(10)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Compact(); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 4; round++ {
		driveRound(t, s, 64, truth)
	}
	pairs := make([]int, len(props))
	labels := make([]bool, len(props))
	for i, p := range props {
		pairs[i] = p.Pair
		labels[i] = truth[p.Pair]
	}
	if _, err := s.CommitBatch(pairs, labels); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 5; round++ {
		driveRound(t, s, 16, truth)
	}

	// The folded segments are deleted; a lane snapshot exists.
	inv := dirInv(t, dir)
	segs, snaps := inv.laneSegs[0], inv.laneSnaps[0]
	if len(snaps) != 1 {
		t.Fatalf("%d snapshots after compaction, want 1", len(snaps))
	}
	for _, idx := range segs {
		if idx < snaps[0] {
			t.Fatalf("folded segment %d survived compaction (boundary %d)", idx, snaps[0])
		}
	}
	if st := j.Stats(); st.Compactions != 1 {
		t.Fatalf("compactions = %d, want 1", st.Compactions)
	}

	recovered := session.NewManager(session.ManagerOptions{})
	j2 := mustOpen(t, dir, recovered, Options{Fsync: "off"})
	defer j2.Close()
	if st := j2.Stats(); !st.ReplaySnapshot {
		t.Fatalf("recovery did not load the compaction snapshot: %+v", st)
	}
	if _, err := live.ReplayEvent(&session.Event{Type: session.EventRestart}); err != nil {
		t.Fatal(err)
	}
	live.SetJournal(nil)
	r, err := recovered.Get("c")
	if err != nil {
		t.Fatal(err)
	}
	if la, lb := s.Status().LabelsCommitted, r.Status().LabelsCommitted; la != lb {
		t.Fatalf("labels committed diverge after compacted recovery: %d vs %d", la, lb)
	}
	requireSameContinuation(t, s, r, 6, 16, truth)
}

// TestAppendAfterCloseErrors pins the shutdown race: the manager is
// expected to stop serving before the journal closes, but an in-flight
// append that loses that race must get ErrClosed, not a nil dereference —
// and a clean close must not poison the sticky error.
func TestAppendAfterCloseErrors(t *testing.T) {
	dir := t.TempDir()
	mgr := session.NewManager(session.ManagerOptions{})
	j := mustOpen(t, dir, mgr, Options{Fsync: "off"})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := j.Append(&session.Event{Type: session.EventRestart}); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close: err = %v, want ErrClosed", err)
	}
	if err := j.CompactShard(0); !errors.Is(err, ErrClosed) {
		t.Fatalf("compact after close: err = %v, want ErrClosed", err)
	}
	if err := j.Err(); err != nil {
		t.Fatalf("clean close left a sticky error: %v", err)
	}
	// Neither call may have resurrected the lane: no fresh segment file, no
	// reopened handle.
	if inv := dirInv(t, dir); len(inv.laneSegs[0]) != 1 {
		t.Fatalf("closed journal grew segments: %v", inv.laneSegs[0])
	}
}

// TestCompactSkipsIdleLane pins the idle fast path of the periodic sweep: a
// lane with an empty active segment, no folded segments pending removal and
// a snapshot already at the boundary has nothing to fold, so a compaction
// tick must neither rotate it nor rewrite its snapshot.
func TestCompactSkipsIdleLane(t *testing.T) {
	scores, preds, truth := walPool(200, 13)
	dir := t.TempDir()
	mgr := session.NewManager(session.ManagerOptions{Shards: 1})
	j := mustOpen(t, dir, mgr, Options{Fsync: "off"})
	defer j.Close()
	s, err := mgr.Create(session.Config{
		ID: "idle", Scores: scores, Preds: preds, Calibrated: true,
		Options: oasis.Options{Strata: 4, Seed: 11},
	})
	if err != nil {
		t.Fatal(err)
	}
	driveRound(t, s, 5, truth)
	if err := j.Compact(); err != nil {
		t.Fatal(err)
	}
	before := j.Stats()
	if before.Compactions != 1 {
		t.Fatalf("compactions = %d after the first sweep, want 1", before.Compactions)
	}
	// No traffic since: the next ticks must be no-ops.
	for i := 0; i < 3; i++ {
		if err := j.Compact(); err != nil {
			t.Fatal(err)
		}
	}
	after := j.Stats()
	if after.Compactions != before.Compactions {
		t.Fatalf("idle ticks compacted: %d -> %d", before.Compactions, after.Compactions)
	}
	if after.Lanes[0].ActiveSegment != before.Lanes[0].ActiveSegment {
		t.Fatalf("idle ticks rotated the lane: segment %d -> %d", before.Lanes[0].ActiveSegment, after.Lanes[0].ActiveSegment)
	}
	// New traffic re-arms the sweep.
	driveRound(t, s, 5, truth)
	if err := j.Compact(); err != nil {
		t.Fatal(err)
	}
	if st := j.Stats(); st.Compactions != before.Compactions+1 {
		t.Fatalf("compactions = %d after fresh traffic, want %d", st.Compactions, before.Compactions+1)
	}
}

// TestCompactRetriesFailedRemoval pins the straggler contract of the
// compaction sweep: a folded segment whose os.Remove fails must stay inside
// the lane's live range (oldest not advanced past it) so the next
// compaction retries it, instead of orphaning it on disk until a restart
// re-derives the range from the directory.
func TestCompactRetriesFailedRemoval(t *testing.T) {
	scores, preds, truth := walPool(400, 77)
	dir := t.TempDir()
	mgr := session.NewManager(session.ManagerOptions{Shards: 1})
	j := mustOpen(t, dir, mgr, Options{Fsync: "off", SegmentBytes: 512})
	s, err := mgr.Create(session.Config{
		ID: "cr", Scores: scores, Preds: preds, Calibrated: true,
		Options: oasis.Options{Strata: 6, Seed: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 6; round++ {
		driveRound(t, s, 6, truth)
	}
	segs := dirInv(t, dir).laneSegs[0]
	if len(segs) < 3 {
		t.Fatalf("fixture produced %d segments, want >= 3", len(segs))
	}
	// Make one folded segment unremovable: os.Remove on a non-empty
	// directory fails on every platform, even as root.
	stuck := segs[1]
	stuckPath := filepath.Join(dir, segmentName(0, stuck))
	if err := os.Remove(stuckPath); err != nil {
		t.Fatal(err)
	}
	if err := os.Mkdir(stuckPath, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(stuckPath, "pin"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}

	if err := j.CompactShard(0); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stuckPath); err != nil {
		t.Fatalf("stuck segment vanished: %v", err)
	}
	ln := j.lanes[0]
	ln.mu.Lock()
	oldest := ln.oldest
	ln.mu.Unlock()
	if oldest != stuck {
		t.Fatalf("oldest = %d, want %d: advanced past the unremoved segment", oldest, stuck)
	}

	// The blocker clears — as a transient EBUSY/EACCES would — leaving the
	// orphaned segment file behind; the next compaction must sweep it.
	if err := os.RemoveAll(stuckPath); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(stuckPath, []byte("orphan"), 0o644); err != nil {
		t.Fatal(err)
	}
	driveRound(t, s, 6, truth)
	if err := j.CompactShard(0); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stuckPath); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("retry sweep left the straggler behind: %v", err)
	}
	// With the straggler retried the live range is exactly the active
	// segment again, and the count did not drift.
	if st := j.Stats(); st.Lanes[0].Segments != 1 {
		t.Fatalf("segment count = %d after retry sweep, want 1", st.Lanes[0].Segments)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestTornTailDropped simulates a crash mid-write: garbage appended to the
// newest segment must be detected by the CRC framing, dropped, truncated
// away, and recovery must succeed with the clean prefix.
func TestTornTailDropped(t *testing.T) {
	scores, preds, truth := walPool(500, 3)
	dir := t.TempDir()
	live := session.NewManager(session.ManagerOptions{})
	mustOpen(t, dir, live, Options{Fsync: "off"})
	s, err := live.Create(session.Config{
		ID: "torn", Scores: scores, Preds: preds, Calibrated: true,
		Options: oasis.Options{Strata: 6, Seed: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	committed := len(driveRound(t, s, 12, truth))

	newest := newestLaneSegment(t, dir, 0)
	fi, err := os.Stat(newest)
	if err != nil {
		t.Fatal(err)
	}
	cleanSize := fi.Size()
	f, err := os.OpenFile(newest, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xde, 0xad, 0xbe}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	recovered := session.NewManager(session.ManagerOptions{})
	j2 := mustOpen(t, dir, recovered, Options{Fsync: "off"})
	defer j2.Close()
	if st := j2.Stats(); st.ReplayTornBytes != 3 {
		t.Fatalf("torn bytes dropped = %d, want 3", st.ReplayTornBytes)
	}
	// The torn suffix is truncated away on disk, not just skipped: a later
	// recovery must not find it again in a by-then non-final segment.
	if fi, err := os.Stat(newest); err != nil {
		t.Fatal(err)
	} else if fi.Size() != cleanSize {
		t.Fatalf("segment is %d bytes after recovery, want the clean %d", fi.Size(), cleanSize)
	}
	r, err := recovered.Get("torn")
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Status().LabelsCommitted; got != committed {
		t.Fatalf("recovered %d labels, want %d", got, committed)
	}
}

// TestZeroedTailDropped simulates a crash that leaves a zero-filled tail
// (delayed allocation): the zeros must read as a torn suffix — an 8-zero-byte
// run is NOT a valid empty record — and recovery must keep the clean prefix.
func TestZeroedTailDropped(t *testing.T) {
	scores, preds, truth := walPool(400, 13)
	dir := t.TempDir()
	live := session.NewManager(session.ManagerOptions{})
	mustOpen(t, dir, live, Options{Fsync: "off"})
	s, err := live.Create(session.Config{
		ID: "z", Scores: scores, Preds: preds, Calibrated: true,
		Options: oasis.Options{Strata: 5, Seed: 6},
	})
	if err != nil {
		t.Fatal(err)
	}
	committed := len(driveRound(t, s, 9, truth))
	newest := newestLaneSegment(t, dir, 0)
	f, err := os.OpenFile(newest, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	f.Close()

	recovered := session.NewManager(session.ManagerOptions{})
	j2 := mustOpen(t, dir, recovered, Options{Fsync: "off"})
	defer j2.Close()
	if st := j2.Stats(); st.ReplayTornBytes != 64 {
		t.Fatalf("torn bytes dropped = %d, want 64", st.ReplayTornBytes)
	}
	r, err := recovered.Get("z")
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Status().LabelsCommitted; got != committed {
		t.Fatalf("recovered %d labels, want %d", got, committed)
	}
}

// TestCorruptMidNewestSegmentFatal flips a byte in the middle of the NEWEST
// segment, with fsync-acknowledged records after it: a crash-torn write is
// always a suffix, so valid frames after the damage prove real corruption
// and Open must refuse rather than silently truncate acknowledged commits.
func TestCorruptMidNewestSegmentFatal(t *testing.T) {
	scores, preds, truth := walPool(800, 15)
	dir := t.TempDir()
	live := session.NewManager(session.ManagerOptions{})
	mustOpen(t, dir, live, Options{Fsync: "off"})
	s, err := live.Create(session.Config{
		ID: "m", Scores: scores, Preds: preds, Calibrated: true,
		Options: oasis.Options{Strata: 6, Seed: 7},
	})
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 6; round++ {
		driveRound(t, s, 8, truth)
	}
	newest := newestLaneSegment(t, dir, 0)
	data, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/3] ^= 0xff // damage with plenty of valid records after it
	if err := os.WriteFile(newest, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, session.NewManager(session.ManagerOptions{}), Options{Fsync: "off"}); err == nil {
		t.Fatal("Open accepted mid-segment corruption in the newest segment")
	} else if !strings.Contains(err.Error(), "corrupt mid-log") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// TestCorruptMidLogFatal flips a byte in a non-final segment: that is real
// data loss, not a torn tail, and Open must refuse.
func TestCorruptMidLogFatal(t *testing.T) {
	scores, preds, truth := walPool(800, 9)
	dir := t.TempDir()
	live := session.NewManager(session.ManagerOptions{})
	mustOpen(t, dir, live, Options{Fsync: "off", SegmentBytes: 2 << 10})
	s, err := live.Create(session.Config{
		ID: "x", Scores: scores, Preds: preds, Calibrated: true,
		Options: oasis.Options{Strata: 6, Seed: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 10; round++ {
		driveRound(t, s, 8, truth)
	}
	segs := dirInv(t, dir).laneSegs[0]
	if len(segs) < 2 {
		t.Fatalf("need ≥2 segments to corrupt a non-final one, got %d", len(segs))
	}
	victim := filepath.Join(dir, segmentName(0, segs[0]))
	data, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(victim, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, session.NewManager(session.ManagerOptions{}), Options{Fsync: "off"}); err == nil {
		t.Fatal("Open accepted a corrupt non-final segment")
	} else if !strings.Contains(err.Error(), "corrupt") && !strings.Contains(err.Error(), "replay") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// TestJournalFailureSticky forces an append failure and checks fail-stop:
// the failed write op errors, every later write op errors fast, Err reports
// the cause, and no state is silently acknowledged past the failure.
func TestJournalFailureSticky(t *testing.T) {
	scores, preds, truth := walPool(600, 5)
	dir := t.TempDir()
	mgr := session.NewManager(session.ManagerOptions{})
	j := mustOpen(t, dir, mgr, Options{Fsync: "always"})
	s, err := mgr.Create(session.Config{
		ID: "sick", Scores: scores, Preds: preds, Calibrated: true,
		Options: oasis.Options{Strata: 5, Seed: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	driveRound(t, s, 4, truth)

	// Sabotage the session's lane file descriptor: the next append fails.
	ln := j.lanes[j.mgr.ShardFor("sick")]
	ln.mu.Lock()
	ln.f.Close()
	ln.mu.Unlock()

	if _, err := s.Propose(4); err == nil {
		t.Fatal("Propose succeeded with a dead journal")
	}
	if j.Err() == nil {
		t.Fatal("journal failure was not sticky")
	}
	if _, err := s.Propose(4); err == nil {
		t.Fatal("Propose kept succeeding after sticky failure")
	}
	if _, err := s.CommitBatch([]int{0}, []bool{true}); err == nil {
		t.Fatal("CommitBatch succeeded with a dead journal")
	}
	if _, err := mgr.Create(session.Config{
		ID: "later", Scores: scores, Preds: preds, Calibrated: true,
		Options: oasis.Options{Strata: 5, Seed: 9},
	}); err == nil {
		t.Fatal("Create succeeded with a dead journal")
	}
}

// TestFsyncPolicies covers policy parsing and the sync counters.
func TestFsyncPolicies(t *testing.T) {
	if _, err := Open(t.TempDir(), session.NewManager(session.ManagerOptions{}), Options{Fsync: "sometimes"}); err == nil {
		t.Fatal("Open accepted a bogus fsync policy")
	}
	if _, err := Open(t.TempDir(), session.NewManager(session.ManagerOptions{}), Options{Fsync: "-5ms"}); err == nil {
		t.Fatal("Open accepted a negative fsync interval")
	}

	scores, preds, truth := walPool(300, 1)
	for _, policy := range []string{"always", "off", "20ms"} {
		t.Run(policy, func(t *testing.T) {
			mgr := session.NewManager(session.ManagerOptions{})
			j := mustOpen(t, t.TempDir(), mgr, Options{Fsync: policy})
			defer j.Close()
			s, err := mgr.Create(session.Config{
				ID: "p", Scores: scores, Preds: preds, Calibrated: true,
				Options: oasis.Options{Strata: 4, Seed: 1},
			})
			if err != nil {
				t.Fatal(err)
			}
			driveRound(t, s, 8, truth)
			st := j.Stats()
			if policy == "always" && st.Syncs == 0 {
				t.Fatal("fsync=always recorded no syncs")
			}
			if st.RecordsAppended == 0 || st.LastLSN == 0 {
				t.Fatalf("no records appended: %+v", st)
			}
		})
	}
}

// TestCompactionKeepsConcurrentCreates races Create against Compact and
// verifies every acknowledged session survives recovery. A create whose
// record lands in a segment the compaction folds must be caught by the
// manager's create barrier and included in the snapshot — without it the
// folded segment (and the create with it) is deleted before the session is
// registered, and the session plus all its later labels silently vanish on
// the next boot.
func TestCompactionKeepsConcurrentCreates(t *testing.T) {
	scores, preds, _ := walPool(80, 31)
	dir := t.TempDir()
	live := session.NewManager(session.ManagerOptions{})
	j := mustOpen(t, dir, live, Options{Fsync: "off", SegmentBytes: 1 << 10})

	const workers, perWorker = 4, 12
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if _, err := live.Create(session.Config{
					ID:     fmt.Sprintf("race-%d-%d", w, i),
					Scores: scores, Preds: preds, Calibrated: true,
					Options: oasis.Options{Strata: 4, Seed: uint64(w*100 + i + 1)},
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	compactDone := make(chan error, 1)
	go func() {
		for i := 0; i < 20; i++ {
			if err := j.Compact(); err != nil {
				compactDone <- err
				return
			}
		}
		compactDone <- nil
	}()
	wg.Wait()
	if err := <-compactDone; err != nil {
		t.Fatal(err)
	}

	recovered := session.NewManager(session.ManagerOptions{})
	j2 := mustOpen(t, dir, recovered, Options{Fsync: "off"})
	defer j2.Close()
	if got, want := recovered.Len(), workers*perWorker; got != want {
		t.Fatalf("recovered %d sessions, want %d: a create raced compaction away", got, want)
	}
}

// TestOversizedAppendRejected lowers the record cap and checks an event
// whose payload exceeds it is rejected before it is written, so nothing is
// ever acknowledged that replay cannot read. An oversized create is a
// per-request error — the session layer holds no state for it yet, and one
// hostile pool must not fail-stop the service. An oversized session event
// (here a propose) is sticky per the session.Journal contract: the session
// already applied it in memory, so continuing would drift from the log.
func TestOversizedAppendRejected(t *testing.T) {
	scores, preds, truth := walPool(400, 21)
	dir := t.TempDir()
	mgr := session.NewManager(session.ManagerOptions{})
	j := mustOpen(t, dir, mgr, Options{Fsync: "off"})
	s, err := mgr.Create(session.Config{
		ID: "big", Scores: scores, Preds: preds, Calibrated: true,
		Options: oasis.Options{Strata: 5, Seed: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	committed := len(driveRound(t, s, 6, truth))

	setCap := func(n int) { j.maxRec.Store(int64(n)) }
	setCap(64) // below any event payload in this test
	if _, err := mgr.Create(session.Config{
		ID: "huge", Scores: scores, Preds: preds, Calibrated: true,
		Options: oasis.Options{Strata: 5, Seed: 9},
	}); err == nil || !strings.Contains(err.Error(), "record cap") {
		t.Fatalf("oversized create not rejected: %v", err)
	}
	if err := j.Err(); err != nil {
		t.Fatalf("oversized create poisoned the journal: %v", err)
	}
	setCap(maxRecordSize)
	committed += len(driveRound(t, s, 4, truth)) // service still healthy

	setCap(64)
	if _, err := s.Propose(4); err == nil || !strings.Contains(err.Error(), "record cap") {
		t.Fatalf("oversized append not rejected: %v", err)
	}
	if j.Err() == nil {
		t.Fatal("oversized session append was not a sticky failure")
	}

	recovered := session.NewManager(session.ManagerOptions{})
	j2 := mustOpen(t, dir, recovered, Options{Fsync: "off"})
	defer j2.Close()
	r, err := recovered.Get("big")
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Status().LabelsCommitted; got != committed {
		t.Fatalf("recovered %d labels, want %d", got, committed)
	}
}

// stallCreateJournal delegates to a real WAL journal but freezes create
// appends after the record is durably on disk and before Create can
// register the session — the exact window the compaction create barrier
// exists for.
type stallCreateJournal struct {
	inner   *Journal
	entered chan struct{} // receives once the create record is appended
	release chan struct{} // closed to unfreeze the create
}

func (w *stallCreateJournal) Append(ev *session.Event) (uint64, error) {
	lsn, err := w.inner.Append(ev)
	if ev.Type == session.EventCreate {
		w.entered <- struct{}{}
		<-w.release
	}
	return lsn, err
}

func (w *stallCreateJournal) Err() error { return w.inner.Err() }

// TestCompactionWaitsForInflightCreate reproduces the create/compaction race
// deterministically: a create whose record is already on disk but whose
// session is not yet registered is frozen mid-flight while Compact runs.
// Compact must wait on the manager's create barrier before snapshotting —
// otherwise it folds and deletes the segment holding the only copy of the
// create record, the snapshot misses the unregistered session, and the
// acknowledged session (plus every later label) silently vanishes on the
// next boot.
func TestCompactionWaitsForInflightCreate(t *testing.T) {
	scores, preds, truth := walPool(200, 41)
	dir := t.TempDir()
	live := session.NewManager(session.ManagerOptions{})
	j := mustOpen(t, dir, live, Options{Fsync: "off"})

	warm, err := live.Create(session.Config{
		ID: "warm", Scores: scores, Preds: preds, Calibrated: true,
		Options: oasis.Options{Strata: 5, Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	driveRound(t, warm, 6, truth)

	stall := &stallCreateJournal{inner: j, entered: make(chan struct{}), release: make(chan struct{})}
	live.SetJournal(stall)
	created := make(chan error, 1)
	go func() {
		_, err := live.Create(session.Config{
			ID: "inflight", Scores: scores, Preds: preds, Calibrated: true,
			Options: oasis.Options{Strata: 5, Seed: 2},
		})
		created <- err
	}()
	<-stall.entered // create record on disk; session not yet registered

	compacted := make(chan error, 1)
	go func() { compacted <- j.Compact() }()
	select {
	case err := <-compacted:
		t.Fatalf("Compact finished (err=%v) while a journaled create was still unregistered", err)
	case <-time.After(50 * time.Millisecond):
	}

	close(stall.release)
	if err := <-created; err != nil {
		t.Fatal(err)
	}
	if err := <-compacted; err != nil {
		t.Fatal(err)
	}
	live.SetJournal(nil) // detach: the recovery below opens its own journal

	recovered := session.NewManager(session.ManagerOptions{})
	j2 := mustOpen(t, dir, recovered, Options{Fsync: "off"})
	defer j2.Close()
	if _, err := recovered.Get("inflight"); err != nil {
		t.Fatalf("the in-flight create was lost to compaction: %v", err)
	}
	if _, err := recovered.Get("warm"); err != nil {
		t.Fatal(err)
	}
}

// TestUnmarshalableCreateNotSticky covers the other pre-write create
// rejection: a config json.Marshal cannot encode (a NaN threshold survives
// pool validation) is a per-request error — nothing was written, the session
// layer holds no state — and must not fail-stop the journal.
func TestUnmarshalableCreateNotSticky(t *testing.T) {
	scores, preds, truth := walPool(300, 27)
	mgr := session.NewManager(session.ManagerOptions{})
	j := mustOpen(t, t.TempDir(), mgr, Options{Fsync: "off"})
	defer j.Close()
	if _, err := mgr.Create(session.Config{
		ID: "nan", Scores: scores, Preds: preds, Calibrated: true,
		Threshold: math.NaN(),
		Options:   oasis.Options{Strata: 5, Seed: 2},
	}); err == nil || !strings.Contains(err.Error(), "marshal create") {
		t.Fatalf("unmarshalable create not rejected at the journal: %v", err)
	}
	if err := j.Err(); err != nil {
		t.Fatalf("unmarshalable create poisoned the journal: %v", err)
	}
	s, err := mgr.Create(session.Config{
		ID: "ok", Scores: scores, Preds: preds, Calibrated: true,
		Options: oasis.Options{Strata: 5, Seed: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	driveRound(t, s, 6, truth)
}
