package classifier

import (
	"math"
	"sort"

	"oasis/internal/rng"
)

// stump is a single-feature decision stump: predicts +1 when
// polarity*(x[feature] - threshold) > 0, else −1.
type stump struct {
	feature   int
	threshold float64
	polarity  float64
	alpha     float64
}

func (s *stump) predict(x []float64) float64 {
	if s.polarity*(x[s.feature]-s.threshold) > 0 {
		return 1
	}
	return -1
}

// AdaBoost is a boosted ensemble of decision stumps, the from-scratch
// counterpart of the AdaBoost classifier the paper evaluates in §6.3.4.
// Score is the signed ensemble margin Σ α_m h_m(x) — an uncalibrated score.
type AdaBoost struct {
	stumps []stump
}

// AdaBoostConfig configures boosting.
type AdaBoostConfig struct {
	// Rounds is the number of boosting rounds / stumps (default 50).
	Rounds int
	// Candidates caps the number of candidate thresholds per feature per
	// round for efficiency (default 64). Thresholds are midpoints of sorted
	// unique feature values, subsampled evenly when there are more.
	Candidates int
}

func (c *AdaBoostConfig) defaults() {
	if c.Rounds <= 0 {
		c.Rounds = 50
	}
	if c.Candidates <= 0 {
		c.Candidates = 64
	}
}

// TrainAdaBoost fits the ensemble on (X, y) with the standard discrete
// AdaBoost reweighting scheme.
func TrainAdaBoost(X [][]float64, y []bool, cfg AdaBoostConfig, r *rng.RNG) (*AdaBoost, error) {
	d, err := validate(X, y)
	if err != nil {
		return nil, err
	}
	cfg.defaults()
	n := len(X)
	// Signed labels.
	ys := make([]float64, n)
	for i, v := range y {
		if v {
			ys[i] = 1
		} else {
			ys[i] = -1
		}
	}
	// Candidate thresholds per feature.
	thresholds := make([][]float64, d)
	for j := 0; j < d; j++ {
		vals := make([]float64, n)
		for i := range X {
			vals[i] = X[i][j]
		}
		sort.Float64s(vals)
		uniq := vals[:0]
		for i, v := range vals {
			if i == 0 || v != uniq[len(uniq)-1] {
				uniq = append(uniq, v)
			}
		}
		var cands []float64
		if len(uniq) < 2 {
			cands = []float64{uniq[0]}
		} else {
			mids := make([]float64, len(uniq)-1)
			for i := 0; i+1 < len(uniq); i++ {
				mids[i] = (uniq[i] + uniq[i+1]) / 2
			}
			if len(mids) <= cfg.Candidates {
				cands = mids
			} else {
				cands = make([]float64, cfg.Candidates)
				for i := 0; i < cfg.Candidates; i++ {
					cands[i] = mids[i*len(mids)/cfg.Candidates]
				}
			}
		}
		// A threshold below the minimum makes constant stumps available
		// (predict-all-positive / predict-all-negative via polarity), which
		// matters for heavily skewed or single-class data.
		cands = append(cands, uniq[0]-1)
		thresholds[j] = cands
	}
	w := make([]float64, n)
	for i := range w {
		w[i] = 1 / float64(n)
	}
	model := &AdaBoost{}
	preds := make([]float64, n)
	for round := 0; round < cfg.Rounds; round++ {
		best := stump{}
		bestErr := math.Inf(1)
		for j := 0; j < d; j++ {
			for _, thr := range thresholds[j] {
				for _, pol := range []float64{1, -1} {
					s := stump{feature: j, threshold: thr, polarity: pol}
					we := 0.0
					for i := range X {
						if s.predict(X[i]) != ys[i] {
							we += w[i]
						}
					}
					if we < bestErr {
						bestErr = we
						best = s
					}
				}
			}
		}
		if bestErr >= 0.5 {
			break // no weak learner better than chance remains
		}
		eps := math.Max(bestErr, 1e-12)
		best.alpha = 0.5 * math.Log((1-eps)/eps)
		model.stumps = append(model.stumps, best)
		// Reweight.
		sum := 0.0
		for i := range X {
			preds[i] = best.predict(X[i])
			w[i] *= math.Exp(-best.alpha * ys[i] * preds[i])
			sum += w[i]
		}
		for i := range w {
			w[i] /= sum
		}
		if bestErr < 1e-12 {
			break // perfect stump; further rounds are redundant
		}
	}
	if len(model.stumps) == 0 {
		// Degenerate data (e.g. one class): fall back to a constant stump
		// voting for the majority class.
		pos := 0
		for _, v := range y {
			if v {
				pos++
			}
		}
		pol := -1.0
		if pos*2 >= n {
			pol = 1.0
		}
		model.stumps = append(model.stumps, stump{feature: 0, threshold: math.Inf(-1), polarity: pol, alpha: 1})
	}
	return model, nil
}

// Rounds returns the number of fitted stumps.
func (m *AdaBoost) Rounds() int { return len(m.stumps) }

// Score returns the ensemble margin Σ α_m h_m(x).
func (m *AdaBoost) Score(x []float64) float64 {
	s := 0.0
	for i := range m.stumps {
		s += m.stumps[i].alpha * m.stumps[i].predict(x)
	}
	return s
}

// Predict returns true when the ensemble margin is positive.
func (m *AdaBoost) Predict(x []float64) bool { return m.Score(x) > 0 }

// Probabilistic reports false: boosting margins are uncalibrated.
func (m *AdaBoost) Probabilistic() bool { return false }
