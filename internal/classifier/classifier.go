// Package classifier implements the record-pair classifiers that produce the
// similarity scores OASIS consumes. It plays the role scikit-learn and LIBSVM
// play in the paper's experiments (§6.1.2, §6.3.4): a linear SVM (the default
// pipeline classifier), logistic regression, a one-hidden-layer neural
// network, AdaBoost over decision stumps, an RBF-kernel SVM approximated with
// random Fourier features, and Platt calibration in place of LIBSVM's
// cross-validation calibration.
//
// All models implement the Model interface: Score returns a real-valued
// similarity score (a margin for SVM-like models, a probability for
// probabilistic models) and Predict thresholds it.
package classifier

import (
	"errors"
	"math"

	"oasis/internal/rng"
)

// Model scores feature vectors. Higher scores indicate higher confidence
// that a record pair is a match.
type Model interface {
	// Score returns the real-valued similarity score of x.
	Score(x []float64) float64
	// Predict returns the predicted binary label of x.
	Predict(x []float64) bool
	// Probabilistic reports whether Score is already a probability in [0,1].
	Probabilistic() bool
}

// ErrNoData is returned by trainers invoked with an empty training set.
var ErrNoData = errors.New("classifier: empty training set")

// ErrDimMismatch is returned when feature vectors disagree in length.
var ErrDimMismatch = errors.New("classifier: inconsistent feature dimensions")

// validate checks a design matrix / label slice pair and returns the feature
// dimension.
func validate(X [][]float64, y []bool) (int, error) {
	if len(X) == 0 || len(X) != len(y) {
		return 0, ErrNoData
	}
	d := len(X[0])
	if d == 0 {
		return 0, ErrNoData
	}
	for _, row := range X {
		if len(row) != d {
			return 0, ErrDimMismatch
		}
	}
	return d, nil
}

// Standardizer rescales features to zero mean and unit variance, as the
// paper's scikit-learn pipelines do implicitly through preprocessing.
type Standardizer struct {
	Mean []float64
	Std  []float64
}

// FitStandardizer computes per-feature means and standard deviations.
// Constant features receive Std 1 so that transformation is a no-op for them.
func FitStandardizer(X [][]float64) (*Standardizer, error) {
	d, err := validate(X, make([]bool, len(X)))
	if err != nil {
		return nil, err
	}
	s := &Standardizer{Mean: make([]float64, d), Std: make([]float64, d)}
	n := float64(len(X))
	for _, row := range X {
		for j, v := range row {
			s.Mean[j] += v
		}
	}
	for j := range s.Mean {
		s.Mean[j] /= n
	}
	for _, row := range X {
		for j, v := range row {
			dv := v - s.Mean[j]
			s.Std[j] += dv * dv
		}
	}
	for j := range s.Std {
		s.Std[j] = math.Sqrt(s.Std[j] / n)
		if s.Std[j] == 0 {
			s.Std[j] = 1
		}
	}
	return s, nil
}

// Apply returns the standardised copy of x.
func (s *Standardizer) Apply(x []float64) []float64 {
	out := make([]float64, len(x))
	for j, v := range x {
		out[j] = (v - s.Mean[j]) / s.Std[j]
	}
	return out
}

// ApplyAll standardises every row of X into a new matrix.
func (s *Standardizer) ApplyAll(X [][]float64) [][]float64 {
	out := make([][]float64, len(X))
	for i, row := range X {
		out[i] = s.Apply(row)
	}
	return out
}

// TrainTestSplit partitions indices [0, n) into a training set of size
// round(n*trainFrac) and the complementary test set, shuffled by r.
func TrainTestSplit(n int, trainFrac float64, r *rng.RNG) (train, test []int) {
	perm := r.Perm(n)
	k := int(math.Round(float64(n) * trainFrac))
	if k < 0 {
		k = 0
	}
	if k > n {
		k = n
	}
	return perm[:k], perm[k:]
}

// Accuracy returns the fraction of points where model.Predict matches y.
func Accuracy(m Model, X [][]float64, y []bool) float64 {
	if len(X) == 0 {
		return math.NaN()
	}
	correct := 0
	for i, x := range X {
		if m.Predict(x) == y[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(X))
}

// ConfusionCounts tallies true/false positives/negatives of m on (X, y).
func ConfusionCounts(m Model, X [][]float64, y []bool) (tp, fp, fn, tn int) {
	for i, x := range X {
		pred := m.Predict(x)
		switch {
		case pred && y[i]:
			tp++
		case pred && !y[i]:
			fp++
		case !pred && y[i]:
			fn++
		default:
			tn++
		}
	}
	return tp, fp, fn, tn
}

func dot(w, x []float64) float64 {
	s := 0.0
	for i, v := range w {
		s += v * x[i]
	}
	return s
}
