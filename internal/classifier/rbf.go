package classifier

import (
	"math"

	"oasis/internal/rng"
)

// RBFSVM approximates a Gaussian-kernel SVM (the paper's R-SVM in §6.3.4)
// by mapping inputs through D random Fourier features (Rahimi & Recht) and
// training a linear SVM in the lifted space. Score is the margin in the
// lifted space — an uncalibrated score, like LIBSVM decision values.
type RBFSVM struct {
	// omega is D×d frequency matrix, phase is D offsets.
	omega [][]float64
	phase []float64
	norm  float64
	lin   *LinearSVM
}

// RBFSVMConfig configures the approximation and the underlying linear SVM.
type RBFSVMConfig struct {
	// Gamma is the RBF kernel bandwidth exp(−γ‖x−x'‖²) (default 1).
	Gamma float64
	// Features is the number of random Fourier features D (default 128).
	Features int
	// Linear configures the SVM trained on the lifted features.
	Linear LinearSVMConfig
}

func (c *RBFSVMConfig) defaults() {
	if c.Gamma <= 0 {
		c.Gamma = 1
	}
	if c.Features <= 0 {
		c.Features = 128
	}
}

// TrainRBFSVM fits the model on (X, y).
func TrainRBFSVM(X [][]float64, y []bool, cfg RBFSVMConfig, r *rng.RNG) (*RBFSVM, error) {
	d, err := validate(X, y)
	if err != nil {
		return nil, err
	}
	cfg.defaults()
	m := &RBFSVM{
		omega: make([][]float64, cfg.Features),
		phase: make([]float64, cfg.Features),
		norm:  math.Sqrt(2 / float64(cfg.Features)),
	}
	// ω ~ N(0, 2γ I): cos(ω·x + b) features approximate exp(−γ‖x−x'‖²).
	sigma := math.Sqrt(2 * cfg.Gamma)
	for k := 0; k < cfg.Features; k++ {
		m.omega[k] = make([]float64, d)
		for j := 0; j < d; j++ {
			m.omega[k][j] = r.NormalScaled(0, sigma)
		}
		m.phase[k] = 2 * math.Pi * r.Float64()
	}
	lifted := make([][]float64, len(X))
	for i, x := range X {
		lifted[i] = m.lift(x)
	}
	lin, err := TrainLinearSVM(lifted, y, cfg.Linear, r)
	if err != nil {
		return nil, err
	}
	m.lin = lin
	return m, nil
}

func (m *RBFSVM) lift(x []float64) []float64 {
	out := make([]float64, len(m.omega))
	for k := range m.omega {
		out[k] = m.norm * math.Cos(dot(m.omega[k], x)+m.phase[k])
	}
	return out
}

// Score returns the margin in random-Fourier-feature space.
func (m *RBFSVM) Score(x []float64) float64 { return m.lin.Score(m.lift(x)) }

// Predict returns true when the margin is positive.
func (m *RBFSVM) Predict(x []float64) bool { return m.Score(x) > 0 }

// Probabilistic reports false.
func (m *RBFSVM) Probabilistic() bool { return false }
