package classifier

import (
	"math"

	"oasis/internal/rng"
	"oasis/internal/stats"
)

// LinearSVM is a linear support vector machine trained with the Pegasos
// stochastic sub-gradient algorithm. Its Score is the signed distance-like
// margin w·x + b, which — exactly as in the paper's L-SVM experiments — is an
// *uncalibrated* similarity score (Definition 3).
type LinearSVM struct {
	W []float64
	B float64
}

// LinearSVMConfig configures Pegasos training.
type LinearSVMConfig struct {
	// Lambda is the L2 regularisation strength (default 1e-4).
	Lambda float64
	// Epochs is the number of passes over the training data (default 20).
	Epochs int
	// ClassWeight scales the loss of positive examples; values > 1 push the
	// model toward recall under class imbalance (default 1).
	ClassWeight float64
}

func (c *LinearSVMConfig) defaults() {
	if c.Lambda <= 0 {
		c.Lambda = 1e-4
	}
	if c.Epochs <= 0 {
		c.Epochs = 20
	}
	if c.ClassWeight <= 0 {
		c.ClassWeight = 1
	}
}

// TrainLinearSVM fits a linear SVM on (X, y) with the Pegasos update: at step
// t the learning rate is 1/(λt); the weights shrink by (1 − 1/t), move along
// the hinge sub-gradient for margin-violating examples, and are projected
// onto the ball of radius 1/√λ. The bias is trained as an augmented
// (regularised) constant feature so the Pegasos guarantees apply to it too,
// and the returned model averages the iterates of the second half of
// training (averaged Pegasos) for stability.
func TrainLinearSVM(X [][]float64, y []bool, cfg LinearSVMConfig, r *rng.RNG) (*LinearSVM, error) {
	d, err := validate(X, y)
	if err != nil {
		return nil, err
	}
	cfg.defaults()
	// Augmented weight vector: w[0..d-1] features, w[d] bias.
	w := make([]float64, d+1)
	t := 0
	order := make([]int, len(X))
	for i := range order {
		order[i] = i
	}
	totalSteps := cfg.Epochs * len(X)
	avgStart := totalSteps / 2
	avg := make([]float64, d+1)
	avgCount := 0
	maxNorm := 1 / math.Sqrt(cfg.Lambda)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		r.ShuffleInts(order)
		for _, i := range order {
			t++
			eta := 1 / (cfg.Lambda * float64(t))
			yi := -1.0
			weight := 1.0
			if y[i] {
				yi = 1
				weight = cfg.ClassWeight
			}
			x := X[i]
			margin := yi * (dot(w[:d], x) + w[d])
			shrink := 1 - eta*cfg.Lambda
			if shrink < 0 {
				shrink = 0
			}
			for j := range w {
				w[j] *= shrink
			}
			if margin < 1 {
				step := eta * weight
				for j := 0; j < d; j++ {
					w[j] += step * yi * x[j]
				}
				w[d] += step * yi
			}
			// Pegasos projection: ‖w‖ ≤ 1/√λ.
			norm := 0.0
			for _, v := range w {
				norm += v * v
			}
			norm = math.Sqrt(norm)
			if norm > maxNorm {
				scale := maxNorm / norm
				for j := range w {
					w[j] *= scale
				}
			}
			if t > avgStart {
				avgCount++
				inv := 1 / float64(avgCount)
				for j := range avg {
					avg[j] += (w[j] - avg[j]) * inv
				}
			}
		}
	}
	if avgCount > 0 {
		w = avg
	}
	return &LinearSVM{W: w[:d], B: w[d]}, nil
}

// Score returns the margin w·x + b.
func (m *LinearSVM) Score(x []float64) float64 { return dot(m.W, x) + m.B }

// Predict returns true when the margin is positive.
func (m *LinearSVM) Predict(x []float64) bool { return m.Score(x) > 0 }

// Probabilistic reports false: SVM margins are uncalibrated scores.
func (m *LinearSVM) Probabilistic() bool { return false }

// LogisticRegression is a binary logistic-regression model trained by
// stochastic gradient descent on the regularised log-loss. Its Score is the
// predicted match probability, i.e. a (near-)calibrated score.
type LogisticRegression struct {
	W []float64
	B float64
}

// LogisticRegressionConfig configures SGD training.
type LogisticRegressionConfig struct {
	// Lambda is the L2 regularisation strength (default 1e-5).
	Lambda float64
	// Epochs is the number of passes over the data (default 30).
	Epochs int
	// LearningRate is the base step size, decayed as 1/sqrt(t) (default 0.5).
	LearningRate float64
}

func (c *LogisticRegressionConfig) defaults() {
	if c.Lambda <= 0 {
		c.Lambda = 1e-5
	}
	if c.Epochs <= 0 {
		c.Epochs = 30
	}
	if c.LearningRate <= 0 {
		c.LearningRate = 0.5
	}
}

// TrainLogisticRegression fits the model on (X, y).
func TrainLogisticRegression(X [][]float64, y []bool, cfg LogisticRegressionConfig, r *rng.RNG) (*LogisticRegression, error) {
	d, err := validate(X, y)
	if err != nil {
		return nil, err
	}
	cfg.defaults()
	m := &LogisticRegression{W: make([]float64, d)}
	t := 0
	order := make([]int, len(X))
	for i := range order {
		order[i] = i
	}
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		r.ShuffleInts(order)
		for _, i := range order {
			t++
			eta := cfg.LearningRate / (1 + cfg.LearningRate*cfg.Lambda*float64(t))
			p := stats.Sigmoid(dot(m.W, X[i]) + m.B)
			target := 0.0
			if y[i] {
				target = 1
			}
			g := p - target
			for j := range m.W {
				m.W[j] -= eta * (g*X[i][j] + cfg.Lambda*m.W[j])
			}
			m.B -= eta * g
		}
	}
	return m, nil
}

// Score returns the predicted probability of a match.
func (m *LogisticRegression) Score(x []float64) float64 {
	return stats.Sigmoid(dot(m.W, x) + m.B)
}

// Predict returns true when the probability exceeds 1/2.
func (m *LogisticRegression) Predict(x []float64) bool { return m.Score(x) > 0.5 }

// Probabilistic reports true.
func (m *LogisticRegression) Probabilistic() bool { return true }
