package classifier

import (
	"errors"
	"math"

	"oasis/internal/stats"
)

// PlattScaler maps raw classifier scores to calibrated probabilities via the
// sigmoid P(match | s) = 1 / (1 + exp(A·s + B)). It stands in for LIBSVM's
// built-in cross-validation Platt calibration that the paper uses to obtain
// "calibrated (probabilistic) scores" (§6.3.2).
type PlattScaler struct {
	A, B float64
}

// FitPlatt estimates (A, B) from held-out scores and labels by Newton's
// method with backtracking on the regularised maximum-likelihood objective,
// following Platt (1999) with the Lin–Lin–Weng numerical fixes: targets are
// smoothed to t+ = (N+ + 1)/(N+ + 2) and t− = 1/(N− + 2).
func FitPlatt(scores []float64, labels []bool) (*PlattScaler, error) {
	n := len(scores)
	if n == 0 || n != len(labels) {
		return nil, ErrNoData
	}
	nPos, nNeg := 0, 0
	for _, l := range labels {
		if l {
			nPos++
		} else {
			nNeg++
		}
	}
	if nPos == 0 || nNeg == 0 {
		return nil, errors.New("classifier: Platt calibration needs both classes")
	}
	hiTarget := (float64(nPos) + 1) / (float64(nPos) + 2)
	loTarget := 1 / (float64(nNeg) + 2)
	t := make([]float64, n)
	for i, l := range labels {
		if l {
			t[i] = hiTarget
		} else {
			t[i] = loTarget
		}
	}
	a := 0.0
	b := math.Log((float64(nNeg) + 1) / (float64(nPos) + 1))
	const (
		maxIter = 100
		minStep = 1e-10
		sigma   = 1e-12
		eps     = 1e-5
	)
	fval := 0.0
	for i := 0; i < n; i++ {
		fApB := scores[i]*a + b
		if fApB >= 0 {
			fval += t[i]*fApB + math.Log1p(math.Exp(-fApB))
		} else {
			fval += (t[i]-1)*fApB + math.Log1p(math.Exp(fApB))
		}
	}
	for iter := 0; iter < maxIter; iter++ {
		h11, h22 := sigma, sigma
		h21, g1, g2 := 0.0, 0.0, 0.0
		for i := 0; i < n; i++ {
			fApB := scores[i]*a + b
			var p, q float64
			if fApB >= 0 {
				e := math.Exp(-fApB)
				p = e / (1 + e)
				q = 1 / (1 + e)
			} else {
				e := math.Exp(fApB)
				p = 1 / (1 + e)
				q = e / (1 + e)
			}
			d2 := p * q
			h11 += scores[i] * scores[i] * d2
			h22 += d2
			h21 += scores[i] * d2
			d1 := t[i] - p
			g1 += scores[i] * d1
			g2 += d1
		}
		if math.Abs(g1) < eps && math.Abs(g2) < eps {
			break
		}
		det := h11*h22 - h21*h21
		dA := -(h22*g1 - h21*g2) / det
		dB := -(-h21*g1 + h11*g2) / det
		gd := g1*dA + g2*dB
		step := 1.0
		for step >= minStep {
			newA := a + step*dA
			newB := b + step*dB
			newF := 0.0
			for i := 0; i < n; i++ {
				fApB := scores[i]*newA + newB
				if fApB >= 0 {
					newF += t[i]*fApB + math.Log1p(math.Exp(-fApB))
				} else {
					newF += (t[i]-1)*fApB + math.Log1p(math.Exp(fApB))
				}
			}
			if newF < fval+1e-4*step*gd {
				a, b, fval = newA, newB, newF
				break
			}
			step /= 2
		}
		if step < minStep {
			break
		}
	}
	return &PlattScaler{A: a, B: b}, nil
}

// Calibrate maps a raw score to a probability in (0, 1).
func (p *PlattScaler) Calibrate(score float64) float64 {
	return stats.Sigmoid(-(p.A*score + p.B))
}

// CalibratedModel wraps a base model so that Score returns Platt-calibrated
// probabilities while Predict still uses the base model's decision rule.
type CalibratedModel struct {
	Base   Model
	Scaler *PlattScaler
}

// Calibrate fits a Platt scaler for base on held-out (X, y) and returns the
// wrapped model.
func Calibrate(base Model, X [][]float64, y []bool) (*CalibratedModel, error) {
	scores := make([]float64, len(X))
	for i, x := range X {
		scores[i] = base.Score(x)
	}
	scaler, err := FitPlatt(scores, y)
	if err != nil {
		return nil, err
	}
	return &CalibratedModel{Base: base, Scaler: scaler}, nil
}

// Score returns the calibrated probability of a match.
func (m *CalibratedModel) Score(x []float64) float64 {
	return m.Scaler.Calibrate(m.Base.Score(x))
}

// Predict delegates to the base model's decision rule so that calibration
// changes scores, not predictions — mirroring the paper's setup where Rhat is
// fixed and only the score representation varies.
func (m *CalibratedModel) Predict(x []float64) bool { return m.Base.Predict(x) }

// Probabilistic reports true.
func (m *CalibratedModel) Probabilistic() bool { return true }
