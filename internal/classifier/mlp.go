package classifier

import (
	"math"

	"oasis/internal/rng"
	"oasis/internal/stats"
)

// MLP is a one-hidden-layer neural network with tanh hidden units and a
// sigmoid output, matching the "neural network (multi-layer perceptron) with
// one hidden layer" the paper evaluates in §6.3.4. Score is the output
// probability.
type MLP struct {
	// W1 is hidden×input, B1 hidden; W2 hidden, B2 scalar.
	W1 [][]float64
	B1 []float64
	W2 []float64
	B2 float64
}

// MLPConfig configures backpropagation training.
type MLPConfig struct {
	// Hidden is the hidden layer width (default 16).
	Hidden int
	// Epochs is the number of passes over the data (default 30).
	Epochs int
	// LearningRate is the SGD step size, decayed as 1/(1+t·decay) (default 0.1).
	LearningRate float64
	// Lambda is the L2 weight decay (default 1e-5).
	Lambda float64
}

func (c *MLPConfig) defaults() {
	if c.Hidden <= 0 {
		c.Hidden = 16
	}
	if c.Epochs <= 0 {
		c.Epochs = 30
	}
	if c.LearningRate <= 0 {
		c.LearningRate = 0.1
	}
	if c.Lambda <= 0 {
		c.Lambda = 1e-5
	}
}

// TrainMLP fits the network on (X, y) by stochastic backpropagation with
// cross-entropy loss.
func TrainMLP(X [][]float64, y []bool, cfg MLPConfig, r *rng.RNG) (*MLP, error) {
	d, err := validate(X, y)
	if err != nil {
		return nil, err
	}
	cfg.defaults()
	h := cfg.Hidden
	m := &MLP{
		W1: make([][]float64, h),
		B1: make([]float64, h),
		W2: make([]float64, h),
	}
	// Xavier-style initialisation.
	scale1 := 1.0 / float64(d)
	for k := 0; k < h; k++ {
		m.W1[k] = make([]float64, d)
		for j := 0; j < d; j++ {
			m.W1[k][j] = r.NormalScaled(0, scale1)
		}
		m.W2[k] = r.NormalScaled(0, 1.0/float64(h))
	}
	order := make([]int, len(X))
	for i := range order {
		order[i] = i
	}
	hidden := make([]float64, h)
	t := 0
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		r.ShuffleInts(order)
		for _, i := range order {
			t++
			eta := cfg.LearningRate / (1 + 1e-4*float64(t))
			x := X[i]
			// Forward pass.
			for k := 0; k < h; k++ {
				hidden[k] = tanh(dot(m.W1[k], x) + m.B1[k])
			}
			p := stats.Sigmoid(dot(m.W2, hidden) + m.B2)
			target := 0.0
			if y[i] {
				target = 1
			}
			// Backward pass: dL/dz_out = p − target for sigmoid + CE.
			gOut := p - target
			for k := 0; k < h; k++ {
				gHidden := gOut * m.W2[k] * (1 - hidden[k]*hidden[k])
				m.W2[k] -= eta * (gOut*hidden[k] + cfg.Lambda*m.W2[k])
				for j := range x {
					m.W1[k][j] -= eta * (gHidden*x[j] + cfg.Lambda*m.W1[k][j])
				}
				m.B1[k] -= eta * gHidden
			}
			m.B2 -= eta * gOut
		}
	}
	return m, nil
}

func tanh(x float64) float64 { return math.Tanh(x) }

// Score returns the output probability of the network.
func (m *MLP) Score(x []float64) float64 {
	h := len(m.W2)
	s := m.B2
	for k := 0; k < h; k++ {
		s += m.W2[k] * tanh(dot(m.W1[k], x)+m.B1[k])
	}
	return stats.Sigmoid(s)
}

// Predict thresholds the probability at 1/2.
func (m *MLP) Predict(x []float64) bool { return m.Score(x) > 0.5 }

// Probabilistic reports true.
func (m *MLP) Probabilistic() bool { return true }
