package classifier

import (
	"math"
	"testing"
	"testing/quick"

	"oasis/internal/rng"
)

// blobs generates a linearly separable-ish two-class Gaussian dataset.
func blobs(n int, sep float64, r *rng.RNG) ([][]float64, []bool) {
	X := make([][]float64, n)
	y := make([]bool, n)
	for i := 0; i < n; i++ {
		pos := i%2 == 0
		cx, cy := -sep/2, -sep/2
		if pos {
			cx, cy = sep/2, sep/2
		}
		X[i] = []float64{r.NormalScaled(cx, 1), r.NormalScaled(cy, 1)}
		y[i] = pos
	}
	return X, y
}

// ring generates a non-linearly-separable dataset: positives inside a disc,
// negatives on a surrounding ring.
func ring(n int, r *rng.RNG) ([][]float64, []bool) {
	X := make([][]float64, n)
	y := make([]bool, n)
	for i := 0; i < n; i++ {
		pos := i%2 == 0
		var rad float64
		if pos {
			rad = r.Float64() * 1.0
		} else {
			rad = 2 + r.Float64()*1.0
		}
		theta := 2 * math.Pi * r.Float64()
		X[i] = []float64{rad * math.Cos(theta), rad * math.Sin(theta)}
		y[i] = pos
	}
	return X, y
}

func TestValidate(t *testing.T) {
	if _, err := validate(nil, nil); err == nil {
		t.Error("expected error on empty data")
	}
	if _, err := validate([][]float64{{1, 2}, {3}}, []bool{true, false}); err != ErrDimMismatch {
		t.Error("expected dimension mismatch error")
	}
	if _, err := validate([][]float64{{1}}, []bool{true, false}); err == nil {
		t.Error("expected error on X/y length mismatch")
	}
	if d, err := validate([][]float64{{1, 2}}, []bool{true}); err != nil || d != 2 {
		t.Errorf("validate = %d, %v", d, err)
	}
}

func TestStandardizer(t *testing.T) {
	X := [][]float64{{1, 10, 5}, {3, 20, 5}, {5, 30, 5}}
	s, err := FitStandardizer(X)
	if err != nil {
		t.Fatal(err)
	}
	Z := s.ApplyAll(X)
	for j := 0; j < 3; j++ {
		mean, variance := 0.0, 0.0
		for i := range Z {
			mean += Z[i][j]
		}
		mean /= float64(len(Z))
		for i := range Z {
			d := Z[i][j] - mean
			variance += d * d
		}
		variance /= float64(len(Z))
		if math.Abs(mean) > 1e-9 {
			t.Errorf("feature %d mean %v", j, mean)
		}
		if j < 2 && math.Abs(variance-1) > 1e-9 {
			t.Errorf("feature %d variance %v", j, variance)
		}
		if j == 2 && variance != 0 {
			t.Errorf("constant feature should stay constant, var %v", variance)
		}
	}
	if _, err := FitStandardizer(nil); err == nil {
		t.Error("expected error on empty input")
	}
}

func TestTrainTestSplit(t *testing.T) {
	r := rng.New(1)
	train, test := TrainTestSplit(100, 0.3, r)
	if len(train) != 30 || len(test) != 70 {
		t.Fatalf("split sizes %d/%d", len(train), len(test))
	}
	seen := make(map[int]bool)
	for _, i := range append(append([]int{}, train...), test...) {
		if seen[i] {
			t.Fatalf("index %d duplicated across split", i)
		}
		seen[i] = true
	}
	if len(seen) != 100 {
		t.Fatalf("split does not cover population: %d", len(seen))
	}
}

func TestLinearSVMSeparable(t *testing.T) {
	r := rng.New(2)
	X, y := blobs(400, 6, r)
	m, err := TrainLinearSVM(X, y, LinearSVMConfig{}, r)
	if err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(m, X, y); acc < 0.97 {
		t.Errorf("linear SVM accuracy on separable blobs = %v", acc)
	}
	if m.Probabilistic() {
		t.Error("SVM must report uncalibrated scores")
	}
}

func TestLinearSVMScoresOrderClasses(t *testing.T) {
	r := rng.New(3)
	X, y := blobs(400, 4, r)
	m, err := TrainLinearSVM(X, y, LinearSVMConfig{}, r)
	if err != nil {
		t.Fatal(err)
	}
	posMean, negMean := 0.0, 0.0
	nPos, nNeg := 0, 0
	for i, x := range X {
		if y[i] {
			posMean += m.Score(x)
			nPos++
		} else {
			negMean += m.Score(x)
			nNeg++
		}
	}
	if posMean/float64(nPos) <= negMean/float64(nNeg) {
		t.Error("positive class should have higher mean margin")
	}
}

func TestLinearSVMErrors(t *testing.T) {
	r := rng.New(4)
	if _, err := TrainLinearSVM(nil, nil, LinearSVMConfig{}, r); err == nil {
		t.Error("expected error on empty data")
	}
}

func TestLogisticRegression(t *testing.T) {
	r := rng.New(5)
	X, y := blobs(500, 5, r)
	m, err := TrainLogisticRegression(X, y, LogisticRegressionConfig{}, r)
	if err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(m, X, y); acc < 0.97 {
		t.Errorf("logreg accuracy = %v", acc)
	}
	if !m.Probabilistic() {
		t.Error("logreg scores are probabilities")
	}
	for _, x := range X[:50] {
		p := m.Score(x)
		if p < 0 || p > 1 {
			t.Fatalf("probability out of range: %v", p)
		}
	}
}

func TestMLPOnRing(t *testing.T) {
	r := rng.New(6)
	X, y := ring(600, r)
	m, err := TrainMLP(X, y, MLPConfig{Hidden: 12, Epochs: 60}, r)
	if err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(m, X, y); acc < 0.9 {
		t.Errorf("MLP accuracy on ring = %v (linear models cannot solve this)", acc)
	}
}

func TestMLPBeatsLinearOnRing(t *testing.T) {
	r := rng.New(7)
	X, y := ring(600, r)
	lin, err := TrainLinearSVM(X, y, LinearSVMConfig{}, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	mlp, err := TrainMLP(X, y, MLPConfig{Hidden: 12, Epochs: 60}, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if Accuracy(mlp, X, y) <= Accuracy(lin, X, y) {
		t.Error("MLP should beat linear SVM on the ring dataset")
	}
}

func TestAdaBoost(t *testing.T) {
	r := rng.New(10)
	X, y := ring(500, r)
	m, err := TrainAdaBoost(X, y, AdaBoostConfig{Rounds: 60}, r)
	if err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(m, X, y); acc < 0.9 {
		t.Errorf("AdaBoost accuracy on ring = %v", acc)
	}
	if m.Rounds() == 0 {
		t.Error("no stumps fitted")
	}
}

func TestAdaBoostSingleClass(t *testing.T) {
	r := rng.New(11)
	X := [][]float64{{1}, {2}, {3}}
	y := []bool{true, true, true}
	m, err := TrainAdaBoost(X, y, AdaBoostConfig{}, r)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range X {
		if !m.Predict(x) {
			t.Error("constant-positive data should predict positive")
		}
	}
}

func TestRBFSVMOnRing(t *testing.T) {
	r := rng.New(12)
	X, y := ring(600, r)
	m, err := TrainRBFSVM(X, y, RBFSVMConfig{Gamma: 0.5, Features: 200}, r)
	if err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(m, X, y); acc < 0.9 {
		t.Errorf("RBF-SVM accuracy on ring = %v", acc)
	}
}

func TestPlattCalibration(t *testing.T) {
	r := rng.New(13)
	X, y := blobs(2000, 3, r)
	svm, err := TrainLinearSVM(X, y, LinearSVMConfig{}, r)
	if err != nil {
		t.Fatal(err)
	}
	cal, err := Calibrate(svm, X, y)
	if err != nil {
		t.Fatal(err)
	}
	if !cal.Probabilistic() {
		t.Error("calibrated model must be probabilistic")
	}
	// Calibrated scores lie in (0,1) and preserve prediction rule.
	for _, x := range X[:200] {
		p := cal.Score(x)
		if p <= 0 || p >= 1 {
			t.Fatalf("calibrated score out of (0,1): %v", p)
		}
		if cal.Predict(x) != svm.Predict(x) {
			t.Fatal("calibration must not change predictions")
		}
	}
	// Reliability: bucket by predicted probability, compare with empirical.
	bucketTotal := make([]int, 10)
	bucketPos := make([]int, 10)
	for i, x := range X {
		p := cal.Score(x)
		b := int(p * 10)
		if b == 10 {
			b = 9
		}
		bucketTotal[b]++
		if y[i] {
			bucketPos[b]++
		}
	}
	for b := 0; b < 10; b++ {
		if bucketTotal[b] < 50 {
			continue
		}
		emp := float64(bucketPos[b]) / float64(bucketTotal[b])
		mid := (float64(b) + 0.5) / 10
		if math.Abs(emp-mid) > 0.25 {
			t.Errorf("bucket %d: empirical %v vs predicted ~%v", b, emp, mid)
		}
	}
}

func TestPlattMonotoneProperty(t *testing.T) {
	r := rng.New(14)
	X, y := blobs(500, 4, r)
	svm, _ := TrainLinearSVM(X, y, LinearSVMConfig{}, r)
	scores := make([]float64, len(X))
	for i, x := range X {
		scores[i] = svm.Score(x)
	}
	scaler, err := FitPlatt(scores, y)
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, b int16) bool {
		s1, s2 := float64(a)/100, float64(b)/100
		if s1 > s2 {
			s1, s2 = s2, s1
		}
		// For a sensible fit A < 0, calibration is non-decreasing in score.
		return scaler.Calibrate(s1) <= scaler.Calibrate(s2)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFitPlattErrors(t *testing.T) {
	if _, err := FitPlatt(nil, nil); err == nil {
		t.Error("expected error on empty data")
	}
	if _, err := FitPlatt([]float64{1, 2}, []bool{true, true}); err == nil {
		t.Error("expected error on single-class data")
	}
}

func TestConfusionCounts(t *testing.T) {
	r := rng.New(15)
	X, y := blobs(300, 5, r)
	m, _ := TrainLinearSVM(X, y, LinearSVMConfig{}, r)
	tp, fp, fn, tn := ConfusionCounts(m, X, y)
	if tp+fp+fn+tn != len(X) {
		t.Errorf("confusion counts don't sum: %d %d %d %d", tp, fp, fn, tn)
	}
	acc := Accuracy(m, X, y)
	if math.Abs(acc-float64(tp+tn)/float64(len(X))) > 1e-12 {
		t.Error("accuracy inconsistent with confusion counts")
	}
}

func TestDeterministicTraining(t *testing.T) {
	X, y := blobs(200, 4, rng.New(16))
	m1, _ := TrainLinearSVM(X, y, LinearSVMConfig{}, rng.New(17))
	m2, _ := TrainLinearSVM(X, y, LinearSVMConfig{}, rng.New(17))
	for j := range m1.W {
		if m1.W[j] != m2.W[j] {
			t.Fatal("same seed must give identical models")
		}
	}
	if m1.B != m2.B {
		t.Fatal("same seed must give identical bias")
	}
}
