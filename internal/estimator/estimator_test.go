package estimator

import (
	"math"
	"testing"
	"testing/quick"

	"oasis/internal/rng"
)

func TestFMeasureSpecialCases(t *testing.T) {
	// tp=2 fp=1 fn=2: precision 2/3, recall 1/2, F_1/2 = 2/(0.5*3+0.5*4).
	if got := FMeasure(1, 2, 1, 2); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("precision = %v", got)
	}
	if got := FMeasure(0, 2, 1, 2); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("recall = %v", got)
	}
	want := 2.0 / (0.5*3 + 0.5*4)
	if got := FMeasure(0.5, 2, 1, 2); math.Abs(got-want) > 1e-12 {
		t.Errorf("F_1/2 = %v, want %v", got, want)
	}
	if !math.IsNaN(FMeasure(0.5, 0, 0, 0)) {
		t.Error("empty confusion should give NaN")
	}
}

func TestFMeasureRangeProperty(t *testing.T) {
	f := func(a, tpR, fpR, fnR uint8) bool {
		alpha := float64(a%101) / 100
		tp, fp, fn := float64(tpR), float64(fpR), float64(fnR)
		got := FMeasure(alpha, tp, fp, fn)
		if math.IsNaN(got) {
			return alpha*(tp+fp)+(1-alpha)*(tp+fn) == 0
		}
		return got >= 0 && got <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWeightedReducesToPlain(t *testing.T) {
	// With unit weights, Weighted must equal the count-based statistic.
	labels := []bool{true, false, true, true, false, false, true}
	preds := []bool{true, true, false, true, false, true, true}
	e := NewWeighted(0.5)
	var tp, fp, fn float64
	for i := range labels {
		e.Add(1, labels[i], preds[i])
		if labels[i] && preds[i] {
			tp++
		}
		if !labels[i] && preds[i] {
			fp++
		}
		if labels[i] && !preds[i] {
			fn++
		}
	}
	want := FMeasure(0.5, tp, fp, fn)
	if got := e.Estimate(); math.Abs(got-want) > 1e-12 {
		t.Errorf("weighted(1) = %v, plain = %v", got, want)
	}
	if e.N() != len(labels) {
		t.Errorf("N = %d", e.N())
	}
}

func TestWeightedUndefinedUntilMass(t *testing.T) {
	e := NewWeighted(0.5)
	if e.Defined() || !math.IsNaN(e.Estimate()) {
		t.Error("fresh estimator should be undefined")
	}
	e.Add(1, false, false) // negative non-predicted: still undefined
	if e.Defined() {
		t.Error("no positive mass yet")
	}
	e.Add(1, true, false) // true positive label, not predicted
	if !e.Defined() {
		t.Error("true-label mass defines the α<1 estimator")
	}
}

func TestWeightedScaleInvariance(t *testing.T) {
	// Multiplying all weights by a constant must not change the estimate.
	labels := []bool{true, false, true, false, true}
	preds := []bool{true, true, true, false, false}
	w := []float64{0.5, 2, 1.5, 3, 0.25}
	a := NewWeighted(0.5)
	b := NewWeighted(0.5)
	for i := range labels {
		a.Add(w[i], labels[i], preds[i])
		b.Add(10*w[i], labels[i], preds[i])
	}
	if math.Abs(a.Estimate()-b.Estimate()) > 1e-12 {
		t.Errorf("scale invariance broken: %v vs %v", a.Estimate(), b.Estimate())
	}
}

func TestWeightedUnbiasedUnderImportanceSampling(t *testing.T) {
	// Finite population with known F; sample from a biased distribution q
	// with weights p/q. The weighted estimator must converge to the true F.
	r := rng.New(1)
	const n = 1000
	labels := make([]bool, n)
	preds := make([]bool, n)
	q := make([]float64, n)
	for i := 0; i < n; i++ {
		labels[i] = i%17 == 0
		preds[i] = i%13 == 0 || (labels[i] && i%3 == 0)
		if preds[i] || labels[i] {
			q[i] = 10 // oversample interesting items
		} else {
			q[i] = 1
		}
	}
	qsum := 0.0
	for _, v := range q {
		qsum += v
	}
	var tp, fp, fn float64
	for i := 0; i < n; i++ {
		if labels[i] && preds[i] {
			tp++
		}
		if !labels[i] && preds[i] {
			fp++
		}
		if labels[i] && !preds[i] {
			fn++
		}
	}
	trueF := FMeasure(0.5, tp, fp, fn)
	sampler, err := rng.NewAlias(q)
	if err != nil {
		t.Fatal(err)
	}
	e := NewWeighted(0.5)
	p := 1.0 / float64(n)
	for draws := 0; draws < 200000; draws++ {
		i := sampler.Draw(r)
		w := p / (q[i] / qsum)
		e.Add(w, labels[i], preds[i])
	}
	if got := e.Estimate(); math.Abs(got-trueF) > 0.01 {
		t.Errorf("IS estimate %v, true %v", got, trueF)
	}
}

func TestWeightedPrecisionRecallTargets(t *testing.T) {
	r := rng.New(2)
	const n = 500
	labels := make([]bool, n)
	preds := make([]bool, n)
	for i := 0; i < n; i++ {
		labels[i] = i%7 == 0
		preds[i] = i%5 == 0
	}
	var tp, fp, fn float64
	for i := 0; i < n; i++ {
		if labels[i] && preds[i] {
			tp++
		}
		if !labels[i] && preds[i] {
			fp++
		}
		if labels[i] && !preds[i] {
			fn++
		}
	}
	for _, alpha := range []float64{0, 0.5, 1} {
		e := NewWeighted(alpha)
		for draws := 0; draws < 100000; draws++ {
			i := r.Intn(n)
			e.Add(1, labels[i], preds[i])
		}
		want := FMeasure(alpha, tp, fp, fn)
		if got := e.Estimate(); math.Abs(got-want) > 0.02 {
			t.Errorf("alpha=%v: estimate %v, want %v", alpha, got, want)
		}
	}
}

func TestStratifiedExactWhenFullyLabelled(t *testing.T) {
	// Two strata; label every item: the stratified estimator must equal the
	// population F exactly.
	weights := []float64{0.8, 0.2}
	lambda := []float64{0.0, 1.0} // low stratum predicts nothing, high all
	// Stratum 0: 8 items, 1 true match (unpredicted). Stratum 1: 2 items,
	// 1 true match (predicted), 1 non-match (predicted).
	e := NewStratified(0.5, weights, lambda)
	// Label all of stratum 0: one positive among 8.
	e.Add(0, true, false)
	for i := 0; i < 7; i++ {
		e.Add(0, false, false)
	}
	// Label all of stratum 1.
	e.Add(1, true, true)
	e.Add(1, false, true)
	// Population (10 items): tp=1, fp=1, fn=1 → F = 1/(0.5*2+0.5*2) = 0.5.
	if got := e.Estimate(); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("stratified exact = %v, want 0.5", got)
	}
}

func TestStratifiedUndefinedWithoutLabels(t *testing.T) {
	e := NewStratified(0, []float64{1}, []float64{0.5})
	if e.Defined() {
		t.Error("no labels: recall estimator should be undefined")
	}
}

func TestStratifiedConvergesUnderProportionalSampling(t *testing.T) {
	r := rng.New(3)
	// Build a synthetic stratified population.
	sizes := []int{900, 90, 10}
	match := [][]bool{make([]bool, 900), make([]bool, 90), make([]bool, 10)}
	pred := [][]bool{make([]bool, 900), make([]bool, 90), make([]bool, 10)}
	for i := 0; i < 9; i++ {
		match[1][i] = true
	}
	for i := 0; i < 9; i++ {
		match[2][i] = true
		pred[2][i] = true
	}
	pred[1][0] = true
	n := 1000.0
	weights := []float64{900 / n, 90 / n, 10 / n}
	lambda := make([]float64, 3)
	var tp, fp, fn float64
	for k := range sizes {
		cnt := 0.0
		for i := 0; i < sizes[k]; i++ {
			if pred[k][i] {
				cnt++
			}
			switch {
			case match[k][i] && pred[k][i]:
				tp++
			case !match[k][i] && pred[k][i]:
				fp++
			case match[k][i] && !pred[k][i]:
				fn++
			}
		}
		lambda[k] = cnt / float64(sizes[k])
	}
	trueF := FMeasure(0.5, tp, fp, fn)
	e := NewStratified(0.5, weights, lambda)
	cum, err := rng.NewCumulative(weights)
	if err != nil {
		t.Fatal(err)
	}
	for draws := 0; draws < 300000; draws++ {
		k := cum.Draw(r)
		i := r.Intn(sizes[k])
		e.Add(k, match[k][i], pred[k][i])
	}
	if got := e.Estimate(); math.Abs(got-trueF) > 0.03 {
		t.Errorf("stratified estimate %v, true %v", got, trueF)
	}
}

func TestWeightedSumsExposed(t *testing.T) {
	e := NewWeighted(0.5)
	e.Add(2, true, true)
	e.Add(3, false, true)
	e.Add(4, true, false)
	num, pred, tru := e.Sums()
	if num != 2 || pred != 5 || tru != 6 {
		t.Errorf("sums = %v %v %v", num, pred, tru)
	}
}

func TestESSEqualWeights(t *testing.T) {
	e := NewWeighted(0.5)
	for i := 0; i < 100; i++ {
		e.Add(1, i%2 == 0, i%3 == 0)
	}
	if got := e.ESS(); math.Abs(got-100) > 1e-9 {
		t.Errorf("ESS = %v, want 100", got)
	}
	if got := e.ESSRatio(); math.Abs(got-1) > 1e-9 {
		t.Errorf("ESSRatio = %v, want 1", got)
	}
}

func TestESSDegenerateWeights(t *testing.T) {
	e := NewWeighted(0.5)
	e.Add(1e6, true, true)
	for i := 0; i < 99; i++ {
		e.Add(1e-6, true, true)
	}
	// One dominant weight: ESS collapses toward 1, ratio toward 1/n.
	if got := e.ESS(); got > 1.001 {
		t.Errorf("ESS = %v, want ~1", got)
	}
	if got := e.ESSRatio(); got > 0.02 {
		t.Errorf("ESSRatio = %v, want ~0.01", got)
	}
}

func TestESSUndefinedBeforeSamples(t *testing.T) {
	e := NewWeighted(0.5)
	if got := e.ESS(); got != 0 {
		t.Errorf("ESS = %v, want 0", got)
	}
	if got := e.ESSRatio(); !math.IsNaN(got) {
		t.Errorf("ESSRatio = %v, want NaN", got)
	}
	if got := e.AsymptoticVariance(); !math.IsNaN(got) {
		t.Errorf("AsymptoticVariance = %v, want NaN", got)
	}
}

func TestMomentsRoundTrip(t *testing.T) {
	e := NewWeighted(0.3)
	e.Add(2, true, true)
	e.Add(0.5, false, true)
	e.Add(3, true, false)
	w, w2, yy, yz, zz := e.Moments()
	num, pred, tru := e.Sums()

	f := NewWeighted(0.3)
	f.SetSums(num, pred, tru, e.N())
	f.SetMoments(w, w2, yy, yz, zz)
	if f.ESS() != e.ESS() || f.ESSRatio() != e.ESSRatio() {
		t.Error("ESS not preserved across round trip")
	}
	va, vb := e.AsymptoticVariance(), f.AsymptoticVariance()
	if va != vb {
		t.Errorf("variance not preserved: %v vs %v", va, vb)
	}
	if vb <= 0 || math.IsNaN(vb) {
		t.Errorf("variance = %v, want positive", vb)
	}
}

func TestAsymptoticVarianceMatchesEmpirical(t *testing.T) {
	// Monte Carlo check of the delta-method variance: under repeated
	// importance-sampled replications, the empirical variance of F̂ should
	// match the average of the per-replication estimates σ̂²/n.
	r := rng.New(7)
	const n = 400
	labels := make([]bool, n)
	preds := make([]bool, n)
	q := make([]float64, n)
	for i := 0; i < n; i++ {
		labels[i] = i%5 == 0
		preds[i] = i%4 == 0 || (labels[i] && i%2 == 0)
		if preds[i] || labels[i] {
			q[i] = 4
		} else {
			q[i] = 1
		}
	}
	qsum := 0.0
	for _, v := range q {
		qsum += v
	}
	sampler, err := rng.NewAlias(q)
	if err != nil {
		t.Fatal(err)
	}
	const reps, draws = 400, 2000
	p := 1.0 / float64(n)
	var ests, predVar []float64
	for rep := 0; rep < reps; rep++ {
		e := NewWeighted(0.5)
		for d := 0; d < draws; d++ {
			i := sampler.Draw(r)
			e.Add(p/(q[i]/qsum), labels[i], preds[i])
		}
		ests = append(ests, e.Estimate())
		predVar = append(predVar, e.AsymptoticVariance()/float64(draws))
	}
	var mean float64
	for _, v := range ests {
		mean += v
	}
	mean /= reps
	var empirical float64
	for _, v := range ests {
		empirical += (v - mean) * (v - mean)
	}
	empirical /= reps - 1
	var predicted float64
	for _, v := range predVar {
		predicted += v
	}
	predicted /= reps
	if ratio := predicted / empirical; ratio < 0.7 || ratio > 1.4 {
		t.Errorf("delta-method variance %v vs empirical %v (ratio %v)", predicted, empirical, ratio)
	}
}
