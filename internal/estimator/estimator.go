// Package estimator implements the F-measure estimators of the paper: the
// plain count-based statistic (Eqn. 1) used by passive sampling, the
// importance-weighted AIS estimator (Eqn. 3, Definition 5) used by IS and
// OASIS, and the stratified estimator used by the proportional stratified
// baseline of Druck & McCallum (§6.2).
//
// All estimators expose the same convention: Estimate returns NaN while the
// statistic is undefined (no predicted-positive or true-positive mass seen
// yet), which the experiment harness uses to implement the paper's
// "estimate is well-defined" plotting rule.
package estimator

import "math"

// FMeasure returns TP / (α(TP+FP) + (1−α)(TP+FN)) — Eqn. (1) — or NaN when
// the denominator is zero. α=1 gives precision, α=0 recall, α=1/2 the
// balanced F-measure.
func FMeasure(alpha, tp, fp, fn float64) float64 {
	den := alpha*(tp+fp) + (1-alpha)*(tp+fn)
	if den <= 0 {
		return math.NaN()
	}
	return tp / den
}

// Weighted is the bias-corrected (adaptive) importance-sampling estimator of
// Eqn. (3): F̂ = Σ w·l·l̂ / (α Σ w·l̂ + (1−α) Σ w·l). With all weights equal
// to one it reduces to the plain estimator of Eqn. (1); hence the passive
// baseline uses Weighted with w = 1. The zero value with Alpha set is ready
// for use.
type Weighted struct {
	// Alpha is the F-measure weight α ∈ [0, 1].
	Alpha float64

	sumNum  float64 // Σ w_t l_t l̂_t
	sumPred float64 // Σ w_t l̂_t
	sumTrue float64 // Σ w_t l_t
	n       int

	// Higher-order moments for runtime health diagnostics. With
	// y_t = l_t·l̂_t and z_t = α·l̂_t + (1−α)·l_t these feed the
	// delta-method asymptotic variance of the ratio estimator and the
	// effective sample size of the importance weights.
	sumW  float64 // Σ w_t
	sumW2 float64 // Σ w_t²
	sumYY float64 // Σ w_t² y_t²   (= Σ w_t² y_t, y is 0/1)
	sumYZ float64 // Σ w_t² y_t z_t
	sumZZ float64 // Σ w_t² z_t²
}

// NewWeighted returns a Weighted estimator for the given α.
func NewWeighted(alpha float64) *Weighted { return &Weighted{Alpha: alpha} }

// Add incorporates one labelled sample with importance weight w.
func (e *Weighted) Add(w float64, label, pred bool) {
	e.n++
	w2 := w * w
	e.sumW += w
	e.sumW2 += w2
	var z float64
	if label && pred {
		e.sumNum += w
	}
	if pred {
		e.sumPred += w
		z = e.Alpha
	}
	if label {
		e.sumTrue += w
		z += 1 - e.Alpha
	}
	if label && pred {
		e.sumYY += w2
		e.sumYZ += w2 * z
	}
	e.sumZZ += w2 * z * z
}

// N returns the number of samples incorporated.
func (e *Weighted) N() int { return e.n }

// Defined reports whether the estimate's denominator is positive.
func (e *Weighted) Defined() bool {
	return e.Alpha*e.sumPred+(1-e.Alpha)*e.sumTrue > 0
}

// Estimate returns the current F̂, or NaN when undefined.
func (e *Weighted) Estimate() float64 {
	den := e.Alpha*e.sumPred + (1-e.Alpha)*e.sumTrue
	if den <= 0 {
		return math.NaN()
	}
	f := e.sumNum / den
	// Importance weighting keeps F̂ a ratio of non-negative sums; values can
	// exceed 1 transiently only through α-weighting of disjoint sums, so
	// clamp for interpretability.
	if f > 1 {
		f = 1
	}
	return f
}

// Sums exposes the three accumulated sums (numerator, predicted-positive,
// true-positive) for diagnostics.
func (e *Weighted) Sums() (num, pred, true_ float64) {
	return e.sumNum, e.sumPred, e.sumTrue
}

// SetSums overwrites the accumulated sums and sample count, restoring a
// previously captured estimator state (see Sums and N).
func (e *Weighted) SetSums(num, pred, true_ float64, n int) {
	e.sumNum, e.sumPred, e.sumTrue, e.n = num, pred, true_, n
}

// Moments exposes the higher-order weight moments for snapshotting.
func (e *Weighted) Moments() (sumW, sumW2, sumYY, sumYZ, sumZZ float64) {
	return e.sumW, e.sumW2, e.sumYY, e.sumYZ, e.sumZZ
}

// SetMoments overwrites the higher-order weight moments, restoring a
// previously captured state (see Moments). Snapshots written before the
// moments existed restore zeros here: ESS and variance then read as
// unknown until fresh labels arrive, while the estimate itself — driven
// solely by the first-order sums — is unaffected.
func (e *Weighted) SetMoments(sumW, sumW2, sumYY, sumYZ, sumZZ float64) {
	e.sumW, e.sumW2, e.sumYY, e.sumYZ, e.sumZZ = sumW, sumW2, sumYY, sumYZ, sumZZ
}

// ESS returns the effective sample size of the importance weights,
// (Σw)²/Σw² — n when all weights are equal, collapsing toward 1 as the
// weights degenerate (the Bezáková-style failure mode for SIS). Zero
// when no weighted samples have been seen.
func (e *Weighted) ESS() float64 { return ESSFrom(e.sumW, e.sumW2) }

// ESSFrom computes the effective sample size (Σw)²/Σw² from raw weight
// moments. It is the shared kernel behind Weighted.ESS and the
// per-stratum diagnostics: zero when no weight mass exists (Σw² ≤ 0, which
// covers the zero-labels, empty-stratum and all-zero-weight edge cases —
// Σw² = 0 forces Σw = 0 for non-negative weights, so 0 is the only
// consistent answer, never NaN or ±Inf).
func ESSFrom(sumW, sumW2 float64) float64 {
	if sumW2 <= 0 {
		return 0
	}
	return sumW * sumW / sumW2
}

// ESSRatio returns ESS/n ∈ (0, 1], or NaN before any samples. Values
// near 1 mean the instrumental distribution is well matched; values
// near 0 mean a few huge weights dominate and the estimate's nominal
// sample count overstates the information actually collected.
func (e *Weighted) ESSRatio() float64 {
	if e.n == 0 {
		return math.NaN()
	}
	return e.ESS() / float64(e.n)
}

// AsymptoticVariance returns the delta-method estimate σ̂² of the
// asymptotic variance of the ratio estimator, so that
// Var(F̂) ≈ σ̂²/n. With y = l·l̂ and z = α·l̂ + (1−α)·l,
//
//	σ̂² = n · (Σw²y² − 2F̂·Σw²yz + F̂²·Σw²z²) / (Σwz)²
//
// NaN while the estimate is undefined or the moments are unavailable
// (estimator restored from a pre-moment snapshot).
func (e *Weighted) AsymptoticVariance() float64 {
	den := e.Alpha*e.sumPred + (1-e.Alpha)*e.sumTrue
	if den <= 0 || e.n == 0 || e.sumW2 <= 0 {
		return math.NaN()
	}
	f := e.sumNum / den
	if f > 1 {
		f = 1
	}
	s := e.sumYY - 2*f*e.sumYZ + f*f*e.sumZZ
	if s < 0 {
		s = 0
	}
	return float64(e.n) * s / (den * den)
}

// Stratified is the proportional stratified F-measure estimator used by the
// Stratified baseline: strata have fixed weights ω_k and known mean
// predictions λ_k; labels update per-stratum empirical match rates π̂_k, and
//
//	F̂ = Σ ω_k π̂λ_k / (α Σ ω_k λ_k + (1−α) Σ ω_k π̂_k)
//
// where π̂λ_k estimates E[l·l̂ | stratum k] and π̂_k estimates E[l | k].
type Stratified struct {
	// Alpha is the F-measure weight.
	Alpha float64

	weights []float64 // ω_k
	lambda  []float64 // λ_k (mean prediction, known exactly)

	labels  []int // labels seen per stratum
	pos     []int // positive labels per stratum
	posPred []int // positive labels with positive prediction per stratum
	n       int
}

// NewStratified builds the estimator from stratum weights ω and mean
// predictions λ.
func NewStratified(alpha float64, weights, lambda []float64) *Stratified {
	k := len(weights)
	return &Stratified{
		Alpha:   alpha,
		weights: append([]float64(nil), weights...),
		lambda:  append([]float64(nil), lambda...),
		labels:  make([]int, k),
		pos:     make([]int, k),
		posPred: make([]int, k),
	}
}

// Add incorporates a labelled sample drawn from stratum k.
func (e *Stratified) Add(k int, label, pred bool) {
	e.n++
	e.labels[k]++
	if label {
		e.pos[k]++
		if pred {
			e.posPred[k]++
		}
	}
}

// N returns the number of samples incorporated.
func (e *Stratified) N() int { return e.n }

// Estimate returns the stratified F̂, or NaN when undefined. Strata without
// labels contribute zero to the estimated match mass (their λ_k still counts
// toward predicted positives, which is known exactly).
func (e *Stratified) Estimate() float64 {
	num, den := 0.0, 0.0
	predMass := 0.0
	trueMass := 0.0
	for k, w := range e.weights {
		predMass += w * e.lambda[k]
		if e.labels[k] > 0 {
			piHat := float64(e.pos[k]) / float64(e.labels[k])
			piLamHat := float64(e.posPred[k]) / float64(e.labels[k])
			num += w * piLamHat
			trueMass += w * piHat
		}
	}
	den = e.Alpha*predMass + (1-e.Alpha)*trueMass
	if den <= 0 || num == 0 && trueMass == 0 && e.Alpha == 0 {
		return math.NaN()
	}
	if den == 0 {
		return math.NaN()
	}
	f := num / den
	if f > 1 {
		f = 1
	}
	return f
}

// Defined reports whether Estimate would return a finite value.
func (e *Stratified) Defined() bool {
	return !math.IsNaN(e.Estimate())
}
