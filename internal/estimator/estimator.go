// Package estimator implements the F-measure estimators of the paper: the
// plain count-based statistic (Eqn. 1) used by passive sampling, the
// importance-weighted AIS estimator (Eqn. 3, Definition 5) used by IS and
// OASIS, and the stratified estimator used by the proportional stratified
// baseline of Druck & McCallum (§6.2).
//
// All estimators expose the same convention: Estimate returns NaN while the
// statistic is undefined (no predicted-positive or true-positive mass seen
// yet), which the experiment harness uses to implement the paper's
// "estimate is well-defined" plotting rule.
package estimator

import "math"

// FMeasure returns TP / (α(TP+FP) + (1−α)(TP+FN)) — Eqn. (1) — or NaN when
// the denominator is zero. α=1 gives precision, α=0 recall, α=1/2 the
// balanced F-measure.
func FMeasure(alpha, tp, fp, fn float64) float64 {
	den := alpha*(tp+fp) + (1-alpha)*(tp+fn)
	if den <= 0 {
		return math.NaN()
	}
	return tp / den
}

// Weighted is the bias-corrected (adaptive) importance-sampling estimator of
// Eqn. (3): F̂ = Σ w·l·l̂ / (α Σ w·l̂ + (1−α) Σ w·l). With all weights equal
// to one it reduces to the plain estimator of Eqn. (1); hence the passive
// baseline uses Weighted with w = 1. The zero value with Alpha set is ready
// for use.
type Weighted struct {
	// Alpha is the F-measure weight α ∈ [0, 1].
	Alpha float64

	sumNum  float64 // Σ w_t l_t l̂_t
	sumPred float64 // Σ w_t l̂_t
	sumTrue float64 // Σ w_t l_t
	n       int
}

// NewWeighted returns a Weighted estimator for the given α.
func NewWeighted(alpha float64) *Weighted { return &Weighted{Alpha: alpha} }

// Add incorporates one labelled sample with importance weight w.
func (e *Weighted) Add(w float64, label, pred bool) {
	e.n++
	if label && pred {
		e.sumNum += w
	}
	if pred {
		e.sumPred += w
	}
	if label {
		e.sumTrue += w
	}
}

// N returns the number of samples incorporated.
func (e *Weighted) N() int { return e.n }

// Defined reports whether the estimate's denominator is positive.
func (e *Weighted) Defined() bool {
	return e.Alpha*e.sumPred+(1-e.Alpha)*e.sumTrue > 0
}

// Estimate returns the current F̂, or NaN when undefined.
func (e *Weighted) Estimate() float64 {
	den := e.Alpha*e.sumPred + (1-e.Alpha)*e.sumTrue
	if den <= 0 {
		return math.NaN()
	}
	f := e.sumNum / den
	// Importance weighting keeps F̂ a ratio of non-negative sums; values can
	// exceed 1 transiently only through α-weighting of disjoint sums, so
	// clamp for interpretability.
	if f > 1 {
		f = 1
	}
	return f
}

// Sums exposes the three accumulated sums (numerator, predicted-positive,
// true-positive) for diagnostics.
func (e *Weighted) Sums() (num, pred, true_ float64) {
	return e.sumNum, e.sumPred, e.sumTrue
}

// SetSums overwrites the accumulated sums and sample count, restoring a
// previously captured estimator state (see Sums and N).
func (e *Weighted) SetSums(num, pred, true_ float64, n int) {
	e.sumNum, e.sumPred, e.sumTrue, e.n = num, pred, true_, n
}

// Stratified is the proportional stratified F-measure estimator used by the
// Stratified baseline: strata have fixed weights ω_k and known mean
// predictions λ_k; labels update per-stratum empirical match rates π̂_k, and
//
//	F̂ = Σ ω_k π̂λ_k / (α Σ ω_k λ_k + (1−α) Σ ω_k π̂_k)
//
// where π̂λ_k estimates E[l·l̂ | stratum k] and π̂_k estimates E[l | k].
type Stratified struct {
	// Alpha is the F-measure weight.
	Alpha float64

	weights []float64 // ω_k
	lambda  []float64 // λ_k (mean prediction, known exactly)

	labels  []int // labels seen per stratum
	pos     []int // positive labels per stratum
	posPred []int // positive labels with positive prediction per stratum
	n       int
}

// NewStratified builds the estimator from stratum weights ω and mean
// predictions λ.
func NewStratified(alpha float64, weights, lambda []float64) *Stratified {
	k := len(weights)
	return &Stratified{
		Alpha:   alpha,
		weights: append([]float64(nil), weights...),
		lambda:  append([]float64(nil), lambda...),
		labels:  make([]int, k),
		pos:     make([]int, k),
		posPred: make([]int, k),
	}
}

// Add incorporates a labelled sample drawn from stratum k.
func (e *Stratified) Add(k int, label, pred bool) {
	e.n++
	e.labels[k]++
	if label {
		e.pos[k]++
		if pred {
			e.posPred[k]++
		}
	}
}

// N returns the number of samples incorporated.
func (e *Stratified) N() int { return e.n }

// Estimate returns the stratified F̂, or NaN when undefined. Strata without
// labels contribute zero to the estimated match mass (their λ_k still counts
// toward predicted positives, which is known exactly).
func (e *Stratified) Estimate() float64 {
	num, den := 0.0, 0.0
	predMass := 0.0
	trueMass := 0.0
	for k, w := range e.weights {
		predMass += w * e.lambda[k]
		if e.labels[k] > 0 {
			piHat := float64(e.pos[k]) / float64(e.labels[k])
			piLamHat := float64(e.posPred[k]) / float64(e.labels[k])
			num += w * piLamHat
			trueMass += w * piHat
		}
	}
	den = e.Alpha*predMass + (1-e.Alpha)*trueMass
	if den <= 0 || num == 0 && trueMass == 0 && e.Alpha == 0 {
		return math.NaN()
	}
	if den == 0 {
		return math.NaN()
	}
	f := num / den
	if f > 1 {
		f = 1
	}
	return f
}

// Defined reports whether Estimate would return a finite value.
func (e *Stratified) Defined() bool {
	return !math.IsNaN(e.Estimate())
}
