// Package rng provides deterministic pseudo-random number generation and
// discrete sampling primitives used throughout the OASIS library.
//
// Every randomised component in the repository draws its randomness from an
// *rng.RNG seeded explicitly, so that experiments are reproducible
// bit-for-bit. The generator is xoshiro256** seeded via splitmix64, which has
// a 256-bit state, passes BigCrush, and is significantly faster than the
// standard library's default source while remaining allocation-free.
package rng

import (
	"errors"
	"math"
	"math/bits"
)

// RNG is a deterministic pseudo-random number generator (xoshiro256**).
// It is not safe for concurrent use; create one RNG per goroutine, e.g. with
// Split.
type RNG struct {
	s [4]uint64
	// cached spare normal deviate for Box-Muller
	hasSpare bool
	spare    float64
}

// New returns a generator seeded from the given seed. Distinct seeds yield
// statistically independent streams. A zero seed is valid.
func New(seed uint64) *RNG {
	r := &RNG{}
	r.Seed(seed)
	return r
}

// Seed resets the generator state from seed using splitmix64, which
// guarantees the xoshiro state is never all-zero.
func (r *RNG) Seed(seed uint64) {
	sm := seed
	for i := 0; i < 4; i++ {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	r.hasSpare = false
}

// Split derives a new, statistically independent generator from r, advancing
// r in the process. It is used to hand child components their own streams.
func (r *RNG) Split() *RNG {
	return New(r.Uint64() ^ 0xd2b74407b1ce6e93)
}

// State is a serialisable snapshot of a generator, used by the session
// subsystem to persist samplers across process restarts.
type State struct {
	S        [4]uint64 `json:"s"`
	HasSpare bool      `json:"hasSpare,omitempty"`
	Spare    float64   `json:"spare,omitempty"`
}

// State captures the generator's current state.
func (r *RNG) State() State {
	return State{S: r.s, HasSpare: r.hasSpare, Spare: r.spare}
}

// ErrBadState is returned by Restore for the all-zero xoshiro256** state —
// the one invalid state of the generator (it would emit zeros forever). A
// captured State is never all-zero (Seed guarantees it), so encountering one
// means the snapshot is truncated or corrupted.
var ErrBadState = errors.New("rng: all-zero generator state (corrupted snapshot)")

// Restore resets the generator to a previously captured state, so the stream
// continues exactly where the snapshot left off. The generator is unchanged
// when an error is returned.
func (r *RNG) Restore(st State) error {
	if st.S == ([4]uint64{}) {
		return ErrBadState
	}
	r.s = st.S
	r.hasSpare = st.HasSpare
	r.spare = st.Spare
	return nil
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
// It uses Lemire's nearly-divisionless bounded sampling.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with non-positive n")
	}
	bound := uint64(n)
	x := r.Uint64()
	hi, lo := mul64(x, bound)
	if lo < bound {
		threshold := (-bound) % bound
		for lo < threshold {
			x = r.Uint64()
			hi, lo = mul64(x, bound)
		}
	}
	_ = lo
	return int(hi)
}

// mul64 returns the 128-bit product of a and b as (hi, lo). bits.Mul64 is
// an intrinsic on every 64-bit platform (one widening multiply), which
// matters because every bounded draw on the sampling hot path goes through
// it.
func mul64(a, b uint64) (hi, lo uint64) {
	return bits.Mul64(a, b)
}

// Bernoulli returns true with probability p (clamped to [0, 1]).
func (r *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Normal returns a standard normal deviate (Box-Muller with caching).
func (r *RNG) Normal() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	f := math.Sqrt(-2 * math.Log(s) / s)
	r.spare = v * f
	r.hasSpare = true
	return u * f
}

// NormalScaled returns mean + stddev*Normal().
func (r *RNG) NormalScaled(mean, stddev float64) float64 {
	return mean + stddev*r.Normal()
}

// Exp returns an exponentially distributed deviate with rate 1.
func (r *RNG) Exp() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Geometric returns a geometric deviate: the number of failures before the
// first success in Bernoulli(p) trials. p must be in (0, 1].
func (r *RNG) Geometric(p float64) int {
	if p >= 1 {
		return 0
	}
	if p <= 0 {
		panic("rng: Geometric with p <= 0")
	}
	return int(math.Floor(r.Exp() / -math.Log1p(-p)))
}

// Perm returns a uniformly random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.ShuffleInts(p)
	return p
}

// ShuffleInts performs a Fisher-Yates shuffle of s in place.
func (r *RNG) ShuffleInts(s []int) {
	for i := len(s) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		s[i], s[j] = s[j], s[i]
	}
}

// Shuffle performs a Fisher-Yates shuffle using the provided swap function.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// SampleWithoutReplacement returns k distinct indices drawn uniformly from
// [0, n). It panics if k > n. The result is in random order.
func (r *RNG) SampleWithoutReplacement(n, k int) []int {
	if k > n {
		panic("rng: sample size exceeds population")
	}
	if k*4 >= n {
		// Dense case: partial Fisher-Yates.
		p := make([]int, n)
		for i := range p {
			p[i] = i
		}
		for i := 0; i < k; i++ {
			j := i + r.Intn(n-i)
			p[i], p[j] = p[j], p[i]
		}
		return p[:k]
	}
	// Sparse case: rejection via set.
	seen := make(map[int]struct{}, k)
	out := make([]int, 0, k)
	for len(out) < k {
		x := r.Intn(n)
		if _, dup := seen[x]; dup {
			continue
		}
		seen[x] = struct{}{}
		out = append(out, x)
	}
	return out
}
