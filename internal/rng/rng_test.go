package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDistinctSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 produced %d identical outputs in 100 draws", same)
	}
}

func TestZeroSeedValid(t *testing.T) {
	r := New(0)
	seenNonZero := false
	for i := 0; i < 10; i++ {
		if r.Uint64() != 0 {
			seenNonZero = true
		}
	}
	if !seenNonZero {
		t.Fatal("zero seed produced all-zero stream")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("mean of uniforms = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(3)
	for _, n := range []int{1, 2, 3, 10, 1000, 1 << 30} {
		for i := 0; i < 1000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniform(t *testing.T) {
	r := New(5)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("bucket %d count %d deviates from %v", i, c, want)
		}
	}
}

func TestMul64(t *testing.T) {
	cases := []struct {
		a, b, hi, lo uint64
	}{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{1 << 32, 1 << 32, 1, 0},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64 - 1, 1},
	}
	for _, c := range cases {
		hi, lo := mul64(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Errorf("mul64(%d,%d) = (%d,%d), want (%d,%d)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}

func TestMul64Property(t *testing.T) {
	// Against big-integer-free check: (a*b) mod 2^64 must equal lo.
	f := func(a, b uint64) bool {
		_, lo := mul64(a, b)
		return lo == a*b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(13)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		x := r.Normal()
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestBernoulli(t *testing.T) {
	r := New(17)
	if r.Bernoulli(0) {
		t.Error("Bernoulli(0) returned true")
	}
	if !r.Bernoulli(1) {
		t.Error("Bernoulli(1) returned false")
	}
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.3) > 0.01 {
		t.Errorf("Bernoulli(0.3) rate = %v", p)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(19)
	for _, n := range []int{0, 1, 2, 17, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestSampleWithoutReplacement(t *testing.T) {
	r := New(23)
	for _, tc := range []struct{ n, k int }{{10, 10}, {10, 3}, {1000, 5}, {1000, 900}, {5, 0}} {
		s := r.SampleWithoutReplacement(tc.n, tc.k)
		if len(s) != tc.k {
			t.Fatalf("got %d samples, want %d", len(s), tc.k)
		}
		seen := make(map[int]bool)
		for _, v := range s {
			if v < 0 || v >= tc.n {
				t.Fatalf("sample %d out of range [0,%d)", v, tc.n)
			}
			if seen[v] {
				t.Fatalf("duplicate sample %d", v)
			}
			seen[v] = true
		}
	}
}

func TestSampleWithoutReplacementPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic when k > n")
		}
	}()
	New(1).SampleWithoutReplacement(3, 4)
}

func TestCategoricalErrors(t *testing.T) {
	r := New(29)
	for _, w := range [][]float64{
		nil,
		{},
		{0, 0, 0},
		{-1, 2},
		{math.NaN()},
		{math.Inf(1)},
	} {
		if _, err := r.Categorical(w); err == nil {
			t.Errorf("Categorical(%v) expected error", w)
		}
	}
	if _, err := NewCumulative([]float64{0, 0}); err == nil {
		t.Error("NewCumulative zero weights: expected error")
	}
	if _, err := NewAlias([]float64{-1}); err == nil {
		t.Error("NewAlias negative weight: expected error")
	}
}

func TestCategoricalRespectsZeros(t *testing.T) {
	r := New(31)
	w := []float64{0, 1, 0, 2, 0}
	for i := 0; i < 10000; i++ {
		k, err := r.Categorical(w)
		if err != nil {
			t.Fatal(err)
		}
		if k != 1 && k != 3 {
			t.Fatalf("drew zero-weight category %d", k)
		}
	}
}

// frequencyCheck draws from draw() and compares empirical frequencies
// against want (normalised weights) within 5-sigma binomial tolerance.
func frequencyCheck(t *testing.T, name string, w []float64, draw func() int) {
	t.Helper()
	sum := 0.0
	for _, x := range w {
		sum += x
	}
	const n = 200000
	counts := make([]int, len(w))
	for i := 0; i < n; i++ {
		counts[draw()]++
	}
	for i, x := range w {
		p := x / sum
		exp := p * n
		sigma := math.Sqrt(n * p * (1 - p))
		if math.Abs(float64(counts[i])-exp) > 5*sigma+1 {
			t.Errorf("%s: category %d count %d, want ~%.0f (sigma %.1f)", name, i, counts[i], exp, sigma)
		}
	}
}

func TestSamplersAgreeWithWeights(t *testing.T) {
	w := []float64{5, 0, 1, 3, 0.5, 10}
	r1 := New(37)
	frequencyCheck(t, "Categorical", w, func() int {
		k, err := r1.Categorical(w)
		if err != nil {
			t.Fatal(err)
		}
		return k
	})
	cum, err := NewCumulative(w)
	if err != nil {
		t.Fatal(err)
	}
	r2 := New(38)
	frequencyCheck(t, "Cumulative", w, func() int { return cum.Draw(r2) })
	al, err := NewAlias(w)
	if err != nil {
		t.Fatal(err)
	}
	r3 := New(39)
	frequencyCheck(t, "Alias", w, func() int { return al.Draw(r3) })
}

func TestAliasMatchesCumulativeDistribution(t *testing.T) {
	// Property: for random weight vectors, alias and cumulative samplers
	// agree on the support (never draw a zero-weight index).
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 20 {
			raw = raw[:20]
		}
		w := make([]float64, len(raw))
		sum := 0.0
		for i, b := range raw {
			w[i] = float64(b)
			sum += w[i]
		}
		if sum == 0 {
			return true // invalid weights rejected elsewhere
		}
		al, err1 := NewAlias(w)
		cum, err2 := NewCumulative(w)
		if err1 != nil || err2 != nil {
			return false
		}
		r := New(41)
		for i := 0; i < 200; i++ {
			if w[al.Draw(r)] == 0 {
				return false
			}
			if w[cum.Draw(r)] == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestGeometric(t *testing.T) {
	r := New(43)
	if g := r.Geometric(1); g != 0 {
		t.Errorf("Geometric(1) = %d, want 0", g)
	}
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += float64(r.Geometric(0.25))
	}
	mean := sum / n // expected (1-p)/p = 3
	if math.Abs(mean-3) > 0.1 {
		t.Errorf("Geometric(0.25) mean = %v, want ~3", mean)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(47)
	child := parent.Split()
	// The child stream should differ from a fresh parent continuation.
	same := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split stream matches parent too often: %d/100", same)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkAliasDraw(b *testing.B) {
	w := make([]float64, 100000)
	for i := range w {
		w[i] = float64(i%97) + 1
	}
	al, _ := NewAlias(w)
	r := New(1)
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		sink += al.Draw(r)
	}
	_ = sink
}

func BenchmarkCategoricalNaive(b *testing.B) {
	w := make([]float64, 100000)
	for i := range w {
		w[i] = float64(i%97) + 1
	}
	r := New(1)
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		k, _ := r.Categorical(w)
		sink += k
	}
	_ = sink
}
