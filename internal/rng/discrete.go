package rng

import (
	"errors"
	"math"
)

// ErrBadWeights is returned when a weight vector is empty, contains a
// negative / non-finite entry, or sums to zero.
var ErrBadWeights = errors.New("rng: weights must be non-negative, finite, and sum to a positive value")

// ValidateWeights checks that w is a usable weight vector (non-empty,
// non-negative, finite entries, positive finite sum) and returns its sum —
// the value CategoricalTrusted expects. It is the construction-boundary
// validation for callers that then draw through the trusted fast paths.
func ValidateWeights(w []float64) (float64, error) { return validateWeights(w) }

// validateWeights checks w and returns its sum.
func validateWeights(w []float64) (float64, error) {
	if len(w) == 0 {
		return 0, ErrBadWeights
	}
	sum := 0.0
	for _, x := range w {
		if x < 0 || math.IsNaN(x) || math.IsInf(x, 0) {
			return 0, ErrBadWeights
		}
		sum += x
	}
	if sum <= 0 || math.IsInf(sum, 0) {
		return 0, ErrBadWeights
	}
	return sum, nil
}

// Categorical draws one index from the (unnormalised, non-negative) weight
// vector w by a linear inverse-CDF scan: O(len(w)) per draw. This is the
// "naive" sampling mode; the paper's IS baseline uses exactly this over the
// whole pool, which is why it scales linearly in the pool size (Table 3).
func (r *RNG) Categorical(w []float64) (int, error) {
	sum, err := validateWeights(w)
	if err != nil {
		return 0, err
	}
	u := r.Float64() * sum
	acc := 0.0
	for i, x := range w {
		acc += x
		if u < acc {
			return i, nil
		}
	}
	// Floating-point slack: return the last index with positive weight.
	for i := len(w) - 1; i >= 0; i-- {
		if w[i] > 0 {
			return i, nil
		}
	}
	return 0, ErrBadWeights
}

// CategoricalTrusted is Categorical without the per-draw validation scan,
// for sampler-owned weight vectors that were validated (and summed) once at
// a construction boundary: sum must be Σw as validateWeights would compute
// it, so the draw distribution is identical to Categorical's. The scan is
// still O(len(w)) — use a prepared Cumulative or Alias sampler when draws
// dominate rebuilds.
func (r *RNG) CategoricalTrusted(w []float64, sum float64) int {
	u := r.Float64() * sum
	acc := 0.0
	for i, x := range w {
		acc += x
		if u < acc {
			return i
		}
	}
	for i := len(w) - 1; i >= 0; i-- {
		if w[i] > 0 {
			return i
		}
	}
	return 0
}

// Cumulative is a prepared inverse-CDF sampler over a fixed weight vector.
// Preparation is O(n); each draw is O(log n) by binary search. It is used for
// the per-iteration stratum draw in OASIS where n = K is small.
type Cumulative struct {
	cum []float64
	sum float64
}

// NewCumulative prepares an inverse-CDF sampler for weights w.
func NewCumulative(w []float64) (*Cumulative, error) {
	c := &Cumulative{}
	if err := c.Reset(w); err != nil {
		return nil, err
	}
	return c, nil
}

// Reset re-prepares the sampler over new weights in place, reusing the
// cumulative buffer once its capacity suffices (zero allocations at a fixed
// category count). Validation runs here — the construction boundary — which
// keeps Draw validation-free: a Cumulative refreshed with Reset after every
// weight change draws the exact same index sequence as Categorical on the
// same stream (both invert the identically accumulated CDF on one Float64),
// in O(log n) instead of O(n) with a per-draw validation scan.
func (c *Cumulative) Reset(w []float64) error {
	sum, err := validateWeights(w)
	if err != nil {
		return err
	}
	if cap(c.cum) < len(w) {
		c.cum = make([]float64, len(w))
	}
	c.cum = c.cum[:len(w)]
	acc := 0.0
	for i, x := range w {
		acc += x
		c.cum[i] = acc
	}
	c.sum = sum
	return nil
}

// N returns the number of categories.
func (c *Cumulative) N() int { return len(c.cum) }

// Sum returns the total weight Σw of the prepared distribution.
func (c *Cumulative) Sum() float64 { return c.sum }

// Draw samples one index: the smallest i with cum[i] > u, exactly the index
// Categorical picks from the same variate.
func (c *Cumulative) Draw(r *RNG) int {
	u := r.Float64() * c.sum
	var lo int
	if len(c.cum) <= 64 {
		// Forward scan with early exit: for small category counts (OASIS
		// strata, K ≈ 30) this beats a binary search — the cumulative array
		// sits on one or two cache lines and the scan costs a single
		// misprediction at the boundary, where every level of the binary
		// search is a coin-flip branch.
		lo = len(c.cum) - 1
		for i, x := range c.cum {
			if u < x {
				lo = i
				break
			}
		}
	} else {
		hi := len(c.cum) - 1
		for lo < hi {
			mid := (lo + hi) / 2
			if c.cum[mid] <= u {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
	}
	// Floating-point slack: when u lands at or beyond the accumulated total,
	// step down to the last positive-weight category (equal adjacent
	// cumulative values mark zero weights), matching Categorical exactly.
	for lo > 0 && c.cum[lo] == c.cum[lo-1] {
		lo--
	}
	return lo
}

// Alias is a Walker/Vose alias sampler over a fixed discrete distribution.
// Preparation is O(n); each draw is O(1). It is used for the "fast" IS mode
// so that full-scale error-curve sweeps are feasible; the distribution of
// draws is identical to the naive mode.
type Alias struct {
	prob  []float64
	alias []int32
}

// NewAlias prepares an alias sampler for the (unnormalised) weights w.
func NewAlias(w []float64) (*Alias, error) {
	sum, err := validateWeights(w)
	if err != nil {
		return nil, err
	}
	n := len(w)
	a := &Alias{
		prob:  make([]float64, n),
		alias: make([]int32, n),
	}
	scaled := make([]float64, n)
	small := make([]int32, 0, n)
	large := make([]int32, 0, n)
	for i, x := range w {
		scaled[i] = x * float64(n) / sum
		if scaled[i] < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		a.prob[s] = scaled[s]
		a.alias[s] = l
		scaled[l] = (scaled[l] + scaled[s]) - 1
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	for _, i := range large {
		a.prob[i] = 1
		a.alias[i] = i
	}
	for _, i := range small {
		// Can only happen via floating-point round-off.
		a.prob[i] = 1
		a.alias[i] = i
	}
	return a, nil
}

// N returns the number of categories.
func (a *Alias) N() int { return len(a.prob) }

// Draw samples one index in O(1).
func (a *Alias) Draw(r *RNG) int {
	i := r.Intn(len(a.prob))
	if r.Float64() < a.prob[i] {
		return i
	}
	return int(a.alias[i])
}
