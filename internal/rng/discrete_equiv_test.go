package rng

// Equivalence and reuse tests for the prepared/trusted sampling fast paths
// introduced for the OASIS hot loop: Cumulative.Draw must pick the exact
// index Categorical would from the same variate (the core sampler's golden
// sequence depends on it), Reset must reuse its buffer, and
// CategoricalTrusted must match Categorical draw-for-draw.

import (
	"math"
	"testing"
)

// randWeights builds a weight vector with occasional zero entries (including
// leading and trailing zeros, the floating-point-slack edge cases).
func randWeights(r *RNG, n int) []float64 {
	w := make([]float64, n)
	for i := range w {
		if r.Float64() < 0.25 {
			w[i] = 0
		} else {
			w[i] = r.Float64() * 10
		}
	}
	if n > 2 {
		w[0] = 0
		w[n-1] = 0
	}
	w[n/2] += 1e-9 // ensure positive mass
	return w
}

// TestCumulativeMatchesCategoricalExactly: same stream, same weights — the
// prepared sampler and the naive scan must return identical index sequences,
// across small (scan) and large (binary search) category counts.
func TestCumulativeMatchesCategoricalExactly(t *testing.T) {
	for _, n := range []int{1, 2, 7, 30, 64, 65, 500} {
		setup := New(uint64(n))
		w := randWeights(setup, n)
		c, err := NewCumulative(w)
		if err != nil {
			t.Fatal(err)
		}
		r1, r2 := New(42), New(42)
		for i := 0; i < 20_000; i++ {
			want, err := r1.Categorical(w)
			if err != nil {
				t.Fatal(err)
			}
			if got := c.Draw(r2); got != want {
				t.Fatalf("n=%d draw %d: Cumulative %d != Categorical %d", n, i, got, want)
			}
		}
	}
}

// TestCategoricalTrustedMatchesCategorical: the no-validate fast path is
// draw-for-draw identical when handed the validated sum.
func TestCategoricalTrustedMatchesCategorical(t *testing.T) {
	setup := New(7)
	w := randWeights(setup, 40)
	sum, err := ValidateWeights(w)
	if err != nil {
		t.Fatal(err)
	}
	r1, r2 := New(99), New(99)
	for i := 0; i < 20_000; i++ {
		want, err := r1.Categorical(w)
		if err != nil {
			t.Fatal(err)
		}
		if got := r2.CategoricalTrusted(w, sum); got != want {
			t.Fatalf("draw %d: trusted %d != validated %d", i, got, want)
		}
	}
}

// TestCumulativeReset: re-preparing over new weights draws from the new
// distribution, reuses the buffer at fixed capacity, and still validates.
func TestCumulativeReset(t *testing.T) {
	c, err := NewCumulative([]float64{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Reset([]float64{0, 0, 5}); err != nil {
		t.Fatal(err)
	}
	r := New(1)
	for i := 0; i < 100; i++ {
		if got := c.Draw(r); got != 2 {
			t.Fatalf("after Reset to point mass on 2, drew %d", got)
		}
	}
	if got, want := c.Sum(), 5.0; got != want {
		t.Fatalf("Sum = %v, want %v", got, want)
	}
	if err := c.Reset([]float64{1, math.NaN()}); err == nil {
		t.Fatal("Reset accepted NaN weights")
	}
	if err := c.Reset([]float64{}); err == nil {
		t.Fatal("Reset accepted empty weights")
	}
	// Shrinking reuses capacity; growing reallocates; both stay correct.
	if err := c.Reset([]float64{3}); err != nil {
		t.Fatal(err)
	}
	if c.N() != 1 || c.Draw(r) != 0 {
		t.Fatal("Reset to single category broken")
	}
	if err := c.Reset([]float64{1, 2, 3, 4, 5, 6}); err != nil {
		t.Fatal(err)
	}
	if c.N() != 6 {
		t.Fatalf("N = %d after growing Reset, want 6", c.N())
	}
}

// TestRestoreRejectsZeroState: the all-zero xoshiro256** state (the
// generator's one invalid state, reachable only through a corrupted
// snapshot) must be rejected without touching the generator.
func TestRestoreRejectsZeroState(t *testing.T) {
	r := New(5)
	want := r.State()
	if err := r.Restore(State{}); err != ErrBadState {
		t.Fatalf("Restore of zero state: err = %v, want ErrBadState", err)
	}
	if r.State() != want {
		t.Fatal("failed Restore mutated the generator")
	}
	if err := r.Restore(want); err != nil {
		t.Fatalf("Restore of valid state: %v", err)
	}
}

// TestValidateWeights pins the exported construction-boundary validator.
func TestValidateWeights(t *testing.T) {
	if _, err := ValidateWeights(nil); err == nil {
		t.Fatal("accepted empty weights")
	}
	if _, err := ValidateWeights([]float64{1, -1}); err == nil {
		t.Fatal("accepted negative weight")
	}
	if _, err := ValidateWeights([]float64{math.Inf(1)}); err == nil {
		t.Fatal("accepted infinite weight")
	}
	sum, err := ValidateWeights([]float64{1.5, 2.5})
	if err != nil || sum != 4 {
		t.Fatalf("sum = %v, err = %v", sum, err)
	}
}
