package textutil

import (
	"math"
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestNormalize(t *testing.T) {
	cases := []struct{ in, want string }{
		{"Hello, World!", "hello world"},
		{"  Café  Déjà-Vu ", "cafe deja vu"},
		{"ABC123", "abc123"},
		{"", ""},
		{"!!!", ""},
		{"Sony   DSC-W350", "sony dsc w350"},
		{"Müller & Söhne GmbH.", "muller sohne gmbh"},
		{"ŠKODA Octavia", "skoda octavia"},
	}
	for _, c := range cases {
		if got := Normalize(c.in); got != c.want {
			t.Errorf("Normalize(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestNormalizeIdempotentProperty(t *testing.T) {
	f := func(s string) bool {
		once := Normalize(s)
		return Normalize(once) == once
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormalizeOutputAlphabetProperty(t *testing.T) {
	f := func(s string) bool {
		for _, r := range Normalize(s) {
			ok := (r >= 'a' && r <= 'z') || (r >= '0' && r <= '9') || r == ' '
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTokens(t *testing.T) {
	got := Tokens("alpha beta  gamma")
	want := []string{"alpha", "beta", "gamma"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Tokens = %v", got)
	}
	if len(Tokens("")) != 0 {
		t.Error("empty string should yield no tokens")
	}
}

func TestNGrams(t *testing.T) {
	got := NGrams("ab", 2)
	want := []string{"#a", "ab", "b#"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("NGrams(ab,2) = %v, want %v", got, want)
	}
	if g := NGrams("", 3); g != nil {
		t.Errorf("NGrams of empty = %v", g)
	}
	if g := NGrams("abc", 0); g != nil {
		t.Errorf("NGrams with n=0 = %v", g)
	}
	tri := Trigrams("cat")
	wantTri := []string{"##c", "#ca", "at#", "cat", "t##"}
	if !reflect.DeepEqual(tri, wantTri) {
		t.Errorf("Trigrams(cat) = %v, want %v", tri, wantTri)
	}
}

func TestNGramsSortedUniqueProperty(t *testing.T) {
	f := func(s string, nRaw uint8) bool {
		n := int(nRaw%4) + 1
		g := NGrams(s, n)
		if !sort.StringsAreSorted(g) {
			return false
		}
		for i := 1; i < len(g); i++ {
			if g[i] == g[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTermCounts(t *testing.T) {
	got := TermCounts("a b a c a")
	if got["a"] != 3 || got["b"] != 1 || got["c"] != 1 {
		t.Errorf("TermCounts = %v", got)
	}
}

func TestCorpusIDF(t *testing.T) {
	c := NewCorpus([]string{"apple banana", "apple cherry", "apple"})
	if c.Docs() != 3 {
		t.Fatalf("Docs = %d", c.Docs())
	}
	// "apple" appears in all docs → lowest idf; unseen term → highest.
	if !(c.IDF("apple") < c.IDF("banana")) {
		t.Error("idf(apple) should be < idf(banana)")
	}
	if !(c.IDF("banana") < c.IDF("zebra")) {
		t.Error("idf(banana) should be < idf(unseen)")
	}
	if c.IDF("zebra") <= 0 {
		t.Error("unseen idf should stay positive")
	}
}

func TestCorpusVectorNormalised(t *testing.T) {
	c := NewCorpus([]string{"red green blue", "red red green", "blue"})
	v := c.Vector("red green green blue")
	if len(v) != 3 {
		t.Fatalf("vector terms = %v", v)
	}
	norm := 0.0
	for _, w := range v {
		norm += w * w
	}
	if math.Abs(norm-1) > 1e-9 {
		t.Errorf("vector not unit-norm: %v", norm)
	}
	empty := c.Vector("")
	if len(empty) != 0 {
		t.Errorf("empty doc vector = %v", empty)
	}
}

func TestCorpusVectorRepeatedTermsWeighMore(t *testing.T) {
	c := NewCorpus([]string{"x y", "x z", "y z"})
	v := c.Vector("x x y")
	if !(v["x"] > v["y"]) {
		t.Errorf("tf weighting broken: %v", v)
	}
}

func TestAddDocIncremental(t *testing.T) {
	c := NewCorpus(nil)
	if c.Docs() != 0 {
		t.Fatal("fresh corpus should be empty")
	}
	c.AddDoc("alpha beta")
	c.AddDoc("alpha")
	if c.Docs() != 2 {
		t.Errorf("Docs = %d", c.Docs())
	}
	if !(c.IDF("alpha") < c.IDF("beta")) {
		t.Error("idf ordering after incremental adds")
	}
}

func TestNormalizeLongInput(t *testing.T) {
	in := strings.Repeat("Ab1! ", 10000)
	out := Normalize(in)
	if want := strings.TrimRight(strings.Repeat("ab1 ", 10000), " "); out != want {
		t.Error("long input normalisation mismatch")
	}
}
