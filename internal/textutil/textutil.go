// Package textutil implements the string pre-processing used by the ER
// pipeline of the paper's §6.1.2: normalisation (symbol, accent and case
// removal), tokenisation, character n-gram extraction and a tf-idf corpus
// model for long-text cosine similarity.
package textutil

import (
	"math"
	"sort"
	"strings"
	"unicode"
)

// accentFold maps common accented Latin letters to their ASCII base form.
// The paper normalises strings by "removing symbols, accents &
// capitalisation"; this table covers the Latin-1 / Latin Extended-A
// characters the synthetic generators can emit.
var accentFold = map[rune]rune{
	'à': 'a', 'á': 'a', 'â': 'a', 'ã': 'a', 'ä': 'a', 'å': 'a', 'ā': 'a',
	'è': 'e', 'é': 'e', 'ê': 'e', 'ë': 'e', 'ē': 'e', 'ė': 'e',
	'ì': 'i', 'í': 'i', 'î': 'i', 'ï': 'i', 'ī': 'i',
	'ò': 'o', 'ó': 'o', 'ô': 'o', 'õ': 'o', 'ö': 'o', 'ō': 'o', 'ø': 'o',
	'ù': 'u', 'ú': 'u', 'û': 'u', 'ü': 'u', 'ū': 'u',
	'ý': 'y', 'ÿ': 'y',
	'ñ': 'n', 'ń': 'n',
	'ç': 'c', 'ć': 'c', 'č': 'c',
	'ß': 's', 'ś': 's', 'š': 's',
	'ž': 'z', 'ź': 'z', 'ż': 'z',
}

// Normalize lower-cases s, folds accents, replaces every non-alphanumeric
// rune with a space and collapses runs of whitespace. It implements the
// "pre-processing" stage of the paper's ER pipeline.
func Normalize(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	lastSpace := true
	for _, r := range s {
		r = unicode.ToLower(r)
		if folded, ok := accentFold[r]; ok {
			r = folded
		}
		if (r >= 'a' && r <= 'z') || (r >= '0' && r <= '9') {
			b.WriteRune(r)
			lastSpace = false
			continue
		}
		if !lastSpace {
			b.WriteByte(' ')
			lastSpace = true
		}
	}
	return strings.TrimRight(b.String(), " ")
}

// Tokens splits a normalised string into whitespace-delimited tokens.
// Callers should Normalize first; Tokens performs no case folding itself.
func Tokens(s string) []string {
	return strings.Fields(s)
}

// NGrams returns the set of character n-grams of s as a sorted, de-duplicated
// slice. Following common record-linkage practice the string is padded with
// n-1 leading and trailing '#' markers so that prefixes and suffixes are
// represented. An empty string yields an empty set.
func NGrams(s string, n int) []string {
	if n <= 0 || s == "" {
		return nil
	}
	pad := strings.Repeat("#", n-1)
	padded := pad + s + pad
	runes := []rune(padded)
	if len(runes) < n {
		return nil
	}
	set := make(map[string]struct{}, len(runes))
	for i := 0; i+n <= len(runes); i++ {
		set[string(runes[i:i+n])] = struct{}{}
	}
	out := make([]string, 0, len(set))
	for g := range set {
		out = append(out, g)
	}
	sort.Strings(out)
	return out
}

// Trigrams is shorthand for NGrams(s, 3), the unit used by the paper's
// short-text Jaccard features.
func Trigrams(s string) []string { return NGrams(s, 3) }

// TermCounts returns the token → count map of a normalised string.
func TermCounts(s string) map[string]int {
	counts := make(map[string]int)
	for _, tok := range Tokens(s) {
		counts[tok]++
	}
	return counts
}

// Corpus is a tf-idf model over a collection of documents. Build it with
// NewCorpus, then obtain sparse tf-idf vectors with Vector. Inverse document
// frequency uses the smoothed form log((1+N)/(1+df)) + 1, so unseen terms
// still receive a positive weight.
type Corpus struct {
	df   map[string]int
	docs int
}

// NewCorpus scans the documents (already-normalised strings) and records
// document frequencies.
func NewCorpus(docs []string) *Corpus {
	c := &Corpus{df: make(map[string]int)}
	for _, d := range docs {
		c.AddDoc(d)
	}
	return c
}

// AddDoc incorporates one more document into the document-frequency table.
func (c *Corpus) AddDoc(doc string) {
	seen := make(map[string]struct{})
	for _, tok := range Tokens(doc) {
		seen[tok] = struct{}{}
	}
	for tok := range seen {
		c.df[tok]++
	}
	c.docs++
}

// Docs returns the number of documents scanned.
func (c *Corpus) Docs() int { return c.docs }

// IDF returns the smoothed inverse document frequency of term.
func (c *Corpus) IDF(term string) float64 {
	df := c.df[term]
	return math.Log(float64(1+c.docs)/float64(1+df)) + 1
}

// Vector returns the L2-normalised tf-idf vector of doc as a sparse
// term → weight map. The zero document yields an empty map.
func (c *Corpus) Vector(doc string) map[string]float64 {
	counts := TermCounts(doc)
	if len(counts) == 0 {
		return map[string]float64{}
	}
	vec := make(map[string]float64, len(counts))
	norm := 0.0
	for term, n := range counts {
		w := float64(n) * c.IDF(term)
		vec[term] = w
		norm += w * w
	}
	norm = math.Sqrt(norm)
	if norm > 0 {
		for term := range vec {
			vec[term] /= norm
		}
	}
	return vec
}
