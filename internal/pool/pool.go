// Package pool defines the evaluation pool — the interface between the ER
// pipeline and the sampling/estimation algorithms. A Pool holds, for every
// candidate record pair z in P: the similarity score s(z), the predicted
// label l̂(z) = 1[z ∈ R̂], and the oracle probability p(1|z) from which true
// labels are drawn (Definition 4 of the paper). With a deterministic oracle
// p(1|z) ∈ {0, 1}; the general case supports the noisy oracles the theory
// allows.
//
// Ground-truth population quantities (F-measure, precision, recall) are
// computed in expectation over the oracle distribution, which coincides with
// the usual count-based definitions for deterministic oracles.
package pool

import (
	"errors"
	"fmt"
	"math"
)

// Pool is an evaluation pool of N record pairs.
type Pool struct {
	// Name labels the pool in reports.
	Name string
	// Scores holds the similarity score of each pair.
	Scores []float64
	// Preds holds the predicted label of each pair.
	Preds []bool
	// TruthProb holds the oracle probability p(1|z) of each pair.
	TruthProb []float64
	// Probabilistic records whether Scores are (approximately) calibrated
	// probabilities in [0, 1] (Definition 3). Uncalibrated scores are mapped
	// through a logistic transform wherever probabilities are needed.
	Probabilistic bool
	// Threshold is the score threshold τ used by the logistic mapping of
	// uncalibrated scores (Algorithm 2 line 4). For margin classifiers this
	// is 0, the decision boundary.
	Threshold float64
}

// ErrEmptyPool is returned for pools with no pairs.
var ErrEmptyPool = errors.New("pool: empty pool")

// Validate checks internal consistency.
func (p *Pool) Validate() error {
	n := len(p.Scores)
	if n == 0 {
		return ErrEmptyPool
	}
	if len(p.Preds) != n || len(p.TruthProb) != n {
		return fmt.Errorf("pool: length mismatch: scores=%d preds=%d truth=%d",
			n, len(p.Preds), len(p.TruthProb))
	}
	for i, s := range p.Scores {
		if math.IsNaN(s) || math.IsInf(s, 0) {
			return fmt.Errorf("pool: non-finite score at %d", i)
		}
	}
	for i, q := range p.TruthProb {
		if q < 0 || q > 1 || math.IsNaN(q) {
			return fmt.Errorf("pool: oracle probability out of [0,1] at %d: %v", i, q)
		}
	}
	return nil
}

// N returns the number of pairs in the pool.
func (p *Pool) N() int { return len(p.Scores) }

// NumPredPositives counts pairs with a positive prediction.
func (p *Pool) NumPredPositives() int {
	n := 0
	for _, pr := range p.Preds {
		if pr {
			n++
		}
	}
	return n
}

// ExpectedMatches returns Σ p(1|z), the expected number of true matches.
func (p *Pool) ExpectedMatches() float64 {
	s := 0.0
	for _, q := range p.TruthProb {
		s += q
	}
	return s
}

// ImbalanceRatio returns the expected (#non-match : #match) ratio.
func (p *Pool) ImbalanceRatio() float64 {
	m := p.ExpectedMatches()
	if m == 0 {
		return math.Inf(1)
	}
	return (float64(p.N()) - m) / m
}

// ExpectedConfusion returns the expected TP, FP, FN counts under the oracle
// distribution. For a deterministic oracle these are the exact counts.
func (p *Pool) ExpectedConfusion() (tp, fp, fn float64) {
	for i, q := range p.TruthProb {
		if p.Preds[i] {
			tp += q
			fp += 1 - q
		} else {
			fn += q
		}
	}
	return tp, fp, fn
}

// TrueFMeasure returns the population F-measure target (Eqn. 1 in the limit
// T→∞): TP / (α(TP+FP) + (1−α)(TP+FN)). It returns NaN when undefined
// (no predicted positives and no expected matches).
func (p *Pool) TrueFMeasure(alpha float64) float64 {
	tp, fp, fn := p.ExpectedConfusion()
	den := alpha*(tp+fp) + (1-alpha)*(tp+fn)
	if den == 0 {
		return math.NaN()
	}
	return tp / den
}

// TruePrecision returns the population precision (α = 1).
func (p *Pool) TruePrecision() float64 { return p.TrueFMeasure(1) }

// TrueRecall returns the population recall (α = 0).
func (p *Pool) TrueRecall() float64 { return p.TrueFMeasure(0) }

// ProbScore returns the score of pair i mapped to a probability in [0, 1]:
// the raw score if the pool is calibrated (clamped), otherwise the logistic
// transform sigmoid(score − τ) of Algorithm 2.
func (p *Pool) ProbScore(i int) float64 {
	s := p.Scores[i]
	if p.Probabilistic {
		if s < 0 {
			return 0
		}
		if s > 1 {
			return 1
		}
		return s
	}
	return sigmoid(s - p.Threshold)
}

func sigmoid(x float64) float64 {
	if x >= 0 {
		z := math.Exp(-x)
		return 1 / (1 + z)
	}
	z := math.Exp(x)
	return z / (1 + z)
}
