package pool

import (
	"math"
	"testing"
	"testing/quick"
)

func tinyPool() *Pool {
	return &Pool{
		Name:          "tiny",
		Scores:        []float64{0.9, 0.8, 0.3, 0.1, 0.7, 0.2},
		Preds:         []bool{true, true, false, false, true, false},
		TruthProb:     []float64{1, 0, 1, 0, 1, 1},
		Probabilistic: true,
	}
}

func TestValidate(t *testing.T) {
	p := tinyPool()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (&Pool{}).Validate(); err != ErrEmptyPool {
		t.Error("expected ErrEmptyPool")
	}
	bad := tinyPool()
	bad.Preds = bad.Preds[:2]
	if err := bad.Validate(); err == nil {
		t.Error("expected length-mismatch error")
	}
	badScore := tinyPool()
	badScore.Scores[0] = math.NaN()
	if err := badScore.Validate(); err == nil {
		t.Error("expected non-finite score error")
	}
	badProb := tinyPool()
	badProb.TruthProb[0] = 1.5
	if err := badProb.Validate(); err == nil {
		t.Error("expected probability range error")
	}
}

func TestExpectedConfusionDeterministic(t *testing.T) {
	p := tinyPool()
	tp, fp, fn := p.ExpectedConfusion()
	// preds: T T F F T F; truth: 1 0 1 0 1 1
	if tp != 2 || fp != 1 || fn != 2 {
		t.Errorf("confusion = %v %v %v, want 2 1 2", tp, fp, fn)
	}
}

func TestTrueMeasures(t *testing.T) {
	p := tinyPool()
	// precision = 2/3, recall = 2/4, F_1/2 = tp/(0.5(tp+fp)+0.5(tp+fn)).
	if got := p.TruePrecision(); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("precision = %v", got)
	}
	if got := p.TrueRecall(); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("recall = %v", got)
	}
	wantF := 2.0 / (0.5*3 + 0.5*4)
	if got := p.TrueFMeasure(0.5); math.Abs(got-wantF) > 1e-12 {
		t.Errorf("F = %v, want %v", got, wantF)
	}
}

func TestFMeasureHarmonicIdentity(t *testing.T) {
	// F_{1/2} must equal the harmonic mean of precision and recall.
	p := tinyPool()
	prec, rec := p.TruePrecision(), p.TrueRecall()
	hm := 2 * prec * rec / (prec + rec)
	if got := p.TrueFMeasure(0.5); math.Abs(got-hm) > 1e-12 {
		t.Errorf("F = %v, harmonic mean = %v", got, hm)
	}
}

func TestTrueFMeasureUndefined(t *testing.T) {
	p := &Pool{
		Scores:    []float64{0.5},
		Preds:     []bool{false},
		TruthProb: []float64{0},
	}
	if got := p.TrueFMeasure(0.5); !math.IsNaN(got) {
		t.Errorf("expected NaN, got %v", got)
	}
}

func TestNoisyOracleTarget(t *testing.T) {
	// With oracle probabilities strictly inside (0,1), the expected
	// confusion interpolates.
	p := &Pool{
		Scores:    []float64{0.5, 0.5},
		Preds:     []bool{true, false},
		TruthProb: []float64{0.7, 0.2},
	}
	tp, fp, fn := p.ExpectedConfusion()
	if math.Abs(tp-0.7) > 1e-12 || math.Abs(fp-0.3) > 1e-12 || math.Abs(fn-0.2) > 1e-12 {
		t.Errorf("confusion = %v %v %v", tp, fp, fn)
	}
}

func TestImbalanceRatio(t *testing.T) {
	p := tinyPool()
	// 4 expected matches of 6 pairs → (6-4)/4 = 0.5.
	if got := p.ImbalanceRatio(); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("imbalance = %v", got)
	}
	empty := &Pool{Scores: []float64{0.1}, Preds: []bool{false}, TruthProb: []float64{0}}
	if !math.IsInf(empty.ImbalanceRatio(), 1) {
		t.Error("zero matches should give +Inf imbalance")
	}
}

func TestProbScoreCalibrated(t *testing.T) {
	p := tinyPool()
	for i := range p.Scores {
		if got := p.ProbScore(i); got != p.Scores[i] {
			t.Errorf("calibrated ProbScore[%d] = %v", i, got)
		}
	}
	p.Scores[0] = 1.7 // out of range must clamp
	if got := p.ProbScore(0); got != 1 {
		t.Errorf("clamp high = %v", got)
	}
	p.Scores[0] = -0.2
	if got := p.ProbScore(0); got != 0 {
		t.Errorf("clamp low = %v", got)
	}
}

func TestProbScoreUncalibrated(t *testing.T) {
	p := &Pool{
		Scores:    []float64{-3, 0, 3},
		Preds:     []bool{false, false, true},
		TruthProb: []float64{0, 0, 1},
		Threshold: 0,
	}
	if got := p.ProbScore(1); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("sigmoid(0) = %v", got)
	}
	if !(p.ProbScore(0) < 0.5 && p.ProbScore(2) > 0.5) {
		t.Error("sigmoid ordering broken")
	}
	p.Threshold = 3
	if got := p.ProbScore(2); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("threshold shift: %v", got)
	}
}

func TestProbScoreRangeProperty(t *testing.T) {
	f := func(score float64, calibrated bool, thr float64) bool {
		if math.IsNaN(score) || math.IsInf(score, 0) || math.IsNaN(thr) || math.IsInf(thr, 0) {
			return true
		}
		p := &Pool{
			Scores:        []float64{score},
			Preds:         []bool{true},
			TruthProb:     []float64{1},
			Probabilistic: calibrated,
			Threshold:     thr,
		}
		v := p.ProbScore(0)
		return v >= 0 && v <= 1 && !math.IsNaN(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCounts(t *testing.T) {
	p := tinyPool()
	if p.N() != 6 {
		t.Errorf("N = %d", p.N())
	}
	if p.NumPredPositives() != 3 {
		t.Errorf("pred positives = %d", p.NumPredPositives())
	}
	if p.ExpectedMatches() != 4 {
		t.Errorf("expected matches = %v", p.ExpectedMatches())
	}
}
