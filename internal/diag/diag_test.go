package diag

import (
	"encoding/json"
	"math"
	"reflect"
	"testing"

	"oasis/internal/estimator"
)

// feed pushes n synthetic commit-batch points into s with deterministic
// content derived from the index, so two series fed the same stream must
// be comparable field by field.
func feed(s *Series, n int) {
	for i := 0; i < n; i++ {
		s.Record(syntheticPoint(i))
	}
}

func syntheticPoint(i int) Point {
	return Point{
		Labels:    i + 1,
		WallNanos: int64(1000 + i),
		Estimate:  Float(float64(i) / 1000),
		Variance:  Float(1 / float64(i+1)),
		ESSRatio:  Float(0.9),
		Terms:     i + 1,
	}
}

// referenceSeries is the unoptimized oracle for the downsampling rule:
// simulate the stride doubling over the full stream and return the seqs
// that must remain.
func referenceSeries(n, capacity int) []uint64 {
	stride := uint64(1)
	var kept []uint64
	for seq := uint64(0); seq < uint64(n); seq++ {
		if seq%stride != 0 {
			continue
		}
		kept = append(kept, seq)
		if len(kept) >= capacity {
			stride *= 2
			next := kept[:0]
			for _, s := range kept {
				if s%stride == 0 {
					next = append(next, s)
				}
			}
			kept = next
		}
	}
	return kept
}

func TestDownsamplingGolden(t *testing.T) {
	for _, n := range []int{0, 1, 7, 16, 17, 100, 1000, 12345} {
		for _, capacity := range []int{8, 16, 64, 512} {
			s := NewSeries(capacity)
			feed(s, n)
			want := referenceSeries(n, capacity)
			got := s.Points()
			if len(got) != len(want) {
				t.Fatalf("n=%d cap=%d: %d points, want %d", n, capacity, len(got), len(want))
			}
			for i, p := range got {
				if p.Seq != want[i] {
					t.Fatalf("n=%d cap=%d point %d: seq %d, want %d", n, capacity, i, p.Seq, want[i])
				}
				if exp := syntheticPoint(int(want[i])); p.Labels != exp.Labels || p.Terms != exp.Terms ||
					p.WallNanos != exp.WallNanos || p.Estimate != exp.Estimate {
					t.Fatalf("n=%d cap=%d point %d: payload does not match seq %d", n, capacity, i, want[i])
				}
			}
			if s.Seen() != uint64(n) {
				t.Fatalf("seen %d, want %d", s.Seen(), n)
			}
		}
	}
}

// Bit-identical: the retained series is a pure function of the commit
// stream, so two independent series fed the same stream agree exactly.
func TestDownsamplingDeterministic(t *testing.T) {
	a, b := NewSeries(32), NewSeries(32)
	feed(a, 5000)
	feed(b, 5000)
	if !reflect.DeepEqual(a.Points(), b.Points()) {
		t.Fatal("same commit stream produced different series")
	}
}

// Strides are powers of two, so the series at capacity C must be a
// subsequence of the series at capacity 2C over the same stream.
func TestCapacitySubsequence(t *testing.T) {
	small, big := NewSeries(16), NewSeries(32)
	feed(small, 3000)
	feed(big, 3000)
	bySeq := map[uint64]Point{}
	for _, p := range big.Points() {
		bySeq[p.Seq] = p
	}
	for _, p := range small.Points() {
		bp, ok := bySeq[p.Seq]
		if !ok {
			t.Fatalf("seq %d in capacity-16 series missing from capacity-32 series", p.Seq)
		}
		if bp != p {
			t.Fatalf("seq %d differs between capacities: %+v vs %+v", p.Seq, p, bp)
		}
	}
}

func TestSeriesBoundedAndMonotone(t *testing.T) {
	s := NewSeries(16)
	feed(s, 100000)
	if s.Len() >= 16 {
		t.Fatalf("series grew to %d, capacity 16", s.Len())
	}
	if s.MemBytes() != 16*pointBytes {
		t.Fatalf("mem %d, want %d", s.MemBytes(), 16*pointBytes)
	}
	pts := s.Points()
	for i := 1; i < len(pts); i++ {
		if pts[i].Seq <= pts[i-1].Seq || pts[i].Labels <= pts[i-1].Labels {
			t.Fatalf("series not monotone at %d: %+v then %+v", i, pts[i-1], pts[i])
		}
	}
}

func TestSeriesSnapshotRoundTrip(t *testing.T) {
	s := NewSeries(16)
	feed(s, 777)
	b1, err := json.Marshal(s.State())
	if err != nil {
		t.Fatal(err)
	}
	var st SeriesState
	if err := json.Unmarshal(b1, &st); err != nil {
		t.Fatal(err)
	}
	r, err := RestoreSeries(st)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := json.Marshal(r.State())
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Fatalf("snapshot not byte-stable:\n%s\n%s", b1, b2)
	}
	// The restored series must continue exactly like the original.
	for i := 777; i < 3000; i++ {
		p := syntheticPoint(i)
		s.Record(p)
		r.Record(p)
	}
	if !reflect.DeepEqual(s.Points(), r.Points()) {
		t.Fatal("restored series diverged from original after more commits")
	}
}

func TestRestoreSeriesValidation(t *testing.T) {
	good := func() SeriesState {
		s := NewSeries(16)
		feed(s, 100)
		return s.State()
	}
	cases := map[string]func(*SeriesState){
		"odd capacity":    func(st *SeriesState) { st.Capacity = 15 },
		"tiny capacity":   func(st *SeriesState) { st.Capacity = 2 },
		"non-pow2 stride": func(st *SeriesState) { st.Stride = 3 },
		"zero stride":     func(st *SeriesState) { st.Stride = 0 },
		"off-grid seq":    func(st *SeriesState) { st.Points[1].Seq++ },
		"non-increasing":  func(st *SeriesState) { st.Points[1].Seq = st.Points[0].Seq },
		"seq beyond next": func(st *SeriesState) { st.Points[len(st.Points)-1].Seq = st.Next + st.Stride*8 },
		"overfull":        func(st *SeriesState) { st.Capacity = MinCapacity },
	}
	for name, corrupt := range cases {
		st := good()
		corrupt(&st)
		if _, err := RestoreSeries(st); err == nil {
			t.Errorf("%s: restore accepted a corrupt snapshot", name)
		}
	}
	if _, err := RestoreSeries(good()); err != nil {
		t.Fatalf("valid snapshot rejected: %v", err)
	}
}

func TestFloatJSONRoundTrip(t *testing.T) {
	in := []Float{Float(math.NaN()), Float(math.Inf(1)), Float(math.Inf(-1)), 0.25, 0}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != "[null,null,null,0.25,0]" {
		t.Fatalf("unexpected encoding %s", b)
	}
	var out []Float
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(float64(out[0])) || !math.IsNaN(float64(out[1])) || out[3] != 0.25 {
		t.Fatalf("round trip mangled values: %v", out)
	}
}

func trackerPoint(labels int, essRatio, variance float64) Point {
	return Point{Labels: labels, ESSRatio: Float(essRatio), Variance: Float(variance), Terms: labels}
}

func TestTrackerESSTransitions(t *testing.T) {
	tr := NewTracker(64, Thresholds{ESSDegraded: 0.5, ESSDegenerate: 0.1, MinLabels: 10, VarGrowth: -1})
	// Warm-up: even a collapsed ratio stays ok below MinLabels.
	if st, changed := tr.Record(trackerPoint(5, 0.01, 1)); st != StateOK || changed {
		t.Fatalf("warm-up: got %v changed=%v", st, changed)
	}
	st, changed := tr.Record(trackerPoint(20, 0.4, 1))
	if st != StateDegraded || !changed {
		t.Fatalf("degraded: got %v changed=%v", st, changed)
	}
	st, changed = tr.Record(trackerPoint(21, 0.4, 1))
	if st != StateDegraded || changed {
		t.Fatalf("repeat degraded must not re-fire: got %v changed=%v", st, changed)
	}
	st, changed = tr.Record(trackerPoint(30, 0.05, 1))
	if st != StateDegenerate || !changed {
		t.Fatalf("degenerate: got %v changed=%v", st, changed)
	}
	st, changed = tr.Record(trackerPoint(40, 0.9, 1))
	if st != StateOK || !changed {
		t.Fatalf("recovery: got %v changed=%v", st, changed)
	}
	// NaN ratio (no terms yet) must not alarm.
	if st, _ := tr.Record(trackerPoint(50, math.NaN(), 1)); st != StateOK {
		t.Fatalf("NaN ratio alarmed: %v", st)
	}
}

func TestTrackerVarianceGrowth(t *testing.T) {
	th := Thresholds{ESSDegraded: -1, ESSDegenerate: -1, VarGrowth: 2, VarWindow: 4, MinLabels: 1}
	tr := NewTracker(64, th)
	for i := 0; i < 10; i++ {
		if st, _ := tr.Record(trackerPoint(i+1, 0.9, 1.0)); st != StateOK {
			t.Fatalf("flat variance alarmed at %d", i)
		}
	}
	// Variance jumps 3x over the window: degraded.
	st, changed := tr.Record(trackerPoint(11, 0.9, 3.0))
	if st != StateDegraded || !changed {
		t.Fatalf("variance growth: got %v changed=%v", st, changed)
	}
}

func TestTrackerSnapshotRoundTrip(t *testing.T) {
	tr := NewTracker(16, Thresholds{ESSDegraded: 0.5, MinLabels: 1})
	for i := 0; i < 200; i++ {
		tr.Record(trackerPoint(i+1, 0.4, 1))
	}
	if tr.State() != StateDegraded {
		t.Fatalf("setup: state %v", tr.State())
	}
	b, err := json.Marshal(tr.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var st TrackerState
	if err := json.Unmarshal(b, &st); err != nil {
		t.Fatal(err)
	}
	r, err := RestoreTracker(&st, Thresholds{ESSDegraded: 0.5, MinLabels: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.State() != StateDegraded {
		t.Fatalf("restored state %v, want degraded", r.State())
	}
	if !reflect.DeepEqual(r.Series().Points(), tr.Series().Points()) {
		t.Fatal("restored series differs")
	}
	bad := st
	bad.State = 99
	if _, err := RestoreTracker(&bad, Thresholds{}); err == nil {
		t.Fatal("invalid health state accepted")
	}
}

func TestThresholdDefaults(t *testing.T) {
	th := Thresholds{}.WithDefaults()
	if th != DefaultThresholds {
		t.Fatalf("zero thresholds did not take defaults: %+v", th)
	}
	custom := Thresholds{ESSDegraded: 0.7, MinLabels: 3}.WithDefaults()
	if custom.ESSDegraded != 0.7 || custom.MinLabels != 3 || custom.ESSDegenerate != DefaultThresholds.ESSDegenerate {
		t.Fatalf("partial thresholds merged wrong: %+v", custom)
	}
}

func TestHealthStateString(t *testing.T) {
	if StateOK.String() != "ok" || StateDegraded.String() != "degraded" || StateDegenerate.String() != "degenerate" {
		t.Fatal("state names changed; metrics and logs depend on them")
	}
}

// ESS edge cases: zero labels, a single stratum holding all mass, and
// all-zero weights must yield finite rows (ESS 0, NaN shares where the
// denominators vanish), never ±Inf.
func TestStrataHealthEdgeCases(t *testing.T) {
	// Zero labels anywhere.
	rows := StrataHealth([]int64{0, 0}, []float64{0, 0}, []float64{0, 0}, []float64{0.5, 0.5})
	for _, r := range rows {
		if float64(r.ESS) != 0 {
			t.Fatalf("zero-label stratum ESS %v, want 0", r.ESS)
		}
		if !math.IsNaN(float64(r.WeightShare)) || !math.IsNaN(float64(r.DrawShare)) || !math.IsNaN(float64(r.Skew)) {
			t.Fatalf("zero-label shares should be NaN: %+v", r)
		}
	}

	// Single stratum: ESS equals draws for unit weights, shares are 1.
	rows = StrataHealth([]int64{4}, []float64{4}, []float64{4}, []float64{1})
	if got := float64(rows[0].ESS); got != 4 {
		t.Fatalf("single-stratum ESS %v, want 4", got)
	}
	if float64(rows[0].WeightShare) != 1 || float64(rows[0].DrawShare) != 1 || float64(rows[0].Skew) != 1 {
		t.Fatalf("single-stratum shares: %+v", rows[0])
	}

	// All-zero weights with draws present (degenerate instrumental): ESS 0,
	// weight shares NaN, draw share still defined.
	rows = StrataHealth([]int64{3, 1}, []float64{0, 0}, []float64{0, 0}, []float64{0.9, 0.1})
	if float64(rows[0].ESS) != 0 || float64(rows[1].ESS) != 0 {
		t.Fatalf("all-zero-weight ESS: %+v", rows)
	}
	if got := float64(rows[0].DrawShare); got != 0.75 {
		t.Fatalf("draw share %v, want 0.75", got)
	}
	// Zero instrumental probability must not divide: skew NaN.
	rows = StrataHealth([]int64{3, 1}, []float64{1, 1}, []float64{1, 1}, []float64{1, 0})
	if !math.IsNaN(float64(rows[1].Skew)) {
		t.Fatalf("zero-instrumental skew should be NaN: %+v", rows[1])
	}
	// Nil instrumental (passive / unavailable): instrumental columns NaN.
	rows = StrataHealth([]int64{1}, []float64{1}, []float64{1}, nil)
	if !math.IsNaN(float64(rows[0].Instrumental)) || !math.IsNaN(float64(rows[0].Skew)) {
		t.Fatalf("nil instrumental: %+v", rows[0])
	}
}

func TestESSFromEdgeCases(t *testing.T) {
	if got := estimator.ESSFrom(0, 0); got != 0 {
		t.Fatalf("ESSFrom(0,0)=%v", got)
	}
	if got := estimator.ESSFrom(5, 0); got != 0 {
		t.Fatalf("ESSFrom(5,0)=%v", got)
	}
	if got := estimator.ESSFrom(4, 4); got != 4 {
		t.Fatalf("ESSFrom(4,4)=%v", got)
	}
	if got := estimator.ESSFrom(3, -1); got != 0 {
		t.Fatalf("negative sumW2 must clamp to 0, got %v", got)
	}
}
