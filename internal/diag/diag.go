// Package diag records per-session convergence diagnostics for the OASIS
// sampler: a bounded time-series of estimator state (estimate, asymptotic
// variance, ESS ratio) sampled on every commit batch, per-stratum weight
// health, and a degeneracy alarm state machine.
//
// The paper's whole claim is *asymptotic* optimality of the AIS estimate
// (Marchant & Rubinstein, VLDB 2017, Thm. 1); a point-in-time gauge cannot
// show whether a session is converging, oscillating, or degenerating the
// way sequential importance samplers do on the Bezáková et al. negative
// examples. The series here records the trajectory, the tracker turns it
// into an ok/degraded/degenerate health state with configurable ESS-ratio
// and variance-growth thresholds, and everything snapshots byte-for-byte so
// trajectories survive restarts and WAL replay.
//
// Downsampling is deterministic, not reservoir-based: a series of capacity
// C accepts a commit-batch point iff its sequence number is a multiple of
// the current stride; when the buffer fills, the stride doubles and the
// buffer compacts in place to the points on the new grid (exactly half).
// The retained set is therefore a pure function of the commit stream —
// replaying the same commits yields a bit-identical series — and the series
// at capacity C is a subsequence of the series at capacity 2C, because
// strides are powers of two. Memory stays O(C) for any label budget, and
// the hot path is allocation-free after construction: a rejected point is
// one modulus, an accepted one writes into the preallocated ring.
package diag

import (
	"encoding/json"
	"fmt"
	"math"
	"unsafe"

	"oasis/internal/estimator"
)

// DefaultCapacity is the series ring capacity used when none is configured:
// 512 points ≈ 24 KiB per session, enough for a dense estimate±CI sparkline
// at any zoom the dashboard renders.
const DefaultCapacity = 512

// MinCapacity bounds configured capacities from below; halving needs an
// even, non-trivial ring.
const MinCapacity = 8

// Float is a float64 whose JSON form is null for NaN and ±Inf (which
// encoding/json rejects outright). Estimates are NaN while undefined and
// the asymptotic variance is NaN until the weight moments exist, so every
// float that crosses the snapshot or HTTP boundary uses this type. The
// null↔NaN mapping round-trips, keeping snapshot encodes byte-stable.
type Float float64

// MarshalJSON encodes NaN and ±Inf as null, other values as plain numbers.
func (f Float) MarshalJSON() ([]byte, error) {
	v := float64(f)
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return []byte("null"), nil
	}
	return json.Marshal(v)
}

// UnmarshalJSON decodes null as NaN, inverting MarshalJSON.
func (f *Float) UnmarshalJSON(b []byte) error {
	if string(b) == "null" {
		*f = Float(math.NaN())
		return nil
	}
	var v float64
	if err := json.Unmarshal(b, &v); err != nil {
		return err
	}
	*f = Float(v)
	return nil
}

// Point is one sample of estimator state, recorded after a commit batch.
type Point struct {
	// Seq is the commit-batch sequence number (0-based) the point was
	// recorded at; the downsampling grid runs over this axis.
	Seq uint64 `json:"seq"`
	// Labels is the session's distinct committed label count at record
	// time — the natural x-axis for convergence plots, monotone by
	// construction.
	Labels int `json:"labels"`
	// WallNanos is the wall-clock record time in Unix nanoseconds; zero
	// when unknown (points re-recorded during a WAL tail replay from a
	// journal written before events carried timestamps).
	WallNanos int64 `json:"wall,omitempty"`
	// Estimate is the F-measure estimate (NaN while undefined).
	Estimate Float `json:"estimate"`
	// Variance is the delta-method asymptotic variance term σ̂²;
	// Var(F̂) ≈ σ̂²/Terms. NaN while unavailable.
	Variance Float `json:"variance"`
	// ESSRatio is ESS over estimator terms ∈ (0,1]; NaN before any terms.
	ESSRatio Float `json:"essRatio"`
	// Terms is the number of weighted terms folded into the estimator.
	Terms int `json:"terms"`
}

// pointBytes is the in-memory footprint of one ring slot.
var pointBytes = int(unsafe.Sizeof(Point{}))

// Series is the fixed-capacity downsampling ring. Not safe for concurrent
// use; the owning session guards it with its own mutex.
type Series struct {
	capacity int
	stride   uint64
	next     uint64 // sequence number the next Record call gets
	pts      []Point
}

// NewSeries returns an empty series with the given ring capacity, clamped
// to [MinCapacity, ∞) and rounded up to even so compaction halves exactly.
// capacity <= 0 selects DefaultCapacity.
func NewSeries(capacity int) *Series {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	if capacity < MinCapacity {
		capacity = MinCapacity
	}
	if capacity%2 != 0 {
		capacity++
	}
	return &Series{capacity: capacity, stride: 1, pts: make([]Point, 0, capacity)}
}

// Record offers one point to the series. The point's Seq is assigned here
// (callers leave it zero): points off the current stride grid are counted
// and discarded; points on it enter the ring, compacting it onto a grid of
// twice the stride when full.
func (s *Series) Record(p Point) {
	seq := s.next
	s.next++
	if seq%s.stride != 0 {
		return
	}
	p.Seq = seq
	s.pts = append(s.pts, p)
	if len(s.pts) >= s.capacity {
		s.compact()
	}
}

// compact doubles the stride and keeps, in place, exactly the points on the
// new grid. Every resident point sits on the old grid and the old stride
// divides the new one, so this retains precisely every other point.
func (s *Series) compact() {
	s.stride *= 2
	kept := s.pts[:0]
	for _, p := range s.pts {
		if p.Seq%s.stride == 0 {
			kept = append(kept, p)
		}
	}
	s.pts = kept
}

// Len returns the number of resident points.
func (s *Series) Len() int { return len(s.pts) }

// Stride returns the current downsampling stride (a power of two).
func (s *Series) Stride() uint64 { return s.stride }

// Seen returns how many points have been offered to the series.
func (s *Series) Seen() uint64 { return s.next }

// Points returns a copy of the resident points in recording order.
func (s *Series) Points() []Point {
	return append([]Point(nil), s.pts...)
}

// At returns the i-th resident point (0 = oldest).
func (s *Series) At(i int) Point { return s.pts[i] }

// Last returns the most recent resident point, if any.
func (s *Series) Last() (Point, bool) {
	if len(s.pts) == 0 {
		return Point{}, false
	}
	return s.pts[len(s.pts)-1], true
}

// MemBytes returns the fixed memory footprint of the ring.
func (s *Series) MemBytes() int {
	return cap(s.pts) * pointBytes
}

// SeriesState is the snapshot form of a Series.
type SeriesState struct {
	Capacity int     `json:"capacity"`
	Stride   uint64  `json:"stride"`
	Next     uint64  `json:"next"`
	Points   []Point `json:"points,omitempty"`
}

// State captures the series for a snapshot.
func (s *Series) State() SeriesState {
	return SeriesState{Capacity: s.capacity, Stride: s.stride, Next: s.next, Points: s.Points()}
}

// RestoreSeries rebuilds a series from a snapshot, validating the
// downsampling invariants so a corrupt snapshot fails loudly instead of
// producing a ring that misbehaves forever after.
func RestoreSeries(st SeriesState) (*Series, error) {
	if st.Capacity < MinCapacity || st.Capacity%2 != 0 {
		return nil, fmt.Errorf("diag: snapshot capacity %d invalid", st.Capacity)
	}
	if st.Stride == 0 || st.Stride&(st.Stride-1) != 0 {
		return nil, fmt.Errorf("diag: snapshot stride %d not a power of two", st.Stride)
	}
	if len(st.Points) >= st.Capacity {
		return nil, fmt.Errorf("diag: snapshot holds %d points, capacity %d", len(st.Points), st.Capacity)
	}
	s := &Series{capacity: st.Capacity, stride: st.Stride, next: st.Next, pts: make([]Point, 0, st.Capacity)}
	var lastSeq uint64
	for i, p := range st.Points {
		if p.Seq%st.Stride != 0 {
			return nil, fmt.Errorf("diag: snapshot point seq %d off stride %d", p.Seq, st.Stride)
		}
		if i > 0 && p.Seq <= lastSeq {
			return nil, fmt.Errorf("diag: snapshot seq %d not increasing", p.Seq)
		}
		if p.Seq >= st.Next {
			return nil, fmt.Errorf("diag: snapshot seq %d beyond next %d", p.Seq, st.Next)
		}
		lastSeq = p.Seq
		s.pts = append(s.pts, p)
	}
	return s, nil
}

// HealthState is the degeneracy alarm state of a session.
type HealthState int

const (
	// StateOK: the weight diagnostics are within thresholds (or the
	// session is still inside its warm-up label count).
	StateOK HealthState = iota
	// StateDegraded: the ESS ratio dropped below the degraded threshold,
	// or the asymptotic variance is growing where convergence should be
	// shrinking it — the estimate still moves, but its nominal sample
	// count overstates the information collected.
	StateDegraded
	// StateDegenerate: the ESS ratio collapsed below the degenerate
	// threshold — a few huge weights dominate, the SIS failure mode; the
	// trajectory is no longer trustworthy.
	StateDegenerate
)

// String returns the metric/log label for the state.
func (h HealthState) String() string {
	switch h {
	case StateOK:
		return "ok"
	case StateDegraded:
		return "degraded"
	case StateDegenerate:
		return "degenerate"
	default:
		return fmt.Sprintf("state(%d)", int(h))
	}
}

// Thresholds configures the degeneracy alarms. Zero values select the
// defaults; a negative ESS threshold disables that alarm.
type Thresholds struct {
	// ESSDegraded flips the state to degraded when the ESS ratio drops
	// below it. Default 0.3.
	ESSDegraded float64 `json:"essDegraded"`
	// ESSDegenerate flips the state to degenerate below it. Default 0.05.
	ESSDegenerate float64 `json:"essDegenerate"`
	// VarGrowth flips to degraded when the asymptotic variance exceeds
	// VarGrowth times its value a VarWindow of retained points earlier —
	// under convergence σ̂² stabilises, so sustained growth means the
	// weights are misbehaving even while the ESS ratio looks acceptable.
	// Default 4; values <= 1 disable the alarm.
	VarGrowth float64 `json:"varGrowth"`
	// VarWindow is how many retained points back the variance-growth
	// comparison reaches. Default 16.
	VarWindow int `json:"varWindow"`
	// MinLabels suppresses all alarms until this many labels committed;
	// early-session ESS ratios are noise. Default 50.
	MinLabels int `json:"minLabels"`
	// Hysteresis is the factor a recovering session must clear an ESS
	// threshold by before the alarm steps back down — without it a session
	// hovering at a threshold flaps (and logs) on every batch. Leaving
	// degraded requires ESSRatio >= ESSDegraded*Hysteresis; leaving
	// degenerate likewise. Default 1.2; values < 1 are treated as 1
	// (no hysteresis).
	Hysteresis float64 `json:"hysteresis"`
}

// DefaultThresholds are the alarm defaults described on Thresholds.
var DefaultThresholds = Thresholds{
	ESSDegraded:   0.3,
	ESSDegenerate: 0.05,
	VarGrowth:     4,
	VarWindow:     16,
	MinLabels:     50,
	Hysteresis:    1.2,
}

// WithDefaults fills zero fields from DefaultThresholds.
func (t Thresholds) WithDefaults() Thresholds {
	d := DefaultThresholds
	if t.ESSDegraded == 0 {
		t.ESSDegraded = d.ESSDegraded
	}
	if t.ESSDegenerate == 0 {
		t.ESSDegenerate = d.ESSDegenerate
	}
	if t.VarGrowth == 0 {
		t.VarGrowth = d.VarGrowth
	}
	if t.VarWindow <= 0 {
		t.VarWindow = d.VarWindow
	}
	if t.MinLabels <= 0 {
		t.MinLabels = d.MinLabels
	}
	if t.Hysteresis == 0 {
		t.Hysteresis = d.Hysteresis
	}
	if t.Hysteresis < 1 {
		t.Hysteresis = 1
	}
	return t
}

// Tracker owns one session's series and alarm state. Like Series it is not
// concurrency-safe; the session's mutex guards it.
type Tracker struct {
	series *Series
	th     Thresholds
	state  HealthState
}

// NewTracker builds a tracker with the given ring capacity (<= 0 selects
// DefaultCapacity) and thresholds (zero fields take defaults).
func NewTracker(capacity int, th Thresholds) *Tracker {
	return &Tracker{series: NewSeries(capacity), th: th.WithDefaults()}
}

// Record folds one commit-batch point into the series and re-evaluates the
// alarm state. It returns the state after the point and whether this point
// changed it (transitions fire in both directions: a session whose ESS
// ratio recovers walks back to ok).
func (t *Tracker) Record(p Point) (state HealthState, changed bool) {
	t.series.Record(p)
	next := t.evaluate(p)
	changed = next != t.state
	t.state = next
	return next, changed
}

// evaluate derives the alarm state from the newest point and the retained
// series. It uses only data that snapshots carry, so a restored tracker
// resumes deterministically.
func (t *Tracker) evaluate(p Point) HealthState {
	if p.Labels < t.th.MinLabels {
		return StateOK
	}
	essR := float64(p.ESSRatio)
	if !math.IsNaN(essR) {
		// Raising the bar for leaving a bad state (hysteresis) keeps a
		// session hovering at a threshold from flapping on every batch.
		degen, deg := t.th.ESSDegenerate, t.th.ESSDegraded
		if t.state == StateDegenerate {
			degen *= t.th.Hysteresis
		}
		if t.state >= StateDegraded {
			deg *= t.th.Hysteresis
		}
		if t.th.ESSDegenerate > 0 && essR < degen {
			return StateDegenerate
		}
		if t.th.ESSDegraded > 0 && essR < deg {
			return StateDegraded
		}
	}
	if t.th.VarGrowth > 1 {
		if n := t.series.Len(); n > t.th.VarWindow {
			prev := float64(t.series.At(n - 1 - t.th.VarWindow).Variance)
			cur := float64(p.Variance)
			if !math.IsNaN(prev) && !math.IsNaN(cur) && prev > 0 && cur > t.th.VarGrowth*prev {
				return StateDegraded
			}
		}
	}
	return StateOK
}

// State returns the current alarm state.
func (t *Tracker) State() HealthState { return t.state }

// Thresholds returns the effective (default-filled) thresholds.
func (t *Tracker) Thresholds() Thresholds { return t.th }

// Series returns the underlying series (owned by the tracker; callers must
// hold the session's lock).
func (t *Tracker) Series() *Series { return t.series }

// MemBytes returns the tracker's fixed memory footprint.
func (t *Tracker) MemBytes() int { return t.series.MemBytes() }

// TrackerState is the snapshot form of a Tracker. The alarm state rides
// along so a restore does not re-fire transition logs.
type TrackerState struct {
	Series SeriesState `json:"series"`
	State  int         `json:"state"`
}

// State captures the tracker for a snapshot.
func (t *Tracker) Snapshot() *TrackerState {
	return &TrackerState{Series: t.series.State(), State: int(t.state)}
}

// RestoreTracker rebuilds a tracker from a snapshot under the given
// thresholds (thresholds are configuration, not state: a restart with new
// flags re-evaluates old trajectories under the new rules).
func RestoreTracker(st *TrackerState, th Thresholds) (*Tracker, error) {
	s, err := RestoreSeries(st.Series)
	if err != nil {
		return nil, err
	}
	if st.State < int(StateOK) || st.State > int(StateDegenerate) {
		return nil, fmt.Errorf("diag: snapshot health state %d invalid", st.State)
	}
	return &Tracker{series: s, th: th.WithDefaults(), state: HealthState(st.State)}, nil
}

// StratumHealth is the per-stratum weight diagnostic row: how much
// importance-weight mass a stratum contributed, its local effective sample
// size, and how its realised draw share compares to the instrumental
// allocation the sampler is converging toward.
type StratumHealth struct {
	Stratum int   `json:"stratum"`
	Draws   int64 `json:"draws"`
	// SumW and SumW2 are the stratum's Σw and Σw² over labelled commits.
	SumW  Float `json:"sumW"`
	SumW2 Float `json:"sumW2"`
	// ESS is the stratum-local effective sample size (Σw)²/Σw².
	ESS Float `json:"ess"`
	// WeightShare is the stratum's share of total Σw.
	WeightShare Float `json:"weightShare"`
	// DrawShare is the stratum's share of labelled draws.
	DrawShare Float `json:"drawShare"`
	// Instrumental is the cached instrumental probability v_k the sampler
	// currently allocates to the stratum.
	Instrumental Float `json:"instrumental"`
	// Skew is DrawShare/Instrumental: 1 when sampling matches the current
	// optimal allocation, far from 1 where the realised draws lag the
	// adaptive target (early adaptation, or ε-greedy flooring).
	Skew Float `json:"skew"`
}

// StrataHealth assembles the per-stratum rows from parallel arrays of
// draw counts and weight moments plus the cached instrumental
// distribution (nil when unavailable; the rows then carry NaN there).
func StrataHealth(draws []int64, sumW, sumW2, instrumental []float64) []StratumHealth {
	var totalDraws int64
	totalW := 0.0
	for k := range draws {
		totalDraws += draws[k]
		totalW += sumW[k]
	}
	rows := make([]StratumHealth, len(draws))
	for k := range rows {
		row := StratumHealth{
			Stratum:      k,
			Draws:        draws[k],
			SumW:         Float(sumW[k]),
			SumW2:        Float(sumW2[k]),
			ESS:          Float(estimator.ESSFrom(sumW[k], sumW2[k])),
			WeightShare:  Float(math.NaN()),
			DrawShare:    Float(math.NaN()),
			Instrumental: Float(math.NaN()),
			Skew:         Float(math.NaN()),
		}
		if totalW > 0 {
			row.WeightShare = Float(sumW[k] / totalW)
		}
		if totalDraws > 0 {
			row.DrawShare = Float(float64(draws[k]) / float64(totalDraws))
		}
		if instrumental != nil {
			v := instrumental[k]
			row.Instrumental = Float(v)
			if v > 0 && totalDraws > 0 {
				row.Skew = Float(float64(draws[k]) / float64(totalDraws) / v)
			}
		}
		rows[k] = row
	}
	return rows
}
