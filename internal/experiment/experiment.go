// Package experiment is the evaluation harness behind every table and figure
// of the paper's §6: it runs randomised estimation methods repeatedly against
// a pool, records estimate trajectories indexed by *labels consumed* (the
// paper's budget accounting, footnote 5), and aggregates expected absolute
// error and standard-deviation curves (Figure 2/3), per-run CPU timings
// (Table 3), single-run convergence diagnostics (Figure 4) and fixed-budget
// error summaries with confidence intervals (Figure 5).
package experiment

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"time"

	"oasis/internal/oracle"
	"oasis/internal/pool"
	"oasis/internal/rng"
	"oasis/internal/sampler"
	"oasis/internal/stats"
)

// Factory constructs a fresh method instance for one run. Seeds must fully
// determine the method's randomness so runs are reproducible.
type Factory struct {
	// Name labels the method in outputs ("OASIS 30", "IS", ...).
	Name string
	// New builds the method for a run with the given seed.
	New func(seed uint64) (sampler.Method, error)
}

// RunResult is one run's estimate trajectory sampled at checkpoints.
type RunResult struct {
	// Estimates[c] is the estimate immediately after Checkpoints[c] labels
	// were consumed (NaN where the estimate was undefined, or where the run
	// ended before reaching the checkpoint).
	Estimates []float64
	// LabelsConsumed is the total distinct labels used.
	LabelsConsumed int
	// Iterations is the number of sampler steps taken.
	Iterations int
	// Duration is the wall-clock time of the sampling loop.
	Duration time.Duration
}

// ErrStalled is returned when a method stops consuming budget (safety cap on
// iterations exceeded).
var ErrStalled = errors.New("experiment: method stalled before exhausting the label budget")

// maxIterFactor bounds iterations at maxIterFactor × budget; with-replacement
// sampling revisits cached pairs, but a method that revisits this often is
// effectively stalled.
const maxIterFactor = 200

// RunOne runs method m against the oracle o until `budget` distinct labels
// are consumed (or the pool is exhausted), recording the estimate at each
// checkpoint. Checkpoints must be sorted ascending.
func RunOne(m sampler.Method, o oracle.Oracle, budget int, checkpoints []int) (*RunResult, error) {
	b := oracle.NewBudgeted(o, budget)
	res := &RunResult{Estimates: make([]float64, len(checkpoints))}
	for i := range res.Estimates {
		res.Estimates[i] = math.NaN()
	}
	next := 0
	maxIters := maxIterFactor*budget + 1000
	start := time.Now()
	for b.Consumed() < budget {
		if res.Iterations >= maxIters {
			res.Duration = time.Since(start)
			res.LabelsConsumed = b.Consumed()
			return res, ErrStalled
		}
		before := b.Consumed()
		err := m.Step(b)
		if err == oracle.ErrBudgetExhausted {
			break
		}
		if err != nil {
			return nil, err
		}
		res.Iterations++
		if b.Consumed() > before {
			consumed := b.Consumed()
			for next < len(checkpoints) && checkpoints[next] <= consumed {
				res.Estimates[next] = m.Estimate()
				next++
			}
		}
	}
	res.Duration = time.Since(start)
	res.LabelsConsumed = b.Consumed()
	return res, nil
}

// Curves aggregates many runs of one method.
type Curves struct {
	Name        string
	Checkpoints []int
	// MeanAbsErr[c] = E|F̂ − F| over runs with a defined estimate.
	MeanAbsErr []float64
	// StdDev[c] is the standard deviation of the estimate over defined runs.
	StdDev []float64
	// DefinedFrac[c] is the fraction of runs with a defined estimate — the
	// paper plots a curve only once this exceeds 0.95.
	DefinedFrac []float64
	// MeanIterations and MeanDuration summarise run cost (Table 3).
	MeanIterations float64
	MeanDuration   time.Duration
	Runs           int
	TrueF          float64
}

// Config controls a multi-run experiment.
type Config struct {
	// Budget is the label budget per run.
	Budget int
	// Runs is the number of independent repeats (1000 in the paper).
	Runs int
	// Checkpoints are the label counts at which estimates are recorded;
	// defaults to a 50-point linear grid over [1, Budget].
	Checkpoints []int
	// BaseSeed separates experiment randomness; run r uses BaseSeed + r
	// for the method and a derived stream for the oracle.
	BaseSeed uint64
	// Workers bounds parallelism (default GOMAXPROCS).
	Workers int
}

// LinearGrid returns `points` evenly spaced checkpoints over [1, budget].
func LinearGrid(budget, points int) []int {
	if points <= 0 || budget <= 0 {
		return nil
	}
	if points > budget {
		points = budget
	}
	out := make([]int, 0, points)
	for i := 1; i <= points; i++ {
		c := i * budget / points
		if c < 1 {
			c = 1
		}
		if len(out) == 0 || c != out[len(out)-1] {
			out = append(out, c)
		}
	}
	return out
}

// Run executes cfg.Runs independent runs of the method built by factory
// against oracles built per run from the pool's ground truth, and aggregates
// the error curves against the pool's true F_alpha.
func Run(f Factory, p *pool.Pool, alpha float64, cfg Config) (*Curves, error) {
	if cfg.Budget <= 0 {
		return nil, fmt.Errorf("experiment: budget %d", cfg.Budget)
	}
	if cfg.Budget > p.N() {
		cfg.Budget = p.N()
	}
	if cfg.Runs <= 0 {
		cfg.Runs = 1
	}
	checkpoints := cfg.Checkpoints
	if len(checkpoints) == 0 {
		checkpoints = LinearGrid(cfg.Budget, 50)
	}
	if !sort.IntsAreSorted(checkpoints) {
		return nil, errors.New("experiment: checkpoints must be sorted")
	}
	trueF := p.TrueFMeasure(alpha)

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > cfg.Runs {
		workers = cfg.Runs
	}
	results := make([]*RunResult, cfg.Runs)
	errs := make([]error, cfg.Runs)
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for run := 0; run < cfg.Runs; run++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(run int) {
			defer wg.Done()
			defer func() { <-sem }()
			seed := cfg.BaseSeed + uint64(run)
			m, err := f.New(seed)
			if err != nil {
				errs[run] = err
				return
			}
			// Oracle stream independent of the method stream.
			o := oracle.FromProbs(p.TruthProb, rng.New(seed^0x9e3779b97f4a7c15))
			res, err := RunOne(m, o, cfg.Budget, checkpoints)
			if err != nil && !errors.Is(err, ErrStalled) {
				errs[run] = err
				return
			}
			results[run] = res
		}(run)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	// Deterministic sequential reduction.
	c := &Curves{
		Name:        f.Name,
		Checkpoints: checkpoints,
		MeanAbsErr:  make([]float64, len(checkpoints)),
		StdDev:      make([]float64, len(checkpoints)),
		DefinedFrac: make([]float64, len(checkpoints)),
		Runs:        cfg.Runs,
		TrueF:       trueF,
	}
	var totalIters float64
	var totalDur time.Duration
	for ci := range checkpoints {
		var online stats.Online
		var absErr float64
		defined := 0
		for _, res := range results {
			est := res.Estimates[ci]
			if math.IsNaN(est) {
				continue
			}
			defined++
			online.Add(est)
			absErr += math.Abs(est - trueF)
		}
		if defined > 0 {
			c.MeanAbsErr[ci] = absErr / float64(defined)
			c.StdDev[ci] = online.StdDev()
		} else {
			c.MeanAbsErr[ci] = math.NaN()
			c.StdDev[ci] = math.NaN()
		}
		c.DefinedFrac[ci] = float64(defined) / float64(cfg.Runs)
	}
	for _, res := range results {
		totalIters += float64(res.Iterations)
		totalDur += res.Duration
	}
	c.MeanIterations = totalIters / float64(cfg.Runs)
	c.MeanDuration = totalDur / time.Duration(cfg.Runs)
	return c, nil
}

// FinalErrors returns the per-run absolute error at the final checkpoint
// along with a 95% confidence half-width — the Figure 5 summary statistic.
func FinalErrors(f Factory, p *pool.Pool, alpha float64, cfg Config) (mean, ci float64, err error) {
	if len(cfg.Checkpoints) == 0 {
		cfg.Checkpoints = []int{cfg.Budget}
	}
	curves, err := Run(f, p, alpha, cfg)
	if err != nil {
		return 0, 0, err
	}
	last := len(curves.Checkpoints) - 1
	// Reconstruct per-run errors is unnecessary: mean abs err is already the
	// statistic; its CI needs per-run spread, approximated from the estimate
	// std dev (errors and estimates share spread around a fixed target).
	mean = curves.MeanAbsErr[last]
	n := float64(curves.Runs) * curves.DefinedFrac[last]
	if n > 1 {
		ci = 1.96 * curves.StdDev[last] / math.Sqrt(n)
	} else {
		ci = math.NaN()
	}
	return mean, ci, nil
}

// LabelsToReachError returns the smallest checkpoint at which the method's
// mean absolute error drops to at or below target and stays there for the
// remainder of the curve; -1 if never. This implements the paper's headline
// "83% label reduction" comparison.
func LabelsToReachError(c *Curves, target float64) int {
	for ci := range c.Checkpoints {
		if math.IsNaN(c.MeanAbsErr[ci]) || c.MeanAbsErr[ci] > target {
			continue
		}
		ok := true
		for cj := ci; cj < len(c.Checkpoints); cj++ {
			if math.IsNaN(c.MeanAbsErr[cj]) || c.MeanAbsErr[cj] > target {
				ok = false
				break
			}
		}
		if ok {
			return c.Checkpoints[ci]
		}
	}
	return -1
}

// LabelSaving returns the fractional label saving of method a relative to
// method b at the given target error: 1 − labels_a/labels_b. It returns NaN
// when either method never reaches the target.
func LabelSaving(a, b *Curves, target float64) float64 {
	la := LabelsToReachError(a, target)
	lb := LabelsToReachError(b, target)
	if la <= 0 || lb <= 0 {
		return math.NaN()
	}
	return 1 - float64(la)/float64(lb)
}
