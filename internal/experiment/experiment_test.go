package experiment

import (
	"math"
	"testing"

	"oasis/internal/core"
	"oasis/internal/oracle"
	"oasis/internal/pool"
	"oasis/internal/rng"
	"oasis/internal/sampler"
	"oasis/internal/strata"
)

func testPool(n int, seed uint64) *pool.Pool {
	r := rng.New(seed)
	p := &pool.Pool{
		Name:          "exp-test",
		Scores:        make([]float64, n),
		Preds:         make([]bool, n),
		TruthProb:     make([]float64, n),
		Probabilistic: true,
	}
	for i := 0; i < n; i++ {
		var s float64
		if r.Bernoulli(0.05) {
			s = 0.4 + 0.6*r.Float64()
		} else {
			s = 0.3 * r.Float64()
		}
		p.Scores[i] = s
		p.Preds[i] = s > 0.6
		if r.Bernoulli(s) {
			p.TruthProb[i] = 1
		}
	}
	return p
}

func passiveFactory(p *pool.Pool, alpha float64) Factory {
	return Factory{
		Name: "Passive",
		New: func(seed uint64) (sampler.Method, error) {
			return sampler.NewPassive(p, alpha, rng.New(seed)), nil
		},
	}
}

func oasisFactory(t *testing.T, p *pool.Pool, k int, alpha float64) Factory {
	t.Helper()
	s, err := strata.CSF(p, k, 0)
	if err != nil {
		t.Fatal(err)
	}
	return Factory{
		Name: "OASIS",
		New: func(seed uint64) (sampler.Method, error) {
			return core.New(p, s, core.Config{Alpha: alpha}, rng.New(seed))
		},
	}
}

func TestLinearGrid(t *testing.T) {
	g := LinearGrid(100, 10)
	if len(g) != 10 || g[0] != 10 || g[9] != 100 {
		t.Errorf("grid = %v", g)
	}
	g = LinearGrid(5, 10) // points capped at budget
	if len(g) != 5 || g[0] != 1 || g[4] != 5 {
		t.Errorf("capped grid = %v", g)
	}
	if LinearGrid(0, 10) != nil {
		t.Error("zero budget should give nil grid")
	}
	// Strictly increasing, no duplicates.
	g = LinearGrid(1000, 50)
	for i := 1; i < len(g); i++ {
		if g[i] <= g[i-1] {
			t.Fatalf("grid not increasing at %d: %v", i, g)
		}
	}
}

func TestRunOneTrajectory(t *testing.T) {
	p := testPool(2000, 1)
	m := sampler.NewPassive(p, 0.5, rng.New(2))
	o := oracle.FromProbs(p.TruthProb, rng.New(3))
	checkpoints := []int{10, 50, 100}
	res, err := RunOne(m, o, 100, checkpoints)
	if err != nil {
		t.Fatal(err)
	}
	if res.LabelsConsumed != 100 {
		t.Errorf("consumed %d", res.LabelsConsumed)
	}
	if res.Iterations < 100 {
		t.Errorf("iterations %d < labels consumed", res.Iterations)
	}
	if len(res.Estimates) != 3 {
		t.Fatalf("estimates %d", len(res.Estimates))
	}
	// Later checkpoints must be recorded whenever earlier ones are defined.
	if !math.IsNaN(res.Estimates[0]) && math.IsNaN(res.Estimates[2]) {
		t.Error("checkpoint 100 missing despite full consumption")
	}
}

func TestRunAggregation(t *testing.T) {
	p := testPool(5000, 4)
	cfg := Config{Budget: 300, Runs: 20, BaseSeed: 10}
	curves, err := Run(passiveFactory(p, 0.5), p, 0.5, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if curves.Runs != 20 {
		t.Errorf("runs %d", curves.Runs)
	}
	if len(curves.Checkpoints) == 0 {
		t.Fatal("no checkpoints")
	}
	last := len(curves.Checkpoints) - 1
	if curves.DefinedFrac[last] < 0.9 {
		t.Errorf("defined fraction at end = %v", curves.DefinedFrac[last])
	}
	if math.IsNaN(curves.MeanAbsErr[last]) || curves.MeanAbsErr[last] > 0.5 {
		t.Errorf("final abs err %v", curves.MeanAbsErr[last])
	}
	if curves.MeanIterations < float64(cfg.Budget) {
		t.Errorf("mean iterations %v below budget", curves.MeanIterations)
	}
}

func TestRunDeterministic(t *testing.T) {
	p := testPool(3000, 5)
	cfg := Config{Budget: 200, Runs: 8, BaseSeed: 42, Workers: 2}
	a, err := Run(passiveFactory(p, 0.5), p, 0.5, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(passiveFactory(p, 0.5), p, 0.5, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.MeanAbsErr {
		av, bv := a.MeanAbsErr[i], b.MeanAbsErr[i]
		if av != bv && !(math.IsNaN(av) && math.IsNaN(bv)) {
			t.Fatalf("nondeterministic aggregation at %d: %v vs %v", i, av, bv)
		}
	}
}

func TestOASISBeatsPassiveInHarness(t *testing.T) {
	// End-to-end: at a small budget on an imbalanced pool, OASIS's error
	// curve ends below passive's (the Figure 2 headline at miniature scale).
	p := testPool(20000, 6)
	cfg := Config{Budget: 400, Runs: 30, BaseSeed: 100}
	oasisCurves, err := Run(oasisFactory(t, p, 20, 0.5), p, 0.5, cfg)
	if err != nil {
		t.Fatal(err)
	}
	passiveCurves, err := Run(passiveFactory(p, 0.5), p, 0.5, cfg)
	if err != nil {
		t.Fatal(err)
	}
	last := len(cfg.Checkpoints) - 1
	if last < 0 {
		last = len(oasisCurves.Checkpoints) - 1
	}
	oe, pe := oasisCurves.MeanAbsErr[last], passiveCurves.MeanAbsErr[last]
	if math.IsNaN(oe) || math.IsNaN(pe) || oe >= pe {
		t.Errorf("OASIS err %v not below passive %v", oe, pe)
	}
}

func TestFinalErrors(t *testing.T) {
	p := testPool(5000, 7)
	mean, ci, err := FinalErrors(passiveFactory(p, 0.5), p, 0.5,
		Config{Budget: 300, Runs: 15, BaseSeed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(mean) || mean < 0 {
		t.Errorf("mean error %v", mean)
	}
	if math.IsNaN(ci) || ci <= 0 {
		t.Errorf("ci %v", ci)
	}
}

func TestLabelsToReachError(t *testing.T) {
	c := &Curves{
		Checkpoints: []int{10, 20, 30, 40},
		MeanAbsErr:  []float64{0.5, 0.05, 0.2, 0.04},
	}
	// Error dips at 20 but rises again at 30; stable attainment is at 40.
	if got := LabelsToReachError(c, 0.1); got != 40 {
		t.Errorf("LabelsToReachError = %d, want 40", got)
	}
	if got := LabelsToReachError(c, 0.01); got != -1 {
		t.Errorf("unreachable target = %d, want -1", got)
	}
	c2 := &Curves{
		Checkpoints: []int{10, 20},
		MeanAbsErr:  []float64{0.02, 0.01},
	}
	if got := LabelsToReachError(c2, 0.1); got != 10 {
		t.Errorf("immediate attainment = %d", got)
	}
}

func TestLabelSaving(t *testing.T) {
	a := &Curves{Checkpoints: []int{10, 20}, MeanAbsErr: []float64{0.01, 0.01}}
	b := &Curves{Checkpoints: []int{10, 100}, MeanAbsErr: []float64{0.5, 0.01}}
	if got := LabelSaving(a, b, 0.05); math.Abs(got-0.9) > 1e-12 {
		t.Errorf("saving = %v, want 0.9", got)
	}
	never := &Curves{Checkpoints: []int{10}, MeanAbsErr: []float64{0.9}}
	if got := LabelSaving(never, b, 0.05); !math.IsNaN(got) {
		t.Errorf("unreachable saving = %v", got)
	}
}

// miscalibratedPool builds a pool whose scores systematically overstate the
// match probability, so the score-based prior π̂(0) is wrong and incoming
// labels must correct it — the regime where Figure 4's convergence is
// informative.
func miscalibratedPool(n int, seed uint64) *pool.Pool {
	r := rng.New(seed)
	p := &pool.Pool{
		Name:          "miscal",
		Scores:        make([]float64, n),
		Preds:         make([]bool, n),
		TruthProb:     make([]float64, n),
		Probabilistic: true,
	}
	for i := 0; i < n; i++ {
		var s float64
		if r.Bernoulli(0.05) {
			s = 0.4 + 0.6*r.Float64()
		} else {
			s = 0.3 * r.Float64()
		}
		p.Scores[i] = s
		p.Preds[i] = s > 0.6
		// True match rate is far below the score.
		if r.Bernoulli(s * s * 0.5) {
			p.TruthProb[i] = 1
		}
	}
	return p
}

func TestRunConvergenceDiagnostics(t *testing.T) {
	p := miscalibratedPool(10000, 8)
	s, err := strata.CSF(p, 15, 0)
	if err != nil {
		t.Fatal(err)
	}
	o, err := core.New(p, s, core.Config{Alpha: 0.5}, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	orc := oracle.FromProbs(p.TruthProb, rng.New(10))
	conv, err := RunConvergence(o, p, s, 0.5, 6000, 50, orc)
	if err != nil {
		t.Fatal(err)
	}
	if len(conv.Labels) < 10 {
		t.Fatalf("too few samples: %d", len(conv.Labels))
	}
	n := len(conv.Labels)
	if len(conv.FError) != n || len(conv.PiError) != n || len(conv.VError) != n || len(conv.KL) != n {
		t.Fatal("diagnostic series length mismatch")
	}
	for i := 0; i < n; i++ {
		if conv.KL[i] < 0 || math.IsNaN(conv.KL[i]) {
			t.Errorf("KL[%d] = %v", i, conv.KL[i])
		}
		if conv.PiError[i] < 0 || conv.PiError[i] > 1 {
			t.Errorf("PiError[%d] = %v", i, conv.PiError[i])
		}
	}
	// Convergence: the tail should improve on the head for π, v and KL.
	// Average a few samples at each end — single snapshots are noisy, and
	// the paper itself observes v*/KL converging much later than π (Fig. 4).
	avg := func(xs []float64) float64 {
		s := 0.0
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	w := 3
	if n < 2*w {
		w = 1
	}
	if head, tail := avg(conv.PiError[:w]), avg(conv.PiError[n-w:]); tail >= head {
		t.Errorf("π error did not decrease: %v → %v", head, tail)
	}
	if head, tail := avg(conv.KL[:w]), avg(conv.KL[n-w:]); tail >= head {
		t.Errorf("KL did not decrease: %v → %v", head, tail)
	}
	if head, tail := avg(conv.VError[:w]), avg(conv.VError[n-w:]); tail >= head {
		t.Errorf("v error did not decrease: %v → %v", head, tail)
	}
}

func TestRunChecksBudgetAgainstPool(t *testing.T) {
	p := testPool(50, 11)
	curves, err := Run(passiveFactory(p, 0.5), p, 0.5, Config{Budget: 1000, Runs: 3, BaseSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	last := curves.Checkpoints[len(curves.Checkpoints)-1]
	if last > 50 {
		t.Errorf("checkpoint %d exceeds pool size", last)
	}
}
