package experiment

import (
	"math"

	"oasis/internal/core"
	"oasis/internal/oracle"
	"oasis/internal/pool"
	"oasis/internal/stats"
	"oasis/internal/strata"
)

// Convergence holds the single-run diagnostics of Figure 4: at sampled
// iterations, the absolute error of the F-measure estimate, of the stratum
// oracle-probability estimates π̂, of the instrumental distribution v̂
// against the population-optimal v*, and the KL divergence from v* to v̂.
type Convergence struct {
	// Labels[i] is the number of distinct labels consumed at sample i.
	Labels []int
	// FError[i] = |F̂ − F|.
	FError []float64
	// PiError[i] = mean_k |π̂_k − π_k|.
	PiError []float64
	// VError[i] = mean_k |v̂_k − v*_k|.
	VError []float64
	// KL[i] = KL(v* ‖ v̂) in nats.
	KL []float64
}

// RunConvergence runs one OASIS trajectory against the pool's ground-truth
// oracle, recording diagnostics every `every` distinct labels (minimum 1).
// It stops after `budget` labels.
func RunConvergence(o *core.Sampler, p *pool.Pool, s *strata.Strata,
	alpha float64, budget, every int, orc oracle.Oracle) (*Convergence, error) {
	if every < 1 {
		every = 1
	}
	if budget > p.N() {
		budget = p.N()
	}
	trueF := p.TrueFMeasure(alpha)
	truePi := core.TruePi(p, s)
	trueV := core.TrueOptimalV(p, s, alpha)

	b := oracle.NewBudgeted(orc, budget)
	conv := &Convergence{}
	record := func() error {
		conv.Labels = append(conv.Labels, b.Consumed())
		conv.FError = append(conv.FError, math.Abs(o.Estimate()-trueF))
		pi := o.PosteriorMean(nil)
		conv.PiError = append(conv.PiError, stats.MeanAbs(sub(pi, truePi)))
		v := o.Instrumental(nil)
		conv.VError = append(conv.VError, stats.MeanAbs(sub(v, trueV)))
		kl, err := stats.KLDivergence(trueV, v)
		if err != nil {
			return err
		}
		conv.KL = append(conv.KL, kl)
		return nil
	}

	nextRecord := every
	maxIters := maxIterFactor*budget + 1000
	iters := 0
	for b.Consumed() < budget && iters < maxIters {
		before := b.Consumed()
		err := o.Step(b)
		if err == oracle.ErrBudgetExhausted {
			break
		}
		if err != nil {
			return nil, err
		}
		iters++
		if b.Consumed() > before && b.Consumed() >= nextRecord {
			if err := record(); err != nil {
				return nil, err
			}
			nextRecord = b.Consumed() + every
		}
	}
	// Final state.
	if len(conv.Labels) == 0 || conv.Labels[len(conv.Labels)-1] != b.Consumed() {
		if err := record(); err != nil {
			return nil, err
		}
	}
	return conv, nil
}

func sub(a, b []float64) []float64 {
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] - b[i]
	}
	return out
}
