package core

import (
	"math"
	"testing"
	"testing/quick"

	"oasis/internal/oracle"
	"oasis/internal/pool"
	"oasis/internal/rng"
	"oasis/internal/strata"
)

// makePool builds an imbalanced pool with a controllable relationship
// between score and truth: truth probability equals the score, matching the
// calibrated-scores regime. Deterministic truth is drawn once at pool
// construction.
func makePool(n int, imbalance float64, seed uint64) *pool.Pool {
	r := rng.New(seed)
	p := &pool.Pool{
		Name:          "core-test",
		Scores:        make([]float64, n),
		Preds:         make([]bool, n),
		TruthProb:     make([]float64, n),
		Probabilistic: true,
	}
	highFrac := 1 / (1 + imbalance)
	for i := 0; i < n; i++ {
		var s float64
		if r.Bernoulli(highFrac * 2) {
			s = 0.3 + 0.7*r.Float64()
		} else {
			s = 0.25 * r.Float64()
		}
		p.Scores[i] = s
		p.Preds[i] = s > 0.55
		if r.Bernoulli(s * s) { // truth correlates with score but imperfectly
			p.TruthProb[i] = 1
		}
	}
	return p
}

func newOASIS(t *testing.T, p *pool.Pool, k int, cfg Config, seed uint64) *Sampler {
	t.Helper()
	s, err := strata.CSF(p, k, 0)
	if err != nil {
		t.Fatal(err)
	}
	o, err := New(p, s, cfg, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func TestNewValidation(t *testing.T) {
	p := makePool(500, 50, 1)
	s, err := strata.CSF(p, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(&pool.Pool{}, s, Config{Alpha: 0.5}, rng.New(1)); err == nil {
		t.Error("expected error on empty pool")
	}
	if _, err := New(p, nil, Config{Alpha: 0.5}, rng.New(1)); err != ErrNoStrata {
		t.Error("expected ErrNoStrata")
	}
	other := makePool(100, 50, 2)
	sOther, _ := strata.CSF(other, 5, 0)
	if _, err := New(p, sOther, Config{Alpha: 0.5}, rng.New(1)); err == nil {
		t.Error("expected error on strata/pool mismatch")
	}
}

func TestInitialEstimates(t *testing.T) {
	p := makePool(2000, 50, 3)
	o := newOASIS(t, p, 20, Config{Alpha: 0.5}, 4)
	f0 := o.InitialF()
	if math.IsNaN(f0) || f0 < 0 || f0 > 1 {
		t.Fatalf("F̂(0) = %v", f0)
	}
	pi0 := o.InitialPi()
	if len(pi0) != o.K() {
		t.Fatalf("π̂(0) length %d, K %d", len(pi0), o.K())
	}
	for k, v := range pi0 {
		if v <= 0 || v >= 1 {
			t.Errorf("π̂(0)[%d] = %v not in (0,1)", k, v)
		}
	}
	// Estimate before any labels must return the initial guess.
	if o.Estimate() != f0 {
		t.Errorf("pre-label estimate %v != F̂(0) %v", o.Estimate(), f0)
	}
}

func TestInstrumentalIsDistribution(t *testing.T) {
	p := makePool(2000, 100, 5)
	o := newOASIS(t, p, 25, Config{Alpha: 0.5}, 6)
	v := o.Instrumental(nil)
	sum := 0.0
	for k, q := range v {
		if q <= 0 {
			t.Errorf("v[%d] = %v must be strictly positive (ε-greedy)", k, q)
		}
		sum += q
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("v sums to %v", sum)
	}
}

func TestEpsilonGreedyLowerBound(t *testing.T) {
	// Remark 5: v_k ≥ ε·ω_k for every stratum, so importance weights are
	// bounded by 1/ε.
	p := makePool(3000, 200, 7)
	eps := 0.01
	o := newOASIS(t, p, 30, Config{Alpha: 0.5, Epsilon: eps}, 8)
	b := oracle.NewBudgeted(oracle.FromProbs(p.TruthProb, rng.New(9)), 0)
	for step := 0; step < 500; step++ {
		if err := o.Step(b); err != nil {
			t.Fatal(err)
		}
		v := o.Instrumental(nil)
		for k, q := range v {
			if q < eps*o.str.Weights[k]-1e-12 {
				t.Fatalf("step %d: v[%d]=%v below ε·ω=%v", step, k, q, eps*o.str.Weights[k])
			}
		}
	}
}

func TestOASISConvergesCalibrated(t *testing.T) {
	p := makePool(20000, 100, 10)
	trueF := p.TrueFMeasure(0.5)
	if math.IsNaN(trueF) || trueF <= 0 {
		t.Fatalf("degenerate pool, trueF=%v", trueF)
	}
	// Average final estimates across several runs to smooth sampling noise.
	var errSum float64
	const runs = 10
	for run := 0; run < runs; run++ {
		o := newOASIS(t, p, 30, Config{Alpha: 0.5}, 100+uint64(run))
		b := oracle.NewBudgeted(oracle.FromProbs(p.TruthProb, rng.New(200+uint64(run))), 0)
		for step := 0; step < 4000; step++ {
			if err := o.Step(b); err != nil {
				t.Fatal(err)
			}
		}
		errSum += math.Abs(o.Estimate() - trueF)
	}
	if mean := errSum / runs; mean > 0.05 {
		t.Errorf("mean |F̂−F| = %v after 4000 iterations (trueF=%v)", mean, trueF)
	}
}

func TestOASISConvergesUncalibrated(t *testing.T) {
	// Same pool but scores presented as raw margins (uncalibrated): OASIS
	// must still converge because it learns π from labels.
	p := makePool(20000, 100, 11)
	trueF := p.TrueFMeasure(0.5)
	raw := &pool.Pool{
		Name:      "uncal",
		Scores:    make([]float64, p.N()),
		Preds:     p.Preds,
		TruthProb: p.TruthProb,
		Threshold: 0,
	}
	for i, s := range p.Scores {
		raw.Scores[i] = 8 * (s - 0.55) // margin-like transform
	}
	var errSum float64
	const runs = 10
	for run := 0; run < runs; run++ {
		s, err := strata.CSF(raw, 30, 0)
		if err != nil {
			t.Fatal(err)
		}
		o, err := New(raw, s, Config{Alpha: 0.5}, rng.New(300+uint64(run)))
		if err != nil {
			t.Fatal(err)
		}
		b := oracle.NewBudgeted(oracle.FromProbs(raw.TruthProb, rng.New(400+uint64(run))), 0)
		for step := 0; step < 4000; step++ {
			if err := o.Step(b); err != nil {
				t.Fatal(err)
			}
		}
		errSum += math.Abs(o.Estimate() - trueF)
	}
	if mean := errSum / runs; mean > 0.06 {
		t.Errorf("uncalibrated mean |F̂−F| = %v (trueF=%v)", mean, trueF)
	}
}

func TestOASISConvergesNoisyOracle(t *testing.T) {
	// Oracle probabilities strictly inside (0,1): the target is the
	// population F computed from p(1|z); consistency must still hold.
	n := 10000
	r := rng.New(12)
	p := &pool.Pool{
		Name:          "noisy",
		Scores:        make([]float64, n),
		Preds:         make([]bool, n),
		TruthProb:     make([]float64, n),
		Probabilistic: true,
	}
	for i := 0; i < n; i++ {
		s := r.Float64()
		if r.Bernoulli(0.9) {
			s *= 0.2
		}
		p.Scores[i] = s
		p.Preds[i] = s > 0.5
		p.TruthProb[i] = 0.1 + 0.8*s // genuinely noisy oracle
	}
	trueF := p.TrueFMeasure(0.5)
	var errSum float64
	const runs = 8
	for run := 0; run < runs; run++ {
		s, err := strata.CSF(p, 20, 0)
		if err != nil {
			t.Fatal(err)
		}
		o, err := New(p, s, Config{Alpha: 0.5}, rng.New(500+uint64(run)))
		if err != nil {
			t.Fatal(err)
		}
		// No caching correctness issue: each pair keeps one realised label
		// per run, matching how a crowd answers once. The estimator then
		// targets the realised-label F, which concentrates around trueF.
		b := oracle.NewBudgeted(oracle.NewBernoulli(p.TruthProb, rng.New(600+uint64(run))), 0)
		for step := 0; step < 6000; step++ {
			if err := o.Step(b); err != nil {
				t.Fatal(err)
			}
		}
		errSum += math.Abs(o.Estimate() - trueF)
	}
	if mean := errSum / runs; mean > 0.08 {
		t.Errorf("noisy-oracle mean |F̂−F| = %v (trueF=%v)", mean, trueF)
	}
}

func TestPrecisionAndRecallTargets(t *testing.T) {
	p := makePool(20000, 50, 13)
	for _, tc := range []struct {
		alpha float64
		want  float64
		name  string
	}{
		{1, p.TruePrecision(), "precision"},
		{0, p.TrueRecall(), "recall"},
	} {
		var errSum float64
		const runs = 8
		for run := 0; run < runs; run++ {
			o := newOASIS(t, p, 30, Config{Alpha: tc.alpha}, 700+uint64(run))
			b := oracle.NewBudgeted(oracle.FromProbs(p.TruthProb, rng.New(800+uint64(run))), 0)
			for step := 0; step < 4000; step++ {
				if err := o.Step(b); err != nil {
					t.Fatal(err)
				}
			}
			errSum += math.Abs(o.Estimate() - tc.want)
		}
		if mean := errSum / runs; mean > 0.05 {
			t.Errorf("%s: mean error %v (target %v)", tc.name, mean, tc.want)
		}
	}
}

func TestPosteriorUpdates(t *testing.T) {
	p := makePool(1000, 20, 14)
	o := newOASIS(t, p, 10, Config{Alpha: 0.5, PriorStrength: 2}, 15)
	before := o.PosteriorMean(nil)
	b := oracle.NewBudgeted(oracle.FromProbs(p.TruthProb, rng.New(16)), 0)
	for step := 0; step < 200; step++ {
		if err := o.Step(b); err != nil {
			t.Fatal(err)
		}
	}
	after := o.PosteriorMean(nil)
	changed := false
	for k := range before {
		if after[k] < 0 || after[k] > 1 {
			t.Fatalf("posterior mean out of range: %v", after[k])
		}
		if after[k] != before[k] {
			changed = true
		}
	}
	if !changed {
		t.Error("posterior never moved despite 200 labels")
	}
}

func TestPosteriorMeanMatchesBetaFormula(t *testing.T) {
	// Feed a known label sequence through one stratum and check Eqn. 11.
	n := 100
	p := &pool.Pool{
		Scores:        make([]float64, n),
		Preds:         make([]bool, n),
		TruthProb:     make([]float64, n),
		Probabilistic: true,
	}
	for i := range p.Scores {
		p.Scores[i] = 0.5
		p.TruthProb[i] = 1 // all matches
	}
	s, err := strata.CSF(p, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	eta := 4.0
	// Bare Algorithm 3 (no Remark 4 decay): Eqn. 11 exactly.
	o, err := New(p, s, Config{Alpha: 0.5, PriorStrength: eta, DisablePriorDecay: true}, rng.New(17))
	if err != nil {
		t.Fatal(err)
	}
	pi0 := o.InitialPi()[0]
	b := oracle.NewBudgeted(oracle.FromProbs(p.TruthProb, rng.New(18)), 0)
	const steps = 25
	for i := 0; i < steps; i++ {
		if err := o.Step(b); err != nil {
			t.Fatal(err)
		}
	}
	// All labels are matches: posterior mean = (η·π0 + 25)/(η + 25).
	want := (eta*pi0 + steps) / (eta + steps)
	got := o.PosteriorMean(nil)[0]
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("posterior mean %v, want %v", got, want)
	}

	// Default decay mode: prior pseudo-counts shrink by 1/(1+n_k), so the
	// posterior mean is (η·π0/(1+n) + n)/(η/(1+n) + n) after n matches.
	od, err := New(p, s, Config{Alpha: 0.5, PriorStrength: eta}, rng.New(17))
	if err != nil {
		t.Fatal(err)
	}
	bd := oracle.NewBudgeted(oracle.FromProbs(p.TruthProb, rng.New(18)), 0)
	for i := 0; i < steps; i++ {
		if err := od.Step(bd); err != nil {
			t.Fatal(err)
		}
	}
	decayFactor := 1.0 / (1 + steps)
	wantDecay := (eta*pi0*decayFactor + steps) / (eta*decayFactor + steps)
	gotDecay := od.PosteriorMean(nil)[0]
	if math.Abs(gotDecay-wantDecay) > 1e-9 {
		t.Errorf("decayed posterior mean %v, want %v", gotDecay, wantDecay)
	}
}

func TestPriorDecay(t *testing.T) {
	// With a badly misspecified prior, decay should converge π̂ faster.
	n := 2000
	p := &pool.Pool{
		Scores:        make([]float64, n),
		Preds:         make([]bool, n),
		TruthProb:     make([]float64, n),
		Probabilistic: true,
	}
	for i := range p.Scores {
		p.Scores[i] = 0.9 // prior says "matches", truth says otherwise
		p.TruthProb[i] = 0
	}
	run := func(decay bool) float64 {
		s, err := strata.CSF(p, 1, 0)
		if err != nil {
			t.Fatal(err)
		}
		o, err := New(p, s, Config{Alpha: 0.5, PriorStrength: 60, DisablePriorDecay: !decay}, rng.New(19))
		if err != nil {
			t.Fatal(err)
		}
		b := oracle.NewBudgeted(oracle.FromProbs(p.TruthProb, rng.New(20)), 0)
		for i := 0; i < 30; i++ {
			if err := o.Step(b); err != nil {
				t.Fatal(err)
			}
		}
		return o.PosteriorMean(nil)[0] // true value is 0
	}
	if withDecay, without := run(true), run(false); withDecay >= without {
		t.Errorf("decay %v should beat no-decay %v under misspecified prior", withDecay, without)
	}
}

func TestTruePiAndTrueOptimalV(t *testing.T) {
	p := makePool(5000, 50, 21)
	s, err := strata.CSF(p, 15, 0)
	if err != nil {
		t.Fatal(err)
	}
	pi := TruePi(p, s)
	if len(pi) != s.K() {
		t.Fatalf("TruePi length %d", len(pi))
	}
	for k, v := range pi {
		if v < 0 || v > 1 {
			t.Errorf("TruePi[%d] = %v", k, v)
		}
	}
	v := TrueOptimalV(p, s, 0.5)
	sum := 0.0
	for _, q := range v {
		if q < 0 {
			t.Errorf("negative v* component %v", q)
		}
		sum += q
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("v* sums to %v", sum)
	}
}

func TestOASISBeatsPassiveVariance(t *testing.T) {
	// The core claim at fixed label budget: OASIS's estimate spread across
	// runs is below passive sampling's on an imbalanced pool.
	p := makePool(30000, 300, 22)
	trueF := p.TrueFMeasure(0.5)
	const runs = 30
	const budget = 300
	var oasisSq, passiveSq float64
	for run := 0; run < runs; run++ {
		o := newOASIS(t, p, 30, Config{Alpha: 0.5}, 1000+uint64(run))
		b := oracle.NewBudgeted(oracle.FromProbs(p.TruthProb, rng.New(2000+uint64(run))), budget)
		for b.Consumed() < budget {
			if err := o.Step(b); err != nil {
				break
			}
		}
		d := o.Estimate() - trueF
		oasisSq += d * d

		r := rng.New(3000 + uint64(run))
		bp := oracle.NewBudgeted(oracle.FromProbs(p.TruthProb, rng.New(4000+uint64(run))), budget)
		est := 0.0
		var tp, fp, fn float64
		for bp.Consumed() < budget {
			i := r.Intn(p.N())
			label, err := bp.TryLabel(i)
			if err != nil {
				break
			}
			switch {
			case label && p.Preds[i]:
				tp++
			case !label && p.Preds[i]:
				fp++
			case label && !p.Preds[i]:
				fn++
			}
		}
		den := 0.5*(tp+fp) + 0.5*(tp+fn)
		if den > 0 {
			est = tp / den
		} else {
			est = 0 // count undefined as maximal error contribution
		}
		dp := est - trueF
		passiveSq += dp * dp
	}
	if oasisSq >= passiveSq {
		t.Errorf("OASIS MSE %v not below passive MSE %v at budget %d",
			oasisSq/runs, passiveSq/runs, budget)
	}
}

func TestStratifiedOptimalProperties(t *testing.T) {
	f := func(aR, fR, piR, lamR, omR uint8) bool {
		alpha := float64(aR%101) / 100
		fv := float64(fR%101) / 100
		pi := float64(piR%101) / 100
		lam := float64(lamR%101) / 100
		om := float64(omR%100)/100 + 0.01
		v := StratifiedOptimal(alpha, fv, pi, lam, om)
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
		// Zero prediction mass and zero match probability → zero optimal mass.
		if StratifiedOptimal(alpha, fv, 0, 0, om) != 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDeterministicRuns(t *testing.T) {
	p := makePool(5000, 50, 23)
	run := func() float64 {
		o := newOASIS(t, p, 20, Config{Alpha: 0.5}, 42)
		b := oracle.NewBudgeted(oracle.FromProbs(p.TruthProb, rng.New(43)), 0)
		for i := 0; i < 500; i++ {
			if err := o.Step(b); err != nil {
				t.Fatal(err)
			}
		}
		return o.Estimate()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("same seeds gave different estimates: %v vs %v", a, b)
	}
}

func TestBudgetExhaustion(t *testing.T) {
	p := makePool(1000, 20, 24)
	o := newOASIS(t, p, 10, Config{Alpha: 0.5}, 25)
	b := oracle.NewBudgeted(oracle.FromProbs(p.TruthProb, rng.New(26)), 5)
	exhausted := false
	for i := 0; i < 10000; i++ {
		if err := o.Step(b); err == oracle.ErrBudgetExhausted {
			exhausted = true
			break
		} else if err != nil {
			t.Fatal(err)
		}
	}
	if !exhausted {
		t.Error("expected budget exhaustion")
	}
	if b.Consumed() != 5 {
		t.Errorf("consumed %d, want 5", b.Consumed())
	}
}
