package core

// Golden-sequence equivalence: the optimized draw path — cached v(t) behind
// a commit-dirty flag, prepared O(log K) stratum sampler, precomputed
// importance weights — must reproduce the unoptimized sequential Algorithm 3
// (rebuild v from scratch every draw, O(K) validated inverse-CDF scan)
// bit-for-bit: same seed, same draw sequence, same final estimate. This is
// the correctness contract behind BenchmarkDraw's speedup.

import (
	"testing"

	"oasis/internal/rng"
	"oasis/internal/strata"
)

// refDraw performs one draw exactly the way the seed implementation did:
// recompute the instrumental distribution from the posterior, then draw the
// stratum with the per-call-validated linear inverse-CDF scan and the pair
// uniformly from the stratum's member list. It bypasses every cache.
func refDraw(t *testing.T, o *Sampler) Draw {
	t.Helper()
	o.computeV()
	kStar, err := o.rng.Categorical(o.v)
	if err != nil {
		t.Fatal(err)
	}
	members := o.str.Items[kStar]
	i := members[o.rng.Intn(len(members))]
	return Draw{
		Pair:    i,
		Stratum: kStar,
		Weight:  o.str.Weights[kStar] / o.v[kStar],
	}
}

func requireSameDraw(t *testing.T, step int, opt, ref Draw) {
	t.Helper()
	if opt != ref {
		t.Fatalf("step %d: optimized draw %+v != reference draw %+v", step, opt, ref)
	}
}

func TestGoldenSequence(t *testing.T) {
	p := makePool(20_000, 40, 5)
	s, err := strata.CSF(p, 30, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Alpha: 0.5}
	newSampler := func(seed uint64) *Sampler {
		o, err := New(p, s, cfg, rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		return o
	}
	opt := newSampler(99) // optimized: cached v(t), prepared sampler
	ref := newSampler(99) // reference: rebuild + Categorical every draw

	label := func(pair int) bool { return p.TruthProb[pair] >= 0.5 }

	// Phase 1: the fully adaptive regime — every draw is committed, so the
	// cache is invalidated and rebuilt once per step.
	for step := 0; step < 300; step++ {
		d, err := opt.Draw()
		if err != nil {
			t.Fatal(err)
		}
		rd := refDraw(t, ref)
		requireSameDraw(t, step, d, rd)
		opt.Commit(d, label(d.Pair))
		ref.Commit(rd, label(rd.Pair))
	}

	// Phase 2: the batched-proposal regime — many draws, zero commits. The
	// optimized sampler serves every draw from the cache built at the first
	// one; the reference rebuilds v each time. If any commit-free code path
	// mutated the posterior, the sequences would split here.
	for step := 0; step < 500; step++ {
		d, err := opt.Draw()
		if err != nil {
			t.Fatal(err)
		}
		requireSameDraw(t, step, d, refDraw(t, ref))
	}

	// Phase 3: snapshot round-trip. Restoring into a sampler whose own
	// stream and caches are elsewhere must rebuild the cached v(t) and
	// continue the reference sequence exactly.
	st := opt.State()
	resumed := newSampler(123456) // different seed: Restore must overwrite it
	for i := 0; i < 7; i++ {      // desync its caches and stream first
		if d, err := resumed.Draw(); err == nil {
			resumed.Commit(d, i%2 == 0)
		}
	}
	if err := resumed.Restore(st); err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 300; step++ {
		d, err := resumed.Draw()
		if err != nil {
			t.Fatal(err)
		}
		rd := refDraw(t, ref)
		requireSameDraw(t, step, d, rd)
		resumed.Commit(d, label(d.Pair))
		ref.Commit(rd, label(rd.Pair))
	}

	if got, want := resumed.Estimate(), ref.Estimate(); got != want {
		t.Fatalf("final estimate: optimized %v != reference %v", got, want)
	}
	if got, want := resumed.Iterations(), ref.Iterations(); got != want {
		t.Fatalf("iterations: optimized %d != reference %d", got, want)
	}
}

// TestGoldenSequencePosteriorEstimate repeats the equivalence check in
// PosteriorEstimate mode, whose working F̂ follows a different code path
// (the plug-in estimate) when building v(t).
func TestGoldenSequencePosteriorEstimate(t *testing.T) {
	p := makePool(5_000, 40, 9)
	s, err := strata.CSF(p, 20, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Alpha: 0.5, PosteriorEstimate: true}
	opt, err := New(p, s, cfg, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := New(p, s, cfg, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 400; step++ {
		d, err := opt.Draw()
		if err != nil {
			t.Fatal(err)
		}
		rd := refDraw(t, ref)
		requireSameDraw(t, step, d, rd)
		lab := p.TruthProb[d.Pair] >= 0.5
		opt.Commit(d, lab)
		ref.Commit(rd, lab)
	}
	if got, want := opt.Estimate(), ref.Estimate(); got != want {
		t.Fatalf("final estimate: optimized %v != reference %v", got, want)
	}
}

// TestDrawStratumWeightMatchesInstrumental checks the precomputed importance
// weights stay in lockstep with the cached distribution across commits.
func TestDrawStratumWeightMatchesInstrumental(t *testing.T) {
	p := makePool(3_000, 30, 2)
	o := newOASIS(t, p, 15, Config{Alpha: 0.5}, 8)
	v := make([]float64, o.K())
	for step := 0; step < 200; step++ {
		o.Instrumental(v) // refreshes the cache
		k, w := o.DrawStratum()
		if want := o.str.Weights[k] / v[k]; w != want {
			t.Fatalf("step %d: weight %v, want ω/v = %v", step, w, want)
		}
		if step%3 == 0 {
			o.Commit(Draw{Pair: o.UniformPair(k), Stratum: k, Weight: w}, step%6 == 0)
		}
	}
}
