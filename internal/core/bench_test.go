package core

// Microbenchmarks for the sampler hot path: Draw (steady state, no
// intervening commits — the batched-proposal case) and Draw+Commit (the
// fully adaptive sequential case, which rebuilds the instrumental
// distribution once per label). These are the numbers `make bench-json`
// tracks in BENCH_core.json.

import (
	"testing"

	"oasis/internal/rng"
	"oasis/internal/strata"
)

// benchSampler builds a K≈30 sampler over a synthetic imbalanced pool with
// a warmed-up posterior (200 committed labels), the regime the evaluation
// service lives in.
func benchSampler(b *testing.B, n int) *Sampler {
	b.Helper()
	p := makePool(n, 50, 1)
	s, err := strata.CSF(p, 30, 0)
	if err != nil {
		b.Fatal(err)
	}
	o, err := New(p, s, Config{Alpha: 0.5}, rng.New(7))
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		d, err := o.Draw()
		if err != nil {
			b.Fatal(err)
		}
		o.Commit(d, p.TruthProb[d.Pair] >= 0.5)
	}
	return o
}

// BenchmarkDraw measures one with-replacement draw with no intervening
// commits: the steady-state cost of ProposeBatch's inner loop. Target:
// amortized O(1) per draw and 0 allocs/op.
func BenchmarkDraw(b *testing.B) {
	o := benchSampler(b, 100_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := o.Draw(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDrawCommit measures the fully adaptive cycle: every draw is
// followed by a commit, so the instrumental distribution is rebuilt each
// iteration (O(K) amortized over one label, as in sequential Algorithm 3).
func BenchmarkDrawCommit(b *testing.B) {
	o := benchSampler(b, 100_000)
	preds := o.pool.TruthProb
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := o.Draw()
		if err != nil {
			b.Fatal(err)
		}
		o.Commit(d, preds[d.Pair] >= 0.5)
	}
}

// BenchmarkInstrumental measures one full rebuild of the ε-greedy
// instrumental distribution (posterior means + Eqn. 12), the per-commit
// amortized cost behind BenchmarkDraw.
func BenchmarkInstrumental(b *testing.B) {
	o := benchSampler(b, 100_000)
	dst := make([]float64, o.K())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.computeV()
		copy(dst, o.v)
	}
}
