package core

import (
	"errors"

	"oasis/internal/rng"
)

// EstimatorState captures the AIS estimator's accumulated sums (Eqn. 3)
// plus the higher-order weight moments backing the runtime health gauges
// (ESS, asymptotic variance). The moment fields are omitempty so that
// snapshots written before they existed still decode: they restore as
// zeros, which the estimator reports as "health unknown" without
// affecting the estimate itself.
type EstimatorState struct {
	Num  float64 `json:"num"`
	Pred float64 `json:"pred"`
	True float64 `json:"true"`
	N    int     `json:"n"`

	SumW  float64 `json:"sumW,omitempty"`
	SumW2 float64 `json:"sumW2,omitempty"`
	YY    float64 `json:"yy,omitempty"`
	YZ    float64 `json:"yz,omitempty"`
	ZZ    float64 `json:"zz,omitempty"`
}

// State is a complete, JSON-serialisable snapshot of a Sampler's mutable
// state. Together with the pool, the stratification parameters and the
// Config — all of which are deterministic inputs — it reconstructs a sampler
// bit-for-bit, which is what the session subsystem persists across restarts.
type State struct {
	Prior0     []float64      `json:"prior0"`
	Prior1     []float64      `json:"prior1"`
	Count0     []float64      `json:"count0"`
	Count1     []float64      `json:"count1"`
	LabelsSeen []int          `json:"labelsSeen"`
	PiInit     []float64      `json:"piInit"`
	FInit      float64        `json:"fInit"`
	Estimator  EstimatorState `json:"estimator"`
	Iterations int            `json:"iterations"`
	RNG        rng.State      `json:"rng"`

	// Per-stratum weight moments behind the convergence diagnostics.
	// Omitempty: snapshots from before these existed restore as zeros, so
	// the per-stratum ESS reads as unknown until fresh labels arrive while
	// the estimate and posterior are unaffected.
	StratSumW  []float64 `json:"strataSumW,omitempty"`
	StratSumW2 []float64 `json:"strataSumW2,omitempty"`
}

// ErrBadState is returned by Restore when a snapshot does not match the
// sampler's stratification.
var ErrBadState = errors.New("core: snapshot does not match sampler (stratum count mismatch)")

// State captures the sampler's current mutable state.
func (o *Sampler) State() *State {
	num, pred, true_ := o.est.Sums()
	sumW, sumW2, yy, yz, zz := o.est.Moments()
	return &State{
		Prior0:     append([]float64(nil), o.prior0...),
		Prior1:     append([]float64(nil), o.prior1...),
		Count0:     append([]float64(nil), o.count0...),
		Count1:     append([]float64(nil), o.count1...),
		LabelsSeen: append([]int(nil), o.labelsSeen...),
		PiInit:     append([]float64(nil), o.piInit...),
		FInit:      o.fInit,
		Estimator: EstimatorState{
			Num: num, Pred: pred, True: true_, N: o.est.N(),
			SumW: sumW, SumW2: sumW2, YY: yy, YZ: yz, ZZ: zz,
		},
		Iterations: o.iterations,
		RNG:        o.rng.State(),
		StratSumW:  append([]float64(nil), o.stratSumW...),
		StratSumW2: append([]float64(nil), o.stratSumW2...),
	}
}

// Restore overwrites the sampler's mutable state from a snapshot taken on a
// sampler with the same pool, stratification and configuration. The random
// stream resumes exactly where the snapshot left off.
func (o *Sampler) Restore(st *State) error {
	k := o.str.K()
	if len(st.Prior0) != k || len(st.Prior1) != k ||
		len(st.Count0) != k || len(st.Count1) != k ||
		len(st.LabelsSeen) != k || len(st.PiInit) != k {
		return ErrBadState
	}
	// The per-stratum moments are optional (older snapshots) but must match
	// the stratification when present.
	if (st.StratSumW != nil && len(st.StratSumW) != k) ||
		(st.StratSumW2 != nil && len(st.StratSumW2) != k) {
		return ErrBadState
	}
	// Validate the random stream before mutating anything: a corrupted
	// snapshot must leave the sampler untouched.
	if err := o.rng.Restore(st.RNG); err != nil {
		return err
	}
	copy(o.prior0, st.Prior0)
	copy(o.prior1, st.Prior1)
	copy(o.count0, st.Count0)
	copy(o.count1, st.Count1)
	copy(o.labelsSeen, st.LabelsSeen)
	copy(o.piInit, st.PiInit)
	o.fInit = st.FInit
	o.est.SetSums(st.Estimator.Num, st.Estimator.Pred, st.Estimator.True, st.Estimator.N)
	o.est.SetMoments(st.Estimator.SumW, st.Estimator.SumW2, st.Estimator.YY, st.Estimator.YZ, st.Estimator.ZZ)
	if st.StratSumW != nil {
		copy(o.stratSumW, st.StratSumW)
	} else {
		clear(o.stratSumW)
	}
	if st.StratSumW2 != nil {
		copy(o.stratSumW2, st.StratSumW2)
	} else {
		clear(o.stratSumW2)
	}
	o.iterations = st.Iterations
	// The cached instrumental distribution (and any cache derived from it)
	// belongs to the overwritten state: force a rebuild on the next draw.
	o.invalidateV()
	return nil
}
