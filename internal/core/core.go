// Package core implements OASIS — Optimal Asymptotic Sequential Importance
// Sampling — the paper's primary contribution (§4, Algorithms 2 and 3).
//
// OASIS estimates the F-measure of an ER system by adaptive importance
// sampling over score strata:
//
//  1. The pool is stratified by similarity score (package strata,
//     Algorithm 1).
//  2. Each stratum k carries a latent match probability π_k with a Beta
//     prior initialised from the stratum's mean (probability-mapped) score
//     (Algorithm 2); oracle labels update independent Beta posteriors
//     (Eqn. 10–11).
//  3. Every iteration, the stratified asymptotically optimal instrumental
//     distribution v* (the stratified Eqn. 5) is recomputed from the current
//     estimates F̂ and π̂, mixed ε-greedily with the stratum weights ω for
//     positivity (Eqn. 12), and one pair is drawn: stratum k* ~ v, pair
//     uniform within P_k*.
//  4. The F-measure is estimated by the bias-corrected AIS estimator
//     (Eqn. 3) with importance weights w = ω_k / v_k (Algorithm 3 line 6).
//
// The ε-greedy mixture keeps every stratum reachable, which bounds the
// importance weights by 1/ε and yields the consistency guarantee of
// Theorem 3; this is checked empirically by the package tests.
package core

import (
	"errors"
	"math"
	"time"

	"oasis/internal/estimator"
	"oasis/internal/oracle"
	"oasis/internal/pool"
	"oasis/internal/rng"
	"oasis/internal/strata"
)

// Config holds the OASIS hyperparameters of Algorithm 3.
type Config struct {
	// Alpha is the F-measure weight α ∈ [0, 1]; 1/2 in the paper's
	// experiments (§6.3).
	Alpha float64
	// Epsilon is the ε-greedy exploration weight in (0, 1]; the paper uses
	// 1e-3. Default 1e-3.
	Epsilon float64
	// PriorStrength is η > 0, the weight of the score-based Beta prior; the
	// paper uses 2K. Default 2K.
	PriorStrength float64
	// DisablePriorDecay turns off the practical modification of Remark 4
	// (prior pseudo-counts of a stratum down-weighted by 1/(1+n_k) as labels
	// arrive). Decay is ON by default, matching the released reference
	// implementation; disabling it reproduces the bare Algorithm 3.
	DisablePriorDecay bool
	// PosteriorEstimate reports (and adapts on) the stratified posterior
	// plug-in estimate F̂ = Σ ω_k π̂_k λ_k / (α Σ ω_k λ_k + (1−α) Σ ω_k π̂_k)
	// instead of the importance-weighted ratio of Eqn. (3). After the
	// pipeline's thresholding, strata are (near-)prediction-pure, so the
	// within-stratum independence approximation of Algorithm 2 line 8 is
	// essentially exact; the plug-in often has lower variance early. The
	// default (false) is the estimator the paper analyses.
	PosteriorEstimate bool
	// TrustedPool skips New's O(N) validation scan of the pool columns. Set
	// it only for pools whose columns are already validated by construction —
	// e.g. resolved from the content-addressed pool store, whose load path
	// verifies finiteness against CRC-pinned bytes. For a warm million-pair
	// pool the scan is the dominant cost of building a sampler.
	TrustedPool bool
}

func (c *Config) defaults(k int) {
	if c.Epsilon <= 0 {
		c.Epsilon = 1e-3
	}
	if c.Epsilon > 1 {
		c.Epsilon = 1
	}
	if c.PriorStrength <= 0 {
		c.PriorStrength = 2 * float64(k)
	}
}

// Sampler is the OASIS sampler/estimator. Create with New, then call Step
// repeatedly; Estimate returns the current F̂ at any time.
type Sampler struct {
	pool *pool.Pool
	str  *strata.Strata
	cfg  Config
	rng  *rng.RNG

	// Bayesian model state: gamma0[k], gamma1[k] are the Beta posterior
	// pseudo-counts of matches and non-matches (rows of Γ in Eqn. 9/10);
	// labelsSeen[k] = n_k counts actual labels per stratum for prior decay.
	prior0, prior1 []float64
	count0, count1 []float64
	labelsSeen     []int

	// Per-stratum weight moments over committed labels: Σw and Σw² broken
	// out by the stratum the draw came from. The estimator keeps only the
	// pooled moments; these per-stratum views feed the convergence
	// diagnostics (stratum-local ESS, weight-mass shares, allocation skew)
	// without touching the draw path — two adds per Commit.
	stratSumW, stratSumW2 []float64

	// Initial estimates (Algorithm 2).
	piInit []float64
	fInit  float64

	est *estimator.Weighted

	// Scratch buffers reused across iterations.
	piBuf []float64
	vStar []float64
	v     []float64

	// Cached instrumental distribution. v(t) depends only on the Beta
	// posterior and the running estimate, both of which change exactly when a
	// label is committed (or a snapshot restored) — the adaptive-IS update
	// structure — so vCum, a prepared O(log K) inverse-CDF sampler over v, is
	// rebuilt lazily behind vFresh. A batch of draws with no intervening
	// commit pays for one rebuild: amortized O(1) per draw, zero allocations.
	// vEpoch counts rebuild-invalidating events so derived caches in outer
	// layers (the proposal engine in package oasis) can follow along.
	vCum    *rng.Cumulative
	vWeight []float64 // ω_k / v_k per stratum, refreshed with vCum
	vFresh  bool
	vEpoch  uint64

	// Rebuild accounting for tracing: how many times the cached v(t) was
	// actually rebuilt and the nanoseconds those rebuilds took. Read via
	// RebuildStats under the owning session's lock; the fresh-path check
	// above costs nothing extra.
	rebuilds     uint64
	rebuildNanos int64

	// membersFlat concatenates the strata member lists as int32 (stratum k
	// occupies [strataOff[k], strataOff[k+1])), preserving each stratum's
	// item order. The uniform pair pick is a random access; the compact
	// layout halves its cache footprint versus [][]int and drops a pointer
	// chase.
	membersFlat []int32
	strataOff   []int32

	iterations int
}

// ErrNoStrata is returned when the stratification is empty.
var ErrNoStrata = errors.New("core: empty stratification")

// FlatMembers is a flattened strata membership: Members concatenates the
// per-stratum item lists in stratum order (stratum k occupies
// [Off[k], Off[k+1])), preserving each stratum's item order. It is a pure
// function of the Strata and read-only after construction, so one
// FlatMembers can be shared across every sampler built over the same
// stratification (see NewWithMembers).
type FlatMembers struct {
	Members []int32
	Off     []int32
}

// Flatten computes the FlatMembers of s.
func Flatten(s *strata.Strata) FlatMembers {
	k := s.K()
	fm := FlatMembers{
		Members: make([]int32, 0, s.N()),
		Off:     make([]int32, k+1),
	}
	for j := 0; j < k; j++ {
		fm.Off[j] = int32(len(fm.Members))
		for _, i := range s.Items[j] {
			fm.Members = append(fm.Members, int32(i))
		}
	}
	fm.Off[k] = int32(len(fm.Members))
	return fm
}

// New builds an OASIS sampler over an already-stratified pool. The Strata
// must partition exactly the pool's items (as produced by strata.CSF or
// strata.EqualSize on the same pool).
func New(p *pool.Pool, s *strata.Strata, cfg Config, r *rng.RNG) (*Sampler, error) {
	return NewWithMembers(p, s, cfg, r, FlatMembers{})
}

// NewWithMembers is New with a precomputed flattened membership, aliased
// read-only — the caller may share one FlatMembers (from Flatten over the
// same Strata) across samplers, saving the O(N) rebuild per sampler. A
// zero-value fm means "flatten here".
func NewWithMembers(p *pool.Pool, s *strata.Strata, cfg Config, r *rng.RNG, fm FlatMembers) (*Sampler, error) {
	if !cfg.TrustedPool {
		if err := p.Validate(); err != nil {
			return nil, err
		}
	}
	if s == nil || s.K() == 0 {
		return nil, ErrNoStrata
	}
	if s.N() != p.N() {
		return nil, errors.New("core: strata do not cover the pool")
	}
	k := s.K()
	cfg.defaults(k)

	o := &Sampler{
		pool:       p,
		str:        s,
		cfg:        cfg,
		rng:        r,
		prior0:     make([]float64, k),
		prior1:     make([]float64, k),
		count0:     make([]float64, k),
		count1:     make([]float64, k),
		labelsSeen: make([]int, k),
		stratSumW:  make([]float64, k),
		stratSumW2: make([]float64, k),
		piInit:     make([]float64, k),
		est:        estimator.NewWeighted(cfg.Alpha),
		piBuf:      make([]float64, k),
		vStar:      make([]float64, k),
		v:          make([]float64, k),
	}

	// ---- Algorithm 2: initialisation from scores ----
	// π̂(0)_k ← mean probability-mapped score of stratum k (lines 2–5), kept
	// strictly inside (0,1) so the Beta prior is proper.
	const pad = 1e-4
	for j := 0; j < k; j++ {
		pi0 := s.MeanProbScore[j]
		if pi0 < pad {
			pi0 = pad
		}
		if pi0 > 1-pad {
			pi0 = 1 - pad
		}
		o.piInit[j] = pi0
	}
	// F̂(0) from π̂(0) and λ (line 8).
	var num, predMass, trueMass float64
	for j := 0; j < k; j++ {
		w := s.Weights[j]
		num += w * o.piInit[j] * s.MeanPred[j]
		predMass += w * s.MeanPred[j]
		trueMass += w * o.piInit[j]
	}
	den := cfg.Alpha*predMass + (1-cfg.Alpha)*trueMass
	if den > 0 {
		o.fInit = num / den
	} else {
		o.fInit = 0
	}
	if o.fInit > 1 {
		o.fInit = 1
	}
	// Γ(0) = η[π̂(0); 1−π̂(0)] (Algorithm 3 line 1).
	for j := 0; j < k; j++ {
		o.prior0[j] = cfg.PriorStrength * o.piInit[j]
		o.prior1[j] = cfg.PriorStrength * (1 - o.piInit[j])
	}
	if fm.Members == nil {
		fm = Flatten(s)
	} else if len(fm.Members) != s.N() || len(fm.Off) != k+1 {
		return nil, errors.New("core: flat members do not match the strata")
	}
	o.membersFlat = fm.Members
	o.strataOff = fm.Off
	return o, nil
}

// Name identifies the method in reports.
func (o *Sampler) Name() string { return "OASIS" }

// K returns the number of strata.
func (o *Sampler) K() int { return o.str.K() }

// InitialF returns the score-based initial estimate F̂(0) of Algorithm 2.
func (o *Sampler) InitialF() float64 { return o.fInit }

// InitialPi returns π̂(0), the score-based initial oracle-probability
// estimates (one per stratum).
func (o *Sampler) InitialPi() []float64 {
	return append([]float64(nil), o.piInit...)
}

// Iterations returns the number of Step calls made so far.
func (o *Sampler) Iterations() int { return o.iterations }

// PosteriorMean writes the current posterior mean π̂(t) (Eqn. 11) into dst,
// applying the Remark 4 prior decay when configured, and returns dst.
// A nil dst allocates.
func (o *Sampler) PosteriorMean(dst []float64) []float64 {
	k := o.str.K()
	if dst == nil {
		dst = make([]float64, k)
	}
	for j := 0; j < k; j++ {
		p0, p1 := o.prior0[j], o.prior1[j]
		if !o.cfg.DisablePriorDecay && o.labelsSeen[j] > 0 {
			f := 1 / float64(1+o.labelsSeen[j])
			p0 *= f
			p1 *= f
		}
		a := p0 + o.count0[j]
		b := p1 + o.count1[j]
		dst[j] = a / (a + b)
	}
	return dst
}

// pluginF computes the stratified posterior plug-in estimate of F from the
// current posterior means (Algorithm 2 line 8 with π̂(t) in place of π̂(0)).
func (o *Sampler) pluginF() float64 {
	pi := o.PosteriorMean(o.piBuf)
	var num, predMass, trueMass float64
	for j := range pi {
		w := o.str.Weights[j]
		num += w * pi[j] * o.str.MeanPred[j]
		predMass += w * o.str.MeanPred[j]
		trueMass += w * pi[j]
	}
	den := o.cfg.Alpha*predMass + (1-o.cfg.Alpha)*trueMass
	if den <= 0 {
		return o.fInit
	}
	f := num / den
	if f > 1 {
		f = 1
	}
	return f
}

// currentF returns the working F̂ used to build v(t): the AIS estimate when
// defined (or the posterior plug-in in PosteriorEstimate mode), otherwise
// the initial score-based guess — the τ=0 term of Algorithm 3 line 11.
func (o *Sampler) currentF() float64 {
	if o.cfg.PosteriorEstimate {
		return o.pluginF()
	}
	if o.est.Defined() {
		return o.est.Estimate()
	}
	return o.fInit
}

// invalidateV marks the cached instrumental distribution stale. Every
// mutation of the posterior or estimator state must call it.
func (o *Sampler) invalidateV() {
	o.vFresh = false
	o.vEpoch++
}

// refreshV rebuilds v(t) and the prepared stratum sampler if (and only if)
// the posterior changed since the last rebuild. The common batched case —
// many draws, zero intervening commits — hits the cached path, so the
// per-draw cost is O(log K) with zero allocations.
func (o *Sampler) refreshV() {
	if o.vFresh {
		return
	}
	start := time.Now()
	o.computeV()
	// o.v is strictly positive (ε-greedy mixture over non-empty strata), so
	// Reset cannot fail; it reuses vCum's buffer after the first rebuild.
	if o.vCum == nil {
		o.vCum = &rng.Cumulative{}
	}
	if err := o.vCum.Reset(o.v); err != nil {
		// Unreachable for a well-formed sampler; fall back to a proportional
		// distribution rather than panicking in a serving path.
		copy(o.v, o.str.Weights)
		_ = o.vCum.Reset(o.v)
	}
	if o.vWeight == nil {
		o.vWeight = make([]float64, len(o.v))
	}
	// Hoist the importance-weight division out of the draw path: the weight
	// is a pure function of the cached v.
	for j, vj := range o.v {
		o.vWeight[j] = o.str.Weights[j] / vj
	}
	o.vFresh = true
	o.rebuilds++
	o.rebuildNanos += time.Since(start).Nanoseconds()
}

// RebuildStats reports how many times the cached instrumental distribution
// was rebuilt (the dirty-flag cache behind the O(1)-amortized draw path)
// and the total nanoseconds spent rebuilding. Callers serialise against
// draws and commits, as with every other sampler method.
func (o *Sampler) RebuildStats() (count uint64, nanos int64) {
	return o.rebuilds, o.rebuildNanos
}

// Epoch identifies the current instrumental distribution: it increments
// every time a commit or restore invalidates v(t). Outer layers cache
// structures derived from v (e.g. the proposal engine's availability-masked
// sampler) and rebuild them when the epoch moves.
func (o *Sampler) Epoch() uint64 { return o.vEpoch }

// computeV fills o.v with the ε-greedy instrumental distribution of
// Eqn. (12), normalised, using the current estimates.
func (o *Sampler) computeV() {
	k := o.str.K()
	f := o.currentF()
	pi := o.PosteriorMean(o.piBuf)
	total := 0.0
	for j := 0; j < k; j++ {
		v := StratifiedOptimal(o.cfg.Alpha, f, pi[j], o.str.MeanPred[j], o.str.Weights[j])
		o.vStar[j] = v
		total += v
	}
	for j := 0; j < k; j++ {
		q := o.cfg.Epsilon * o.str.Weights[j]
		if total > 0 {
			q += (1 - o.cfg.Epsilon) * o.vStar[j] / total
		} else {
			// Degenerate v*: fall back to proportional sampling.
			q = o.str.Weights[j]
		}
		o.v[j] = q
	}
}

// StratifiedOptimal evaluates one component of the stratified asymptotically
// optimal instrumental distribution (§4.2.3), up to normalisation:
//
//	v*_k ∝ ω_k[(1−α)(1−λ_k)·F·√π_k + λ_k·√(α²F²(1−π_k) + (1−F)²π_k)]
func StratifiedOptimal(alpha, f, pi, lambda, omega float64) float64 {
	if f < 0 {
		f = 0
	}
	if f > 1 {
		f = 1
	}
	if pi < 0 {
		pi = 0
	}
	if pi > 1 {
		pi = 1
	}
	nonPred := (1 - alpha) * (1 - lambda) * f * math.Sqrt(pi)
	pred := lambda * math.Sqrt(alpha*alpha*f*f*(1-pi)+(1-f)*(1-f)*pi)
	return omega * (nonPred + pred)
}

// Instrumental writes the current ε-greedy stratum distribution v(t) into
// dst and returns it (diagnostics; Figure 4c–d). A nil dst allocates.
func (o *Sampler) Instrumental(dst []float64) []float64 {
	o.refreshV()
	if dst == nil {
		dst = make([]float64, len(o.v))
	}
	copy(dst, o.v)
	return dst
}

// InstrumentalCached refreshes the cache if needed and returns the sampler's
// internal v(t) slice without copying. Callers must treat it as read-only
// and must not hold it across a Commit or Restore; it exists for the
// allocation-free proposal engine in package oasis.
func (o *Sampler) InstrumentalCached() []float64 {
	o.refreshV()
	return o.v
}

// Draw is one with-replacement draw from the instrumental distribution,
// carrying everything needed to later fold a label into the estimate: the
// drawn pair, its stratum, and the importance weight w = ω_k / v_k frozen at
// draw time (Algorithm 3 line 6). Separating the draw from the label lets
// callers batch proposals and apply labels asynchronously (the session
// subsystem's propose/commit protocol) without changing the estimator: each
// draw's weight uses the instrumental distribution that produced it, exactly
// as in the sequential algorithm.
type Draw struct {
	// Pair is the drawn pool index.
	Pair int
	// Stratum is the stratum the pair was drawn from.
	Stratum int
	// Weight is the importance weight ω_k / v_k at draw time.
	Weight float64
}

// Draw draws one pair from the current instrumental distribution (stratum
// k* ~ v(t), pair uniform within P_k*) WITHOUT querying the oracle or
// touching any estimator state. Pair it with Commit once the label arrives.
// v(t) is recomputed only if a commit or restore happened since the last
// draw — amortized O(1) per draw, O(log K) worst case for the stratum pick,
// zero allocations — and the draw sequence is bit-for-bit identical to
// rebuilding v and inverse-CDF-scanning it on every call, the unoptimized
// sequential Algorithm 3 (see TestGoldenSequence).
func (o *Sampler) Draw() (Draw, error) {
	kStar, w := o.DrawStratum()
	return Draw{
		Pair:    o.UniformPair(kStar),
		Stratum: kStar,
		Weight:  w,
	}, nil
}

// DrawStratum draws stratum k* ~ v(t) through the cached prepared sampler
// and returns it with the importance weight ω_k*/v_k* frozen at draw time
// (Algorithm 3 line 6). It cannot fail: a well-formed sampler always has a
// strictly positive v(t). Callers that pick the pair themselves (the
// rejection-free proposal engine) use this with UniformPair or Rand.
func (o *Sampler) DrawStratum() (int, float64) {
	o.refreshV()
	kStar := o.vCum.Draw(o.rng)
	return kStar, o.vWeight[kStar]
}

// UniformPair draws one pool index uniformly from stratum k, consuming one
// variate from the sampler's stream — the pair pick of Algorithm 3 line 5.
func (o *Sampler) UniformPair(k int) int {
	off := o.strataOff[k]
	size := int(o.strataOff[k+1] - off)
	return int(o.membersFlat[int(off)+o.rng.Intn(size)])
}

// Rand exposes the sampler's random stream so that the proposal engine in
// package oasis draws from the single per-sampler sequence (keeping runs
// reproducible from one seed). Do not use it from other goroutines.
func (o *Sampler) Rand() *rng.RNG { return o.rng }

// Commit folds the label of a previous Draw into the sampler: the Beta
// posterior update of Algorithm 3 line 9 and the AIS estimate update of
// line 11. Draws may be committed in any order and at any later time; the
// importance weight was frozen when the draw was made.
func (o *Sampler) Commit(d Draw, label bool) {
	o.iterations++
	// The posterior and the running estimate are about to change, so the
	// cached v(t) (and everything derived from it) goes stale.
	o.invalidateV()
	// Posterior update (line 9): matches increment the match pseudo-count.
	o.labelsSeen[d.Stratum]++
	if label {
		o.count0[d.Stratum]++
	} else {
		o.count1[d.Stratum]++
	}
	o.stratSumW[d.Stratum] += d.Weight
	o.stratSumW2[d.Stratum] += d.Weight * d.Weight
	// Estimate update (line 11).
	o.est.Add(d.Weight, label, o.pool.Preds[d.Pair])
}

// StratumStats copies the per-stratum diagnostic accumulators into the
// given slices (each nil slice allocates; non-nil ones must be length K):
// labelled-draw counts and the Σw/Σw² weight moments by stratum. Callers
// serialise against Commit and Restore like every other sampler method.
func (o *Sampler) StratumStats(draws []int64, sumW, sumW2 []float64) ([]int64, []float64, []float64) {
	k := o.str.K()
	if draws == nil {
		draws = make([]int64, k)
	}
	if sumW == nil {
		sumW = make([]float64, k)
	}
	if sumW2 == nil {
		sumW2 = make([]float64, k)
	}
	for j := 0; j < k; j++ {
		draws[j] = int64(o.labelsSeen[j])
	}
	copy(sumW, o.stratSumW)
	copy(sumW2, o.stratSumW2)
	return draws, sumW, sumW2
}

// Step performs one iteration of Algorithm 3: recompute v(t), draw a
// stratum and a pair, query the oracle, update the Beta posterior and the
// AIS estimate. It returns oracle.ErrBudgetExhausted if the draw required a
// fresh label beyond the budget.
func (o *Sampler) Step(b *oracle.Budgeted) error {
	d, err := o.Draw()
	if err != nil {
		return err
	}
	label, err := b.TryLabel(d.Pair)
	if err != nil {
		return err
	}
	o.Commit(d, label)
	return nil
}

// Estimate returns the current F̂: the AIS estimate once defined (or the
// posterior plug-in in PosteriorEstimate mode), otherwise the score-based
// initial estimate (the τ=0 term of Algorithm 3 line 11).
func (o *Sampler) Estimate() float64 {
	return o.currentF()
}

// AISEstimate returns the importance-weighted estimate of Eqn. (3)
// regardless of the configured reporting mode (NaN while undefined).
func (o *Sampler) AISEstimate() float64 { return o.est.Estimate() }

// Estimator exposes the underlying AIS estimator for health diagnostics
// (ESS, asymptotic variance). Callers must not mutate it.
func (o *Sampler) Estimator() *estimator.Weighted { return o.est }

// TruePi computes the population per-stratum oracle probabilities π from the
// pool's ground truth (diagnostics; Figure 4b).
func TruePi(p *pool.Pool, s *strata.Strata) []float64 {
	out := make([]float64, s.K())
	for k, items := range s.Items {
		sum := 0.0
		for _, i := range items {
			sum += p.TruthProb[i]
		}
		out[k] = sum / float64(len(items))
	}
	return out
}

// TrueOptimalV computes the population optimal stratified instrumental
// distribution v* from ground truth: Eqn. (5) with the true F_α and true
// π_k (diagnostics; Figure 4c–d). The result is normalised.
func TrueOptimalV(p *pool.Pool, s *strata.Strata, alpha float64) []float64 {
	f := p.TrueFMeasure(alpha)
	if math.IsNaN(f) {
		f = 0
	}
	pi := TruePi(p, s)
	out := make([]float64, s.K())
	total := 0.0
	for k := range out {
		out[k] = StratifiedOptimal(alpha, f, pi[k], s.MeanPred[k], s.Weights[k])
		total += out[k]
	}
	if total > 0 {
		for k := range out {
			out[k] /= total
		}
		return out
	}
	// Degenerate pools (e.g. F = 1 with pure strata) have identically zero
	// v*: the estimator has no asymptotic variance to minimise and any
	// instrumental distribution is optimal. Return the proportional one.
	copy(out, s.Weights)
	return out
}
