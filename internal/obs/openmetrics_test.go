package obs

// Strict validation of both text expositions. The OpenMetrics checker
// enforces the parts of the 1.0 spec the writer is responsible for: the
// # EOF terminator, counter families named without _total (samples with),
// canonical-float le values, exemplars only on _bucket lines with the
// exemplar value inside its bucket's range. The 0.0.4 checker proves
// exemplars never leak into the Prometheus format, where they are invalid.

import (
	"math"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

func buildExemplarRegistry(t *testing.T) *Registry {
	t.Helper()
	r := NewRegistry()
	c := r.Counter("demo_requests_total", "Requests.", Label{Name: "code", Value: "2xx"})
	c.Add(7)
	g := r.Gauge("demo_in_flight", "In flight.")
	g.Set(3)
	h := r.Histogram("demo_latency_seconds", "Latency.", []float64{0.01, 0.1, 1})
	h.Observe(0.005)
	h.ObserveExemplar(0.05, Exemplar{
		Labels: []Label{{Name: "trace_id", Value: "4bf92f3577b34da6a3ce929d0e0e4736"}},
		TS:     1754650000.25,
	})
	h.ObserveExemplar(5, Exemplar{
		Labels: []Label{{Name: "trace_id", Value: "00f067aa0ba902b700f067aa0ba902b7"}},
	})
	r.DeclareGauge("demo_collected", "Collector-fed gauge.")
	r.AddCollector(func(emit Emit) {
		emit("demo_collected", 1.5, Label{Name: "k", Value: "v"})
	})
	return r
}

var (
	omSampleRe = regexp.MustCompile(
		`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^{}]*\})? (-?[0-9.eE+]+|\+Inf|-Inf|NaN)( # (\{[^{}]*\}) (-?[0-9.eE+]+|\+Inf) ([0-9.eE+]+))?( # (\{[^{}]*\}) (-?[0-9.eE+]+|\+Inf))?$`)
	leRe = regexp.MustCompile(`le="([^"]+)"`)
)

// TestOpenMetricsStrict parses the OpenMetrics output line by line and
// enforces the format contract.
func TestOpenMetricsStrict(t *testing.T) {
	var sb strings.Builder
	if _, err := buildExemplarRegistry(t).WriteOpenMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	if !strings.HasSuffix(text, "# EOF\n") {
		t.Fatalf("exposition does not end with # EOF:\n%s", text)
	}
	if strings.Count(text, "# EOF") != 1 {
		t.Fatalf("exposition has %d # EOF markers, want 1", strings.Count(text, "# EOF"))
	}

	types := map[string]string{} // family -> type
	lines := strings.Split(strings.TrimSuffix(text, "\n"), "\n")
	sawExemplar := false
	for i, line := range lines {
		if line == "# EOF" {
			if i != len(lines)-1 {
				t.Fatalf("# EOF at line %d is not last", i)
			}
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			types[parts[2]] = parts[3]
			if parts[3] == "counter" && strings.HasSuffix(parts[2], "_total") {
				t.Errorf("counter family %q keeps its _total suffix in TYPE", parts[2])
			}
			continue
		}
		m := omSampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("unparseable sample line: %q", line)
		}
		name, hasExemplar := m[1], m[4] != ""
		if hasExemplar {
			sawExemplar = true
			if !strings.HasSuffix(name, "_bucket") {
				t.Errorf("exemplar on non-bucket sample %q", name)
			}
			// The exemplar value must lie within the bucket: v <= le.
			le := leRe.FindStringSubmatch(m[2])
			if le == nil {
				t.Fatalf("bucket line without le: %q", line)
			}
			bound := math.Inf(1)
			if le[1] != "+Inf" {
				var err error
				bound, err = strconv.ParseFloat(le[1], 64)
				if err != nil {
					t.Fatalf("le %q not a float: %q", le[1], line)
				}
				if !strings.ContainsAny(le[1], ".eE") {
					t.Errorf("le %q not in canonical float form: %q", le[1], line)
				}
			}
			exv, err := strconv.ParseFloat(m[6], 64)
			if err != nil {
				t.Fatalf("exemplar value %q not a float: %q", m[6], line)
			}
			if exv > bound {
				t.Errorf("exemplar value %v above bucket bound %v: %q", exv, bound, line)
			}
			if !strings.Contains(m[5], "trace_id=") {
				t.Errorf("exemplar without trace_id label: %q", line)
			}
		}
		// Counter samples must carry _total; their family must be typed.
		base := name
		for _, suf := range []string{"_bucket", "_sum", "_count", "_total"} {
			base = strings.TrimSuffix(base, suf)
		}
		if ty, ok := types[base]; ok && ty == "counter" && !strings.HasSuffix(name, "_total") {
			t.Errorf("counter sample %q lacks _total suffix", name)
		}
	}
	if !sawExemplar {
		t.Fatal("no exemplar rendered")
	}
	if !strings.Contains(text, `demo_requests_total{code="2xx"} 7`) {
		t.Errorf("counter sample missing _total form:\n%s", text)
	}
	if !strings.Contains(text, "# TYPE demo_requests counter") {
		t.Errorf("counter TYPE line not stripped of _total:\n%s", text)
	}
	if !strings.Contains(text, `demo_collected{k="v"} 1.5`) {
		t.Errorf("collector sample missing:\n%s", text)
	}
	// The timestamped exemplar renders its timestamp, the other omits it.
	if !strings.Contains(text, `} 0.05 1754650000.25`) {
		t.Errorf("timestamped exemplar missing:\n%s", text)
	}
}

// TestPrometheus004NoExemplars proves exemplars never leak into the 0.0.4
// exposition, where a trailing "# {...}" is a parse error.
func TestPrometheus004NoExemplars(t *testing.T) {
	var sb strings.Builder
	if _, err := buildExemplarRegistry(t).WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(sb.String(), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if strings.Contains(line, "#") {
			t.Fatalf("0.0.4 sample line carries a comment/exemplar: %q", line)
		}
	}
	if strings.Contains(sb.String(), "# EOF") {
		t.Fatal("0.0.4 exposition carries an OpenMetrics EOF marker")
	}
	// The counter keeps its full name in 0.0.4 TYPE lines.
	if !strings.Contains(sb.String(), "# TYPE demo_requests_total counter") {
		t.Errorf("0.0.4 TYPE line altered:\n%s", sb.String())
	}
}

// TestExemplarOverwriteAndCount checks ObserveExemplar counts like Observe
// and the slot holds the newest exemplar.
func TestExemplarOverwriteAndCount(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("x_seconds", "x", []float64{1})
	h.ObserveExemplar(0.5, Exemplar{Labels: []Label{{Name: "trace_id", Value: "aaa"}}})
	h.ObserveExemplar(0.7, Exemplar{Labels: []Label{{Name: "trace_id", Value: "bbb"}}})
	if h.Count() != 2 {
		t.Fatalf("count = %d, want 2", h.Count())
	}
	if got := h.Sum(); math.Abs(got-1.2) > 1e-12 {
		t.Fatalf("sum = %v, want 1.2", got)
	}
	var sb strings.Builder
	if _, err := r.WriteOpenMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "aaa") || !strings.Contains(sb.String(), "bbb") {
		t.Fatalf("exemplar slot not overwritten by newest:\n%s", sb.String())
	}
}
