package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// ContentType is the value to send in the Content-Type header when
// serving WriteTo output over HTTP.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// ContentTypeOpenMetrics is the Content-Type for WriteOpenMetrics output.
const ContentTypeOpenMetrics = "application/openmetrics-text; version=1.0.0; charset=utf-8"

// WriteTo renders every family in Prometheus text exposition format
// (version 0.0.4): families sorted by name, each preceded by # HELP and
// # TYPE lines, histogram series expanded into cumulative _bucket lines
// plus _sum and _count. Collector callbacks run first (outside the
// registry lock) to produce samples for declared families.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	fams, collectors, declared := r.snapshot()

	// Gather collector samples per family.
	collected := make(map[string][]collectedSample)
	emit := func(name string, value float64, labels ...Label) {
		if !declared[name] {
			panic(fmt.Sprintf("obs: collector emitted into undeclared family %q", name))
		}
		collected[name] = append(collected[name], collectedSample{labels: labels, value: value})
	}
	for _, c := range collectors {
		c(emit)
	}

	bw := bufio.NewWriter(w)
	cw := &countingWriter{w: bw}
	for _, f := range fams {
		writeHeader(cw, f)
		for _, c := range f.children {
			switch f.kind {
			case kindCounter:
				writeSample(cw, f.name, "", c.labels, formatUint(c.counter.Value()))
			case kindGauge:
				writeSample(cw, f.name, "", c.labels, formatInt(c.gauge.Value()))
			case kindHistogram:
				writeHistogram(cw, f.name, c.labels, c.hist)
			}
		}
		samples := collected[f.name]
		// Sort for a deterministic exposition independent of collector
		// iteration order (session maps, shard loops).
		sort.SliceStable(samples, func(i, j int) bool {
			return labelString(samples[i].labels) < labelString(samples[j].labels)
		})
		for _, s := range samples {
			writeSample(cw, f.name, "", s.labels, formatFloat(s.value))
		}
	}
	if err := bw.Flush(); cw.err == nil {
		cw.err = err
	}
	return cw.n, cw.err
}

type collectedSample struct {
	labels []Label
	value  float64
}

// WriteOpenMetrics renders every family in OpenMetrics 1.0 text format:
// counter family names drop their _total suffix in HELP/TYPE (samples keep
// it), bucket le values use canonical float form, histogram buckets carry
// their exemplars (`# {trace_id="..."} value ts` after the bucket value),
// and the exposition ends with the mandatory # EOF terminator. The 0.0.4
// exposition (WriteTo) never renders exemplars — they are not valid there.
func (r *Registry) WriteOpenMetrics(w io.Writer) (int64, error) {
	fams, collectors, declared := r.snapshot()

	collected := make(map[string][]collectedSample)
	emit := func(name string, value float64, labels ...Label) {
		if !declared[name] {
			panic(fmt.Sprintf("obs: collector emitted into undeclared family %q", name))
		}
		collected[name] = append(collected[name], collectedSample{labels: labels, value: value})
	}
	for _, c := range collectors {
		c(emit)
	}

	bw := bufio.NewWriter(w)
	cw := &countingWriter{w: bw}
	for _, f := range fams {
		// OpenMetrics counters: the family is named without the _total
		// suffix, every sample with it.
		famName, sampleName := f.name, f.name
		if f.kind == kindCounter {
			famName = strings.TrimSuffix(f.name, "_total")
			sampleName = famName + "_total"
		}
		cw.writeString("# HELP ")
		cw.writeString(famName)
		cw.writeString(" ")
		cw.writeString(escapeHelp(f.help))
		cw.writeString("\n# TYPE ")
		cw.writeString(famName)
		cw.writeString(" ")
		cw.writeString(f.kind.String())
		cw.writeString("\n")
		for _, c := range f.children {
			switch f.kind {
			case kindCounter:
				writeSample(cw, sampleName, "", c.labels, formatUint(c.counter.Value()))
			case kindGauge:
				writeSample(cw, sampleName, "", c.labels, formatInt(c.gauge.Value()))
			case kindHistogram:
				writeOMHistogram(cw, f.name, c.labels, c.hist)
			}
		}
		samples := collected[f.name]
		sort.SliceStable(samples, func(i, j int) bool {
			return labelString(samples[i].labels) < labelString(samples[j].labels)
		})
		for _, s := range samples {
			writeSample(cw, sampleName, "", s.labels, formatOMFloat(s.value))
		}
	}
	cw.writeString("# EOF\n")
	if err := bw.Flush(); cw.err == nil {
		cw.err = err
	}
	return cw.n, cw.err
}

// writeOMHistogram renders one histogram series in OpenMetrics form:
// canonical-float le values and per-bucket exemplars.
func writeOMHistogram(cw *countingWriter, name string, labels []Label, h *Histogram) {
	var cum uint64
	withLe := make([]Label, len(labels)+1)
	copy(withLe, labels)
	for i := 0; i <= len(h.bounds); i++ {
		cum += h.counts[i].Load()
		le := "+Inf"
		if i < len(h.bounds) {
			le = formatOMFloat(h.bounds[i])
		}
		withLe[len(labels)] = Label{Name: "le", Value: le}
		cw.writeString(name)
		cw.writeString("_bucket")
		cw.writeString(labelString(withLe))
		cw.writeString(" ")
		cw.writeString(formatUint(cum))
		if ex := h.exemplars[i].Load(); ex != nil {
			cw.writeString(" # ")
			cw.writeString(labelString(ex.Labels))
			if len(ex.Labels) == 0 {
				cw.writeString("{}")
			}
			cw.writeString(" ")
			cw.writeString(formatOMFloat(ex.Value))
			if ex.TS > 0 {
				cw.writeString(" ")
				// Timestamps render in plain decimal, not exponent form:
				// some OpenMetrics consumers reject 1.75e+09-style stamps.
				cw.writeString(strconv.FormatFloat(ex.TS, 'f', -1, 64))
			}
		}
		cw.writeString("\n")
	}
	writeSample(cw, name, "_sum", labels, formatOMFloat(h.Sum()))
	writeSample(cw, name, "_count", labels, formatUint(cum))
}

// formatOMFloat renders v in OpenMetrics canonical float form: always with
// a decimal point or exponent ("1.0", not "1"), so le values and exemplar
// numbers parse as floats under strict parsers.
func formatOMFloat(v float64) string {
	s := formatFloat(v)
	if strings.ContainsAny(s, ".eE") || s == "+Inf" || s == "-Inf" || s == "NaN" {
		return s
	}
	return s + ".0"
}

type countingWriter struct {
	w   io.Writer
	n   int64
	err error
}

func (cw *countingWriter) writeString(s string) {
	if cw.err != nil {
		return
	}
	n, err := io.WriteString(cw.w, s)
	cw.n += int64(n)
	cw.err = err
}

func writeHeader(cw *countingWriter, f *family) {
	cw.writeString("# HELP ")
	cw.writeString(f.name)
	cw.writeString(" ")
	cw.writeString(escapeHelp(f.help))
	cw.writeString("\n# TYPE ")
	cw.writeString(f.name)
	cw.writeString(" ")
	cw.writeString(f.kind.String())
	cw.writeString("\n")
}

func writeSample(cw *countingWriter, name, suffix string, labels []Label, value string) {
	cw.writeString(name)
	cw.writeString(suffix)
	cw.writeString(labelString(labels))
	cw.writeString(" ")
	cw.writeString(value)
	cw.writeString("\n")
}

func writeHistogram(cw *countingWriter, name string, labels []Label, h *Histogram) {
	// Snapshot counts first, then the sum: a concurrent Observe may add
	// to the sum after the count snapshot, but never the reverse, so the
	// exposed _sum/_count pair stays plausible (sum of <=count values).
	var cum uint64
	withLe := make([]Label, len(labels)+1)
	copy(withLe, labels)
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		withLe[len(labels)] = Label{Name: "le", Value: formatFloat(bound)}
		writeSample(cw, name, "_bucket", withLe, formatUint(cum))
	}
	cum += h.counts[len(h.bounds)].Load()
	withLe[len(labels)] = Label{Name: "le", Value: "+Inf"}
	writeSample(cw, name, "_bucket", withLe, formatUint(cum))
	writeSample(cw, name, "_sum", labels, formatFloat(h.Sum()))
	writeSample(cw, name, "_count", labels, formatUint(cum))
}

func labelString(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

func escapeHelp(v string) string {
	if !strings.ContainsAny(v, "\\\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

func formatUint(v uint64) string {
	return strconv.FormatUint(v, 10)
}

func formatInt(v int64) string {
	return strconv.FormatInt(v, 10)
}

func formatFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
