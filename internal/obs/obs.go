// Package obs is a dependency-free metrics core: atomic counters, gauges,
// and fixed-bucket latency histograms with zero allocations on the hot
// path, plus a Prometheus text-exposition writer (prom.go).
//
// Instruments are registered once at wiring time against a Registry and
// then updated lock-free from hot paths. All instrument methods are
// nil-receiver safe, so callers can hold a possibly-nil instrument and
// skip the "is metrics enabled?" branch:
//
//	var c *obs.Counter // nil: metrics disabled
//	c.Inc()            // no-op
//
// Dynamic series whose label sets are not known at wiring time (per-lane
// WAL depth, per-session sampler health) are produced at scrape time by
// collectors: the family is declared up front with DeclareGauge or
// DeclareCounter, and an AddCollector callback emits samples into it on
// every WriteTo.
package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Label is a single Prometheus label pair.
type Label struct {
	Name  string
	Value string
}

// Counter is a monotonically increasing counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one. Safe on a nil receiver.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n. Safe on a nil receiver.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count. Safe on a nil receiver.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an integer value that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set stores v. Safe on a nil receiver.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adds delta (which may be negative). Safe on a nil receiver.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value. Safe on a nil receiver.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket cumulative histogram. Observe is lock-free
// and does not allocate: the bucket index is found by binary search over
// the upper bounds and the running sum is maintained with a CAS loop over
// the float64 bit pattern. Each bucket additionally carries one exemplar
// slot (last traced observation that landed in it), exposed only by the
// OpenMetrics exposition.
type Histogram struct {
	bounds    []float64                  // sorted upper bounds; bucket i counts v <= bounds[i]
	counts    []atomic.Uint64            // len(bounds)+1; last is the +Inf overflow bucket
	sum       atomic.Uint64              // math.Float64bits of the running sum
	exemplars []atomic.Pointer[Exemplar] // len(bounds)+1, parallel to counts
}

// Exemplar is one concrete observation attached to a histogram bucket —
// typically the trace ID of a sampled request whose latency landed there,
// letting a dashboard jump from a histogram spike straight to a trace.
type Exemplar struct {
	// Labels identify the exemplar (e.g. {trace_id="4bf9..."}). The
	// OpenMetrics spec caps the combined label runes at 128; keep them short.
	Labels []Label
	// Value is the observed value the exemplar represents.
	Value float64
	// TS is the observation's wall clock in Unix seconds (0 omits the
	// timestamp from the exposition).
	TS float64
}

// bucketIdx returns the index of the bucket v falls into.
func (h *Histogram) bucketIdx(v float64) int {
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if v <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Observe records one value. Safe on a nil receiver.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.counts[h.bucketIdx(v)].Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveExemplar records one value and stores ex in the bucket's exemplar
// slot (overwriting the previous one). The exemplar's Value is forced to v,
// so the exposed exemplar always lies within its bucket's range as the
// OpenMetrics spec requires. Safe on a nil receiver; callers pass exemplars
// only for traced requests, so the extra allocation rides the sampled path.
func (h *Histogram) ObserveExemplar(v float64, ex Exemplar) {
	if h == nil {
		return
	}
	i := h.bucketIdx(v)
	h.counts[i].Add(1)
	ex.Value = v
	h.exemplars[i].Store(&ex)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations. Safe on a nil receiver.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values. Safe on a nil receiver.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// LatencyBuckets is the default bucket layout for latency histograms,
// in seconds. It spans 25µs (fast in-memory ops) to 10s (stalled fsync).
var LatencyBuckets = []float64{
	0.000025, 0.0001, 0.00025, 0.0005,
	0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25,
	0.5, 1, 2.5, 10,
}

type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// child is one labeled series of a family backed by a live instrument.
type child struct {
	labels  []Label
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

type family struct {
	name     string
	help     string
	kind     kind
	children []child
}

// Emit is the callback handed to collectors: it appends one sample to a
// previously declared family. Emitting into an undeclared family or into
// a family backed by live instruments panics — it is a wiring bug.
type Emit func(name string, value float64, labels ...Label)

// Registry holds metric families and renders them in Prometheus text
// exposition format via WriteTo.
type Registry struct {
	mu         sync.Mutex
	families   map[string]*family
	declared   map[string]bool // families fed by collectors, not instruments
	collectors []func(Emit)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		families: make(map[string]*family),
		declared: make(map[string]bool),
	}
}

func (r *Registry) familyLocked(name, help string, k kind) *family {
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: k}
		r.families[name] = f
		return f
	}
	if f.kind != k {
		panic(fmt.Sprintf("obs: family %q registered as %s, requested as %s", name, f.kind, k))
	}
	return f
}

func checkSeries(name string, f *family, declaredOnly bool, declared map[string]bool, labels []Label) {
	if declared[name] != declaredOnly {
		if declaredOnly {
			panic(fmt.Sprintf("obs: family %q is instrument-backed, cannot emit collector samples", name))
		}
		panic(fmt.Sprintf("obs: family %q is collector-backed, cannot attach instruments", name))
	}
	for _, c := range f.children {
		if labelsEqual(c.labels, labels) {
			panic(fmt.Sprintf("obs: duplicate series %s%s", name, labelString(labels)))
		}
	}
}

func labelsEqual(a, b []Label) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Counter registers (or extends) a counter family and returns the series
// for the given label set.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyLocked(name, help, kindCounter)
	checkSeries(name, f, false, r.declared, labels)
	c := &Counter{}
	f.children = append(f.children, child{labels: labels, counter: c})
	return c
}

// Gauge registers (or extends) a gauge family and returns the series for
// the given label set.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyLocked(name, help, kindGauge)
	checkSeries(name, f, false, r.declared, labels)
	g := &Gauge{}
	f.children = append(f.children, child{labels: labels, gauge: g})
	return g
}

// Histogram registers (or extends) a histogram family and returns the
// series for the given label set. buckets are upper bounds in ascending
// order; a +Inf overflow bucket is added implicitly. A nil buckets slice
// uses LatencyBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	if buckets == nil {
		buckets = LatencyBuckets
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("obs: histogram %q buckets not strictly ascending", name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyLocked(name, help, kindHistogram)
	checkSeries(name, f, false, r.declared, labels)
	h := &Histogram{
		bounds:    buckets,
		counts:    make([]atomic.Uint64, len(buckets)+1),
		exemplars: make([]atomic.Pointer[Exemplar], len(buckets)+1),
	}
	f.children = append(f.children, child{labels: labels, hist: h})
	return h
}

// DeclareGauge declares a gauge family whose samples are produced by
// collectors at scrape time.
func (r *Registry) DeclareGauge(name, help string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyLocked(name, help, kindGauge)
	if len(f.children) > 0 {
		panic(fmt.Sprintf("obs: family %q already has instrument series", name))
	}
	r.declared[name] = true
}

// DeclareCounter declares a counter family whose samples are produced by
// collectors at scrape time.
func (r *Registry) DeclareCounter(name, help string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyLocked(name, help, kindCounter)
	if len(f.children) > 0 {
		panic(fmt.Sprintf("obs: family %q already has instrument series", name))
	}
	r.declared[name] = true
}

// AddCollector registers a callback invoked on every WriteTo. The
// callback emits samples into families previously declared with
// DeclareGauge/DeclareCounter. Collectors run outside the registry lock,
// so they may take their own locks (session, WAL, pool store).
func (r *Registry) AddCollector(collect func(Emit)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.collectors = append(r.collectors, collect)
}

// snapshot returns the families sorted by name plus the collector list.
func (r *Registry) snapshot() ([]*family, []func(Emit), map[string]bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	collectors := make([]func(Emit), len(r.collectors))
	copy(collectors, r.collectors)
	declared := make(map[string]bool, len(r.declared))
	for k, v := range r.declared {
		declared[k] = v
	}
	return fams, collectors, declared
}
