package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestNilInstrumentsAreNoOps(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter value")
	}
	var g *Gauge
	g.Set(3)
	g.Add(-1)
	if g.Value() != 0 {
		t.Fatal("nil gauge value")
	}
	var h *Histogram
	h.Observe(1.5)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram observed")
	}
}

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "a counter")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	g := r.Gauge("test_gauge", "a gauge")
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency", []float64{0.1, 1, 10})
	// Upper bounds are inclusive: 0.1 lands in the first bucket.
	for _, v := range []float64{0.05, 0.1, 0.5, 1, 5, 10, 100} {
		h.Observe(v)
	}
	want := []uint64{2, 2, 2, 1} // (-inf,0.1], (0.1,1], (1,10], (10,+inf)
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Fatalf("bucket %d = %d, want %d", i, got, w)
		}
	}
	if got := h.Count(); got != 7 {
		t.Fatalf("count = %d, want 7", got)
	}
	if got, want := h.Sum(), 0.05+0.1+0.5+1+5+10+100; math.Abs(got-want) > 1e-9 {
		t.Fatalf("sum = %v, want %v", got, want)
	}
}

func TestHistogramConcurrentSum(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("conc_seconds", "latency", []float64{1})
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(0.5)
			}
		}()
	}
	wg.Wait()
	if got := h.Count(); got != workers*per {
		t.Fatalf("count = %d, want %d", got, workers*per)
	}
	if got, want := h.Sum(), 0.5*workers*per; math.Abs(got-want) > 1e-6 {
		t.Fatalf("sum = %v, want %v", got, want)
	}
}

func TestWriteTextFormat(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("req_total", "requests", Label{"route", "GET /x"}, Label{"code", "2xx"})
	c.Add(3)
	g := r.Gauge("in_flight", "in-flight requests")
	g.Set(2)
	h := r.Histogram("lat_seconds", "latency", []float64{0.25, 0.5})
	h.Observe(0.1)
	h.Observe(0.3)
	h.Observe(9)

	var sb strings.Builder
	if _, err := r.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	want := `# HELP in_flight in-flight requests
# TYPE in_flight gauge
in_flight 2
# HELP lat_seconds latency
# TYPE lat_seconds histogram
lat_seconds_bucket{le="0.25"} 1
lat_seconds_bucket{le="0.5"} 2
lat_seconds_bucket{le="+Inf"} 3
lat_seconds_sum 9.4
lat_seconds_count 3
# HELP req_total requests
# TYPE req_total counter
req_total{route="GET /x",code="2xx"} 3
`
	if got != want {
		t.Fatalf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestLabelAndHelpEscaping(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("esc_total", "line1\nline2 back\\slash", Label{"id", "a\"b\\c\nd"})
	c.Inc()
	var sb strings.Builder
	if _, err := r.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	if !strings.Contains(got, `# HELP esc_total line1\nline2 back\\slash`) {
		t.Fatalf("help not escaped:\n%s", got)
	}
	if !strings.Contains(got, `esc_total{id="a\"b\\c\nd"} 1`) {
		t.Fatalf("label not escaped:\n%s", got)
	}
}

func TestCollectorFamilies(t *testing.T) {
	r := NewRegistry()
	r.DeclareGauge("dyn_gauge", "dynamic")
	r.AddCollector(func(emit Emit) {
		emit("dyn_gauge", 1.5, Label{"k", "b"})
		emit("dyn_gauge", 2.5, Label{"k", "a"})
	})
	var sb strings.Builder
	if _, err := r.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	// Samples are sorted by label signature for deterministic scrapes.
	ia, ib := strings.Index(got, `dyn_gauge{k="a"} 2.5`), strings.Index(got, `dyn_gauge{k="b"} 1.5`)
	if ia < 0 || ib < 0 || ia > ib {
		t.Fatalf("collector samples missing or unsorted:\n%s", got)
	}
}

func TestSpecialFloatFormatting(t *testing.T) {
	if formatFloat(math.NaN()) != "NaN" {
		t.Fatal("NaN")
	}
	if formatFloat(math.Inf(1)) != "+Inf" {
		t.Fatal("+Inf")
	}
	if formatFloat(math.Inf(-1)) != "-Inf" {
		t.Fatal("-Inf")
	}
	if formatFloat(0.25) != "0.25" {
		t.Fatal("0.25")
	}
}

func TestDuplicateSeriesPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup_total", "dup", Label{"a", "1"})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate series")
		}
	}()
	r.Counter("dup_total", "dup", Label{"a", "1"})
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("mix_total", "mix")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on kind mismatch")
		}
	}()
	r.Gauge("mix_total", "mix")
}

func TestEmitUndeclaredPanics(t *testing.T) {
	r := NewRegistry()
	r.AddCollector(func(emit Emit) {
		emit("nope_total", 1)
	})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on undeclared emit")
		}
	}()
	var sb strings.Builder
	_, _ = r.WriteTo(&sb)
}
