package sampler

import (
	"math"
	"testing"

	"oasis/internal/oracle"
	"oasis/internal/pool"
	"oasis/internal/rng"
	"oasis/internal/strata"
)

// testPool builds an imbalanced calibrated pool with truth drawn once.
func testPool(n int, seed uint64) *pool.Pool {
	r := rng.New(seed)
	p := &pool.Pool{
		Name:          "sampler-test",
		Scores:        make([]float64, n),
		Preds:         make([]bool, n),
		TruthProb:     make([]float64, n),
		Probabilistic: true,
	}
	for i := 0; i < n; i++ {
		var s float64
		if r.Bernoulli(0.03) {
			s = 0.4 + 0.6*r.Float64()
		} else {
			s = 0.3 * r.Float64()
		}
		p.Scores[i] = s
		p.Preds[i] = s > 0.6
		if r.Bernoulli(s) {
			p.TruthProb[i] = 1
		}
	}
	return p
}

func runMethod(t *testing.T, m Method, p *pool.Pool, steps int, oracleSeed uint64) float64 {
	t.Helper()
	b := oracle.NewBudgeted(oracle.FromProbs(p.TruthProb, rng.New(oracleSeed)), 0)
	for i := 0; i < steps; i++ {
		if err := m.Step(b); err != nil {
			t.Fatal(err)
		}
	}
	return m.Estimate()
}

func TestPassiveConverges(t *testing.T) {
	p := testPool(5000, 1)
	trueF := p.TrueFMeasure(0.5)
	var errSum float64
	const runs = 5
	for run := 0; run < runs; run++ {
		m := NewPassive(p, 0.5, rng.New(10+uint64(run)))
		got := runMethod(t, m, p, 60000, 20+uint64(run))
		errSum += math.Abs(got - trueF)
	}
	if mean := errSum / runs; mean > 0.05 {
		t.Errorf("passive mean error %v (trueF %v)", mean, trueF)
	}
}

func TestPassiveUndefinedEarly(t *testing.T) {
	p := testPool(100000, 2)
	m := NewPassive(p, 0.5, rng.New(3))
	if !math.IsNaN(m.Estimate()) {
		t.Error("passive estimate should start undefined")
	}
	if m.Name() != "Passive" {
		t.Errorf("name %q", m.Name())
	}
}

func TestStratifiedConverges(t *testing.T) {
	p := testPool(5000, 4)
	trueF := p.TrueFMeasure(0.5)
	st, err := strata.CSF(p, 30, 0)
	if err != nil {
		t.Fatal(err)
	}
	var errSum float64
	const runs = 5
	for run := 0; run < runs; run++ {
		m, err := NewStratified(p, st.Weights, st.MeanPred, st.Items, 0.5, rng.New(30+uint64(run)))
		if err != nil {
			t.Fatal(err)
		}
		got := runMethod(t, m, p, 60000, 40+uint64(run))
		errSum += math.Abs(got - trueF)
	}
	if mean := errSum / runs; mean > 0.05 {
		t.Errorf("stratified mean error %v (trueF %v)", mean, trueF)
	}
	st2, _ := strata.CSF(p, 30, 0)
	m, _ := NewStratified(p, st2.Weights, st2.MeanPred, st2.Items, 0.5, rng.New(99))
	if m.Name() != "Stratified" {
		t.Errorf("name %q", m.Name())
	}
}

func TestISConverges(t *testing.T) {
	p := testPool(5000, 5)
	trueF := p.TrueFMeasure(0.5)
	for _, naive := range []bool{false, true} {
		var errSum float64
		const runs = 5
		for run := 0; run < runs; run++ {
			m, err := NewIS(p, ISConfig{Alpha: 0.5, Naive: naive}, rng.New(50+uint64(run)))
			if err != nil {
				t.Fatal(err)
			}
			got := runMethod(t, m, p, 20000, 60+uint64(run))
			errSum += math.Abs(got - trueF)
		}
		if mean := errSum / runs; mean > 0.05 {
			t.Errorf("IS(naive=%v) mean error %v (trueF %v)", naive, mean, trueF)
		}
	}
}

func TestISNaiveAndAliasSameDistribution(t *testing.T) {
	p := testPool(500, 6)
	a, err := NewIS(p, ISConfig{Alpha: 0.5, Naive: true}, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewIS(p, ISConfig{Alpha: 0.5, Naive: false}, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	pa, pb := a.Probabilities(), b.Probabilities()
	for i := range pa {
		if math.Abs(pa[i]-pb[i]) > 1e-15 {
			t.Fatalf("instrumental distributions differ at %d", i)
		}
	}
}

func TestISInstrumentalPositivity(t *testing.T) {
	p := testPool(2000, 8)
	m, err := NewIS(p, ISConfig{Alpha: 0.5, Epsilon: 0.01}, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	probs := m.Probabilities()
	sum := 0.0
	minQ := math.Inf(1)
	for _, q := range probs {
		if q < minQ {
			minQ = q
		}
		sum += q
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("instrumental sums to %v", sum)
	}
	if minQ < 0.01/float64(p.N())-1e-15 {
		t.Errorf("min q %v below ε/N", minQ)
	}
}

func TestISOversamplesPredictedMatches(t *testing.T) {
	p := testPool(5000, 10)
	m, err := NewIS(p, ISConfig{Alpha: 0.5}, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	probs := m.Probabilities()
	var predMass, nonPredMass float64
	var predCount, nonPredCount int
	for i, q := range probs {
		if p.Preds[i] {
			predMass += q
			predCount++
		} else {
			nonPredMass += q
			nonPredCount++
		}
	}
	if predCount == 0 || nonPredCount == 0 {
		t.Skip("degenerate pool")
	}
	perPred := predMass / float64(predCount)
	perNon := nonPredMass / float64(nonPredCount)
	if perPred <= perNon {
		t.Errorf("IS should bias toward predicted matches: %v vs %v", perPred, perNon)
	}
}

func TestScoreBasedF(t *testing.T) {
	p := &pool.Pool{
		Scores:        []float64{0.9, 0.8, 0.1, 0.2},
		Preds:         []bool{true, true, false, false},
		TruthProb:     []float64{1, 1, 0, 0},
		Probabilistic: true,
	}
	// num = 1.7, pred = 2, true = 2.0 → F = 1.7/2 = 0.85 at α=1/2.
	got := ScoreBasedF(p, 0.5)
	if math.Abs(got-0.85) > 1e-12 {
		t.Errorf("ScoreBasedF = %v", got)
	}
	empty := &pool.Pool{
		Scores:        []float64{0},
		Preds:         []bool{false},
		TruthProb:     []float64{0},
		Probabilistic: true,
	}
	if !math.IsNaN(ScoreBasedF(empty, 1)) {
		t.Error("expected NaN for zero-mass pool")
	}
}

func TestOptimalInstrumentalShape(t *testing.T) {
	// Predicted items receive mass even when g=0 (possible false positives);
	// unpredicted items receive mass ∝ F√g.
	if v := OptimalInstrumental(0.5, 0.5, 0, true, 1); v <= 0 {
		t.Errorf("predicted item with g=0 must keep mass, got %v", v)
	}
	if v := OptimalInstrumental(0.5, 0.5, 0, false, 1); v != 0 {
		t.Errorf("unpredicted item with g=0 must get zero optimal mass, got %v", v)
	}
	if v := OptimalInstrumental(0.5, 0, 0.5, false, 1); v != 0 {
		t.Errorf("F=0 kills unpredicted mass, got %v", v)
	}
	// Clamping out-of-range inputs.
	if v := OptimalInstrumental(0.5, 2, -1, false, 1); v != 0 || math.IsNaN(v) {
		t.Errorf("clamped call = %v", v)
	}
}

func TestISBudgetExhaustion(t *testing.T) {
	p := testPool(200, 12)
	m, err := NewIS(p, ISConfig{Alpha: 0.5}, rng.New(13))
	if err != nil {
		t.Fatal(err)
	}
	b := oracle.NewBudgeted(oracle.FromProbs(p.TruthProb, rng.New(14)), 3)
	sawExhaustion := false
	for i := 0; i < 5000; i++ {
		if err := m.Step(b); err == oracle.ErrBudgetExhausted {
			sawExhaustion = true
			break
		} else if err != nil {
			t.Fatal(err)
		}
	}
	if !sawExhaustion {
		t.Error("expected budget exhaustion")
	}
}

func TestMethodInterfaceCompliance(t *testing.T) {
	p := testPool(100, 15)
	st, err := strata.CSF(p, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	strat, err := NewStratified(p, st.Weights, st.MeanPred, st.Items, 0.5, rng.New(16))
	if err != nil {
		t.Fatal(err)
	}
	is, err := NewIS(p, ISConfig{Alpha: 0.5}, rng.New(17))
	if err != nil {
		t.Fatal(err)
	}
	var methods = []Method{NewPassive(p, 0.5, rng.New(18)), strat, is}
	for _, m := range methods {
		if m.Name() == "" {
			t.Error("empty method name")
		}
	}
}
