package sampler

import (
	"oasis/internal/estimator"
	"oasis/internal/oracle"
	"oasis/internal/pool"
	"oasis/internal/rng"
)

// Passive samples record pairs uniformly at random with replacement and
// estimates F with the plain statistic of Eqn. (1) — the paper's Passive
// baseline. Under extreme class imbalance it needs O(imbalance) draws per
// match found, which is the inefficiency OASIS exists to remove.
type Passive struct {
	pool *pool.Pool
	est  *estimator.Weighted
	rng  *rng.RNG
}

// NewPassive builds a passive sampler for p estimating F_α.
func NewPassive(p *pool.Pool, alpha float64, r *rng.RNG) *Passive {
	return &Passive{
		pool: p,
		est:  estimator.NewWeighted(alpha),
		rng:  r,
	}
}

// Name identifies the method in reports.
func (s *Passive) Name() string { return "Passive" }

// Step draws one pair uniformly, labels it, and updates the estimate.
func (s *Passive) Step(b *oracle.Budgeted) error {
	i := s.rng.Intn(s.pool.N())
	label, err := b.TryLabel(i)
	if err != nil {
		return err
	}
	s.est.Add(1, label, s.pool.Preds[i])
	return nil
}

// Estimate returns the current F̂ (NaN until a match or predicted match has
// been sampled — exactly the paper's "undefined until first positive mass"
// behaviour).
func (s *Passive) Estimate() float64 { return s.est.Estimate() }

// Stratified is the proportional stratified baseline (§6.2, after Druck &
// McCallum): strata are drawn with probability ω_k = |P_k|/N, pairs uniformly
// within the stratum, and F is estimated with the stratified estimator. The
// sampling is *not* biased toward informative strata — which is the paper's
// explanation for its weak performance.
type Stratified struct {
	pool    *pool.Pool
	items   [][]int
	draw    *rng.Cumulative
	est     *estimator.Stratified
	rng     *rng.RNG
	weights []float64
}

// NewStratified builds the stratified baseline from a stratification of p.
func NewStratified(p *pool.Pool, weights []float64, lambda []float64, items [][]int, alpha float64, r *rng.RNG) (*Stratified, error) {
	draw, err := rng.NewCumulative(weights)
	if err != nil {
		return nil, err
	}
	return &Stratified{
		pool:    p,
		items:   items,
		draw:    draw,
		est:     estimator.NewStratified(alpha, weights, lambda),
		rng:     r,
		weights: weights,
	}, nil
}

// Name identifies the method in reports.
func (s *Stratified) Name() string { return "Stratified" }

// Step draws a stratum proportionally, a pair uniformly within it, labels it
// and updates the stratified estimate.
func (s *Stratified) Step(b *oracle.Budgeted) error {
	k := s.draw.Draw(s.rng)
	members := s.items[k]
	i := members[s.rng.Intn(len(members))]
	label, err := b.TryLabel(i)
	if err != nil {
		return err
	}
	s.est.Add(k, label, s.pool.Preds[i])
	return nil
}

// Estimate returns the current stratified F̂.
func (s *Stratified) Estimate() float64 { return s.est.Estimate() }
