package sampler

import (
	"errors"
	"math"

	"oasis/internal/estimator"
	"oasis/internal/oracle"
	"oasis/internal/pool"
	"oasis/internal/rng"
)

// ISConfig configures the static importance-sampling baseline.
type ISConfig struct {
	// Alpha is the F-measure weight.
	Alpha float64
	// Epsilon mixes the uniform distribution into the instrumental
	// distribution for positivity (as OASIS does; without it, items the
	// score model assigns zero mass could never be sampled and the estimator
	// would be inconsistent). Default 1e-3.
	Epsilon float64
	// Naive selects O(N)-per-draw inverse-CDF sampling — the implementation
	// the paper times in Table 3. When false, a Walker alias sampler makes
	// draws O(1) with an identical distribution (used for large sweeps).
	Naive bool
}

// IS is the static (non-adaptive) importance sampler of Sawade et al. as
// described in §6.2: record pairs are drawn from a fixed instrumental
// distribution approximating the asymptotically optimal one (Eqn. 5), with
// oracle probabilities p(1|z) replaced by probability-mapped similarity
// scores and F_α replaced by a score-based initial guess. Because the
// distribution never adapts, poorly calibrated scores leave it far from
// optimal — the effect Figure 3 measures.
type IS struct {
	pool     *pool.Pool
	cfg      ISConfig
	weights  []float64 // per-item importance weights p_i / q_i
	probs    []float64 // instrumental distribution (normalised)
	probsSum float64   // Σ probs, validated once at construction
	alias    *rng.Alias
	est      *estimator.Weighted
	rng      *rng.RNG
}

// ScoreBasedF returns the initial F-measure guess computed purely from
// probability-mapped scores and predictions, the per-item analogue of
// Algorithm 2 line 8: F̂(0) = Σ g_i·l̂_i / (α Σ l̂_i + (1−α) Σ g_i).
func ScoreBasedF(p *pool.Pool, alpha float64) float64 {
	var num, pred, tru float64
	for i := 0; i < p.N(); i++ {
		g := p.ProbScore(i)
		if p.Preds[i] {
			num += g
			pred++
		}
		tru += g
	}
	den := alpha*pred + (1-alpha)*tru
	if den <= 0 {
		return math.NaN()
	}
	f := num / den
	if f > 1 {
		f = 1
	}
	return f
}

// OptimalInstrumental evaluates the asymptotically optimal instrumental
// shape of Eqn. (5) for one item, up to normalisation, given the item's
// prediction l̂, its oracle-probability estimate g, the F-measure estimate f
// and the underlying mass p(z) (uniform 1/N in our pools):
//
//	q*(z) ∝ p(z)·[(1−α)(1−l̂)·F·√g + l̂·√(α²F²(1−g) + (1−F)²g)]
func OptimalInstrumental(alpha, f, g float64, pred bool, pz float64) float64 {
	if f < 0 {
		f = 0
	}
	if f > 1 {
		f = 1
	}
	if g < 0 {
		g = 0
	}
	if g > 1 {
		g = 1
	}
	if pred {
		return pz * math.Sqrt(alpha*alpha*f*f*(1-g)+(1-f)*(1-f)*g)
	}
	return pz * (1 - alpha) * f * math.Sqrt(g)
}

// NewIS builds the static importance sampler over p.
func NewIS(p *pool.Pool, cfg ISConfig, r *rng.RNG) (*IS, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if cfg.Epsilon <= 0 {
		cfg.Epsilon = 1e-3
	}
	if cfg.Epsilon > 1 {
		cfg.Epsilon = 1
	}
	n := p.N()
	f0 := ScoreBasedF(p, cfg.Alpha)
	if math.IsNaN(f0) {
		// A pool with no predicted positives and zero score mass: fall back
		// to uniform sampling (the instrumental shape carries no signal).
		f0 = 0
	}
	pz := 1.0 / float64(n)
	raw := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		raw[i] = OptimalInstrumental(cfg.Alpha, f0, p.ProbScore(i), p.Preds[i], pz)
		total += raw[i]
	}
	probs := make([]float64, n)
	weights := make([]float64, n)
	for i := 0; i < n; i++ {
		q := cfg.Epsilon * pz
		if total > 0 {
			q += (1 - cfg.Epsilon) * raw[i] / total
		} else {
			q = pz
		}
		probs[i] = q
		weights[i] = pz / q
	}
	s := &IS{
		pool:    p,
		cfg:     cfg,
		weights: weights,
		probs:   probs,
		est:     estimator.NewWeighted(cfg.Alpha),
		rng:     r,
	}
	if cfg.Naive {
		// Validate (and sum) the fixed distribution once here, so the naive
		// O(N) draw loop does not re-scan for NaN/Inf on every call — the
		// construction-boundary validation convention of package rng.
		sum, err := rng.ValidateWeights(probs)
		if err != nil {
			return nil, err
		}
		s.probsSum = sum
	} else {
		alias, err := rng.NewAlias(probs)
		if err != nil {
			return nil, err
		}
		s.alias = alias
	}
	return s, nil
}

// Name identifies the method in reports.
func (s *IS) Name() string { return "IS" }

// Probabilities exposes the instrumental distribution (for tests and
// diagnostics).
func (s *IS) Probabilities() []float64 { return s.probs }

// Step draws one pair from the static instrumental distribution, labels it,
// and updates the bias-corrected estimate.
func (s *IS) Step(b *oracle.Budgeted) error {
	var i int
	if s.cfg.Naive {
		// The naive mode keeps the O(N) inverse-CDF scan the paper times in
		// Table 3, but validation happened once at construction.
		i = s.rng.CategoricalTrusted(s.probs, s.probsSum)
	} else {
		i = s.alias.Draw(s.rng)
	}
	label, err := b.TryLabel(i)
	if err != nil {
		return err
	}
	s.est.Add(s.weights[i], label, s.pool.Preds[i])
	return nil
}

// Estimate returns the current F̂.
func (s *IS) Estimate() float64 { return s.est.Estimate() }

// ErrNoPool is returned by constructors given a nil pool.
var ErrNoPool = errors.New("sampler: nil pool")
