// Package sampler implements the three baseline evaluation methods the paper
// compares OASIS against (§6.2): Passive uniform sampling, proportional
// Stratified sampling (Druck & McCallum), and static Importance Sampling
// (Sawade et al.). All methods — including OASIS in internal/core — satisfy
// the Method interface consumed by the experiment harness.
package sampler

import (
	"oasis/internal/oracle"
)

// Method is one sequential evaluation method. Step draws one record pair
// (with replacement), queries the budgeted oracle and updates the internal
// estimate; it returns oracle.ErrBudgetExhausted when a fresh label would
// exceed the budget. Estimate returns the current F̂ (NaN while undefined).
type Method interface {
	Name() string
	Step(b *oracle.Budgeted) error
	Estimate() float64
}
