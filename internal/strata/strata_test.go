package strata

import (
	"math"
	"testing"
	"testing/quick"

	"oasis/internal/pool"
	"oasis/internal/rng"
)

// imbalancedPool builds a pool whose score distribution is heavy-tailed like
// an ER pool: most scores near zero, few near one.
func imbalancedPool(n int, seed uint64) *pool.Pool {
	r := rng.New(seed)
	p := &pool.Pool{
		Name:          "synthetic",
		Scores:        make([]float64, n),
		Preds:         make([]bool, n),
		TruthProb:     make([]float64, n),
		Probabilistic: true,
	}
	for i := 0; i < n; i++ {
		var s float64
		if r.Bernoulli(0.02) { // rare high-score block
			s = 0.5 + 0.5*r.Float64()
		} else {
			s = 0.3 * r.Float64() * r.Float64()
		}
		p.Scores[i] = s
		p.Preds[i] = s > 0.5
		if r.Bernoulli(s) {
			p.TruthProb[i] = 1
		}
	}
	return p
}

// checkPartition verifies strata invariants: disjoint cover, consistent
// assignment, weights summing to one, statistics in range.
func checkPartition(t *testing.T, p *pool.Pool, s *Strata) {
	t.Helper()
	if s.N() != p.N() {
		t.Fatalf("assign length %d != pool %d", s.N(), p.N())
	}
	seen := make([]bool, p.N())
	total := 0
	for k, items := range s.Items {
		if len(items) == 0 {
			t.Fatalf("empty stratum %d survived", k)
		}
		for _, i := range items {
			if seen[i] {
				t.Fatalf("item %d in two strata", i)
			}
			seen[i] = true
			if s.Assign[i] != k {
				t.Fatalf("assign[%d]=%d but item listed in stratum %d", i, s.Assign[i], k)
			}
		}
		total += len(items)
		if s.Size(k) != len(items) {
			t.Fatalf("Size(%d) inconsistent", k)
		}
	}
	if total != p.N() {
		t.Fatalf("partition covers %d of %d items", total, p.N())
	}
	wsum := 0.0
	for k := range s.Weights {
		wsum += s.Weights[k]
		if s.MeanPred[k] < 0 || s.MeanPred[k] > 1 {
			t.Fatalf("MeanPred[%d] = %v", k, s.MeanPred[k])
		}
		if s.MeanProbScore[k] < 0 || s.MeanProbScore[k] > 1 {
			t.Fatalf("MeanProbScore[%d] = %v", k, s.MeanProbScore[k])
		}
	}
	if math.Abs(wsum-1) > 1e-9 {
		t.Fatalf("weights sum to %v", wsum)
	}
}

func TestCSFPartition(t *testing.T) {
	p := imbalancedPool(20000, 1)
	s, err := CSF(p, 30, 0)
	if err != nil {
		t.Fatal(err)
	}
	checkPartition(t, p, s)
	if s.K() < 2 || s.K() > 30 {
		t.Errorf("K = %d, want 2..30", s.K())
	}
}

func TestCSFHeavyTailShape(t *testing.T) {
	// Figure 1's claim: with imbalanced scores, CSF produces very large
	// low-score strata and small high-score strata.
	p := imbalancedPool(50000, 2)
	s, err := CSF(p, 30, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Identify strata by mean score; the lowest-score stratum should be much
	// larger than the highest-score stratum.
	loK, hiK := 0, 0
	for k := range s.MeanScore {
		if s.MeanScore[k] < s.MeanScore[loK] {
			loK = k
		}
		if s.MeanScore[k] > s.MeanScore[hiK] {
			hiK = k
		}
	}
	if s.Size(loK) < 10*s.Size(hiK) {
		t.Errorf("expected heavy tail: low stratum %d items vs high %d",
			s.Size(loK), s.Size(hiK))
	}
}

func TestCSFScoreMonotoneAcrossStrata(t *testing.T) {
	// CSF strata are intervals on the score axis: item scores in a stratum
	// with larger mean must not fall below the maximum of a stratum with a
	// smaller mean... verified via interval non-overlap.
	p := imbalancedPool(5000, 3)
	s, err := CSF(p, 20, 0)
	if err != nil {
		t.Fatal(err)
	}
	type span struct{ lo, hi float64 }
	spans := make([]span, s.K())
	for k, items := range s.Items {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, i := range items {
			if p.Scores[i] < lo {
				lo = p.Scores[i]
			}
			if p.Scores[i] > hi {
				hi = p.Scores[i]
			}
		}
		spans[k] = span{lo, hi}
	}
	for a := 0; a < len(spans); a++ {
		for b := 0; b < len(spans); b++ {
			if a == b {
				continue
			}
			// Intervals may touch at edges (same histogram bin boundary) but
			// must not strictly interleave.
			if spans[a].lo < spans[b].lo && spans[b].lo < spans[a].hi &&
				spans[a].hi < spans[b].hi {
				t.Fatalf("strata %d and %d interleave: %+v vs %+v", a, b, spans[a], spans[b])
			}
		}
	}
}

func TestCSFDegenerateScores(t *testing.T) {
	p := &pool.Pool{
		Scores:    []float64{0.5, 0.5, 0.5, 0.5},
		Preds:     []bool{true, false, true, false},
		TruthProb: []float64{1, 0, 1, 0},
	}
	s, err := CSF(p, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.K() != 1 {
		t.Errorf("constant scores should give one stratum, got %d", s.K())
	}
	checkPartition(t, p, s)
}

func TestCSFErrors(t *testing.T) {
	if _, err := CSF(&pool.Pool{}, 10, 0); err == nil {
		t.Error("expected error on empty pool")
	}
	p := imbalancedPool(100, 4)
	if _, err := CSF(p, 0, 0); err == nil {
		t.Error("expected error on K=0")
	}
}

func TestEqualSize(t *testing.T) {
	p := imbalancedPool(10007, 5)
	s, err := EqualSize(p, 30)
	if err != nil {
		t.Fatal(err)
	}
	checkPartition(t, p, s)
	if s.K() != 30 {
		t.Fatalf("K = %d", s.K())
	}
	// Sizes within ±1 of each other is too strict with ties; allow small
	// slack but require near-uniformity.
	minSize, maxSize := p.N(), 0
	for k := 0; k < s.K(); k++ {
		if s.Size(k) < minSize {
			minSize = s.Size(k)
		}
		if s.Size(k) > maxSize {
			maxSize = s.Size(k)
		}
	}
	if maxSize-minSize > 2 {
		t.Errorf("equal-size spread: %d..%d", minSize, maxSize)
	}
}

func TestEqualSizeKLargerThanN(t *testing.T) {
	p := &pool.Pool{
		Scores:    []float64{0.1, 0.9, 0.5},
		Preds:     []bool{false, true, false},
		TruthProb: []float64{0, 1, 0},
	}
	s, err := EqualSize(p, 10)
	if err != nil {
		t.Fatal(err)
	}
	if s.K() != 3 {
		t.Errorf("K = %d, want 3", s.K())
	}
	checkPartition(t, p, s)
}

func TestStratumStatistics(t *testing.T) {
	p := &pool.Pool{
		Scores:        []float64{0.1, 0.2, 0.8, 0.9},
		Preds:         []bool{false, false, true, true},
		TruthProb:     []float64{0, 0, 1, 1},
		Probabilistic: true,
	}
	s, err := EqualSize(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	if s.K() != 2 {
		t.Fatalf("K = %d", s.K())
	}
	// Low stratum: scores {0.1, 0.2}, preds all false.
	lo := 0
	if s.MeanScore[1] < s.MeanScore[0] {
		lo = 1
	}
	hi := 1 - lo
	if math.Abs(s.MeanScore[lo]-0.15) > 1e-12 || math.Abs(s.MeanScore[hi]-0.85) > 1e-12 {
		t.Errorf("mean scores %v", s.MeanScore)
	}
	if s.MeanPred[lo] != 0 || s.MeanPred[hi] != 1 {
		t.Errorf("mean preds %v", s.MeanPred)
	}
	if s.Weights[lo] != 0.5 || s.Weights[hi] != 0.5 {
		t.Errorf("weights %v", s.Weights)
	}
}

func TestCSFPropertyRandomPools(t *testing.T) {
	f := func(seed uint64, kRaw, nRaw uint8) bool {
		n := int(nRaw)%500 + 10
		k := int(kRaw)%40 + 1
		p := imbalancedPool(n, seed)
		s, err := CSF(p, k, 0)
		if err != nil {
			return false
		}
		if s.K() > k || s.K() < 1 {
			return false
		}
		// Partition invariants.
		count := 0
		for _, items := range s.Items {
			count += len(items)
		}
		wsum := 0.0
		for _, w := range s.Weights {
			wsum += w
		}
		return count == n && math.Abs(wsum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCSFDeterministic(t *testing.T) {
	p := imbalancedPool(5000, 6)
	a, err := CSF(p, 30, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CSF(p, 30, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a.K() != b.K() {
		t.Fatal("CSF not deterministic in K")
	}
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatal("CSF not deterministic in assignment")
		}
	}
}

func TestCSFHomogeneityBeatsRandomPartition(t *testing.T) {
	// The point of score stratification: intra-stratum score variance should
	// be far below that of a random partition of equal sizes.
	p := imbalancedPool(20000, 7)
	s, err := CSF(p, 30, 0)
	if err != nil {
		t.Fatal(err)
	}
	intra := func(items [][]int) float64 {
		tot := 0.0
		n := 0
		for _, it := range items {
			if len(it) == 0 {
				continue
			}
			mean := 0.0
			for _, i := range it {
				mean += p.Scores[i]
			}
			mean /= float64(len(it))
			for _, i := range it {
				d := p.Scores[i] - mean
				tot += d * d
			}
			n += len(it)
		}
		return tot / float64(n)
	}
	csfVar := intra(s.Items)
	// Random partition with the same stratum sizes.
	r := rng.New(8)
	perm := r.Perm(p.N())
	randItems := make([][]int, s.K())
	pos := 0
	for k := 0; k < s.K(); k++ {
		randItems[k] = perm[pos : pos+s.Size(k)]
		pos += s.Size(k)
	}
	randVar := intra(randItems)
	if csfVar*5 > randVar {
		t.Errorf("CSF intra-stratum variance %v not ≪ random %v", csfVar, randVar)
	}
}
