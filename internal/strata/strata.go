// Package strata partitions an evaluation pool into score strata. It
// implements the Cumulative √F (CSF) method of Dalenius & Hodges used by the
// paper (Algorithm 1) and the equal-size alternative mentioned in §4.2.1,
// together with the per-stratum statistics OASIS needs: weights ω_k, mean
// predictions λ_k and mean (probability-mapped) scores.
package strata

import (
	"errors"
	"fmt"
	"math"
	"slices"

	"oasis/internal/pool"
	"oasis/internal/stats"
)

// Strata is a disjoint partition of pool indices {0..N-1} into K strata.
type Strata struct {
	// Items[k] lists the pool indices allocated to stratum k.
	Items [][]int
	// Assign[i] is the stratum index of pool item i.
	Assign []int
	// Weights[k] = ω_k = |P_k| / N.
	Weights []float64
	// MeanScore[k] is the mean raw score within stratum k.
	MeanScore []float64
	// MeanProbScore[k] is the mean probability-mapped score within stratum k
	// (Algorithm 2 lines 2–5), used for initialising π̂(0).
	MeanProbScore []float64
	// MeanPred[k] = λ_k is the mean predicted label within stratum k.
	MeanPred []float64
}

// K returns the number of strata.
func (s *Strata) K() int { return len(s.Items) }

// N returns the number of pool items covered.
func (s *Strata) N() int { return len(s.Assign) }

// Size returns |P_k|.
func (s *Strata) Size(k int) int { return len(s.Items[k]) }

// ErrNoStrata is returned when a requested stratification is degenerate.
var ErrNoStrata = errors.New("strata: cannot build strata")

// fromAllocation builds a Strata from an assignment vector and computes all
// per-stratum statistics, dropping empty strata (Algorithm 1 line 19).
func fromAllocation(p *pool.Pool, assign []int, k int) (*Strata, error) {
	if k <= 0 {
		return nil, ErrNoStrata
	}
	items := make([][]int, k)
	for i, a := range assign {
		if a < 0 || a >= k {
			return nil, fmt.Errorf("strata: assignment %d out of range [0,%d)", a, k)
		}
		items[a] = append(items[a], i)
	}
	// Drop empty strata, remapping assignments.
	remap := make([]int, k)
	kept := 0
	for j := 0; j < k; j++ {
		if len(items[j]) > 0 {
			items[kept] = items[j]
			remap[j] = kept
			kept++
		} else {
			remap[j] = -1
		}
	}
	items = items[:kept]
	if kept == 0 {
		return nil, ErrNoStrata
	}
	s := &Strata{
		Items:         items,
		Assign:        make([]int, len(assign)),
		Weights:       make([]float64, kept),
		MeanScore:     make([]float64, kept),
		MeanProbScore: make([]float64, kept),
		MeanPred:      make([]float64, kept),
	}
	for i, a := range assign {
		s.Assign[i] = remap[a]
	}
	n := float64(p.N())
	for j := 0; j < kept; j++ {
		size := float64(len(items[j]))
		s.Weights[j] = size / n
		var sumScore, sumProb, sumPred float64
		for _, i := range items[j] {
			sumScore += p.Scores[i]
			sumProb += p.ProbScore(i)
			if p.Preds[i] {
				sumPred++
			}
		}
		s.MeanScore[j] = sumScore / size
		s.MeanProbScore[j] = sumProb / size
		s.MeanPred[j] = sumPred / size
	}
	return s, nil
}

// CSF stratifies the pool by similarity score with the Cumulative √F method
// (Algorithm 1): build an M-bin histogram of the scores, take the cumulative
// sum of √counts, cut it into targetK equal-width intervals on the CSF
// scale, and map the cut points back to score-scale bin edges. The number of
// returned strata may be smaller than targetK (empty strata are removed, and
// coarse histograms may merge cuts — the algorithm does not guarantee
// K = K̃).
func CSF(p *pool.Pool, targetK, bins int) (*Strata, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if targetK <= 0 {
		return nil, ErrNoStrata
	}
	if bins <= 0 {
		bins = defaultBins(p.N(), targetK)
	}
	hist, err := stats.NewHistogram(p.Scores, bins)
	if err != nil {
		return nil, err
	}
	// Cumulative √F over histogram bins (lines 2–3).
	csf := make([]float64, hist.Bins())
	acc := 0.0
	for i, c := range hist.Counts {
		acc += math.Sqrt(float64(c))
		csf[i] = acc
	}
	total := csf[len(csf)-1]
	if total == 0 {
		return nil, ErrNoStrata
	}
	// Equal-width cut points on the CSF scale (lines 4–7), then map each
	// histogram bin to the stratum whose CSF interval contains it
	// (lines 8–18, expressed as a direct mapping).
	width := total / float64(targetK)
	binStratum := make([]int, hist.Bins())
	for i := range binStratum {
		k := int(csf[i] / width)
		if csf[i] > 0 && csf[i]/width == float64(k) {
			// Exact boundary: belongs to the interval it closes.
			k--
		}
		if k >= targetK {
			k = targetK - 1
		}
		if k < 0 {
			k = 0
		}
		binStratum[i] = k
	}
	assign := make([]int, p.N())
	for i, s := range p.Scores {
		assign[i] = binStratum[hist.BinOf(s)]
	}
	return fromAllocation(p, assign, targetK)
}

// EqualSize stratifies the pool into targetK strata of (nearly) equal size by
// sorting on score and cutting into contiguous rank ranges — the "equal size
// method" the paper attributes to Druck & McCallum.
func EqualSize(p *pool.Pool, targetK int) (*Strata, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if targetK <= 0 {
		return nil, ErrNoStrata
	}
	n := p.N()
	if targetK > n {
		targetK = n
	}
	// Sort a keyed slice rather than an index slice with a closure: each
	// compare reads adjacent memory instead of chasing two indirections, and
	// slices.SortStableFunc avoids the reflection-based swaps of
	// sort.SliceStable. Stability preserves the original index order within
	// equal scores, so the assignment is bit-identical to the index sort.
	type rankedItem struct {
		score float64
		idx   int
	}
	order := make([]rankedItem, n)
	for i := range order {
		order[i] = rankedItem{score: p.Scores[i], idx: i}
	}
	slices.SortStableFunc(order, func(a, b rankedItem) int {
		// Scores are validated finite, so '<' is a total order here and the
		// three-way compare cannot misbehave on NaN.
		switch {
		case a.score < b.score:
			return -1
		case a.score > b.score:
			return 1
		default:
			return 0
		}
	})
	assign := make([]int, n)
	for rank, it := range order {
		k := rank * targetK / n
		if k >= targetK {
			k = targetK - 1
		}
		assign[it.idx] = k
	}
	return fromAllocation(p, assign, targetK)
}

// defaultBins picks the histogram resolution for CSF: enough bins to resolve
// targetK strata finely, bounded by the pool size.
func defaultBins(n, targetK int) int {
	bins := 100 * targetK
	if bins > n {
		bins = n
	}
	if bins < targetK {
		bins = targetK
	}
	return bins
}
