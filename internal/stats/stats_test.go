package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) && math.IsNaN(b)
	}
	return math.Abs(a-b) <= tol
}

func TestMeanVariance(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if m := Mean(xs); !almostEq(m, 3, 1e-12) {
		t.Errorf("Mean = %v", m)
	}
	if v := Variance(xs); !almostEq(v, 2, 1e-12) {
		t.Errorf("Variance = %v", v)
	}
	if s := StdDev(xs); !almostEq(s, math.Sqrt(2), 1e-12) {
		t.Errorf("StdDev = %v", s)
	}
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(Variance(nil)) {
		t.Error("empty input should give NaN")
	}
}

func TestMeanAbs(t *testing.T) {
	if m := MeanAbs([]float64{-1, 1, -3}); !almostEq(m, 5.0/3, 1e-12) {
		t.Errorf("MeanAbs = %v", m)
	}
}

func TestMinMax(t *testing.T) {
	lo, hi, err := MinMax([]float64{3, -1, 7, 2})
	if err != nil || lo != -1 || hi != 7 {
		t.Errorf("MinMax = %v %v %v", lo, hi, err)
	}
	if _, _, err := MinMax(nil); err == nil {
		t.Error("expected error on empty input")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 4}, {0.5, 2.5}, {0.25, 1.75},
	}
	for _, c := range cases {
		got, err := Quantile(xs, c.q)
		if err != nil || !almostEq(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, %v; want %v", c.q, got, err, c.want)
		}
	}
	if _, err := Quantile(nil, 0.5); err == nil {
		t.Error("expected error on empty input")
	}
	if _, err := Quantile(xs, 1.5); err == nil {
		t.Error("expected error on q > 1")
	}
}

func TestOnlineMatchesBatch(t *testing.T) {
	xs := []float64{0.5, -2, 3.25, 3.25, 10, -7.5}
	var o Online
	for _, x := range xs {
		o.Add(x)
	}
	if !almostEq(o.Mean(), Mean(xs), 1e-10) {
		t.Errorf("online mean %v vs batch %v", o.Mean(), Mean(xs))
	}
	if !almostEq(o.Variance(), Variance(xs), 1e-10) {
		t.Errorf("online var %v vs batch %v", o.Variance(), Variance(xs))
	}
	if o.N() != len(xs) {
		t.Errorf("N = %d", o.N())
	}
}

func TestOnlineMatchesBatchProperty(t *testing.T) {
	f := func(raw []int8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v) / 3
		}
		var o Online
		for _, x := range xs {
			o.Add(x)
		}
		return almostEq(o.Mean(), Mean(xs), 1e-8) && almostEq(o.Variance(), Variance(xs), 1e-8)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{0, 0.1, 0.2, 0.5, 0.9, 1.0}
	h, err := NewHistogram(xs, 5)
	if err != nil {
		t.Fatal(err)
	}
	if h.Total() != len(xs) {
		t.Errorf("total %d", h.Total())
	}
	sum := 0
	for _, c := range h.Counts {
		sum += c
	}
	if sum != len(xs) {
		t.Errorf("counts sum %d", sum)
	}
	// Max value goes into the final bin.
	if h.BinOf(1.0) != 4 {
		t.Errorf("BinOf(max) = %d", h.BinOf(1.0))
	}
	if h.BinOf(-5) != 0 || h.BinOf(99) != 4 {
		t.Error("out-of-range values must clamp")
	}
	// Edges are monotone and span [min, max].
	if h.LeftEdge(0) != 0 || h.RightEdge(4) != 1 {
		t.Errorf("edges %v %v", h.LeftEdge(0), h.RightEdge(4))
	}
	for i := 0; i < h.Bins(); i++ {
		if h.RightEdge(i) < h.LeftEdge(i) {
			t.Errorf("bin %d inverted", i)
		}
	}
}

func TestHistogramDegenerate(t *testing.T) {
	h, err := NewHistogram([]float64{2, 2, 2}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if h.Counts[0] != 3 {
		t.Errorf("degenerate histogram counts %v", h.Counts)
	}
	if _, err := NewHistogram(nil, 3); err == nil {
		t.Error("expected error on empty input")
	}
	if _, err := NewHistogram([]float64{1}, 0); err == nil {
		t.Error("expected error on zero bins")
	}
}

func TestNormalize(t *testing.T) {
	p, err := Normalize([]float64{2, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.25, 0.25, 0.5}
	for i := range p {
		if !almostEq(p[i], want[i], 1e-12) {
			t.Errorf("Normalize[%d] = %v", i, p[i])
		}
	}
	if _, err := Normalize([]float64{0, 0}); err == nil {
		t.Error("expected error for zero-sum")
	}
	if _, err := Normalize([]float64{-1, 2}); err == nil {
		t.Error("expected error for negative weight")
	}
}

func TestKLDivergence(t *testing.T) {
	p := []float64{0.5, 0.5}
	if d, err := KLDivergence(p, p); err != nil || !almostEq(d, 0, 1e-12) {
		t.Errorf("KL(p,p) = %v, %v", d, err)
	}
	q := []float64{0.9, 0.1}
	d, err := KLDivergence(p, q)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.5*math.Log(0.5/0.9) + 0.5*math.Log(0.5/0.1)
	if !almostEq(d, want, 1e-12) {
		t.Errorf("KL = %v, want %v", d, want)
	}
	// Zero q where p > 0 → +Inf.
	if d, _ := KLDivergence([]float64{1, 1}, []float64{1, 0}); !math.IsInf(d, 1) {
		t.Errorf("expected +Inf, got %v", d)
	}
	// Zero p entries contribute nothing.
	if d, _ := KLDivergence([]float64{0, 1}, []float64{0.5, 0.5}); !almostEq(d, math.Log(2), 1e-12) {
		t.Errorf("KL with zero p entry = %v", d)
	}
	if _, err := KLDivergence([]float64{1}, []float64{1, 1}); err == nil {
		t.Error("expected length-mismatch error")
	}
}

func TestKLNonNegativeProperty(t *testing.T) {
	f := func(a, b [6]uint8) bool {
		p := make([]float64, 6)
		q := make([]float64, 6)
		sp, sq := 0.0, 0.0
		for i := 0; i < 6; i++ {
			p[i] = float64(a[i]) + 1 // keep support full to avoid Inf
			q[i] = float64(b[i]) + 1
			sp += p[i]
			sq += q[i]
		}
		d, err := KLDivergence(p, q)
		return err == nil && d >= 0 && !math.IsNaN(d)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTotalVariation(t *testing.T) {
	d, err := TotalVariation([]float64{1, 0}, []float64{0, 1})
	if err != nil || !almostEq(d, 1, 1e-12) {
		t.Errorf("TV = %v, %v", d, err)
	}
	d, err = TotalVariation([]float64{1, 1}, []float64{1, 1})
	if err != nil || !almostEq(d, 0, 1e-12) {
		t.Errorf("TV same = %v, %v", d, err)
	}
}

func TestMeanCI(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	mean, hw := MeanCI(xs, 1.96)
	if !almostEq(mean, 4.5, 1e-12) {
		t.Errorf("mean %v", mean)
	}
	if hw <= 0 || math.IsNaN(hw) {
		t.Errorf("half-width %v", hw)
	}
	_, hw1 := MeanCI([]float64{3}, 1.96)
	if !math.IsNaN(hw1) {
		t.Error("single observation should give NaN half-width")
	}
}

func TestSigmoidLogit(t *testing.T) {
	for _, p := range []float64{0.01, 0.25, 0.5, 0.9, 0.999} {
		if got := Sigmoid(Logit(p)); !almostEq(got, p, 1e-9) {
			t.Errorf("Sigmoid(Logit(%v)) = %v", p, got)
		}
	}
	if s := Sigmoid(0); !almostEq(s, 0.5, 1e-12) {
		t.Errorf("Sigmoid(0) = %v", s)
	}
	if s := Sigmoid(-745); s < 0 || s > 1e-300 {
		t.Errorf("Sigmoid(-745) = %v (should underflow gracefully)", s)
	}
	if s := Sigmoid(745); !almostEq(s, 1, 1e-12) {
		t.Errorf("Sigmoid(745) = %v", s)
	}
}

func TestSigmoidMonotoneProperty(t *testing.T) {
	f := func(a, b int16) bool {
		x, y := float64(a)/100, float64(b)/100
		if x < y {
			return Sigmoid(x) <= Sigmoid(y)
		}
		return Sigmoid(y) <= Sigmoid(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Error("Clamp broken")
	}
}
