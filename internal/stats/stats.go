// Package stats provides the statistical primitives the OASIS library is
// built on: histograms (used by the Cumulative-√F stratifier), streaming
// moment accumulators, divergences between discrete distributions, quantiles
// and normal-approximation confidence intervals.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by routines that require at least one observation.
var ErrEmpty = errors.New("stats: empty input")

// Mean returns the arithmetic mean of xs, or NaN for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs, or NaN for empty input.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// MeanAbs returns the mean of |xs[i]|.
func MeanAbs(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		s += math.Abs(x)
	}
	return s / float64(len(xs))
}

// MinMax returns the minimum and maximum of xs. It returns an error on empty
// input.
func MinMax(xs []float64) (min, max float64, err error) {
	if len(xs) == 0 {
		return 0, 0, ErrEmpty
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max, nil
}

// Quantile returns the q-quantile (q in [0,1]) of xs using linear
// interpolation between order statistics. xs need not be sorted.
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if q < 0 || q > 1 {
		return 0, errors.New("stats: quantile out of [0,1]")
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0], nil
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo], nil
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac, nil
}

// Online accumulates streaming first and second moments using Welford's
// algorithm. The zero value is ready to use.
type Online struct {
	n    int
	mean float64
	m2   float64
}

// Add incorporates one observation.
func (o *Online) Add(x float64) {
	o.n++
	d := x - o.mean
	o.mean += d / float64(o.n)
	o.m2 += d * (x - o.mean)
}

// N returns the number of observations so far.
func (o *Online) N() int { return o.n }

// Mean returns the running mean (NaN if no observations).
func (o *Online) Mean() float64 {
	if o.n == 0 {
		return math.NaN()
	}
	return o.mean
}

// Variance returns the running population variance (NaN if no observations).
func (o *Online) Variance() float64 {
	if o.n == 0 {
		return math.NaN()
	}
	return o.m2 / float64(o.n)
}

// StdDev returns the running population standard deviation.
func (o *Online) StdDev() float64 { return math.Sqrt(o.Variance()) }

// SampleVariance returns the Bessel-corrected variance (NaN if n < 2).
func (o *Online) SampleVariance() float64 {
	if o.n < 2 {
		return math.NaN()
	}
	return o.m2 / float64(o.n-1)
}

// Histogram is a fixed-width binning of scalar observations over [Min, Max].
// Values outside the range are clamped into the boundary bins, matching the
// behaviour assumed by the CSF stratifier (Algorithm 1 of the paper).
type Histogram struct {
	Min, Max float64
	Counts   []int
	width    float64
	total    int
}

// NewHistogram builds a histogram of xs with the given number of bins
// spanning [min(xs), max(xs)]. If all values are equal the single degenerate
// bin holds everything.
func NewHistogram(xs []float64, bins int) (*Histogram, error) {
	if len(xs) == 0 {
		return nil, ErrEmpty
	}
	if bins <= 0 {
		return nil, errors.New("stats: histogram needs at least one bin")
	}
	lo, hi, err := MinMax(xs)
	if err != nil {
		return nil, err
	}
	h := &Histogram{Min: lo, Max: hi, Counts: make([]int, bins)}
	if hi > lo {
		h.width = (hi - lo) / float64(bins)
	}
	for _, x := range xs {
		h.Counts[h.BinOf(x)]++
		h.total++
	}
	return h, nil
}

// Bins returns the number of bins.
func (h *Histogram) Bins() int { return len(h.Counts) }

// Total returns the number of binned observations.
func (h *Histogram) Total() int { return h.total }

// BinOf returns the bin index of x, clamping to [0, Bins()-1].
func (h *Histogram) BinOf(x float64) int {
	if h.width == 0 {
		return 0
	}
	i := int((x - h.Min) / h.width)
	if i < 0 {
		return 0
	}
	if i >= len(h.Counts) {
		return len(h.Counts) - 1
	}
	return i
}

// LeftEdge returns the left edge of bin i.
func (h *Histogram) LeftEdge(i int) float64 { return h.Min + float64(i)*h.width }

// RightEdge returns the right edge of bin i (the histogram maximum for the
// final bin).
func (h *Histogram) RightEdge(i int) float64 {
	if i == len(h.Counts)-1 {
		return h.Max
	}
	return h.Min + float64(i+1)*h.width
}

// Normalize converts p (unnormalised non-negative weights) into a probability
// vector in place and returns it. It returns an error if the sum is not
// positive and finite.
func Normalize(p []float64) ([]float64, error) {
	s := 0.0
	for _, x := range p {
		if x < 0 || math.IsNaN(x) || math.IsInf(x, 0) {
			return nil, errors.New("stats: negative or non-finite weight")
		}
		s += x
	}
	if s <= 0 || math.IsInf(s, 0) {
		return nil, errors.New("stats: weights sum to zero")
	}
	for i := range p {
		p[i] /= s
	}
	return p, nil
}

// KLDivergence returns D(p ‖ q) = Σ p_i log(p_i/q_i) in nats for two discrete
// distributions of equal length. Terms with p_i = 0 contribute zero. If some
// p_i > 0 has q_i = 0 the divergence is +Inf. Inputs need not be normalised;
// they are normalised internally without mutating the arguments.
func KLDivergence(p, q []float64) (float64, error) {
	if len(p) != len(q) || len(p) == 0 {
		return 0, errors.New("stats: KL requires equal-length non-empty distributions")
	}
	pn, err := Normalize(append([]float64(nil), p...))
	if err != nil {
		return 0, err
	}
	qn, err := Normalize(append([]float64(nil), q...))
	if err != nil {
		return 0, err
	}
	d := 0.0
	for i := range pn {
		if pn[i] == 0 {
			continue
		}
		if qn[i] == 0 {
			return math.Inf(1), nil
		}
		d += pn[i] * math.Log(pn[i]/qn[i])
	}
	if d < 0 {
		d = 0 // guard tiny negative round-off
	}
	return d, nil
}

// TotalVariation returns 0.5 Σ |p_i − q_i| after normalising both inputs.
func TotalVariation(p, q []float64) (float64, error) {
	if len(p) != len(q) || len(p) == 0 {
		return 0, errors.New("stats: TV requires equal-length non-empty distributions")
	}
	pn, err := Normalize(append([]float64(nil), p...))
	if err != nil {
		return 0, err
	}
	qn, err := Normalize(append([]float64(nil), q...))
	if err != nil {
		return 0, err
	}
	d := 0.0
	for i := range pn {
		d += math.Abs(pn[i] - qn[i])
	}
	return d / 2, nil
}

// MeanCI returns the mean of xs and the half-width of an approximate
// normal-theory confidence interval at the given z value (1.96 for ~95%).
func MeanCI(xs []float64, z float64) (mean, halfWidth float64) {
	var o Online
	for _, x := range xs {
		o.Add(x)
	}
	mean = o.Mean()
	if o.N() < 2 {
		return mean, math.NaN()
	}
	se := math.Sqrt(o.SampleVariance() / float64(o.N()))
	return mean, z * se
}

// Logit returns log(p / (1-p)).
func Logit(p float64) float64 { return math.Log(p / (1 - p)) }

// Sigmoid returns the logistic function 1/(1+e^-x).
func Sigmoid(x float64) float64 {
	if x >= 0 {
		z := math.Exp(-x)
		return 1 / (1 + z)
	}
	z := math.Exp(x)
	return z / (1 + z)
}

// Clamp limits x to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
