package trace

import "time"

// SpanJSON is one span in the /debug/traces wire form. Parent is the
// index of the parent span within the same trace (-1 for the root), so
// clients can rebuild the tree without span IDs.
type SpanJSON struct {
	Index   int               `json:"index"`
	Parent  int               `json:"parent"`
	Layer   string            `json:"layer"`
	Name    string            `json:"name"`
	StartUs float64           `json:"startUs"`
	DurUs   float64           `json:"durUs"`
	Attrs   map[string]string `json:"attrs,omitempty"`
}

// TraceJSON is the /debug/traces/{id} wire form of a completed trace.
type TraceJSON struct {
	ID           string     `json:"id"`
	RootSpanID   string     `json:"rootSpanId"`
	ParentSpanID string     `json:"parentSpanId,omitempty"`
	RequestID    string     `json:"requestId,omitempty"`
	Route        string     `json:"route"`
	Status       int        `json:"status"`
	Start        time.Time  `json:"start"`
	DurationUs   float64    `json:"durationUs"`
	Slow         bool       `json:"slow,omitempty"`
	Errored      bool       `json:"errored,omitempty"`
	DroppedSpans int        `json:"droppedSpans,omitempty"`
	Spans        []SpanJSON `json:"spans"`
}

// Summary is one row of the /debug/traces listing.
type Summary struct {
	ID         string    `json:"id"`
	RequestID  string    `json:"requestId,omitempty"`
	Route      string    `json:"route"`
	Status     int       `json:"status"`
	Start      time.Time `json:"start"`
	DurationUs float64   `json:"durationUs"`
	Slow       bool      `json:"slow,omitempty"`
	Errored    bool      `json:"errored,omitempty"`
	Spans      int       `json:"spans"`
}

// Export renders a completed (published) trace for JSON encoding. Must
// not be called while the owning request is still recording spans.
func (t *Trace) Export() TraceJSON {
	if t == nil {
		return TraceJSON{}
	}
	out := TraceJSON{
		ID:           t.id.String(),
		RootSpanID:   t.root.String(),
		RequestID:    t.reqID,
		Route:        t.route,
		Status:       t.status,
		Start:        t.wall,
		DurationUs:   float64(t.dur) / float64(time.Microsecond),
		Slow:         t.slow,
		Errored:      t.errored,
		DroppedSpans: int(t.dropped),
		Spans:        make([]SpanJSON, int(t.n)),
	}
	if !t.remote.IsZero() {
		out.ParentSpanID = t.remote.String()
	}
	for i := 0; i < int(t.n); i++ {
		sp := &t.spans[i]
		sj := SpanJSON{
			Index:   i,
			Parent:  int(sp.parent),
			Layer:   sp.layer,
			Name:    sp.name,
			StartUs: float64(sp.start) / float64(time.Microsecond),
			DurUs:   float64(sp.dur) / float64(time.Microsecond),
		}
		if sp.nattrs > 0 {
			sj.Attrs = make(map[string]string, sp.nattrs)
			for a := 0; a < int(sp.nattrs); a++ {
				sj.Attrs[sp.attrs[a].Key] = sp.attrs[a].Value
			}
		}
		out.Spans[i] = sj
	}
	return out
}

// Summarize renders the listing row for a completed trace.
func (t *Trace) Summarize() Summary {
	if t == nil {
		return Summary{}
	}
	return Summary{
		ID:         t.id.String(),
		RequestID:  t.reqID,
		Route:      t.route,
		Status:     t.status,
		Start:      t.wall,
		DurationUs: float64(t.dur) / float64(time.Microsecond),
		Slow:       t.slow,
		Errored:    t.errored,
		Spans:      int(t.n),
	}
}
