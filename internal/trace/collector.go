package trace

import (
	"math"
	"math/rand/v2"
	"sort"
	"sync/atomic"
	"time"
)

// Defaults for Options fields left zero.
const (
	DefaultSampleRate = 0.01
	DefaultRecent     = 64
	DefaultRetained   = 256
	DefaultMaxSpans   = 64
)

// Options configures a Collector.
type Options struct {
	// SampleRate is the head-sampling probability for requests that do
	// not arrive with a sampled traceparent; negative means 0 (only
	// explicitly sampled requests record), values >= 1 record everything.
	SampleRate float64
	// Slow is the tail-retention threshold: every trace at least this
	// slow is kept regardless of ring churn (0 disables slow retention).
	Slow time.Duration
	// Recent / Retained are the ring capacities for, respectively, the
	// most recent sampled traces and the slow-or-errored keepers.
	Recent   int
	Retained int
	// MaxSpans is the per-trace span capacity.
	MaxSpans int
}

// CollectorStats are the collector's lifetime counters plus the current
// ring occupancy, exported through /metrics and /v1/stats.
type CollectorStats struct {
	Recorded     uint64 `json:"recorded"`
	RetainedSlow uint64 `json:"retainedSlow"`
	RetainedErr  uint64 `json:"retainedErrored"`
	SpanDrops    uint64 `json:"spanDrops"`
	// Ring occupancy: slots currently holding a trace vs capacity, for the
	// recent ring and the slow-or-errored keeper ring.
	RecentHeld       int `json:"recentHeld"`
	RecentCapacity   int `json:"recentCapacity"`
	RetainedHeld     int `json:"retainedHeld"`
	RetainedCapacity int `json:"retainedCapacity"`
}

// ring is a lock-free overwrite-oldest buffer of published traces.
// Writers claim a slot with one atomic add and publish with one atomic
// pointer store; readers load pointers and only ever see fully built
// traces, because a trace is stored strictly after its last span ended.
type ring struct {
	slots []atomic.Pointer[Trace]
	next  atomic.Uint64
}

func newRing(n int) *ring {
	return &ring{slots: make([]atomic.Pointer[Trace], n)}
}

func (r *ring) add(t *Trace) {
	i := r.next.Add(1) - 1
	r.slots[i%uint64(len(r.slots))].Store(t)
}

// held counts slots currently holding a trace (monotone until the ring
// wraps, then pinned at capacity).
func (r *ring) held() int {
	n := 0
	for i := range r.slots {
		if r.slots[i].Load() != nil {
			n++
		}
	}
	return n
}

func (r *ring) snapshot(out []*Trace) []*Trace {
	for i := range r.slots {
		if t := r.slots[i].Load(); t != nil {
			out = append(out, t)
		}
	}
	return out
}

// Collector owns the head-sampling decision and the tail-based
// retention rings. All methods are safe for concurrent use.
type Collector struct {
	threshold uint64 // sample iff rand < threshold
	slow      time.Duration
	maxSpans  int

	recent   *ring
	retained *ring

	recorded     atomic.Uint64
	retainedSlow atomic.Uint64
	retainedErr  atomic.Uint64
	spanDrops    atomic.Uint64
}

// NewCollector builds a collector; zero Options fields take the
// package defaults (except SampleRate, where only an exact zero means
// "default" — pass a negative rate to disable head sampling).
func NewCollector(o Options) *Collector {
	if o.SampleRate == 0 {
		o.SampleRate = DefaultSampleRate
	}
	if o.Recent <= 0 {
		o.Recent = DefaultRecent
	}
	if o.Retained <= 0 {
		o.Retained = DefaultRetained
	}
	if o.MaxSpans <= 0 {
		o.MaxSpans = DefaultMaxSpans
	}
	c := &Collector{
		slow:     o.Slow,
		maxSpans: o.MaxSpans,
		recent:   newRing(o.Recent),
		retained: newRing(o.Retained),
	}
	switch {
	case o.SampleRate >= 1:
		c.threshold = math.MaxUint64
	case o.SampleRate < 0:
		c.threshold = 0
	default:
		c.threshold = uint64(o.SampleRate * float64(math.MaxUint64))
	}
	return c
}

// Slow returns the tail-retention threshold.
func (c *Collector) Slow() time.Duration { return c.slow }

// Sample is the head-sampling decision for a request with no inbound
// sampled traceparent: one PRNG draw and a compare.
func (c *Collector) Sample() bool {
	if c.threshold == 0 {
		return false
	}
	if c.threshold == math.MaxUint64 {
		return true
	}
	return rand.Uint64() < c.threshold
}

// New builds an empty trace at the collector's span capacity.
func (c *Collector) New(id TraceID, root, remote SpanID) *Trace {
	return NewTrace(id, root, remote, c.maxSpans)
}

// Finish classifies and publishes a completed trace: every finished
// trace enters the recent ring; slow (>= the -slow-request threshold)
// or errored (5xx) traces also enter the retained ring, which only
// other keepers can evict. The trace must not be mutated afterwards.
func (c *Collector) Finish(t *Trace, dur time.Duration, errored bool) {
	if c == nil || t == nil {
		return
	}
	t.dur = dur
	t.slow = c.slow > 0 && dur >= c.slow
	t.errored = errored
	c.recorded.Add(1)
	if t.dropped > 0 {
		c.spanDrops.Add(uint64(t.dropped))
	}
	c.recent.add(t)
	if t.slow || t.errored {
		if t.slow {
			c.retainedSlow.Add(1)
		} else {
			c.retainedErr.Add(1)
		}
		c.retained.add(t)
	}
}

// Snapshot returns the currently held traces (both rings, deduplicated —
// a slow trace sits in both), newest first. The result is a fresh slice;
// the traces themselves are immutable.
func (c *Collector) Snapshot() []*Trace {
	if c == nil {
		return nil
	}
	out := make([]*Trace, 0, len(c.recent.slots)+len(c.retained.slots))
	out = c.recent.snapshot(out)
	out = c.retained.snapshot(out)
	seen := make(map[*Trace]struct{}, len(out))
	uniq := out[:0]
	for _, t := range out {
		if _, dup := seen[t]; dup {
			continue
		}
		seen[t] = struct{}{}
		uniq = append(uniq, t)
	}
	sort.Slice(uniq, func(i, j int) bool { return uniq[i].wall.After(uniq[j].wall) })
	return uniq
}

// Lookup finds a held trace by ID; nil when it has been evicted (or was
// never sampled).
func (c *Collector) Lookup(id TraceID) *Trace {
	if c == nil {
		return nil
	}
	for _, r := range [2]*ring{c.retained, c.recent} {
		for i := range r.slots {
			if t := r.slots[i].Load(); t != nil && t.id == id {
				return t
			}
		}
	}
	return nil
}

// Stats snapshots the lifetime counters.
func (c *Collector) Stats() CollectorStats {
	if c == nil {
		return CollectorStats{}
	}
	return CollectorStats{
		Recorded:         c.recorded.Load(),
		RetainedSlow:     c.retainedSlow.Load(),
		RetainedErr:      c.retainedErr.Load(),
		SpanDrops:        c.spanDrops.Load(),
		RecentHeld:       c.recent.held(),
		RecentCapacity:   len(c.recent.slots),
		RetainedHeld:     c.retained.held(),
		RetainedCapacity: len(c.retained.slots),
	}
}
