package trace

import (
	"strconv"
	"strings"
	"testing"
	"time"
)

const (
	validTP  = "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
	validTID = "0af7651916cd43dd8448eb211c80319c"
	validSID = "b7ad6b7169203331"
)

func TestParseTraceparentValid(t *testing.T) {
	tid, sid, flags, err := ParseTraceparent(validTP)
	if err != nil {
		t.Fatalf("ParseTraceparent(%q): %v", validTP, err)
	}
	if tid.String() != validTID {
		t.Errorf("trace-id = %s, want %s", tid, validTID)
	}
	if sid.String() != validSID {
		t.Errorf("parent-id = %s, want %s", sid, validSID)
	}
	if flags != FlagSampled {
		t.Errorf("flags = %02x, want 01", flags)
	}
}

func TestParseTraceparentRoundTrip(t *testing.T) {
	tid := MakeTraceID(0xdeadbeefcafef00d, 42)
	sid := MakeSpanID(0xdeadbeefcafef00d, 42)
	h := Traceparent(tid, sid, FlagSampled)
	tid2, sid2, flags, err := ParseTraceparent(h)
	if err != nil {
		t.Fatalf("round trip parse of %q: %v", h, err)
	}
	if tid2 != tid || sid2 != sid || flags != FlagSampled {
		t.Errorf("round trip mismatch: got (%s,%s,%02x) want (%s,%s,01)", tid2, sid2, flags, tid, sid)
	}
}

func TestParseTraceparentRejects(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"short", "00-abc"},
		{"truncated one char", validTP[:54]},
		{"version ff", "ff" + validTP[2:]},
		{"version not hex", "zz" + validTP[2:]},
		{"uppercase trace id", "00-0AF7651916CD43DD8448EB211C80319C-b7ad6b7169203331-01"},
		{"non-hex trace id", "00-0af7651916cd43dd8448eb211c8031gg-b7ad6b7169203331-01"},
		{"all-zero trace id", "00-00000000000000000000000000000000-b7ad6b7169203331-01"},
		{"all-zero parent id", "00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01"},
		{"non-hex flags", "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-0x"},
		{"missing dash after version", "00x0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"},
		{"missing dash after trace id", "00-0af7651916cd43dd8448eb211c80319cxb7ad6b7169203331-01"},
		{"missing dash after parent id", "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331x01"},
		{"version 00 with trailer", validTP + "-extra"},
		{"future version with bad separator", "01" + validTP[2:] + "x"},
	}
	for _, tc := range cases {
		if _, _, _, err := ParseTraceparent(tc.in); err == nil {
			t.Errorf("%s: ParseTraceparent(%q) accepted, want error", tc.name, tc.in)
		}
	}
}

func TestParseTraceparentFutureVersion(t *testing.T) {
	// Per spec, a future version parses if the 00-shaped prefix parses and
	// the extra data is separated by a dash (or absent).
	for _, in := range []string{
		"01" + validTP[2:],
		"01" + validTP[2:] + "-future-fields",
	} {
		if _, _, _, err := ParseTraceparent(in); err != nil {
			t.Errorf("ParseTraceparent(%q): %v, want accepted", in, err)
		}
	}
}

func TestMakeTraceIDUnique(t *testing.T) {
	a := MakeTraceID(1, 1)
	b := MakeTraceID(1, 2)
	c := MakeTraceID(2, 1)
	if a == b || a == c || b == c {
		t.Errorf("MakeTraceID collisions: %s %s %s", a, b, c)
	}
	if MakeSpanID(1, 1) == MakeSpanID(1, 2) {
		t.Error("MakeSpanID(1,1) == MakeSpanID(1,2)")
	}
	if MakeSpanID(1, 1).IsZero() {
		t.Error("MakeSpanID produced the invalid all-zero ID")
	}
}

func TestSpanNesting(t *testing.T) {
	tr := NewTrace(MakeTraceID(7, 1), MakeSpanID(7, 1), SpanID{}, 8)
	root := tr.Start("server", "GET /x")
	child := tr.Start("session", "session.propose").AttrInt("shard", 3)
	grand := tr.Start("wal", "wal.fsync").Attr("lane", "0")
	grand.End()
	sibling := tr.Start("sampler", "sampler.propose")
	sibling.End()
	child.End()
	child2 := tr.Start("server", "http.encode")
	child2.End()
	root.End()

	out := tr.Export()
	if len(out.Spans) != 5 {
		t.Fatalf("got %d spans, want 5", len(out.Spans))
	}
	wantParent := []int{-1, 0, 1, 1, 0}
	for i, p := range wantParent {
		if out.Spans[i].Parent != p {
			t.Errorf("span %d (%s) parent = %d, want %d", i, out.Spans[i].Name, out.Spans[i].Parent, p)
		}
	}
	if out.Spans[1].Attrs["shard"] != "3" {
		t.Errorf("shard attr = %q, want 3", out.Spans[1].Attrs["shard"])
	}
	if out.Spans[2].Attrs["lane"] != "0" {
		t.Errorf("lane attr = %q, want 0", out.Spans[2].Attrs["lane"])
	}
	for i, sp := range out.Spans {
		if sp.DurUs < 0 {
			t.Errorf("span %d has negative duration %v", i, sp.DurUs)
		}
	}
}

func TestSpanOverflowCountsDropped(t *testing.T) {
	tr := NewTrace(MakeTraceID(7, 2), MakeSpanID(7, 2), SpanID{}, 2)
	a := tr.Start("server", "root")
	b := tr.Start("session", "fits")
	c := tr.Start("wal", "dropped")
	d := tr.AddSpan("pool", "also dropped", time.Millisecond)
	c.End()
	d.End()
	b.End()
	a.End()
	if got := tr.Dropped(); got != 2 {
		t.Errorf("Dropped() = %d, want 2", got)
	}
	if n := len(tr.Export().Spans); n != 2 {
		t.Errorf("exported %d spans, want 2", n)
	}
}

func TestAddSpanRetroactive(t *testing.T) {
	tr := NewTrace(MakeTraceID(7, 3), MakeSpanID(7, 3), SpanID{}, 8)
	root := tr.Start("server", "root")
	time.Sleep(2 * time.Millisecond)
	tr.AddSpan("sampler", "sampler.rebuild", time.Millisecond)
	root.End()
	out := tr.Export()
	sp := out.Spans[1]
	if sp.Parent != 0 {
		t.Errorf("retroactive span parent = %d, want 0", sp.Parent)
	}
	if sp.DurUs < 999 || sp.DurUs > 1001 {
		t.Errorf("retroactive span dur = %vµs, want ~1000", sp.DurUs)
	}
	if sp.StartUs < 0 {
		t.Errorf("retroactive span start = %vµs, want >= 0", sp.StartUs)
	}
}

func TestNilTraceIsInert(t *testing.T) {
	var tr *Trace
	sp := tr.Start("server", "x").Attr("k", "v").AttrInt("n", 1)
	sp.End()
	tr.AddSpan("wal", "y", time.Second)
	tr.SetRequest("/x", "id", 200)
	if tr.Dropped() != 0 || !tr.ID().IsZero() || !tr.RootSpanID().IsZero() {
		t.Error("nil trace accessors not zero")
	}
	ctx := NewContext(t.Context(), nil)
	if FromContext(ctx) != nil {
		t.Error("NewContext(nil trace) stored a value")
	}
	if FromContext(nil) != nil {
		t.Error("FromContext(nil ctx) != nil")
	}
}

// TestUnsampledPathAllocs pins the package's core contract: the
// instrumentation sequence a request executes when it is NOT sampled
// (nil trace from context, span starts/ends, attrs) allocates nothing.
func TestUnsampledPathAllocs(t *testing.T) {
	ctx := t.Context()
	allocs := testing.AllocsPerRun(100, func() {
		tr := FromContext(ctx)
		sp := tr.Start("session", "session.propose").AttrInt("shard", 5)
		inner := tr.Start("wal", "wal.fsync")
		inner.End()
		sp.End()
	})
	if allocs != 0 {
		t.Errorf("unsampled instrumentation allocates %v per op, want 0", allocs)
	}
}

func TestContextRoundTrip(t *testing.T) {
	tr := NewTrace(MakeTraceID(9, 9), MakeSpanID(9, 9), SpanID{}, 4)
	ctx := NewContext(t.Context(), tr)
	if got := FromContext(ctx); got != tr {
		t.Fatalf("FromContext = %p, want %p", got, tr)
	}
}

func TestCollectorFinishClassifies(t *testing.T) {
	c := NewCollector(Options{SampleRate: 1, Slow: 10 * time.Millisecond, Recent: 4, Retained: 4})

	mk := func(seq uint64) *Trace {
		tr := c.New(MakeTraceID(1, seq), MakeSpanID(1, seq), SpanID{})
		sp := tr.Start("server", "GET /x")
		sp.End()
		tr.SetRequest("GET /x", "req", 200)
		return tr
	}

	fast := mk(1)
	c.Finish(fast, time.Millisecond, false)
	slow := mk(2)
	c.Finish(slow, 20*time.Millisecond, false)
	errored := mk(3)
	errored.SetRequest("GET /x", "req3", 500)
	c.Finish(errored, time.Millisecond, true)

	if got := c.Lookup(slow.ID()); got == nil || !got.Export().Slow {
		t.Error("slow trace not retrievable as slow")
	}
	if got := c.Lookup(errored.ID()); got == nil || !got.Export().Errored {
		t.Error("errored trace not retrievable as errored")
	}
	st := c.Stats()
	if st.Recorded != 3 || st.RetainedSlow != 1 || st.RetainedErr != 1 {
		t.Errorf("stats = %+v, want recorded 3, slow 1, err 1", st)
	}

	// Churn the recent ring: the slow trace must survive via the retained
	// ring even after Recent(4) newer fast traces.
	for seq := uint64(10); seq < 20; seq++ {
		c.Finish(mk(seq), time.Millisecond, false)
	}
	if c.Lookup(slow.ID()) == nil {
		t.Error("slow trace evicted by fast-trace churn")
	}
	if c.Lookup(fast.ID()) != nil {
		t.Error("fast trace survived churn past the recent ring capacity")
	}

	// Snapshot dedups the slow trace (it sits in both rings).
	ids := map[string]int{}
	for _, tr := range c.Snapshot() {
		ids[tr.Summarize().ID]++
	}
	for id, n := range ids {
		if n != 1 {
			t.Errorf("trace %s appears %d times in Snapshot", id, n)
		}
	}
}

func TestCollectorSampleRates(t *testing.T) {
	always := NewCollector(Options{SampleRate: 1})
	never := NewCollector(Options{SampleRate: -1})
	for i := 0; i < 100; i++ {
		if !always.Sample() {
			t.Fatal("rate 1 collector skipped a sample")
		}
		if never.Sample() {
			t.Fatal("rate -1 collector took a sample")
		}
	}
	half := NewCollector(Options{SampleRate: 0.5})
	n := 0
	for i := 0; i < 10000; i++ {
		if half.Sample() {
			n++
		}
	}
	if n < 4000 || n > 6000 {
		t.Errorf("rate 0.5 sampled %d/10000, want ~5000", n)
	}
}

func TestTraceparentStringForms(t *testing.T) {
	tid := MakeTraceID(0x0102030405060708, 0x090a0b0c0d0e0f10)
	if got, want := tid.String(), "0102030405060708090a0b0c0d0e0f10"; got != want {
		t.Errorf("TraceID.String() = %q, want %q", got, want)
	}
	h := Traceparent(tid, MakeSpanID(1, 2), 0)
	if len(h) != 55 || strings.ToLower(h) != h {
		t.Errorf("Traceparent %q not 55-char lowercase", h)
	}
}

func TestItoa(t *testing.T) {
	for _, v := range []int64{0, 1, -1, 42, -42, 1<<62 + 3, -(1<<62 + 3)} {
		if got, want := itoa(v), strconv.FormatInt(v, 10); got != want {
			t.Errorf("itoa(%d) = %q, want %q", v, got, want)
		}
	}
}
