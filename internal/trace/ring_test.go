package trace

import (
	"sync"
	"testing"
	"time"
)

// TestRingConcurrentStress is the satellite -race gate for the trace
// ring: writer goroutines publish traces (a deterministic subset slow)
// while reader goroutines continuously drain Snapshot and Lookup, the
// way GET /debug/traces does under live propose/commit traffic. It
// asserts (a) no span loss — every slow trace is retrievable afterwards
// with its full span set, since slow traces never exceed the retained
// ring's capacity here — and (b) bounded memory for sampled-out fast
// traces: a snapshot can never exceed the two ring capacities combined.
func TestRingConcurrentStress(t *testing.T) {
	const (
		writers        = 8
		tracesPerW     = 400
		slowEvery      = 100 // 8*400/100 = 32 slow traces << retained cap
		recentCap      = 16
		retainedCap    = 64
		spansPerTrace  = 6
		maxSnapshotLen = recentCap + retainedCap
	)
	c := NewCollector(Options{SampleRate: 1, Slow: time.Millisecond, Recent: recentCap, Retained: retainedCap})

	var writersWG, readersWG sync.WaitGroup
	stop := make(chan struct{})

	// Readers: drain continuously, checking the memory bound.
	for r := 0; r < 4; r++ {
		readersWG.Add(1)
		go func() {
			defer readersWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := c.Snapshot()
				if len(snap) > maxSnapshotLen {
					t.Errorf("Snapshot holds %d traces, cap is %d", len(snap), maxSnapshotLen)
					return
				}
				for _, tr := range snap {
					// Exporting a published trace while writers publish
					// more must be race-free and self-consistent.
					out := tr.Export()
					if len(out.Spans) == 0 {
						t.Error("published trace exported zero spans")
						return
					}
					if out.Spans[0].Parent != -1 {
						t.Errorf("trace %s root parent = %d", out.ID, out.Spans[0].Parent)
						return
					}
				}
			}
		}()
	}

	var slowMu sync.Mutex
	slowIDs := make(map[TraceID]struct{})
	for w := 0; w < writers; w++ {
		writersWG.Add(1)
		go func(w int) {
			defer writersWG.Done()
			boot := uint64(w + 1)
			for i := 0; i < tracesPerW; i++ {
				seq := uint64(i + 1)
				tr := c.New(MakeTraceID(boot, seq), MakeSpanID(boot, seq), SpanID{})
				root := tr.Start("server", "POST /v1/sessions/{id}/labels")
				for s := 1; s < spansPerTrace; s++ {
					sp := tr.Start("session", "stage").AttrInt("i", int64(s))
					sp.End()
				}
				root.End()
				tr.SetRequest("POST /v1/sessions/{id}/labels", "req", 200)
				dur := time.Microsecond
				if i%slowEvery == 0 {
					dur = 2 * time.Millisecond
					slowMu.Lock()
					slowIDs[tr.ID()] = struct{}{}
					slowMu.Unlock()
				}
				c.Finish(tr, dur, false)
			}
		}(w)
	}

	// Let writers finish, then stop the readers.
	writersWG.Wait()
	close(stop)
	readersWG.Wait()

	// Every slow trace must still be there, spans intact.
	for id := range slowIDs {
		tr := c.Lookup(id)
		if tr == nil {
			t.Fatalf("slow trace %s lost from the retained ring", id)
		}
		out := tr.Export()
		if len(out.Spans) != spansPerTrace {
			t.Fatalf("slow trace %s has %d spans, want %d", id, len(out.Spans), spansPerTrace)
		}
		if !out.Slow {
			t.Fatalf("slow trace %s not marked slow", id)
		}
	}
	st := c.Stats()
	if want := uint64(writers * tracesPerW); st.Recorded != want {
		t.Errorf("recorded %d traces, want %d", st.Recorded, want)
	}
	if want := uint64(len(slowIDs)); st.RetainedSlow != want {
		t.Errorf("retained %d slow traces, want %d", st.RetainedSlow, want)
	}
	if len(c.Snapshot()) > maxSnapshotLen {
		t.Errorf("final snapshot exceeds ring capacities")
	}
}
