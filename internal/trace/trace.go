// Package trace is the request-tracing counterpart to internal/obs: a
// dependency-free span recorder built for a hot path that is usually not
// tracing. A request that is not sampled carries a nil *Trace, and every
// method on a nil *Trace or zero Span is a no-op that allocates nothing,
// so instrumentation can be written unconditionally at every layer
// (server, session, sampler, WAL, pool store) and costs only a nil check
// when the request is not recorded.
//
// A Trace is a fixed-capacity array of spans filled in by one request
// goroutine: Start pushes a span whose parent is the innermost span still
// open, End pops it and stamps the duration off the trace's monotonic
// start time. Traces are not safe for concurrent span recording — the
// propose/commit path runs each request on a single goroutine, which is
// what makes the builder allocation- and lock-free — but a completed
// trace is immutable and may be read from any goroutine once it has been
// published through a Collector.
//
// Trace identity follows the W3C Trace Context draft: ParseTraceparent
// and Traceparent convert between the wire form
// ("00-<32 hex trace-id>-<16 hex parent-id>-<2 hex flags>") and binary
// IDs, so callers can hand a trace ID to the service and fish the
// recorded timeline back out of GET /debug/traces/{id}.
package trace

import (
	"context"
	"errors"
	"time"
)

// TraceID is the 16-byte W3C trace identifier.
type TraceID [16]byte

// SpanID is the 8-byte W3C span (parent) identifier.
type SpanID [8]byte

// IsZero reports whether the ID is all zero (invalid per W3C).
func (id TraceID) IsZero() bool { return id == TraceID{} }

// IsZero reports whether the ID is all zero (invalid per W3C).
func (id SpanID) IsZero() bool { return id == SpanID{} }

const hexDigits = "0123456789abcdef"

// String renders the ID as 32 lowercase hex digits.
func (id TraceID) String() string {
	var b [32]byte
	for i, v := range id {
		b[2*i] = hexDigits[v>>4]
		b[2*i+1] = hexDigits[v&0xf]
	}
	return string(b[:])
}

// String renders the ID as 16 lowercase hex digits.
func (id SpanID) String() string {
	var b [16]byte
	for i, v := range id {
		b[2*i] = hexDigits[v>>4]
		b[2*i+1] = hexDigits[v&0xf]
	}
	return string(b[:])
}

// FlagSampled is the traceparent flag bit requesting that the callee
// record the trace.
const FlagSampled = 0x01

// Traceparent errors, distinguished for tests; callers usually only care
// that the header was unusable.
var (
	errTraceparentLength  = errors.New("trace: traceparent too short")
	errTraceparentVersion = errors.New("trace: invalid traceparent version")
	errTraceparentHex     = errors.New("trace: traceparent field is not lowercase hex")
	errTraceparentDash    = errors.New("trace: traceparent field separator missing")
	errTraceparentZeroID  = errors.New("trace: traceparent carries an all-zero ID")
)

// hexVal decodes one lowercase hex digit; ok is false for anything else
// (uppercase is invalid in traceparent by spec).
func hexVal(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	}
	return 0, false
}

func hexByte(s string) (byte, bool) {
	hi, ok1 := hexVal(s[0])
	lo, ok2 := hexVal(s[1])
	return hi<<4 | lo, ok1 && ok2
}

// ParseTraceparent parses a W3C traceparent header value:
//
//	version "-" trace-id "-" parent-id "-" flags
//	  00    -  32 hex    -   16 hex    -  2 hex
//
// Validation follows the spec: fields must be lowercase hex, version ff
// is invalid, all-zero trace or parent IDs are rejected, version 00 must
// be exactly 55 bytes, and a future version is accepted if its first
// four fields parse and are followed by "-" or end-of-string.
func ParseTraceparent(h string) (tid TraceID, sid SpanID, flags byte, err error) {
	if len(h) < 55 {
		return tid, sid, 0, errTraceparentLength
	}
	ver, ok := hexByte(h[0:2])
	if !ok {
		return tid, sid, 0, errTraceparentHex
	}
	if ver == 0xff {
		return tid, sid, 0, errTraceparentVersion
	}
	if h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return tid, sid, 0, errTraceparentDash
	}
	for i := 0; i < 16; i++ {
		b, ok := hexByte(h[3+2*i : 5+2*i])
		if !ok {
			return TraceID{}, sid, 0, errTraceparentHex
		}
		tid[i] = b
	}
	for i := 0; i < 8; i++ {
		b, ok := hexByte(h[36+2*i : 38+2*i])
		if !ok {
			return TraceID{}, SpanID{}, 0, errTraceparentHex
		}
		sid[i] = b
	}
	flags, ok = hexByte(h[53:55])
	if !ok {
		return TraceID{}, SpanID{}, 0, errTraceparentHex
	}
	switch {
	case ver == 0 && len(h) != 55:
		return TraceID{}, SpanID{}, 0, errTraceparentLength
	case ver != 0 && len(h) > 55 && h[55] != '-':
		return TraceID{}, SpanID{}, 0, errTraceparentDash
	}
	if tid.IsZero() || sid.IsZero() {
		return TraceID{}, SpanID{}, 0, errTraceparentZeroID
	}
	return tid, sid, flags, nil
}

// ParseTraceID parses a 32-digit lowercase-hex trace ID (the String form),
// rejecting the all-zero ID — the shape /debug/traces/{id} accepts.
func ParseTraceID(s string) (TraceID, error) {
	var tid TraceID
	if len(s) != 32 {
		return tid, errTraceparentLength
	}
	for i := 0; i < 16; i++ {
		b, ok := hexByte(s[2*i : 2*i+2])
		if !ok {
			return TraceID{}, errTraceparentHex
		}
		tid[i] = b
	}
	if tid.IsZero() {
		return TraceID{}, errTraceparentZeroID
	}
	return tid, nil
}

// Traceparent renders a version-00 traceparent header value.
func Traceparent(tid TraceID, sid SpanID, flags byte) string {
	var b [55]byte
	b[0], b[1], b[2] = '0', '0', '-'
	for i, v := range tid {
		b[3+2*i] = hexDigits[v>>4]
		b[4+2*i] = hexDigits[v&0xf]
	}
	b[35] = '-'
	for i, v := range sid {
		b[36+2*i] = hexDigits[v>>4]
		b[37+2*i] = hexDigits[v&0xf]
	}
	b[52] = '-'
	b[53] = hexDigits[flags>>4]
	b[54] = hexDigits[flags&0xf]
	return string(b[:])
}

// MakeTraceID builds a trace ID from the server's random boot prefix and
// a per-boot request sequence number: globally unique across restarts
// (the prefix) yet aligned with the access log's request IDs (the
// sequence), so a trace ID is greppable in the log and vice versa.
func MakeTraceID(boot, seq uint64) TraceID {
	var id TraceID
	putUint64(id[0:8], boot)
	putUint64(id[8:16], seq)
	return id
}

// MakeSpanID derives a span ID by mixing the sequence into the boot
// prefix (splitmix64 finalizer): unique per request without per-span
// randomness on the hot path.
func MakeSpanID(boot, seq uint64) SpanID {
	z := boot ^ (seq + 0x9e3779b97f4a7c15)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 1 // all-zero span IDs are invalid on the wire
	}
	var id SpanID
	putUint64(id[:], z)
	return id
}

func putUint64(b []byte, v uint64) {
	_ = b[7]
	b[0] = byte(v >> 56)
	b[1] = byte(v >> 48)
	b[2] = byte(v >> 40)
	b[3] = byte(v >> 32)
	b[4] = byte(v >> 24)
	b[5] = byte(v >> 16)
	b[6] = byte(v >> 8)
	b[7] = byte(v)
}

// An Attr is one key/value annotation on a span ("lane"="3",
// "mode"="mmap"). Values are strings; AttrInt formats integers, which
// allocates only on the sampled path.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// maxAttrs bounds annotations per span; extras are dropped silently
// (spans stay fixed-size so a trace never reallocates mid-request).
const maxAttrs = 4

// span is the in-memory record; exported via Export once complete.
type span struct {
	layer  string
	name   string
	parent int32 // index into Trace.spans; -1 for the root
	nattrs int8
	start  time.Duration // offset from Trace start (monotonic)
	dur    time.Duration
	attrs  [maxAttrs]Attr
}

// Trace accumulates the spans of one sampled request. The zero value is
// not usable; Collector.New or NewTrace build one. All span-recording
// methods must be called from the single goroutine serving the request.
type Trace struct {
	id     TraceID
	root   SpanID // our root span's wire ID (reported in the response traceparent)
	remote SpanID // inbound parent span ID, zero when the trace starts here
	start  time.Time
	wall   time.Time // wall clock at start, for human-readable export

	// Request annotations stamped by the server middleware when the
	// request completes, before the trace is published.
	route   string
	reqID   string
	status  int
	dur     time.Duration // root span wall time, set by Finish
	slow    bool          // set by Collector.Finish
	errored bool          // set by Collector.Finish

	spans   []span
	n       int32
	cur     int32 // innermost open span, -1 at top level
	dropped int32
}

// NewTrace builds a trace with capacity for maxSpans spans. remote is
// the inbound traceparent's parent-id (zero when the trace originates
// here); root is the span ID this service reports upstream.
func NewTrace(id TraceID, root, remote SpanID, maxSpans int) *Trace {
	if maxSpans <= 0 {
		maxSpans = DefaultMaxSpans
	}
	t := &Trace{
		id:     id,
		root:   root,
		remote: remote,
		spans:  make([]span, 0, maxSpans),
		cur:    -1,
	}
	// Clock start is stamped after the span-array allocation so the trace's
	// own setup cost is not a hole at the front of its timeline.
	t.start = time.Now()
	t.wall = t.start
	return t
}

// Elapsed returns the time since the trace's monotonic start — the root
// span's wall time while the request is still in flight, and the duration
// to hand Finish so recorded spans line up with the root without a
// middleware-prologue hole.
func (t *Trace) Elapsed() time.Duration {
	if t == nil {
		return 0
	}
	return time.Since(t.start)
}

// ID returns the trace identifier (zero for a nil trace).
func (t *Trace) ID() TraceID {
	if t == nil {
		return TraceID{}
	}
	return t.id
}

// RootSpanID returns the wire ID of the root span.
func (t *Trace) RootSpanID() SpanID {
	if t == nil {
		return SpanID{}
	}
	return t.root
}

// Span is a cheap handle on one recorded span: a trace pointer plus an
// index, passed by value. The zero Span (and any span started on a nil
// trace) is inert — Attr and End do nothing.
type Span struct {
	t *Trace
	i int32
}

// Start opens a span under the innermost open span. layer names the
// subsystem ("server", "session", "sampler", "wal", "pool"); name the
// stage within it ("wal.fsync", "shard.lock_wait"). When the trace's
// span array is full the span is counted as dropped and an inert handle
// returned — the request still completes, the timeline just truncates.
func (t *Trace) Start(layer, name string) Span {
	if t == nil {
		return Span{}
	}
	if int(t.n) == cap(t.spans) {
		t.dropped++
		return Span{}
	}
	i := t.n
	t.spans = t.spans[:i+1]
	sp := &t.spans[i]
	sp.layer = layer
	sp.name = name
	sp.parent = t.cur
	sp.start = time.Since(t.start)
	t.n = i + 1
	t.cur = i
	return Span{t: t, i: i}
}

// AddSpan records an already-measured span of the given duration ending
// now, parented under the innermost open span. It is the retroactive
// form of Start/End for stages whose timing is accumulated elsewhere
// (the sampler's dirty-flag cache rebuild reports nanoseconds, not a
// start/stop pair).
func (t *Trace) AddSpan(layer, name string, dur time.Duration) Span {
	if t == nil {
		return Span{}
	}
	if int(t.n) == cap(t.spans) {
		t.dropped++
		return Span{}
	}
	i := t.n
	t.spans = t.spans[:i+1]
	sp := &t.spans[i]
	sp.layer = layer
	sp.name = name
	sp.parent = t.cur
	sp.dur = dur
	if since := time.Since(t.start); since > dur {
		sp.start = since - dur
	}
	t.n = i + 1
	return Span{t: t, i: i}
}

// Attr annotates the span; at most maxAttrs stick. Returns the span for
// chaining.
func (s Span) Attr(key, value string) Span {
	if s.t == nil {
		return s
	}
	sp := &s.t.spans[s.i]
	if int(sp.nattrs) < maxAttrs {
		sp.attrs[sp.nattrs] = Attr{Key: key, Value: value}
		sp.nattrs++
	}
	return s
}

// AttrInt annotates the span with a decimal integer value.
func (s Span) AttrInt(key string, v int64) Span {
	if s.t == nil {
		return s
	}
	return s.Attr(key, itoa(v))
}

// itoa is strconv.FormatInt without the import — keeps the package
// dependency surface at context+time (plus errors for parse failures).
func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	u := uint64(v)
	neg := v < 0
	if neg {
		u = uint64(-v)
	}
	for u > 0 {
		i--
		b[i] = byte('0' + u%10)
		u /= 10
	}
	if neg {
		i--
		b[i] = '-'
	}
	return string(b[i:])
}

// End closes the span, stamping its duration. Closing out of order is
// tolerated: the open-span cursor only pops when the ended span is the
// innermost one, so a leaked child mis-parents later spans rather than
// corrupting the array.
func (s Span) End() {
	if s.t == nil {
		return
	}
	sp := &s.t.spans[s.i]
	sp.dur = time.Since(s.t.start) - sp.start
	if s.t.cur == s.i {
		s.t.cur = sp.parent
	}
}

// SetRequest stamps the request annotations (route pattern, request ID,
// HTTP status) the middleware knows; called once before Finish.
func (t *Trace) SetRequest(route, reqID string, status int) {
	if t == nil {
		return
	}
	t.route = route
	t.reqID = reqID
	t.status = status
}

// Dropped reports spans that did not fit the fixed-capacity array.
func (t *Trace) Dropped() int {
	if t == nil {
		return 0
	}
	return int(t.dropped)
}

// ctxKey is the private context key for the trace pointer.
type ctxKey struct{}

// NewContext returns ctx carrying t. A nil t returns ctx unchanged, so
// the unsampled path never allocates a context.
func NewContext(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, t)
}

// FromContext returns the trace carried by ctx, or nil. Safe on a nil
// context.
func FromContext(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(ctxKey{}).(*Trace)
	return t
}
