package trace

import "testing"

// FuzzParseTraceparent hammers the header parser: any input must either
// be rejected or round-trip through Traceparent back to an equal header
// prefix, and the parser must never panic or accept all-zero IDs.
func FuzzParseTraceparent(f *testing.F) {
	f.Add(validTP)
	f.Add("00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-00")
	f.Add("01-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01-tail")
	f.Add("ff-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01")
	f.Add("00-00000000000000000000000000000000-b7ad6b7169203331-01")
	f.Add("00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01")
	f.Add("")
	f.Add("00-short")
	f.Add("00-0AF7651916CD43DD8448EB211C80319C-b7ad6b7169203331-01")
	f.Add(validTP + "-trailer")
	f.Fuzz(func(t *testing.T, h string) {
		tid, sid, flags, err := ParseTraceparent(h)
		if err != nil {
			if tid != (TraceID{}) || sid != (SpanID{}) {
				t.Errorf("ParseTraceparent(%q) errored but returned non-zero IDs", h)
			}
			return
		}
		if tid.IsZero() || sid.IsZero() {
			t.Errorf("ParseTraceparent(%q) accepted an all-zero ID", h)
		}
		// A version-00 render of the parsed fields must re-parse to the
		// same values (the canonical round trip).
		h2 := Traceparent(tid, sid, flags)
		tid2, sid2, flags2, err := ParseTraceparent(h2)
		if err != nil || tid2 != tid || sid2 != sid || flags2 != flags {
			t.Errorf("re-render of %q did not round trip: %q err=%v", h, h2, err)
		}
	})
}
