// Package pipeline implements the ER pipeline of the paper's §6.1.2:
// record pre-processing, pairwise similarity features (trigram Jaccard for
// short text, tf-idf cosine for long text, normalised absolute difference
// for numerics), record-pair classification, and construction of the
// evaluation pools of Table 2 (random pair pools with a fixed number of
// ground-truth matches).
package pipeline

import (
	"errors"
	"fmt"
	"sort"

	"oasis/internal/classifier"
	"oasis/internal/dataset"
	"oasis/internal/metric"
	"oasis/internal/pool"
	"oasis/internal/rng"
	"oasis/internal/stats"
	"oasis/internal/textutil"
)

// Rep is the pre-processed representation of one record: per-field trigram
// sets, tf-idf vectors and numbers, aligned with the schema.
type Rep struct {
	tri  [][]string
	vec  []map[string]float64
	num  []float64
	miss []bool
}

// Featurizer converts records of a fixed schema into feature vectors for
// record pairs. Numeric fields are compared on the scale of their corpus
// standard deviation (metric.ScaledNumericSimilarity), so that e.g. years
// discriminate even though their relative differences are tiny.
type Featurizer struct {
	schema dataset.Schema
	corpus *textutil.Corpus
	scales []float64
}

// NewFeaturizer builds a featurizer whose tf-idf corpus is fit on the long-
// text fields of all provided record sets.
func NewFeaturizer(schema dataset.Schema, recordSets ...[]dataset.Record) *Featurizer {
	corpus := textutil.NewCorpus(nil)
	numStats := make([]stats.Online, len(schema))
	for _, recs := range recordSets {
		for _, rec := range recs {
			for fi, spec := range schema {
				if rec.Values[fi].Missing {
					continue
				}
				switch spec.Kind {
				case dataset.LongText:
					corpus.AddDoc(textutil.Normalize(rec.Values[fi].Text))
				case dataset.Numeric:
					numStats[fi].Add(rec.Values[fi].Num)
				}
			}
		}
	}
	scales := make([]float64, len(schema))
	for fi := range schema {
		if numStats[fi].N() > 1 {
			scales[fi] = numStats[fi].StdDev()
		}
	}
	return &Featurizer{schema: schema, corpus: corpus, scales: scales}
}

// NumFeatures returns the pair feature dimension (one per schema field).
func (f *Featurizer) NumFeatures() int { return len(f.schema) }

// Rep pre-processes one record.
func (f *Featurizer) Rep(rec dataset.Record) Rep {
	n := len(f.schema)
	rep := Rep{
		tri:  make([][]string, n),
		vec:  make([]map[string]float64, n),
		num:  make([]float64, n),
		miss: make([]bool, n),
	}
	for fi, spec := range f.schema {
		v := rec.Values[fi]
		if v.Missing {
			rep.miss[fi] = true
			continue
		}
		switch spec.Kind {
		case dataset.ShortText:
			rep.tri[fi] = textutil.Trigrams(textutil.Normalize(v.Text))
		case dataset.LongText:
			rep.vec[fi] = f.corpus.Vector(textutil.Normalize(v.Text))
		case dataset.Numeric:
			rep.num[fi] = v.Num
		}
	}
	return rep
}

// Reps pre-processes a record slice.
func (f *Featurizer) Reps(recs []dataset.Record) []Rep {
	out := make([]Rep, len(recs))
	for i, rec := range recs {
		out[i] = f.Rep(rec)
	}
	return out
}

// PairFeatures computes the similarity feature vector of a record pair. A
// missing value on either side yields feature 0 for that field (imputation
// to "no evidence of similarity").
func (f *Featurizer) PairFeatures(a, b *Rep, dst []float64) []float64 {
	if dst == nil {
		dst = make([]float64, len(f.schema))
	}
	for fi, spec := range f.schema {
		if a.miss[fi] || b.miss[fi] {
			dst[fi] = 0
			continue
		}
		switch spec.Kind {
		case dataset.ShortText:
			dst[fi] = metric.Jaccard(a.tri[fi], b.tri[fi])
		case dataset.LongText:
			dst[fi] = metric.CosineSparse(a.vec[fi], b.vec[fi])
		case dataset.Numeric:
			dst[fi] = metric.ScaledNumericSimilarity(a.num[fi], b.num[fi], f.scales[fi])
		}
	}
	return dst
}

// ModelKind selects the record-pair classifier family (§6.3.4).
type ModelKind int

const (
	// LinearSVM is the default pipeline classifier (L-SVM).
	LinearSVM ModelKind = iota
	// LogReg is logistic regression (LR).
	LogReg
	// NeuralNet is the one-hidden-layer MLP (NN).
	NeuralNet
	// Boosted is AdaBoost over stumps (AB).
	Boosted
	// KernelSVM is the RBF-kernel SVM via random Fourier features (R-SVM).
	KernelSVM
)

// String returns the paper's abbreviation for the model kind.
func (k ModelKind) String() string {
	switch k {
	case LinearSVM:
		return "L-SVM"
	case LogReg:
		return "LR"
	case NeuralNet:
		return "NN"
	case Boosted:
		return "AB"
	case KernelSVM:
		return "R-SVM"
	default:
		return "unknown"
	}
}

// Config controls pool construction.
type Config struct {
	// Seed drives pair sampling and classifier training.
	Seed uint64
	// PoolSize is the number of record pairs in the evaluation pool.
	PoolSize int
	// PoolMatches is the exact number of ground-truth matching pairs to
	// include (Table 2 column "No. matches").
	PoolMatches int
	// TrainPairs is the number of labelled pairs used to train the
	// classifier (a heuristically balanced set, as §2.1.1 allows:
	// "data used for training need not be representative"). Default 2000.
	TrainPairs int
	// TrainMatchFrac is the fraction of matches in the training set
	// (default 0.35).
	TrainMatchFrac float64
	// Model selects the classifier family. Default LinearSVM.
	Model ModelKind
	// Calibrate fits Platt scaling on a held-out third of the training
	// pairs, producing probabilistic scores (§6.3.2's "calibrated" mode).
	Calibrate bool
}

func (c *Config) defaults() {
	if c.TrainPairs <= 0 {
		c.TrainPairs = 2000
	}
	if c.TrainMatchFrac <= 0 || c.TrainMatchFrac >= 1 {
		c.TrainMatchFrac = 0.35
	}
}

// Result couples the constructed evaluation pool with the trained model and
// the featurizer (retained for scoring further pairs).
type Result struct {
	Pool       *pool.Pool
	Model      classifier.Model
	Featurizer *Featurizer
}

// pairRef identifies a candidate pair in either dataset shape.
type pairRef struct{ i, j int }

// trainModel fits the configured classifier on standardised features.
func trainModel(X [][]float64, y []bool, cfg Config, r *rng.RNG) (classifier.Model, error) {
	std, err := classifier.FitStandardizer(X)
	if err != nil {
		return nil, err
	}
	Z := std.ApplyAll(X)
	var base classifier.Model
	switch cfg.Model {
	case LogReg:
		base, err = classifier.TrainLogisticRegression(Z, y, classifier.LogisticRegressionConfig{}, r)
	case NeuralNet:
		base, err = classifier.TrainMLP(Z, y, classifier.MLPConfig{Hidden: 12, Epochs: 40}, r)
	case Boosted:
		base, err = classifier.TrainAdaBoost(Z, y, classifier.AdaBoostConfig{Rounds: 60}, r)
	case KernelSVM:
		base, err = classifier.TrainRBFSVM(Z, y, classifier.RBFSVMConfig{Gamma: 0.5, Features: 128}, r)
	default:
		base, err = classifier.TrainLinearSVM(Z, y, classifier.LinearSVMConfig{}, r)
	}
	if err != nil {
		return nil, err
	}
	return &standardizedModel{std: std, base: base}, nil
}

// standardizedModel composes a standardizer with a trained model.
type standardizedModel struct {
	std  *classifier.Standardizer
	base classifier.Model
}

func (m *standardizedModel) Score(x []float64) float64 { return m.base.Score(m.std.Apply(x)) }
func (m *standardizedModel) Predict(x []float64) bool  { return m.base.Predict(m.std.Apply(x)) }
func (m *standardizedModel) Probabilistic() bool       { return m.base.Probabilistic() }

// thresholdedModel overrides a model's decision rule with a tuned score
// threshold. Classifiers here are trained on *balanced* pair samples
// (§2.1.1: training data need not be representative), so their native
// decision boundary predicts far too many positives under the pool's
// extreme imbalance; like any production matcher, the pipeline picks the
// match threshold for the deployment regime (the paper's "matching" stage:
// sufficiently high-scoring pairs form R̂).
type thresholdedModel struct {
	base      classifier.Model
	threshold float64
}

func (m *thresholdedModel) Score(x []float64) float64 { return m.base.Score(x) }
func (m *thresholdedModel) Predict(x []float64) bool  { return m.base.Score(x) > m.threshold }
func (m *thresholdedModel) Probabilistic() bool       { return m.base.Probabilistic() }

// tuneThreshold picks the score threshold maximising the imbalance-weighted
// F_1/2: matchScores and nonScores are scores of sampled matching and
// non-matching pairs, reweighted to the population totals totalMatch and
// totalNon. Candidate thresholds are midpoints between adjacent distinct
// scores (plus the extremes).
func tuneThreshold(matchScores, nonScores []float64, totalMatch, totalNon float64) float64 {
	if len(matchScores) == 0 || len(nonScores) == 0 {
		return 0
	}
	wM := totalMatch / float64(len(matchScores))
	wN := totalNon / float64(len(nonScores))
	type scored struct {
		s     float64
		match bool
	}
	all := make([]scored, 0, len(matchScores)+len(nonScores))
	for _, s := range matchScores {
		all = append(all, scored{s, true})
	}
	for _, s := range nonScores {
		all = append(all, scored{s, false})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].s < all[j].s })
	// Sweep thresholds from below the minimum upward. Start with everything
	// predicted positive.
	tp := totalMatch
	fp := totalNon
	fn := 0.0
	bestF := fMeasureSafe(tp, fp, fn)
	bestT := all[0].s - 1
	for i := 0; i < len(all); i++ {
		// Raise the threshold just above all[i].s: items at this score (and
		// any ties) flip to predicted-negative.
		j := i
		for j < len(all) && all[j].s == all[i].s {
			if all[j].match {
				tp -= wM
				fn += wM
			} else {
				fp -= wN
			}
			j++
		}
		i = j - 1
		f := fMeasureSafe(tp, fp, fn)
		if f > bestF {
			bestF = f
			if j < len(all) {
				bestT = (all[i].s + all[j].s) / 2
			} else {
				bestT = all[i].s + 1
			}
		}
	}
	return bestT
}

func fMeasureSafe(tp, fp, fn float64) float64 {
	den := 0.5*(tp+fp) + 0.5*(tp+fn)
	if den <= 0 {
		return 0
	}
	return tp / den
}

// calibrated wraps Platt calibration around a standardizedModel using
// held-out features.
func calibrate(m classifier.Model, X [][]float64, y []bool) (classifier.Model, error) {
	cal, err := classifier.Calibrate(m, X, y)
	if err != nil {
		return nil, err
	}
	return cal, nil
}

// buildPool scores the chosen pairs and assembles the pool. threshold is
// the tuned decision threshold in raw-score space, recorded for the
// logistic probability mapping of uncalibrated pools.
func buildPool(name string, model classifier.Model, feats [][]float64, truth []float64, threshold float64) *pool.Pool {
	n := len(feats)
	p := &pool.Pool{
		Name:          name,
		Scores:        make([]float64, n),
		Preds:         make([]bool, n),
		TruthProb:     truth,
		Probabilistic: model.Probabilistic(),
		Threshold:     threshold,
	}
	for i, x := range feats {
		p.Scores[i] = model.Score(x)
		p.Preds[i] = model.Predict(x)
	}
	return p
}

// splitTrainCal splits training data for optional calibration.
func splitTrainCal(X [][]float64, y []bool, calibrateModel bool, r *rng.RNG) (tx [][]float64, ty []bool, cx [][]float64, cy []bool) {
	if !calibrateModel {
		return X, y, nil, nil
	}
	train, cal := classifier.TrainTestSplit(len(X), 0.7, r)
	for _, i := range train {
		tx = append(tx, X[i])
		ty = append(ty, y[i])
	}
	for _, i := range cal {
		cx = append(cx, X[i])
		cy = append(cy, y[i])
	}
	return tx, ty, cx, cy
}

var errTooFewMatches = errors.New("pipeline: dataset has fewer matches than requested for the pool")

// samplePairs draws exactly nMatch matched pairs and nPool−nMatch distinct
// non-matching pairs. allMatches enumerates every matching pair; isMatch
// tests a candidate; draw generates a uniform random candidate pair.
func samplePairs(nPool, nMatch int, allMatches []pairRef,
	isMatch func(pairRef) bool, draw func() pairRef, r *rng.RNG) ([]pairRef, error) {
	if nMatch > len(allMatches) {
		return nil, fmt.Errorf("%w: want %d, have %d", errTooFewMatches, nMatch, len(allMatches))
	}
	if nMatch > nPool {
		return nil, fmt.Errorf("pipeline: pool matches %d exceed pool size %d", nMatch, nPool)
	}
	pairs := make([]pairRef, 0, nPool)
	perm := r.SampleWithoutReplacement(len(allMatches), nMatch)
	for _, idx := range perm {
		pairs = append(pairs, allMatches[idx])
	}
	seen := make(map[pairRef]struct{}, nPool)
	for _, pr := range pairs {
		seen[pr] = struct{}{}
	}
	for len(pairs) < nPool {
		cand := draw()
		if _, dup := seen[cand]; dup {
			continue
		}
		if isMatch(cand) {
			continue
		}
		seen[cand] = struct{}{}
		pairs = append(pairs, cand)
	}
	r.Shuffle(len(pairs), func(i, j int) { pairs[i], pairs[j] = pairs[j], pairs[i] })
	return pairs, nil
}
