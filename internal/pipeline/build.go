package pipeline

import (
	"fmt"

	"oasis/internal/classifier"
	"oasis/internal/dataset"
	"oasis/internal/pool"
	"oasis/internal/rng"
)

// BuildTwoSourcePool constructs an evaluation pool from a two-source dataset:
// it trains the configured classifier on a balanced labelled pair sample,
// then scores a random pair pool containing exactly cfg.PoolMatches matching
// pairs (the Table 2 pooling procedure).
func BuildTwoSourcePool(ds *dataset.TwoSourceDataset, cfg Config) (*Result, error) {
	cfg.defaults()
	if cfg.PoolSize <= 0 {
		return nil, fmt.Errorf("pipeline: pool size %d", cfg.PoolSize)
	}
	r := rng.New(cfg.Seed)
	feat := NewFeaturizer(ds.Schema, ds.D1, ds.D2)
	reps1 := feat.Reps(ds.D1)
	reps2 := feat.Reps(ds.D2)

	// Enumerate matching pairs via EntityID join.
	byEntity := make(map[int][]int)
	for i, rec := range ds.D1 {
		byEntity[rec.EntityID] = append(byEntity[rec.EntityID], i)
	}
	var allMatches []pairRef
	for j, rec := range ds.D2 {
		for _, i := range byEntity[rec.EntityID] {
			allMatches = append(allMatches, pairRef{i, j})
		}
	}
	isMatch := func(pr pairRef) bool {
		return ds.D1[pr.i].EntityID == ds.D2[pr.j].EntityID
	}
	drawPair := func() pairRef {
		return pairRef{r.Intn(len(ds.D1)), r.Intn(len(ds.D2))}
	}
	features := func(pr pairRef, dst []float64) []float64 {
		return feat.PairFeatures(&reps1[pr.i], &reps2[pr.j], dst)
	}
	return assemble(ds.Name, feat, cfg, r, ds.NumPairs(), allMatches, isMatch, drawPair, features)
}

// BuildDedupPool constructs an evaluation pool from a dedup dataset over
// unordered record pairs {i, j}, i < j.
func BuildDedupPool(ds *dataset.DedupDataset, cfg Config) (*Result, error) {
	cfg.defaults()
	if cfg.PoolSize <= 0 {
		return nil, fmt.Errorf("pipeline: pool size %d", cfg.PoolSize)
	}
	n := len(ds.Records)
	if maxPairs := n * (n - 1) / 2; cfg.PoolSize > maxPairs {
		return nil, fmt.Errorf("pipeline: pool size %d exceeds %d candidate pairs", cfg.PoolSize, maxPairs)
	}
	r := rng.New(cfg.Seed)
	feat := NewFeaturizer(ds.Schema, ds.Records)
	reps := feat.Reps(ds.Records)

	byEntity := make(map[int][]int)
	for i, rec := range ds.Records {
		byEntity[rec.EntityID] = append(byEntity[rec.EntityID], i)
	}
	var allMatches []pairRef
	for _, members := range byEntity {
		for a := 0; a < len(members); a++ {
			for b := a + 1; b < len(members); b++ {
				i, j := members[a], members[b]
				if i > j {
					i, j = j, i
				}
				allMatches = append(allMatches, pairRef{i, j})
			}
		}
	}
	isMatch := func(pr pairRef) bool {
		return ds.Records[pr.i].EntityID == ds.Records[pr.j].EntityID
	}
	drawPair := func() pairRef {
		i := r.Intn(n)
		j := r.Intn(n - 1)
		if j >= i {
			j++
		}
		if i > j {
			i, j = j, i
		}
		return pairRef{i, j}
	}
	features := func(pr pairRef, dst []float64) []float64 {
		return feat.PairFeatures(&reps[pr.i], &reps[pr.j], dst)
	}
	return assemble(ds.Name, feat, cfg, r, ds.NumPairs(), allMatches, isMatch, drawPair, features)
}

// assemble runs the shared tail of pool construction: sample training pairs,
// train the model, tune its decision threshold for the population imbalance,
// optionally calibrate, then sample and score the pool.
func assemble(name string, feat *Featurizer, cfg Config, r *rng.RNG, totalPairs int,
	allMatches []pairRef, isMatch func(pairRef) bool, drawPair func() pairRef,
	features func(pairRef, []float64) []float64) (*Result, error) {

	// ---- Training set: balanced matches vs random non-matches ----
	nTrainMatch := int(float64(cfg.TrainPairs) * cfg.TrainMatchFrac)
	if nTrainMatch > len(allMatches) {
		nTrainMatch = len(allMatches)
	}
	if nTrainMatch < 1 {
		return nil, fmt.Errorf("pipeline: dataset %s has no matches to train on", name)
	}
	var trainX [][]float64
	var trainY []bool
	for _, idx := range r.SampleWithoutReplacement(len(allMatches), nTrainMatch) {
		trainX = append(trainX, features(allMatches[idx], nil))
		trainY = append(trainY, true)
	}
	for len(trainX) < cfg.TrainPairs {
		cand := drawPair()
		if isMatch(cand) {
			continue
		}
		trainX = append(trainX, features(cand, nil))
		trainY = append(trainY, false)
	}

	tx, ty, cx, cy := splitTrainCal(trainX, trainY, cfg.Calibrate, r)
	base, err := trainModel(tx, ty, cfg, r)
	if err != nil {
		return nil, err
	}

	// ---- Decision threshold tuned for the population imbalance ----
	// The classifier trains on a balanced sample; its native boundary would
	// flood the imbalanced pool with false positives. Tune the matching
	// threshold on a fresh imbalance-weighted validation sample (the
	// pipeline's "matching" stage).
	nValMatch := 500
	if nValMatch > len(allMatches) {
		nValMatch = len(allMatches)
	}
	var matchScores []float64
	for _, idx := range r.SampleWithoutReplacement(len(allMatches), nValMatch) {
		matchScores = append(matchScores, base.Score(features(allMatches[idx], nil)))
	}
	// The interesting non-match tail is rare (FP rates ~1e-4), so the
	// validation sample must be large enough to resolve it.
	nValNon := 20000
	var nonScores []float64
	buf := make([]float64, feat.NumFeatures())
	for len(nonScores) < nValNon {
		cand := drawPair()
		if isMatch(cand) {
			continue
		}
		nonScores = append(nonScores, base.Score(features(cand, buf)))
	}
	threshold := tuneThreshold(matchScores, nonScores,
		float64(len(allMatches)), float64(totalPairs-len(allMatches)))
	var model classifier.Model = &thresholdedModel{base: base, threshold: threshold}
	if cfg.Calibrate {
		model, err = calibrate(model, cx, cy)
		if err != nil {
			return nil, err
		}
	}

	// ---- Evaluation pool ----
	pairs, err := samplePairs(cfg.PoolSize, cfg.PoolMatches, allMatches, isMatch, drawPair, r)
	if err != nil {
		return nil, err
	}
	feats := make([][]float64, len(pairs))
	truth := make([]float64, len(pairs))
	for i, pr := range pairs {
		feats[i] = features(pr, nil)
		if isMatch(pr) {
			truth[i] = 1
		}
	}
	p := buildPool(name, model, feats, truth, threshold)
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Result{Pool: p, Model: model, Featurizer: feat}, nil
}

// BuildPointsPool constructs an evaluation pool from a plain classification
// dataset (tweets100k): the classifier is trained on points outside the pool
// and the pool holds scored held-out points. PoolMatches is ignored — class
// balance follows the data, as in the paper.
func BuildPointsPool(ds *dataset.PointsDataset, cfg Config) (*Result, error) {
	cfg.defaults()
	if cfg.PoolSize <= 0 || cfg.PoolSize >= len(ds.X) {
		return nil, fmt.Errorf("pipeline: points pool size %d of %d items", cfg.PoolSize, len(ds.X))
	}
	r := rng.New(cfg.Seed)
	perm := r.Perm(len(ds.X))
	poolIdx := perm[:cfg.PoolSize]
	rest := perm[cfg.PoolSize:]
	nTrain := cfg.TrainPairs
	if nTrain > len(rest) {
		nTrain = len(rest)
	}
	var trainX [][]float64
	var trainY []bool
	for _, i := range rest[:nTrain] {
		trainX = append(trainX, ds.X[i])
		trainY = append(trainY, ds.Labels[i])
	}
	tx, ty, cx, cy := splitTrainCal(trainX, trainY, cfg.Calibrate, r)
	model, err := trainModel(tx, ty, cfg, r)
	if err != nil {
		return nil, err
	}
	if cfg.Calibrate {
		model, err = calibrate(model, cx, cy)
		if err != nil {
			return nil, err
		}
	}
	feats := make([][]float64, len(poolIdx))
	truth := make([]float64, len(poolIdx))
	for i, idx := range poolIdx {
		feats[i] = ds.X[idx]
		if ds.Labels[idx] {
			truth[i] = 1
		}
	}
	p := buildPool(ds.Name, model, feats, truth, 0)
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Result{Pool: p, Model: model, Featurizer: nil}, nil
}

// BuildProfilePool materialises a dataset profile and builds its Table 2
// pool at the given scale (pool size and match count multiplied by scale,
// minimum 1 match). Scale 1.0 reproduces the paper's pool shapes.
func BuildProfilePool(prof dataset.Profile, scale float64, cfg Config) (*Result, error) {
	if scale <= 0 {
		scale = 1
	}
	cfg.defaults()
	if cfg.PoolSize == 0 {
		cfg.PoolSize = int(float64(prof.Paper.PoolSize) * scale)
	}
	if cfg.PoolMatches == 0 {
		cfg.PoolMatches = int(float64(prof.Paper.PoolMatches) * scale)
		if cfg.PoolMatches < 1 {
			cfg.PoolMatches = 1
		}
	}
	if cfg.Seed == 0 {
		cfg.Seed = prof.Config.Seed + 977
	}
	generated, err := prof.Generate()
	if err != nil {
		return nil, err
	}
	switch ds := generated.(type) {
	case *dataset.TwoSourceDataset:
		return BuildTwoSourcePool(ds, cfg)
	case *dataset.DedupDataset:
		return BuildDedupPool(ds, cfg)
	case *dataset.PointsDataset:
		return BuildPointsPool(ds, cfg)
	default:
		return nil, fmt.Errorf("pipeline: unsupported dataset type %T", generated)
	}
}

// OperatingPoint reports the true precision, recall and F_1/2 of the pool —
// the Table 2 columns — computed from ground truth.
func OperatingPoint(p *pool.Pool) (precision, recall, f50 float64) {
	return p.TruePrecision(), p.TrueRecall(), p.TrueFMeasure(0.5)
}

// ensure interface satisfaction is visible to callers of Result.Model.
var _ classifier.Model = (*standardizedModel)(nil)
