package pipeline

import (
	"math"
	"testing"

	"oasis/internal/dataset"
	"oasis/internal/rng"
)

func smallProductDataset(t *testing.T) *dataset.TwoSourceDataset {
	t.Helper()
	ds, err := dataset.GenerateTwoSource(dataset.GeneratorConfig{
		Name:      "small",
		Domain:    dataset.DomainProduct,
		Seed:      1,
		BaseNoise: dataset.Corruption{Typo: 0.004},
		Corruption: dataset.Corruption{
			Typo: 0.02, TokenDrop: 0.12, TokenSwap: 0.15,
			Abbreviate: 0.05, NumericJitter: 0.1, MissingField: 0.05,
		},
		FamilySize: 3,
		Vocabulary: 400,
	}, 300, 320, 150)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestFeaturizer(t *testing.T) {
	ds := smallProductDataset(t)
	f := NewFeaturizer(ds.Schema, ds.D1, ds.D2)
	if f.NumFeatures() != len(ds.Schema) {
		t.Fatalf("features %d", f.NumFeatures())
	}
	reps1 := f.Reps(ds.D1)
	reps2 := f.Reps(ds.D2)
	x := f.PairFeatures(&reps1[0], &reps2[0], nil)
	if len(x) != f.NumFeatures() {
		t.Fatalf("feature vector length %d", len(x))
	}
	for i, v := range x {
		if v < 0 || v > 1 || math.IsNaN(v) {
			t.Errorf("feature %d = %v out of [0,1]", i, v)
		}
	}
	// Self-similarity must be maximal for non-missing fields.
	self := f.PairFeatures(&reps1[0], &reps1[0], nil)
	for i, v := range self {
		if !reps1[0].miss[i] && math.Abs(v-1) > 1e-9 {
			t.Errorf("self feature %d = %v", i, v)
		}
	}
}

func TestFeaturizerMatchedPairsScoreHigher(t *testing.T) {
	ds := smallProductDataset(t)
	f := NewFeaturizer(ds.Schema, ds.D1, ds.D2)
	reps1 := f.Reps(ds.D1)
	reps2 := f.Reps(ds.D2)
	byEntity := make(map[int]int)
	for i, rec := range ds.D1 {
		byEntity[rec.EntityID] = i
	}
	var matchSum, randSum float64
	var nMatch, nRand int
	buf := make([]float64, f.NumFeatures())
	for j, rec := range ds.D2 {
		if i, ok := byEntity[rec.EntityID]; ok {
			x := f.PairFeatures(&reps1[i], &reps2[j], buf)
			matchSum += x[0] // name trigram Jaccard
			nMatch++
		}
		ri := (j * 31) % len(ds.D1)
		if ds.D1[ri].EntityID != rec.EntityID {
			x := f.PairFeatures(&reps1[ri], &reps2[j], buf)
			randSum += x[0]
			nRand++
		}
	}
	if matchSum/float64(nMatch) < randSum/float64(nRand)+0.2 {
		t.Errorf("matched name similarity %.3f vs random %.3f",
			matchSum/float64(nMatch), randSum/float64(nRand))
	}
}

func TestBuildTwoSourcePool(t *testing.T) {
	ds := smallProductDataset(t)
	res, err := BuildTwoSourcePool(ds, Config{
		Seed: 2, PoolSize: 5000, PoolMatches: 60, TrainPairs: 800,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := res.Pool
	if p.N() != 5000 {
		t.Fatalf("pool size %d", p.N())
	}
	if got := p.ExpectedMatches(); got != 60 {
		t.Fatalf("pool matches %v, want 60", got)
	}
	if p.Probabilistic {
		t.Error("L-SVM pool should be uncalibrated")
	}
	// The trained classifier must be far better than chance on the pool.
	f := p.TrueFMeasure(0.5)
	if math.IsNaN(f) || f < 0.2 {
		t.Errorf("pool F = %v; classifier failed to learn", f)
	}
}

func TestBuildTwoSourcePoolCalibrated(t *testing.T) {
	ds := smallProductDataset(t)
	res, err := BuildTwoSourcePool(ds, Config{
		Seed: 3, PoolSize: 3000, PoolMatches: 40, TrainPairs: 900, Calibrate: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Pool.Probabilistic {
		t.Error("calibrated pool should be probabilistic")
	}
	for i := 0; i < res.Pool.N(); i++ {
		s := res.Pool.Scores[i]
		if s < 0 || s > 1 {
			t.Fatalf("calibrated score out of range: %v", s)
		}
	}
}

func TestBuildDedupPool(t *testing.T) {
	ds, err := dataset.GenerateDedup(dataset.GeneratorConfig{
		Name: "dd", Domain: dataset.DomainCitation, Seed: 4,
		Corruption: dataset.Corruption{Typo: 0.02, TokenDrop: 0.08},
	}, 40, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := BuildDedupPool(ds, Config{
		Seed: 5, PoolSize: 4000, PoolMatches: 300, TrainPairs: 700,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := res.Pool
	if p.N() != 4000 || p.ExpectedMatches() != 300 {
		t.Fatalf("pool %d/%v", p.N(), p.ExpectedMatches())
	}
	if f := p.TrueFMeasure(0.5); math.IsNaN(f) || f < 0.3 {
		t.Errorf("dedup pool F = %v", f)
	}
}

func TestBuildDedupPoolNoSelfPairs(t *testing.T) {
	// The unordered-pair draw must never produce i == j; exhaust a small
	// space to check.
	ds, err := dataset.GenerateDedup(dataset.GeneratorConfig{
		Name: "tiny", Domain: dataset.DomainVenue, Seed: 6,
		Corruption: dataset.Corruption{Typo: 0.01},
	}, 5, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	n := len(ds.Records)
	maxPairs := n * (n - 1) / 2
	res, err := BuildDedupPool(ds, Config{
		Seed: 7, PoolSize: maxPairs, PoolMatches: ds.NumMatches(), TrainPairs: 60,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Pool.N() != maxPairs {
		t.Fatalf("exhaustive pool %d of %d", res.Pool.N(), maxPairs)
	}
	if got := int(res.Pool.ExpectedMatches()); got != ds.NumMatches() {
		t.Errorf("matches %d, want %d", got, ds.NumMatches())
	}
}

func TestBuildPointsPool(t *testing.T) {
	ds := dataset.GeneratePoints("pts", 8, 5000, 0.5, 1.0)
	res, err := BuildPointsPool(ds, Config{Seed: 9, PoolSize: 1000, TrainPairs: 2000})
	if err != nil {
		t.Fatal(err)
	}
	p := res.Pool
	if p.N() != 1000 {
		t.Fatalf("pool %d", p.N())
	}
	// Balanced data: match fraction near 1/2, F well above chance.
	frac := p.ExpectedMatches() / float64(p.N())
	if frac < 0.4 || frac > 0.6 {
		t.Errorf("positive fraction %v", frac)
	}
	if f := p.TrueFMeasure(0.5); math.IsNaN(f) || f < 0.6 {
		t.Errorf("points pool F = %v", f)
	}
}

func TestBuildPoolErrors(t *testing.T) {
	ds := smallProductDataset(t)
	if _, err := BuildTwoSourcePool(ds, Config{Seed: 10, PoolSize: 0}); err == nil {
		t.Error("expected error on zero pool size")
	}
	if _, err := BuildTwoSourcePool(ds, Config{Seed: 11, PoolSize: 100, PoolMatches: 10000}); err == nil {
		t.Error("expected error when matches exceed dataset's")
	}
	if _, err := BuildTwoSourcePool(ds, Config{Seed: 12, PoolSize: 10, PoolMatches: 50}); err == nil {
		t.Error("expected error when matches exceed pool size")
	}
}

func TestModelKinds(t *testing.T) {
	ds := smallProductDataset(t)
	for _, kind := range []ModelKind{LinearSVM, LogReg, NeuralNet, Boosted, KernelSVM} {
		res, err := BuildTwoSourcePool(ds, Config{
			Seed: 13, PoolSize: 1500, PoolMatches: 30, TrainPairs: 600, Model: kind,
		})
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if f := res.Pool.TrueFMeasure(0.5); math.IsNaN(f) || f < 0.15 {
			t.Errorf("%v: pool F = %v", kind, f)
		}
		if kind.String() == "unknown" {
			t.Errorf("kind %d has no name", kind)
		}
	}
}

func TestBuildProfilePoolScaled(t *testing.T) {
	prof, err := dataset.ProfileByName("Abt-Buy", 77)
	if err != nil {
		t.Fatal(err)
	}
	res, err := BuildProfilePool(prof, 0.05, Config{TrainPairs: 800})
	if err != nil {
		t.Fatal(err)
	}
	wantSize := int(float64(prof.Paper.PoolSize) * 0.05)
	if res.Pool.N() != wantSize {
		t.Errorf("scaled pool %d, want %d", res.Pool.N(), wantSize)
	}
	wantMatches := int(float64(prof.Paper.PoolMatches) * 0.05)
	if int(res.Pool.ExpectedMatches()) != wantMatches {
		t.Errorf("scaled matches %v, want %d", res.Pool.ExpectedMatches(), wantMatches)
	}
}

func TestOperatingPoint(t *testing.T) {
	ds := smallProductDataset(t)
	res, err := BuildTwoSourcePool(ds, Config{Seed: 14, PoolSize: 2000, PoolMatches: 40, TrainPairs: 700})
	if err != nil {
		t.Fatal(err)
	}
	prec, rec, f := OperatingPoint(res.Pool)
	if prec < 0 || prec > 1 || rec < 0 || rec > 1 {
		t.Errorf("operating point out of range: %v %v", prec, rec)
	}
	if !math.IsNaN(f) {
		hm := 2 * prec * rec / (prec + rec)
		if math.Abs(f-hm) > 1e-9 {
			t.Errorf("F %v vs harmonic mean %v", f, hm)
		}
	}
}

func TestSamplePairsExactCounts(t *testing.T) {
	r := rng.New(15)
	all := []pairRef{{0, 1}, {2, 3}, {4, 5}}
	matchSet := map[pairRef]bool{{0, 1}: true, {2, 3}: true, {4, 5}: true}
	pairs, err := samplePairs(20, 2, all,
		func(p pairRef) bool { return matchSet[p] },
		func() pairRef { return pairRef{r.Intn(50), r.Intn(50)} }, r)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 20 {
		t.Fatalf("pairs %d", len(pairs))
	}
	seen := make(map[pairRef]bool)
	matches := 0
	for _, p := range pairs {
		if seen[p] {
			t.Fatalf("duplicate pair %v", p)
		}
		seen[p] = true
		if matchSet[p] {
			matches++
		}
	}
	if matches != 2 {
		t.Errorf("matches in pool %d, want 2", matches)
	}
}
