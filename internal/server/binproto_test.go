package server

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"oasis"
	"oasis/internal/session"
)

func f64ptr(f float64) *float64 { return &f }

// TestBinProtoRoundTrip pins every message type through encode → decode.
func TestBinProtoRoundTrip(t *testing.T) {
	exp := time.Unix(0, 1722000000123456789)
	prs := []ProposeResponse{
		{Proposals: []session.Proposal{}},
		{Proposals: []session.Proposal{{Pair: 0, Expires: exp}}, Exhausted: false},
		{Proposals: []session.Proposal{{Pair: 7, Expires: exp}, {Pair: math.MaxUint32, Expires: exp.Add(time.Hour)}}},
		{Proposals: []session.Proposal{}, Exhausted: true},
	}
	for i, pr := range prs {
		frame := AppendProposeResponse(nil, &pr)
		var got ProposeResponse
		if err := DecodeProposeResponse(frame, &got); err != nil {
			t.Fatalf("propose %d: %v", i, err)
		}
		if got.Exhausted != pr.Exhausted || len(got.Proposals) != len(pr.Proposals) {
			t.Fatalf("propose %d: got %+v, want %+v", i, got, pr)
		}
		for j := range pr.Proposals {
			if got.Proposals[j].Pair != pr.Proposals[j].Pair || !got.Proposals[j].Expires.Equal(pr.Proposals[j].Expires) {
				t.Fatalf("propose %d[%d]: got %+v, want %+v", i, j, got.Proposals[j], pr.Proposals[j])
			}
		}
	}

	lreq := LabelsRequest{Labels: []Label{{Pair: 3, Label: true}, {Pair: 0, Label: false}, {Pair: 9999999, Label: true}}}
	frame := AppendLabelsRequest(nil, &lreq)
	var gotReq LabelsRequest
	if err := DecodeLabelsRequest(frame, &gotReq); err != nil {
		t.Fatal(err)
	}
	if len(gotReq.Labels) != 3 || gotReq.Labels[0] != lreq.Labels[0] || gotReq.Labels[2] != lreq.Labels[2] {
		t.Fatalf("labels request: got %+v, want %+v", gotReq, lreq)
	}

	lresp := LabelsResponse{Committed: 1, Results: []LabelResult{
		{Pair: 3, Status: "ok"}, {Pair: 4, Status: "duplicate"}, {Pair: 5, Status: "expired"},
	}}
	frame = AppendLabelsResponse(nil, &lresp)
	var gotResp LabelsResponse
	if err := DecodeLabelsResponse(frame, &gotResp); err != nil {
		t.Fatal(err)
	}
	if gotResp.Committed != 1 || len(gotResp.Results) != 3 {
		t.Fatalf("labels response: got %+v", gotResp)
	}
	for i := range lresp.Results {
		if gotResp.Results[i] != lresp.Results[i] {
			t.Fatalf("result %d: got %+v, want %+v", i, gotResp.Results[i], lresp.Results[i])
		}
	}

	// appendLabelsResults (the server's direct form) must agree with the
	// struct-based encoder bit for bit.
	pairs := []int{3, 4, 5}
	results := []session.CommitResult{session.Committed, session.Duplicate, session.Expired}
	if direct := appendLabelsResults(nil, pairs, results); !bytes.Equal(direct, frame) {
		t.Fatalf("appendLabelsResults disagrees with AppendLabelsResponse:\n%x\n%x", direct, frame)
	}

	for i, st := range []session.Status{
		{PoolSize: 100, LabelsCommitted: 5, PendingProposals: 2, Budget: 50, Remaining: 43},
		{Estimate: f64ptr(0.75), InitialEstimate: f64ptr(0.6), PoolSize: 1, Remaining: -1},
		{Estimate: f64ptr(math.Inf(1))},
	} {
		frame := AppendEstimateResponse(nil, &st)
		var got session.Status
		if err := DecodeEstimateResponse(frame, &got); err != nil {
			t.Fatalf("estimate %d: %v", i, err)
		}
		if (got.Estimate == nil) != (st.Estimate == nil) || (got.InitialEstimate == nil) != (st.InitialEstimate == nil) {
			t.Fatalf("estimate %d: presence flags wrong: %+v vs %+v", i, got, st)
		}
		if st.Estimate != nil && *got.Estimate != *st.Estimate {
			t.Fatalf("estimate %d: %v != %v", i, *got.Estimate, *st.Estimate)
		}
		if got.PoolSize != st.PoolSize || got.LabelsCommitted != st.LabelsCommitted ||
			got.PendingProposals != st.PendingProposals || got.Budget != st.Budget || got.Remaining != st.Remaining {
			t.Fatalf("estimate %d: got %+v, want %+v", i, got, st)
		}
	}
}

// TestBinProtoRejectsCorruptFrames drives the decoders through the ways a
// frame can be malformed; every case must error, never panic, and never
// size an allocation from an unvalidated count.
func TestBinProtoRejectsCorruptFrames(t *testing.T) {
	valid := AppendProposeResponse(nil, &ProposeResponse{Proposals: []session.Proposal{{Pair: 1, Expires: time.Unix(3, 0)}}})
	var pr ProposeResponse
	cases := map[string][]byte{
		"empty":     {},
		"short":     valid[:binFrameOverhead-1],
		"bad magic": append([]byte("XXXX"), valid[4:]...),
		"truncated": valid[:len(valid)-5],
		"trailing":  append(append([]byte{}, valid...), 0xde, 0xad),
	}
	// Flip one byte of the payload: CRC must catch it.
	flipped := append([]byte{}, valid...)
	flipped[binHeaderSize] ^= 0xff
	cases["payload flip"] = flipped
	// Non-zero padding.
	padded := append([]byte{}, valid...)
	padded[6] = 1
	cases["padding"] = padded
	// Wrong message type (a labels frame fed to the propose decoder).
	cases["wrong type"] = AppendLabelsRequest(nil, &LabelsRequest{})
	// Declared count beyond the payload, CRC fixed up to match.
	lying := append([]byte{}, valid...)
	binary.LittleEndian.PutUint32(lying[binHeaderSize+1:], 1<<30)
	refreshCRC(lying)
	cases["lying count"] = lying

	for name, data := range cases {
		if err := DecodeProposeResponse(data, &pr); err == nil {
			t.Errorf("%s: decode accepted a corrupt frame", name)
		}
	}

	var lr LabelsRequest
	badLabel := AppendLabelsRequest(nil, &LabelsRequest{Labels: []Label{{Pair: 1}}})
	badLabel[binHeaderSize+4+4] = 2 // label byte must be 0 or 1
	refreshCRC(badLabel)
	if err := DecodeLabelsRequest(badLabel, &lr); err == nil {
		t.Error("label byte 2 accepted")
	}

	var resp LabelsResponse
	badStatus := AppendLabelsResponse(nil, &LabelsResponse{Results: []LabelResult{{Pair: 1, Status: "ok"}}})
	badStatus[binHeaderSize+8+4] = 9
	refreshCRC(badStatus)
	if err := DecodeLabelsResponse(badStatus, &resp); err == nil {
		t.Error("status byte 9 accepted")
	}
}

// refreshCRC recomputes a frame's trailing CRC after a test mutated its
// bytes, so the decoder's structural checks — not the checksum — reject it.
func refreshCRC(frame []byte) {
	body := frame[:len(frame)-binTrailerSize]
	binary.LittleEndian.PutUint32(frame[len(frame)-binTrailerSize:], crc32.Checksum(body, binCRC))
}

// newBinTestServer builds a small in-process service with one session.
func newBinTestServer(t *testing.T, id string, budget int) (*httptest.Server, *Server) {
	t.Helper()
	scores := []float64{0.9, 0.8, 0.2, 0.1, 0.7, 0.3, 0.6, 0.4}
	preds := []bool{true, true, false, false, true, false, true, false}
	mgr := session.NewManager(session.ManagerOptions{DefaultLeaseTTL: time.Minute})
	srv := New(mgr)
	if _, err := mgr.Create(session.Config{
		ID: id, Scores: scores, Preds: preds, Calibrated: true, Budget: budget,
		Options: oasis.Options{Strata: 3, Seed: 42},
	}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, srv
}

// binGet performs a GET with Accept: application/x-oasis-bin and returns
// the status, content type and body.
func binGet(t *testing.T, url string) (int, string, []byte) {
	t.Helper()
	req, err := http.NewRequest("GET", url, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", ContentTypeBinary)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header.Get("Content-Type"), body
}

// TestBinaryHotPathHTTP drives propose → labels → estimate over the binary
// protocol end to end and cross-checks each response against the JSON form.
func TestBinaryHotPathHTTP(t *testing.T) {
	ts, _ := newBinTestServer(t, "bin", 0)
	base := ts.URL + "/v1/sessions/bin"

	code, ct, body := binGet(t, base+"/propose?n=3")
	if code != http.StatusOK || ct != ContentTypeBinary {
		t.Fatalf("binary propose: status %d, content type %q", code, ct)
	}
	var pr ProposeResponse
	if err := DecodeProposeResponse(body, &pr); err != nil {
		t.Fatalf("decode propose: %v\n% x", err, body)
	}
	if len(pr.Proposals) != 3 || pr.Exhausted {
		t.Fatalf("unexpected propose response: %+v", pr)
	}

	// Commit the three labels with a binary request body, asking for a
	// binary response.
	lreq := LabelsRequest{}
	for _, p := range pr.Proposals {
		lreq.Labels = append(lreq.Labels, Label{Pair: p.Pair, Label: p.Pair%2 == 0})
	}
	frame := AppendLabelsRequest(nil, &lreq)
	req, err := http.NewRequest("POST", base+"/labels", bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", ContentTypeBinary)
	req.Header.Set("Accept", ContentTypeBinary)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || resp.Header.Get("Content-Type") != ContentTypeBinary {
		t.Fatalf("binary labels: status %d, content type %q: %s", resp.StatusCode, resp.Header.Get("Content-Type"), body)
	}
	var lresp LabelsResponse
	if err := DecodeLabelsResponse(body, &lresp); err != nil {
		t.Fatal(err)
	}
	if lresp.Committed != 3 {
		t.Fatalf("committed %d of 3: %+v", lresp.Committed, lresp)
	}
	for i, res := range lresp.Results {
		if res.Pair != lreq.Labels[i].Pair || res.Status != "ok" {
			t.Fatalf("result %d: %+v", i, res)
		}
	}

	// Binary estimate agrees with the JSON estimate.
	code, ct, body = binGet(t, base+"/estimate")
	if code != http.StatusOK || ct != ContentTypeBinary {
		t.Fatalf("binary estimate: status %d, content type %q", code, ct)
	}
	var binSt session.Status
	if err := DecodeEstimateResponse(body, &binSt); err != nil {
		t.Fatal(err)
	}
	c := &client{t: t, base: ts.URL, http: ts.Client()}
	var jsonSt session.Status
	if code := c.do("GET", "/v1/sessions/bin/estimate", nil, &jsonSt); code != http.StatusOK {
		t.Fatalf("json estimate: status %d", code)
	}
	if binSt.LabelsCommitted != jsonSt.LabelsCommitted || binSt.PoolSize != jsonSt.PoolSize ||
		binSt.PendingProposals != jsonSt.PendingProposals || binSt.Budget != jsonSt.Budget || binSt.Remaining != jsonSt.Remaining {
		t.Fatalf("binary estimate %+v disagrees with JSON %+v", binSt, jsonSt)
	}
	if (binSt.Estimate == nil) != (jsonSt.Estimate == nil) {
		t.Fatalf("estimate presence: binary %+v vs JSON %+v", binSt, jsonSt)
	}
	if binSt.Estimate != nil && *binSt.Estimate != *jsonSt.Estimate {
		t.Fatalf("estimate: binary %v vs JSON %v", *binSt.Estimate, *jsonSt.Estimate)
	}

	// A plain request (no Accept header) still gets JSON: curl keeps working.
	plain, err := http.Get(base + "/estimate")
	if err != nil {
		t.Fatal(err)
	}
	plain.Body.Close()
	if got := plain.Header.Get("Content-Type"); got != "application/json" {
		t.Fatalf("no-Accept response content type %q, want application/json", got)
	}
}

// TestBinaryExhaustedFlag pins the terminal signal through the binary path:
// once the budget is fully committed, a binary propose returns an empty
// frame with the exhausted flag set, exactly as the JSON path sets
// "exhausted": true.
func TestBinaryExhaustedFlag(t *testing.T) {
	ts, _ := newBinTestServer(t, "exh", 2)
	base := ts.URL + "/v1/sessions/exh"
	c := &client{t: t, base: ts.URL, http: ts.Client()}

	var pr ProposeResponse
	if code := c.do("GET", "/v1/sessions/exh/propose?n=2", nil, &pr); code != http.StatusOK {
		t.Fatalf("propose: %d", code)
	}
	lreq := LabelsRequest{}
	for _, p := range pr.Proposals {
		lreq.Labels = append(lreq.Labels, Label{Pair: p.Pair, Label: true})
	}
	var lresp LabelsResponse
	if code := c.do("POST", "/v1/sessions/exh/labels", lreq, &lresp); code != http.StatusOK || lresp.Committed != 2 {
		t.Fatalf("labels: %d, %+v", code, lresp)
	}

	code, _, body := binGet(t, base+"/propose?n=1")
	if code != http.StatusOK {
		t.Fatalf("exhausted propose: status %d", code)
	}
	var got ProposeResponse
	if err := DecodeProposeResponse(body, &got); err != nil {
		t.Fatal(err)
	}
	if !got.Exhausted || len(got.Proposals) != 0 {
		t.Fatalf("want exhausted empty batch, got %+v", got)
	}
}

// TestJSONBinaryEquivalence is the protocol-equivalence gate: two sessions
// with identical configs and the golden-sequence seed, one driven over
// JSON, one over the binary protocol, must produce bit-for-bit the same
// proposal sequence and the same estimate. The protocol is transport only —
// it must never perturb the sampler.
func TestJSONBinaryEquivalence(t *testing.T) {
	scores := make([]float64, 500)
	preds := make([]bool, 500)
	for i := range scores {
		scores[i] = float64(i%97) / 97
		preds[i] = scores[i] >= 0.5
	}
	mgr := session.NewManager(session.ManagerOptions{})
	srv := New(mgr)
	for _, id := range []string{"json", "bin"} {
		if _, err := mgr.Create(session.Config{
			ID: id, Scores: scores, Preds: preds, Calibrated: true,
			Options: oasis.Options{Strata: 10, Seed: 7},
		}); err != nil {
			t.Fatal(err)
		}
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := &client{t: t, base: ts.URL, http: ts.Client()}

	const rounds, batch = 20, 8
	var jsonSeq, binSeq []int
	for round := 0; round < rounds; round++ {
		// JSON session.
		var pr ProposeResponse
		if code := c.do("GET", fmt.Sprintf("/v1/sessions/json/propose?n=%d", batch), nil, &pr); code != http.StatusOK {
			t.Fatalf("json propose: %d", code)
		}
		lreq := LabelsRequest{}
		for _, p := range pr.Proposals {
			jsonSeq = append(jsonSeq, p.Pair)
			lreq.Labels = append(lreq.Labels, Label{Pair: p.Pair, Label: p.Pair%3 == 0})
		}
		if code := c.do("POST", "/v1/sessions/json/labels", lreq, nil); code != http.StatusOK {
			t.Fatalf("json labels: %d", code)
		}

		// Binary session, same truth function.
		code, _, body := binGet(t, ts.URL+fmt.Sprintf("/v1/sessions/bin/propose?n=%d", batch))
		if code != http.StatusOK {
			t.Fatalf("bin propose: %d", code)
		}
		var bpr ProposeResponse
		if err := DecodeProposeResponse(body, &bpr); err != nil {
			t.Fatal(err)
		}
		breq := LabelsRequest{}
		for _, p := range bpr.Proposals {
			binSeq = append(binSeq, p.Pair)
			breq.Labels = append(breq.Labels, Label{Pair: p.Pair, Label: p.Pair%3 == 0})
		}
		frame := AppendLabelsRequest(nil, &breq)
		req, err := http.NewRequest("POST", ts.URL+"/v1/sessions/bin/labels", bytes.NewReader(frame))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", ContentTypeBinary)
		req.Header.Set("Accept", ContentTypeBinary)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("bin labels: %d", resp.StatusCode)
		}
	}
	if len(jsonSeq) != len(binSeq) {
		t.Fatalf("sequence lengths differ: json %d, bin %d", len(jsonSeq), len(binSeq))
	}
	for i := range jsonSeq {
		if jsonSeq[i] != binSeq[i] {
			t.Fatalf("proposal sequences diverge at %d: json %d, bin %d", i, jsonSeq[i], binSeq[i])
		}
	}
	var jsonSt, binSt session.Status
	if code := c.do("GET", "/v1/sessions/json/estimate", nil, &jsonSt); code != http.StatusOK {
		t.Fatalf("json estimate: %d", code)
	}
	if code := c.do("GET", "/v1/sessions/bin/estimate", nil, &binSt); code != http.StatusOK {
		t.Fatalf("bin estimate: %d", code)
	}
	if (jsonSt.Estimate == nil) != (binSt.Estimate == nil) {
		t.Fatalf("estimate presence diverges: json %+v, bin %+v", jsonSt, binSt)
	}
	if jsonSt.Estimate != nil && *jsonSt.Estimate != *binSt.Estimate {
		t.Fatalf("estimates diverge: json %v, bin %v", *jsonSt.Estimate, *binSt.Estimate)
	}
}

// FuzzBinaryProtocol fuzzes every frame decoder with arbitrary bytes: no
// input may panic, and any input a decoder accepts must re-encode to the
// exact same bytes (the encoding is canonical).
func FuzzBinaryProtocol(f *testing.F) {
	exp := time.Unix(0, 1722000000123456789)
	f.Add(AppendProposeResponse(nil, &ProposeResponse{Proposals: []session.Proposal{{Pair: 5, Expires: exp}}, Exhausted: false}))
	f.Add(AppendProposeResponse(nil, &ProposeResponse{Exhausted: true, Proposals: []session.Proposal{}}))
	f.Add(AppendLabelsRequest(nil, &LabelsRequest{Labels: []Label{{Pair: 1, Label: true}, {Pair: 2}}}))
	f.Add(AppendLabelsResponse(nil, &LabelsResponse{Committed: 1, Results: []LabelResult{{Pair: 1, Status: "ok"}}}))
	f.Add(AppendEstimateResponse(nil, &session.Status{Estimate: f64ptr(0.5), PoolSize: 10, Remaining: -1}))
	f.Add([]byte(binMagic))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		var pr ProposeResponse
		if err := DecodeProposeResponse(data, &pr); err == nil {
			if again := AppendProposeResponse(nil, &pr); !bytes.Equal(again, data) {
				t.Fatalf("propose round trip not canonical:\nin  % x\nout % x", data, again)
			}
		}
		var lreq LabelsRequest
		if err := DecodeLabelsRequest(data, &lreq); err == nil {
			if again := AppendLabelsRequest(nil, &lreq); !bytes.Equal(again, data) {
				t.Fatalf("labels request round trip not canonical:\nin  % x\nout % x", data, again)
			}
		}
		var lresp LabelsResponse
		if err := DecodeLabelsResponse(data, &lresp); err == nil {
			if again := AppendLabelsResponse(nil, &lresp); !bytes.Equal(again, data) {
				t.Fatalf("labels response round trip not canonical:\nin  % x\nout % x", data, again)
			}
		}
		var st session.Status
		if err := DecodeEstimateResponse(data, &st); err == nil {
			if again := AppendEstimateResponse(nil, &st); !bytes.Equal(again, data) {
				t.Fatalf("estimate round trip not canonical:\nin  % x\nout % x", data, again)
			}
		}
	})
}
