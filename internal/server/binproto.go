package server

// Binary hot-path protocol ("OBP1"). The propose/labels/estimate round trip
// is the service's hot path, and its JSON form pays marshal/unmarshal CPU
// and per-request allocations on every call. This codec replaces it with
// compact fixed-layout frames, reusing the little-endian + CRC-32C
// (Castagnoli) framing idiom the pool codec established (internal/poolstore,
// "OASISPL2"): every frame is length-prefixed, carries a trailing CRC over
// the whole frame, and every count is validated against the exact byte
// length before any allocation is sized from it.
//
// Frame layout (all integers little-endian):
//
//	offset  size  field
//	0       4     magic "OBP1"
//	4       1     message type (see binMsg* constants)
//	5       3     zero padding
//	8       4     payload length L
//	12      L     payload (per-type layout below)
//	12+L    4     CRC-32C of bytes [0, 12+L)
//
// Payload layouts:
//
//	proposeResponse (0x01): flags u8 (bit0 = exhausted), count u32,
//	                        count × (pair u32, expires i64 unix-nanos)
//	labelsRequest   (0x02): count u32, count × (pair u32, label u8)
//	labelsResponse  (0x03): committed u32, count u32,
//	                        count × (pair u32, status u8: 0 ok, 1 duplicate,
//	                        2 expired)
//	estimateResponse(0x04): flags u8 (bit0 = estimate present, bit1 =
//	                        initial estimate present), estimate f64,
//	                        initialEstimate f64, poolSize u64,
//	                        labelsCommitted u64, pendingProposals u64,
//	                        budget i64, remaining i64
//
// Negotiation is per request: a client asking for a binary response sends
// Accept: application/x-oasis-bin, a client sending a binary body sends
// Content-Type: application/x-oasis-bin. The server answers JSON unless the
// Accept header asks for binary, so plain curl keeps working. Error
// responses are always JSON — errors are off the hot path, and a JSON body
// explains itself. The binary estimate frame carries only the numeric hot
// fields of session.Status; clients that need the session/pool ID strings
// use the JSON form.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"oasis/internal/session"
)

// ContentTypeBinary is the negotiated media type of the binary hot-path
// protocol: send it as Accept to get binary responses and as Content-Type
// on binary request bodies.
const ContentTypeBinary = "application/x-oasis-bin"

const (
	binMagic         = "OBP1"
	binHeaderSize    = 12 // magic + type + padding + payload length
	binTrailerSize   = 4  // CRC-32C
	binFrameOverhead = binHeaderSize + binTrailerSize
)

// Message types.
const (
	binMsgProposeResponse  = 0x01
	binMsgLabelsRequest    = 0x02
	binMsgLabelsResponse   = 0x03
	binMsgEstimateResponse = 0x04
)

// Per-entry sizes of the variable sections.
const (
	binProposalSize = 4 + 8 // pair u32 + expires i64
	binLabelSize    = 4 + 1 // pair u32 + label u8
	binResultSize   = 4 + 1 // pair u32 + status u8
)

var binCRC = crc32.MakeTable(crc32.Castagnoli)

// Commit-result status codes on the wire, indexed by session.CommitResult.
var binStatusNames = [3]string{"ok", "duplicate", "expired"}

// binFrameStart appends a frame header for one message type; the payload
// length field is patched by binFrameFinish. Frames are always appended at
// the end of dst, so callers can stack frames in one buffer if they wish;
// start is len(dst) before the call.
func binFrameStart(dst []byte, typ byte) []byte {
	dst = append(dst, binMagic...)
	dst = append(dst, typ, 0, 0, 0)
	return append(dst, 0, 0, 0, 0)
}

// binFrameFinish patches the payload length of the frame begun at start and
// appends the trailing CRC.
func binFrameFinish(dst []byte, start int) []byte {
	binary.LittleEndian.PutUint32(dst[start+8:], uint32(len(dst)-start-binHeaderSize))
	return binary.LittleEndian.AppendUint32(dst, crc32.Checksum(dst[start:], binCRC))
}

// binFrame verifies one complete frame of the wanted type and returns its
// payload. Trailing bytes after the frame are rejected — a frame is the
// whole request or response body.
func binFrame(data []byte, typ byte) ([]byte, error) {
	if len(data) < binFrameOverhead {
		return nil, fmt.Errorf("binproto: frame is %d bytes, shorter than the %d-byte envelope", len(data), binFrameOverhead)
	}
	if string(data[:4]) != binMagic {
		return nil, fmt.Errorf("binproto: bad magic %q", data[:4])
	}
	if data[5] != 0 || data[6] != 0 || data[7] != 0 {
		return nil, fmt.Errorf("binproto: non-zero header padding")
	}
	if n := binary.LittleEndian.Uint32(data[8:12]); uint64(n) != uint64(len(data)-binFrameOverhead) {
		return nil, fmt.Errorf("binproto: frame declares a %d-byte payload, body carries %d", n, len(data)-binFrameOverhead)
	}
	body := data[:len(data)-binTrailerSize]
	if got, want := crc32.Checksum(body, binCRC), binary.LittleEndian.Uint32(data[len(data)-binTrailerSize:]); got != want {
		return nil, fmt.Errorf("binproto: frame CRC mismatch")
	}
	if data[4] != typ {
		return nil, fmt.Errorf("binproto: message type 0x%02x, want 0x%02x", data[4], typ)
	}
	return data[binHeaderSize : len(data)-binTrailerSize], nil
}

// AppendProposeResponse appends pr as one binary frame and returns the
// extended buffer.
func AppendProposeResponse(dst []byte, pr *ProposeResponse) []byte {
	start := len(dst)
	dst = binFrameStart(dst, binMsgProposeResponse)
	var flags byte
	if pr.Exhausted {
		flags |= 1
	}
	dst = append(dst, flags)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(pr.Proposals)))
	for _, p := range pr.Proposals {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(p.Pair))
		dst = binary.LittleEndian.AppendUint64(dst, uint64(p.Expires.UnixNano()))
	}
	return binFrameFinish(dst, start)
}

// DecodeProposeResponse parses one binary propose-response frame into pr,
// reusing pr.Proposals' backing array when it has the capacity.
func DecodeProposeResponse(data []byte, pr *ProposeResponse) error {
	payload, err := binFrame(data, binMsgProposeResponse)
	if err != nil {
		return err
	}
	if len(payload) < 5 {
		return fmt.Errorf("binproto: propose payload is %d bytes, want at least 5", len(payload))
	}
	flags := payload[0]
	if flags&^byte(1) != 0 {
		return fmt.Errorf("binproto: unknown propose flags 0x%02x", flags)
	}
	count := binary.LittleEndian.Uint32(payload[1:5])
	if uint64(len(payload)-5) != uint64(count)*binProposalSize {
		return fmt.Errorf("binproto: propose frame declares %d proposals, payload carries %d bytes", count, len(payload)-5)
	}
	pr.Exhausted = flags&1 != 0
	pr.Proposals = pr.Proposals[:0]
	raw := payload[5:]
	for i := 0; i < int(count); i++ {
		e := raw[i*binProposalSize:]
		pr.Proposals = append(pr.Proposals, session.Proposal{
			Pair:    int(binary.LittleEndian.Uint32(e)),
			Expires: time.Unix(0, int64(binary.LittleEndian.Uint64(e[4:]))),
		})
	}
	return nil
}

// AppendLabelsRequest appends req as one binary frame and returns the
// extended buffer.
func AppendLabelsRequest(dst []byte, req *LabelsRequest) []byte {
	start := len(dst)
	dst = binFrameStart(dst, binMsgLabelsRequest)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(req.Labels)))
	for _, l := range req.Labels {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(l.Pair))
		var b byte
		if l.Label {
			b = 1
		}
		dst = append(dst, b)
	}
	return binFrameFinish(dst, start)
}

// DecodeLabelsRequest parses one binary labels-request frame into req,
// reusing req.Labels' backing array when it has the capacity.
func DecodeLabelsRequest(data []byte, req *LabelsRequest) error {
	payload, err := binFrame(data, binMsgLabelsRequest)
	if err != nil {
		return err
	}
	if len(payload) < 4 {
		return fmt.Errorf("binproto: labels payload is %d bytes, want at least 4", len(payload))
	}
	count := binary.LittleEndian.Uint32(payload[:4])
	if uint64(len(payload)-4) != uint64(count)*binLabelSize {
		return fmt.Errorf("binproto: labels frame declares %d labels, payload carries %d bytes", count, len(payload)-4)
	}
	req.Labels = req.Labels[:0]
	raw := payload[4:]
	for i := 0; i < int(count); i++ {
		e := raw[i*binLabelSize:]
		if e[4] > 1 {
			return fmt.Errorf("binproto: label byte 0x%02x, want 0 or 1", e[4])
		}
		req.Labels = append(req.Labels, Label{
			Pair:  int(binary.LittleEndian.Uint32(e)),
			Label: e[4] == 1,
		})
	}
	return nil
}

// AppendLabelsResponse appends resp as one binary frame and returns the
// extended buffer.
func AppendLabelsResponse(dst []byte, resp *LabelsResponse) []byte {
	start := len(dst)
	dst = binFrameStart(dst, binMsgLabelsResponse)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(resp.Committed))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(resp.Results)))
	for _, res := range resp.Results {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(res.Pair))
		var code byte
		switch res.Status {
		case "duplicate":
			code = 1
		case "expired":
			code = 2
		}
		dst = append(dst, code)
	}
	return binFrameFinish(dst, start)
}

// appendLabelsResults is the server's allocation-free form of
// AppendLabelsResponse: it encodes straight from the commit results,
// skipping the intermediate LabelsResponse struct the JSON path builds.
func appendLabelsResults(dst []byte, pairs []int, results []session.CommitResult) []byte {
	start := len(dst)
	dst = binFrameStart(dst, binMsgLabelsResponse)
	committed := 0
	for _, r := range results {
		if r == session.Committed {
			committed++
		}
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(committed))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(results)))
	for i, r := range results {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(pairs[i]))
		dst = append(dst, byte(r))
	}
	return binFrameFinish(dst, start)
}

// DecodeLabelsResponse parses one binary labels-response frame into resp,
// reusing resp.Results' backing array when it has the capacity.
func DecodeLabelsResponse(data []byte, resp *LabelsResponse) error {
	payload, err := binFrame(data, binMsgLabelsResponse)
	if err != nil {
		return err
	}
	if len(payload) < 8 {
		return fmt.Errorf("binproto: labels-response payload is %d bytes, want at least 8", len(payload))
	}
	committed := binary.LittleEndian.Uint32(payload[:4])
	count := binary.LittleEndian.Uint32(payload[4:8])
	if uint64(len(payload)-8) != uint64(count)*binResultSize {
		return fmt.Errorf("binproto: labels-response frame declares %d results, payload carries %d bytes", count, len(payload)-8)
	}
	if committed > count {
		return fmt.Errorf("binproto: %d committed labels out of %d results", committed, count)
	}
	resp.Committed = int(committed)
	resp.Results = resp.Results[:0]
	raw := payload[8:]
	for i := 0; i < int(count); i++ {
		e := raw[i*binResultSize:]
		if int(e[4]) >= len(binStatusNames) {
			return fmt.Errorf("binproto: unknown commit status 0x%02x", e[4])
		}
		resp.Results = append(resp.Results, LabelResult{
			Pair:   int(binary.LittleEndian.Uint32(e)),
			Status: binStatusNames[e[4]],
		})
	}
	return nil
}

// AppendEstimateResponse appends the numeric hot fields of st as one binary
// frame and returns the extended buffer. The session/pool ID strings and
// method are deliberately not carried — a hot polling loop already knows
// which session it is asking about.
func AppendEstimateResponse(dst []byte, st *session.Status) []byte {
	start := len(dst)
	dst = binFrameStart(dst, binMsgEstimateResponse)
	var flags byte
	var est, initial float64
	if st.Estimate != nil {
		flags |= 1
		est = *st.Estimate
	}
	if st.InitialEstimate != nil {
		flags |= 2
		initial = *st.InitialEstimate
	}
	dst = append(dst, flags)
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(est))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(initial))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(st.PoolSize))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(st.LabelsCommitted))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(st.PendingProposals))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(st.Budget))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(st.Remaining))
	return binFrameFinish(dst, start)
}

// DecodeEstimateResponse parses one binary estimate frame into st. Fields
// the frame does not carry (ID, Method, PoolID) are zeroed.
func DecodeEstimateResponse(data []byte, st *session.Status) error {
	payload, err := binFrame(data, binMsgEstimateResponse)
	if err != nil {
		return err
	}
	const want = 1 + 7*8
	if len(payload) != want {
		return fmt.Errorf("binproto: estimate payload is %d bytes, want %d", len(payload), want)
	}
	flags := payload[0]
	if flags&^byte(3) != 0 {
		return fmt.Errorf("binproto: unknown estimate flags 0x%02x", flags)
	}
	*st = session.Status{}
	if flags&1 != 0 {
		f := math.Float64frombits(binary.LittleEndian.Uint64(payload[1:]))
		st.Estimate = &f
	}
	if flags&2 != 0 {
		f := math.Float64frombits(binary.LittleEndian.Uint64(payload[9:]))
		st.InitialEstimate = &f
	}
	st.PoolSize = int(binary.LittleEndian.Uint64(payload[17:]))
	st.LabelsCommitted = int(binary.LittleEndian.Uint64(payload[25:]))
	st.PendingProposals = int(binary.LittleEndian.Uint64(payload[33:]))
	st.Budget = int(binary.LittleEndian.Uint64(payload[41:]))
	st.Remaining = int(int64(binary.LittleEndian.Uint64(payload[49:])))
	return nil
}

// binBuf is one request's reusable encode/decode state: the frame buffer
// plus the decoded-request and column scratch slices the labels handler
// needs. Pooled so the binary hot path allocates nothing per request once
// warm.
type binBuf struct {
	buf    []byte
	req    LabelsRequest
	pairs  []int
	labels []bool
	pr     ProposeResponse
}

var binBufPool = sync.Pool{New: func() any { return new(binBuf) }}

func getBinBuf() *binBuf  { return binBufPool.Get().(*binBuf) }
func putBinBuf(b *binBuf) { binBufPool.Put(b) }

// wantsBinary reports whether the request negotiated a binary response via
// its Accept header. Exact match (with optional parameters) only: the hot
// clients set the header verbatim, and anything else falls back to JSON.
func wantsBinary(r *http.Request) bool {
	return mediaTypeIs(r.Header.Get("Accept"), ContentTypeBinary)
}

// isBinaryBody reports whether the request body is a binary frame.
func isBinaryBody(r *http.Request) bool {
	return mediaTypeIs(r.Header.Get("Content-Type"), ContentTypeBinary)
}

// mediaTypeIs reports whether header names the media type want, ignoring
// any ;-separated parameters and surrounding space. A hand-rolled compare
// instead of mime.ParseMediaType keeps the hot path allocation-free.
func mediaTypeIs(header, want string) bool {
	if i := strings.IndexByte(header, ';'); i >= 0 {
		header = header[:i]
	}
	header = strings.TrimSpace(header)
	return strings.EqualFold(header, want)
}

// writeBinary sends one encoded frame with an exact Content-Length, so the
// response avoids chunked transfer encoding.
func writeBinary(w http.ResponseWriter, frame []byte) {
	w.Header().Set("Content-Type", ContentTypeBinary)
	w.Header().Set("Content-Length", strconv.Itoa(len(frame)))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(frame)
}

// readBinBody reads the bounded request body into bb.buf (grown once,
// reused across requests). It writes the error response itself when it
// reports false.
func (s *Server) readBinBody(w http.ResponseWriter, r *http.Request, bb *binBuf) bool {
	s.limitBody(w, r)
	buf := bb.buf[:0]
	if n := r.ContentLength; n > 0 && n <= s.maxBody && int64(cap(buf)) < n {
		buf = make([]byte, 0, n)
	}
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := r.Body.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			break
		}
		if err != nil {
			bb.buf = buf
			writeBodyError(w, err, "frame")
			return false
		}
	}
	bb.buf = buf
	return true
}
