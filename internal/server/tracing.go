package server

import (
	"context"
	"net/http"
	"runtime/pprof"
	"strconv"
	"time"

	"oasis/internal/trace"
)

// This file wires request tracing (internal/trace) into the HTTP layer. The
// middleware in metrics.go opens the root of each sampled trace; handlers
// thread the trace down through r.Context() so the session manager, the
// sampler, the WAL and the pool store each record their stage onto the same
// timeline. The collector's tail-retention rings are served read-only at
// GET /debug/traces (recent + retained summaries) and
// GET /debug/traces/{id} (one trace's full span timeline).

// EnableTracing attaches a trace collector: the middleware head-samples
// requests (or honors an inbound W3C traceparent header), every layer below
// records spans into the sampled request's trace, and Handler() serves the
// retained traces at GET /debug/traces and GET /debug/traces/{id}. Call it
// before EnableMetrics — the trace counter families are declared only when
// a collector is already attached — and before Handler().
func (s *Server) EnableTracing(c *trace.Collector) { s.trc = c }

// SetSlowRequest sets the slow-request threshold behind the slow=true
// access-log marker and the oasis_http_slow_requests_total counter. It
// should match the collector's Options.Slow so the requests the log flags
// are the ones the trace rings retain. Zero disables the marker. Call
// before Handler().
func (s *Server) SetSlowRequest(d time.Duration) { s.slowReq = d }

// EnableProfileLabels wraps handlers in pprof goroutine labels — route on
// every request, manager shard on propose/commit — so CPU and goroutine
// profiles slice along the same axes traces and metrics use. Off by
// default: labels cost an allocation per request, so the binary enables
// them only when a pprof endpoint is actually serving (-pprof).
func (s *Server) EnableProfileLabels() { s.profLabels = true }

// clientRequestID returns the inbound X-Request-ID when it is safe to
// echo — 1 to 64 bytes of [A-Za-z0-9._-], so a hostile header cannot
// inject into log lines or response headers — and "" when the server
// should assign its own.
func clientRequestID(r *http.Request) string {
	id := r.Header.Get("X-Request-ID")
	if id == "" || len(id) > 64 {
		return ""
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case 'a' <= c && c <= 'z', 'A' <= c && c <= 'Z', '0' <= c && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return ""
		}
	}
	return id
}

// startTrace decides whether this request records a trace. An inbound
// traceparent wins: its sampled flag forces recording (the caller is
// assembling a distributed timeline and our spans are a hole in it
// otherwise) and its cleared flag forces not recording; a malformed header
// is ignored per the W3C spec and the server decides independently by head
// sampling. seq is the request's boot-local sequence number, which keys
// both generated trace IDs and root span IDs.
func (s *Server) startTrace(r *http.Request, seq uint64) *trace.Trace {
	if s.trc == nil {
		return nil
	}
	root := trace.MakeSpanID(s.bootPrefix, seq)
	if h := r.Header.Get("traceparent"); h != "" {
		if tid, parent, flags, err := trace.ParseTraceparent(h); err == nil {
			if flags&trace.FlagSampled == 0 {
				return nil
			}
			return s.trc.New(tid, root, parent)
		}
	}
	if !s.trc.Sample() {
		return nil
	}
	return s.trc.New(trace.MakeTraceID(s.bootPrefix, seq), root, trace.SpanID{})
}

// withShardLabel runs f under a pprof "shard" goroutine label when profile
// labels are enabled, so sampler CPU time attributes to manager shards.
func (s *Server) withShardLabel(ctx context.Context, id string, f func(context.Context)) {
	if !s.profLabels {
		f(ctx)
		return
	}
	pprof.Do(ctx, pprof.Labels("shard", strconv.Itoa(s.mgr.ShardFor(id))), f)
}

// TracesResponse is the body of GET /debug/traces: collector totals plus
// one summary line per retained trace, newest first. Fetch a summary's ID
// from /debug/traces/{id} for the full span timeline.
type TracesResponse struct {
	Stats         trace.CollectorStats `json:"stats"`
	SlowThreshold string               `json:"slowThreshold,omitempty"`
	Traces        []trace.Summary      `json:"traces"`
}

func (s *Server) debugTraces(w http.ResponseWriter, r *http.Request) {
	traces := s.trc.Snapshot()
	resp := TracesResponse{
		Stats:  s.trc.Stats(),
		Traces: make([]trace.Summary, 0, len(traces)),
	}
	if d := s.trc.Slow(); d > 0 {
		resp.SlowThreshold = d.String()
	}
	for _, t := range traces {
		resp.Traces = append(resp.Traces, t.Summarize())
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) debugTrace(w http.ResponseWriter, r *http.Request) {
	tid, err := trace.ParseTraceID(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad trace id %q: want 32 lowercase hex digits", r.PathValue("id"))
		return
	}
	t := s.trc.Lookup(tid)
	if t == nil {
		writeError(w, http.StatusNotFound, "no retained trace %s (evicted from the ring, or never sampled)", tid)
		return
	}
	writeJSON(w, http.StatusOK, t.Export())
}
