package server

// Overload stress: a rate-limited server with a bounded in-flight gate is
// hammered by more clients than it admits. The assertions are the admission
// layer's contract — the server sheds (429/503 with Retry-After) instead of
// queueing without bound, goroutine count stays bounded, and every commit
// the server acknowledged with a 200 is really in the session state (load
// shedding must never lose acknowledged writes). Run under -race this doubles
// as the detector for admission-state races.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"oasis"
	"oasis/internal/obs"
	"oasis/internal/session"
)

func TestOverloadSheddingStress(t *testing.T) {
	scores := make([]float64, 2000)
	preds := make([]bool, 2000)
	for i := range scores {
		scores[i] = float64(i%89) / 89
		preds[i] = scores[i] >= 0.5
	}
	mgr := session.NewManager(session.ManagerOptions{Shards: 4})
	srv := New(mgr)
	srv.EnableMetrics(obs.NewRegistry())
	srv.SetAdmission(AdmissionConfig{
		RatePerSec:   300,
		Burst:        50,
		MaxInFlight:  4,
		MaxQueue:     8,
		QueueTimeout: 50 * time.Millisecond,
	})
	const sessions = 3
	for i := 0; i < sessions; i++ {
		if _, err := mgr.Create(session.Config{
			ID: fmt.Sprintf("s%d", i), Scores: scores, Preds: preds, Calibrated: true,
			Options: oasis.Options{Strata: 8, Seed: uint64(i + 1)},
		}); err != nil {
			t.Fatal(err)
		}
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	baseGoroutines := runtime.NumGoroutine()

	const (
		workers   = 24
		duration  = 600 * time.Millisecond
		batchSize = 4
	)
	var (
		acked   [sessions]atomic.Int64 // labels acknowledged with 200 per session
		shed429 atomic.Int64
		shed503 atomic.Int64
		ok200   atomic.Int64
		peak    atomic.Int64 // peak goroutine count observed mid-storm
	)
	deadline := time.Now().Add(duration)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sid := w % sessions
			base := fmt.Sprintf("%s/v1/sessions/s%d", ts.URL, sid)
			c := &client{t: t, base: ts.URL, http: ts.Client()}
			for time.Now().Before(deadline) {
				if g := int64(runtime.NumGoroutine()); g > peak.Load() {
					peak.Store(g)
				}
				resp, err := http.Get(fmt.Sprintf("%s/propose?n=%d", base, batchSize))
				if err != nil {
					t.Error(err)
					return
				}
				switch resp.StatusCode {
				case http.StatusTooManyRequests:
					checkRetryAfter(t, resp)
					shed429.Add(1)
					resp.Body.Close()
					continue
				case http.StatusServiceUnavailable:
					checkRetryAfter(t, resp)
					shed503.Add(1)
					resp.Body.Close()
					continue
				case http.StatusOK:
				default:
					t.Errorf("propose: status %d", resp.StatusCode)
					resp.Body.Close()
					return
				}
				var pr ProposeResponse
				decodeBody(t, resp, &pr)
				if len(pr.Proposals) == 0 {
					continue
				}
				req := LabelsRequest{}
				for _, p := range pr.Proposals {
					req.Labels = append(req.Labels, Label{Pair: p.Pair, Label: p.Pair%2 == 0})
				}
				var lr LabelsResponse
				code := c.do("POST", fmt.Sprintf("/v1/sessions/s%d/labels", sid), req, &lr)
				switch code {
				case http.StatusOK:
					ok200.Add(1)
					acked[sid].Add(int64(lr.Committed))
				case http.StatusTooManyRequests:
					shed429.Add(1)
				case http.StatusServiceUnavailable:
					shed503.Add(1)
				default:
					t.Errorf("labels: status %d", code)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	// The offered load (24 workers in tight loops) far exceeds 300 req/s +
	// 4 in flight: the server must have shed.
	if shed429.Load()+shed503.Load() == 0 {
		t.Fatal("no requests were shed under a 24-worker storm; admission control inert")
	}
	// And still made progress.
	if ok200.Load() == 0 {
		t.Fatal("no labels committed during the storm")
	}

	// Goroutines stayed bounded: the gate admits MaxInFlight+MaxQueue hot
	// requests; everything beyond sheds synchronously on the client's own
	// connection goroutine (one per live client conn, plus the keep-alive
	// pool). The bound here is deliberately loose — the assertion is "no
	// goroutine-per-queued-request pileup", not an exact census.
	if p := peak.Load(); p > int64(baseGoroutines+8*workers) {
		t.Errorf("peak goroutines %d (baseline %d, %d workers): unbounded queueing", p, baseGoroutines, workers)
	}

	// The shed counters add up in the exposition (scraped before the limits
	// are lifted below, while the counts are frozen).
	fams := parseExposition(t, scrape(t, ts))
	if got := sumFamily(fams["oasis_http_rejected_total"]); got != float64(shed429.Load()+shed503.Load()) {
		t.Errorf("oasis_http_rejected_total = %v, clients saw %d rejections",
			got, shed429.Load()+shed503.Load())
	}

	// Lift the limits for the verification reads — SetAdmission is
	// re-callable, retuning (here: removing) the limits on a live server.
	srv.SetAdmission(AdmissionConfig{})

	// Zero lost acknowledged commits: what the workers summed from 200
	// responses is exactly what the sessions hold.
	for i := 0; i < sessions; i++ {
		c := &client{t: t, base: ts.URL, http: ts.Client()}
		var st session.Status
		if code := c.do("GET", fmt.Sprintf("/v1/sessions/s%d", i), nil, &st); code != http.StatusOK {
			t.Fatalf("status s%d: %d", i, code)
		}
		if int64(st.LabelsCommitted) != acked[i].Load() {
			t.Errorf("s%d: server holds %d labels, clients were acknowledged %d",
				i, st.LabelsCommitted, acked[i].Load())
		}
	}
}

func checkRetryAfter(t *testing.T, resp *http.Response) {
	t.Helper()
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Errorf("%d response Retry-After %q, want integer >= 1", resp.StatusCode, resp.Header.Get("Retry-After"))
	}
}

func decodeBody(t *testing.T, resp *http.Response, out any) {
	t.Helper()
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Error(err)
	}
}
