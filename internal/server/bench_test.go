package server

// BenchmarkServerPropose measures the end-to-end HTTP hot path of the
// evaluation service: lease a batch of 64 pairs, then commit their labels.
// One benchmark op is one propose + one labels round trip. Tracked in
// BENCH_core.json via `make bench-json`.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync/atomic"
	"testing"

	"oasis"
	"oasis/internal/obs"
	"oasis/internal/rng"
	"oasis/internal/session"
	"oasis/internal/trace"
	"oasis/internal/wal"
)

func benchPool(n int, seed uint64) (scores []float64, preds, truth []bool) {
	r := rng.New(seed)
	scores = make([]float64, n)
	preds = make([]bool, n)
	truth = make([]bool, n)
	for i := 0; i < n; i++ {
		u := r.Float64()
		scores[i] = u * u
		preds[i] = scores[i] >= 0.5
		truth[i] = r.Bernoulli(scores[i])
	}
	return scores, preds, truth
}

// BenchmarkServerProposeParallel measures the service's multi-worker hot
// path end to end — HTTP propose + labels round trips from 8 concurrent
// clients, each on its own session, against a sharded manager journaling to
// per-shard WAL lanes with fsync=always. One benchmark op is one
// propose?n=16 + one labels POST. At shards=1 every commit's fsync queues
// on one lane; at shards=8 the lanes sync concurrently. The metrics
// variant wires the full observability stack (registry, session + WAL
// instruments, /metrics routes) to keep its hot-path overhead honest —
// the PR6 acceptance gate holds it within 5% of metrics-off, and the
// traced variant (tracing at the default head-sample rate) is held to the
// same budget against shards=8 — an unsampled request must cost nothing
// but an atomic increment and two compares. Tracked in BENCH_core.json
// via `make bench-json` alongside the single-worker BenchmarkServerPropose
// baseline.
func BenchmarkServerProposeParallel(b *testing.B) {
	scores, preds, truth := benchPool(50_000, 5)
	for _, bc := range []struct {
		name    string
		shards  int
		metrics bool
		traced  bool
	}{
		{"shards=1", 1, false, false},
		{"shards=8", 8, false, false},
		{"shards=8-metrics", 8, true, false},
		{"shards=8-traced", 8, false, true},
	} {
		shards := bc.shards
		b.Run(bc.name, func(b *testing.B) {
			var reg *obs.Registry
			var sessMet *session.Metrics
			walOpts := wal.Options{Fsync: "always"}
			if bc.metrics {
				reg = obs.NewRegistry()
				sessMet = session.NewMetrics(reg, shards)
				walOpts.Metrics = wal.NewMetrics(reg)
			}
			mgr := session.NewManager(session.ManagerOptions{Shards: shards, Metrics: sessMet})
			j, err := wal.Open(b.TempDir(), mgr, walOpts)
			if err != nil {
				b.Fatal(err)
			}
			defer j.Close()
			srv := New(mgr)
			srv.SetJournal(j)
			if bc.traced {
				srv.EnableTracing(trace.NewCollector(trace.Options{}))
			}
			if bc.metrics {
				srv.EnableMetrics(reg)
			}
			ts := httptest.NewServer(srv.Handler())
			defer ts.Close()

			const nSessions = 8
			ids := make([]string, nSessions)
			for i := range ids {
				// Spread the sessions evenly across shards, whatever the count.
				for n := 0; ; n++ {
					id := fmt.Sprintf("pbench-%d-%d", i, n)
					if session.ShardOf(id, mgr.Shards()) == i%mgr.Shards() {
						ids[i] = id
						break
					}
				}
				if _, err := mgr.Create(session.Config{
					ID: ids[i], Scores: scores, Preds: preds, Calibrated: true,
					Options: oasis.Options{Strata: 30, Seed: uint64(9 + i)},
				}); err != nil {
					b.Fatal(err)
				}
			}
			b.SetParallelism(max(1, (nSessions+runtime.GOMAXPROCS(0)-1)/runtime.GOMAXPROCS(0)))
			var next atomic.Int64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				url := fmt.Sprintf("%s/v1/sessions/%s", ts.URL, ids[int(next.Add(1)-1)%nSessions])
				client := ts.Client()
				for pb.Next() {
					resp, err := client.Get(url + "/propose?n=16")
					if err != nil {
						b.Error(err)
						return
					}
					var pr ProposeResponse
					if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
						b.Error(err)
						return
					}
					resp.Body.Close()
					req := LabelsRequest{Labels: make([]Label, len(pr.Proposals))}
					for k, p := range pr.Proposals {
						req.Labels[k] = Label{Pair: p.Pair, Label: truth[p.Pair]}
					}
					body, err := json.Marshal(req)
					if err != nil {
						b.Error(err)
						return
					}
					resp, err = client.Post(url+"/labels", "application/json", bytes.NewReader(body))
					if err != nil {
						b.Error(err)
						return
					}
					var lr LabelsResponse
					if err := json.NewDecoder(resp.Body).Decode(&lr); err != nil {
						b.Error(err)
						return
					}
					resp.Body.Close()
					if lr.Committed != len(req.Labels) {
						b.Errorf("committed %d of %d", lr.Committed, len(req.Labels))
						return
					}
				}
			})
		})
	}
}

func BenchmarkServerPropose(b *testing.B) {
	scores, preds, truth := benchPool(200_000, 5)
	newSession := func(ts *httptest.Server, id string) {
		b.Helper()
		cfg := session.Config{
			ID: id, Scores: scores, Preds: preds, Calibrated: true,
			Options: oasis.Options{Strata: 30, Seed: 9},
		}
		body, err := json.Marshal(cfg)
		if err != nil {
			b.Fatal(err)
		}
		resp, err := http.Post(ts.URL+"/v1/sessions", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			b.Fatalf("create session: status %d", resp.StatusCode)
		}
	}

	ts := httptest.NewServer(New(session.NewManager(session.ManagerOptions{})).Handler())
	defer ts.Close()
	sid := 0
	newSession(ts, "bench-0")
	committed := 0

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if committed > 150_000 {
			b.StopTimer()
			sid++
			newSession(ts, fmt.Sprintf("bench-%d", sid))
			committed = 0
			b.StartTimer()
		}
		url := fmt.Sprintf("%s/v1/sessions/bench-%d", ts.URL, sid)
		resp, err := http.Get(url + "/propose?n=64")
		if err != nil {
			b.Fatal(err)
		}
		var pr ProposeResponse
		if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		req := LabelsRequest{Labels: make([]Label, len(pr.Proposals))}
		for j, p := range pr.Proposals {
			req.Labels[j] = Label{Pair: p.Pair, Label: truth[p.Pair]}
		}
		body, err := json.Marshal(req)
		if err != nil {
			b.Fatal(err)
		}
		resp, err = http.Post(url+"/labels", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		var lr LabelsResponse
		if err := json.NewDecoder(resp.Body).Decode(&lr); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		committed += lr.Committed
	}
}
