package server

// BenchmarkServerPropose measures the end-to-end HTTP hot path of the
// evaluation service: lease a batch of 64 pairs, then commit their labels.
// One benchmark op is one propose + one labels round trip. Tracked in
// BENCH_core.json via `make bench-json`.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"oasis"
	"oasis/internal/rng"
	"oasis/internal/session"
)

func benchPool(n int, seed uint64) (scores []float64, preds, truth []bool) {
	r := rng.New(seed)
	scores = make([]float64, n)
	preds = make([]bool, n)
	truth = make([]bool, n)
	for i := 0; i < n; i++ {
		u := r.Float64()
		scores[i] = u * u
		preds[i] = scores[i] >= 0.5
		truth[i] = r.Bernoulli(scores[i])
	}
	return scores, preds, truth
}

func BenchmarkServerPropose(b *testing.B) {
	scores, preds, truth := benchPool(200_000, 5)
	newSession := func(ts *httptest.Server, id string) {
		b.Helper()
		cfg := session.Config{
			ID: id, Scores: scores, Preds: preds, Calibrated: true,
			Options: oasis.Options{Strata: 30, Seed: 9},
		}
		body, err := json.Marshal(cfg)
		if err != nil {
			b.Fatal(err)
		}
		resp, err := http.Post(ts.URL+"/v1/sessions", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			b.Fatalf("create session: status %d", resp.StatusCode)
		}
	}

	ts := httptest.NewServer(New(session.NewManager(session.ManagerOptions{})).Handler())
	defer ts.Close()
	sid := 0
	newSession(ts, "bench-0")
	committed := 0

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if committed > 150_000 {
			b.StopTimer()
			sid++
			newSession(ts, fmt.Sprintf("bench-%d", sid))
			committed = 0
			b.StartTimer()
		}
		url := fmt.Sprintf("%s/v1/sessions/bench-%d", ts.URL, sid)
		resp, err := http.Get(url + "/propose?n=64")
		if err != nil {
			b.Fatal(err)
		}
		var pr ProposeResponse
		if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		req := LabelsRequest{Labels: make([]Label, len(pr.Proposals))}
		for j, p := range pr.Proposals {
			req.Labels[j] = Label{Pair: p.Pair, Label: truth[p.Pair]}
		}
		body, err := json.Marshal(req)
		if err != nil {
			b.Fatal(err)
		}
		resp, err = http.Post(url+"/labels", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		var lr LabelsResponse
		if err := json.NewDecoder(resp.Body).Decode(&lr); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		committed += lr.Committed
	}
}
